module Token = Mc_lexer.Token
module Lexer = Mc_lexer.Lexer
module Loc = Mc_srcmgr.Source_location
module Diag = Mc_diag.Diagnostics
module Srcmgr = Mc_srcmgr.Source_manager
module Fmgr = Mc_srcmgr.File_manager
module Stats = Mc_support.Stats

let stat_expansions =
  Stats.counter ~group:"pp" ~name:"macro-expansions"
    ~desc:"macro expansions performed" ()
let stat_files =
  Stats.counter ~group:"pp" ~name:"files-entered"
    ~desc:"source files entered (main buffer and #includes)" ()
let stat_directives =
  Stats.counter ~group:"pp" ~name:"directives-processed"
    ~desc:"preprocessing directives handled" ()
let stat_pragmas =
  Stats.counter ~group:"pp" ~name:"pragmas-kept"
    ~desc:"omp/clang pragmas forwarded to the parser" ()

type pragma = { pragma_loc : Loc.t; pragma_toks : Token.t list }
type item = Tok of Token.t | Prag of pragma

type macro =
  | Object of Token.t list
  | Function of { params : string list; body : Token.t list }

(* A token travelling through expansion carries the set of macro names that
   must not expand inside it again (the classic hide set, simplified). *)
type ptok = { tok : Token.t; hide : string list }

type cond_state = {
  mutable taken : bool; (* some branch of this #if chain was taken *)
  mutable live : bool; (* current branch is live *)
  was_live : bool; (* the enclosing context was live *)
}

(* A token source on the include stack: either a live lexer, or a replay
   of an already-lexed token list (how the stage-graph pipeline feeds a
   cached Lex artifact back through preprocessing without re-lexing).
   A replay keeps handing out its synthetic [Eof] forever once drained,
   matching [Lexer.next]'s end-of-buffer behaviour. *)
type source = Src_lexer of Lexer.t | Src_replay of replay
and replay = { mutable r_toks : Token.t list; r_eof : Token.t }

let source_next = function
  | Src_lexer lexer -> Lexer.next lexer
  | Src_replay r -> (
    match r.r_toks with
    | [] -> r.r_eof
    | tok :: rest ->
      r.r_toks <- rest;
      tok)

type t = {
  diag : Diag.t;
  srcmgr : Srcmgr.t;
  fmgr : Fmgr.t;
  macros : (string, macro) Hashtbl.t;
  mutable sources : source list; (* include stack, innermost first *)
  mutable pending : ptok list; (* macro-expansion output queue *)
  mutable conds : cond_state list;
  mutable include_depth : int;
  mutable includes : (string * string) list; (* (path, digest), newest first *)
}

let create diag srcmgr fmgr =
  {
    diag;
    srcmgr;
    fmgr;
    macros = Hashtbl.create 16;
    sources = [];
    pending = [];
    conds = [];
    include_depth = 0;
    includes = [];
  }

let include_digests t = List.rev t.includes

let macro_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.macros []
  |> List.sort String.compare

let eof_token =
  {
    Token.kind = Token.Eof;
    loc = Loc.invalid;
    len = 0;
    at_line_start = true;
    has_space_before = false;
  }

(* Raw token fetch: next token from the innermost source, popping finished
   includes.  Does not consult the pending queue. *)
let rec raw_next t =
  match t.sources with
  | [] -> eof_token
  | source :: rest ->
    let tok = source_next source in
    if Token.is_eof tok && rest <> [] then begin
      t.sources <- rest;
      raw_next t
    end
    else tok

(* Fetch including the pending (expansion) queue. *)
let fetch t =
  match t.pending with
  | p :: rest ->
    t.pending <- rest;
    p
  | [] -> { tok = raw_next t; hide = [] }

let push_back t p = t.pending <- p :: t.pending

(* ---- Macro expansion ------------------------------------------------- *)

let substitutable name hide = not (List.mem name hide)

(* Collect a function-like macro's arguments.  The opening paren has been
   consumed.  Returns the arguments (token lists) in order. *)
let collect_args t =
  let rec arg depth acc args =
    let p = fetch t in
    match p.tok.Token.kind with
    | Token.Eof ->
      Diag.error t.diag ~loc:p.tok.Token.loc
        "unterminated macro argument list";
      List.rev (List.rev acc :: args)
    | Token.Punct Token.LParen -> arg (depth + 1) (p :: acc) args
    | Token.Punct Token.RParen when depth = 0 -> List.rev (List.rev acc :: args)
    | Token.Punct Token.RParen -> arg (depth - 1) (p :: acc) args
    | Token.Punct Token.Comma when depth = 0 -> arg 0 [] (List.rev acc :: args)
    | _ -> arg depth (p :: acc) args
  in
  arg 0 [] []

(* One step of expansion for an identifier token: returns [true] when it
   expanded (the expansion is now in the pending queue). *)
let try_expand t (p : ptok) =
  match p.tok.Token.kind with
  | Token.Ident name when substitutable name p.hide -> (
    match Hashtbl.find_opt t.macros name with
    | None -> false
    | Some (Object body) ->
      Stats.incr stat_expansions;
      let hide = name :: p.hide in
      t.pending <-
        List.map (fun tok -> { tok; hide }) body @ t.pending;
      true
    | Some (Function { params; body }) -> (
      (* Only expands when followed by '('; otherwise the identifier stays. *)
      let next = fetch t in
      match next.tok.Token.kind with
      | Token.Punct Token.LParen ->
        let args = collect_args t in
        let args = if args = [ [] ] && params = [] then [] else args in
        if List.length args <> List.length params then begin
          Diag.error t.diag ~loc:p.tok.Token.loc
            (Printf.sprintf
               "macro '%s' expects %d argument(s) but %d given" name
               (List.length params) (List.length args));
          true
        end
        else begin
          Stats.incr stat_expansions;
          let binding = List.combine params args in
          let hide = name :: p.hide in
          let subst_of (btok : Token.t) =
            match btok.Token.kind with
            | Token.Ident id -> List.assoc_opt id binding
            | _ -> None
          in
          let spell_arg arg_toks =
            String.concat " "
              (List.map (fun (a : ptok) -> Token.spelling a.tok) arg_toks)
          in
          (* Pass 1: the # and ## operators (on the spelling level, like a
             real preprocessor: their operands do not macro-expand). *)
          let rec operators acc = function
            | [] -> List.rev acc
            | ({ Token.kind = Token.Punct Token.Hash; _ } as h) :: rest -> (
              match rest with
              | arg_tok :: rest' -> (
                match subst_of arg_tok with
                | Some arg_toks ->
                  let text = spell_arg arg_toks in
                  let strtok =
                    { h with
                      Token.kind =
                        Token.String_lit
                          { value = text; text = "\"" ^ String.escaped text ^ "\"" } }
                  in
                  operators (`Tok strtok :: acc) rest'
                | None ->
                  Diag.error t.diag ~loc:h.Token.loc
                    "'#' must be followed by a macro parameter";
                  operators acc rest)
              | [] ->
                Diag.error t.diag ~loc:h.Token.loc
                  "'#' at end of macro body";
                List.rev acc)
            | a :: { Token.kind = Token.Punct Token.HashHash; _ } :: b :: rest ->
              (* Paste the last token of a's replacement with the first of
                 b's, re-lexing the concatenation. *)
              let left =
                match subst_of a with
                | Some toks -> List.map (fun (x : ptok) -> x.tok) toks
                | None -> [ a ]
              in
              let right =
                match subst_of b with
                | Some toks -> List.map (fun (x : ptok) -> x.tok) toks
                | None -> [ b ]
              in
              let pasted =
                match (List.rev left, right) with
                | l :: ls, r :: rs ->
                  let text = Token.spelling l ^ Token.spelling r in
                  let buf =
                    Mc_srcmgr.Memory_buffer.create ~name:"<paste>" ~contents:text
                  in
                  let id = Srcmgr.load_buffer t.srcmgr buf in
                  let relexed = Lexer.tokenize t.diag ~file_id:id buf in
                  (match relexed with
                  | [ single ] -> List.rev ls @ [ single ] @ rs
                  | _ ->
                    Diag.error t.diag ~loc:a.Token.loc
                      (Printf.sprintf
                         "pasting forms '%s', an invalid preprocessing token"
                         text);
                    List.rev ls @ relexed @ rs)
                | _, _ -> left @ right
              in
              operators (List.rev_map (fun x -> `Tok x) pasted @ acc) rest
            | tok :: rest -> operators (`Raw tok :: acc) rest
          in
          (* Pass 2: ordinary parameter substitution on what remains. *)
          let substituted =
            List.concat_map
              (function
                | `Tok tok -> [ { tok; hide } ] (* from # or ##: no expansion *)
                | `Raw (btok : Token.t) -> (
                  match subst_of btok with
                  | Some arg_toks ->
                    List.map (fun (a : ptok) -> { a with hide }) arg_toks
                  | None -> [ { tok = btok; hide } ]))
              (operators [] body)
          in
          t.pending <- substituted @ t.pending;
          true
        end
      | _ ->
        push_back t next;
        false))
  | _ -> false

(* ---- #if expression evaluation --------------------------------------- *)

(* Evaluates the controlling expression of an #if/#elif from an
   already-collected directive token list.  [defined X] and [defined(X)] are
   handled before macro expansion, per the standard. *)
let eval_condition t (toks : Token.t list) ~loc =
  (* Phase 1: resolve 'defined'. *)
  let rec resolve_defined = function
    | [] -> []
    | ({ Token.kind = Token.Ident "defined"; _ } as d) :: rest -> (
      let mk v =
        {
          d with
          Token.kind =
            Token.Int_lit
              {
                value = (if v then 1L else 0L);
                suffix = { suffix_unsigned = false; suffix_long = false };
                text = (if v then "1" else "0");
              };
        }
      in
      match rest with
      | { Token.kind = Token.Ident name; _ } :: rest' ->
        mk (Hashtbl.mem t.macros name) :: resolve_defined rest'
      | { Token.kind = Token.Punct Token.LParen; _ }
        :: { Token.kind = Token.Ident name; _ }
        :: { Token.kind = Token.Punct Token.RParen; _ }
        :: rest' ->
        mk (Hashtbl.mem t.macros name) :: resolve_defined rest'
      | _ ->
        Diag.error t.diag ~loc "expected identifier after 'defined'";
        mk false :: resolve_defined rest)
    | tok :: rest -> tok :: resolve_defined rest
  in
  (* Phase 2: macro-expand by feeding through the pending queue. *)
  let saved = t.pending in
  t.pending <- List.map (fun tok -> { tok; hide = [] }) (resolve_defined toks);
  let rec drain acc =
    match t.pending with
    | [] -> List.rev acc
    | _ ->
      let p = fetch t in
      if try_expand t p then drain acc else drain (p.tok :: acc)
  in
  let toks = drain [] in
  t.pending <- saved;
  (* Phase 3: recursive-descent evaluation; unknown identifiers become 0. *)
  let toks = ref toks in
  let peek () = match !toks with [] -> None | x :: _ -> Some x in
  let advance () = match !toks with [] -> () | _ :: r -> toks := r in
  let error msg =
    Diag.error t.diag ~loc msg;
    0L
  in
  let rec primary () =
    match peek () with
    | Some { Token.kind = Token.Int_lit { value; _ }; _ } ->
      advance ();
      value
    | Some { Token.kind = Token.Char_lit { value; _ }; _ } ->
      advance ();
      Int64.of_int value
    | Some { Token.kind = Token.Ident _; _ } ->
      advance ();
      0L
    | Some { Token.kind = Token.Punct Token.LParen; _ } ->
      advance ();
      let v = ternary () in
      (match peek () with
      | Some { Token.kind = Token.Punct Token.RParen; _ } -> advance ()
      | _ -> ignore (error "expected ')' in preprocessor expression"));
      v
    | Some { Token.kind = Token.Punct Token.Exclaim; _ } ->
      advance ();
      if Int64.equal (primary ()) 0L then 1L else 0L
    | Some { Token.kind = Token.Punct Token.Minus; _ } ->
      advance ();
      Int64.neg (primary ())
    | Some { Token.kind = Token.Punct Token.Plus; _ } ->
      advance ();
      primary ()
    | Some { Token.kind = Token.Punct Token.Tilde; _ } ->
      advance ();
      Int64.lognot (primary ())
    | _ -> error "expected expression in preprocessor condition"
  and binary_level level =
    (* Precedence climbing over the usual C binary operators. *)
    let op_level (p : Token.punct) =
      match p with
      | Token.Star | Token.Slash | Token.Percent -> Some 10
      | Token.Plus | Token.Minus -> Some 9
      | Token.LessLess | Token.GreaterGreater -> Some 8
      | Token.Less | Token.LessEqual | Token.Greater | Token.GreaterEqual ->
        Some 7
      | Token.EqualEqual | Token.ExclaimEqual -> Some 6
      | Token.Amp -> Some 5
      | Token.Caret -> Some 4
      | Token.Pipe -> Some 3
      | Token.AmpAmp -> Some 2
      | Token.PipePipe -> Some 1
      | _ -> None
    in
    let apply p a b =
      let bool v = if v then 1L else 0L in
      match (p : Token.punct) with
      | Token.Star -> Int64.mul a b
      | Token.Slash -> if Int64.equal b 0L then error "division by zero in #if" else Int64.div a b
      | Token.Percent -> if Int64.equal b 0L then error "modulo by zero in #if" else Int64.rem a b
      | Token.Plus -> Int64.add a b
      | Token.Minus -> Int64.sub a b
      | Token.LessLess -> Int64.shift_left a (Int64.to_int b land 63)
      | Token.GreaterGreater -> Int64.shift_right a (Int64.to_int b land 63)
      | Token.Less -> bool (Int64.compare a b < 0)
      | Token.LessEqual -> bool (Int64.compare a b <= 0)
      | Token.Greater -> bool (Int64.compare a b > 0)
      | Token.GreaterEqual -> bool (Int64.compare a b >= 0)
      | Token.EqualEqual -> bool (Int64.equal a b)
      | Token.ExclaimEqual -> bool (not (Int64.equal a b))
      | Token.Amp -> Int64.logand a b
      | Token.Caret -> Int64.logxor a b
      | Token.Pipe -> Int64.logor a b
      | Token.AmpAmp -> bool ((not (Int64.equal a 0L)) && not (Int64.equal b 0L))
      | Token.PipePipe -> bool ((not (Int64.equal a 0L)) || not (Int64.equal b 0L))
      | _ ->
        (* [op_level] only admits the punctuators handled above. *)
        Mc_support.Crash_recovery.internal_error
          "#if evaluator applied to a non-operator punctuator"
    in
    let rec loop lhs =
      match peek () with
      | Some { Token.kind = Token.Punct p; _ } -> (
        match op_level p with
        | Some l when l >= level ->
          advance ();
          let rhs = binary_level (l + 1) in
          loop (apply p lhs rhs)
        | _ -> lhs)
      | _ -> lhs
    in
    loop (if level > 10 then primary () else binary_level (level + 1))
  and ternary () =
    let c = binary_level 1 in
    match peek () with
    | Some { Token.kind = Token.Punct Token.Question; _ } ->
      advance ();
      let a = ternary () in
      (match peek () with
      | Some { Token.kind = Token.Punct Token.Colon; _ } -> advance ()
      | _ -> ignore (error "expected ':' in preprocessor conditional"));
      let b = ternary () in
      if Int64.equal c 0L then b else a
    | _ -> c
  in
  not (Int64.equal (ternary ()) 0L)

(* ---- Directive handling ----------------------------------------------- *)

(* Collect the raw tokens of one directive line: everything until the next
   token flagged [at_line_start] (which is pushed back) or the end of the
   *current* file — a directive never continues into the including file, so
   this must not pop the lexer stack. *)
let directive_tokens t =
  let next_same_file () =
    match t.sources with [] -> eof_token | source :: _ -> source_next source
  in
  let rec go acc =
    let tok = next_same_file () in
    if Token.is_eof tok then List.rev acc
    else if tok.Token.at_line_start then begin
      push_back t { tok; hide = [] };
      List.rev acc
    end
    else go (tok :: acc)
  in
  go []

let live t = List.for_all (fun c -> c.live) t.conds

let handle_define t loc toks =
  match toks with
  | { Token.kind = Token.Ident name; _ } :: rest ->
    let macro =
      match rest with
      | ({ Token.kind = Token.Punct Token.LParen; has_space_before = false; _ })
        :: after_paren ->
        (* Function-like: parse the parameter list. *)
        let rec params acc = function
          | { Token.kind = Token.Punct Token.RParen; _ } :: body ->
            (List.rev acc, body)
          | { Token.kind = Token.Ident p; _ }
            :: { Token.kind = Token.Punct Token.Comma; _ }
            :: more ->
            params (p :: acc) more
          | { Token.kind = Token.Ident p; _ }
            :: ({ Token.kind = Token.Punct Token.RParen; _ } :: _ as more) ->
            params (p :: acc) more
          | _ ->
            Diag.error t.diag ~loc "malformed macro parameter list";
            (List.rev acc, [])
        in
        let params, body = params [] after_paren in
        Function { params; body }
      | body -> Object body
    in
    if Hashtbl.mem t.macros name then
      Diag.warning t.diag ~loc (Printf.sprintf "'%s' macro redefined" name);
    Hashtbl.replace t.macros name macro
  | _ -> Diag.error t.diag ~loc "macro name missing in #define"

let handle_include t loc toks =
  match toks with
  | [ { Token.kind = Token.String_lit { value = path; _ }; _ } ] -> (
    if t.include_depth > 64 then
      Diag.error t.diag ~loc "#include nested too deeply"
    else
      match Fmgr.get_file t.fmgr path with
      | None ->
        Diag.error t.diag ~loc
          (Printf.sprintf "'%s' file not found" path)
      | Some buf ->
        Stats.incr stat_files;
        (* Record what was actually included (path + content digest): the
           stage cache validates a cached PPTokens artifact against this
           set, so editing an included file invalidates the entry. *)
        t.includes <- (path, Mc_srcmgr.Memory_buffer.digest buf) :: t.includes;
        let file_id = Srcmgr.load_buffer t.srcmgr buf in
        t.include_depth <- t.include_depth + 1;
        t.sources <- Src_lexer (Lexer.create t.diag ~file_id buf) :: t.sources)
  | _ -> Diag.error t.diag ~loc "expected \"FILENAME\" after #include"

(* Skip tokens of a dead conditional branch, honouring nesting.  Returns at
   the directive that reactivates this level (#elif/#else/#endif), which the
   caller then processes. *)

let rec next_item t : item option =
  (* Must go through [fetch]: directive handling pushes the first token of
     the following line back onto the pending queue. *)
  let p = fetch t in
  let tok = p.tok in
  match tok.Token.kind with
  | Token.Eof ->
    if t.conds <> [] then
      Diag.error t.diag ~loc:tok.Token.loc "unterminated #if";
    None
  | Token.Punct Token.Hash when tok.Token.at_line_start ->
    handle_directive t tok
  | _ when not (live t) -> next_item t
  | Token.Ident _ -> if try_expand t p then next_item t else Some (Tok tok)
  | _ -> Some (Tok tok)

and handle_directive t hash_tok : item option =
  Stats.incr stat_directives;
  let loc = hash_tok.Token.loc in
  let toks = directive_tokens t in
  match toks with
  | [] -> next_item t (* null directive *)
  | { Token.kind = name_kind; _ } :: rest -> (
    let name =
      match name_kind with
      | Token.Ident s -> s
      | Token.Keyword kw -> Token.keyword_to_string kw
      | Token.Punct p -> Token.punct_to_string p
      | _ -> ""
    in
    match name with
    | "define" when live t ->
      handle_define t loc rest;
      next_item t
    | "undef" when live t ->
      (match rest with
      | [ { Token.kind = Token.Ident n; _ } ] -> Hashtbl.remove t.macros n
      | _ -> Diag.error t.diag ~loc "macro name missing in #undef");
      next_item t
    | "include" when live t ->
      handle_include t loc rest;
      next_item t
    | "pragma" when live t -> (
      (* Expand macros in the pragma's token stream, as OpenMP requires. *)
      let saved = t.pending in
      t.pending <- List.map (fun tok -> { tok; hide = [] }) rest;
      let rec drain acc =
        match t.pending with
        | [] -> List.rev acc
        | _ ->
          let p = fetch t in
          if try_expand t p then drain acc else drain (p.tok :: acc)
      in
      let pragma_toks = drain [] in
      t.pending <- saved;
      match pragma_toks with
      | { Token.kind = Token.Ident ("omp" | "clang"); _ } :: _ ->
        Stats.incr stat_pragmas;
        Some (Prag { pragma_loc = loc; pragma_toks })
      | { Token.kind = Token.Ident other; _ } :: _ ->
        Diag.warning t.diag ~loc
          (Printf.sprintf "unknown pragma '%s' ignored" other);
        next_item t
      | _ ->
        Diag.warning t.diag ~loc "empty #pragma ignored";
        next_item t)
    | "ifdef" | "ifndef" ->
      let was_live = live t in
      let cond =
        match rest with
        | [ { Token.kind = Token.Ident n; _ } ] ->
          let defined = Hashtbl.mem t.macros n in
          if name = "ifdef" then defined else not defined
        | _ ->
          if was_live then
            Diag.error t.diag ~loc
              (Printf.sprintf "macro name missing in #%s" name);
          false
      in
      let branch = was_live && cond in
      t.conds <- { taken = branch; live = branch; was_live } :: t.conds;
      next_item t
    | "if" ->
      let was_live = live t in
      let cond = if was_live then eval_condition t rest ~loc else false in
      let branch = was_live && cond in
      t.conds <- { taken = branch; live = branch; was_live } :: t.conds;
      next_item t
    | "elif" ->
      (match t.conds with
      | [] -> Diag.error t.diag ~loc "#elif without #if"
      | c :: _ ->
        if c.taken then c.live <- false
        else begin
          let cond = c.was_live && eval_condition t rest ~loc in
          c.live <- cond;
          if cond then c.taken <- true
        end);
      next_item t
    | "else" ->
      (match t.conds with
      | [] -> Diag.error t.diag ~loc "#else without #if"
      | c :: _ ->
        c.live <- c.was_live && not c.taken;
        c.taken <- true);
      next_item t
    | "endif" ->
      (match t.conds with
      | [] -> Diag.error t.diag ~loc "#endif without #if"
      | _ :: rest_conds -> t.conds <- rest_conds);
      next_item t
    | "error" ->
      if live t then begin
        let text =
          String.concat " " (List.map Token.spelling rest)
        in
        Diag.error t.diag ~loc ("#error " ^ text)
      end;
      next_item t
    | _ ->
      if live t then
        Diag.error t.diag ~loc
          (Printf.sprintf "invalid preprocessing directive '#%s'" name);
      next_item t)

(* ---- Entry points ------------------------------------------------------ *)

let define_object_macro t ~name ~body =
  let buf = Mc_srcmgr.Memory_buffer.create ~name:("<define:" ^ name ^ ">") ~contents:body in
  let file_id = Srcmgr.load_buffer t.srcmgr buf in
  let body_toks = Mc_lexer.Lexer.tokenize t.diag ~file_id buf in
  Hashtbl.replace t.macros name (Object body_toks)

let drive t =
  t.pending <- [];
  t.conds <- [];
  let rec go acc =
    match next_item t with None -> List.rev acc | Some item -> go (item :: acc)
  in
  go []

let preprocess_main t buf =
  Stats.incr stat_files;
  let file_id = Srcmgr.load_main t.srcmgr buf in
  t.sources <- [ Src_lexer (Lexer.create t.diag ~file_id buf) ];
  drive t

let preprocess_tokens t ~file_id buf toks =
  Stats.incr stat_files;
  (* Same end-of-buffer Eof a live lexer would produce: offset at the end
     of the main buffer, so "unterminated #if"-style diagnostics point to
     the same place whether the tokens were replayed or lexed. *)
  let eof =
    {
      Token.kind = Token.Eof;
      loc = Srcmgr.location t.srcmgr ~file_id ~offset:(Mc_srcmgr.Memory_buffer.length buf);
      len = 0;
      at_line_start = true;
      has_space_before = false;
    }
  in
  t.sources <- [ Src_replay { r_toks = toks; r_eof = eof } ];
  drive t
