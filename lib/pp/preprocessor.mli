(** The preprocessor layer (Clang's Preprocessor in Fig. 1 of the paper).

    It drives the lexer, maintains the include stack and macro table,
    evaluates conditional-compilation directives, and — crucially for this
    reproduction — recognises [#pragma omp ...] / [#pragma clang loop ...]
    lines, macro-expands their token stream (as the OpenMP specification
    requires), and hands them to the parser as first-class {!pragma} items
    interleaved with ordinary tokens. *)

type pragma = {
  pragma_loc : Mc_srcmgr.Source_location.t; (* location of the '#' *)
  pragma_toks : Mc_lexer.Token.t list; (* tokens after '#pragma', expanded *)
}

type item = Tok of Mc_lexer.Token.t | Prag of pragma

type t

val create :
  Mc_diag.Diagnostics.t ->
  Mc_srcmgr.Source_manager.t ->
  Mc_srcmgr.File_manager.t ->
  t

val define_object_macro : t -> name:string -> body:string -> unit
(** Predefine an object-like macro, as a driver [-D] flag would. *)

val preprocess_main : t -> Mc_srcmgr.Memory_buffer.t -> item list
(** Runs the full preprocessing of a main buffer (registering it with the
    source manager) and returns the parser-ready stream, [Eof] excluded. *)

val preprocess_tokens :
  t -> file_id:int -> Mc_srcmgr.Memory_buffer.t -> Mc_lexer.Token.t list ->
  item list
(** Like {!preprocess_main}, but replays an already-lexed token stream of
    the main buffer (which the caller has registered with the source
    manager as [file_id]) instead of driving a lexer over it — how the
    stage-graph pipeline reuses a cached Lex artifact.  Included files
    still lex live. *)

val include_digests : t -> (string * string) list
(** The [(path, content digest)] of every file this preprocessor entered
    via [#include], in inclusion order (duplicates included).  The stage
    cache stores this alongside a PPTokens artifact and validates it
    against the current file manager before reusing the entry. *)

val macro_names : t -> string list
(** Currently defined macro names, for tests. *)
