open Mc_ast.Tree
module Classify = Mc_ast.Classify
module Diag = Mc_diag.Diagnostics

let error sema ~loc fmt =
  Printf.ksprintf (fun s -> Diag.error (Sema.diagnostics sema) ~loc s) fmt

let act_on_clause_expr_positive sema ~what e ~loc =
  match Const_eval.eval_int_as (Sema.rvalue sema e) with
  | Some n when n >= 1 -> (n, e)
  | Some n ->
    error sema ~loc "argument of '%s' clause must be positive (got %d)" what n;
    (1, e)
  | None ->
    error sema ~loc "argument of '%s' clause must be a constant integer" what;
    (1, e)

let transformed_stmt d = d.dir_transformed

(* ---- clause compatibility ------------------------------------------------ *)

let clause_allowed kind clause =
  let name = Classify.clause_class_name clause in
  let ok =
    match (kind, clause) with
    | D_unroll, (C_full | C_partial _) -> true
    | (D_tile | D_stripe), C_sizes _ -> true
    | D_interchange, C_permutation _ -> true
    | _, C_permutation _ -> false
    | ( ( D_unroll | D_tile | D_reverse | D_interchange | D_stripe | D_fuse
        | D_fission ),
        _ ) ->
      false
    | _, (C_full | C_partial _ | C_sizes _) -> false
    | (D_parallel | D_parallel_for | D_parallel_for_simd),
      (C_num_threads _ | C_if _) ->
      true
    | _, (C_num_threads _ | C_if _) -> false
    | (D_for | D_parallel_for | D_for_simd | D_parallel_for_simd),
      (C_schedule _ | C_nowait) ->
      true
    | _, (C_schedule _ | C_nowait) -> false
    | (D_for | D_parallel_for | D_simd | D_for_simd | D_parallel_for_simd),
      C_collapse _ ->
      true
    | _, C_collapse _ -> false
    | (D_simd | D_for_simd | D_parallel_for_simd), C_simdlen _ -> true
    | _, C_simdlen _ -> false
    | ( (D_parallel | D_for | D_parallel_for | D_simd | D_for_simd
        | D_parallel_for_simd),
        (C_private _ | C_firstprivate _ | C_shared _ | C_reduction _) ) ->
      true
    | _, (C_private _ | C_firstprivate _ | C_shared _ | C_reduction _) -> false
  in
  (ok, name)

let validate_clauses sema kind clauses ~loc =
  List.filter
    (fun c ->
      let ok, name = clause_allowed kind c in
      if not ok then
        error sema ~loc "clause '%s' is not valid on directive '%s'" name
          (Classify.directive_class_name kind);
      ok)
    clauses

(* ---- loop nest collection -------------------------------------------------- *)

let rec unwrap_single s =
  match s.s_kind with
  | Compound [ single ] -> unwrap_single single
  | _ -> s

(* Collect [depth] perfectly nested canonical loops.  Returns the analyses
   (outermost first) together with a function that rebuilds the nest with
   each literal loop replaced (used by irbuilder mode to insert
   OMPCanonicalLoop wrappers). *)
let rec collect_nest sema depth s :
    (Canonical.analyzed list * ((stmt -> stmt) -> stmt)) option =
  if depth = 0 then Some ([], fun _ -> s)
  else begin
    let s = unwrap_single s in
    match s.s_kind with
    | For parts -> (
      match Canonical.analyze sema s with
      | None -> None
      | Some a -> (
        if depth = 1 then Some ([ a ], fun wrap -> wrap s)
        else begin
          match collect_nest sema (depth - 1) parts.for_body with
          | None -> None
          | Some (inner, rebuild_inner) ->
            let rebuild wrap =
              let new_body = rebuild_inner wrap in
              wrap
                (mk_stmt ~loc:s.s_loc (For { parts with for_body = new_body }))
            in
            Some (a :: inner, rebuild)
        end))
    | Range_for _ -> (
      match Canonical.analyze sema s with
      | None -> None
      | Some a ->
        if depth = 1 then Some ([ a ], fun wrap -> wrap s)
        else begin
          error sema ~loc:s.s_loc
            "range-based for loops cannot carry a nested associated loop";
          None
        end)
    | Attributed (_, sub) -> collect_nest sema depth sub
    | Omp_canonical_loop _ -> (
      (* Already wrapped (irbuilder mode, re-analysis of a consumed
         transformation); do not wrap again. *)
      match Canonical.analyze sema s with
      | None -> None
      | Some a ->
        if depth = 1 then Some ([ a ], fun _wrap -> s)
        else begin
          error sema ~loc:s.s_loc
            "nested associated loops inside an OMPCanonicalLoop are not \
             supported";
          None
        end)
    | _ ->
      error sema ~loc:s.s_loc
        "expected %d nested canonical for loop(s) after the directive" depth;
      None
  end

(* Looking through an associated loop transformation: the consuming
   directive analyses the generated loop (paper §2: getTransformedStmt). *)
let consume_transformation sema (inner : directive) ~loc =
  if inner.dir_kind = D_fission then begin
    (* Symmetric in both modes: fission generates a loop *sequence*, which
       no consuming directive can associate with. *)
    error sema ~loc
      "a loop transformation that generates a loop sequence ('fission') \
       cannot be associated with another directive";
    None
  end
  else
    match Sema.mode sema with
    | Sema.Classic -> (
      match inner.dir_transformed with
      | Some tr -> Some tr
      | None ->
        (match inner.dir_kind with
        | D_unroll ->
          error sema ~loc
            "a loop transformation that does not generate a loop (full or \
             heuristic unroll) cannot be associated with another directive"
        | _ ->
          error sema ~loc "associated loop transformation generates no loop");
        None)
    | Sema.Irbuilder -> (
      (* No shadow AST exists; validity is checked structurally and code
         generation composes CanonicalLoopInfo handles instead. *)
      match inner.dir_kind with
      | D_unroll
        when not
               (List.exists
                  (function C_partial _ -> true | _ -> false)
                  inner.dir_clauses) ->
        error sema ~loc
          "a loop transformation that does not generate a loop (full or \
           heuristic unroll) cannot be associated with another directive";
        None
      | _ -> inner.dir_assoc)

let is_parallel_kind = function
  | D_parallel | D_parallel_for | D_parallel_for_simd -> true
  | D_for | D_simd | D_for_simd | D_unroll | D_tile | D_reverse
  | D_interchange | D_stripe | D_fuse | D_fission | D_barrier | D_single
  | D_master | D_critical _ ->
    false

(* Validated 0-based permutation for an interchange directive: without a
   clause the outermost two loops swap (the OpenMP 6.0 default). *)
let permutation_of sema clauses ~loc =
  match
    List.find_map (function C_permutation ps -> Some ps | _ -> None) clauses
  with
  | None -> [ 1; 0 ]
  | Some ps ->
    let n = List.length ps in
    let positions = List.map fst ps in
    if List.sort compare positions <> List.init n (fun i -> i + 1) then begin
      error sema ~loc
        "'permutation' arguments must name each loop position 1..%d exactly once"
        n;
      List.init n Fun.id
    end
    else List.map (fun p -> p - 1) positions

(* [#pragma omp fuse]: the associated statement is a *loop sequence* — a
   compound whose members are all canonical loops. *)
let act_on_fuse sema ~clauses ~assoc ~loc =
  let finish d = mk_stmt ~loc (Omp_directive d) in
  match assoc with
  | Some ({ s_kind = Compound members; _ } as original)
    when List.length members >= 2 -> (
    let analyzed =
      List.map (fun m -> Canonical.analyze sema (unwrap_single m)) members
    in
    match
      List.for_all Option.is_some analyzed
    with
    | false -> finish (mk_directive ~kind:D_fuse ~clauses ~assoc:original ~loc ())
    | true -> (
      let loops = List.map Option.get analyzed in
      match Sema.mode sema with
      | Sema.Classic ->
        let d = mk_directive ~kind:D_fuse ~clauses ~assoc:original ~loc () in
        (match
           Transform.apply sema Transform.Fuse Transform.no_params loops ~loc
         with
        | Transform.Applied tr ->
          d.dir_transformed <- Some tr.Shadow.tr_stmt;
          d.dir_preinits <- Some tr.Shadow.tr_preinits
        | Transform.Deferred | Transform.Not_applicable -> ());
        finish d
      | Sema.Irbuilder ->
        let wrapped =
          List.map2
            (fun member a ->
              ignore member;
              Canonical.make_canonical_loop sema a)
            members loops
        in
        let assoc = mk_stmt ~loc:original.s_loc (Compound wrapped) in
        finish (mk_directive ~kind:D_fuse ~clauses ~assoc ~loc ())))
  | Some bad ->
    error sema ~loc:bad.s_loc
      "'fuse' requires a compound statement containing at least two \
       canonical loops (a loop sequence)";
    finish (mk_directive ~kind:D_fuse ~clauses ~assoc:bad ~loc ())
  | None ->
    error sema ~loc "'fuse' requires an associated loop sequence";
    finish (mk_directive ~kind:D_fuse ~clauses ~loc ())

(* ---- main entry ------------------------------------------------------------ *)

let act_on_directive_inner sema ~kind ~clauses ~assoc ~loc =
  let clauses = validate_clauses sema kind clauses ~loc in
  let finish d = mk_stmt ~loc (Omp_directive d) in
  if not (Classify.is_omp_loop_based_directive kind) then begin
    (* Non-loop directives. *)
    match kind with
    | D_barrier ->
      if assoc <> None then
        error sema ~loc "'barrier' is a standalone directive";
      finish (mk_directive ~kind ~clauses ~loc ())
    | D_parallel | D_single | D_master | D_critical _ -> (
      match assoc with
      | None ->
        error sema ~loc "directive requires an associated statement";
        finish (mk_directive ~kind ~clauses ~loc ())
      | Some body ->
        let wrapped =
          if is_parallel_kind kind then Capture.make_captured_stmt body
          else body
        in
        finish (mk_directive ~kind ~clauses ~assoc:wrapped ~loc ()))
    | _ -> finish (mk_directive ~kind ~clauses ~loc ())
  end
  else if kind = D_fuse then act_on_fuse sema ~clauses ~assoc ~loc
  else begin
    (* Loop-based directives.  The permutation is validated once here —
       both the depth computation and the classic lowering read this
       result, so a malformed clause is diagnosed exactly once. *)
    let interchange_perm =
      if kind = D_interchange then Some (permutation_of sema clauses ~loc)
      else None
    in
    let depth =
      match kind with
      | D_reverse -> 1
      | D_interchange -> List.length (Option.get interchange_perm)
      | _ ->
        let rec from_clauses = function
          | [] -> 1
          | C_collapse (n, _) :: _ -> n
          | C_sizes sizes :: _ -> List.length sizes
          | _ :: rest -> from_clauses rest
        in
        from_clauses clauses
    in
    (match kind with
    | (D_tile | D_stripe)
      when not (List.exists (function C_sizes _ -> true | _ -> false) clauses)
      ->
      error sema ~loc "'%s' requires a 'sizes' clause"
        (if kind = D_tile then "tile" else "stripe")
    | _ -> ());
    if depth > Sema.loop_nest_limit sema then begin
      (* A resource limit, not a crash: e.g. [collapse(1000000)] would drive
         the nest collection (and downstream transformation builders) to an
         absurd recursion depth.  Diagnose and keep the directive un-analyzed. *)
      error sema ~loc
        "directive requires a loop nest of depth %d, which exceeds the maximum of %d [-floop-nest-limit=]"
        depth (Sema.loop_nest_limit sema);
      finish (mk_directive ?assoc ~kind ~clauses ~loc ())
    end
    else
    match assoc with
    | None ->
      error sema ~loc "loop directive requires an associated loop";
      finish (mk_directive ~kind ~clauses ~loc ())
    | Some original_assoc -> (
      (* Look through a directly associated loop transformation: the
         *analysis* target is its generated loop, while the syntactic AST
         keeps the nested directive (Fig. 6). *)
      let generated, consumed_transform =
        match (unwrap_single original_assoc).s_kind with
        | Omp_directive inner when Classify.is_loop_transformation inner.dir_kind
          -> (
          match consume_transformation sema inner ~loc with
          | Some g -> (g, Some (unwrap_single original_assoc))
          | None -> (original_assoc, None))
        | _ -> (original_assoc, None)
      in
      (* The paper's §2 quality suggestion: diagnostics against the
         *generated* loop carry a note pointing at the transformation that
         produced it (like template-instantiation notes). *)
      let with_transform_note f =
        match consumed_transform with
        | Some { s_kind = Omp_directive inner; _ } ->
          Diag.with_context_note (Sema.diagnostics sema) ~loc:inner.dir_loc
            (Printf.sprintf "within the loop generated by '#pragma omp %s' here"
               (match inner.dir_kind with
               | D_unroll -> "unroll"
               | D_tile -> "tile"
               | D_reverse -> "reverse"
               | D_interchange -> "interchange"
               | D_stripe -> "stripe"
               | D_fuse -> "fuse"
               | D_fission -> "fission"
               | _ -> "<transformation>"))
            f
        | _ -> f ()
      in
      if kind = D_fission && consumed_transform <> None then begin
        (* The sequence-producing dual: splitting the loop another
           transformation generates has no per-statement body to split. *)
        error sema ~loc
          "'fission' of the loop generated by another transformation is not \
           supported";
        finish (mk_directive ~kind ~clauses ~assoc:original_assoc ~loc ())
      end
      else
      match (Sema.mode sema, consumed_transform) with
      | Sema.Irbuilder, Some _ ->
        (* The inner transformation directive already wraps (and validated)
           its loops; keep the nesting untouched — codegen composes
           CanonicalLoopInfo handles. *)
        let assoc_final =
          if is_parallel_kind kind then Capture.make_captured_stmt original_assoc
          else original_assoc
        in
        finish (mk_directive ~kind ~clauses ~assoc:assoc_final ~loc ())
      | _ -> (
      match with_transform_note (fun () -> collect_nest sema depth generated) with
      | None -> finish (mk_directive ~kind ~clauses ~assoc:original_assoc ~loc ())
      | Some (loops, _rebuild)
        when kind = D_fission
             &&
             match (List.hd loops).Canonical.cl_body.s_kind with
             | Compound ms ->
               List.exists
                 (fun m ->
                   match m.s_kind with Decl_stmt _ -> true | _ -> false)
                 ms
             | _ -> false ->
        (* Splitting would move a declaration out of the scope of the
           statements that use it; refuse rather than mis-compile. *)
        error sema ~loc
          "'fission' cannot split a loop body that declares variables";
        finish (mk_directive ~kind ~clauses ~assoc:original_assoc ~loc ())
      | Some (loops, rebuild) -> (
        match Sema.mode sema with
        | Sema.Irbuilder ->
          (* Wrap each literal loop in OMPCanonicalLoop (Fig. 9). *)
          let assoc_final =
            rebuild (fun literal ->
                match Canonical.analyze sema literal with
                | Some a -> Canonical.make_canonical_loop sema a
                | None -> literal)
          in
          let assoc_final =
            if is_parallel_kind kind then Capture.make_captured_stmt assoc_final
            else assoc_final
          in
          finish (mk_directive ~kind ~clauses ~assoc:assoc_final ~loc ())
        | Sema.Classic -> (
          match Transform.of_directive kind with
          | Some tkind ->
            (* Every classic loop transformation funnels through the single
               [Transform.apply] entry point shared with the script-driven
               path. *)
            let d = mk_directive ~kind ~clauses ~assoc:original_assoc ~loc () in
            let params =
              Transform.params_of_clauses ?perm:interchange_perm clauses
            in
            (match Transform.apply sema tkind params loops ~loc with
            | Transform.Applied tr ->
              d.dir_transformed <- Some tr.Shadow.tr_stmt;
              d.dir_preinits <- Some tr.Shadow.tr_preinits
            | Transform.Deferred | Transform.Not_applicable -> ());
            finish d
          | None ->
            (* OMPLoopDirective family: shadow loop helpers + CapturedStmt
               wrapping (Fig. 2).  The captured region keeps the syntactic
               statement (possibly a nested transformation directive); its
               shadow children are included in the capture analysis. *)
            let wrapped = Capture.make_captured_stmt original_assoc in
            let d = mk_directive ~kind ~clauses ~assoc:wrapped ~loc () in
            d.dir_loop_helpers <- Some (Shadow.build_loop_helpers sema loops ~loc);
            finish d))))
  end

let act_on_directive sema ~kind ~clauses ~assoc ~loc =
  (* Snapshot the error count: if analysing this directive diagnosed
     anything, the resulting statement is marked [contains_errors] so
     codegen / the interpreter refuse it instead of running a half-analysed
     transformation. *)
  let errors_before = Diag.error_count (Sema.diagnostics sema) in
  let stmt = act_on_directive_inner sema ~kind ~clauses ~assoc ~loc in
  if Diag.error_count (Sema.diagnostics sema) > errors_before then
    mark_stmt_errors stmt;
  stmt
