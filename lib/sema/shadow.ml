open Mc_ast.Tree
module Ctype = Mc_ast.Ctype

let stat_shadow =
  Mc_support.Stats.counter ~group:"sema" ~name:"shadow-stmts-built"
    ~desc:"shadow transformed-statement trees built (paper \xc2\xa72)" ()
let stat_tiles =
  Mc_support.Stats.counter ~group:"sema" ~name:"tile-transforms"
    ~desc:"tile constructs lowered to floor/tile loop nests" ()
let stat_helpers =
  Mc_support.Stats.counter ~group:"sema" ~name:"loop-helpers-built"
    ~desc:"classic OMPLoopDirective helper-expression sets built" ()
let stat_stripes =
  Mc_support.Stats.counter ~group:"sema" ~name:"stripe-transforms"
    ~desc:"stripe constructs lowered to adjacent grid/stripe loop pairs" ()
let stat_fissions =
  Mc_support.Stats.counter ~group:"sema" ~name:"fission-transforms"
    ~desc:"fission constructs split into per-statement loop sequences" ()

type transformed = {
  tr_stmt : stmt;
  tr_preinits : stmt;
  tr_capture_vars : var list;
}

let capture_trip_count sema (a : Canonical.analyzed) =
  let loc = a.Canonical.cl_stmt.s_loc in
  mk_var ~implicit:true ~name:".capture_expr." ~ty:a.Canonical.cl_counter_ty
    ~loc
    ~init:(Canonical.trip_count_expr sema a)
    ()

(* Bind the loop user variable for one logical iteration and transform the
   body accordingly.  Literal loops and by-value range-fors redeclare the
   variable; by-reference range-fors substitute the dereferenced element. *)
let bind_user_var sema (a : Canonical.analyzed) ~logical ~body =
  let loc = a.Canonical.cl_stmt.s_loc in
  let tt = Tree_transform.create () in
  if a.Canonical.cl_is_range_for then begin
    let lv = Canonical.user_lvalue sema a ~logical in
    let user = a.Canonical.cl_user_var in
    if
      (* by-ref: alias the element; by-value: fresh copy *)
      match a.Canonical.cl_stmt.s_kind with
      | Range_for rf -> rf.rf_byref
      | _ -> false
    then begin
      Tree_transform.substitute_var_expr tt ~from:user ~into:lv;
      (None, tt, Tree_transform.transform_stmt tt body)
    end
    else begin
      let copy = mk_var ~name:user.v_name ~ty:user.v_ty ~loc ~init:lv () in
      Tree_transform.substitute_var tt ~from:user ~into:copy;
      (Some copy, tt, Tree_transform.transform_stmt tt body)
    end
  end
  else begin
    let user = a.Canonical.cl_user_var in
    let value = Canonical.user_value_expr sema a ~logical in
    let copy = mk_var ~name:user.v_name ~ty:user.v_ty ~loc ~init:value () in
    Tree_transform.substitute_var tt ~from:user ~into:copy;
    (Some copy, tt, Tree_transform.transform_stmt tt body)
  end

let counter_for_loop sema (a : Canonical.analyzed) ~name ~init =
  let loc = a.Canonical.cl_stmt.s_loc in
  mk_var ~implicit:true ~name ~ty:a.Canonical.cl_counter_ty ~loc
    ~init:(Sema.convert sema init a.Canonical.cl_counter_ty)
    ()

let transformed_unroll sema (a : Canonical.analyzed) ~factor =
  Mc_support.Stats.incr stat_shadow;
  let loc = a.Canonical.cl_stmt.s_loc in
  let u = a.Canonical.cl_counter_ty in
  let bin op l r = Sema.act_on_binary sema op l r ~loc in
  let lit v = Sema.intexpr sema (Int64.of_int v) u loc in
  let capture = capture_trip_count sema a in
  let vname = a.Canonical.cl_user_var.v_name in
  let outer_iv =
    counter_for_loop sema a
      ~name:(Printf.sprintf ".unrolled.iv.%s" vname)
      ~init:(Sema.intexpr sema 0L u loc)
  in
  let inner_iv =
    counter_for_loop sema a
      ~name:(Printf.sprintf ".unroll_inner.iv.%s" vname)
      ~init:(Sema.mk_ref outer_iv)
  in
  (* Inner body: rebind the user variable from the logical number. *)
  let user_decl, _tt, body =
    bind_user_var sema a ~logical:(Sema.mk_ref inner_iv)
      ~body:a.Canonical.cl_body
  in
  let inner_body =
    match user_decl with
    | Some v -> mk_stmt ~loc (Compound [ mk_stmt ~loc (Decl_stmt [ v ]); body ])
    | None -> body
  in
  let inner_cond =
    bin B_land
      (bin B_lt (Sema.mk_ref inner_iv)
         (bin B_add (Sema.mk_ref outer_iv) (lit factor)))
      (bin B_lt (Sema.mk_ref inner_iv) (Sema.mk_ref capture))
  in
  let inner_for =
    mk_stmt ~loc
      (For
         {
           for_init = Some (mk_stmt ~loc (Decl_stmt [ inner_iv ]));
           for_cond = Some inner_cond;
           for_inc =
             Some (Sema.act_on_unary sema U_preinc (Sema.mk_ref inner_iv) ~loc);
           for_body = inner_body;
         })
  in
  let attributed =
    mk_stmt ~loc
      (Attributed
         ( [ Loop_hint { lh_option = Hint_unroll_count; lh_value = Some factor } ],
           inner_for ))
  in
  let outer_for =
    mk_stmt ~loc
      (For
         {
           for_init = Some (mk_stmt ~loc (Decl_stmt [ outer_iv ]));
           for_cond = Some (bin B_lt (Sema.mk_ref outer_iv) (Sema.mk_ref capture));
           for_inc =
             Some
               (Sema.act_on_assign sema (Some B_add) (Sema.mk_ref outer_iv)
                  (lit factor) ~loc);
           for_body = attributed;
         })
  in
  {
    tr_stmt = outer_for;
    tr_preinits = mk_stmt ~loc (Decl_stmt [ capture ]);
    tr_capture_vars = [ capture ];
  }

let transformed_tile sema loops ~sizes ~loc =
  Mc_support.Stats.incr stat_shadow;
  Mc_support.Stats.incr stat_tiles;
  let captures = List.map (capture_trip_count sema) loops in
  let floor_ivs =
    List.mapi
      (fun k (a : Canonical.analyzed) ->
        counter_for_loop sema a
          ~name:
            (Printf.sprintf ".floor.%d.iv.%s" k a.Canonical.cl_user_var.v_name)
          ~init:(Sema.intexpr sema 0L a.Canonical.cl_counter_ty loc))
      loops
  in
  let tile_ivs =
    List.map2
      (fun k_and_a floor_iv ->
        let k, (a : Canonical.analyzed) = k_and_a in
        counter_for_loop sema a
          ~name:(Printf.sprintf ".tile.%d.iv.%s" k a.Canonical.cl_user_var.v_name)
          ~init:(Sema.mk_ref floor_iv))
      (List.mapi (fun k a -> (k, a)) loops)
      floor_ivs
  in
  (* Innermost body: rebind every loop's user variable from its tile iv,
     applying the substitutions innermost-out so nested references all
     remap. *)
  let innermost = List.nth loops (List.length loops - 1) in
  let body = ref innermost.Canonical.cl_body in
  let decls = ref [] in
  List.iteri
    (fun k (a : Canonical.analyzed) ->
      let tile_iv = List.nth tile_ivs k in
      let user_decl, _tt, transformed =
        bind_user_var sema a ~logical:(Sema.mk_ref tile_iv) ~body:!body
      in
      body := transformed;
      match user_decl with Some v -> decls := v :: !decls | None -> ())
    loops;
  let inner_body =
    match !decls with
    | [] -> !body
    | ds ->
      mk_stmt ~loc
        (Compound (List.map (fun v -> mk_stmt ~loc (Decl_stmt [ v ])) (List.rev ds) @ [ !body ]))
  in
  (* Tile loops, innermost last: for (t = f; t < min(n, f + size); ++t). *)
  let with_tiles =
    List.fold_right2
      (fun ((a : Canonical.analyzed), (size, capture)) (floor_iv, tile_iv) acc ->
        let u = a.Canonical.cl_counter_ty in
        let bin op l r = Sema.act_on_binary sema op l r ~loc in
        let lit v = Sema.intexpr sema (Int64.of_int v) u loc in
        let upper = bin B_add (Sema.mk_ref floor_iv) (lit size) in
        let bounded =
          Sema.act_on_conditional sema
            (bin B_lt (Sema.mk_ref capture) upper)
            (Sema.mk_ref capture) upper ~loc
        in
        mk_stmt ~loc
          (For
             {
               for_init = Some (mk_stmt ~loc (Decl_stmt [ tile_iv ]));
               for_cond = Some (bin B_lt (Sema.mk_ref tile_iv) bounded);
               for_inc =
                 Some (Sema.act_on_unary sema U_preinc (Sema.mk_ref tile_iv) ~loc);
               for_body = acc;
             }))
      (List.combine loops (List.combine sizes captures))
      (List.combine floor_ivs tile_ivs)
      inner_body
  in
  let nest =
    List.fold_right2
      (fun ((a : Canonical.analyzed), (size, capture)) floor_iv acc ->
        let u = a.Canonical.cl_counter_ty in
        let bin op l r = Sema.act_on_binary sema op l r ~loc in
        let lit v = Sema.intexpr sema (Int64.of_int v) u loc in
        mk_stmt ~loc
          (For
             {
               for_init = Some (mk_stmt ~loc (Decl_stmt [ floor_iv ]));
               for_cond = Some (bin B_lt (Sema.mk_ref floor_iv) (Sema.mk_ref capture));
               for_inc =
                 Some
                   (Sema.act_on_assign sema (Some B_add) (Sema.mk_ref floor_iv)
                      (lit size) ~loc);
               for_body = acc;
             }))
      (List.combine loops (List.combine sizes captures))
      floor_ivs with_tiles
  in
  {
    tr_stmt = nest;
    tr_preinits = mk_stmt ~loc (Decl_stmt captures);
    tr_capture_vars = captures;
  }

(* Stripe (OpenMP 6.0): strip-mine each associated loop independently,
   keeping every grid/stripe pair adjacent.  Unlike tile — which hoists
   all grid loops above all intratile loops — the generated nest is

     for (g0 = 0; g0 < tc0; g0 += s0)
       for (e0 = g0; e0 < min(tc0, g0 + s0); ++e0)
         for (g1 = 0; g1 < tc1; g1 += s1)
           for (e1 = g1; e1 < min(tc1, g1 + s1); ++e1) body;

   which preserves the original execution order exactly. *)
let transformed_stripe sema loops ~sizes ~loc =
  Mc_support.Stats.incr stat_shadow;
  Mc_support.Stats.incr stat_stripes;
  let captures = List.map (capture_trip_count sema) loops in
  let grid_ivs =
    List.mapi
      (fun k (a : Canonical.analyzed) ->
        counter_for_loop sema a
          ~name:
            (Printf.sprintf ".stripe_grid.%d.iv.%s" k
               a.Canonical.cl_user_var.v_name)
          ~init:(Sema.intexpr sema 0L a.Canonical.cl_counter_ty loc))
      loops
  in
  let stripe_ivs =
    List.map2
      (fun k_and_a grid_iv ->
        let k, (a : Canonical.analyzed) = k_and_a in
        counter_for_loop sema a
          ~name:
            (Printf.sprintf ".stripe.%d.iv.%s" k a.Canonical.cl_user_var.v_name)
          ~init:(Sema.mk_ref grid_iv))
      (List.mapi (fun k a -> (k, a)) loops)
      grid_ivs
  in
  (* Innermost body: rebind every loop's user variable from its stripe iv. *)
  let innermost = List.nth loops (List.length loops - 1) in
  let body = ref innermost.Canonical.cl_body in
  let decls = ref [] in
  List.iteri
    (fun k (a : Canonical.analyzed) ->
      let stripe_iv = List.nth stripe_ivs k in
      let user_decl, _tt, transformed =
        bind_user_var sema a ~logical:(Sema.mk_ref stripe_iv) ~body:!body
      in
      body := transformed;
      match user_decl with Some v -> decls := v :: !decls | None -> ())
    loops;
  let inner_body =
    match !decls with
    | [] -> !body
    | ds ->
      mk_stmt ~loc
        (Compound
           (List.map (fun v -> mk_stmt ~loc (Decl_stmt [ v ])) (List.rev ds)
           @ [ !body ]))
  in
  (* Build the pairs innermost-out; each pair stays adjacent. *)
  let nest =
    List.fold_right2
      (fun ((a : Canonical.analyzed), (size, capture)) (grid_iv, stripe_iv) acc ->
        let u = a.Canonical.cl_counter_ty in
        let bin op l r = Sema.act_on_binary sema op l r ~loc in
        let lit v = Sema.intexpr sema (Int64.of_int v) u loc in
        let upper = bin B_add (Sema.mk_ref grid_iv) (lit size) in
        let bounded =
          Sema.act_on_conditional sema
            (bin B_lt (Sema.mk_ref capture) upper)
            (Sema.mk_ref capture) upper ~loc
        in
        let stripe_for =
          mk_stmt ~loc
            (For
               {
                 for_init = Some (mk_stmt ~loc (Decl_stmt [ stripe_iv ]));
                 for_cond = Some (bin B_lt (Sema.mk_ref stripe_iv) bounded);
                 for_inc =
                   Some
                     (Sema.act_on_unary sema U_preinc (Sema.mk_ref stripe_iv)
                        ~loc);
                 for_body = acc;
               })
        in
        mk_stmt ~loc
          (For
             {
               for_init = Some (mk_stmt ~loc (Decl_stmt [ grid_iv ]));
               for_cond = Some (bin B_lt (Sema.mk_ref grid_iv) (Sema.mk_ref capture));
               for_inc =
                 Some
                   (Sema.act_on_assign sema (Some B_add) (Sema.mk_ref grid_iv)
                      (lit size) ~loc);
               for_body = stripe_for;
             }))
      (List.combine loops (List.combine sizes captures))
      (List.combine grid_ivs stripe_ivs)
      inner_body
  in
  {
    tr_stmt = nest;
    tr_preinits = mk_stmt ~loc (Decl_stmt captures);
    tr_capture_vars = captures;
  }

(* ---- OMPLoopDirective helpers (classic worksharing codegen) -------------- *)

let build_loop_helpers sema loops ~loc =
  Mc_support.Stats.incr stat_helpers;
  let widest =
    if List.exists (fun a -> Ctype.equal a.Canonical.cl_counter_ty Ctype.ulong_t) loops
    then Ctype.ulong_t
    else Ctype.uint_t
  in
  let u = widest in
  let bin op l r = Sema.act_on_binary sema op l r ~loc in
  let lit v = Sema.intexpr sema v u loc in
  let var name ?init ty = mk_var ~implicit:true ~name ~ty ~loc ?init () in
  let captures =
    List.map
      (fun a ->
        let c = capture_trip_count sema a in
        (* Normalise every per-loop count to the widest counter type. *)
        c)
      loops
  in
  let capture_ref c = Sema.convert sema (Sema.mk_ref c) u in
  let num_iterations =
    List.fold_left
      (fun acc c -> bin B_mul acc (capture_ref c))
      (lit 1L) captures
  in
  let iv = var ".omp.iv" u in
  let lb = var ".omp.lb" u ~init:(lit 0L) in
  let ub = var ".omp.ub" u in
  let stride = var ".omp.stride" u ~init:(lit 1L) in
  let is_last = var ".omp.is_last" Ctype.int_t ~init:(Sema.intexpr sema 0L Ctype.int_t loc) in
  let last_iteration = bin B_sub num_iterations (lit 1L) in
  let per_loop k (a : Canonical.analyzed) =
    (* The logical index of loop k inside the collapsed space: divide by the
       product of the inner loops' counts, then take the remainder of this
       loop's count. *)
    let inner_product =
      List.fold_left
        (fun acc c -> bin B_mul acc (capture_ref c))
        (lit 1L)
        (List.filteri (fun i _ -> i > k) captures)
    in
    let own = capture_ref (List.nth captures k) in
    let logical =
      bin B_rem (bin B_div (Sema.mk_ref iv) inner_product) own
    in
    let private_counter =
      var
        (Printf.sprintf ".omp.private.%s" a.Canonical.cl_user_var.v_name)
        a.Canonical.cl_user_var.v_ty
    in
    {
      pl_counter = a.Canonical.cl_user_var;
      pl_private_counter = private_counter;
      pl_counter_init = a.Canonical.cl_init;
      pl_counter_step = a.Canonical.cl_step;
      pl_counter_update =
        Sema.act_on_assign sema None
          (Sema.mk_ref private_counter)
          (Canonical.user_lvalue sema a
             ~logical:(Sema.convert sema logical a.Canonical.cl_counter_ty))
          ~loc;
      pl_counter_final =
        Canonical.user_value_expr sema a
          ~logical:(Sema.convert sema (capture_ref (List.nth captures k)) a.Canonical.cl_counter_ty);
    }
  in
  {
    lhs_iteration_variable = iv;
    lhs_num_iterations = num_iterations;
    lhs_last_iteration = last_iteration;
    lhs_calc_last_iteration =
      Sema.act_on_assign sema None (Sema.mk_ref ub) last_iteration ~loc;
    lhs_precondition = bin B_lt (lit 0L) num_iterations;
    lhs_cond = bin B_le (Sema.mk_ref iv) (Sema.mk_ref ub);
    lhs_init =
      Sema.act_on_assign sema None (Sema.mk_ref iv) (Sema.mk_ref lb) ~loc;
    lhs_inc =
      Sema.act_on_assign sema None (Sema.mk_ref iv)
        (bin B_add (Sema.mk_ref iv) (lit 1L))
        ~loc;
    lhs_is_last_iter_variable = is_last;
    lhs_lower_bound_variable = lb;
    lhs_upper_bound_variable = ub;
    lhs_stride_variable = stride;
    lhs_ensure_upper_bound =
      Sema.act_on_assign sema None (Sema.mk_ref ub)
        (Sema.act_on_conditional sema
           (bin B_lt last_iteration (Sema.mk_ref ub))
           last_iteration (Sema.mk_ref ub) ~loc)
        ~loc;
    lhs_next_lower_bound =
      Sema.act_on_assign sema None (Sema.mk_ref lb)
        (bin B_add (Sema.mk_ref lb) (Sema.mk_ref stride))
        ~loc;
    lhs_next_upper_bound =
      Sema.act_on_assign sema None (Sema.mk_ref ub)
        (bin B_add (Sema.mk_ref ub) (Sema.mk_ref stride))
        ~loc;
    lhs_capture_exprs = captures;
    lhs_prev_lower_bound_variable = None;
    lhs_prev_upper_bound_variable = None;
    lhs_dist_inc = None;
    lhs_prev_ensure_upper_bound = None;
    lhs_combined_lower_bound = None;
    lhs_combined_upper_bound = None;
    lhs_combined_ensure_upper_bound = None;
    lhs_combined_init = None;
    lhs_combined_cond = None;
    lhs_combined_next_lower_bound = None;
    lhs_combined_next_upper_bound = None;
    lhs_combined_dist_cond = None;
    lhs_combined_parfor_in_dist_cond = None;
    lhs_loops = List.mapi per_loop loops;
  }

(* ---- OpenMP 6.0 preview transformations (paper's conclusion outlook) ----- *)

(* Reverse: iterate the logical space backwards and rebind the user
   variable from (n - 1 - iv). *)
let transformed_reverse sema (a : Canonical.analyzed) =
  Mc_support.Stats.incr stat_shadow;
  let loc = a.Canonical.cl_stmt.s_loc in
  let u = a.Canonical.cl_counter_ty in
  let bin op l r = Sema.act_on_binary sema op l r ~loc in
  let lit v = Sema.intexpr sema v u loc in
  let capture = capture_trip_count sema a in
  let iv =
    counter_for_loop sema a
      ~name:(Printf.sprintf ".reversed.iv.%s" a.Canonical.cl_user_var.v_name)
      ~init:(Sema.intexpr sema 0L u loc)
  in
  let backwards =
    bin B_sub (bin B_sub (Sema.mk_ref capture) (lit 1L)) (Sema.mk_ref iv)
  in
  let user_decl, _tt, body =
    bind_user_var sema a ~logical:backwards ~body:a.Canonical.cl_body
  in
  let loop_body =
    match user_decl with
    | Some v -> mk_stmt ~loc (Compound [ mk_stmt ~loc (Decl_stmt [ v ]); body ])
    | None -> body
  in
  let loop =
    mk_stmt ~loc
      (For
         {
           for_init = Some (mk_stmt ~loc (Decl_stmt [ iv ]));
           for_cond = Some (bin B_lt (Sema.mk_ref iv) (Sema.mk_ref capture));
           for_inc = Some (Sema.act_on_unary sema U_preinc (Sema.mk_ref iv) ~loc);
           for_body = loop_body;
         })
  in
  {
    tr_stmt = loop;
    tr_preinits = mk_stmt ~loc (Decl_stmt [ capture ]);
    tr_capture_vars = [ capture ];
  }

(* Interchange: rebuild the nest with the loops permuted.  [perm] lists,
   outermost-first, the index of the original loop driving each new depth. *)
let transformed_interchange sema loops ~perm ~loc =
  Mc_support.Stats.incr stat_shadow;
  let captures = List.map (capture_trip_count sema) loops in
  let ivs =
    List.map
      (fun (a : Canonical.analyzed) ->
        counter_for_loop sema a
          ~name:
            (Printf.sprintf ".interchanged.iv.%s" a.Canonical.cl_user_var.v_name)
          ~init:(Sema.intexpr sema 0L a.Canonical.cl_counter_ty loc))
      loops
  in
  let innermost = List.nth loops (List.length loops - 1) in
  let body = ref innermost.Canonical.cl_body in
  let decls = ref [] in
  List.iteri
    (fun k (a : Canonical.analyzed) ->
      let user_decl, _tt, transformed =
        bind_user_var sema a
          ~logical:(Sema.mk_ref (List.nth ivs k))
          ~body:!body
      in
      body := transformed;
      match user_decl with Some v -> decls := v :: !decls | None -> ())
    loops;
  let inner_body =
    match !decls with
    | [] -> !body
    | ds ->
      mk_stmt ~loc
        (Compound
           (List.map (fun v -> mk_stmt ~loc (Decl_stmt [ v ])) (List.rev ds)
           @ [ !body ]))
  in
  let nest =
    List.fold_right
      (fun k acc ->
        let a = List.nth loops k in
        let u = a.Canonical.cl_counter_ty in
        let bin op l r = Sema.act_on_binary sema op l r ~loc in
        let iv = List.nth ivs k and capture = List.nth captures k in
        ignore u;
        mk_stmt ~loc
          (For
             {
               for_init = Some (mk_stmt ~loc (Decl_stmt [ iv ]));
               for_cond = Some (bin B_lt (Sema.mk_ref iv) (Sema.mk_ref capture));
               for_inc =
                 Some (Sema.act_on_unary sema U_preinc (Sema.mk_ref iv) ~loc);
               for_body = acc;
             }))
      perm inner_body
  in
  {
    tr_stmt = nest;
    tr_preinits = mk_stmt ~loc (Decl_stmt captures);
    tr_capture_vars = captures;
  }

(* Fuse: one loop over the maximum trip count; each original body runs
   guarded by its own trip count. *)
let transformed_fuse sema loops ~loc =
  Mc_support.Stats.incr stat_shadow;
  let captures = List.map (capture_trip_count sema) loops in
  let widest =
    if
      List.exists
        (fun (a : Canonical.analyzed) ->
          Ctype.equal a.Canonical.cl_counter_ty Ctype.ulong_t)
        loops
    then Ctype.ulong_t
    else Ctype.uint_t
  in
  let bin op l r = Sema.act_on_binary sema op l r ~loc in
  let capture_ref c = Sema.convert sema (Sema.mk_ref c) widest in
  let max_count =
    List.fold_left
      (fun acc c ->
        Sema.act_on_conditional sema
          (bin B_lt acc (capture_ref c))
          (capture_ref c) acc ~loc)
      (Sema.intexpr sema 0L widest loc)
      captures
  in
  let max_var =
    mk_var ~implicit:true ~name:".capture_expr." ~ty:widest ~loc ~init:max_count ()
  in
  let iv =
    mk_var ~implicit:true ~name:".fused.iv" ~ty:widest ~loc
      ~init:(Sema.intexpr sema 0L widest loc) ()
  in
  let guarded_bodies =
    List.map2
      (fun (a : Canonical.analyzed) capture ->
        let logical =
          Sema.convert sema (Sema.mk_ref iv) a.Canonical.cl_counter_ty
        in
        let user_decl, _tt, body =
          bind_user_var sema a ~logical ~body:a.Canonical.cl_body
        in
        let body =
          match user_decl with
          | Some v ->
            mk_stmt ~loc (Compound [ mk_stmt ~loc (Decl_stmt [ v ]); body ])
          | None -> body
        in
        mk_stmt ~loc
          (If (bin B_lt (Sema.mk_ref iv) (capture_ref capture), body, None)))
      loops captures
  in
  let loop =
    mk_stmt ~loc
      (For
         {
           for_init = Some (mk_stmt ~loc (Decl_stmt [ iv ]));
           for_cond = Some (bin B_lt (Sema.mk_ref iv) (Sema.mk_ref max_var));
           for_inc = Some (Sema.act_on_unary sema U_preinc (Sema.mk_ref iv) ~loc);
           for_body = mk_stmt ~loc (Compound guarded_bodies);
         })
  in
  {
    tr_stmt = loop;
    tr_preinits = mk_stmt ~loc (Decl_stmt (captures @ [ max_var ]));
    tr_capture_vars = captures @ [ max_var ];
  }

(* Fission: the dual of fuse — split the associated loop's body statements
   into a sequence of loops, each running the full logical space over one
   original body statement.  The shared trip count is captured once so a
   body that modifies its own bound keeps the original iteration space. *)
let transformed_fission sema (a : Canonical.analyzed) ~loc =
  Mc_support.Stats.incr stat_shadow;
  Mc_support.Stats.incr stat_fissions;
  let u = a.Canonical.cl_counter_ty in
  let bin op l r = Sema.act_on_binary sema op l r ~loc in
  let capture = capture_trip_count sema a in
  let members =
    match a.Canonical.cl_body.s_kind with
    | Compound (_ :: _ as ms) -> ms
    | _ -> [ a.Canonical.cl_body ]
  in
  let loops =
    List.mapi
      (fun k member ->
        let iv =
          counter_for_loop sema a
            ~name:
              (Printf.sprintf ".fission.%d.iv.%s" k
                 a.Canonical.cl_user_var.v_name)
            ~init:(Sema.intexpr sema 0L u loc)
        in
        let user_decl, _tt, body =
          bind_user_var sema a ~logical:(Sema.mk_ref iv) ~body:member
        in
        let body =
          match user_decl with
          | Some v ->
            mk_stmt ~loc (Compound [ mk_stmt ~loc (Decl_stmt [ v ]); body ])
          | None -> body
        in
        mk_stmt ~loc
          (For
             {
               for_init = Some (mk_stmt ~loc (Decl_stmt [ iv ]));
               for_cond = Some (bin B_lt (Sema.mk_ref iv) (Sema.mk_ref capture));
               for_inc =
                 Some (Sema.act_on_unary sema U_preinc (Sema.mk_ref iv) ~loc);
               for_body = body;
             }))
      members
  in
  {
    tr_stmt = mk_stmt ~loc (Compound loops);
    tr_preinits = mk_stmt ~loc (Decl_stmt [ capture ]);
    tr_capture_vars = [ capture ];
  }
