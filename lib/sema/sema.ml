open Mc_ast.Tree
module Ctype = Mc_ast.Ctype
module Diag = Mc_diag.Diagnostics
module Int_ops = Mc_support.Int_ops
module Crash_recovery = Mc_support.Crash_recovery
module Loc = Mc_srcmgr.Source_location

type mode = Classic | Irbuilder

type scope = { vars : (string, var) Hashtbl.t }

type t = {
  diag : Diag.t;
  sema_mode : mode;
  mutable scopes : scope list; (* innermost first; last is file scope *)
  fns : (string, fn) Hashtbl.t;
  mutable decls : tu_decl list; (* reverse order *)
  mutable current_fn : fn option;
  mutable loop_depth : int;
  mutable switch_stack : (int64 list ref * bool ref) list; (* seen cases, default? *)
  loop_nest_limit : int; (* -floop-nest-limit; cap on directive loop nests *)
}

let default_loop_nest_limit = 64

let builtin_signatures =
  [
    ("record", Void, [ Ctype.long_t ], false);
    ("recordf", Void, [ Ctype.double_t ], false);
    ("print_int", Void, [ Ctype.int_t ], false);
    ("print_long", Void, [ Ctype.long_t ], false);
    ("print_double", Void, [ Ctype.double_t ], false);
    ("omp_get_thread_num", Ctype.int_t, [], false);
    ("omp_get_num_threads", Ctype.int_t, [], false);
    ("omp_get_max_threads", Ctype.int_t, [], false);
    ("omp_get_wtime", Ctype.double_t, [], false);
    ("abort", Void, [], false);
  ]

let create ?(mode = Classic) ?(loop_nest_limit = default_loop_nest_limit) diag =
  let t =
    {
      diag;
      sema_mode = mode;
      scopes = [ { vars = Hashtbl.create 16 } ];
      fns = Hashtbl.create 16;
      decls = [];
      current_fn = None;
      loop_depth = 0;
      switch_stack = [];
      loop_nest_limit = max 1 loop_nest_limit;
    }
  in
  List.iter
    (fun (name, ret, params, variadic) ->
      let fn =
        mk_fn ~builtin:true ~name
          ~ty:{ ft_ret = ret; ft_params = params; ft_variadic = variadic }
          ~params:
            (List.mapi
               (fun i ty ->
                 mk_var ~implicit:true
                   ~name:(Printf.sprintf "arg%d" i)
                   ~ty ~loc:Loc.invalid ())
               params)
          ~loc:Loc.invalid ()
      in
      Hashtbl.replace t.fns name fn)
    builtin_signatures;
  t

let diagnostics t = t.diag
let mode t = t.sema_mode
let loop_nest_limit t = t.loop_nest_limit
let error t ~loc fmt = Printf.ksprintf (fun s -> Diag.error t.diag ~loc s) fmt
let warn t ~loc fmt = Printf.ksprintf (fun s -> Diag.warning t.diag ~loc s) fmt

(* ---- scopes ------------------------------------------------------------- *)

let push_scope t = t.scopes <- { vars = Hashtbl.create 8 } :: t.scopes

let pop_scope t =
  match t.scopes with
  | _ :: (_ :: _ as rest) -> t.scopes <- rest
  | _ -> invalid_arg "pop_scope: attempt to pop the file scope"

let lookup_var t name =
  List.find_map (fun s -> Hashtbl.find_opt s.vars name) t.scopes

let lookup_fn t name = Hashtbl.find_opt t.fns name
let current_function t = t.current_fn

let enter_loop t = t.loop_depth <- t.loop_depth + 1
let exit_loop t = t.loop_depth <- t.loop_depth - 1

let enter_switch t = t.switch_stack <- (ref [], ref false) :: t.switch_stack
let exit_switch t = t.switch_stack <- List.tl t.switch_stack

(* ---- conversions -------------------------------------------------------- *)

let is_lvalue e =
  match e.e_kind with
  | Decl_ref _ -> true
  | Subscript _ -> true
  | Unary (U_deref, _) -> true
  | Paren inner -> (
    let rec through x =
      match x.e_kind with
      | Paren y -> through y
      | Decl_ref _ | Subscript _ | Unary (U_deref, _) -> true
      | _ -> false
    in
    through inner)
  | _ -> false

let cast ~ck ~ty e = mk_expr ~ty ~loc:e.e_loc (Implicit_cast (ck, e))

let rvalue _t e =
  match e.e_ty with
  | Array (elem, _) -> cast ~ck:CK_array_to_pointer ~ty:(Ptr elem) e
  | Func _ as f -> cast ~ck:CK_pointer ~ty:(Ptr f) e
  | ty -> if is_lvalue e then cast ~ck:CK_lvalue_to_rvalue ~ty e else e

let convert t e target =
  let e = rvalue t e in
  let src = e.e_ty in
  if Ctype.equal src target then e
  else begin
    match (src, target) with
    | (Int _ | Bool), (Int _) -> cast ~ck:CK_integral ~ty:target e
    | (Int _ | Bool), Bool -> cast ~ck:CK_int_to_bool ~ty:target e
    | (Int _ | Bool), Float _ -> cast ~ck:CK_integral_to_floating ~ty:target e
    | Float _, (Int _) -> cast ~ck:CK_floating_to_integral ~ty:target e
    | Float _, Bool -> cast ~ck:CK_float_to_bool ~ty:target e
    | Float _, Float _ -> cast ~ck:CK_floating ~ty:target e
    | Ptr _, Ptr Void | Ptr Void, Ptr _ -> cast ~ck:CK_pointer ~ty:target e
    | _ ->
      error t ~loc:e.e_loc "cannot convert '%s' to '%s'" (Ctype.to_string src)
        (Ctype.to_string target);
      cast ~ck:CK_integral ~ty:target e
  end

let condition t e =
  let e = rvalue t e in
  match e.e_ty with
  | Int _ | Bool | Float _ | Ptr _ -> e
  | ty ->
    error t ~loc:e.e_loc "expression of type '%s' is not a valid condition"
      (Ctype.to_string ty);
    e

(* Usual arithmetic conversions of both operands; yields the common type. *)
let usual_arith t a b ~loc =
  let a = rvalue t a and b = rvalue t b in
  match Ctype.common_arithmetic a.e_ty b.e_ty with
  | Some common -> (convert t a common, convert t b common, common)
  | None ->
    error t ~loc "invalid operands to arithmetic operator ('%s' and '%s')"
      (Ctype.to_string a.e_ty) (Ctype.to_string b.e_ty);
    (a, b, Ctype.int_t)

(* ---- declarations -------------------------------------------------------- *)

let act_on_var_decl t ~name ~ty ~init ~loc =
  (match t.scopes with
  | scope :: _ ->
    if Hashtbl.mem scope.vars name then
      error t ~loc "redefinition of '%s'" name
  | [] ->
    (* The file scope is pushed at [create] and [pop_scope] refuses to pop
       it, so an empty scope stack is a compiler invariant violation. *)
    Crash_recovery.internal_error "variable declared with no scope on the stack");
  (match ty with
  | Void -> error t ~loc "variable '%s' has incomplete type 'void'" name
  | _ -> ());
  let init =
    Option.map
      (fun e ->
        match ty with
        | Array _ ->
          error t ~loc "array initialisers are not supported";
          e
        | _ -> convert t e ty)
      init
  in
  let v = mk_var ~name ~ty ~loc ?init () in
  (match t.scopes with
  | scope :: _ -> Hashtbl.replace scope.vars name v
  | [] -> Crash_recovery.internal_error "variable declared with no scope on the stack");
  if t.current_fn = None then t.decls <- Tu_var v :: t.decls;
  v

let declare_function t ~name ~ret ~params ~variadic ~loc =
  let ft = { ft_ret = ret; ft_params = List.map snd params; ft_variadic = variadic } in
  match Hashtbl.find_opt t.fns name with
  | Some existing ->
    if existing.fn_ty <> ft then
      error t ~loc "conflicting types for '%s'" name
    else if existing.fn_body = None then
      (* A re-declaration's parameter names supersede the prototype's, so
         a following definition sees its own names in scope. *)
      existing.fn_params <-
        List.map (fun (pname, pty) -> mk_var ~name:pname ~ty:pty ~loc ()) params;
    existing
  | None ->
    let fn =
      mk_fn ~name ~ty:ft
        ~params:
          (List.map (fun (pname, pty) -> mk_var ~name:pname ~ty:pty ~loc ()) params)
        ~loc ()
    in
    Hashtbl.replace t.fns name fn;
    t.decls <- Tu_fn fn :: t.decls;
    fn

let start_function_definition t fn =
  if fn.fn_body <> None then
    error t ~loc:fn.fn_loc "redefinition of '%s'" fn.fn_name;
  t.current_fn <- Some fn;
  push_scope t;
  List.iter
    (fun p ->
      match t.scopes with
      | scope :: _ -> Hashtbl.replace scope.vars p.v_name p
      | [] ->
        Crash_recovery.internal_error
          "function parameter bound with no scope on the stack")
    fn.fn_params

let finish_function_definition t fn body =
  fn.fn_body <- Some body;
  pop_scope t;
  t.current_fn <- None

let translation_unit t = { tu_decls = List.rev t.decls }

(* Adopt a top-level declaration unmarshalled from a per-function cache
   artifact, as if this sema had just analysed it: register the symbol
   for lookup by later slices and append it to the unit's decl list.
   The caller must be at file scope (between top-level slices). *)
let adopt_tu_decl t d =
  (match d with
  | Tu_fn fn -> Hashtbl.replace t.fns fn.fn_name fn
  | Tu_var v ->
    let rec file_scope = function
      | [ s ] -> s
      | _ :: rest -> file_scope rest
      | [] -> assert false
    in
    Hashtbl.replace (file_scope t.scopes).vars v.v_name v);
  t.decls <- d :: t.decls

(* ---- expressions ---------------------------------------------------------- *)

let act_on_int_literal _t ~value ~unsigned ~long ~loc =
  let fits w = Int_ops.in_range w value in
  let ty =
    match (unsigned, long) with
    | false, false ->
      if fits Int_ops.i32 then Ctype.int_t
      else if fits Int_ops.i64 then Ctype.long_t
      else Ctype.ulong_t
    | true, false -> if fits Int_ops.u32 then Ctype.uint_t else Ctype.ulong_t
    | false, true -> if fits Int_ops.i64 then Ctype.long_t else Ctype.ulong_t
    | true, true -> Ctype.ulong_t
  in
  let w = Option.get (Ctype.int_width ty) in
  mk_expr ~ty ~loc (Int_lit (Int_ops.truncate w value))

let act_on_float_literal _t ~value ~loc =
  mk_expr ~ty:Ctype.double_t ~loc (Float_lit value)

let act_on_char_literal _t ~value ~loc =
  (* C gives character literals type int. *)
  mk_expr ~ty:Ctype.int_t ~loc (Int_lit (Int64.of_int value))

let act_on_string_literal _t ~value ~loc =
  mk_expr
    ~ty:(Array (Ctype.char_t, Some (String.length value + 1)))
    ~loc (String_lit value)

let act_on_bool_literal _t ~value ~loc =
  mk_expr ~ty:Ctype.int_t ~loc (Int_lit (if value then 1L else 0L))

let mk_ref v =
  v.v_used <- true;
  mk_expr ~ty:v.v_ty ~loc:v.v_loc (Decl_ref v)

let act_on_recovery _t ?(subexprs = []) ~loc () =
  (* Clang's RecoveryExpr: a typed placeholder that preserves whatever
     sub-expressions were recognised before the error, so later phases can
     keep walking the tree.  Types as [int] so surrounding arithmetic does
     not cascade; [e_contains_errors] is set by [mk_expr]. *)
  mk_expr ~ty:Ctype.int_t ~loc (Recovery_expr subexprs)

let act_on_decl_ref t ~name ~loc =
  match lookup_var t name with
  | Some v ->
    v.v_used <- true;
    mk_expr ~ty:v.v_ty ~loc (Decl_ref v)
  | None -> (
    match lookup_fn t name with
    | Some fn -> mk_expr ~ty:(Func fn.fn_ty) ~loc (Fn_ref fn)
    | None ->
      error t ~loc "use of undeclared identifier '%s'" name;
      act_on_recovery t ~loc ())

let act_on_paren _t e = mk_expr ~ty:e.e_ty ~loc:e.e_loc (Paren e)

let require_modifiable t e what =
  if e.e_contains_errors then
    (* The operand already carries an error; complaining that a RecoveryExpr
       is not an lvalue would just cascade. *)
    ()
  else if not (is_lvalue e) then
    error t ~loc:e.e_loc "%s requires a modifiable lvalue" what
  else begin
    match e.e_ty with
    | Array _ | Func _ ->
      error t ~loc:e.e_loc "%s requires a modifiable lvalue" what
    | _ -> ()
  end

let act_on_unary t op operand ~loc =
  match op with
  | U_plus ->
    let e = rvalue t operand in
    if not (Ctype.is_arithmetic e.e_ty) then
      error t ~loc "invalid operand to unary +";
    mk_expr ~ty:(Ctype.promote e.e_ty) ~loc (Unary (U_plus, convert t e (Ctype.promote e.e_ty)))
  | U_minus ->
    let e = rvalue t operand in
    if not (Ctype.is_arithmetic e.e_ty) then
      error t ~loc "invalid operand to unary -";
    let ty = Ctype.promote e.e_ty in
    mk_expr ~ty ~loc (Unary (U_minus, convert t e ty))
  | U_bnot ->
    let e = rvalue t operand in
    if not (Ctype.is_integer e.e_ty) then error t ~loc "invalid operand to '~'";
    let ty = Ctype.promote e.e_ty in
    mk_expr ~ty ~loc (Unary (U_bnot, convert t e ty))
  | U_lnot ->
    let e = condition t operand in
    mk_expr ~ty:Ctype.int_t ~loc (Unary (U_lnot, e))
  | U_preinc | U_predec | U_postinc | U_postdec ->
    require_modifiable t operand "increment/decrement";
    if not (Ctype.is_scalar operand.e_ty) then
      error t ~loc "cannot increment value of type '%s'"
        (Ctype.to_string operand.e_ty);
    mk_expr ~ty:operand.e_ty ~loc (Unary (op, operand))
  | U_deref -> (
    let e = rvalue t operand in
    match e.e_ty with
    | Ptr elem -> mk_expr ~ty:elem ~loc (Unary (U_deref, e))
    | ty ->
      error t ~loc "indirection requires pointer operand ('%s' invalid)"
        (Ctype.to_string ty);
      mk_expr ~ty:Ctype.int_t ~loc (Unary (U_deref, e)))
  | U_addrof ->
    if (not (is_lvalue operand)) && not operand.e_contains_errors then
      error t ~loc "cannot take the address of an rvalue";
    mk_expr ~ty:(Ptr operand.e_ty) ~loc (Unary (U_addrof, operand))

let act_on_binary t op lhs rhs ~loc =
  match op with
  | B_add | B_sub -> (
    let l = rvalue t lhs and r = rvalue t rhs in
    match (l.e_ty, r.e_ty, op) with
    | Ptr _, (Int _ | Bool), _ ->
      mk_expr ~ty:l.e_ty ~loc (Binary (op, l, convert t r Ctype.long_t))
    | (Int _ | Bool), Ptr _, B_add ->
      mk_expr ~ty:r.e_ty ~loc (Binary (op, convert t l Ctype.long_t, r))
    | Ptr a, Ptr b, B_sub when Ctype.equal a b ->
      mk_expr ~ty:Ctype.long_t ~loc (Binary (op, l, r))
    | _ ->
      let l, r, common = usual_arith t l r ~loc in
      mk_expr ~ty:common ~loc (Binary (op, l, r)))
  | B_mul | B_div ->
    let l, r, common = usual_arith t lhs rhs ~loc in
    mk_expr ~ty:common ~loc (Binary (op, l, r))
  | B_rem | B_band | B_bor | B_bxor ->
    let l, r, common = usual_arith t lhs rhs ~loc in
    if not (Ctype.is_integer common) then
      error t ~loc "operator requires integer operands";
    mk_expr ~ty:common ~loc (Binary (op, l, r))
  | B_shl | B_shr ->
    let l = rvalue t lhs and r = rvalue t rhs in
    if not (Ctype.is_integer l.e_ty && Ctype.is_integer r.e_ty) then
      error t ~loc "shift requires integer operands";
    let ty = Ctype.promote l.e_ty in
    mk_expr ~ty ~loc (Binary (op, convert t l ty, convert t r (Ctype.promote r.e_ty)))
  | B_lt | B_gt | B_le | B_ge | B_eq | B_ne -> (
    let l = rvalue t lhs and r = rvalue t rhs in
    match (l.e_ty, r.e_ty) with
    | Ptr a, Ptr b when Ctype.equal a b ->
      mk_expr ~ty:Ctype.int_t ~loc (Binary (op, l, r))
    | _ ->
      let l, r, _ = usual_arith t l r ~loc in
      mk_expr ~ty:Ctype.int_t ~loc (Binary (op, l, r)))
  | B_land | B_lor ->
    let l = condition t lhs and r = condition t rhs in
    mk_expr ~ty:Ctype.int_t ~loc (Binary (op, l, r))
  | B_comma ->
    let r = rvalue t rhs in
    mk_expr ~ty:r.e_ty ~loc (Binary (B_comma, rvalue t lhs, r))

let act_on_assign t op lhs rhs ~loc =
  require_modifiable t lhs "assignment";
  match op with
  | None ->
    let r = convert t rhs lhs.e_ty in
    mk_expr ~ty:lhs.e_ty ~loc (Assign (None, lhs, r))
  | Some bop -> (
    (* Compound assignment: lhs op= rhs. Pointer += / -= int allowed. *)
    match (lhs.e_ty, bop) with
    | Ptr _, (B_add | B_sub) ->
      let r = convert t rhs Ctype.long_t in
      mk_expr ~ty:lhs.e_ty ~loc (Assign (op, lhs, r))
    | _ ->
      let r = rvalue t rhs in
      if not (Ctype.is_arithmetic lhs.e_ty && Ctype.is_arithmetic r.e_ty) then
        error t ~loc "invalid operands to compound assignment";
      (* The computation happens in the common type; the AST keeps the
         operand un-narrowed, like Clang's CompoundAssignOperator. *)
      mk_expr ~ty:lhs.e_ty ~loc (Assign (op, lhs, r)))

let act_on_conditional t c a b ~loc =
  let c = condition t c in
  let a = rvalue t a and b = rvalue t b in
  match (a.e_ty, b.e_ty) with
  | ta, tb when Ctype.equal ta tb ->
    mk_expr ~ty:ta ~loc (Conditional (c, a, b))
  | _ -> (
    match Ctype.common_arithmetic a.e_ty b.e_ty with
    | Some common ->
      mk_expr ~ty:common ~loc (Conditional (c, convert t a common, convert t b common))
    | None ->
      error t ~loc "incompatible operand types in conditional ('%s' and '%s')"
        (Ctype.to_string a.e_ty) (Ctype.to_string b.e_ty);
      mk_expr ~ty:a.e_ty ~loc (Conditional (c, a, b)))

let default_promote t e =
  let e = rvalue t e in
  match e.e_ty with
  | Float 32 -> convert t e Ctype.double_t
  | Int _ | Bool -> convert t e (Ctype.promote e.e_ty)
  | _ -> e

let act_on_call t callee args ~loc =
  let callee = rvalue t callee in
  match callee.e_ty with
  | Ptr (Func ft) | Func ft ->
    let nparams = List.length ft.ft_params in
    if List.length args < nparams
       || ((not ft.ft_variadic) && List.length args > nparams)
    then
      error t ~loc "expected %d argument(s), got %d" nparams (List.length args);
    let rec convert_args params args =
      match (params, args) with
      | p :: ps, a :: rest -> convert t a p :: convert_args ps rest
      | [], rest -> List.map (default_promote t) rest
      | _ :: _, [] -> []
    in
    mk_expr ~ty:ft.ft_ret ~loc (Call (callee, convert_args ft.ft_params args))
  | ty ->
    error t ~loc "called object type '%s' is not a function" (Ctype.to_string ty);
    mk_expr ~ty:Ctype.int_t ~loc (Call (callee, args))

let act_on_subscript t base index ~loc =
  let b = rvalue t base and i = rvalue t index in
  let b, i =
    if Ctype.is_integer b.e_ty && Ctype.is_pointer i.e_ty then (i, b) else (b, i)
  in
  (match b.e_ty with
  | Ptr _ -> ()
  | ty ->
    error t ~loc "subscripted value of type '%s' is not an array or pointer"
      (Ctype.to_string ty));
  if not (Ctype.is_integer i.e_ty) then
    error t ~loc "array subscript is not an integer";
  let elem = Option.value (Ctype.element_type b.e_ty) ~default:Ctype.int_t in
  mk_expr ~ty:elem ~loc (Subscript (b, convert t i Ctype.long_t))

let act_on_cast t target operand ~loc =
  let e = rvalue t operand in
  (match (e.e_ty, target) with
  | (Int _ | Bool | Float _), (Int _ | Bool | Float _) -> ()
  | Ptr _, Ptr _ -> ()
  | Ptr _, Int { Int_ops.bits = 64; _ } | Int { Int_ops.bits = 64; _ }, Ptr _ -> ()
  | _, Void -> ()
  | _ ->
    error t ~loc "invalid cast from '%s' to '%s'" (Ctype.to_string e.e_ty)
      (Ctype.to_string target));
  mk_expr ~ty:target ~loc (C_style_cast (target, e))

let act_on_sizeof _t ty ~loc = mk_expr ~ty:Ctype.size_t ~loc (Sizeof_type ty)

let intexpr _t value ty loc =
  let w = Option.value (Ctype.int_width ty) ~default:Int_ops.i64 in
  mk_expr ~ty ~loc (Int_lit (Int_ops.truncate w value))

(* ---- statements ------------------------------------------------------------ *)

let act_on_expr_stmt t e =
  (* A statement-expression's value is discarded; warn on no-effect uses? *)
  ignore t;
  mk_stmt ~loc:e.e_loc (Expr_stmt e)

let act_on_decl_stmt _t vars ~loc = mk_stmt ~loc (Decl_stmt vars)
let act_on_compound _t stmts ~loc = mk_stmt ~loc (Compound stmts)

let act_on_if t c then_s else_s ~loc =
  mk_stmt ~loc (If (condition t c, then_s, else_s))

let act_on_while t c body ~loc = mk_stmt ~loc (While (condition t c, body))
let act_on_do_while t body c ~loc = mk_stmt ~loc (Do_while (body, condition t c))

let act_on_for t ~init ~cond ~inc ~body ~loc =
  mk_stmt ~loc
    (For
       {
         for_init = init;
         for_cond = Option.map (condition t) cond;
         for_inc = Option.map (rvalue t) inc;
         for_body = body;
       })

let act_on_break t ~loc =
  if t.loop_depth = 0 && t.switch_stack = [] then
    error t ~loc "'break' outside of a loop or switch";
  mk_stmt ~loc Break

let act_on_continue t ~loc =
  if t.loop_depth = 0 then error t ~loc "'continue' outside of a loop";
  mk_stmt ~loc Continue

let act_on_return t e ~loc =
  match t.current_fn with
  | None ->
    error t ~loc "'return' outside of a function";
    mk_stmt ~loc (Return None)
  | Some fn -> (
    match (e, fn.fn_ty.ft_ret) with
    | None, Void -> mk_stmt ~loc (Return None)
    | None, _ ->
      error t ~loc "non-void function '%s' must return a value" fn.fn_name;
      mk_stmt ~loc (Return None)
    | Some _, Void ->
      error t ~loc "void function '%s' cannot return a value" fn.fn_name;
      mk_stmt ~loc (Return None)
    | Some e, ret -> mk_stmt ~loc (Return (Some (convert t e ret))))

(* ---- switch ----------------------------------------------------------------- *)

let act_on_switch t cond body ~loc =
  let cond = rvalue t cond in
  if not (Ctype.is_integer cond.e_ty) then
    error t ~loc "switch condition must have integer type (got '%s')"
      (Ctype.to_string cond.e_ty);
  mk_stmt ~loc (Switch (convert t cond (Ctype.promote cond.e_ty), body))

let act_on_case t value_expr sub ~loc =
  let value =
    match Const_eval.eval_int (rvalue t value_expr) with
    | Some v -> v
    | None ->
      error t ~loc "case value must be an integer constant expression";
      0L
  in
  (match t.switch_stack with
  | [] -> error t ~loc "'case' label outside of a switch statement"
  | (seen, _) :: _ ->
    if List.exists (Int64.equal value) !seen then
      error t ~loc "duplicate case value %Ld" value;
    seen := value :: !seen);
  mk_stmt ~loc (Case { case_value = value; case_expr = value_expr; case_body = sub })

let act_on_default t sub ~loc =
  (match t.switch_stack with
  | [] -> error t ~loc "'default' label outside of a switch statement"
  | (_, has_default) :: _ ->
    if !has_default then error t ~loc "multiple 'default' labels in one switch";
    has_default := true);
  mk_stmt ~loc (Default sub)

(* ---- range-based for ------------------------------------------------------- *)

let act_on_range_for t ~var ~byref ~range ~body ~loc =
  (* Modelled over arrays with a known bound (see DESIGN.md); the helper
     declarations mirror CXXForRangeStmt's de-sugared children (Fig. 8). *)
  let elem_ty, bound =
    match range.e_ty with
    | Array (elem, Some n) -> (elem, n)
    | Array (elem, None) ->
      error t ~loc "cannot iterate over an array of unknown bound";
      (elem, 0)
    | ty ->
      error t ~loc "range expression of type '%s' is not an array"
        (Ctype.to_string ty);
      (Ctype.int_t, 0)
  in
  if not (Ctype.equal var.v_ty elem_ty) then
    error t ~loc "loop variable type '%s' does not match element type '%s'"
      (Ctype.to_string var.v_ty) (Ctype.to_string elem_ty);
  if not byref then
    warn t ~loc
      "by-value range iteration copies each element; mutations are lost";
  let range_var =
    mk_var ~implicit:true ~name:"__range" ~ty:range.e_ty ~loc ()
  in
  let decayed = rvalue t (mk_ref range_var) in
  let begin_var =
    mk_var ~implicit:true ~name:"__begin" ~ty:(Ptr elem_ty) ~loc
      ~init:decayed ()
  in
  let end_expr =
    mk_expr ~ty:(Ptr elem_ty) ~loc
      (Binary (B_add, rvalue t (mk_ref begin_var), intexpr t (Int64.of_int bound) Ctype.long_t loc))
  in
  let end_var =
    mk_var ~implicit:true ~name:"__end" ~ty:(Ptr elem_ty) ~loc ~init:end_expr ()
  in
  mk_stmt ~loc
    (Range_for
       {
         rf_var = var;
         rf_byref = byref;
         rf_range = range;
         rf_body = body;
         rf_range_var = range_var;
         rf_begin_var = begin_var;
         rf_end_var = end_var;
         rf_desugared = None (* built on demand by Omp_sema / Desugar *);
       })
