(** The semantic analyzer (Clang's Sema layer, Fig. 1).

    Following Clang's architecture, the parser drives this module: every
    syntactic construct it recognises is pushed here through an [act_on_*]
    entry point, which performs name lookup, type checking, the implicit
    conversions of C (producing [Implicit_cast] nodes), and builds the typed
    AST node.  OpenMP-specific analysis lives in {!Omp_sema}, which this
    module hosts the state for. *)

open Mc_ast.Tree

type mode = Classic | Irbuilder
(** Which loop-transformation representation Sema builds: shadow ASTs (§2)
    or [OMPCanonicalLoop] (§3); the analogue of Clang's
    [-fopenmp-enable-irbuilder]. *)

type t

val default_loop_nest_limit : int
(** 64: the default cap on how deep a directive-requested loop nest may be
    ([-floop-nest-limit]); guards against e.g. [collapse(1000000)] blowing
    the analysis stack. *)

val create :
  ?mode:mode -> ?loop_nest_limit:int -> Mc_diag.Diagnostics.t -> t
val diagnostics : t -> Mc_diag.Diagnostics.t
val mode : t -> mode

val loop_nest_limit : t -> int
(** The configured [-floop-nest-limit] (clamped to at least 1). *)

(* ---- scopes and declarations ---------------------------------------- *)

val push_scope : t -> unit
val pop_scope : t -> unit

val act_on_var_decl :
  t -> name:string -> ty:ctype -> init:expr option -> loc:loc -> var
(** Declares a local/global variable (checking redeclaration) with its
    initialiser converted to the declared type. *)

val declare_function :
  t -> name:string -> ret:ctype -> params:(string * ctype) list ->
  variadic:bool -> loc:loc -> fn
(** Declares (or re-finds) a function.  Redeclaration with a different type
    is diagnosed. *)

val start_function_definition : t -> fn -> unit
(** Enters the function scope with its parameters; diagnoses redefinition. *)

val finish_function_definition : t -> fn -> stmt -> unit

val adopt_tu_decl : t -> tu_decl -> unit
(** Adopt a top-level declaration recovered from a per-function cache
    artifact as if this sema had just analysed it: the symbol becomes
    visible to later slices and the decl joins the translation unit in
    arrival order.  Only valid at file scope. *)

val lookup_var : t -> string -> var option
val lookup_fn : t -> string -> fn option
val current_function : t -> fn option

val enter_loop : t -> unit
val exit_loop : t -> unit
(** Break/continue context tracking. *)

val enter_switch : t -> unit
val exit_switch : t -> unit

(* ---- expressions ------------------------------------------------------ *)

val act_on_int_literal :
  t -> value:int64 -> unsigned:bool -> long:bool -> loc:loc -> expr
(** Literal typing per C: [int] unless the value or a suffix demands a wider
    or unsigned type. *)

val act_on_float_literal : t -> value:float -> loc:loc -> expr
val act_on_char_literal : t -> value:int -> loc:loc -> expr
val act_on_string_literal : t -> value:string -> loc:loc -> expr
val act_on_bool_literal : t -> value:bool -> loc:loc -> expr

val act_on_recovery : t -> ?subexprs:expr list -> loc:loc -> unit -> expr
(** Builds a [Recovery_expr] (Clang's RecoveryExpr): an [int]-typed
    placeholder carrying any sub-expressions recognised before the error.
    The node and every ancestor get [contains_errors] set, which codegen
    and the interpreter refuse cleanly. *)

val act_on_decl_ref : t -> name:string -> loc:loc -> expr
(** Diagnoses undeclared identifiers; recovers with a [Recovery_expr]. *)

val act_on_paren : t -> expr -> expr
val act_on_unary : t -> unop -> expr -> loc:loc -> expr
val act_on_binary : t -> binop -> expr -> expr -> loc:loc -> expr
val act_on_assign : t -> binop option -> expr -> expr -> loc:loc -> expr
val act_on_conditional : t -> expr -> expr -> expr -> loc:loc -> expr
val act_on_call : t -> expr -> expr list -> loc:loc -> expr
val act_on_subscript : t -> expr -> expr -> loc:loc -> expr
val act_on_cast : t -> ctype -> expr -> loc:loc -> expr
val act_on_sizeof : t -> ctype -> loc:loc -> expr

val rvalue : t -> expr -> expr
(** Lvalue-to-rvalue conversion plus array decay (the Clang implicit
    casts). *)

val convert : t -> expr -> ctype -> expr
(** Implicit conversion to a target type; diagnoses incompatibility. *)

val condition : t -> expr -> expr
(** Converts to a scalar usable as a branch condition. *)

val is_lvalue : expr -> bool

(* ---- statements -------------------------------------------------------- *)

val act_on_expr_stmt : t -> expr -> stmt
val act_on_decl_stmt : t -> var list -> loc:loc -> stmt
val act_on_compound : t -> stmt list -> loc:loc -> stmt
val act_on_if : t -> expr -> stmt -> stmt option -> loc:loc -> stmt
val act_on_while : t -> expr -> stmt -> loc:loc -> stmt
val act_on_do_while : t -> stmt -> expr -> loc:loc -> stmt

val act_on_for :
  t -> init:stmt option -> cond:expr option -> inc:expr option -> body:stmt ->
  loc:loc -> stmt

val act_on_range_for :
  t -> var:var -> byref:bool -> range:expr -> body:stmt -> loc:loc -> stmt
(** Builds the [CXXForRangeStmt] analogue including its de-sugared helper
    variables (__range/__begin/__end) and the Fig. 8c equivalent loop. *)

val act_on_switch : t -> expr -> stmt -> loc:loc -> stmt
val act_on_case : t -> expr -> stmt -> loc:loc -> stmt
(** Validates the constant, uniqueness, and switch context. *)

val act_on_default : t -> stmt -> loc:loc -> stmt
val act_on_break : t -> loc:loc -> stmt
val act_on_continue : t -> loc:loc -> stmt
val act_on_return : t -> expr option -> loc:loc -> stmt

(* ---- helpers shared with OpenMP analysis ------------------------------- *)

val intexpr : t -> int64 -> ctype -> loc -> expr
(** A literal of an arbitrary integer type (for synthesised code). *)

val mk_ref : var -> expr
(** A [Decl_ref] lvalue of the variable's type. *)

val translation_unit : t -> translation_unit
(** All top-level declarations seen so far, in order. *)
