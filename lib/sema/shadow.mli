(** Shadow AST construction (paper §2): the transformed loops of
    [#pragma omp tile]/[unroll] built at Sema time via {!Tree_transform},
    and the up-to-30-slot helper set of [OMPLoopDirective].

    Naming mirrors Clang: the synthesised trip-count temporaries are called
    [.capture_expr.], which is exactly the internal name the paper shows
    leaking into a diagnostic (reproduced by experiment C2); the generated
    loop counters are [.unrolled.iv.<v>], [.unroll_inner.iv.<v>],
    [.floor.<k>.iv.<v>] and [.tile.<k>.iv.<v>]. *)

open Mc_ast.Tree

type transformed = {
  tr_stmt : stmt; (* the generated loop nest *)
  tr_preinits : stmt; (* Decl_stmt of .capture_expr. temporaries *)
  tr_capture_vars : var list;
}

val transformed_unroll : Sema.t -> Canonical.analyzed -> factor:int -> transformed
(** Fig. 7: strip-mine by [factor], keep the inner loop and tag it with a
    [LoopHintAttr UnrollCount] for the mid-end (no duplication in the
    AST). *)

val transformed_tile :
  Sema.t -> Canonical.analyzed list -> sizes:int list -> loc:loc -> transformed
(** The floor/tile loop nest for [#pragma omp tile sizes(...)]. *)

val build_loop_helpers :
  Sema.t -> Canonical.analyzed list -> loc:loc -> loop_helpers
(** The classic [OMPLoopDirective] shadow slots for a (possibly collapsed)
    nest: logical-space iv/lb/ub/stride variables, init/cond/inc
    expressions, worksharing bound updates, and 6 per-loop helpers. *)

val transformed_reverse : Sema.t -> Canonical.analyzed -> transformed
(** OpenMP 6.0 preview: the generated loop of [#pragma omp reverse]. *)

val transformed_interchange :
  Sema.t -> Canonical.analyzed list -> perm:int list -> loc:loc -> transformed
(** OpenMP 6.0 preview: the permuted nest of [#pragma omp interchange];
    [perm] lists, outermost-first, the 0-based original loop indices. *)

val transformed_stripe :
  Sema.t -> Canonical.analyzed list -> sizes:int list -> loc:loc -> transformed
(** OpenMP 6.0 preview: the strip-mined nest of [#pragma omp stripe
    sizes(...)].  Unlike [transformed_tile], each grid loop stays directly
    around its stripe loop (grid_0, stripe_0, grid_1, stripe_1, ...), so the
    execution order of the original nest is preserved exactly. *)

val transformed_fuse :
  Sema.t -> Canonical.analyzed list -> loc:loc -> transformed
(** OpenMP 6.0 preview: the fused loop of [#pragma omp fuse] over a loop
    sequence — one loop over the maximum trip count with guarded bodies. *)

val transformed_fission : Sema.t -> Canonical.analyzed -> loc:loc -> transformed
(** The dual of fuse: [#pragma omp fission] splits the associated loop's
    body statements into a sequence of loops (one per statement), each
    iterating the full captured logical space.  The generated counters are
    [.fission.<k>.iv.<v>]. *)
