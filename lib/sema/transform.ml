open Mc_ast.Tree

(* The single entry point for applying a loop transformation to analysed
   canonical loops.  Both callers route through here: the pragma path
   (Omp_sema's classic lowering) and the script path (Mc_transfo resolves a
   target, then synthesises the equivalent directive).  The irbuilder
   representation keeps its CanonicalLoopInfo surgery in Omp_builder, but
   shares [of_directive]/[params_of_clauses] so the clause interpretation
   cannot drift between representations. *)

type kind = Unroll | Tile | Stripe | Reverse | Interchange | Fuse | Fission

type params = {
  factor : [ `Full | `Heuristic | `Partial of int ] option; (* unroll *)
  sizes : int list option; (* tile / stripe *)
  perm : int list option; (* interchange, validated 0-based *)
}

let no_params = { factor = None; sizes = None; perm = None }

type result =
  | Applied of Shadow.transformed
  | Deferred (* full/heuristic unroll: the mid-end LoopUnroll pass decides *)
  | Not_applicable (* params do not fit the nest; caller already diagnosed *)

let of_directive = function
  | D_unroll -> Some Unroll
  | D_tile -> Some Tile
  | D_stripe -> Some Stripe
  | D_reverse -> Some Reverse
  | D_interchange -> Some Interchange
  | D_fuse -> Some Fuse
  | D_fission -> Some Fission
  | D_parallel | D_for | D_parallel_for | D_simd | D_for_simd
  | D_parallel_for_simd | D_barrier | D_single | D_master | D_critical _ ->
    None

let directive_of = function
  | Unroll -> D_unroll
  | Tile -> D_tile
  | Stripe -> D_stripe
  | Reverse -> D_reverse
  | Interchange -> D_interchange
  | Fuse -> D_fuse
  | Fission -> D_fission

let params_of_clauses ?perm clauses =
  let factor =
    List.find_map
      (function
        | C_full -> Some `Full
        | C_partial (Some (n, _)) -> Some (`Partial n)
        | C_partial None ->
          (* Paper §2.2: the consumed-unroll factor defaults to 2. *)
          Some (`Partial 2)
        | _ -> None)
      clauses
  in
  let sizes =
    List.find_map
      (function C_sizes s -> Some (List.map fst s) | _ -> None)
      clauses
  in
  { factor; sizes; perm }

let apply sema kind params loops ~loc =
  match (kind, loops) with
  | Unroll, [ a ] -> (
    match params.factor with
    | Some (`Partial n) -> Applied (Shadow.transformed_unroll sema a ~factor:n)
    | Some `Full | Some `Heuristic | None ->
      (* No generated loop; CodeGen defers to the mid-end (paper §2.2). *)
      Deferred)
  | Tile, _ -> (
    match params.sizes with
    | Some sizes when List.length sizes = List.length loops ->
      Applied (Shadow.transformed_tile sema loops ~sizes ~loc)
    | _ -> Not_applicable)
  | Stripe, _ -> (
    match params.sizes with
    | Some sizes when List.length sizes = List.length loops ->
      Applied (Shadow.transformed_stripe sema loops ~sizes ~loc)
    | _ -> Not_applicable)
  | Reverse, [ a ] -> Applied (Shadow.transformed_reverse sema a)
  | Interchange, _ -> (
    match params.perm with
    | Some perm when List.length perm = List.length loops ->
      Applied (Shadow.transformed_interchange sema loops ~perm ~loc)
    | _ -> Not_applicable)
  | Fuse, _ :: _ :: _ -> Applied (Shadow.transformed_fuse sema loops ~loc)
  | Fission, [ a ] -> Applied (Shadow.transformed_fission sema a ~loc)
  | (Unroll | Reverse | Fuse | Fission), _ -> Not_applicable
