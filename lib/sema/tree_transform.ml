open Mc_ast.Tree

type subst = To_var of var | To_expr of expr

type t = { map : (int, subst) Hashtbl.t }

let create () = { map = Hashtbl.create 16 }
let substitute_var t ~from ~into = Hashtbl.replace t.map from.v_id (To_var into)

let substitute_var_expr t ~from ~into =
  Hashtbl.replace t.map from.v_id (To_expr into)

let rec transform_expr t e =
  let k kind = mk_expr ~ty:e.e_ty ~loc:e.e_loc kind in
  match e.e_kind with
  | Int_lit _ | Float_lit _ | String_lit _ | Fn_ref _ | Sizeof_type _ ->
    k e.e_kind
  | Decl_ref v -> (
    match Hashtbl.find_opt t.map v.v_id with
    | Some (To_var nv) ->
      nv.v_used <- true;
      k (Decl_ref nv)
    | Some (To_expr repl) -> transform_expr t repl
    | None -> k (Decl_ref v))
  | Paren a -> k (Paren (transform_expr t a))
  | Unary (op, a) -> k (Unary (op, transform_expr t a))
  | Binary (op, a, b) -> k (Binary (op, transform_expr t a, transform_expr t b))
  | Assign (op, a, b) -> k (Assign (op, transform_expr t a, transform_expr t b))
  | Conditional (c, a, b) ->
    k (Conditional (transform_expr t c, transform_expr t a, transform_expr t b))
  | Call (f, args) ->
    k (Call (transform_expr t f, List.map (transform_expr t) args))
  | Subscript (a, i) -> k (Subscript (transform_expr t a, transform_expr t i))
  | Implicit_cast (ck, a) -> k (Implicit_cast (ck, transform_expr t a))
  | C_style_cast (ty, a) -> k (C_style_cast (ty, transform_expr t a))
  | Recovery_expr subs -> k (Recovery_expr (List.map (transform_expr t) subs))

let transform_var t v =
  let nv =
    mk_var ~implicit:v.v_implicit
      ?init:(Option.map (transform_expr t) v.v_init)
      ~name:v.v_name ~ty:v.v_ty ~loc:v.v_loc ()
  in
  nv.v_used <- v.v_used;
  substitute_var t ~from:v ~into:nv;
  nv

let rec transform_stmt t s =
  let k kind = mk_stmt ~loc:s.s_loc kind in
  match s.s_kind with
  | Null_stmt | Break | Continue -> k s.s_kind
  | Compound ss -> k (Compound (List.map (transform_stmt t) ss))
  | Expr_stmt e -> k (Expr_stmt (transform_expr t e))
  | Decl_stmt vars -> k (Decl_stmt (List.map (transform_var t) vars))
  | If (c, then_s, else_s) ->
    k
      (If
         ( transform_expr t c,
           transform_stmt t then_s,
           Option.map (transform_stmt t) else_s ))
  | Switch (c, body) -> k (Switch (transform_expr t c, transform_stmt t body))
  | Case cl ->
    k
      (Case
         {
           case_value = cl.case_value;
           case_expr = transform_expr t cl.case_expr;
           case_body = transform_stmt t cl.case_body;
         })
  | Default body -> k (Default (transform_stmt t body))
  | While (c, body) -> k (While (transform_expr t c, transform_stmt t body))
  | Do_while (body, c) -> k (Do_while (transform_stmt t body, transform_expr t c))
  | For { for_init; for_cond; for_inc; for_body } ->
    (* Order matters: the init may declare the loop variable the other
       clauses refer to. *)
    let init = Option.map (transform_stmt t) for_init in
    k
      (For
         {
           for_init = init;
           for_cond = Option.map (transform_expr t) for_cond;
           for_inc = Option.map (transform_expr t) for_inc;
           for_body = transform_stmt t for_body;
         })
  | Range_for rf ->
    let range = transform_expr t rf.rf_range in
    let range_var = transform_var t rf.rf_range_var in
    let begin_var = transform_var t rf.rf_begin_var in
    let end_var = transform_var t rf.rf_end_var in
    let user_var = transform_var t rf.rf_var in
    k
      (Range_for
         {
           rf_var = user_var;
           rf_byref = rf.rf_byref;
           rf_range = range;
           rf_body = transform_stmt t rf.rf_body;
           rf_range_var = range_var;
           rf_begin_var = begin_var;
           rf_end_var = end_var;
           rf_desugared = Option.map (transform_stmt t) rf.rf_desugared;
         })
  | Return e -> k (Return (Option.map (transform_expr t) e))
  | Attributed (attrs, sub) -> k (Attributed (attrs, transform_stmt t sub))
  | Captured c ->
    k
      (Captured
         {
           cap_body = transform_stmt t c.cap_body;
           cap_captures = List.map (remap_var t) c.cap_captures;
           cap_byval = List.map (remap_var t) c.cap_byval;
           cap_params = c.cap_params;
         })
  | Omp_canonical_loop ocl ->
    k
      (Omp_canonical_loop
         {
           ocl_loop = transform_stmt t ocl.ocl_loop;
           ocl_distance = transform_captured t ocl.ocl_distance;
           ocl_loop_value = transform_captured t ocl.ocl_loop_value;
           ocl_var_ref = transform_expr t ocl.ocl_var_ref;
           ocl_counter_width = ocl.ocl_counter_width;
         })
  | Omp_directive d ->
    let nd =
      mk_directive
        ?assoc:(Option.map (transform_stmt t) d.dir_assoc)
        ~kind:d.dir_kind
        ~clauses:(List.map (transform_clause t) d.dir_clauses)
        ~loc:d.dir_loc ()
    in
    nd.dir_transformed <- Option.map (transform_stmt t) d.dir_transformed;
    nd.dir_preinits <- Option.map (transform_stmt t) d.dir_preinits;
    (* Loop helpers are rebuilt by Sema when the copy is re-analysed; they
       are not carried over. *)
    k (Omp_directive nd)
  | Error_stmt ss -> k (Error_stmt (List.map (transform_stmt t) ss))

and transform_captured t c =
  {
    cap_body = transform_stmt t c.cap_body;
    cap_captures = List.map (remap_var t) c.cap_captures;
    cap_byval = List.map (remap_var t) c.cap_byval;
    cap_params = c.cap_params;
  }

and remap_var t v =
  match Hashtbl.find_opt t.map v.v_id with
  | Some (To_var nv) -> nv
  | Some (To_expr _) | None -> v

and transform_clause t c =
  match c with
  | C_num_threads e -> C_num_threads (transform_expr t e)
  | C_schedule (k, chunk) -> C_schedule (k, Option.map (transform_expr t) chunk)
  | C_collapse (n, e) -> C_collapse (n, transform_expr t e)
  | C_full -> C_full
  | C_partial p ->
    C_partial (Option.map (fun (n, e) -> (n, transform_expr t e)) p)
  | C_sizes sizes ->
    C_sizes (List.map (fun (n, e) -> (n, transform_expr t e)) sizes)
  | C_permutation ps ->
    C_permutation (List.map (fun (n, e) -> (n, transform_expr t e)) ps)
  | C_private vs -> C_private (List.map (remap_var t) vs)
  | C_firstprivate vs -> C_firstprivate (List.map (remap_var t) vs)
  | C_shared vs -> C_shared (List.map (remap_var t) vs)
  | C_reduction (op, vs) -> C_reduction (op, List.map (remap_var t) vs)
  | C_nowait -> C_nowait
  | C_simdlen (n, e) -> C_simdlen (n, transform_expr t e)
  | C_if e -> C_if (transform_expr t e)
