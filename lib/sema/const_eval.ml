open Mc_ast.Tree
module Ctype = Mc_ast.Ctype
module Int_ops = Mc_support.Int_ops

let rec eval_int e =
  let width () = Ctype.int_width e.e_ty in
  let lift1 f a =
    match (eval_int a, width ()) with
    | Some va, Some w -> f w va
    | _ -> None
  in
  let lift2 f a b =
    match (eval_int a, eval_int b, width ()) with
    | Some va, Some vb, Some w -> f w va vb
    | _ -> None
  in
  match e.e_kind with
  | Int_lit v -> Some v
  | Paren a -> eval_int a
  | Implicit_cast ((CK_integral | CK_lvalue_to_rvalue | CK_int_to_bool), a)
  | C_style_cast (_, a) -> (
    match (eval_int a, a.e_ty, e.e_ty) with
    | Some v, from_ty, to_ty -> (
      match (Ctype.int_width from_ty, Ctype.int_width to_ty) with
      | Some from, Some into -> Some (Int_ops.convert ~from ~into v)
      | _ -> None)
    | None, _, _ -> None)
  | Unary (U_plus, a) -> eval_int a
  | Unary (U_minus, a) -> lift1 (fun w v -> Some (Int_ops.neg w v)) a
  | Unary (U_bnot, a) -> lift1 (fun w v -> Some (Int_ops.bit_not w v)) a
  | Unary (U_lnot, a) -> (
    match eval_int a with
    | Some v -> Some (if Int64.equal v 0L then 1L else 0L)
    | None -> None)
  | Binary (op, a, b) -> (
    match op with
    | B_add -> lift2 (fun w x y -> Some (Int_ops.add w x y)) a b
    | B_sub -> lift2 (fun w x y -> Some (Int_ops.sub w x y)) a b
    | B_mul -> lift2 (fun w x y -> Some (Int_ops.mul w x y)) a b
    | B_div -> lift2 (fun w x y -> Int_ops.div w x y) a b
    | B_rem -> lift2 (fun w x y -> Int_ops.rem w x y) a b
    | B_shl -> lift2 (fun w x y -> Some (Int_ops.shl w x y)) a b
    | B_shr -> lift2 (fun w x y -> Some (Int_ops.shr w x y)) a b
    | B_band -> lift2 (fun w x y -> Some (Int_ops.bit_and w x y)) a b
    | B_bor -> lift2 (fun w x y -> Some (Int_ops.bit_or w x y)) a b
    | B_bxor -> lift2 (fun w x y -> Some (Int_ops.bit_xor w x y)) a b
    | B_lt | B_gt | B_le | B_ge | B_eq | B_ne -> (
      (* Comparison operands share a type after the usual conversions. *)
      match (eval_int a, eval_int b, Ctype.int_width a.e_ty) with
      | Some x, Some y, Some w ->
        let r =
          match op with
          | B_lt -> Int_ops.lt w x y
          | B_gt -> Int_ops.lt w y x
          | B_le -> Int_ops.le w x y
          | B_ge -> Int_ops.le w y x
          | B_eq -> Int64.equal x y
          | B_ne -> not (Int64.equal x y)
          | _ -> assert false
        in
        Some (if r then 1L else 0L)
      | _ -> None)
    | B_land -> (
      match eval_int a with
      | Some 0L -> Some 0L
      | Some _ -> (
        match eval_int b with
        | Some v -> Some (if Int64.equal v 0L then 0L else 1L)
        | None -> None)
      | None -> None)
    | B_lor -> (
      match eval_int a with
      | Some 0L -> (
        match eval_int b with
        | Some v -> Some (if Int64.equal v 0L then 0L else 1L)
        | None -> None)
      | Some _ -> Some 1L
      | None -> None)
    | B_comma -> eval_int b)
  | Conditional (c, a, b) -> (
    match eval_int c with
    | Some 0L -> eval_int b
    | Some _ -> eval_int a
    | None -> None)
  | Sizeof_type ty -> (
    match ty with
    | Func _ | Void | Array (_, None) -> None
    | _ -> Some (Int64.of_int (Ctype.size_in_bytes ty)))
  | Implicit_cast _ | Assign _ | Decl_ref _ | Fn_ref _ | Call _ | Subscript _
  | Unary _ | Float_lit _ | String_lit _ | Recovery_expr _ ->
    None

let eval_int_as e = Option.map Int64.to_int (eval_int e)
