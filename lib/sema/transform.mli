(** The shared loop-transformation entry point.

    Every classic-representation transformation — whether driven by a
    [#pragma omp] directive or by a transformation script — goes through
    {!apply}; {!of_directive} and {!params_of_clauses} translate the
    directive surface into the internal [kind]/[params] pair so the clause
    interpretation (default unroll factor, sizes/permutation arity) lives
    in exactly one place. *)

open Mc_ast.Tree

type kind = Unroll | Tile | Stripe | Reverse | Interchange | Fuse | Fission

type params = {
  factor : [ `Full | `Heuristic | `Partial of int ] option; (* unroll *)
  sizes : int list option; (* tile / stripe *)
  perm : int list option; (* interchange, validated 0-based *)
}

val no_params : params

type result =
  | Applied of Shadow.transformed
  | Deferred (* full/heuristic unroll: the mid-end LoopUnroll pass decides *)
  | Not_applicable (* params do not fit the nest; caller already diagnosed *)

val of_directive : directive_kind -> kind option
(** [Some kind] for the seven loop transformations, [None] for worksharing
    and region directives. *)

val directive_of : kind -> directive_kind

val params_of_clauses : ?perm:int list -> clause list -> params
(** Interprets the transformation clauses of a directive ([full],
    [partial], [sizes]); [perm] supplies the already-validated 0-based
    permutation for interchange. *)

val apply :
  Sema.t -> kind -> params -> Canonical.analyzed list -> loc:loc -> result
(** Builds the shadow transformed AST for the given nest (outermost
    first). *)
