open Mc_ast.Tree
module Ctype = Mc_ast.Ctype
module Diag = Mc_diag.Diagnostics
module Int_ops = Mc_support.Int_ops
module Loc = Mc_srcmgr.Source_location

type direction = Up | Down

type comparison = Cmp_lt | Cmp_le | Cmp_gt | Cmp_ge | Cmp_ne

type analyzed = {
  cl_stmt : stmt;
  cl_iter_var : var;
  cl_user_var : var;
  cl_init : expr;
  cl_bound : expr;
  cl_cmp : comparison;
  cl_step : expr;
  cl_step_const : int64 option;
  cl_dir : direction;
  cl_body : stmt;
  cl_counter_ty : ctype;
  cl_is_range_for : bool;
}

let error sema ~loc fmt =
  Printf.ksprintf (fun s -> Diag.error (Sema.diagnostics sema) ~loc s) fmt

let stat_canonical =
  Mc_support.Stats.counter ~group:"sema" ~name:"canonical-loops"
    ~desc:"canonical loops recognized" ()

let rec strip e =
  match e.e_kind with
  | Paren inner | Implicit_cast (_, inner) -> strip inner
  | _ -> e

let as_var_ref v e =
  match (strip e).e_kind with
  | Decl_ref w -> w.v_id = v.v_id
  | _ -> false

let var_of_expr e =
  match (strip e).e_kind with Decl_ref v -> Some v | _ -> None

(* The logical iteration counter: unsigned, wide enough that the full
   iteration space of the iteration variable's type fits (paper §3.1). *)
let counter_ty_for = function
  | Ptr _ -> Ctype.ulong_t
  | Int { Int_ops.bits; _ } when bits >= 64 -> Ctype.ulong_t
  | _ -> Ctype.uint_t

(* ---- init/cond/incr pattern matching ------------------------------------ *)

let match_init sema init =
  match init with
  | Some { s_kind = Decl_stmt [ v ]; _ } -> (
    match v.v_init with
    | Some lb -> Some (v, lb)
    | None -> None)
  | Some { s_kind = Expr_stmt e; _ } -> (
    match (strip e).e_kind with
    | Assign (None, target, lb) -> (
      match var_of_expr target with
      | Some v -> Some (v, Sema.rvalue sema lb)
      | None -> None)
    | _ -> None)
  | _ -> None

let match_cond v cond =
  let c = strip cond in
  match c.e_kind with
  | Binary (op, lhs, rhs) -> (
    let direct =
      match op with
      | B_lt -> Some Cmp_lt
      | B_le -> Some Cmp_le
      | B_gt -> Some Cmp_gt
      | B_ge -> Some Cmp_ge
      | B_ne -> Some Cmp_ne
      | _ -> None
    in
    let commuted = function
      | Cmp_lt -> Cmp_gt
      | Cmp_le -> Cmp_ge
      | Cmp_gt -> Cmp_lt
      | Cmp_ge -> Cmp_le
      | Cmp_ne -> Cmp_ne
    in
    match direct with
    | None -> None
    | Some cmp ->
      if as_var_ref v lhs then Some (cmp, rhs)
      else if as_var_ref v rhs then Some (commuted cmp, lhs)
      else None)
  | _ -> None

(* Returns (direction, step-magnitude expression). *)
let match_incr sema v inc =
  let i = strip inc in
  let one ty = Sema.intexpr sema 1L ty i.e_loc in
  let step_ty =
    match v.v_ty with Ptr _ -> Ctype.long_t | ty -> ty
  in
  match i.e_kind with
  | Unary ((U_preinc | U_postinc), target) when as_var_ref v target ->
    Some (Up, one step_ty)
  | Unary ((U_predec | U_postdec), target) when as_var_ref v target ->
    Some (Down, one step_ty)
  | Assign (Some B_add, target, step) when as_var_ref v target -> Some (Up, step)
  | Assign (Some B_sub, target, step) when as_var_ref v target -> Some (Down, step)
  | Assign (None, target, rhs) when as_var_ref v target -> (
    match (strip rhs).e_kind with
    | Binary (B_add, a, step) when as_var_ref v a -> Some (Up, step)
    | Binary (B_add, step, a) when as_var_ref v a -> Some (Up, step)
    | Binary (B_sub, a, step) when as_var_ref v a -> Some (Down, step)
    | _ -> None)
  | _ -> None

let rec analyze_loop sema s =
  match s.s_kind with
  | Attributed (_, sub) -> analyze_loop sema sub
  | Omp_canonical_loop ocl -> analyze_loop sema ocl.ocl_loop
  | For { for_init; for_cond; for_inc; for_body } -> (
    let loc = s.s_loc in
    match
      ( match_init sema for_init,
        for_cond,
        for_inc )
    with
    | Some (v, lb), Some cond, Some inc -> (
      if not (Ctype.is_integer v.v_ty || Ctype.is_pointer v.v_ty) then begin
        error sema ~loc
          "loop iteration variable '%s' must have integer or pointer type"
          v.v_name;
        None
      end
      else begin
        match (match_cond v cond, match_incr sema v inc) with
        | Some (cmp, bound), Some (dir, step) ->
          let step_const = Const_eval.eval_int (Sema.rvalue sema step) in
          (match (cmp, step_const) with
          | Cmp_ne, Some (1L | -1L) -> ()
          | Cmp_ne, _ ->
            error sema ~loc
              "'!=' loop condition requires a constant step of 1 or -1"
          | _ -> ());
          (* Direction and comparison must agree (e.g. i < N with i -= 1 is
             not canonical). *)
          let compatible =
            match (cmp, dir) with
            | (Cmp_lt | Cmp_le), Up
            | (Cmp_gt | Cmp_ge), Down
            | Cmp_ne, _ ->
              true
            | _ -> false
          in
          if not compatible then begin
            error sema ~loc
              "loop increment direction is incompatible with its condition";
            None
          end
          else
            Some
              {
                cl_stmt = s;
                cl_iter_var = v;
                cl_user_var = v;
                cl_init = Sema.rvalue sema lb;
                cl_bound = Sema.rvalue sema bound;
                cl_cmp = cmp;
                cl_step = Sema.rvalue sema step;
                cl_step_const = step_const;
                cl_dir = (match cmp with Cmp_ne -> (match step_const with Some -1L -> Down | _ -> Up) | _ -> dir);
                cl_body = for_body;
                cl_counter_ty = counter_ty_for v.v_ty;
                cl_is_range_for = false;
              }
        | None, _ ->
          error sema ~loc
            "condition of an OpenMP canonical loop must compare the \
             iteration variable against a bound";
          None
        | _, None ->
          error sema ~loc
            "increment of an OpenMP canonical loop must advance the \
             iteration variable by a loop-invariant amount";
          None
      end)
    | None, _, _ ->
      error sema ~loc
        "initialization of an OpenMP canonical loop must assign the \
         iteration variable";
      None
    | _, None, _ ->
      error sema ~loc "an OpenMP canonical loop requires a condition";
      None
    | _, _, None ->
      error sema ~loc "an OpenMP canonical loop requires an increment";
      None)
  | Range_for rf ->
    let loc = s.s_loc in
    let begin_init =
      match rf.rf_begin_var.v_init with
      | Some e -> e
      | None -> Sema.mk_ref rf.rf_begin_var
    in
    Some
      {
        cl_stmt = s;
        cl_iter_var = rf.rf_begin_var;
        cl_user_var = rf.rf_var;
        cl_init = begin_init;
        cl_bound = Sema.rvalue sema (Sema.mk_ref rf.rf_end_var);
        cl_cmp = Cmp_ne;
        cl_step = Sema.intexpr sema 1L Ctype.long_t loc;
        cl_step_const = Some 1L;
        cl_dir = Up;
        cl_body = rf.rf_body;
        cl_counter_ty = counter_ty_for rf.rf_begin_var.v_ty;
        cl_is_range_for = true;
      }
  | _ ->
    error sema ~loc:s.s_loc
      "statement after an OpenMP loop-associated directive must be a for loop";
    None

let analyze sema s =
  match analyze_loop sema s with
  | Some _ as r ->
    Mc_support.Stats.incr stat_canonical;
    r
  | None -> None

(* ---- synthesised expressions --------------------------------------------- *)

let to_counter sema a e =
  let u = a.cl_counter_ty in
  match e.e_ty with
  | Ptr _ -> Sema.act_on_cast sema u e ~loc:e.e_loc
  | _ -> Sema.convert sema e u

let trip_count_expr sema a =
  let loc = a.cl_stmt.s_loc in
  let u = a.cl_counter_ty in
  let bin op l r = Sema.act_on_binary sema op l r ~loc in
  let lit v = Sema.intexpr sema v u loc in
  (* Distance in the unsigned domain; modular subtraction keeps the
     INT32_MIN..INT32_MAX case exact (paper §3.1). *)
  let dist =
    match a.cl_dir with
    | Up ->
      (match a.cl_init.e_ty with
      | Ptr _ ->
        (* Pointer distance: (U)(end - begin). *)
        to_counter sema a (bin B_sub a.cl_bound a.cl_init)
      | _ -> bin B_sub (to_counter sema a a.cl_bound) (to_counter sema a a.cl_init))
    | Down ->
      (match a.cl_init.e_ty with
      | Ptr _ -> to_counter sema a (bin B_sub a.cl_init a.cl_bound)
      | _ -> bin B_sub (to_counter sema a a.cl_init) (to_counter sema a a.cl_bound))
  in
  let dist =
    match a.cl_cmp with
    | Cmp_le | Cmp_ge -> bin B_add dist (lit 1L)
    | Cmp_lt | Cmp_gt | Cmp_ne -> dist
  in
  let step_u = to_counter sema a a.cl_step in
  let count =
    match a.cl_step_const with
    | Some 1L | Some -1L -> dist
    | _ ->
      bin B_div (bin B_sub (bin B_add dist step_u) (lit 1L)) step_u
  in
  match a.cl_cmp with
  | Cmp_ne -> count
  | Cmp_lt | Cmp_le | Cmp_gt | Cmp_ge ->
    (* Guard against an initially false condition: count is garbage then. *)
    let cmp_op =
      match a.cl_cmp with
      | Cmp_lt -> B_lt
      | Cmp_le -> B_le
      | Cmp_gt -> B_gt
      | Cmp_ge -> B_ge
      | Cmp_ne ->
        (* Excluded by the enclosing match arm. *)
        Mc_support.Crash_recovery.internal_error
          "trip-count guard requested for a '!=' canonical loop"
    in
    let guard = bin cmp_op a.cl_init a.cl_bound in
    Sema.act_on_conditional sema guard count (lit 0L) ~loc

let user_value_expr sema a ~logical =
  let loc = a.cl_stmt.s_loc in
  let bin op l r = Sema.act_on_binary sema op l r ~loc in
  let offset_u = bin B_mul (Sema.convert sema logical a.cl_counter_ty)
      (to_counter sema a a.cl_step)
  in
  match a.cl_iter_var.v_ty with
  | Ptr _ ->
    let off = Sema.convert sema offset_u Ctype.long_t in
    let off = match a.cl_dir with
      | Up -> off
      | Down -> Sema.act_on_unary sema U_minus off ~loc
    in
    bin B_add a.cl_init off
  | ty ->
    (* (T)((U)init ± offset): modular, then narrowed to the variable type. *)
    let base = to_counter sema a a.cl_init in
    let combined =
      match a.cl_dir with
      | Up -> bin B_add base offset_u
      | Down -> bin B_sub base offset_u
    in
    Sema.act_on_cast sema ty combined ~loc

let user_lvalue sema a ~logical =
  if a.cl_is_range_for then begin
    let loc = a.cl_stmt.s_loc in
    let ptr = user_value_expr sema a ~logical in
    Sema.act_on_unary sema U_deref ptr ~loc
  end
  else user_value_expr sema a ~logical

(* ---- OMPCanonicalLoop construction --------------------------------------- *)

let make_canonical_loop sema a =
  let loc = a.cl_stmt.s_loc in
  let u = a.cl_counter_ty in
  let result_var =
    mk_var ~implicit:true ~name:".result." ~ty:u ~loc ()
  in
  let distance_body =
    mk_stmt ~loc
      (Expr_stmt
         (Sema.act_on_assign sema None (Sema.mk_ref result_var)
            (trip_count_expr sema a) ~loc))
  in
  let distance = Capture.make_lambda ~params:[ result_var ] distance_body in
  let value_result =
    mk_var ~implicit:true ~name:".result."
      ~ty:(if a.cl_is_range_for then a.cl_iter_var.v_ty else a.cl_user_var.v_ty)
      ~loc ()
  in
  let logical_var = mk_var ~implicit:true ~name:".logical." ~ty:u ~loc () in
  let loop_value_body =
    mk_stmt ~loc
      (Expr_stmt
         (Sema.act_on_assign sema None (Sema.mk_ref value_result)
            (user_value_expr sema a ~logical:(Sema.mk_ref logical_var))
            ~loc))
  in
  let byval = if a.cl_is_range_for then [ a.cl_iter_var ] else [] in
  let loop_value =
    Capture.make_lambda ~params:[ value_result; logical_var ] ~byval
      loop_value_body
  in
  mk_stmt ~loc
    (Omp_canonical_loop
       {
         ocl_loop = a.cl_stmt;
         ocl_distance = distance;
         ocl_loop_value = loop_value;
         ocl_var_ref = Sema.mk_ref a.cl_user_var;
         ocl_counter_width =
           Option.value (Ctype.int_width u) ~default:Int_ops.u64;
       })

(* ---- range-for de-sugaring (Fig. 8c) -------------------------------------- *)

let desugared_range_for sema rf ~loc =
  match rf.rf_desugared with
  | Some d -> d
  | None ->
    let distance_var =
      mk_var ~implicit:true ~name:"__distance" ~ty:Ctype.long_t ~loc
        ~init:
          (Sema.act_on_binary sema B_sub
             (Sema.mk_ref rf.rf_end_var)
             (Sema.mk_ref rf.rf_begin_var)
             ~loc)
        ()
    in
    let i_var =
      mk_var ~implicit:true ~name:"__i" ~ty:Ctype.long_t ~loc
        ~init:(Sema.intexpr sema 0L Ctype.long_t loc) ()
    in
    let deref =
      Sema.act_on_unary sema U_deref
        (Sema.act_on_binary sema B_add
           (Sema.mk_ref rf.rf_begin_var)
           (Sema.mk_ref i_var) ~loc)
        ~loc
    in
    let tt = Tree_transform.create () in
    let body =
      if rf.rf_byref then begin
        (* The user variable is an alias of the element. *)
        Tree_transform.substitute_var_expr tt ~from:rf.rf_var ~into:deref;
        Tree_transform.transform_stmt tt rf.rf_body
      end
      else begin
        let copy =
          mk_var ~name:rf.rf_var.v_name ~ty:rf.rf_var.v_ty ~loc ~init:deref ()
        in
        Tree_transform.substitute_var tt ~from:rf.rf_var ~into:copy;
        mk_stmt ~loc
          (Compound
             [
               mk_stmt ~loc (Decl_stmt [ copy ]);
               Tree_transform.transform_stmt tt rf.rf_body;
             ])
      end
    in
    let for_stmt =
      mk_stmt ~loc
        (For
           {
             for_init = Some (mk_stmt ~loc (Decl_stmt [ i_var ]));
             for_cond =
               Some
                 (Sema.act_on_binary sema B_lt (Sema.mk_ref i_var)
                    (Sema.mk_ref distance_var) ~loc);
             for_inc = Some (Sema.act_on_unary sema U_preinc (Sema.mk_ref i_var) ~loc);
             for_body = body;
           })
    in
    let result =
      mk_stmt ~loc
        (Compound
           [
             mk_stmt ~loc
               (Decl_stmt
                  [ rf.rf_range_var; rf.rf_begin_var; rf.rf_end_var; distance_var ]);
             for_stmt;
           ])
    in
    rf.rf_desugared <- Some result;
    result
