open Mc_ast.Tree
module Token = Mc_lexer.Token
module Pp = Mc_pp.Preprocessor
module Sema = Mc_sema.Sema
module Omp_sema = Mc_sema.Omp_sema
module Ctype = Mc_ast.Ctype
module Diag = Mc_diag.Diagnostics
module Loc = Mc_srcmgr.Source_location

let stat_decls =
  Mc_support.Stats.counter ~group:"parser" ~name:"external-decls"
    ~desc:"file-scope declarations parsed" ()
let stat_omp =
  Mc_support.Stats.counter ~group:"parser" ~name:"omp-directives"
    ~desc:"OpenMP directives parsed" ()

type t = {
  sema : Sema.t;
  diag : Diag.t;
  mutable items : Pp.item list;
  bracket_depth : int; (* -fbracket-depth: max statement/expression nesting *)
  mutable depth : int; (* current nesting level *)
}

let eof_token =
  {
    Token.kind = Token.Eof;
    loc = Loc.invalid;
    len = 0;
    at_line_start = true;
    has_space_before = false;
  }

(* The current head as a token; pragmas surface as Eof here so that plain
   token grammar never consumes them accidentally. *)
let peek t =
  match t.items with
  | Pp.Tok tok :: _ -> tok
  | Pp.Prag _ :: _ | [] -> eof_token

let peek2 t =
  match t.items with
  | _ :: Pp.Tok tok :: _ -> tok
  | _ -> eof_token

let peek_pragma t =
  match t.items with Pp.Prag p :: _ -> Some p | _ -> None

let advance t =
  match t.items with
  | [] -> ()
  | item :: rest ->
    (* Crash-recovery watermark: remember the last consumed position so an
       ICE anywhere downstream can report where in the source it happened. *)
    (match item with
    | Pp.Tok { Token.loc; _ } when Loc.is_valid loc ->
      Mc_support.Crash_recovery.note_source_position ~file:(Loc.file_id loc)
        ~offset:(Loc.offset loc)
    | _ -> ());
    t.items <- rest

let next t =
  let tok = peek t in
  advance t;
  tok

let error t ~loc fmt = Printf.ksprintf (fun s -> Diag.error t.diag ~loc s) fmt

let loc_of t = (peek t).Token.loc

let expect t punct what =
  let tok = peek t in
  if Token.is_punct tok punct then begin
    advance t;
    true
  end
  else begin
    error t ~loc:tok.Token.loc "expected '%s' %s (found %s)"
      (Token.punct_to_string punct) what
      (Token.describe tok.Token.kind);
    false
  end

(* Skip to a synchronisation point after a parse error. *)
let synchronize t =
  let rec go depth =
    let tok = peek t in
    match tok.Token.kind with
    | Token.Eof -> ()
    | Token.Punct Token.Semi when depth = 0 -> advance t
    | Token.Punct Token.LBrace ->
      advance t;
      go (depth + 1)
    | Token.Punct Token.RBrace ->
      if depth = 0 then ()
      else begin
        advance t;
        go (depth - 1)
      end
    | _ ->
      advance t;
      go depth
  in
  go 0

(* -fbracket-depth guard: expression and statement parsing recurse per
   nesting level, so pathological inputs ("((((...." or "{{{{....") would
   otherwise turn into a Stack_overflow.  The counter is bumped on the two
   recursion workhorses (parse_unary, parse_statement); crossing the limit
   is diagnosed exactly once per excursion and recovered from. *)
let enter_depth t ~loc =
  t.depth <- t.depth + 1;
  if t.depth = t.bracket_depth + 1 then
    error t ~loc "nesting level exceeds maximum of %d [-fbracket-depth=]"
      t.bracket_depth;
  t.depth <= t.bracket_depth

let exit_depth t = t.depth <- t.depth - 1

(* ---- types ---------------------------------------------------------------- *)

let starts_type t =
  match (peek t).Token.kind with
  | Token.Keyword
      ( Token.Kw_int | Token.Kw_long | Token.Kw_short | Token.Kw_char
      | Token.Kw_signed | Token.Kw_unsigned | Token.Kw_float | Token.Kw_double
      | Token.Kw_void | Token.Kw_bool | Token.Kw_const ) ->
    true
  | Token.Ident ("size_t" | "int64_t" | "int32_t" | "uint32_t" | "uint64_t") ->
    true
  | _ -> false

(* Declaration specifiers: base type + signedness + const (dropped). *)
let parse_type_specifier t =
  let loc = loc_of t in
  let signedness = ref None in
  let base = ref None in
  let longs = ref 0 in
  let named = ref None in
  let rec go () =
    match (peek t).Token.kind with
    | Token.Keyword Token.Kw_const ->
      advance t;
      go ()
    | Token.Keyword Token.Kw_signed ->
      advance t;
      signedness := Some true;
      go ()
    | Token.Keyword Token.Kw_unsigned ->
      advance t;
      signedness := Some false;
      go ()
    | Token.Keyword Token.Kw_long ->
      advance t;
      incr longs;
      go ()
    | Token.Keyword Token.Kw_int ->
      advance t;
      if !base = None then base := Some `Int;
      go ()
    | Token.Keyword Token.Kw_short ->
      advance t;
      base := Some `Short;
      go ()
    | Token.Keyword Token.Kw_char ->
      advance t;
      base := Some `Char;
      go ()
    | Token.Keyword Token.Kw_float ->
      advance t;
      base := Some `Float;
      go ()
    | Token.Keyword Token.Kw_double ->
      advance t;
      base := Some `Double;
      go ()
    | Token.Keyword Token.Kw_void ->
      advance t;
      base := Some `Void;
      go ()
    | Token.Keyword Token.Kw_bool ->
      advance t;
      base := Some `Bool;
      go ()
    | Token.Ident (("size_t" | "int64_t" | "int32_t" | "uint32_t" | "uint64_t") as n)
      when !base = None && !named = None && !signedness = None && !longs = 0 ->
      advance t;
      named := Some n;
      go ()
    | _ -> ()
  in
  go ();
  match !named with
  | Some "size_t" | Some "uint64_t" -> Ctype.ulong_t
  | Some "int64_t" -> Ctype.long_t
  | Some "int32_t" -> Ctype.int_t
  | Some "uint32_t" -> Ctype.uint_t
  | Some _ -> Ctype.int_t
  | None -> (
    let signed = Option.value !signedness ~default:true in
    match (!base, !longs) with
    | Some `Void, _ -> Void
    | Some `Bool, _ -> Bool
    | Some `Float, _ -> Ctype.float_t
    | Some `Double, _ -> Ctype.double_t
    | Some `Char, _ -> if signed then Ctype.char_t else Ctype.uchar_t
    | Some `Short, _ -> if signed then Ctype.short_t else Ctype.ushort_t
    | Some `Int, 0 | None, 0 -> if signed then Ctype.int_t else Ctype.uint_t
    | (Some `Int | None), _ -> if signed then Ctype.long_t else Ctype.ulong_t
    | exception _ ->
      error t ~loc "invalid type specifier";
      Ctype.int_t)

let parse_pointers t base =
  let ty = ref base in
  while Token.is_punct (peek t) Token.Star do
    advance t;
    (* const after * is accepted and dropped *)
    while Token.is_keyword (peek t) Token.Kw_const do
      advance t
    done;
    ty := Ptr !ty
  done;
  !ty

(* ---- expressions ------------------------------------------------------------ *)

let rec parse_expr t = parse_comma t

and parse_comma t =
  let lhs = parse_assignment t in
  if Token.is_punct (peek t) Token.Comma then begin
    let loc = loc_of t in
    advance t;
    let rhs = parse_comma t in
    Sema.act_on_binary t.sema B_comma lhs rhs ~loc
  end
  else lhs

and parse_assignment t =
  let lhs = parse_conditional t in
  let tok = peek t in
  let compound op =
    advance t;
    let rhs = parse_assignment t in
    Sema.act_on_assign t.sema op lhs rhs ~loc:tok.Token.loc
  in
  match tok.Token.kind with
  | Token.Punct Token.Equal -> compound None
  | Token.Punct Token.PlusEqual -> compound (Some B_add)
  | Token.Punct Token.MinusEqual -> compound (Some B_sub)
  | Token.Punct Token.StarEqual -> compound (Some B_mul)
  | Token.Punct Token.SlashEqual -> compound (Some B_div)
  | Token.Punct Token.PercentEqual -> compound (Some B_rem)
  | Token.Punct Token.LessLessEqual -> compound (Some B_shl)
  | Token.Punct Token.GreaterGreaterEqual -> compound (Some B_shr)
  | Token.Punct Token.AmpEqual -> compound (Some B_band)
  | Token.Punct Token.PipeEqual -> compound (Some B_bor)
  | Token.Punct Token.CaretEqual -> compound (Some B_bxor)
  | _ -> lhs

and parse_conditional t =
  let cond = parse_binary t 1 in
  if Token.is_punct (peek t) Token.Question then begin
    let loc = loc_of t in
    advance t;
    let then_e = parse_expr t in
    ignore (expect t Token.Colon "in conditional expression");
    let else_e = parse_assignment t in
    Sema.act_on_conditional t.sema cond then_e else_e ~loc
  end
  else cond

and binop_of_punct = function
  | Token.Star -> Some (B_mul, 13)
  | Token.Slash -> Some (B_div, 13)
  | Token.Percent -> Some (B_rem, 13)
  | Token.Plus -> Some (B_add, 12)
  | Token.Minus -> Some (B_sub, 12)
  | Token.LessLess -> Some (B_shl, 11)
  | Token.GreaterGreater -> Some (B_shr, 11)
  | Token.Less -> Some (B_lt, 10)
  | Token.Greater -> Some (B_gt, 10)
  | Token.LessEqual -> Some (B_le, 10)
  | Token.GreaterEqual -> Some (B_ge, 10)
  | Token.EqualEqual -> Some (B_eq, 9)
  | Token.ExclaimEqual -> Some (B_ne, 9)
  | Token.Amp -> Some (B_band, 8)
  | Token.Caret -> Some (B_bxor, 7)
  | Token.Pipe -> Some (B_bor, 6)
  | Token.AmpAmp -> Some (B_land, 5)
  | Token.PipePipe -> Some (B_lor, 4)
  | _ -> None

and parse_binary t min_prec =
  let lhs = ref (parse_unary t) in
  let rec loop () =
    match (peek t).Token.kind with
    | Token.Punct p -> (
      match binop_of_punct p with
      | Some (op, prec) when prec >= min_prec ->
        let loc = loc_of t in
        advance t;
        let rhs = parse_binary t (prec + 1) in
        lhs := Sema.act_on_binary t.sema op !lhs rhs ~loc;
        loop ()
      | _ -> ())
    | _ -> ()
  in
  loop ();
  !lhs

and parse_unary t =
  let tok = peek t in
  let loc = tok.Token.loc in
  if not (enter_depth t ~loc) then begin
    (* Too deep: recover with a RecoveryExpr and let the callers unwind.
       No token is consumed here — the enclosing statement loop makes
       progress on the next descent. *)
    exit_depth t;
    Sema.act_on_recovery t.sema ~loc ()
  end
  else
    Fun.protect
      ~finally:(fun () -> exit_depth t)
      (fun () -> parse_unary_guarded t tok ~loc)

and parse_unary_guarded t tok ~loc =
  let unary op =
    advance t;
    Sema.act_on_unary t.sema op (parse_unary t) ~loc
  in
  match tok.Token.kind with
  | Token.Punct Token.Plus -> unary U_plus
  | Token.Punct Token.Minus -> unary U_minus
  | Token.Punct Token.Exclaim -> unary U_lnot
  | Token.Punct Token.Tilde -> unary U_bnot
  | Token.Punct Token.Star -> unary U_deref
  | Token.Punct Token.Amp -> unary U_addrof
  | Token.Punct Token.PlusPlus -> unary U_preinc
  | Token.Punct Token.MinusMinus -> unary U_predec
  | Token.Keyword Token.Kw_sizeof ->
    advance t;
    if Token.is_punct (peek t) Token.LParen then begin
      advance t;
      let inner =
        if starts_type t then begin
          let base = parse_type_specifier t in
          let ty = parse_pointers t base in
          Sema.act_on_sizeof t.sema ty ~loc
        end
        else begin
          let e = parse_expr t in
          Sema.act_on_sizeof t.sema e.e_ty ~loc
        end
      in
      ignore (expect t Token.RParen "after sizeof");
      inner
    end
    else begin
      let e = parse_unary t in
      Sema.act_on_sizeof t.sema e.e_ty ~loc
    end
  | Token.Punct Token.LParen when starts_type_after_lparen t ->
    (* C-style cast. *)
    advance t;
    let base = parse_type_specifier t in
    let ty = parse_pointers t base in
    ignore (expect t Token.RParen "after cast type");
    Sema.act_on_cast t.sema ty (parse_unary t) ~loc
  | _ -> parse_postfix t

and starts_type_after_lparen t =
  match (peek2 t).Token.kind with
  | Token.Keyword
      ( Token.Kw_int | Token.Kw_long | Token.Kw_short | Token.Kw_char
      | Token.Kw_signed | Token.Kw_unsigned | Token.Kw_float | Token.Kw_double
      | Token.Kw_void | Token.Kw_bool | Token.Kw_const ) ->
    true
  | Token.Ident ("size_t" | "int64_t" | "int32_t" | "uint32_t" | "uint64_t") ->
    true
  | _ -> false

and parse_postfix t =
  let e = ref (parse_primary t) in
  let rec loop () =
    let tok = peek t in
    match tok.Token.kind with
    | Token.Punct Token.LParen ->
      advance t;
      let args = ref [] in
      if not (Token.is_punct (peek t) Token.RParen) then begin
        let rec more () =
          args := parse_assignment t :: !args;
          if Token.is_punct (peek t) Token.Comma then begin
            advance t;
            more ()
          end
        in
        more ()
      end;
      ignore (expect t Token.RParen "after call arguments");
      e := Sema.act_on_call t.sema !e (List.rev !args) ~loc:tok.Token.loc;
      loop ()
    | Token.Punct Token.LBracket ->
      advance t;
      let idx = parse_expr t in
      ignore (expect t Token.RBracket "after array subscript");
      e := Sema.act_on_subscript t.sema !e idx ~loc:tok.Token.loc;
      loop ()
    | Token.Punct Token.PlusPlus ->
      advance t;
      e := Sema.act_on_unary t.sema U_postinc !e ~loc:tok.Token.loc;
      loop ()
    | Token.Punct Token.MinusMinus ->
      advance t;
      e := Sema.act_on_unary t.sema U_postdec !e ~loc:tok.Token.loc;
      loop ()
    | _ -> ()
  in
  loop ();
  !e

and parse_primary t =
  let tok = next t in
  let loc = tok.Token.loc in
  match tok.Token.kind with
  | Token.Int_lit { value; suffix; _ } ->
    Sema.act_on_int_literal t.sema ~value ~unsigned:suffix.Token.suffix_unsigned
      ~long:suffix.Token.suffix_long ~loc
  | Token.Float_lit { value; _ } -> Sema.act_on_float_literal t.sema ~value ~loc
  | Token.Char_lit { value; _ } -> Sema.act_on_char_literal t.sema ~value ~loc
  | Token.String_lit { value; _ } -> Sema.act_on_string_literal t.sema ~value ~loc
  | Token.Ident name -> Sema.act_on_decl_ref t.sema ~name ~loc
  | Token.Punct Token.LParen ->
    let e = parse_expr t in
    ignore (expect t Token.RParen "after parenthesised expression");
    Sema.act_on_paren t.sema e
  | k ->
    error t ~loc "expected expression (found %s)" (Token.describe k);
    (* RecoveryExpr instead of a placeholder literal: the AST survives,
       but carries the contains-errors bit so codegen refuses it. *)
    Sema.act_on_recovery t.sema ~loc ()

(* ---- declarations ------------------------------------------------------------ *)

(* One declarator in a declaration: pointers, name, array bounds, optional
   initialiser.  Returns the created variable. *)
and parse_init_declarator t base_ty =
  let ty = parse_pointers t base_ty in
  let tok = next t in
  let loc = tok.Token.loc in
  let name =
    match tok.Token.kind with
    | Token.Ident n -> n
    | k ->
      error t ~loc "expected declarator name (found %s)" (Token.describe k);
      "<error>"
  in
  let ty = ref ty in
  let rec arrays () =
    if Token.is_punct (peek t) Token.LBracket then begin
      advance t;
      let bound =
        if Token.is_punct (peek t) Token.RBracket then None
        else begin
          let e = parse_assignment t in
          match Mc_sema.Const_eval.eval_int_as e with
          | Some n when n > 0 -> Some n
          | _ ->
            error t ~loc "array bound must be a positive integer constant";
            Some 1
        end
      in
      ignore (expect t Token.RBracket "after array bound");
      arrays ();
      ty := Array (!ty, bound)
    end
  in
  arrays ();
  let init =
    if Token.is_punct (peek t) Token.Equal then begin
      advance t;
      Some (parse_assignment t)
    end
    else None
  in
  Sema.act_on_var_decl t.sema ~name ~ty:!ty ~init ~loc

and parse_decl_stmt t =
  let loc = loc_of t in
  let base = parse_type_specifier t in
  let vars = ref [ parse_init_declarator t base ] in
  while Token.is_punct (peek t) Token.Comma do
    advance t;
    vars := parse_init_declarator t base :: !vars
  done;
  ignore (expect t Token.Semi "after declaration");
  Sema.act_on_decl_stmt t.sema (List.rev !vars) ~loc

(* ---- OpenMP pragmas ------------------------------------------------------------ *)

(* Parser-side recovery marking: a directive whose pragma line failed to
   parse (unknown clause, missing ')', …) must advertise the damage through
   [contains_errors] just like sema-side analysis failures do, so codegen
   and tooling see one uniform "this subtree is broken" bit. *)
and parse_omp_pragma t (p : Pp.pragma) : stmt =
  let errors_before = Diag.error_count t.diag in
  let stmt = parse_omp_pragma_inner t p in
  if Diag.error_count t.diag > errors_before then mark_stmt_errors stmt;
  stmt

(* A small cursor over a pragma's token list. *)
and parse_omp_pragma_inner t (p : Pp.pragma) : stmt =
  Mc_support.Stats.incr stat_omp;
  let toks = ref p.Pp.pragma_toks in
  let ploc () =
    match !toks with tok :: _ -> tok.Token.loc | [] -> p.Pp.pragma_loc
  in
  let ppeek () = match !toks with tok :: _ -> Some tok.Token.kind | [] -> None in
  let padvance () = match !toks with [] -> () | _ :: rest -> toks := rest in
  let pnext () =
    let k = ppeek () in
    padvance ();
    k
  in
  let perr fmt =
    Printf.ksprintf (fun s -> error t ~loc:(ploc ()) "%s" s) fmt
  in
  let expect_l () =
    match pnext () with
    | Some (Token.Punct Token.LParen) -> true
    | _ ->
      perr "expected '(' in OpenMP clause";
      false
  in
  let expect_r () =
    match pnext () with
    | Some (Token.Punct Token.RParen) -> true
    | _ ->
      perr "expected ')' in OpenMP clause";
      false
  in
  (* Parse an expression from the pragma stream by re-entering the main
     expression parser on a temporary item list (macro expansion already
     happened in the preprocessor). *)
  let parse_pragma_expr () =
    (* Collect tokens up to a balanced ')' or ',' at depth 0. *)
    let collected = ref [] in
    let rec go depth =
      match ppeek () with
      | None -> ()
      | Some (Token.Punct Token.RParen) when depth = 0 -> ()
      | Some (Token.Punct Token.Comma) when depth = 0 -> ()
      | Some k ->
        (match k with
        | Token.Punct Token.LParen -> ()
        | _ -> ());
        let tok = List.hd !toks in
        collected := tok :: !collected;
        padvance ();
        (match k with
        | Token.Punct Token.LParen -> go (depth + 1)
        | Token.Punct Token.RParen -> go (depth - 1)
        | _ -> go depth)
    in
    go 0;
    let saved = t.items in
    t.items <- List.map (fun tok -> Pp.Tok tok) (List.rev !collected);
    let e = parse_assignment t in
    (match t.items with
    | [] -> ()
    | _ -> perr "trailing tokens in clause argument");
    t.items <- saved;
    e
  in
  let parse_var_list () =
    let vars = ref [] in
    if expect_l () then begin
      let rec go () =
        match pnext () with
        | Some (Token.Ident name) -> (
          (match Sema.lookup_var t.sema name with
          | Some v ->
            v.v_used <- true;
            vars := v :: !vars
          | None -> perr "use of undeclared identifier '%s' in clause" name);
          match ppeek () with
          | Some (Token.Punct Token.Comma) ->
            padvance ();
            go ()
          | _ -> ignore (expect_r ()))
        | _ -> perr "expected variable name in clause"
      in
      go ()
    end;
    List.rev !vars
  in
  let positive what e = Omp_sema.act_on_clause_expr_positive t.sema ~what e ~loc:(ploc ()) in
  (* --- clause dispatch --- *)
  let rec parse_clauses acc =
    match pnext () with
    | None -> List.rev acc
    | Some (Token.Punct Token.Comma) -> parse_clauses acc
    | Some (Token.Ident _ | Token.Keyword _) as k -> (
      let name =
        match k with
        | Some (Token.Ident n) -> n
        | Some (Token.Keyword kw) -> Token.keyword_to_string kw
        | _ ->
          (* Unreachable: guarded by the enclosing Ident/Keyword pattern —
             but if the guard ever drifts, report through the ICE path
             instead of a bare Assert_failure. *)
          Mc_support.Crash_recovery.internal_error
            "pragma clause head is neither identifier nor keyword"
      in
      match name with
      | "num_threads" ->
        ignore (expect_l ());
        let e = parse_pragma_expr () in
        ignore (expect_r ());
        parse_clauses (C_num_threads (Sema.convert t.sema e Ctype.int_t) :: acc)
      | "if" ->
        ignore (expect_l ());
        let e = parse_pragma_expr () in
        ignore (expect_r ());
        parse_clauses (C_if (Sema.condition t.sema e) :: acc)
      | "schedule" ->
        ignore (expect_l ());
        let kind =
          match pnext () with
          | Some (Token.Ident "static") -> Sched_static
          | Some (Token.Ident "dynamic") -> Sched_dynamic
          | Some (Token.Ident "guided") -> Sched_guided
          | Some (Token.Ident "runtime") -> Sched_runtime
          | Some (Token.Keyword Token.Kw_auto) | Some (Token.Ident "auto") ->
            Sched_auto
          | _ ->
            perr "unknown schedule kind";
            Sched_static
        in
        let chunk =
          match ppeek () with
          | Some (Token.Punct Token.Comma) ->
            padvance ();
            Some (Sema.convert t.sema (parse_pragma_expr ()) Ctype.long_t)
          | _ -> None
        in
        ignore (expect_r ());
        parse_clauses (C_schedule (kind, chunk) :: acc)
      | "collapse" ->
        ignore (expect_l ());
        let e = parse_pragma_expr () in
        ignore (expect_r ());
        let n, e = positive "collapse" e in
        parse_clauses (C_collapse (n, e) :: acc)
      | "full" -> parse_clauses (C_full :: acc)
      | "partial" -> (
        match ppeek () with
        | Some (Token.Punct Token.LParen) ->
          padvance ();
          let e = parse_pragma_expr () in
          ignore (expect_r ());
          let n, e = positive "partial" e in
          parse_clauses (C_partial (Some (n, e)) :: acc)
        | _ -> parse_clauses (C_partial None :: acc))
      | "sizes" ->
        ignore (expect_l ());
        let sizes = ref [] in
        let rec go () =
          let e = parse_pragma_expr () in
          sizes := positive "sizes" e :: !sizes;
          match ppeek () with
          | Some (Token.Punct Token.Comma) ->
            padvance ();
            go ()
          | _ -> ignore (expect_r ())
        in
        go ();
        parse_clauses (C_sizes (List.rev !sizes) :: acc)
      | "permutation" ->
        ignore (expect_l ());
        let positions = ref [] in
        let rec go () =
          let e = parse_pragma_expr () in
          positions := positive "permutation" e :: !positions;
          match ppeek () with
          | Some (Token.Punct Token.Comma) ->
            padvance ();
            go ()
          | _ -> ignore (expect_r ())
        in
        go ();
        parse_clauses (C_permutation (List.rev !positions) :: acc)
      | "private" -> parse_clauses (C_private (parse_var_list ()) :: acc)
      | "firstprivate" ->
        parse_clauses (C_firstprivate (parse_var_list ()) :: acc)
      | "shared" -> parse_clauses (C_shared (parse_var_list ()) :: acc)
      | "reduction" ->
        ignore (expect_l ());
        let op =
          match pnext () with
          | Some (Token.Punct Token.Plus) -> Red_add
          | Some (Token.Punct Token.Star) -> Red_mul
          | Some (Token.Punct Token.Amp) -> Red_band
          | Some (Token.Punct Token.Pipe) -> Red_bor
          | Some (Token.Ident "min") -> Red_min
          | Some (Token.Ident "max") -> Red_max
          | _ ->
            perr "unknown reduction operator";
            Red_add
        in
        (match pnext () with
        | Some (Token.Punct Token.Colon) -> ()
        | _ -> perr "expected ':' in reduction clause");
        (* variable list up to ')' *)
        let vars = ref [] in
        let rec go () =
          match pnext () with
          | Some (Token.Ident name) -> (
            (match Sema.lookup_var t.sema name with
            | Some v ->
              v.v_used <- true;
              vars := v :: !vars
            | None -> perr "use of undeclared identifier '%s' in clause" name);
            match pnext () with
            | Some (Token.Punct Token.Comma) -> go ()
            | Some (Token.Punct Token.RParen) -> ()
            | _ -> perr "expected ',' or ')' in reduction clause")
          | _ -> perr "expected variable name in reduction clause"
        in
        go ();
        parse_clauses (C_reduction (op, List.rev !vars) :: acc)
      | "nowait" -> parse_clauses (C_nowait :: acc)
      | "simdlen" ->
        ignore (expect_l ());
        let e = parse_pragma_expr () in
        ignore (expect_r ());
        let n, e = positive "simdlen" e in
        parse_clauses (C_simdlen (n, e) :: acc)
      | other ->
        perr "unknown OpenMP clause '%s'" other;
        (* skip a parenthesised argument if present *)
        (match ppeek () with
        | Some (Token.Punct Token.LParen) ->
          let rec skip depth =
            match pnext () with
            | None -> ()
            | Some (Token.Punct Token.LParen) -> skip (depth + 1)
            | Some (Token.Punct Token.RParen) ->
              if depth > 1 then skip (depth - 1)
            | Some _ -> skip depth
          in
          skip 0
        | _ -> ());
        parse_clauses acc)
    | Some k ->
      perr "unexpected %s in OpenMP directive" (Token.describe k);
      parse_clauses acc
  in
  (* --- directive dispatch --- *)
  match pnext () with
  | Some (Token.Ident "omp") -> (
    let kind =
      match pnext () with
      | Some (Token.Ident "parallel") -> (
        match ppeek () with
        | Some (Token.Keyword Token.Kw_for) -> (
          padvance ();
          match ppeek () with
          | Some (Token.Ident "simd") ->
            padvance ();
            Some D_parallel_for_simd
          | _ -> Some D_parallel_for)
        | _ -> Some D_parallel)
      | Some (Token.Keyword Token.Kw_for) -> (
        match ppeek () with
        | Some (Token.Ident "simd") ->
          padvance ();
          Some D_for_simd
        | _ -> Some D_for)
      | Some (Token.Ident "simd") -> Some D_simd
      | Some (Token.Ident "unroll") -> Some D_unroll
      | Some (Token.Ident "tile") -> Some D_tile
      | Some (Token.Ident "reverse") -> Some D_reverse
      | Some (Token.Ident "interchange") -> Some D_interchange
      | Some (Token.Ident "stripe") -> Some D_stripe
      | Some (Token.Ident "fuse") -> Some D_fuse
      | Some (Token.Ident "fission") -> Some D_fission
      | Some (Token.Ident "barrier") -> Some D_barrier
      | Some (Token.Ident "single") -> Some D_single
      | Some (Token.Ident "master") -> Some D_master
      | Some (Token.Ident "critical") -> (
        (* optional parenthesised name *)
        match ppeek () with
        | Some (Token.Punct Token.LParen) -> (
          padvance ();
          match pnext () with
          | Some (Token.Ident region) ->
            ignore (expect_r ());
            Some (D_critical (Some region))
          | _ ->
            perr "expected a region name after 'critical ('";
            Some (D_critical None))
        | _ -> Some (D_critical None))
      | Some k ->
        perr "unknown OpenMP directive %s" (Token.describe k);
        None
      | None ->
        perr "expected directive name after '#pragma omp'";
        None
    in
    match kind with
    | None -> mk_stmt ~loc:p.Pp.pragma_loc (Error_stmt [])
    | Some kind ->
      let clauses = parse_clauses [] in
      let assoc =
        if kind = D_barrier then None else Some (parse_statement t)
      in
      Omp_sema.act_on_directive t.sema ~kind ~clauses ~assoc
        ~loc:p.Pp.pragma_loc)
  | Some (Token.Ident "clang") -> (
    (* #pragma clang loop unroll_count(n) / unroll(full|enable|disable) *)
    match pnext () with
    | Some (Token.Ident "loop") ->
      let hints = ref [] in
      let rec go () =
        match pnext () with
        | None -> ()
        | Some (Token.Ident "unroll_count") ->
          if expect_l () then begin
            let e = parse_pragma_expr () in
            ignore (expect_r ());
            let n, _ = positive "unroll_count" e in
            hints :=
              Loop_hint { lh_option = Hint_unroll_count; lh_value = Some n }
              :: !hints
          end;
          go ()
        | Some (Token.Ident "unroll") ->
          if expect_l () then begin
            (match pnext () with
            | Some (Token.Ident "full") ->
              hints :=
                Loop_hint { lh_option = Hint_unroll_full; lh_value = None }
                :: !hints
            | Some (Token.Ident "enable") ->
              hints :=
                Loop_hint { lh_option = Hint_unroll_enable; lh_value = None }
                :: !hints
            | Some (Token.Ident "disable") ->
              hints :=
                Loop_hint { lh_option = Hint_unroll_disable; lh_value = None }
                :: !hints
            | _ -> perr "expected full/enable/disable");
            ignore (expect_r ())
          end;
          go ()
        | Some k ->
          perr "unknown loop hint %s" (Token.describe k);
          go ()
      in
      go ();
      let sub = parse_statement t in
      mk_stmt ~loc:p.Pp.pragma_loc (Attributed (List.rev !hints, sub))
    | Some (Token.Ident "__debug") -> (
      (* Clang's deliberate-ICE pragmas ('#pragma clang __debug crash' /
         'overflow_stack'): the crash lives in the source, so a reproducer
         bundle written for it replays the failure by construction. *)
      match pnext () with
      | Some (Token.Ident "crash") ->
        Mc_support.Crash_recovery.internal_error
          "crash requested by '#pragma clang __debug crash'"
      | Some (Token.Ident "overflow_stack") ->
        let rec grow n = 1 + grow n in
        ignore (grow 0);
        mk_stmt ~loc:p.Pp.pragma_loc Null_stmt
      | k ->
        perr "unexpected debug command %s"
          (match k with Some k -> Token.describe k | None -> "<nothing>");
        mk_stmt ~loc:p.Pp.pragma_loc (Error_stmt []))
    | _ ->
      perr "unknown clang pragma";
      mk_stmt ~loc:p.Pp.pragma_loc (Error_stmt [ parse_statement t ]))
  | _ ->
    perr "unknown pragma namespace";
    mk_stmt ~loc:p.Pp.pragma_loc (Error_stmt [])

(* ---- statements ------------------------------------------------------------- *)

and parse_statement t : stmt =
  let loc0 = (peek t).Token.loc in
  if not (enter_depth t ~loc:loc0) then begin
    (* Too deep ("{{{{…"): diagnose, skip to a synchronisation point so
       the enclosing loops make progress, and recover. *)
    exit_depth t;
    synchronize t;
    mk_stmt ~loc:loc0 (Error_stmt [])
  end
  else
    Fun.protect
      ~finally:(fun () -> exit_depth t)
      (fun () -> parse_statement_guarded t)

and parse_statement_guarded t : stmt =
  match peek_pragma t with
  | Some p ->
    advance t;
    parse_omp_pragma t p
  | None -> (
    let tok = peek t in
    let loc = tok.Token.loc in
    match tok.Token.kind with
    | Token.Punct Token.LBrace ->
      advance t;
      Sema.push_scope t.sema;
      let stmts = ref [] in
      let rec go () =
        match (peek t, peek_pragma t) with
        | _, Some _ ->
          stmts := parse_statement t :: !stmts;
          go ()
        | tok, None when Token.is_punct tok Token.RBrace -> advance t
        | tok, None when Token.is_eof tok ->
          error t ~loc "unterminated compound statement"
        | _ ->
          stmts := parse_statement t :: !stmts;
          go ()
      in
      go ();
      Sema.pop_scope t.sema;
      Sema.act_on_compound t.sema (List.rev !stmts) ~loc
    | Token.Punct Token.Semi ->
      advance t;
      mk_stmt ~loc Null_stmt
    | Token.Keyword Token.Kw_if ->
      advance t;
      ignore (expect t Token.LParen "after 'if'");
      let cond = parse_expr t in
      ignore (expect t Token.RParen "after if condition");
      let then_s = parse_statement t in
      let else_s =
        if Token.is_keyword (peek t) Token.Kw_else then begin
          advance t;
          Some (parse_statement t)
        end
        else None
      in
      Sema.act_on_if t.sema cond then_s else_s ~loc
    | Token.Keyword Token.Kw_switch ->
      advance t;
      ignore (expect t Token.LParen "after 'switch'");
      let cond = parse_expr t in
      ignore (expect t Token.RParen "after switch condition");
      Sema.enter_switch t.sema;
      let body = parse_statement t in
      Sema.exit_switch t.sema;
      Sema.act_on_switch t.sema cond body ~loc
    | Token.Keyword Token.Kw_case ->
      advance t;
      let value = parse_conditional t in
      ignore (expect t Token.Colon "after case value");
      let sub = parse_statement t in
      Sema.act_on_case t.sema value sub ~loc
    | Token.Keyword Token.Kw_default ->
      advance t;
      ignore (expect t Token.Colon "after 'default'");
      let sub = parse_statement t in
      Sema.act_on_default t.sema sub ~loc
    | Token.Keyword Token.Kw_while ->
      advance t;
      ignore (expect t Token.LParen "after 'while'");
      let cond = parse_expr t in
      ignore (expect t Token.RParen "after while condition");
      Sema.enter_loop t.sema;
      let body = parse_statement t in
      Sema.exit_loop t.sema;
      Sema.act_on_while t.sema cond body ~loc
    | Token.Keyword Token.Kw_do ->
      advance t;
      Sema.enter_loop t.sema;
      let body = parse_statement t in
      Sema.exit_loop t.sema;
      if not (Token.is_keyword (peek t) Token.Kw_while) then
        error t ~loc "expected 'while' after do-statement body"
      else advance t;
      ignore (expect t Token.LParen "after 'while'");
      let cond = parse_expr t in
      ignore (expect t Token.RParen "after do-while condition");
      ignore (expect t Token.Semi "after do-while");
      Sema.act_on_do_while t.sema body cond ~loc
    | Token.Keyword Token.Kw_for -> parse_for t ~loc
    | Token.Keyword Token.Kw_break ->
      advance t;
      ignore (expect t Token.Semi "after 'break'");
      Sema.act_on_break t.sema ~loc
    | Token.Keyword Token.Kw_continue ->
      advance t;
      ignore (expect t Token.Semi "after 'continue'");
      Sema.act_on_continue t.sema ~loc
    | Token.Keyword Token.Kw_return ->
      advance t;
      let e =
        if Token.is_punct (peek t) Token.Semi then None else Some (parse_expr t)
      in
      ignore (expect t Token.Semi "after return statement");
      Sema.act_on_return t.sema e ~loc
    | _ when starts_type t -> parse_decl_stmt t
    | Token.Eof ->
      error t ~loc "unexpected end of file";
      mk_stmt ~loc (Error_stmt [])
    | _ ->
      let e = parse_expr t in
      ignore (expect t Token.Semi "after expression statement");
      Sema.act_on_expr_stmt t.sema e)

and parse_for t ~loc =
  advance t (* 'for' *);
  ignore (expect t Token.LParen "after 'for'");
  Sema.push_scope t.sema;
  (* Range-based for detection: TYPE ['&'] IDENT ':' *)
  let is_range_for =
    starts_type t
    &&
    (* conservative lookahead over raw items *)
    let rec scan items depth =
      match items with
      | Pp.Tok { Token.kind = Token.Punct Token.Semi; _ } :: _ -> false
      | Pp.Tok { Token.kind = Token.Punct Token.Colon; _ } :: _ -> depth = 0
      | Pp.Tok { Token.kind = Token.Punct Token.LParen; _ } :: rest ->
        scan rest (depth + 1)
      | Pp.Tok { Token.kind = Token.Punct Token.RParen; _ } :: rest ->
        depth > 0 && scan rest (depth - 1)
      | Pp.Tok { Token.kind = Token.Punct Token.Question; _ } :: _ -> false
      | _ :: rest -> scan rest depth
      | [] -> false
    in
    scan t.items 0
  in
  let result =
    if is_range_for then begin
      let base = parse_type_specifier t in
      let byref =
        if Token.is_punct (peek t) Token.Amp then begin
          advance t;
          true
        end
        else false
      in
      let base = parse_pointers t base in
      let name_tok = next t in
      let name =
        match name_tok.Token.kind with
        | Token.Ident n -> n
        | k ->
          error t ~loc "expected loop variable name (found %s)" (Token.describe k);
          "<error>"
      in
      ignore (expect t Token.Colon "in range-based for loop");
      let range = parse_expr t in
      ignore (expect t Token.RParen "after range expression");
      let var =
        Sema.act_on_var_decl t.sema ~name ~ty:base ~init:None ~loc:name_tok.Token.loc
      in
      Sema.enter_loop t.sema;
      let body = parse_statement t in
      Sema.exit_loop t.sema;
      Sema.act_on_range_for t.sema ~var ~byref ~range ~body ~loc
    end
    else begin
      let init =
        if Token.is_punct (peek t) Token.Semi then begin
          advance t;
          None
        end
        else if starts_type t then Some (parse_decl_stmt t)
        else begin
          let e = parse_expr t in
          ignore (expect t Token.Semi "after for-loop initializer");
          Some (Sema.act_on_expr_stmt t.sema e)
        end
      in
      let cond =
        if Token.is_punct (peek t) Token.Semi then None else Some (parse_expr t)
      in
      ignore (expect t Token.Semi "after for-loop condition");
      let inc =
        if Token.is_punct (peek t) Token.RParen then None else Some (parse_expr t)
      in
      ignore (expect t Token.RParen "after for-loop increment");
      Sema.enter_loop t.sema;
      let body = parse_statement t in
      Sema.exit_loop t.sema;
      Sema.act_on_for t.sema ~init ~cond ~inc ~body ~loc
    end
  in
  Sema.pop_scope t.sema;
  result

(* ---- top level ---------------------------------------------------------------- *)

let parse_params t =
  let params = ref [] in
  let variadic = ref false in
  if Token.is_punct (peek t) Token.RParen then ()
  else if
    Token.is_keyword (peek t) Token.Kw_void && Token.is_punct (peek2 t) Token.RParen
  then advance t
  else begin
    let rec go () =
      if Token.is_punct (peek t) Token.Ellipsis then begin
        advance t;
        variadic := true
      end
      else begin
        let base = parse_type_specifier t in
        let ty = ref (parse_pointers t base) in
        let name =
          match (peek t).Token.kind with
          | Token.Ident n ->
            advance t;
            n
          | _ -> Printf.sprintf "arg%d" (List.length !params)
        in
        (* Array parameters decay to pointers. *)
        while Token.is_punct (peek t) Token.LBracket do
          advance t;
          (if not (Token.is_punct (peek t) Token.RBracket) then
             ignore (parse_assignment t));
          ignore (expect t Token.RBracket "after parameter array bound");
          ty := Ptr !ty
        done;
        params := (name, !ty) :: !params;
        if Token.is_punct (peek t) Token.Comma then begin
          advance t;
          go ()
        end
      end
    in
    go ()
  end;
  ignore (expect t Token.RParen "after parameter list");
  (List.rev !params, !variadic)

let parse_external_decl t =
  Mc_support.Stats.incr stat_decls;
  let loc = loc_of t in
  if not (starts_type t) then begin
    error t ~loc "expected a declaration at file scope";
    synchronize t
  end
  else begin
    let base = parse_type_specifier t in
    let ty = parse_pointers t base in
    let name_tok = next t in
    match name_tok.Token.kind with
    | Token.Ident name when Token.is_punct (peek t) Token.LParen ->
      advance t;
      let params, variadic = parse_params t in
      let fn =
        Sema.declare_function t.sema ~name ~ret:ty ~params ~variadic
          ~loc:name_tok.Token.loc
      in
      if Token.is_punct (peek t) Token.Semi then advance t
      else begin
        Sema.start_function_definition t.sema fn;
        let body = parse_statement t in
        Sema.finish_function_definition t.sema fn body
      end
    | Token.Ident name ->
      (* Global variable(s). *)
      let rec declare name name_loc =
        let vty = ref ty in
        while Token.is_punct (peek t) Token.LBracket do
          advance t;
          let bound =
            if Token.is_punct (peek t) Token.RBracket then None
            else begin
              let e = parse_assignment t in
              match Mc_sema.Const_eval.eval_int_as e with
              | Some n when n > 0 -> Some n
              | _ ->
                error t ~loc "array bound must be a positive integer constant";
                Some 1
            end
          in
          ignore (expect t Token.RBracket "after array bound");
          vty := Array (!vty, bound)
        done;
        let init =
          if Token.is_punct (peek t) Token.Equal then begin
            advance t;
            Some (parse_assignment t)
          end
          else None
        in
        ignore
          (Sema.act_on_var_decl t.sema ~name ~ty:!vty ~init ~loc:name_loc);
        if Token.is_punct (peek t) Token.Comma then begin
          advance t;
          let tok = next t in
          match tok.Token.kind with
          | Token.Ident n -> declare n tok.Token.loc
          | k -> error t ~loc "expected declarator (found %s)" (Token.describe k)
        end
      in
      declare name name_tok.Token.loc;
      ignore (expect t Token.Semi "after global declaration")
    | k ->
      error t ~loc "expected declarator name (found %s)" (Token.describe k);
      synchronize t
  end

let default_bracket_depth = 256 (* Clang's -fbracket-depth default *)

let parse_translation_unit ?(bracket_depth = default_bracket_depth) sema items =
  let bracket_depth = max 1 bracket_depth in
  let t =
    { sema; diag = Sema.diagnostics sema; items; bracket_depth; depth = 0 }
  in
  let rec go () =
    match t.items with
    | [] -> ()
    | Pp.Prag p :: rest ->
      error t ~loc:p.Pp.pragma_loc "unexpected pragma at file scope";
      t.items <- rest;
      go ()
    | Pp.Tok tok :: _ when Token.is_eof tok -> ()
    | _ ->
      let before = t.items in
      parse_external_decl t;
      (* Hard progress guarantee: error recovery may decline to consume a
         token it expects an enclosing construct to claim (synchronize
         stops in front of '}'), but at file scope there is no enclosing
         construct — without this, a stray '}' loops forever. *)
      if t.items == before then advance t;
      go ()
  in
  go ();
  Sema.translation_unit sema
