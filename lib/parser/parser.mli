(** The parser layer (Fig. 1).  As in Clang, the parser steers the front
    end: it pulls preprocessed tokens and pushes every recognised construct
    to Sema ([Mc_sema.Sema] / [Mc_sema.Omp_sema]) to create the AST nodes,
    so all type checking and OpenMP analysis happens during the parse.

    [#pragma omp]/[#pragma clang loop] items produced by the preprocessor
    are parsed in statement position: the directive's clauses come from the
    pragma's token stream, its associated statement from the main stream
    (which may itself start with another pragma — that is what makes
    transformation directives composable, §1.1). *)

val default_bracket_depth : int
(** 256, Clang's [-fbracket-depth] default. *)

val parse_translation_unit :
  ?bracket_depth:int ->
  Mc_sema.Sema.t ->
  Mc_pp.Preprocessor.item list ->
  Mc_ast.Tree.translation_unit
(** [?bracket_depth] bounds expression/statement nesting (the
    [-fbracket-depth] recursion guard): exceeding it is diagnosed and
    recovered from instead of overflowing the stack. *)
