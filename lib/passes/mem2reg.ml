open Mc_ir.Ir

(* An alloca is promotable when every use is a direct load of the whole
   scalar or a store *to* it (never of it), and it is a single element. *)
let promotable_allocas f =
  let candidates = Hashtbl.create 16 in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          match i.i_kind with
          | Alloca { elt_ty; count = 1 } when elt_ty <> Void ->
            Hashtbl.replace candidates i.i_id (i, elt_ty)
          | _ -> ())
        (block_insts b))
    f.f_blocks;
  let disqualify v =
    match v with
    | Inst_ref i -> Hashtbl.remove candidates i.i_id
    | _ -> ()
  in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          match i.i_kind with
          | Load { ptr = Inst_ref a } when Hashtbl.mem candidates a.i_id ->
            (* A load of the right type keeps the candidate... *)
            let _, elt_ty = Hashtbl.find candidates a.i_id in
            if i.i_ty <> elt_ty then Hashtbl.remove candidates a.i_id
          | Store { ptr = Inst_ref a; v } when Hashtbl.mem candidates a.i_id ->
            let _, elt_ty = Hashtbl.find candidates a.i_id in
            if value_ty v <> elt_ty then Hashtbl.remove candidates a.i_id;
            (* storing the alloca's own address disqualifies *)
            disqualify v
          | _ -> List.iter disqualify (inst_operands i))
        (block_insts b);
      List.iter disqualify (terminator_operands b.b_term))
    f.f_blocks;
  (* Return survivors in program order.  Hashtbl.fold order depends on
     the numeric i_id values, which differ between a whole-unit compile
     and a relinked per-function one; phi placement below would then
     emit phis in a different order for byte-identical source. *)
  List.concat_map
    (fun b ->
      List.filter_map
        (fun i -> Hashtbl.find_opt candidates i.i_id)
        (block_insts b))
    f.f_blocks

let run_func f =
  if f.f_is_decl || f.f_blocks = [] then 0
  else begin
    let allocas = promotable_allocas f in
    if allocas = [] then 0
    else begin
      let dom = Dominators.compute f in
      let alloca_ids = Hashtbl.create 8 in
      List.iter (fun (a, ty) -> Hashtbl.replace alloca_ids a.i_id ty) allocas;
      (* 1. Phi placement at the iterated dominance frontier of stores. *)
      let phi_owner = Hashtbl.create 16 in
      (* phi inst id -> alloca id *)
      List.iter
        (fun (a, elt_ty) ->
          let def_blocks =
            List.filter
              (fun b ->
                List.exists
                  (fun i ->
                    match i.i_kind with
                    | Store { ptr = Inst_ref p; _ } -> p.i_id = a.i_id
                    | _ -> false)
                  (block_insts b))
              f.f_blocks
          in
          let placed = Hashtbl.create 8 in
          let worklist = Queue.create () in
          List.iter (fun b -> Queue.add b worklist) def_blocks;
          while not (Queue.is_empty worklist) do
            let b = Queue.pop worklist in
            List.iter
              (fun frontier_block ->
                if not (Hashtbl.mem placed frontier_block.b_id) then begin
                  Hashtbl.add placed frontier_block.b_id ();
                  let phi =
                    mk_inst ~name:(a.i_name ^ ".phi") ~ty:elt_ty
                      (Phi { incoming = [] })
                  in
                  phi.i_parent <- Some frontier_block;
                  (* prepend: phis lead the block *)
                  set_block_insts frontier_block
                    (phi :: block_insts frontier_block);
                  Hashtbl.replace phi_owner phi.i_id a.i_id;
                  Queue.add frontier_block worklist
                end)
              (Dominators.dominance_frontier dom b)
          done)
        allocas;
      (* 2. Renaming along the dominator tree. *)
      let stacks = Hashtbl.create 8 in
      (* alloca id -> value list ref *)
      List.iter (fun (a, _) -> Hashtbl.replace stacks a.i_id (ref [])) allocas;
      let top a_id ty =
        match !(Hashtbl.find stacks a_id) with
        | v :: _ -> v
        | [] -> Undef ty
      in
      let replacement = Hashtbl.create 32 in
      (* dead load id -> value *)
      let dead = Hashtbl.create 32 in
      let rec rename block =
        let pushed = ref [] in
        let push a_id v =
          let st = Hashtbl.find stacks a_id in
          st := v :: !st;
          pushed := a_id :: !pushed
        in
        List.iter
          (fun i ->
            match i.i_kind with
            | Phi _ when Hashtbl.mem phi_owner i.i_id ->
              push (Hashtbl.find phi_owner i.i_id) (Inst_ref i)
            | Load { ptr = Inst_ref a } when Hashtbl.mem alloca_ids a.i_id ->
              Hashtbl.replace replacement i.i_id
                (top a.i_id (Hashtbl.find alloca_ids a.i_id));
              Hashtbl.replace dead i.i_id ()
            | Store { ptr = Inst_ref a; v } when Hashtbl.mem alloca_ids a.i_id ->
              push a.i_id v;
              Hashtbl.replace dead i.i_id ()
            | Alloca _ when Hashtbl.mem alloca_ids i.i_id ->
              Hashtbl.replace dead i.i_id ()
            | _ -> ())
          (block_insts block);
        (* Seed successor phis with the current reaching value. *)
        List.iter
          (fun succ ->
            List.iter
              (fun phi ->
                match Hashtbl.find_opt phi_owner phi.i_id with
                | Some a_id -> (
                  match phi.i_kind with
                  | Phi p ->
                    phi.i_kind <-
                      Phi
                        {
                          incoming =
                            p.incoming
                            @ [ (top a_id (Hashtbl.find alloca_ids a_id), block) ];
                        }
                  | _ -> ())
                | None -> ())
              (block_phis succ))
          (successors block);
        List.iter rename (Dominators.children dom block);
        List.iter
          (fun a_id ->
            let st = Hashtbl.find stacks a_id in
            st := List.tl !st)
          !pushed
      in
      rename (entry_block f);
      (* 3. Apply replacements (chasing chains) and drop dead memory ops. *)
      let rec resolve v =
        match v with
        | Inst_ref i when Hashtbl.mem replacement i.i_id ->
          resolve (Hashtbl.find replacement i.i_id)
        | _ -> v
      in
      List.iter
        (fun b ->
          List.iter (map_inst_operands resolve) (block_insts b);
          map_terminator_operands resolve b;
          set_block_insts b
            (List.filter (fun i -> not (Hashtbl.mem dead i.i_id)) (block_insts b)))
        f.f_blocks;
      List.length allocas
    end
  end

let run m =
  List.fold_left
    (fun acc f -> acc + run_func f)
    0
    (List.filter (fun f -> not f.f_is_decl) m.m_funcs)
