module Stats = Mc_support.Stats
module Clock = Mc_support.Clock

type pass_timing = {
  pt_name : string;
  pt_changed : bool;
  pt_wall : float;
  pt_insts_before : int;
  pt_insts_after : int;
}

type report = {
  pass_results : (string * bool) list;
  unroll_stats : Loop_unroll.stats;
  pass_timings : pass_timing list;
}

let stat_runs =
  Stats.counter ~group:"passes" ~name:"pass-runs"
    ~desc:"individual pass executions" ()
let stat_changed =
  Stats.counter ~group:"passes" ~name:"passes-changed-ir"
    ~desc:"pass executions that modified the IR" ()
let stat_full =
  Stats.counter ~group:"passes" ~name:"loops-fully-unrolled"
    ~desc:"loops fully unrolled by LoopUnroll" ()
let stat_partial =
  Stats.counter ~group:"passes" ~name:"loops-partially-unrolled"
    ~desc:"loops partially unrolled by LoopUnroll" ()
let stat_skipped =
  Stats.counter ~group:"passes" ~name:"loops-unroll-skipped"
    ~desc:"unroll candidates skipped by LoopUnroll" ()

let o0 = [ "simplifycfg"; "dce" ]

let o1 =
  [
    "simplifycfg";
    "mem2reg";
    "constprop";
    "dce";
    "loop-unroll";
    "constprop";
    "simplifycfg";
    "dce";
  ]

let available =
  [ "simplifycfg"; "mem2reg"; "constprop"; "dce"; "loop-unroll" ]

let run ?(verify_between = false) ~passes m =
  let unroll_stats = ref Loop_unroll.empty_stats in
  let timings =
    List.map
      (fun name ->
        let insts_before = Mc_ir.Ir.module_inst_count m in
        let start = Clock.now () in
        let changed =
          match name with
          | "simplifycfg" -> Simplify_cfg.run m
          | "mem2reg" -> Mem2reg.run m > 0
          | "constprop" -> Const_prop.run m
          | "dce" -> Dce.run m
          | "loop-unroll" ->
            let s = Loop_unroll.run m in
            Stats.add stat_full s.Loop_unroll.fully_unrolled;
            Stats.add stat_partial s.Loop_unroll.partially_unrolled;
            Stats.add stat_skipped s.Loop_unroll.skipped;
            unroll_stats :=
              {
                Loop_unroll.fully_unrolled =
                  !unroll_stats.Loop_unroll.fully_unrolled + s.Loop_unroll.fully_unrolled;
                partially_unrolled =
                  !unroll_stats.Loop_unroll.partially_unrolled
                  + s.Loop_unroll.partially_unrolled;
                skipped = !unroll_stats.Loop_unroll.skipped + s.Loop_unroll.skipped;
              };
            s.Loop_unroll.fully_unrolled > 0 || s.Loop_unroll.partially_unrolled > 0
          | other -> invalid_arg (Printf.sprintf "unknown pass '%s'" other)
        in
        let wall = Clock.now () -. start in
        Stats.record (Stats.timer ~group:"passes" ~name) wall;
        Stats.incr stat_runs;
        if changed then Stats.incr stat_changed;
        if verify_between then begin
          match Mc_ir.Verifier.check m with
          | Ok () -> ()
          | Error e ->
            invalid_arg
              (Printf.sprintf "IR verification failed after pass '%s':\n%s" name e)
        end;
        {
          pt_name = name;
          pt_changed = changed;
          pt_wall = wall;
          pt_insts_before = insts_before;
          pt_insts_after = Mc_ir.Ir.module_inst_count m;
        })
      passes
  in
  {
    pass_results = List.map (fun pt -> (pt.pt_name, pt.pt_changed)) timings;
    unroll_stats = !unroll_stats;
    pass_timings = timings;
  }
