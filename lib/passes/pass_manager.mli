(** Sequencing of mid-end passes, with optional IR verification between
    passes (the debugging aid every real pass pipeline has). *)

type pass_timing = {
  pt_name : string;
  pt_changed : bool;
  pt_wall : float; (* monotonic wall-clock seconds *)
  pt_insts_before : int; (* module instruction count going in *)
  pt_insts_after : int; (* … and coming out (delta = after - before) *)
}

type report = {
  pass_results : (string * bool) list; (* pass name, changed? *)
  unroll_stats : Loop_unroll.stats;
  pass_timings : pass_timing list; (* per-pass wall time + size delta *)
}

val o0 : string list
(** Cleanup only: ["simplifycfg"; "dce"]. *)

val o1 : string list
(** The default pipeline the driver runs:
    simplifycfg → mem2reg → constprop → dce → loop-unroll → constprop →
    simplifycfg → dce. *)

val available : string list

val run :
  ?verify_between:bool -> passes:string list -> Mc_ir.Ir.modul -> report
(** Raises [Invalid_argument] on an unknown pass name or, when
    [verify_between] is set, on a verifier failure (including the failing
    pass's name). *)
