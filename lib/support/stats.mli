(** Pipeline statistics: named counters and wall-clock timers in a global
    registry, the analogue of Clang's [llvm::Statistic] /
    [llvm::TimerGroup] machinery behind [-print-stats] and
    [-ftime-report].

    Every layer of the pipeline registers its counters at module
    initialisation ([counter] / [timer] are idempotent on the same
    [group]/[name] pair) and bumps them as it works; the driver resets
    the registry at the start of each compilation, snapshots it into
    [Driver.result.stats], and the CLI renders the registry with
    [render_stats] / [render_time_report].

    The registry is deliberately global — exactly like Clang's — so a
    leaf module can count events without threading a context through
    every call.  The cost is that concurrent or nested compilations share
    (and reset) the same registry; the test-suite and the tools here are
    sequential, which is the same trade Clang makes. *)

type counter
type timer

val counter : group:string -> name:string -> ?desc:string -> unit -> counter
(** Registers (or retrieves) the counter [group.name].  Counters start
    at zero and survive [reset] (their values are zeroed, the
    registration stays). *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val timer : group:string -> name:string -> timer
(** Registers (or retrieves) the timer [group.name]. *)

val record : timer -> float -> unit
(** Accrues an externally measured interval (seconds) to the timer and
    bumps its interval count. *)

val time : timer -> (unit -> 'a) -> 'a
(** Runs the thunk, accruing its monotonic wall-clock duration; the
    interval is recorded even if the thunk raises. *)

val reset : unit -> unit
(** Zeroes every registered counter and timer (registrations persist). *)

type snapshot = (string * int) list
(** Counter values keyed ["group.name"], sorted by key. *)

val snapshot : unit -> snapshot
(** All registered counters, including zero-valued ones. *)

val find : snapshot -> string -> int
(** [find snap "group.name"] is the counter's value, or [0] when the
    counter is not in the snapshot. *)

val timings : unit -> (string * float * int) list
(** [("group.name", total_seconds, intervals)] for every registered
    timer, sorted by key. *)

val render_stats : unit -> string
(** The [-print-stats] table: one right-aligned value per line with its
    group, name and description, Clang [Statistic] style.  Zero-valued
    counters are omitted, like Clang's. *)

val render_time_report : unit -> string
(** The [-ftime-report] table: per-group sections of wall-time lines
    with percentage-of-group and interval counts, plus group totals. *)
