(** Pipeline statistics: named counters and wall-clock timers, the
    analogue of Clang's [llvm::Statistic] / [llvm::TimerGroup] machinery
    behind [-print-stats] and [-ftime-report].

    Counter and timer {e descriptors} ([group], [name], description) are
    registered once, process-wide ([counter] / [timer] are idempotent on
    the same [group]/[name] pair and safe to call from any domain).  The
    {e values} live in a {!Registry.t}: every domain has a current
    registry — initially the shared {!Registry.default} — and every
    [incr] / [add] / [record] accrues into it.  A leaf module therefore
    keeps its zero-threading ergonomics (register a counter at module
    initialisation, bump it as it works) while an embedding that needs
    isolation wraps its pipeline in {!with_registry}:

    {[
      let registry = Stats.Registry.create () in
      let result = Stats.with_registry registry (fun () -> compile ()) in
      prerr_string (Stats.render_stats ~registry ())
    ]}

    This is what makes the driver reentrant: concurrent compilations in
    separate domains each run under their own registry (see
    [Mc_core.Instance] / [Mc_core.Batch]) and merge afterwards with
    {!Registry.merge}.  The shared default registry remains for
    single-compilation tools and the test-suite; mutating it from two
    domains at once without [with_registry] can lose updates, so
    concurrent pipelines must scope their registries. *)

module Registry : sig
  type t
  (** A set of values for every registered counter and timer.  A registry
      must only be mutated by one domain at a time; hand each concurrent
      pipeline its own and {!merge} afterwards. *)

  val create : unit -> t
  (** A fresh registry with every counter and timer at zero. *)

  val default : t
  (** The process-wide registry that every domain starts scoped to — the
      pre-reentrancy global registry, kept as the default so existing
      sequential tools keep working unchanged. *)

  val merge : into:t -> t -> unit
  (** [merge ~into src] adds every counter value and timer total/interval
      count of [src] into [into]; [src] is left untouched. *)
end

val with_registry : Registry.t -> (unit -> 'a) -> 'a
(** Runs the thunk with the calling domain's current registry set to the
    given one (restored afterwards, even on exceptions).  Nesting is
    allowed; the innermost scope wins. *)

val current_registry : unit -> Registry.t
(** The calling domain's current registry. *)

val with_scoped_registry : (unit -> 'a) -> 'a * Registry.t
(** Runs the thunk under a fresh registry and returns that registry
    alongside the result.  Afterwards — even when the thunk raises — the
    fresh registry is {e merged} into the previously-current one, never
    replacing or resetting it, so an embedder's own counters survive
    untouched while still seeing the scoped work accrue.  This is how
    each {!Mc_core.Pipeline} execution isolates its per-compile snapshot
    without clobbering the caller's registry. *)

type counter
type timer

val counter : group:string -> name:string -> ?desc:string -> unit -> counter
(** Registers (or retrieves) the counter descriptor [group.name].
    Values start at zero in every registry and survive [reset] (the
    value is zeroed, the registration stays). *)

val incr : counter -> unit
(** Adds one to the counter in the current registry. *)

val add : counter -> int -> unit
val value : counter -> int
(** The counter's value in the current registry. *)

val timer : group:string -> name:string -> timer
(** Registers (or retrieves) the timer descriptor [group.name]. *)

val record : timer -> float -> unit
(** Accrues an externally measured interval (seconds) to the timer in
    the current registry and bumps its interval count. *)

val time : timer -> (unit -> 'a) -> 'a
(** Runs the thunk, accruing its monotonic wall-clock duration; the
    interval is recorded even if the thunk raises. *)

val reset : ?registry:Registry.t -> unit -> unit
(** Zeroes every counter and timer value in the registry (default: the
    current one).  Registrations persist. *)

type snapshot = (string * int) list
(** Counter values keyed ["group.name"], sorted by key. *)

val snapshot : ?registry:Registry.t -> unit -> snapshot
(** All registered counters, including zero-valued ones. *)

val find : snapshot -> string -> int
(** [find snap "group.name"] is the counter's value, or [0] when the
    counter is not in the snapshot. *)

val merge_snapshots : snapshot -> snapshot -> snapshot
(** Key-wise sum of two snapshots (used to aggregate per-unit batch
    statistics deterministically). *)

val timings : ?registry:Registry.t -> unit -> (string * float * int) list
(** [("group.name", total_seconds, intervals)] for every registered
    timer, sorted by key. *)

val render_stats : ?registry:Registry.t -> unit -> string
(** The [-print-stats] table: one right-aligned value per line with its
    group, name and description, Clang [Statistic] style.  Zero-valued
    counters are omitted, like Clang's. *)

val render_time_report : ?registry:Registry.t -> unit -> string
(** The [-ftime-report] table: per-group sections of wall-time lines
    with percentage-of-group and interval counts, plus group totals. *)
