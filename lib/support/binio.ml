(* Binary framing and atomic-file helpers shared by the on-disk artifact
   store and the compile-server wire protocol.

   A frame is [magic (4 bytes)][version (4-byte big-endian)][length
   (4-byte big-endian)][payload].  Readers validate magic and version
   before trusting the length, and refuse lengths above a hard cap so a
   corrupt or hostile peer cannot make us allocate unbounded memory.
   Every failure mode is an [Error] — framing is used on paths
   (cache loads, daemon requests) where corruption must degrade to a
   miss or a rejected request, never to an exception escaping into the
   pipeline. *)

(* 64 MiB: far above any marshalled stage artifact or batch request we
   produce, far below anything that could wedge the process. *)
let max_frame_bytes = 64 * 1024 * 1024

let put_u32 buf n =
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (n land 0xff))

let get_u32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let frame ~magic ~version payload =
  if String.length magic <> 4 then invalid_arg "Binio.frame: magic must be 4 bytes";
  let buf = Buffer.create (String.length payload + 12) in
  Buffer.add_string buf magic;
  put_u32 buf version;
  put_u32 buf (String.length payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

type frame_error =
  | Truncated
  | Bad_magic
  | Version_mismatch of int  (** the version the frame carries *)
  | Oversized of int
  | Timed_out

let frame_error_to_string = function
  | Truncated -> "truncated frame"
  | Bad_magic -> "bad magic"
  | Version_mismatch v -> Printf.sprintf "version mismatch (got %d)" v
  | Oversized n -> Printf.sprintf "oversized frame (%d bytes)" n
  | Timed_out -> "read timed out"

(* Reads exactly [n] bytes or reports truncation; [really_input] raises
   on EOF, which is one of the corruptions we must absorb. *)
let read_exact ic n =
  let b = Bytes.create n in
  match really_input ic b 0 n with
  | () -> Ok (Bytes.unsafe_to_string b)
  | exception End_of_file -> Error Truncated
  | exception Sys_error _ -> Error Truncated
  (* A blocking read on a socket with SO_RCVTIMEO set reports its
     expiry as EAGAIN, which channel IO surfaces as [Sys_blocked_io]. *)
  | exception Sys_blocked_io -> Error Timed_out

let read_frame ~magic ~version ic =
  match read_exact ic 12 with
  | Error e -> Error e
  | Ok header ->
    if String.sub header 0 4 <> magic then Error Bad_magic
    else
      let v = get_u32 header 4 in
      if v <> version then Error (Version_mismatch v)
      else
        let len = get_u32 header 8 in
        if len < 0 || len > max_frame_bytes then Error (Oversized len)
        else read_exact ic len

let parse_frame ~magic ~version s =
  if String.length s < 12 then Error Truncated
  else if String.sub s 0 4 <> magic then Error Bad_magic
  else
    let v = get_u32 s 4 in
    if v <> version then Error (Version_mismatch v)
    else
      let len = get_u32 s 8 in
      if len < 0 || len > max_frame_bytes then Error (Oversized len)
      else if String.length s <> 12 + len then Error Truncated
      else Ok (String.sub s 12 len)

let write_frame ~magic ~version oc payload =
  output_string oc (frame ~magic ~version payload);
  flush oc

(* ---- atomic file writes -------------------------------------------------- *)

(* Write-to-tmp + rename, so concurrent readers (other domains, other
   processes sharing a cache directory) only ever observe complete
   files.  The tmp name carries pid + a per-process sequence number so
   two writers racing on one entry cannot collide on the tmp path;
   rename's last-writer-wins is fine for a content-addressed store. *)
let tmp_seq = Atomic.make 0

let write_file_atomic ~path contents =
  let dir = Filename.dirname path in
  let tmp =
    Filename.concat dir
      (Printf.sprintf ".tmp.%d.%d.%s"
         (Unix.getpid ())
         (Atomic.fetch_and_add tmp_seq 1)
         (Filename.basename path))
  in
  match
    Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc contents);
    Unix.rename tmp path
  with
  | () -> Ok ()
  | exception (Sys_error _ | Unix.Unix_error _) ->
    (try Sys.remove tmp with Sys_error _ -> ());
    Error (Printf.sprintf "cannot write %s" path)

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> Some contents
  | exception Sys_error _ -> None

let rec mkdir_p dir =
  if dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error ((Unix.EEXIST | Unix.EISDIR), _, _) -> ()
  end
