(* Counters and timers (Clang Statistic / TimerGroup analogue), split into
   process-wide descriptors and per-registry values.

   Descriptors (group/name/desc, registration order) are global and guarded
   by a mutex so any domain may register.  Values are dense arrays indexed
   by descriptor id inside a [Registry.t]; each domain resolves the
   registry to charge through domain-local storage, so a pipeline wrapped
   in [with_registry] is fully isolated from every other domain. *)

type counter = { c_id : int; c_group : string; c_name : string; c_desc : string }
type timer = { t_id : int; t_group : string; t_name : string }

(* Registration order, oldest first. *)
let desc_lock = Mutex.create ()
let counters : counter list ref = ref []
let timers : timer list ref = ref []

module Registry = struct
  type t = {
    mutable c_values : int array; (* indexed by c_id *)
    mutable t_totals : float array; (* indexed by t_id; accumulated seconds *)
    mutable t_counts : int array; (* recorded intervals *)
  }

  let create () = { c_values = [||]; t_totals = [||]; t_counts = [||] }
  let default = create ()

  let grow_int a n = Array.append a (Array.make (n - Array.length a) 0)
  let grow_float a n = Array.append a (Array.make (n - Array.length a) 0.0)

  (* Lazily size the value arrays to cover descriptor [id].  Growth is
     only triggered from the domain currently charging this registry. *)
  let ensure_counter r id =
    if id >= Array.length r.c_values then
      r.c_values <- grow_int r.c_values (max (id + 1) (2 * Array.length r.c_values))

  let ensure_timer r id =
    if id >= Array.length r.t_totals then begin
      let n = max (id + 1) (2 * Array.length r.t_totals) in
      r.t_totals <- grow_float r.t_totals n;
      r.t_counts <- grow_int r.t_counts n
    end

  let counter_value r id =
    if id < Array.length r.c_values then r.c_values.(id) else 0

  let timer_value r id =
    if id < Array.length r.t_totals then (r.t_totals.(id), r.t_counts.(id))
    else (0.0, 0)

  let merge ~into src =
    Array.iteri
      (fun id v ->
        if v <> 0 then begin
          ensure_counter into id;
          into.c_values.(id) <- into.c_values.(id) + v
        end)
      src.c_values;
    Array.iteri
      (fun id total ->
        if total <> 0.0 || src.t_counts.(id) <> 0 then begin
          ensure_timer into id;
          into.t_totals.(id) <- into.t_totals.(id) +. total;
          into.t_counts.(id) <- into.t_counts.(id) + src.t_counts.(id)
        end)
      src.t_totals
end

let current_key : Registry.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Registry.default)

let current_registry () = Domain.DLS.get current_key

let with_registry r f =
  let prev = Domain.DLS.get current_key in
  Domain.DLS.set current_key r;
  Fun.protect ~finally:(fun () -> Domain.DLS.set current_key prev) f

(* The embedder-safe scope: a fresh registry that only ever *adds* to the
   enclosing one.  The merge runs in the [finally] so a pipeline that dies
   with an ICE still surrenders whatever counters it accrued. *)
let with_scoped_registry f =
  let outer = current_registry () in
  let scoped = Registry.create () in
  let v =
    Fun.protect
      ~finally:(fun () -> Registry.merge ~into:outer scoped)
      (fun () -> with_registry scoped f)
  in
  (v, scoped)

(* ---- registration ------------------------------------------------------- *)

let counter ~group ~name ?(desc = "") () =
  Mutex.protect desc_lock (fun () ->
      match
        List.find_opt (fun c -> c.c_group = group && c.c_name = name) !counters
      with
      | Some c -> c
      | None ->
        let c =
          { c_id = List.length !counters; c_group = group; c_name = name;
            c_desc = desc }
        in
        counters := !counters @ [ c ];
        c)

let timer ~group ~name =
  Mutex.protect desc_lock (fun () ->
      match
        List.find_opt (fun t -> t.t_group = group && t.t_name = name) !timers
      with
      | Some t -> t
      | None ->
        let t = { t_id = List.length !timers; t_group = group; t_name = name } in
        timers := !timers @ [ t ];
        t)

(* Snapshot of the descriptor tables, for iteration outside the lock. *)
let all_counters () = Mutex.protect desc_lock (fun () -> !counters)
let all_timers () = Mutex.protect desc_lock (fun () -> !timers)

(* ---- accrual ------------------------------------------------------------ *)

let add c n =
  let r = current_registry () in
  Registry.ensure_counter r c.c_id;
  r.Registry.c_values.(c.c_id) <- r.Registry.c_values.(c.c_id) + n

let incr c = add c 1
let value c = Registry.counter_value (current_registry ()) c.c_id

let record t dt =
  let r = current_registry () in
  Registry.ensure_timer r t.t_id;
  r.Registry.t_totals.(t.t_id) <- r.Registry.t_totals.(t.t_id) +. dt;
  r.Registry.t_counts.(t.t_id) <- r.Registry.t_counts.(t.t_id) + 1

let time t f =
  let start = Clock.now () in
  Fun.protect ~finally:(fun () -> record t (Clock.now () -. start)) f

let reset ?registry () =
  let r = Option.value registry ~default:(current_registry ()) in
  Array.fill r.Registry.c_values 0 (Array.length r.Registry.c_values) 0;
  Array.fill r.Registry.t_totals 0 (Array.length r.Registry.t_totals) 0.0;
  Array.fill r.Registry.t_counts 0 (Array.length r.Registry.t_counts) 0

(* ---- observation -------------------------------------------------------- *)

type snapshot = (string * int) list

let key group name = group ^ "." ^ name

let snapshot ?registry () =
  let r = Option.value registry ~default:(current_registry ()) in
  List.sort compare
    (List.map
       (fun c -> (key c.c_group c.c_name, Registry.counter_value r c.c_id))
       (all_counters ()))

let find snap name = Option.value (List.assoc_opt name snap) ~default:0

let merge_snapshots a b =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (k, v) ->
      Hashtbl.replace tbl k (v + Option.value (Hashtbl.find_opt tbl k) ~default:0))
    (a @ b);
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let timings ?registry () =
  let r = Option.value registry ~default:(current_registry ()) in
  List.sort compare
    (List.map
       (fun t ->
         let total, count = Registry.timer_value r t.t_id in
         (key t.t_group t.t_name, total, count))
       (all_timers ()))

(* ---- rendering ---------------------------------------------------------- *)

let rule = String.make 78 '-'

let banner buf title =
  Buffer.add_string buf ("===" ^ rule ^ "===\n");
  let pad = max 0 ((84 - String.length title) / 2) in
  Buffer.add_string buf (String.make pad ' ');
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf ("===" ^ rule ^ "===\n\n")

let render_stats ?registry () =
  let r = Option.value registry ~default:(current_registry ()) in
  let buf = Buffer.create 1024 in
  banner buf "... Statistics Collected ...";
  let live =
    List.filter (fun c -> Registry.counter_value r c.c_id <> 0) (all_counters ())
  in
  if live = [] then Buffer.add_string buf "  (no statistics collected)\n"
  else begin
    let name_w =
      List.fold_left
        (fun w c -> max w (String.length (key c.c_group c.c_name)))
        0 live
    in
    List.iter
      (fun c ->
        Buffer.add_string buf
          (Printf.sprintf "%10d  %-*s - %s\n"
             (Registry.counter_value r c.c_id)
             name_w
             (key c.c_group c.c_name)
             (if c.c_desc = "" then c.c_name else c.c_desc)))
      live
  end;
  Buffer.contents buf

let render_time_report ?registry () =
  let r = Option.value registry ~default:(current_registry ()) in
  let buf = Buffer.create 1024 in
  banner buf "mcc compilation time report (monotonic wall clock)";
  let timers = all_timers () in
  let groups =
    List.fold_left
      (fun acc t -> if List.mem t.t_group acc then acc else acc @ [ t.t_group ])
      [] timers
  in
  if groups = [] then Buffer.add_string buf "  (no timers registered)\n";
  List.iter
    (fun g ->
      let members = List.filter (fun t -> t.t_group = g) timers in
      let total =
        List.fold_left
          (fun s t -> s +. fst (Registry.timer_value r t.t_id))
          0.0 members
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s: %.6f seconds of wall time\n" g total);
      Buffer.add_string buf "   ---Wall Time---   --Count--  --Name--\n";
      List.iter
        (fun t ->
          let t_total, t_count = Registry.timer_value r t.t_id in
          let pct = if total > 0.0 then 100.0 *. t_total /. total else 0.0 in
          Buffer.add_string buf
            (Printf.sprintf "   %9.6f (%5.1f%%)  %9d  %s\n" t_total pct t_count
               t.t_name))
        members;
      Buffer.add_string buf
        (Printf.sprintf "   %9.6f (100.0%%)             Total\n\n" total))
    groups;
  Buffer.contents buf
