(* Global registry of counters and timers (Clang Statistic / TimerGroup
   analogue).  Registration order is preserved for rendering; lookups are
   linear, which is fine for the few dozen statistics the pipeline has. *)

type counter = {
  c_group : string;
  c_name : string;
  c_desc : string;
  mutable c_value : int;
}

type timer = {
  t_group : string;
  t_name : string;
  mutable t_total : float; (* accumulated seconds *)
  mutable t_count : int; (* recorded intervals *)
}

(* Registration order, oldest first. *)
let counters : counter list ref = ref []
let timers : timer list ref = ref []

let counter ~group ~name ?(desc = "") () =
  match
    List.find_opt (fun c -> c.c_group = group && c.c_name = name) !counters
  with
  | Some c -> c
  | None ->
    let c = { c_group = group; c_name = name; c_desc = desc; c_value = 0 } in
    counters := !counters @ [ c ];
    c

let incr c = c.c_value <- c.c_value + 1
let add c n = c.c_value <- c.c_value + n
let value c = c.c_value

let timer ~group ~name =
  match
    List.find_opt (fun t -> t.t_group = group && t.t_name = name) !timers
  with
  | Some t -> t
  | None ->
    let t = { t_group = group; t_name = name; t_total = 0.0; t_count = 0 } in
    timers := !timers @ [ t ];
    t

let record t dt =
  t.t_total <- t.t_total +. dt;
  t.t_count <- t.t_count + 1

let time t f =
  let start = Clock.now () in
  Fun.protect ~finally:(fun () -> record t (Clock.now () -. start)) f

let reset () =
  List.iter (fun c -> c.c_value <- 0) !counters;
  List.iter
    (fun t ->
      t.t_total <- 0.0;
      t.t_count <- 0)
    !timers

type snapshot = (string * int) list

let key group name = group ^ "." ^ name

let snapshot () =
  List.sort compare
    (List.map (fun c -> (key c.c_group c.c_name, c.c_value)) !counters)

let find snap name = Option.value (List.assoc_opt name snap) ~default:0

let timings () =
  List.sort compare
    (List.map (fun t -> (key t.t_group t.t_name, t.t_total, t.t_count)) !timers)

(* ---- rendering ---------------------------------------------------------- *)

let rule = String.make 78 '-'

let banner buf title =
  Buffer.add_string buf ("===" ^ rule ^ "===\n");
  let pad = max 0 ((84 - String.length title) / 2) in
  Buffer.add_string buf (String.make pad ' ');
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf ("===" ^ rule ^ "===\n\n")

let render_stats () =
  let buf = Buffer.create 1024 in
  banner buf "... Statistics Collected ...";
  let live = List.filter (fun c -> c.c_value <> 0) !counters in
  if live = [] then Buffer.add_string buf "  (no statistics collected)\n"
  else begin
    let name_w =
      List.fold_left
        (fun w c -> max w (String.length (key c.c_group c.c_name)))
        0 live
    in
    List.iter
      (fun c ->
        Buffer.add_string buf
          (Printf.sprintf "%10d  %-*s - %s\n" c.c_value name_w
             (key c.c_group c.c_name)
             (if c.c_desc = "" then c.c_name else c.c_desc)))
      live
  end;
  Buffer.contents buf

let render_time_report () =
  let buf = Buffer.create 1024 in
  banner buf "mcc compilation time report (monotonic wall clock)";
  let groups =
    List.fold_left
      (fun acc t -> if List.mem t.t_group acc then acc else acc @ [ t.t_group ])
      [] !timers
  in
  if groups = [] then Buffer.add_string buf "  (no timers registered)\n";
  List.iter
    (fun g ->
      let members = List.filter (fun t -> t.t_group = g) !timers in
      let total = List.fold_left (fun s t -> s +. t.t_total) 0.0 members in
      Buffer.add_string buf
        (Printf.sprintf "  %s: %.6f seconds of wall time\n" g total);
      Buffer.add_string buf "   ---Wall Time---   --Count--  --Name--\n";
      List.iter
        (fun t ->
          let pct = if total > 0.0 then 100.0 *. t.t_total /. total else 0.0 in
          Buffer.add_string buf
            (Printf.sprintf "   %9.6f (%5.1f%%)  %9d  %s\n" t.t_total pct
               t.t_count t.t_name))
        members;
      Buffer.add_string buf
        (Printf.sprintf "   %9.6f (100.0%%)             Total\n\n" total))
    groups;
  Buffer.contents buf
