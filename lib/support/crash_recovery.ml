(* CrashRecoveryContext analogue: run a pipeline piece so that *no*
   exception escapes — not even Stack_overflow or Assert_failure — and
   whatever does get thrown is converted into a structured internal
   compiler error (ICE) carrying the active pipeline phase, the parser's
   source-position watermark and a backtrace.

   The phase and watermark live in domain-local storage, so concurrent
   compilations on separate domains (Batch workers) never see each
   other's state.  This module sits in mc_support and therefore cannot
   depend on the source manager; the watermark is kept as raw
   (file id, byte offset) integers, and whoever owns a source manager
   (the driver) installs a renderer that turns them into a
   "file:line:col" string at ICE time. *)

type ice = {
  ice_phase : string; (* pipeline stage active when the exception escaped *)
  ice_exn : string; (* Printexc rendering of the escaped exception *)
  ice_backtrace : string; (* raw backtrace, "" when unavailable *)
  ice_location : string option; (* rendered source watermark, if any *)
}

exception Internal_error of string

let internal_error fmt =
  Printf.ksprintf (fun s -> raise (Internal_error s)) fmt

let () =
  Printexc.register_printer (function
    | Internal_error msg -> Some ("internal error: " ^ msg)
    | _ -> None)

type state = {
  mutable phase : string;
  mutable position : (int * int) option; (* file id, byte offset *)
  mutable renderer : (file:int -> offset:int -> string) option;
}

let key =
  Domain.DLS.new_key (fun () ->
      { phase = "startup"; position = None; renderer = None })

let set_phase p = (Domain.DLS.get key).phase <- p
let phase () = (Domain.DLS.get key).phase

let note_source_position ~file ~offset =
  (Domain.DLS.get key).position <- Some (file, offset)

let clear_source_position () = (Domain.DLS.get key).position <- None
let source_position () = (Domain.DLS.get key).position
let set_position_renderer f = (Domain.DLS.get key).renderer <- Some f

let rendered_position () =
  let st = Domain.DLS.get key in
  match (st.position, st.renderer) with
  | Some (file, offset), Some render -> (
    (* The renderer closes over a source manager that may itself be in a
       broken state after a crash; never let it turn containment into a
       second escape. *)
    match render ~file ~offset with s -> Some s | exception _ -> None)
  | _ -> None

let ice_of_exn ?phase:p ?backtrace e =
  {
    ice_phase = (match p with Some p -> p | None -> phase ());
    ice_exn = Printexc.to_string e;
    ice_backtrace = (match backtrace with Some b -> b | None -> "");
    ice_location = rendered_position ();
  }

(* In OCaml 5 an ordinary [with e ->] handler does catch Stack_overflow
   and Out_of_memory, so a single catch-all arm gives the full
   CrashRecoveryContext guarantee. *)
let run f =
  Printexc.record_backtrace true;
  let st = Domain.DLS.get key in
  st.phase <- "startup";
  st.position <- None;
  st.renderer <- None;
  match f () with
  | v -> Ok v
  | exception e ->
    let backtrace = Printexc.get_backtrace () in
    Error (ice_of_exn ~backtrace e)

let describe ice =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "internal compiler error (phase: %s): %s" ice.ice_phase
       ice.ice_exn);
  (match ice.ice_location with
  | Some l -> Buffer.add_string b (Printf.sprintf "\nlast source location: %s" l)
  | None -> ());
  if ice.ice_backtrace <> "" then begin
    Buffer.add_string b "\nbacktrace:\n";
    Buffer.add_string b (String.trim ice.ice_backtrace)
  end;
  Buffer.contents b
