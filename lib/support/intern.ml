(* Domain-local hash-consing of strings.  See the .mli for the contract;
   the table lives in DLS so the lexer never takes a lock, and a soft
   cap keeps a long-lived daemon from accumulating every identifier it
   has ever seen. *)

(* Deliberately no Stats counters here: interning is domain-lifetime
   state (a warm domain reuses strings interned by earlier units), so
   per-compilation counts would differ between -j 1 and -j 4 and break
   the per-unit snapshot determinism Batch guarantees. *)

type id = int

let soft_cap = 65536

type table = {
  mutable by_string : (string, int) Hashtbl.t;
  mutable by_id : string array; (* length next_id, grown amortised *)
  mutable next_id : int;
}

let key : table Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { by_string = Hashtbl.create 1024; by_id = Array.make 1024 ""; next_id = 0 })

let clear t =
  t.by_string <- Hashtbl.create 1024;
  t.by_id <- Array.make 1024 "";
  t.next_id <- 0

let intern t s =
  match Hashtbl.find_opt t.by_string s with
  | Some i -> i
  | None ->
    if t.next_id >= soft_cap then clear t;
    let i = t.next_id in
    if i >= Array.length t.by_id then begin
      let grown = Array.make (2 * Array.length t.by_id) "" in
      Array.blit t.by_id 0 grown 0 i;
      t.by_id <- grown
    end;
    t.by_id.(i) <- s;
    Hashtbl.add t.by_string s i;
    t.next_id <- i + 1;
    i

let share s =
  let t = Domain.DLS.get key in
  t.by_id.(intern t s)

let id s = intern (Domain.DLS.get key) s

let to_string i =
  let t = Domain.DLS.get key in
  if i < 0 || i >= t.next_id then
    invalid_arg (Printf.sprintf "Intern.to_string: unknown id %d" i);
  t.by_id.(i)

let size () = (Domain.DLS.get key).next_id
