(** Binary framing and atomic-file helpers shared by the on-disk artifact
    store ({!Mc_core.Store}) and the compile-server wire protocol
    ({!Mc_core.Protocol}).

    A frame is [magic · version · length · payload] with 4-byte
    big-endian integers.  All decoding failures are [Error] values — the
    callers are exactly the paths where corruption must degrade to a
    cache miss or a rejected request, never an exception. *)

val max_frame_bytes : int
(** Hard cap on a frame's payload length (64 MiB); longer frames decode
    as {!Oversized} so a corrupt length field cannot force an unbounded
    allocation. *)

type frame_error =
  | Truncated
  | Bad_magic
  | Version_mismatch of int  (** the version the frame carries *)
  | Oversized of int
  | Timed_out
      (** an [SO_RCVTIMEO] deadline expired mid-read ([Sys_blocked_io]) *)

val frame_error_to_string : frame_error -> string

val frame : magic:string -> version:int -> string -> string
(** [frame ~magic ~version payload] renders one frame; [magic] must be
    exactly 4 bytes. *)

val parse_frame :
  magic:string -> version:int -> string -> (string, frame_error) result
(** Decodes a complete in-memory frame (the on-disk store format): the
    payload of a frame whose magic and version match and whose length
    equals the remaining bytes. *)

val read_frame :
  magic:string -> version:int -> in_channel -> (string, frame_error) result
(** Reads one frame from a channel (the wire format). *)

val write_frame : magic:string -> version:int -> out_channel -> string -> unit
(** Writes one frame and flushes. *)

val write_file_atomic : path:string -> string -> (unit, string) result
(** Write-to-tmp + rename in [path]'s directory, so concurrent readers
    across domains and processes only ever observe complete files. *)

val read_file : string -> string option
(** Whole-file read; [None] on any IO error (a vanished or unreadable
    file is a cache miss, not a failure). *)

val mkdir_p : string -> unit
(** [mkdir -p]; existing directories are fine, racing creators are fine. *)
