(** The [llvm::CrashRecoveryContext] analogue: convert any exception that
    escapes a compilation — including [Stack_overflow], [Out_of_memory]
    and [Assert_failure] — into a structured internal-compiler-error
    value instead of letting it take down the process (or a whole
    {!Mc_core.Batch} domain pool).

    All state here is domain-local, so concurrent compilations on
    separate domains never observe each other's phase or watermark. *)

type ice = {
  ice_phase : string;  (** pipeline stage active when the exception escaped *)
  ice_exn : string;  (** [Printexc.to_string] of the escaped exception *)
  ice_backtrace : string;  (** raw backtrace; [""] when unavailable *)
  ice_location : string option;  (** rendered source watermark, if any *)
}

exception Internal_error of string
(** The exception genuinely-unreachable [assert false] sites raise
    instead, so that a violated compiler invariant reports through the
    ICE machinery with a message rather than a bare [Assert_failure]. *)

val internal_error : ('a, unit, string, 'b) format4 -> 'a
(** [internal_error fmt ...] raises {!Internal_error} with a formatted
    message; the replacement for input-unreachable [assert false]. *)

val run : (unit -> 'a) -> ('a, ice) result
(** Runs the thunk with backtrace recording on and the phase/watermark
    reset; any escaped exception — of any kind — becomes [Error ice]. *)

val set_phase : string -> unit
(** Marks the pipeline stage the current domain is executing (the driver
    calls this as each timed stage starts). *)

val phase : unit -> string

val note_source_position : file:int -> offset:int -> unit
(** The parser's watermark: the raw (file id, byte offset) of the last
    consumed token, cheap enough to update per token. *)

val clear_source_position : unit -> unit
val source_position : unit -> (int * int) option

val set_position_renderer : (file:int -> offset:int -> string) -> unit
(** Installed by whoever owns the source manager (the driver), so an ICE
    can render the watermark as "file:line:col" without this module
    depending on [Mc_srcmgr].  Renderer exceptions are swallowed. *)

val ice_of_exn : ?phase:string -> ?backtrace:string -> exn -> ice
(** Builds an {!ice} from a caught exception, for containment sites that
    cannot use {!run} directly (e.g. a batch worker's last-ditch arm). *)

val describe : ice -> string
(** Multi-line human rendering: phase, exception, watermark, backtrace. *)
