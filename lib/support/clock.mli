(** Monotonic wall clock.

    The pipeline's stage timings (Fig. 1) and the simulated
    [omp_get_wtime] both need *elapsed real time*, not process CPU time
    ([Sys.time] counts the latter and stalls whenever the process is
    descheduled, and it can disagree wildly with wall time under load).
    OCaml's stdlib has no [CLOCK_MONOTONIC] binding, so this wraps
    [Unix.gettimeofday] — a wall clock — and clamps it to be
    non-decreasing, which makes interval measurements robust against the
    system clock stepping backwards (NTP adjustments). *)

val now : unit -> float
(** Current wall-clock reading in seconds.  Successive calls never go
    backwards: [now () >= t] for every previously observed [t]. *)

val elapsed : unit -> float
(** Seconds since this module was initialised (process start, for all
    practical purposes).  Non-negative and non-decreasing. *)
