(** Hash-consed strings and stable symbol ids.

    The front end creates the same identifier spelling thousands of
    times — every occurrence of [i], every call to [omp_get_thread_num]
    — and every copy is a fresh heap block.  {!share} collapses them:
    the first occurrence of a spelling becomes the canonical physical
    string and every later occurrence returns that same block.  Two
    things get cheaper at once: equality on identifiers usually
    succeeds on the pointer fast-path inside [caml_string_equal], and
    [Marshal] (which preserves intra-value sharing) emits one copy of
    each spelling per artifact instead of one per token, shrinking
    every cached [Mc_core.Store] payload and [mccd] round-trip that
    carries tokens or ASTs.

    {!id} additionally assigns a dense integer id per distinct
    spelling — the stable per-function symbol handle used by the
    function-granular slicer.  Ids are dense and deterministic {e
    within} a domain's arrival order but are NOT stable across
    processes or domains; never put them in fingerprints or marshalled
    artifacts.

    The table is domain-local (no locks on the lexing hot path); each
    domain of a parallel {!Mc_core.Batch} builds its own sharing,
    which is exactly the scope [Marshal] can exploit anyway.  A soft
    cap bounds memory in long-lived daemons: when a domain's table
    exceeds the cap it is cleared and sharing restarts — correctness
    never depends on two equal strings being physically equal. *)

type id = int

val share : string -> string
(** The canonical physical string for this spelling in the current
    domain.  [share s = s] (structurally) always. *)

val id : string -> id
(** Dense id of the spelling in the current domain (interning it
    first if needed).  [id s = id s'] iff [s = s'] — within one
    domain. *)

val to_string : id -> string
(** The spelling behind an id of the current domain.
    @raise Invalid_argument on an id this domain never issued. *)

val size : unit -> int
(** Distinct spellings currently interned in this domain. *)

val soft_cap : int
(** Table size at which the next {!share}/{!id} clears the domain's
    table (sharing restarts; previously issued ids become invalid). *)
