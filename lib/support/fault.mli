(** Deterministic fault injection for the distributed-system layers.

    A {e fault point} is a named probe compiled into a failure-prone
    code path (e.g. ["store.read"], ["protocol.write_frame"],
    ["server.worker"]).  Unarmed — the default — {!fire} is a single
    branch.  Armed with a probability and a seed (via {!arm}, or the
    [MCC_FAULTS] environment variable
    ["point:prob:seed,point:prob:seed,…"]), {!fire} draws from a
    point-private seeded PRNG, so the exact schedule of injected
    failures is reproducible run after run.  Each trip bumps a
    [fault.<point>] counter in the current {!Stats} registry, visible in
    [-print-stats]. *)

type point

val env_var : string
(** ["MCC_FAULTS"]. *)

val point : string -> point
(** Registers (or retrieves) the point — idempotent, safe from any
    domain.  If [MCC_FAULTS] names the point, registration arms it. *)

val name : point -> string

val fire : point -> bool
(** Draws once from the point's stream; [true] means the caller must
    fail here.  Always [false] when unarmed, at the cost of one branch. *)

val arm : string -> probability:float -> seed:int -> unit
(** Arms the point ([probability] in [0,1]; [0.] disarms).  Reseeds the
    stream: arming twice with the same seed replays the same schedule. *)

val disarm : string -> unit
val disarm_all : unit -> unit

val armed : string -> bool
(** Is the point currently armed?  Tests use this to relax
    exact-counter assertions when a CI fault matrix ([MCC_FAULTS]) is
    injecting failures underneath them. *)

val any_armed : unit -> bool
(** Any point armed, including ones armed via [MCC_FAULTS] that no code
    path has registered yet. *)

val arm_from_env : unit -> unit
(** Forces [MCC_FAULTS] parsing and arms every point it names.  Point
    registration does this implicitly; binaries call it once at startup
    so malformed specs warn early. *)

val with_armed : (string * float * int) list -> (unit -> 'a) -> 'a
(** [with_armed [(name, prob, seed); …] f] arms the points, runs [f],
    and restores each point's previous state (armed or not, including
    its PRNG position) even if [f] raises. *)

val trips : point -> int
(** The point's trip count in the current registry (the [fault.<name>]
    counter). *)

val parse_spec : string -> (string * (float * int)) list * string list
(** Parses a [MCC_FAULTS]-syntax spec into [(point, (prob, seed))]
    bindings plus human-readable errors for malformed items (exposed
    for tests). *)
