(* Monotonic wall clock on top of Unix.gettimeofday.

   gettimeofday is wall time but may step backwards (NTP, manual clock
   changes); a Mtime-style monotonic source would be ideal but is not in
   the stdlib, so we enforce monotonicity ourselves: remember the highest
   reading handed out and never return anything below it. *)

let highest = ref neg_infinity

let now () =
  let t = Unix.gettimeofday () in
  if t > !highest then highest := t;
  !highest

let epoch = now ()
let elapsed () = now () -. epoch
