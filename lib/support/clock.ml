(* Monotonic wall clock on top of Unix.gettimeofday.

   gettimeofday is wall time but may step backwards (NTP, manual clock
   changes); a Mtime-style monotonic source would be ideal but is not in
   the stdlib, so we enforce monotonicity ourselves: remember the highest
   reading handed out and never return anything below it.  The watermark
   is domain-local so concurrent compilations never contend on (or tear)
   a shared cell; monotonicity is per domain, which is all interval
   timing needs. *)

let highest : float ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref neg_infinity)

let now () =
  let hi = Domain.DLS.get highest in
  let t = Unix.gettimeofday () in
  if t > !hi then hi := t;
  !hi

let epoch = now ()
let elapsed () = now () -. epoch
