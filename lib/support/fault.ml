(* Deterministic fault injection: named failure points compiled into the
   hot paths of the store / protocol / server layers.

   A point is registered once at module initialisation ([point]) and
   does nothing until armed — the unarmed fast path is a single mutable
   bool load, so production code pays one branch.  Arming gives the
   point a firing probability and a seeded PRNG (splitmix64, whose
   stream is mixed with the point's name so two points armed with the
   same seed still fire independently); every [fire] draw then comes
   from that private deterministic stream, which is what lets a test or
   a CI matrix replay the exact same failure schedule run after run.

   Arming happens through the API ([arm] / [with_armed], used by tests)
   or the [MCC_FAULTS] environment variable
   ("point:prob:seed,point:prob:seed,…", used by the CI fault matrix),
   parsed lazily on first registration/arming so library initialisation
   order does not matter.

   Every trip bumps a [fault.<point>] counter in the calling domain's
   current Stats registry, so -print-stats shows exactly how many times
   each point fired during a run. *)

let env_var = "MCC_FAULTS"

type point = {
  p_name : string;
  p_counter : Stats.counter;
  mutable p_armed : bool;
  mutable p_probability : float;
  mutable p_state : int64; (* splitmix64 state; meaningful when armed *)
  p_lock : Mutex.t; (* serialises PRNG draws across domains *)
}

let table : (string, point) Hashtbl.t = Hashtbl.create 16
let table_lock = Mutex.create ()

(* ---- MCC_FAULTS parsing --------------------------------------------------- *)

let parse_spec spec =
  let specs = ref [] in
  let errors = ref [] in
  String.split_on_char ',' spec
  |> List.iter (fun item ->
         let item = String.trim item in
         if item <> "" then
           match String.split_on_char ':' item with
           | [ name; prob; seed ] -> (
             match (float_of_string_opt prob, int_of_string_opt seed) with
             | Some p, Some s when p >= 0.0 && p <= 1.0 ->
               specs := (name, (p, s)) :: !specs
             | _ ->
               errors :=
                 Printf.sprintf
                   "bad fault spec %S (want point:prob[0..1]:seed)" item
                 :: !errors)
           | _ ->
             errors :=
               Printf.sprintf "bad fault spec %S (want point:prob:seed)" item
               :: !errors);
  (List.rev !specs, List.rev !errors)

let env_specs =
  lazy
    (match Sys.getenv_opt env_var with
    | None | Some "" -> []
    | Some spec ->
      let specs, errors = parse_spec spec in
      List.iter
        (fun e -> prerr_endline (Printf.sprintf "mcc: %s: %s" env_var e))
        errors;
      specs)

(* ---- the deterministic PRNG ----------------------------------------------- *)

(* splitmix64: tiny, full-period, and statistically fine for firing
   decisions.  Not Random.State: the stream must be private to the
   point, stable across OCaml versions, and cheap to reseed. *)
let splitmix64 state =
  let state = Int64.add state 0x9E3779B97F4A7C15L in
  let z = state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  (state, Int64.logxor z (Int64.shift_right_logical z 31))

(* Uniform draw in [0,1) from the high 53 bits. *)
let unit_float_of_u64 u =
  Int64.to_float (Int64.shift_right_logical u 11) /. 9007199254740992.0

(* FNV-style fold of the point name, mixed into the seed so distinct
   points armed with one seed do not fire in lockstep. *)
let seed_state name seed =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    name;
  Int64.logxor !h (Int64.of_int seed)

(* ---- registration and arming ---------------------------------------------- *)

let arm_point_unlocked p ~probability ~seed =
  p.p_probability <- probability;
  p.p_state <- seed_state p.p_name seed;
  p.p_armed <- probability > 0.0

let disarm_point_unlocked p =
  p.p_armed <- false;
  p.p_probability <- 0.0

let find_or_create_unlocked name =
  match Hashtbl.find_opt table name with
  | Some p -> p
  | None ->
    let p =
      {
        p_name = name;
        p_counter =
          Stats.counter ~group:"fault" ~name
            ~desc:("injected failures tripped at " ^ name) ();
        p_armed = false;
        p_probability = 0.0;
        p_state = 0L;
        p_lock = Mutex.create ();
      }
    in
    (match List.assoc_opt name (Lazy.force env_specs) with
    | Some (probability, seed) -> arm_point_unlocked p ~probability ~seed
    | None -> ());
    Hashtbl.add table name p;
    p

let point name = Mutex.protect table_lock (fun () -> find_or_create_unlocked name)
let name p = p.p_name

let arm name ~probability ~seed =
  Mutex.protect table_lock (fun () ->
      let p = find_or_create_unlocked name in
      Mutex.protect p.p_lock (fun () ->
          arm_point_unlocked p ~probability ~seed))

let disarm name =
  Mutex.protect table_lock (fun () ->
      match Hashtbl.find_opt table name with
      | Some p -> Mutex.protect p.p_lock (fun () -> disarm_point_unlocked p)
      | None -> ())

let disarm_all () =
  Mutex.protect table_lock (fun () ->
      Hashtbl.iter
        (fun _ p -> Mutex.protect p.p_lock (fun () -> disarm_point_unlocked p))
        table)

let armed point_name =
  let p = point point_name in
  p.p_armed

let any_armed () =
  (* Force the env spec so "armed only via MCC_FAULTS, point not yet
     registered" still answers truthfully. *)
  List.iter (fun (n, _) -> ignore (point n)) (Lazy.force env_specs);
  Mutex.protect table_lock (fun () ->
      Hashtbl.fold (fun _ p acc -> acc || p.p_armed) table false)

let arm_from_env () =
  List.iter (fun (n, _) -> ignore (point n)) (Lazy.force env_specs)

let with_armed specs f =
  let saved =
    List.map
      (fun (n, _, _) ->
        let p = point n in
        (n, p.p_armed, p.p_probability, p.p_state))
      specs
  in
  List.iter (fun (n, probability, seed) -> arm n ~probability ~seed) specs;
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun (n, was_armed, probability, state) ->
          let p = point n in
          Mutex.protect p.p_lock (fun () ->
              p.p_armed <- was_armed;
              p.p_probability <- probability;
              p.p_state <- state))
        saved)
    f

(* ---- the hot path --------------------------------------------------------- *)

let fire p =
  (* Unarmed: one load, one branch, no lock. *)
  p.p_armed
  && Mutex.protect p.p_lock (fun () ->
         p.p_armed
         &&
         let state, draw = splitmix64 p.p_state in
         p.p_state <- state;
         let tripped = unit_float_of_u64 draw < p.p_probability in
         if tripped then Stats.incr p.p_counter;
         tripped)

let trips p = Stats.value p.p_counter
