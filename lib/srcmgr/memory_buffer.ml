type t = {
  name : string;
  contents : string;
  (* Content digest, computed on demand and then remembered: buffer
     identity for the stage cache (pipeline fingerprints, #include set
     validation) without rehashing on every lookup.  The contents are
     immutable, so the cached digest can never go stale. *)
  mutable digest : string option;
}

let create ~name ~contents = { name; contents; digest = None }
let name t = t.name
let contents t = t.contents
let length t = String.length t.contents
let char_at t i = t.contents.[i]
let sub t ~pos ~len = String.sub t.contents pos len

let digest t =
  match t.digest with
  | Some d -> d
  | None ->
    let d = Digest.to_hex (Digest.string t.contents) in
    t.digest <- Some d;
    d
