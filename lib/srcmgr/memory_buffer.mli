(** An immutable chunk of source text with an identifying name, the analogue
    of [llvm::MemoryBuffer] that Clang's FileManager hands to the
    SourceManager (see Fig. 1 of the paper). *)

type t

val create : name:string -> contents:string -> t
val name : t -> string
val contents : t -> string
val length : t -> int

val char_at : t -> int -> char
(** Raises [Invalid_argument] when out of bounds. *)

val sub : t -> pos:int -> len:int -> string

val digest : t -> string
(** Hex content digest of the buffer — its identity for the stage cache
    (artifact fingerprints, [#include]-set validation).  Computed lazily
    and cached; the contents are immutable so it cannot go stale. *)
