(** The CodeGen layer (Fig. 1): lowers the typed AST to the LLVM-like IR.

    Both of the paper's OpenMP lowering strategies are implemented and
    selected by {!mode}:

    - [Classic] is Clang's traditional path: early outlining of
      [CapturedStmt] regions, worksharing driven by the shadow loop helpers
      Sema precomputed, transformation directives either emitting their
      transformed shadow AST (tile) or deferring to the mid-end by
      attaching [llvm.loop.unroll.*] metadata (unroll, §2.2);

    - [Irbuilder] is the OpenMPIRBuilder path (§3.2): [OMPCanonicalLoop]
      nodes lower through [create_canonical_loop], and directives compose
      [CanonicalLoopInfo] handles via [tile_loops]/[unroll_loop_*]/
      [apply_static_workshare]/[create_parallel].

    The AST must have been produced by a Sema in the matching mode. *)

type mode = Classic | Irbuilder

exception Unsupported of string
(** Raised on constructs outside the supported subset (see DESIGN.md). *)

val reset_gensym : unit -> unit
(** Resets this domain's dispatch-site id counter; the driver calls it at
    the start of every compilation so emitted IR is deterministic across
    (parallel) compiles. *)

val emit_translation_unit :
  ?fold:bool -> mode:mode -> Mc_ast.Tree.translation_unit -> Mc_ir.Ir.modul
(** [fold] controls the IRBuilder's on-the-fly simplification (ablation
    A4); default on. *)
