open Mc_ast.Tree
module Ctype = Mc_ast.Ctype
module Int_ops = Mc_support.Int_ops
module Ir = Mc_ir.Ir
module B = Mc_ir.Builder
module Ob = Mc_ompbuilder.Omp_builder
module Cli = Mc_ompbuilder.Cli

type mode = Classic | Irbuilder

(* Unique ids for dynamic-dispatch worksharing sites (classic path).
   Domain-local and reset per compilation (see [reset_gensym]) so the
   emitted IR is deterministic under parallel batch compilation. *)
let dispatch_site_counter : int ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref 1000)

let reset_gensym () = Domain.DLS.get dispatch_site_counter := 1000

exception Unsupported of string

let stat_fns =
  Mc_support.Stats.counter ~group:"codegen" ~name:"functions-emitted"
    ~desc:"function bodies lowered to IR" ()
let stat_insts_classic =
  Mc_support.Stats.counter ~group:"codegen" ~name:"ir-instructions-classic"
    ~desc:"IR instructions emitted by the classic (shadow-AST) path" ()
let stat_insts_irbuilder =
  Mc_support.Stats.counter ~group:"codegen" ~name:"ir-instructions-irbuilder"
    ~desc:"IR instructions emitted by the OpenMPIRBuilder path" ()

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

type ctx = {
  m : Ir.modul;
  mode : mode;
  b : B.t;
  fn_map : (int, Ir.func) Hashtbl.t; (* AST fn id -> IR func *)
  mutable env : (int, Ir.value) Hashtbl.t; (* var id -> address value *)
  mutable entry : Ir.block option; (* alloca insertion block *)
  mutable break_targets : Ir.block list;
  mutable continue_targets : Ir.block list;
  mutable cur_fn : Ir.func option;
  (* Innermost-first switch contexts: case destinations collected while the
     body is emitted, resolved into a compare chain afterwards. *)
  mutable switch_cases : (int64 * Ir.block) list ref list;
  mutable switch_defaults : Ir.block option ref list;
}

let rec scalar_ty cty =
  match cty with
  | Void -> Ir.Void
  | Bool -> Ir.I8
  | Int { Int_ops.bits = 8; _ } -> Ir.I8
  | Int { Int_ops.bits = 16; _ } -> Ir.I16
  | Int { Int_ops.bits = 32; _ } -> Ir.I32
  | Int { Int_ops.bits = 64; _ } -> Ir.I64
  | Int _ -> unsupported "odd integer width"
  | Float 32 -> Ir.F32
  | Float _ -> Ir.F64
  | Ptr _ | Func _ -> Ir.Ptr
  | Array (elem, _) -> scalar_ty elem
(* arrays appear only via their decayed element accesses *)

let is_signed_cty = function
  | Int { Int_ops.signed; _ } -> signed
  | Bool -> false
  | _ -> true

(* Storage shape of a declared variable: ultimate scalar element + count. *)
let rec storage_shape cty =
  match cty with
  | Array (elem, Some n) ->
    let ty, count = storage_shape elem in
    (ty, n * count)
  | Array (_, None) -> unsupported "array of unknown bound"
  | _ -> (scalar_ty cty, 1)

let current_function ctx =
  match ctx.cur_fn with
  | Some f -> f
  | None -> unsupported "emission outside a function"

(* Allocas go to the function entry block so loops do not grow the stack. *)
let alloca_entry ctx ?(count = 1) ~name elt_ty =
  match ctx.entry with
  | None -> unsupported "no entry block for alloca"
  | Some entry ->
    let inst = Ir.mk_inst ~name ~ty:Ir.Ptr (Ir.Alloca { elt_ty; count }) in
    Ir.append_inst entry inst;
    Ir.Inst_ref inst

let declare_var ctx (v : var) =
  let elt_ty, count = storage_shape v.v_ty in
  let addr = alloca_entry ctx ~count ~name:v.v_name elt_ty in
  Hashtbl.replace ctx.env v.v_id addr;
  addr

let var_addr ctx (v : var) =
  match Hashtbl.find_opt ctx.env v.v_id with
  | Some a -> a
  | None ->
    (* Locals are declared before use by construction; synthesised helper
       variables may be first seen here. *)
    declare_var ctx v

let new_block ctx name = Ir.create_block ~name (current_function ctx)

let int_const cty v =
  let w =
    Option.value (Ctype.int_width cty) ~default:Int_ops.i64
  in
  (* IR constants are canonical in sign-extended form. *)
  Ir.Const_int
    (scalar_ty cty, Int_ops.truncate { w with Int_ops.signed = true } v)

let byte_size cty = Ctype.size_in_bytes cty

(* ---- scalar conversions -------------------------------------------------- *)

let cast_int ctx ~from_cty ~to_cty v =
  let from_ir = scalar_ty from_cty and to_ir = scalar_ty to_cty in
  if from_ir = to_ir then v
  else begin
    let from_bits = Ir.ty_size_in_bytes from_ir * 8 in
    let to_bits = Ir.ty_size_in_bytes to_ir * 8 in
    if to_bits < from_bits then B.cast ctx.b Ir.Trunc v to_ir
    else if is_signed_cty from_cty && from_cty <> Bool then
      B.cast ctx.b Ir.Sext v to_ir
    else B.cast ctx.b Ir.Zext v to_ir
  end

let to_bool_i1 ctx cty v =
  match cty with
  | Float _ -> B.fcmp ctx.b Ir.Fone v (Ir.Const_float (scalar_ty cty, 0.0))
  | Ptr _ -> unsupported "pointer used as a boolean"
  | _ -> B.icmp ctx.b Ir.Ine v (Ir.Const_int (scalar_ty cty, 0L))

(* ---- expressions ----------------------------------------------------------- *)

let rec emit_lvalue ctx e : Ir.value =
  match e.e_kind with
  | Decl_ref v -> var_addr ctx v
  | Paren inner -> emit_lvalue ctx inner
  | Subscript (base, index) ->
    let base_v = emit_rvalue ctx base in
    let idx = emit_rvalue ctx index in
    let idx = cast_int ctx ~from_cty:index.e_ty ~to_cty:Ctype.long_t idx in
    let off = B.mul ctx.b idx (Ir.i64_const (byte_size e.e_ty)) in
    B.gep ctx.b ~elt_ty:Ir.I8 base_v off
  | Unary (U_deref, p) -> emit_rvalue ctx p
  | String_lit _ -> unsupported "string literals at runtime"
  | _ -> unsupported "expression is not an lvalue in codegen"

and emit_rvalue ctx e : Ir.value =
  match e.e_kind with
  | Int_lit v -> int_const e.e_ty v
  | Float_lit f -> Ir.Const_float (scalar_ty e.e_ty, f)
  | String_lit _ -> unsupported "string literals at runtime"
  | Paren inner -> emit_rvalue ctx inner
  | Fn_ref fn -> Ir.Fn_addr (ir_function ctx fn)
  | Decl_ref _ | Subscript _ ->
    (* A bare lvalue used as a value (synthesised helper expressions omit
       the explicit LValueToRValue node). *)
    B.load ctx.b (scalar_ty e.e_ty) (emit_lvalue ctx e)
  | Implicit_cast (ck, inner) -> emit_cast ctx ck inner e.e_ty
  | C_style_cast (ty, inner) -> emit_explicit_cast ctx inner ty
  | Sizeof_type ty -> int_const e.e_ty (Int64.of_int (byte_size ty))
  | Unary (op, operand) -> emit_unary ctx op operand e
  | Binary (op, lhs, rhs) -> emit_binary ctx op lhs rhs e
  | Assign (op, lhs, rhs) -> emit_assign ctx op lhs rhs
  | Conditional (c, a, b) -> emit_conditional ctx c a b e.e_ty
  | Call (callee, args) -> emit_call ctx callee args e.e_ty
  | Recovery_expr _ ->
    unsupported "expression contains errors; code generation unavailable"

and ir_function ctx fn =
  match Hashtbl.find_opt ctx.fn_map fn.fn_id with
  | Some f -> f
  | None ->
    let args =
      List.map (fun p -> Ir.mk_arg ~name:p.v_name ~ty:(scalar_ty p.v_ty)) fn.fn_params
    in
    let f =
      Ir.declare_function ctx.m ~name:fn.fn_name ~ret:(scalar_ty fn.fn_ty.ft_ret)
        ~args
    in
    Hashtbl.replace ctx.fn_map fn.fn_id f;
    f

and emit_cast ctx ck inner target_cty =
  match ck with
  | CK_lvalue_to_rvalue ->
    B.load ctx.b (scalar_ty target_cty) (emit_lvalue ctx inner)
  | CK_array_to_pointer -> emit_lvalue ctx inner
  | CK_pointer -> emit_rvalue ctx inner
  | CK_integral ->
    cast_int ctx ~from_cty:inner.e_ty ~to_cty:target_cty (emit_rvalue ctx inner)
  | CK_integral_to_floating ->
    let v = emit_rvalue ctx inner in
    let op = if is_signed_cty inner.e_ty then Ir.Sitofp else Ir.Uitofp in
    B.cast ctx.b op v (scalar_ty target_cty)
  | CK_floating_to_integral ->
    let v = emit_rvalue ctx inner in
    let op = if is_signed_cty target_cty then Ir.Fptosi else Ir.Fptoui in
    B.cast ctx.b op v (scalar_ty target_cty)
  | CK_floating ->
    let v = emit_rvalue ctx inner in
    let op =
      if scalar_ty target_cty = Ir.F64 then Ir.Fpext else Ir.Fptrunc
    in
    B.cast ctx.b op v (scalar_ty target_cty)
  | CK_int_to_bool ->
    let v = emit_rvalue ctx inner in
    B.cast ctx.b Ir.Zext (to_bool_i1 ctx inner.e_ty v) Ir.I8
  | CK_float_to_bool ->
    let v = emit_rvalue ctx inner in
    B.cast ctx.b Ir.Zext (to_bool_i1 ctx inner.e_ty v) Ir.I8

and emit_explicit_cast ctx inner target =
  match (inner.e_ty, target) with
  | _, Void ->
    ignore (emit_rvalue ctx inner);
    Ir.Undef Ir.I32
  | (Int _ | Bool), (Int _ | Bool) ->
    cast_int ctx ~from_cty:inner.e_ty ~to_cty:target (emit_rvalue ctx inner)
  | (Int _ | Bool), Float _ -> emit_cast ctx CK_integral_to_floating inner target
  | Float _, (Int _ | Bool) -> emit_cast ctx CK_floating_to_integral inner target
  | Float _, Float _ -> emit_cast ctx CK_floating inner target
  | Ptr _, Ptr _ -> emit_rvalue ctx inner
  | Ptr _, Int _ | Int _, Ptr _ -> unsupported "pointer/integer casts"
  | _ -> unsupported "unsupported cast"

and emit_unary ctx op operand e =
  match op with
  | U_plus -> emit_rvalue ctx operand
  | U_minus ->
    let v = emit_rvalue ctx operand in
    (match operand.e_ty with
    | Float _ -> B.fsub ctx.b (Ir.Const_float (scalar_ty operand.e_ty, 0.0)) v
    | cty -> B.sub ctx.b (Ir.Const_int (scalar_ty cty, 0L)) v)
  | U_bnot ->
    let v = emit_rvalue ctx operand in
    B.xor ctx.b v (Ir.Const_int (scalar_ty operand.e_ty, -1L))
  | U_lnot ->
    let v = emit_rvalue ctx operand in
    let b1 = to_bool_i1 ctx operand.e_ty v in
    let inverted = B.xor ctx.b b1 (Ir.bool_const true) in
    B.cast ctx.b Ir.Zext inverted Ir.I32
  | U_preinc | U_predec | U_postinc | U_postdec -> (
    let addr = emit_lvalue ctx operand in
    let cty = operand.e_ty in
    let old = B.load ctx.b (scalar_ty cty) addr in
    let bump = match op with U_preinc | U_postinc -> 1L | _ -> -1L in
    let updated =
      match cty with
      | Ptr elem ->
        B.gep ctx.b ~elt_ty:Ir.I8 old
          (Ir.i64_const (Int64.to_int bump * Ctype.size_in_bytes elem))
      | Float _ ->
        B.fadd ctx.b old (Ir.Const_float (scalar_ty cty, Int64.to_float bump))
      | _ -> B.add ctx.b old (Ir.Const_int (scalar_ty cty, bump))
    in
    B.store ctx.b updated ~ptr:addr;
    match op with U_preinc | U_predec -> updated | _ -> old)
  | U_deref -> B.load ctx.b (scalar_ty e.e_ty) (emit_rvalue ctx operand)
  | U_addrof -> emit_lvalue ctx operand

and binop_ir op cty =
  let signed = is_signed_cty cty in
  let float = Ctype.is_floating cty in
  match op with
  | B_add -> if float then Ir.Fadd else Ir.Add
  | B_sub -> if float then Ir.Fsub else Ir.Sub
  | B_mul -> if float then Ir.Fmul else Ir.Mul
  | B_div -> if float then Ir.Fdiv else if signed then Ir.Sdiv else Ir.Udiv
  | B_rem -> if float then Ir.Frem else if signed then Ir.Srem else Ir.Urem
  | B_shl -> Ir.Shl
  | B_shr -> if signed then Ir.Ashr else Ir.Lshr
  | B_band -> Ir.And
  | B_bor -> Ir.Or
  | B_bxor -> Ir.Xor
  | _ -> unsupported "not an arithmetic operator"

and cmp_ir op cty =
  let signed = is_signed_cty cty in
  match op with
  | B_lt -> if signed then Ir.Islt else Ir.Iult
  | B_le -> if signed then Ir.Isle else Ir.Iule
  | B_gt -> if signed then Ir.Isgt else Ir.Iugt
  | B_ge -> if signed then Ir.Isge else Ir.Iuge
  | B_eq -> Ir.Ieq
  | B_ne -> Ir.Ine
  | _ -> unsupported "not a comparison"

and fcmp_ir = function
  | B_lt -> Ir.Folt
  | B_le -> Ir.Fole
  | B_gt -> Ir.Fogt
  | B_ge -> Ir.Foge
  | B_eq -> Ir.Foeq
  | B_ne -> Ir.Fone
  | _ -> unsupported "not a comparison"

and emit_binary ctx op lhs rhs e =
  match op with
  | B_land | B_lor -> emit_logical ctx op lhs rhs
  | B_comma ->
    ignore (emit_rvalue ctx lhs);
    emit_rvalue ctx rhs
  | B_lt | B_le | B_gt | B_ge | B_eq | B_ne ->
    let l = emit_rvalue ctx lhs and r = emit_rvalue ctx rhs in
    let c =
      match lhs.e_ty with
      | Float _ -> B.fcmp ctx.b (fcmp_ir op) l r
      | _ -> B.icmp ctx.b (cmp_ir op lhs.e_ty) l r
    in
    B.cast ctx.b Ir.Zext c Ir.I32
  | B_add | B_sub when Ctype.is_pointer lhs.e_ty || Ctype.is_pointer rhs.e_ty
    -> (
    let elem_size cty =
      match Ctype.element_type cty with
      | Some elem -> Ctype.size_in_bytes elem
      | None -> 1
    in
    match (lhs.e_ty, rhs.e_ty, op) with
    | Ptr _, Ptr _, B_sub ->
      let l = emit_rvalue ctx lhs and r = emit_rvalue ctx rhs in
      let diff = B.ptr_diff ctx.b l r in
      B.sdiv ctx.b diff (Ir.i64_const (elem_size lhs.e_ty))
    | Ptr _, _, _ ->
      let l = emit_rvalue ctx lhs and r = emit_rvalue ctx rhs in
      let idx = cast_int ctx ~from_cty:rhs.e_ty ~to_cty:Ctype.long_t r in
      let off = B.mul ctx.b idx (Ir.i64_const (elem_size lhs.e_ty)) in
      let off = if op = B_sub then B.sub ctx.b (Ir.i64_const 0) off else off in
      B.gep ctx.b ~elt_ty:Ir.I8 l off
    | _, Ptr _, B_add ->
      let l = emit_rvalue ctx lhs and r = emit_rvalue ctx rhs in
      let idx = cast_int ctx ~from_cty:lhs.e_ty ~to_cty:Ctype.long_t l in
      let off = B.mul ctx.b idx (Ir.i64_const (elem_size rhs.e_ty)) in
      B.gep ctx.b ~elt_ty:Ir.I8 r off
    | _ -> unsupported "invalid pointer arithmetic")
  | B_shl | B_shr ->
    let l = emit_rvalue ctx lhs in
    let r = emit_rvalue ctx rhs in
    let r = cast_int ctx ~from_cty:rhs.e_ty ~to_cty:lhs.e_ty r in
    B.binop ctx.b (binop_ir op lhs.e_ty) l r
  | _ ->
    let l = emit_rvalue ctx lhs and r = emit_rvalue ctx rhs in
    ignore e;
    B.binop ctx.b (binop_ir op lhs.e_ty) l r

and emit_logical ctx op lhs rhs =
  let f = current_function ctx in
  let rhs_block = Ir.create_block ~name:"land.rhs" f in
  let merge = Ir.create_block ~name:"land.end" f in
  let l = emit_rvalue ctx lhs in
  let lb = to_bool_i1 ctx lhs.e_ty l in
  let from_lhs = B.insertion_block ctx.b in
  (match op with
  | B_land -> B.cond_br ctx.b lb rhs_block merge
  | B_lor -> B.cond_br ctx.b lb merge rhs_block
  | _ -> assert false);
  B.set_insertion_point ctx.b rhs_block;
  let r = emit_rvalue ctx rhs in
  let rb = to_bool_i1 ctx rhs.e_ty r in
  let r32 = B.cast ctx.b Ir.Zext rb Ir.I32 in
  let from_rhs = B.insertion_block ctx.b in
  B.br ctx.b merge;
  B.set_insertion_point ctx.b merge;
  let short_circuit = Ir.i32_const (if op = B_land then 0 else 1) in
  (* The short-circuit edge may have been folded away. *)
  let preds = Ir.predecessors f merge in
  if List.exists (fun p -> p == from_lhs) preds && not (from_lhs == from_rhs)
  then B.phi ctx.b Ir.I32 [ (short_circuit, from_lhs); (r32, from_rhs) ]
  else r32

and emit_assign ctx op lhs rhs =
  let addr = emit_lvalue ctx lhs in
  match op with
  | None ->
    let v = emit_rvalue ctx rhs in
    B.store ctx.b v ~ptr:addr;
    v
  | Some bop -> (
    match (lhs.e_ty, bop) with
    | Ptr elem, (B_add | B_sub) ->
      let old = B.load ctx.b Ir.Ptr addr in
      let idx = emit_rvalue ctx rhs in
      let idx = cast_int ctx ~from_cty:rhs.e_ty ~to_cty:Ctype.long_t idx in
      let off = B.mul ctx.b idx (Ir.i64_const (Ctype.size_in_bytes elem)) in
      let off = if bop = B_sub then B.sub ctx.b (Ir.i64_const 0) off else off in
      let updated = B.gep ctx.b ~elt_ty:Ir.I8 old off in
      B.store ctx.b updated ~ptr:addr;
      updated
    | _ ->
      let common =
        match Ctype.common_arithmetic lhs.e_ty rhs.e_ty with
        | Some c -> c
        | None -> lhs.e_ty
      in
      let old = B.load ctx.b (scalar_ty lhs.e_ty) addr in
      let widened = convert_arith ctx ~from_cty:lhs.e_ty ~to_cty:common old in
      let r = emit_rvalue ctx rhs in
      let r = convert_arith ctx ~from_cty:rhs.e_ty ~to_cty:common r in
      let computed = B.binop ctx.b (binop_ir bop common) widened r in
      let narrowed = convert_arith ctx ~from_cty:common ~to_cty:lhs.e_ty computed in
      B.store ctx.b narrowed ~ptr:addr;
      narrowed)

and convert_arith ctx ~from_cty ~to_cty v =
  if Ctype.equal from_cty to_cty then v
  else
    match (from_cty, to_cty) with
    | (Int _ | Bool), (Int _ | Bool) -> cast_int ctx ~from_cty ~to_cty v
    | (Int _ | Bool), Float _ ->
      B.cast ctx.b
        (if is_signed_cty from_cty then Ir.Sitofp else Ir.Uitofp)
        v (scalar_ty to_cty)
    | Float _, (Int _ | Bool) ->
      B.cast ctx.b
        (if is_signed_cty to_cty then Ir.Fptosi else Ir.Fptoui)
        v (scalar_ty to_cty)
    | Float _, Float _ ->
      B.cast ctx.b
        (if scalar_ty to_cty = Ir.F64 then Ir.Fpext else Ir.Fptrunc)
        v (scalar_ty to_cty)
    | _ -> v

and emit_conditional ctx c a bexp ty =
  let f = current_function ctx in
  let then_b = Ir.create_block ~name:"cond.then" f in
  let else_b = Ir.create_block ~name:"cond.else" f in
  let merge = Ir.create_block ~name:"cond.end" f in
  let cv = emit_rvalue ctx c in
  B.cond_br ctx.b (to_bool_i1 ctx c.e_ty cv) then_b else_b;
  B.set_insertion_point ctx.b then_b;
  let av = emit_rvalue ctx a in
  let then_end = B.insertion_block ctx.b in
  B.br ctx.b merge;
  B.set_insertion_point ctx.b else_b;
  let bv = emit_rvalue ctx bexp in
  let else_end = B.insertion_block ctx.b in
  B.br ctx.b merge;
  B.set_insertion_point ctx.b merge;
  if scalar_ty ty = Ir.Void then Ir.Undef Ir.I32
  else B.phi ctx.b (scalar_ty ty) [ (av, then_end); (bv, else_end) ]

and emit_call ctx callee args ret_cty =
  let rec strip e =
    match e.e_kind with
    | Paren inner | Implicit_cast (_, inner) -> strip inner
    | _ -> e
  in
  let args_v = List.map (emit_rvalue ctx) args in
  match (strip callee).e_kind with
  | Fn_ref fn ->
    let target =
      if fn.fn_builtin then Ir.Runtime fn.fn_name
      else Ir.Direct (ir_function ctx fn)
    in
    B.call ctx.b ~ret:(scalar_ty ret_cty) target args_v
  | _ -> unsupported "indirect calls"

and emit_condition ctx e =
  (* Comparisons used directly as conditions skip the int round trip
     (zext to i32 then icmp ne 0), as Clang's EmitBranchOnBoolExpr does. *)
  let rec strip e =
    match e.e_kind with
    | Paren inner -> strip inner
    | Implicit_cast ((CK_int_to_bool | CK_integral), inner)
      when (match inner.e_kind with Binary _ -> true | _ -> false) ->
      strip inner
    | _ -> e
  in
  match (strip e).e_kind with
  | Binary (((B_lt | B_le | B_gt | B_ge | B_eq | B_ne) as op), lhs, rhs) -> (
    let l = emit_rvalue ctx lhs and r = emit_rvalue ctx rhs in
    match lhs.e_ty with
    | Float _ -> B.fcmp ctx.b (fcmp_ir op) l r
    | _ -> B.icmp ctx.b (cmp_ir op lhs.e_ty) l r)
  | Binary (B_land, lhs, rhs) ->
    let v = emit_logical ctx B_land lhs rhs in
    to_bool_i1 ctx Ctype.int_t v
  | Binary (B_lor, lhs, rhs) ->
    let v = emit_logical ctx B_lor lhs rhs in
    to_bool_i1 ctx Ctype.int_t v
  | _ ->
    let v = emit_rvalue ctx e in
    to_bool_i1 ctx e.e_ty v

(* ---- statements ------------------------------------------------------------- *)

(* After an unconditional transfer (break/return), emission continues in a
   fresh unreachable block that cleanup passes remove. *)
let start_dead_block ctx name =
  let b = new_block ctx name in
  B.set_insertion_point ctx.b b

let attach_unroll_md latch md =
  latch.Ir.b_loop_md <- { latch.Ir.b_loop_md with Ir.md_unroll = Some md }

let hint_md = function
  | { lh_option = Hint_unroll_enable; _ } -> Ir.Unroll_enable
  | { lh_option = Hint_unroll_full; _ } -> Ir.Unroll_full
  | { lh_option = Hint_unroll_disable; _ } -> Ir.Unroll_disable
  | { lh_option = Hint_unroll_count; lh_value } ->
    Ir.Unroll_count (Option.value lh_value ~default:2)

let rec emit_stmt ctx s =
  (* Stamp the statement's source location onto every instruction this
     lowering creates (see [Ir.mk_inst]); nested statements re-stamp on
     entry, so location granularity is the innermost statement. *)
  Ir.set_emit_loc s.s_loc;
  match s.s_kind with
  | Null_stmt -> ()
  | Compound stmts -> List.iter (emit_stmt ctx) stmts
  | Expr_stmt e -> ignore (emit_rvalue ctx e)
  | Decl_stmt vars ->
    List.iter
      (fun v ->
        let addr = declare_var ctx v in
        match v.v_init with
        | Some init -> B.store ctx.b (emit_rvalue ctx init) ~ptr:addr
        | None -> ())
      vars
  | Switch (cond, body) ->
    let v = emit_rvalue ctx cond in
    let origin = B.insertion_block ctx.b in
    let exit_b = new_block ctx "sw.end" in
    let cases = ref [] in
    let default = ref None in
    ctx.switch_cases <- cases :: ctx.switch_cases;
    ctx.switch_defaults <- default :: ctx.switch_defaults;
    ctx.break_targets <- exit_b :: ctx.break_targets;
    (* Statements before the first label are unreachable, per C. *)
    start_dead_block ctx "sw.body.entry";
    emit_stmt ctx body;
    B.br ctx.b exit_b;
    ctx.switch_cases <- List.tl ctx.switch_cases;
    ctx.switch_defaults <- List.tl ctx.switch_defaults;
    ctx.break_targets <- List.tl ctx.break_targets;
    (* Dispatch: a compare chain from the origin block (Clang emits a
       switch instruction; the chain is its expansion). *)
    B.set_insertion_point ctx.b origin;
    let final_target = Option.value !default ~default:exit_b in
    List.iter
      (fun (value, target) ->
        let next = new_block ctx "sw.check" in
        let cmp =
          B.icmp ctx.b Ir.Ieq v (Ir.Const_int (Ir.value_ty v, value))
        in
        B.cond_br ctx.b cmp target next;
        B.set_insertion_point ctx.b next)
      (List.rev !cases);
    B.br ctx.b final_target;
    B.set_insertion_point ctx.b exit_b
  | Case { case_value; case_body; _ } -> (
    match ctx.switch_cases with
    | cases :: _ ->
      let blk = new_block ctx "sw.case" in
      B.br ctx.b blk (* fallthrough from the previous statement *);
      cases := (case_value, blk) :: !cases;
      B.set_insertion_point ctx.b blk;
      emit_stmt ctx case_body
    | [] -> unsupported "case label outside a switch")
  | Default body -> (
    match ctx.switch_defaults with
    | default :: _ ->
      let blk = new_block ctx "sw.default" in
      B.br ctx.b blk;
      default := Some blk;
      B.set_insertion_point ctx.b blk;
      emit_stmt ctx body
    | [] -> unsupported "default label outside a switch")
  | If (c, then_s, else_s) ->
    let then_b = new_block ctx "if.then" in
    let merge = new_block ctx "if.end" in
    let else_b =
      match else_s with Some _ -> new_block ctx "if.else" | None -> merge
    in
    B.cond_br ctx.b (emit_condition ctx c) then_b else_b;
    B.set_insertion_point ctx.b then_b;
    emit_stmt ctx then_s;
    B.br ctx.b merge;
    (match else_s with
    | Some es ->
      B.set_insertion_point ctx.b else_b;
      emit_stmt ctx es;
      B.br ctx.b merge
    | None -> ());
    B.set_insertion_point ctx.b merge
  | While _ | Do_while _ | For _ | Range_for _ -> ignore (emit_loop_stmt ctx s)
  | Break -> (
    match ctx.break_targets with
    | target :: _ ->
      B.br ctx.b target;
      start_dead_block ctx "after.break"
    | [] -> unsupported "break outside a loop")
  | Continue -> (
    match ctx.continue_targets with
    | target :: _ ->
      B.br ctx.b target;
      start_dead_block ctx "after.continue"
    | [] -> unsupported "continue outside a loop")
  | Return e ->
    (match e with
    | Some e -> B.ret ctx.b (Some (emit_rvalue ctx e))
    | None -> B.ret ctx.b None);
    start_dead_block ctx "after.return"
  | Attributed (attrs, sub) -> (
    match emit_loop_stmt ctx sub with
    | Some latch ->
      List.iter (fun (Loop_hint h) -> attach_unroll_md latch (hint_md h)) attrs
    | None -> ())
  | Captured c -> emit_stmt ctx c.cap_body
  | Omp_canonical_loop ocl ->
    (* Standalone canonical loop (error recovery): emit the literal loop. *)
    ignore (emit_loop_stmt ctx ocl.ocl_loop)
  | Omp_directive d -> emit_omp ctx d
  | Error_stmt _ ->
    unsupported "statement contains errors; code generation unavailable"

(* Emit a plain loop statement; returns the latch block for metadata. *)
and emit_loop_stmt ctx s : Ir.block option =
  match s.s_kind with
  | For { for_init; for_cond; for_inc; for_body } ->
    Option.iter (emit_stmt ctx) for_init;
    let cond_b = new_block ctx "for.cond" in
    let body_b = new_block ctx "for.body" in
    let inc_b = new_block ctx "for.inc" in
    let exit_b = new_block ctx "for.end" in
    B.br ctx.b cond_b;
    B.set_insertion_point ctx.b cond_b;
    (match for_cond with
    | Some c -> B.cond_br ctx.b (emit_condition ctx c) body_b exit_b
    | None -> B.br ctx.b body_b);
    B.set_insertion_point ctx.b body_b;
    ctx.break_targets <- exit_b :: ctx.break_targets;
    ctx.continue_targets <- inc_b :: ctx.continue_targets;
    emit_stmt ctx for_body;
    ctx.break_targets <- List.tl ctx.break_targets;
    ctx.continue_targets <- List.tl ctx.continue_targets;
    B.br ctx.b inc_b;
    B.set_insertion_point ctx.b inc_b;
    Option.iter (fun e -> ignore (emit_rvalue ctx e)) for_inc;
    B.br ctx.b cond_b;
    B.set_insertion_point ctx.b exit_b;
    Some inc_b
  | Range_for rf ->
    (* Direct emission of the Fig. 8 semantics over an array. *)
    let elem_cty, bound =
      match rf.rf_range.e_ty with
      | Array (elem, Some n) -> (elem, n)
      | _ -> unsupported "range-for over a non-array"
    in
    let elem_size = Ctype.size_in_bytes elem_cty in
    let range_addr = emit_lvalue ctx rf.rf_range in
    Hashtbl.replace ctx.env rf.rf_range_var.v_id range_addr;
    let begin_slot = alloca_entry ctx ~name:"__begin" Ir.Ptr in
    Hashtbl.replace ctx.env rf.rf_begin_var.v_id begin_slot;
    B.store ctx.b range_addr ~ptr:begin_slot;
    let end_slot = alloca_entry ctx ~name:"__end" Ir.Ptr in
    Hashtbl.replace ctx.env rf.rf_end_var.v_id end_slot;
    let end_v =
      B.gep ctx.b ~elt_ty:Ir.I8 range_addr (Ir.i64_const (bound * elem_size))
    in
    B.store ctx.b end_v ~ptr:end_slot;
    let cond_b = new_block ctx "rangefor.cond" in
    let body_b = new_block ctx "rangefor.body" in
    let inc_b = new_block ctx "rangefor.inc" in
    let exit_b = new_block ctx "rangefor.end" in
    B.br ctx.b cond_b;
    B.set_insertion_point ctx.b cond_b;
    let cur = B.load ctx.b Ir.Ptr begin_slot in
    let fin = B.load ctx.b Ir.Ptr end_slot in
    let cmp = B.icmp ctx.b Ir.Ine cur fin in
    B.cond_br ctx.b cmp body_b exit_b;
    B.set_insertion_point ctx.b body_b;
    let cur = B.load ctx.b Ir.Ptr begin_slot in
    (if rf.rf_byref then Hashtbl.replace ctx.env rf.rf_var.v_id cur
     else begin
       let copy = alloca_entry ctx ~name:rf.rf_var.v_name (scalar_ty elem_cty) in
       let v = B.load ctx.b (scalar_ty elem_cty) cur in
       B.store ctx.b v ~ptr:copy;
       Hashtbl.replace ctx.env rf.rf_var.v_id copy
     end);
    ctx.break_targets <- exit_b :: ctx.break_targets;
    ctx.continue_targets <- inc_b :: ctx.continue_targets;
    emit_stmt ctx rf.rf_body;
    ctx.break_targets <- List.tl ctx.break_targets;
    ctx.continue_targets <- List.tl ctx.continue_targets;
    B.br ctx.b inc_b;
    B.set_insertion_point ctx.b inc_b;
    let cur = B.load ctx.b Ir.Ptr begin_slot in
    let next = B.gep ctx.b ~elt_ty:Ir.I8 cur (Ir.i64_const elem_size) in
    B.store ctx.b next ~ptr:begin_slot;
    B.br ctx.b cond_b;
    B.set_insertion_point ctx.b exit_b;
    Some inc_b
  | While (c, body) ->
    let cond_b = new_block ctx "while.cond" in
    let body_b = new_block ctx "while.body" in
    let exit_b = new_block ctx "while.end" in
    B.br ctx.b cond_b;
    B.set_insertion_point ctx.b cond_b;
    B.cond_br ctx.b (emit_condition ctx c) body_b exit_b;
    B.set_insertion_point ctx.b body_b;
    ctx.break_targets <- exit_b :: ctx.break_targets;
    ctx.continue_targets <- cond_b :: ctx.continue_targets;
    emit_stmt ctx body;
    ctx.break_targets <- List.tl ctx.break_targets;
    ctx.continue_targets <- List.tl ctx.continue_targets;
    (* The block holding the back edge is the loop's latch. *)
    let latch = B.insertion_block ctx.b in
    B.br ctx.b cond_b;
    B.set_insertion_point ctx.b exit_b;
    Some latch
  | Do_while (body, c) ->
    let body_b = new_block ctx "do.body" in
    let cond_b = new_block ctx "do.cond" in
    let exit_b = new_block ctx "do.end" in
    B.br ctx.b body_b;
    B.set_insertion_point ctx.b body_b;
    ctx.break_targets <- exit_b :: ctx.break_targets;
    ctx.continue_targets <- cond_b :: ctx.continue_targets;
    emit_stmt ctx body;
    ctx.break_targets <- List.tl ctx.break_targets;
    ctx.continue_targets <- List.tl ctx.continue_targets;
    B.br ctx.b cond_b;
    B.set_insertion_point ctx.b cond_b;
    B.cond_br ctx.b (emit_condition ctx c) body_b exit_b;
    B.set_insertion_point ctx.b exit_b;
    Some cond_b
  | Compound [ single ] -> emit_loop_stmt ctx single
  | Attributed (attrs, sub) ->
    let latch = emit_loop_stmt ctx sub in
    Option.iter
      (fun l -> List.iter (fun (Loop_hint h) -> attach_unroll_md l (hint_md h)) attrs)
      latch;
    latch
  | Omp_canonical_loop ocl -> emit_loop_stmt ctx ocl.ocl_loop
  | Omp_directive inner when Mc_ast.Classify.is_loop_transformation inner.dir_kind
    -> (
    (* A nested transformation emitted as a statement: tile materialises
       its transformed AST; unroll defers to the mid-end (paper §2.2). *)
    match inner.dir_transformed with
    | Some tr when inner.dir_kind <> D_unroll ->
      (* tile/reverse/interchange/fuse: materialise the transformed AST. *)
      emit_transformation_preinits ctx inner;
      emit_loop_stmt ctx tr
    | Some tr ->
      (* Standalone unroll with partial: still cheaper to defer via
         metadata on the *original* loop (paper §2.2). *)
      ignore tr;
      emit_deferred_unroll ctx inner
    | None -> emit_deferred_unroll ctx inner)
  | _ ->
    emit_stmt ctx s;
    None

(* A consumed transformation chain's .capture_expr. temporaries must be
   live before the outermost generated loop runs: emit every level's
   preinits, innermost first. *)
and emit_transformation_preinits ctx (d : directive) =
  (match d.dir_assoc with
  | Some assoc -> (
    let rec unwrap s =
      match s.s_kind with Compound [ x ] -> unwrap x | _ -> s
    in
    match (unwrap assoc).s_kind with
    | Omp_directive inner
      when Mc_ast.Classify.is_loop_transformation inner.dir_kind ->
      emit_transformation_preinits ctx inner
    | _ -> ())
  | None -> ());
  Option.iter (emit_stmt ctx) d.dir_preinits

(* Unroll emitted by tagging the underlying loop with metadata. *)
and emit_deferred_unroll ctx d : Ir.block option =
  let md =
    List.find_map
      (function
        | C_full -> Some Ir.Unroll_full
        | C_partial (Some (n, _)) -> Some (Ir.Unroll_count n)
        | C_partial None -> Some (Ir.Unroll_count 2)
        | _ -> None)
      d.dir_clauses
    |> Option.value ~default:Ir.Unroll_enable
  in
  match d.dir_assoc with
  | Some assoc ->
    let latch = emit_loop_stmt ctx assoc in
    Option.iter (fun l -> attach_unroll_md l md) latch;
    latch
  | None -> None

(* ---- OpenMP: shared helpers -------------------------------------------------- *)

and schedule_of clauses =
  List.find_map (function C_schedule (k, c) -> Some (k, c) | _ -> None) clauses

and has_nowait clauses = List.exists (fun c -> c = C_nowait) clauses

and reduction_identity op cty =
  match (op, cty) with
  | Red_add, Float _ -> Ir.Const_float (scalar_ty cty, 0.0)
  | Red_mul, Float _ -> Ir.Const_float (scalar_ty cty, 1.0)
  | Red_min, Float _ -> Ir.Const_float (scalar_ty cty, infinity)
  | Red_max, Float _ -> Ir.Const_float (scalar_ty cty, neg_infinity)
  | Red_add, _ -> int_const cty 0L
  | Red_mul, _ -> int_const cty 1L
  | Red_band, _ -> int_const cty (-1L)
  | Red_bor, _ -> int_const cty 0L
  | Red_min, _ ->
    let w = Option.value (Ctype.int_width cty) ~default:Int_ops.i64 in
    int_const cty (Int_ops.max_value w)
  | Red_max, _ ->
    let w = Option.value (Ctype.int_width cty) ~default:Int_ops.i64 in
    int_const cty (Int_ops.min_value w)

and reduction_combine ctx op cty acc v =
  match (op, cty) with
  | Red_add, Float _ -> B.fadd ctx.b acc v
  | Red_mul, Float _ -> B.fmul ctx.b acc v
  | Red_add, _ -> B.add ctx.b acc v
  | Red_mul, _ -> B.mul ctx.b acc v
  | Red_band, _ -> B.and_ ctx.b acc v
  | Red_bor, _ -> B.or_ ctx.b acc v
  | Red_min, Float _ ->
    let c = B.fcmp ctx.b Ir.Folt acc v in
    B.select ctx.b c acc v
  | Red_max, Float _ ->
    let c = B.fcmp ctx.b Ir.Fogt acc v in
    B.select ctx.b c acc v
  | Red_min, _ ->
    let c =
      B.icmp ctx.b (if is_signed_cty cty then Ir.Islt else Ir.Iult) acc v
    in
    B.select ctx.b c acc v
  | Red_max, _ ->
    let c =
      B.icmp ctx.b (if is_signed_cty cty then Ir.Isgt else Ir.Iugt) acc v
    in
    B.select ctx.b c acc v

(* Applies private/firstprivate/reduction clauses around a region; returns
   the finaliser that writes reductions back. *)
and apply_data_sharing ctx clauses =
  let finalisers = ref [] in
  List.iter
    (function
      | C_private vars ->
        List.iter
          (fun v ->
            let slot = alloca_entry ctx ~name:(v.v_name ^ ".private") (scalar_ty v.v_ty) in
            Hashtbl.replace ctx.env v.v_id slot)
          vars
      | C_firstprivate vars ->
        List.iter
          (fun v ->
            let original = var_addr ctx v in
            let slot =
              alloca_entry ctx ~name:(v.v_name ^ ".firstprivate") (scalar_ty v.v_ty)
            in
            let init = B.load ctx.b (scalar_ty v.v_ty) original in
            B.store ctx.b init ~ptr:slot;
            Hashtbl.replace ctx.env v.v_id slot)
          vars
      | C_reduction (op, vars) ->
        List.iter
          (fun v ->
            let original = var_addr ctx v in
            let slot =
              alloca_entry ctx ~name:(v.v_name ^ ".red") (scalar_ty v.v_ty)
            in
            B.store ctx.b (reduction_identity op v.v_ty) ~ptr:slot;
            Hashtbl.replace ctx.env v.v_id slot;
            finalisers :=
              (fun () ->
                ignore
                  (B.call ctx.b ~ret:Ir.Void (Ir.Runtime "__kmpc_critical") []);
                let shared = B.load ctx.b (scalar_ty v.v_ty) original in
                let local = B.load ctx.b (scalar_ty v.v_ty) slot in
                let combined = reduction_combine ctx op v.v_ty shared local in
                B.store ctx.b combined ~ptr:original;
                ignore
                  (B.call ctx.b ~ret:Ir.Void (Ir.Runtime "__kmpc_end_critical") []))
              :: !finalisers)
          vars
      | _ -> ())
    clauses;
  fun () -> List.iter (fun f -> f ()) (List.rev !finalisers)

(* Runs [body] inside a freshly outlined parallel region. *)
and emit_parallel_region ctx d ~body =
  let cap =
    match d.dir_assoc with
    | Some { s_kind = Captured c; _ } -> c
    | _ -> unsupported "parallel directive without a captured statement"
  in
  let captures = cap.cap_captures @ cap.cap_byval in
  let capture_addrs = List.map (var_addr ctx) captures in
  let num_threads =
    List.find_map
      (function C_num_threads e -> Some (emit_rvalue ctx e) | _ -> None)
      d.dir_clauses
  in
  let if_cond =
    List.find_map
      (function C_if e -> Some (emit_condition ctx e) | _ -> None)
      d.dir_clauses
  in
  let saved_env = ctx.env and saved_entry = ctx.entry in
  let saved_fn = ctx.cur_fn in
  let saved_breaks = ctx.break_targets and saved_conts = ctx.continue_targets in
  Ob.create_parallel ctx.b ctx.m
    ~name:(current_function ctx).Ir.f_name ~num_threads ~if_cond
    ~captures:capture_addrs
    ~body_gen:(fun _b ~get_capture ->
      let outlined_entry = B.insertion_block ctx.b in
      ctx.cur_fn <- outlined_entry.Ir.b_parent;
      ctx.entry <- Some outlined_entry;
      ctx.env <- Hashtbl.copy saved_env;
      ctx.break_targets <- [];
      ctx.continue_targets <- [];
      List.iteri
        (fun i v -> Hashtbl.replace ctx.env v.v_id (get_capture i))
        captures;
      let finalize = apply_data_sharing ctx d.dir_clauses in
      body cap;
      finalize ());
  ctx.env <- saved_env;
  ctx.entry <- saved_entry;
  ctx.cur_fn <- saved_fn;
  ctx.break_targets <- saved_breaks;
  ctx.continue_targets <- saved_conts

(* ---- OpenMP classic: the helper-driven worksharing loop ------------------- *)

(* Walk the associated statement down to the innermost loop body, emitting
   the preinits of any consumed transformations on the way (their
   .capture_expr. temporaries must be live before the generated loops). *)
and collect_nest_body ctx s depth =
  let rec go s depth =
    match s.s_kind with
    | Captured c -> go c.cap_body depth
    | Compound [ single ] -> go single depth
    | Attributed (_, sub) -> go sub depth
    | Omp_directive inner
      when Mc_ast.Classify.is_loop_transformation inner.dir_kind -> (
      Option.iter (emit_stmt ctx) inner.dir_preinits;
      match inner.dir_transformed with
      | Some tr -> go tr depth
      | None -> unsupported "consumed transformation generates no loop")
    | For parts ->
      if depth = 1 then parts.for_body else go parts.for_body (depth - 1)
    | Range_for rf ->
      if depth = 1 then rf.rf_body
      else unsupported "nested range-for in a collapsed nest"
    | _ -> unsupported "malformed loop nest in codegen"
  in
  go s depth

(* The classic OMPLoopDirective emission: everything is steered by the
   shadow loop helpers Sema prepared (paper §1.2/§2). *)
and emit_driven_loop ctx d ~workshare : Ir.block =
  let h =
    match d.dir_loop_helpers with
    | Some h -> h
    | None -> unsupported "loop directive without shadow helpers"
  in
  let body_stmt =
    collect_nest_body ctx (Option.get d.dir_assoc) (List.length h.lhs_loops)
  in
  let declare_with_init v =
    let addr = declare_var ctx v in
    (match v.v_init with
    | Some init -> B.store ctx.b (emit_rvalue ctx init) ~ptr:addr
    | None -> ());
    addr
  in
  List.iter (fun v -> ignore (declare_with_init v)) h.lhs_capture_exprs;
  let iv_addr = declare_with_init h.lhs_iteration_variable in
  ignore iv_addr;
  let lb_addr = declare_with_init h.lhs_lower_bound_variable in
  let ub_addr = declare_with_init h.lhs_upper_bound_variable in
  let stride_addr = declare_with_init h.lhs_stride_variable in
  let islast_addr = declare_with_init h.lhs_is_last_iter_variable in
  ignore (emit_rvalue ctx h.lhs_calc_last_iteration);
  let uty = scalar_ty h.lhs_iteration_variable.v_ty in
  let sched = schedule_of d.dir_clauses in
  let dynamic =
    workshare
    && match sched with
       | Some ((Sched_dynamic | Sched_guided), _) -> true
       | _ -> false
  in
  let chunk_value default =
    match sched with
    | Some (_, Some chunk_e) ->
      let v = emit_rvalue ctx chunk_e in
      cast_int ctx ~from_cty:chunk_e.e_ty ~to_cty:h.lhs_iteration_variable.v_ty v
    | _ -> Ir.Const_int (uty, default)
  in
  (* Zero-trip guard: the logical space is unsigned, so ub = 0-1 would wrap. *)
  let then_b = new_block ctx "omp.precond.then" in
  let end_b = new_block ctx "omp.precond.end" in
  B.cond_br ctx.b (emit_condition ctx h.lhs_precondition) then_b end_b;
  B.set_insertion_point ctx.b then_b;
  (* Dynamic/guided schedules pull [lb, ub] chunks from the runtime queue
     around the inner loop; the static schedule gets its single chunk from
     __kmpc_for_static_init up front. *)
  let dispatch_cond =
    if dynamic then begin
      let sites = Domain.DLS.get dispatch_site_counter in
      incr sites;
      let site = Ir.i32_const !sites in
      let guided =
        match sched with Some (Sched_guided, _) -> true | _ -> false
      in
      let trip = emit_rvalue ctx h.lhs_num_iterations in
      let init_name, next_name =
        if uty = Ir.I64 then ("__kmpc_dispatch_init_8u", "__kmpc_dispatch_next_8u")
        else ("__kmpc_dispatch_init_4u", "__kmpc_dispatch_next_4u")
      in
      ignore
        (B.call ctx.b ~ret:Ir.Void (Ir.Runtime init_name)
           [ site; trip; chunk_value 1L;
             Ir.i32_const (if guided then 3 else 2) ]);
      let dcond = new_block ctx "omp.dispatch.cond" in
      let dbody = new_block ctx "omp.dispatch.body" in
      B.br ctx.b dcond;
      B.set_insertion_point ctx.b dcond;
      let got =
        B.call ctx.b ~ret:Ir.I32 (Ir.Runtime next_name)
          [ site; lb_addr; ub_addr ]
      in
      let more = B.icmp ctx.b Ir.Ine got (Ir.i32_const 0) in
      B.cond_br ctx.b more dbody end_b;
      B.set_insertion_point ctx.b dbody;
      Some dcond
    end
    else begin
      if workshare then begin
        ignore
          (B.call ctx.b ~ret:Ir.Void
             (Ir.Runtime
                (if uty = Ir.I64 then "__kmpc_for_static_init_8u"
                 else "__kmpc_for_static_init_4u"))
             [ islast_addr; lb_addr; ub_addr; stride_addr;
               Ir.Const_int (uty, 1L); chunk_value 0L ]);
        ignore (emit_rvalue ctx h.lhs_ensure_upper_bound)
      end;
      None
    end
  in
  ignore (emit_rvalue ctx h.lhs_init);
  let cond_b = new_block ctx "omp.inner.for.cond" in
  let body_b = new_block ctx "omp.inner.for.body" in
  let inc_b = new_block ctx "omp.inner.for.inc" in
  let exit_b = new_block ctx "omp.inner.for.exit" in
  B.br ctx.b cond_b;
  B.set_insertion_point ctx.b cond_b;
  B.cond_br ctx.b (emit_condition ctx h.lhs_cond) body_b exit_b;
  B.set_insertion_point ctx.b body_b;
  (* Private copies of the loop counters, updated from the logical iv. *)
  List.iter
    (fun pl ->
      let priv = declare_var ctx pl.pl_private_counter in
      Hashtbl.replace ctx.env pl.pl_counter.v_id priv;
      ignore (emit_rvalue ctx pl.pl_counter_update))
    h.lhs_loops;
  emit_stmt ctx body_stmt;
  B.br ctx.b inc_b;
  B.set_insertion_point ctx.b inc_b;
  ignore (emit_rvalue ctx h.lhs_inc);
  B.br ctx.b cond_b;
  B.set_insertion_point ctx.b exit_b;
  (match dispatch_cond with
  | Some dcond ->
    (* Back to the dispatcher for the next chunk. *)
    B.br ctx.b dcond
  | None ->
    if workshare then
      ignore (B.call ctx.b ~ret:Ir.Void (Ir.Runtime "__kmpc_for_static_fini") []);
    B.br ctx.b end_b);
  B.set_insertion_point ctx.b end_b;
  if workshare && not (has_nowait d.dir_clauses) then
    ignore (B.call ctx.b ~ret:Ir.Void (Ir.Runtime "__kmpc_barrier") []);
  inc_b

and simdlen_of clauses =
  List.find_map (function C_simdlen (n, _) -> Some n | _ -> None) clauses

and attach_simd_md latch simdlen =
  latch.Ir.b_loop_md <-
    { latch.Ir.b_loop_md with
      Ir.md_vectorize_width = Some (Option.value simdlen ~default:0) }

and is_simd_kind = function
  | D_simd | D_for_simd | D_parallel_for_simd -> true
  | _ -> false

(* ---- OpenMP irbuilder path -------------------------------------------------- *)

(* Bind the per-iteration state of an OMPCanonicalLoop inside the skeleton
   body: store the logical counter, run the loop-value function, and point
   the user variable's address at the result. *)
and bind_canonical_iteration ctx (ocl : canonical_loop) ~iv =
  let vres, logical =
    match ocl.ocl_loop_value.cap_params with
    | [ a; b ] -> (a, b)
    | _ -> unsupported "malformed loop-value function"
  in
  let lslot = declare_var ctx logical in
  B.store ctx.b iv ~ptr:lslot;
  let vslot = declare_var ctx vres in
  emit_stmt ctx ocl.ocl_loop_value.cap_body;
  let user_var =
    match ocl.ocl_var_ref.e_kind with
    | Decl_ref v -> v
    | _ -> unsupported "malformed user-variable reference"
  in
  match ocl.ocl_loop.s_kind with
  | Range_for rf ->
    let cur = B.load ctx.b Ir.Ptr vslot in
    if rf.rf_byref then Hashtbl.replace ctx.env user_var.v_id cur
    else begin
      let elem_ty = scalar_ty user_var.v_ty in
      let copy = alloca_entry ctx ~name:user_var.v_name elem_ty in
      B.store ctx.b (B.load ctx.b elem_ty cur) ~ptr:copy;
      Hashtbl.replace ctx.env user_var.v_id copy
    end
  | _ -> Hashtbl.replace ctx.env user_var.v_id vslot

(* Emit a canonical loop's trip count by calling its distance function. *)
and emit_distance ctx (ocl : canonical_loop) =
  (match ocl.ocl_loop.s_kind with
  | Range_for rf ->
    (* The helper variables (__range/__begin/__end) feed the distance and
       loop-value expressions. *)
    let range_addr = emit_lvalue ctx rf.rf_range in
    Hashtbl.replace ctx.env rf.rf_range_var.v_id range_addr;
    let bslot = declare_var ctx rf.rf_begin_var in
    (match rf.rf_begin_var.v_init with
    | Some e -> B.store ctx.b (emit_rvalue ctx e) ~ptr:bslot
    | None -> ());
    let eslot = declare_var ctx rf.rf_end_var in
    (match rf.rf_end_var.v_init with
    | Some e -> B.store ctx.b (emit_rvalue ctx e) ~ptr:eslot
    | None -> ())
  | _ -> ());
  let result_var =
    match ocl.ocl_distance.cap_params with
    | [ v ] -> v
    | _ -> unsupported "malformed distance function"
  in
  let rslot = declare_var ctx result_var in
  emit_stmt ctx ocl.ocl_distance.cap_body;
  B.load ctx.b (scalar_ty result_var.v_ty) rslot

and canonical_loop_body (ocl : canonical_loop) =
  match ocl.ocl_loop.s_kind with
  | For parts -> parts.for_body
  | Range_for rf -> rf.rf_body
  | _ -> unsupported "OMPCanonicalLoop does not wrap a loop"

and emit_canonical_loop ctx (ocl : canonical_loop) : Cli.t =
  let tc = emit_distance ctx ocl in
  Ob.create_canonical_loop ctx.b ~trip_count:tc
    ~body_gen:(fun _b iv ->
      bind_canonical_iteration ctx ocl ~iv;
      emit_stmt ctx (canonical_loop_body ocl))
    ()

(* A perfectly nested chain of OMPCanonicalLoops (tile/collapse targets). *)
and collect_canonical_chain s =
  let rec unwrap s =
    match s.s_kind with
    | Compound [ single ] -> unwrap single
    | Captured c -> unwrap c.cap_body
    | _ -> s
  in
  let rec go s acc =
    match (unwrap s).s_kind with
    | Omp_canonical_loop ocl -> (
      let body = canonical_loop_body ocl in
      match (unwrap body).s_kind with
      | Omp_canonical_loop _ -> go body (ocl :: acc)
      | _ -> List.rev (ocl :: acc))
    | _ -> List.rev acc
  in
  go s []

and emit_canonical_nest ctx s depth : Cli.t list =
  let chain = collect_canonical_chain s in
  if List.length chain < depth then
    unsupported "loop nest shallower than the directive requires";
  let chain = List.filteri (fun i _ -> i < depth) chain in
  (* All trip counts first: tile/collapse require them to dominate the
     outermost preheader. *)
  let tcs = List.map (emit_distance ctx) chain in
  let clis = Array.make depth None in
  let rec build i =
    let ocl = List.nth chain i in
    let cli =
      Ob.create_canonical_loop ctx.b ~trip_count:(List.nth tcs i)
        ~body_gen:(fun _b iv ->
          bind_canonical_iteration ctx ocl ~iv;
          if i < depth - 1 then build (i + 1)
          else emit_stmt ctx (canonical_loop_body (List.nth chain (depth - 1))))
        ()
    in
    clis.(i) <- Some cli
  in
  build 0;
  Array.to_list clis |> List.map Option.get

and tile_sizes_of clauses =
  List.find_map (function C_sizes s -> Some (List.map fst s) | _ -> None) clauses

and permutation_of_clauses clauses =
  match
    List.find_map (function C_permutation ps -> Some ps | _ -> None) clauses
  with
  | Some ps -> List.map (fun (p, _) -> p - 1) ps
  | None -> [ 1; 0 ]

(* [#pragma omp fuse] on the irbuilder path: emit every member of the
   loop sequence as a real canonical loop (they chain sequentially, each
   after block entering the next preheader), then hand the handles to
   [Ob.fuse_loops], which performs the block surgery.  Returns the fused
   loop's handle. *)
and emit_fused_loop ctx (d : directive) : Cli.t =
  let members =
    match Option.map (fun s -> s.s_kind) d.dir_assoc with
    | Some (Compound members) -> members
    | _ -> unsupported "fuse without a loop sequence"
  in
  let ocls =
    List.map
      (fun m ->
        let rec unwrap s =
          match s.s_kind with Compound [ x ] -> unwrap x | _ -> s
        in
        match (unwrap m).s_kind with
        | Omp_canonical_loop ocl -> ocl
        | _ -> unsupported "fuse member is not a canonical loop")
      members
  in
  (* All distances first, so every trip count dominates the first member's
     preheader where fuse_loops computes the maximum. *)
  let tcs = List.map (emit_distance ctx) ocls in
  (* Normalise the counter widths to the widest member: fuse_loops
     requires one shared trip-count type. *)
  let widest =
    if List.exists (fun tc -> Ir.value_ty tc = Ir.I64) tcs then Ir.I64 else Ir.I32
  in
  let tcs_w =
    List.map
      (fun tc ->
        if Ir.value_ty tc = widest then tc else B.cast ctx.b Ir.Zext tc widest)
      tcs
  in
  let clis =
    List.mapi
      (fun k ocl ->
        Ob.create_canonical_loop ctx.b
          ~name:(Printf.sprintf "fuse.member.%d" k)
          ~trip_count:(List.nth tcs_w k)
          ~body_gen:(fun _b iv ->
            let iv_k =
              let target = Ir.value_ty (List.nth tcs k) in
              if Ir.value_ty iv = target then iv
              else if target = Ir.I64 then B.cast ctx.b Ir.Zext iv Ir.I64
              else B.cast ctx.b Ir.Trunc iv Ir.I32
            in
            bind_canonical_iteration ctx ocl ~iv:iv_k;
            emit_stmt ctx (canonical_loop_body ocl))
          ())
      ocls
  in
  Ob.fuse_loops ctx.b clis

(* [#pragma omp fission] on the irbuilder path: one canonical loop per
   body statement, sharing a single trip-count value (the dual of
   [emit_fused_loop]). *)
and emit_fission_loops ctx (d : directive) =
  let rec unwrap s =
    match s.s_kind with
    | Compound [ x ] -> unwrap x
    | Captured c -> unwrap c.cap_body
    | _ -> s
  in
  match (unwrap (Option.get d.dir_assoc)).s_kind with
  | Omp_canonical_loop ocl ->
    let tc = emit_distance ctx ocl in
    let members =
      match (canonical_loop_body ocl).s_kind with
      | Compound (_ :: _ as ms) -> ms
      | _ -> [ canonical_loop_body ocl ]
    in
    let bodies =
      List.map
        (fun m _b iv ->
          bind_canonical_iteration ctx ocl ~iv;
          emit_stmt ctx m)
        members
    in
    ignore (Ob.fission_loops ctx.b ~trip_count:tc ~bodies ())
  | _ -> unsupported "fission without a canonical loop"

and partial_factor_of clauses =
  List.find_map
    (function
      | C_partial (Some (n, _)) -> Some n
      | C_partial None -> Some 2 (* paper §2.2 default *)
      | _ -> None)
    clauses

(* Obtain a CanonicalLoopInfo handle for a (possibly transformed) loop. *)
and emit_loop_handle ctx s : Cli.t =
  match s.s_kind with
  | Compound [ single ] -> emit_loop_handle ctx single
  | Captured c -> emit_loop_handle ctx c.cap_body
  | Omp_canonical_loop ocl -> emit_canonical_loop ctx ocl
  | Omp_directive inner when inner.dir_kind = D_unroll ->
    let cli = emit_loop_handle ctx (Option.get inner.dir_assoc) in
    let factor =
      match partial_factor_of inner.dir_clauses with
      | Some f -> f
      | None -> unsupported "consumed unroll without partial clause"
    in
    Ob.unroll_loop_partial ctx.b cli ~factor
  | Omp_directive inner when inner.dir_kind = D_tile -> (
    let sizes = Option.value (tile_sizes_of inner.dir_clauses) ~default:[] in
    let clis =
      (* A 1-D tile may sit on top of another transformation; deeper nests
         must be literal canonical loops (their trip counts have to
         dominate the outermost preheader). *)
      if List.length sizes = 1 then
        [ emit_loop_handle ctx (Option.get inner.dir_assoc) ]
      else
        emit_canonical_nest ctx (Option.get inner.dir_assoc) (List.length sizes)
    in
    let uty = Ir.value_ty (List.hd clis).Cli.cli_trip_count in
    let generated =
      Ob.tile_loops ctx.b clis
        ~sizes:(List.map (fun n -> Ir.Const_int (uty, Int64.of_int n)) sizes)
    in
    (* The consumer associates with the outermost generated loop. *)
    match generated with
    | outer :: _ -> outer
    | [] -> unsupported "tile produced no loops")
  | Omp_directive inner when inner.dir_kind = D_stripe -> (
    let sizes = Option.value (tile_sizes_of inner.dir_clauses) ~default:[] in
    let clis =
      (* Same shape as tile: a 1-D stripe may sit on top of another
         transformation; deeper nests must be literal canonical loops. *)
      if List.length sizes = 1 then
        [ emit_loop_handle ctx (Option.get inner.dir_assoc) ]
      else
        emit_canonical_nest ctx (Option.get inner.dir_assoc) (List.length sizes)
    in
    let uty = Ir.value_ty (List.hd clis).Cli.cli_trip_count in
    let generated =
      Ob.stripe_loops ctx.b clis
        ~sizes:(List.map (fun n -> Ir.Const_int (uty, Int64.of_int n)) sizes)
    in
    match generated with
    | outer :: _ -> outer
    | [] -> unsupported "stripe produced no loops")
  | Omp_directive inner when inner.dir_kind = D_reverse ->
    let cli = emit_loop_handle ctx (Option.get inner.dir_assoc) in
    Ob.reverse_loop ctx.b cli
  | Omp_directive inner when inner.dir_kind = D_interchange -> (
    let perm = permutation_of_clauses inner.dir_clauses in
    let clis =
      emit_canonical_nest ctx (Option.get inner.dir_assoc) (List.length perm)
    in
    match Ob.interchange_loops ctx.b clis ~perm with
    | outer :: _ -> outer
    | [] -> unsupported "interchange produced no loops")
  | Omp_directive inner when inner.dir_kind = D_fuse ->
    emit_fused_loop ctx inner
  | _ -> unsupported "expected a canonical loop in irbuilder codegen"

and emit_workshared_irb ctx d body_stmt =
  let collapse =
    List.find_map (function C_collapse (n, _) -> Some n | _ -> None) d.dir_clauses
  in
  (* The chunk expression must be emitted before the loop so it dominates
     the worksharing preheader. *)
  let chunk =
    match schedule_of d.dir_clauses with
    | Some (_, Some chunk_e) -> Some (emit_rvalue ctx chunk_e)
    | _ -> None
  in
  let cli =
    match collapse with
    | Some n when n > 1 ->
      let clis = emit_canonical_nest ctx body_stmt n in
      Ob.collapse_loops ctx.b clis
    | _ -> emit_loop_handle ctx body_stmt
  in
  let chunk =
    Option.map
      (fun c ->
        let target = Ir.value_ty cli.Cli.cli_trip_count in
        if Ir.value_ty c = target then c
        else if target = Ir.I64 then B.cast ctx.b Ir.Sext c Ir.I64
        else B.cast ctx.b Ir.Trunc c Ir.I32)
      chunk
  in
  if is_simd_kind d.dir_kind then
    Ob.apply_simd cli ~simdlen:(simdlen_of d.dir_clauses);
  (match schedule_of d.dir_clauses with
  | Some (Sched_dynamic, _) ->
    Ob.apply_dynamic_workshare ctx.b cli ~guided:false ~chunk
      ~nowait:(has_nowait d.dir_clauses)
  | Some (Sched_guided, _) ->
    Ob.apply_dynamic_workshare ctx.b cli ~guided:true ~chunk
      ~nowait:(has_nowait d.dir_clauses)
  | _ ->
    Ob.apply_static_workshare ctx.b cli ~chunk
      ~nowait:(has_nowait d.dir_clauses))
  (* emission continues wherever the loop construction left the builder *)

(* ---- OpenMP dispatch ---------------------------------------------------------- *)

and emit_omp ctx d =
  match ctx.mode with
  | Classic -> emit_omp_classic ctx d
  | Irbuilder -> emit_omp_irbuilder ctx d

and emit_omp_classic ctx d =
  match d.dir_kind with
  | D_parallel ->
    emit_parallel_region ctx d ~body:(fun cap -> emit_stmt ctx cap.cap_body)
  | D_parallel_for | D_parallel_for_simd ->
    emit_parallel_region ctx d ~body:(fun _cap ->
        let latch = emit_driven_loop ctx d ~workshare:true in
        if is_simd_kind d.dir_kind then
          attach_simd_md latch (simdlen_of d.dir_clauses))
  | D_for | D_for_simd ->
    let finalize = apply_data_sharing ctx d.dir_clauses in
    let latch = emit_driven_loop ctx d ~workshare:true in
    if is_simd_kind d.dir_kind then
      attach_simd_md latch (simdlen_of d.dir_clauses);
    finalize ()
  | D_simd ->
    let finalize = apply_data_sharing ctx d.dir_clauses in
    let latch = emit_driven_loop ctx d ~workshare:false in
    attach_simd_md latch (simdlen_of d.dir_clauses);
    finalize ()
  | D_unroll -> ignore (emit_deferred_unroll ctx d)
  | D_tile | D_reverse | D_interchange | D_stripe | D_fuse | D_fission -> (
    emit_transformation_preinits ctx d;
    match d.dir_transformed with
    | Some tr -> ignore (emit_loop_stmt ctx tr)
    | None -> unsupported "loop transformation without a transformed AST")
  | D_barrier -> Ob.create_barrier ctx.b
  | D_master ->
    Ob.create_master ctx.b ~body_gen:(fun _b ->
        emit_stmt ctx (Option.get d.dir_assoc))
  | D_critical name ->
    (* With run-to-completion simulation the lock cannot be contended, but
       the runtime entry/exit calls keep the IR shape faithful. *)
    ignore
      (B.call ctx.b ~ret:Ir.Void (Ir.Runtime "__kmpc_critical")
         (match name with
         | Some _ -> [ Ir.i32_const 1 ]
         | None -> []));
    emit_stmt ctx (Option.get d.dir_assoc);
    ignore (B.call ctx.b ~ret:Ir.Void (Ir.Runtime "__kmpc_end_critical") [])
  | D_single ->
    Ob.create_single ctx.b ~nowait:(has_nowait d.dir_clauses)
      ~body_gen:(fun _b -> emit_stmt ctx (Option.get d.dir_assoc))

and emit_omp_irbuilder ctx d =
  match d.dir_kind with
  | D_parallel ->
    emit_parallel_region ctx d ~body:(fun cap -> emit_stmt ctx cap.cap_body)
  | D_parallel_for | D_parallel_for_simd ->
    emit_parallel_region ctx d ~body:(fun cap ->
        emit_workshared_irb ctx d cap.cap_body)
  | D_for | D_for_simd ->
    let finalize = apply_data_sharing ctx d.dir_clauses in
    emit_workshared_irb ctx d (Option.get d.dir_assoc);
    finalize ()
  | D_simd ->
    let finalize = apply_data_sharing ctx d.dir_clauses in
    let cli = emit_loop_handle ctx (Option.get d.dir_assoc) in
    Ob.apply_simd cli ~simdlen:(simdlen_of d.dir_clauses);
    finalize ()
  | D_unroll -> (
    let assoc = Option.get d.dir_assoc in
    let full = List.exists (fun c -> c = C_full) d.dir_clauses in
    let cli = emit_loop_handle ctx assoc in
    if full then Ob.unroll_loop_full ctx.b cli
    else
      match partial_factor_of d.dir_clauses with
      | Some f -> ignore (Ob.unroll_loop_partial ctx.b cli ~factor:f)
      | None -> Ob.unroll_loop_heuristic ctx.b cli)
  | D_tile | D_reverse | D_interchange | D_stripe | D_fuse ->
    (* Non-consumed OpenMP 6.0 transformations: build the generated loops
       and leave them in place. *)
    ignore
      (emit_loop_handle ctx
         (mk_stmt ~loc:d.dir_loc (Omp_directive d)))
  | D_fission -> emit_fission_loops ctx d
  | D_barrier -> Ob.create_barrier ctx.b
  | D_master ->
    Ob.create_master ctx.b ~body_gen:(fun _b ->
        emit_stmt ctx (Option.get d.dir_assoc))
  | D_critical name ->
    (* With run-to-completion simulation the lock cannot be contended, but
       the runtime entry/exit calls keep the IR shape faithful. *)
    ignore
      (B.call ctx.b ~ret:Ir.Void (Ir.Runtime "__kmpc_critical")
         (match name with
         | Some _ -> [ Ir.i32_const 1 ]
         | None -> []));
    emit_stmt ctx (Option.get d.dir_assoc);
    ignore (B.call ctx.b ~ret:Ir.Void (Ir.Runtime "__kmpc_end_critical") [])
  | D_single ->
    Ob.create_single ctx.b ~nowait:(has_nowait d.dir_clauses)
      ~body_gen:(fun _b -> emit_stmt ctx (Option.get d.dir_assoc))

(* ---- top level --------------------------------------------------------------- *)

let emit_function ctx fn body =
  Ir.clear_emit_loc ();
  let f = ir_function ctx fn in
  f.Ir.f_is_decl <- false;
  ctx.cur_fn <- Some f;
  ctx.env <- Hashtbl.create 64;
  ctx.break_targets <- [];
  ctx.continue_targets <- [];
  let entry = Ir.create_block ~name:"entry" f in
  ctx.entry <- Some entry;
  B.set_insertion_point ctx.b entry;
  (* Parameters become addressable locals, as in Clang. *)
  List.iter2
    (fun p arg ->
      let slot = declare_var ctx p in
      B.store ctx.b (Ir.Arg arg) ~ptr:slot)
    fn.fn_params f.Ir.f_args;
  emit_stmt ctx body;
  (match (B.insertion_block ctx.b).Ir.b_term with
  | Ir.No_term ->
    if f.Ir.f_ret = Ir.Void then B.ret ctx.b None
    else if fn.fn_name = "main" then B.ret ctx.b (Some (Ir.Const_int (f.Ir.f_ret, 0L)))
    else B.ret ctx.b (Some (Ir.Undef f.Ir.f_ret))
  | _ -> ());
  ctx.cur_fn <- None;
  ctx.entry <- None

let emit_translation_unit ?(fold = true) ~mode tu =
  (* Recovery nodes (RecoveryExpr / ErrorStmt) keep the AST alive after a
     frontend error, but they have no semantics to lower; refuse the whole
     unit up front rather than tripping over one mid-function. *)
  if tu_contains_errors tu then
    unsupported "translation unit contains errors; code generation unavailable";
  let m = Ir.create_module "a.out" in
  let ctx =
    {
      m;
      mode;
      b = B.create ~fold ();
      fn_map = Hashtbl.create 16;
      env = Hashtbl.create 64;
      entry = None;
      break_targets = [];
      continue_targets = [];
      cur_fn = None;
      switch_cases = [];
      switch_defaults = [];
    }
  in
  List.iter
    (function
      | Tu_var v -> unsupported "global variable '%s' (globals are not supported)" v.v_name
      | Tu_fn fn when fn.fn_builtin -> ()
      | Tu_fn fn -> (
        match fn.fn_body with
        | None -> ignore (ir_function ctx fn)
        | Some body ->
          Mc_support.Stats.incr stat_fns;
          emit_function ctx fn body))
    tu.tu_decls;
  Mc_support.Stats.add
    (match mode with
    | Classic -> stat_insts_classic
    | Irbuilder -> stat_insts_irbuilder)
    (Ir.module_inst_count m);
  m
