(** Cross-checks the {!Mc_analysis} dataflow passes against ground truth
    the fuzzer establishes independently ([fuzz -mode analyze]):

    - {b transform-safety}: programs that are order-insensitive by
      construction (the differential generator's reductions, plus an
      element-wise array family) must never draw an [Unsafe] directive
      verdict from the dependence report — [Unknown] is fine, a lie is
      not;
    - {b uninit-missed}: dropping the accumulator's initializer and
      observing divergence between two allocation fill bytes
      ({!Mc_interp.Interp.config.fill_byte}, classic -O0) proves an
      uninitialized read, so the [uninit] pass must report one;
    - {b uninit-spurious}: the unmutated program initializes everything
      it reads, so the [uninit] pass must stay silent. *)

type violation = {
  av_name : string;  (** generated input name (embeds seed and index) *)
  av_oracle : string;
      (** ["transform-safety"] | ["uninit-missed"] | ["uninit-spurious"] *)
  av_detail : string;
  av_source : string;
}

type report = { av_total : int; av_violations : violation list }

val run : n:int -> seed:int -> unit -> report
(** A campaign over [n] generated programs (fixed [seed]), running all
    three oracles on each. *)
