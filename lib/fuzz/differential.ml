(* The differential-semantics oracle behind the ROADMAP item "OpenMP 6.0
   directive expansion with differential semantics testing".

   [gen_program] emits random well-formed programs whose only observable
   effect is an order-independent accumulation recorded after each loop
   nest, and decorates the nests with the six loop-transformation
   directives (unroll/tile/reverse/interchange/stripe/fuse) plus the
   occasional worksharing wrapper.  Every transformation is semantically
   a no-op modulo iteration order, and the accumulation operator of a
   nest is associative and commutative (+ or ^) with update terms that
   never read the accumulator — so the transformed program must produce
   exactly the trace of its reference: the same source with every
   "#pragma omp" line stripped, compiled classic -O0.

   One deliberate restriction: all members of a [fuse] sequence share one
   operator, because fusion interleaves the member bodies — a [+=] member
   and a [^=] member commute individually but not with each other.

   [check_source] sweeps the compile configurations (classic/irbuilder ×
   -O0/-O1 × folding on/off, and both team sizes); [run] adds the
   infrastructure axes: batch compilation at -j 1 vs -j N must yield
   byte-identical IR per unit, and so must a cold vs warm persistent
   store.  Semantic mismatches are minimized with [Fuzz.minimize] under
   the "still mismatches" predicate. *)

module Batch = Mc_core.Batch
module Cache = Mc_core.Cache
module Store = Mc_core.Store
module Instance = Mc_core.Instance
module Invocation = Mc_core.Invocation
module Driver = Mc_core.Driver
module Interp = Mc_interp.Interp
module Crash_recovery = Mc_support.Crash_recovery
module Binio = Mc_support.Binio
module Rng = Fuzz.Rng

(* ---- generator ------------------------------------------------------------ *)

(* An update term over the induction variables in scope.  Distinct odd-ish
   coefficients make dropped, duplicated or cross-wired iterations visible
   in the sum; the term never reads the accumulator, so iteration order
   cannot matter. *)
let gen_term rng ivs =
  match ivs with
  | [] -> string_of_int (1 + Rng.int rng 9)
  | _ ->
    let pieces =
      List.map (fun iv -> Printf.sprintf "%s * %d" iv (1 + Rng.int rng 31)) ivs
    in
    String.concat " + " pieces

(* Every header shape runs exactly [extent] iterations (possibly zero), in
   all four canonical comparison/step forms. *)
let gen_header rng var =
  let lb = Rng.int rng 5 in
  let extent = Rng.int rng 10 (* 0..9: zero-trip loops included *) in
  let step = 1 + Rng.int rng 3 in
  match Rng.int rng 4 with
  | 0 ->
    Printf.sprintf "for (int %s = %d; %s < %d; %s += %d)" var lb var
      (lb + (extent * step)) var step
  | 1 ->
    Printf.sprintf "for (int %s = %d; %s <= %d; %s += %d)" var lb var
      (lb + (extent * step) - 1) var step
  | 2 ->
    Printf.sprintf "for (int %s = %d; %s > %d; %s -= %d)" var
      (lb + (extent * step)) var lb var step
  | _ ->
    (* '!=' conditions require a unit step *)
    Printf.sprintf "for (int %s = %d; %s != %d; %s += 1)" var lb var
      (lb + extent) var

(* The directive for a nest of [depth] perfectly nested loops.  Sizes run
   up to 12 against extents up to 9, so size-exceeds-trip-count is hit
   routinely; unroll factors up to 5 rarely divide the trip count. *)
let gen_nest_pragma rng depth =
  let sizes n =
    String.concat ", "
      (List.init n (fun _ -> string_of_int (1 + Rng.int rng 12)))
  in
  let permutation n =
    let a = Array.init n (fun i -> i + 1) in
    for i = n - 1 downto 1 do
      let j = Rng.int rng (i + 1) in
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t
    done;
    String.concat ", " (Array.to_list (Array.map string_of_int a))
  in
  let common =
    [
      (fun () -> "");
      (fun () -> "");
      (fun () -> "#pragma omp reverse\n");
      (fun () ->
        Printf.sprintf "#pragma omp unroll partial(%d)\n" (1 + Rng.int rng 5));
      (fun () -> "#pragma omp unroll full\n");
      (fun () -> Printf.sprintf "#pragma omp tile sizes(%s)\n" (sizes depth));
      (fun () -> Printf.sprintf "#pragma omp stripe sizes(%s)\n" (sizes depth));
      (fun () -> "#pragma omp parallel for\n");
    ]
  in
  let deep =
    if depth < 2 then []
    else
      [
        (fun () ->
          Printf.sprintf "#pragma omp interchange permutation(%s)\n"
            (permutation depth));
      ]
  in
  (Rng.pick rng (common @ deep)) ()

let gen_program rng =
  let b = Buffer.create 512 in
  Buffer.add_string b "int main(void) {\n  int acc = 0;\n";
  let nstmts = 1 + Rng.int rng 3 in
  for idx = 0 to nstmts - 1 do
    let op = if Rng.int rng 4 = 0 then "^" else "+" in
    if Rng.int rng 6 = 0 then begin
      (* a fuse sequence: 2-3 sibling depth-1 loops, one shared operator *)
      let members = 2 + Rng.int rng 2 in
      Buffer.add_string b "  #pragma omp fuse\n  {\n";
      for m = 0 to members - 1 do
        let var = Printf.sprintf "f%d_%d" idx m in
        Buffer.add_string b
          (Printf.sprintf "    %s\n      acc %s= %s;\n" (gen_header rng var) op
             (gen_term rng [ var ]));
      done;
      Buffer.add_string b "  }\n"
    end
    else begin
      let depth = 1 + Rng.int rng 3 in
      let ivs = List.init depth (fun d -> Printf.sprintf "i%d_%d" idx d) in
      Buffer.add_string b ("  " ^ gen_nest_pragma rng depth);
      List.iteri
        (fun d iv ->
          Buffer.add_string b
            (Printf.sprintf "%s%s\n" (String.make ((2 * d) + 2) ' ')
               (gen_header rng iv)))
        ivs;
      Buffer.add_string b
        (Printf.sprintf "%sacc %s= %s;\n"
           (String.make ((2 * depth) + 2) ' ')
           op (gen_term rng ivs))
    end;
    Buffer.add_string b "  record(acc);\n"
  done;
  Buffer.add_string b "  return 0;\n}\n";
  Buffer.contents b

let strip_pragmas source =
  String.split_on_char '\n' source
  |> List.filter (fun line ->
         let t = String.trim line in
         not (String.length t >= 11 && String.sub t 0 11 = "#pragma omp"))
  |> String.concat "\n"

(* ---- the semantic oracle --------------------------------------------------- *)

let o0 = { Driver.default_options with Driver.optimize = false }
let irb o = { o with Driver.use_irbuilder = true }
let nofold o = { o with Driver.fold = false }

(* Everything the compiler offers; classic -O0 of the stripped source is
   the reference, so "classic -O0" here checks that the directives
   themselves (not just the optimizer) preserve semantics. *)
let configs =
  [
    ("classic -O0", o0);
    ("classic -O1", Driver.default_options);
    ("classic -O1 -no-builder-folding", nofold Driver.default_options);
    ("irbuilder -O0", irb o0);
    ("irbuilder -O1", irb Driver.default_options);
    ("irbuilder -O1 -no-builder-folding", nofold (irb Driver.default_options));
  ]

let render_trace t =
  String.concat "; "
    (List.map
       (function
         | Interp.T_int i -> Int64.to_string i
         | Interp.T_float f -> string_of_float f)
       t)

let trace_of ~options ~num_threads source =
  let config = { Interp.default_config with Interp.num_threads } in
  match Driver.compile_and_run ~options ~config source with
  | Ok outcome -> Ok outcome.Interp.trace
  | Error msg -> Error msg

let check_source source =
  let reference = strip_pragmas source in
  match trace_of ~options:o0 ~num_threads:4 reference with
  | Error msg -> Some ("reference (classic -O0, stripped)", "failed: " ^ msg)
  | Ok want ->
    List.find_map
      (fun (cname, options) ->
        List.find_map
          (fun num_threads ->
            let cname = Printf.sprintf "%s, %d thread(s)" cname num_threads in
            match trace_of ~options ~num_threads source with
            | Error msg -> Some (cname, "failed: " ^ msg)
            | Ok got ->
              if Interp.trace_equal want got then None
              else
                Some
                  ( cname,
                    Printf.sprintf "expected [%s], got [%s]"
                      (render_trace want) (render_trace got) ))
          [ 4; 1 ])
      configs

(* ---- the scripted-transformation oracle ------------------------------------ *)

(* One campaign input in three coupled renderings: the plain program, the
   same program hand-pragma'd, and a transfo script whose steps address
   each decorated nest by its (unique) outer induction variable.  The
   engine applies a step by inserting the equivalent pragma above the
   resolved loop, so the scripted plain program must produce byte-
   identical IR with the pragma'd one under every configuration, and the
   checked application must preserve the plain program's trace. *)

type scripted = {
  sc_name : string;
  sc_plain : string; (* no pragmas; the script's input *)
  sc_pragma : string; (* the directives hand-written into the source *)
  sc_script : string; (* one step per decorated nest *)
}

let gen_scripted rng ~name =
  let plain = Buffer.create 512 in
  let pragma = Buffer.create 512 in
  let script = Buffer.create 128 in
  let both s =
    Buffer.add_string plain s;
    Buffer.add_string pragma s
  in
  both "int main(void) {\n  int acc = 0;\n";
  let nstmts = 1 + Rng.int rng 3 in
  for idx = 0 to nstmts - 1 do
    let op = if Rng.int rng 4 = 0 then "^" else "+" in
    let sizes n =
      String.concat ","
        (List.init n (fun _ -> string_of_int (1 + Rng.int rng 12)))
    in
    let permutation n =
      let a = Array.init n (fun i -> i + 1) in
      for i = n - 1 downto 1 do
        let j = Rng.int rng (i + 1) in
        let t = a.(i) in
        a.(i) <- a.(j);
        a.(j) <- t
      done;
      String.concat "," (Array.to_list (Array.map string_of_int a))
    in
    (* The step decides the nest shape: fission needs a multi-statement
       depth-1 body, interchange a nest of at least two loops. *)
    let depth, step =
      match Rng.int rng 8 with
      | 0 -> (1 + Rng.int rng 3, None)
      | 1 -> (1 + Rng.int rng 3, Some "reverse")
      | 2 ->
        (1 + Rng.int rng 3, Some (Printf.sprintf "unroll partial(%d)" (1 + Rng.int rng 5)))
      | 3 -> (1 + Rng.int rng 3, Some "unroll full")
      | 4 ->
        let d = 1 + Rng.int rng 3 in
        (d, Some (Printf.sprintf "tile sizes(%s)" (sizes d)))
      | 5 ->
        let d = 1 + Rng.int rng 3 in
        (d, Some (Printf.sprintf "stripe sizes(%s)" (sizes d)))
      | 6 -> (1, Some "fission")
      | _ ->
        let d = 2 + Rng.int rng 2 in
        (d, Some (Printf.sprintf "interchange permutation(%s)" (permutation d)))
    in
    let ivs = List.init depth (fun d -> Printf.sprintf "s%d_%d" idx d) in
    (match step with
    | Some text ->
      Buffer.add_string pragma (Printf.sprintf "  #pragma omp %s\n" text);
      Buffer.add_string script
        (Printf.sprintf "%s @ for(%s)\n" text (List.hd ivs))
    | None -> ());
    List.iteri
      (fun d iv ->
        both
          (Printf.sprintf "%s%s\n"
             (String.make ((2 * d) + 2) ' ')
             (gen_header rng iv)))
      ivs;
    let indent = String.make ((2 * depth) + 2) ' ' in
    if step = Some "fission" then begin
      (* two sibling updates sharing one operator: fission regroups the
         iterations per statement, which only commutes within one op *)
      both (Printf.sprintf "%s{\n" indent);
      both
        (Printf.sprintf "%s  acc %s= %s;\n" indent op (gen_term rng ivs));
      both
        (Printf.sprintf "%s  acc %s= %s;\n" indent op (gen_term rng ivs));
      both (Printf.sprintf "%s}\n" indent)
    end
    else
      both (Printf.sprintf "%sacc %s= %s;\n" indent op (gen_term rng ivs));
    both "  record(acc);\n"
  done;
  both "  return 0;\n}\n";
  {
    sc_name = name;
    sc_plain = Buffer.contents plain;
    sc_pragma = Buffer.contents pragma;
    sc_script = Buffer.contents script;
  }

(* Checked application (script + per-step differential verification) must
   reproduce the plain trace; [Some (config, detail)] otherwise. *)
let check_script_semantics ~plain ~script =
  match trace_of ~options:o0 ~num_threads:4 plain with
  | Error msg -> Some ("script reference (classic -O0)", "failed: " ^ msg)
  | Ok want -> (
    let options = { o0 with Driver.transfo_script = Some script } in
    match trace_of ~options ~num_threads:4 plain with
    | Error msg -> Some ("scripted classic -O0 (checked)", "failed: " ^ msg)
    | Ok got ->
      if Interp.trace_equal want got then None
      else
        Some
          ( "scripted classic -O0 (checked)",
            Printf.sprintf "expected [%s], got [%s]" (render_trace want)
              (render_trace got) ))

let check_scripted sc =
  let ir options source =
    let r = Driver.compile ~options source in
    if Mc_diag.Diagnostics.has_errors r.Driver.diag then
      Error (Mc_diag.Diagnostics.render_all r.Driver.diag)
    else
      match r.Driver.ir with
      | Some m -> Ok (Mc_ir.Printer.module_to_string m)
      | None -> Error "no IR"
  in
  match check_script_semantics ~plain:sc.sc_plain ~script:sc.sc_script with
  | Some m -> Some m
  | None ->
    (* Check-free application under every configuration: the scripted
       plain program and the hand-pragma'd one are the same compile. *)
    List.find_map
      (fun (cname, options) ->
        let scripted =
          {
            options with
            Driver.transfo_script = Some sc.sc_script;
            transfo_check = false;
          }
        in
        match (ir scripted sc.sc_plain, ir options sc.sc_pragma) with
        | Error e, _ -> Some ("scripted " ^ cname, "failed: " ^ e)
        | _, Error e -> Some ("pragma'd " ^ cname, "failed: " ^ e)
        | Ok a, Ok b ->
          if String.equal a b then None
          else Some (cname, "scripted and hand-pragma'd IR differ"))
      configs

(* ---- the infrastructure axes ----------------------------------------------- *)

type mismatch = {
  dm_name : string; (* generated input name (embeds seed and index) *)
  dm_config : string; (* the axis that disagreed *)
  dm_detail : string; (* expected/actual traces, or the compile failure *)
  dm_source : string; (* minimized for semantic mismatches *)
  dm_script : string option; (* minimized transfo script, scripted oracle only *)
}

type report = { dm_total : int; dm_mismatches : mismatch list }

let unit_ir u =
  match u.Batch.u_result with
  | Ok r -> (
    match r.Driver.ir with
    | Some m -> Mc_ir.Printer.module_to_string m
    | None -> "<no IR>")
  | Error f -> "ICE: " ^ Crash_recovery.describe f.Instance.f_ice

let ir_prints ?cache ~jobs invocation inputs =
  let batch = Batch.compile ~jobs ?cache ~invocation inputs in
  List.map (fun u -> (u.Batch.u_name, unit_ir u)) batch.Batch.units

let diff_prints ~config ~sources base other =
  List.concat
    (List.map2
       (fun (name, a) (_, b) ->
         if String.equal a b then []
         else
           [
             {
               dm_name = name;
               dm_config = config;
               dm_detail = "per-unit IR printouts differ";
               dm_source = List.assoc name sources;
               dm_script = None;
             };
           ])
       base other)

let invocations =
  [
    ( "classic",
      { Invocation.default with Invocation.gen_reproducer = false } );
    ( "irbuilder",
      {
        Invocation.default with
        Invocation.use_irbuilder = true;
        gen_reproducer = false;
      } );
  ]

let temp_store_dir () =
  let path = Filename.temp_file "mcc-differential" "" in
  Sys.remove path;
  Binio.mkdir_p path;
  path

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    (try Sys.rmdir path with Sys_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Sys_error _ -> ()

let run ?(jobs = [ 1; 4 ]) ?store_dir ~n ~seed () =
  let rng = Rng.create seed in
  let inputs =
    List.init n (fun i -> (Printf.sprintf "diff-%d-%d.c" seed i, gen_program rng))
  in
  let mismatches = ref [] in
  let add m = mismatches := m :: !mismatches in
  (* 1. the semantic sweep, one source at a time, minimized on mismatch *)
  List.iter
    (fun (name, source) ->
      match check_source source with
      | None -> ()
      | Some (config, detail) ->
        let still s = Option.is_some (check_source s) in
        add
          {
            dm_name = name;
            dm_config = config;
            dm_detail = detail;
            dm_source = Fuzz.minimize ~still_fails:still source;
            dm_script = None;
          })
    inputs;
  (* 2. batch determinism: identical per-unit IR whatever the domain count *)
  let jobs = match jobs with [] -> [ 1; 4 ] | l -> l in
  let j0 = List.hd jobs in
  List.iter
    (fun (label, invocation) ->
      let base = ir_prints ~jobs:j0 invocation inputs in
      List.iter
        (fun j ->
          if j <> j0 then
            List.iter add
              (diff_prints
                 ~config:
                   (Printf.sprintf "batch %s -j %d vs -j %d" label j0 j)
                 ~sources:inputs base
                 (ir_prints ~jobs:j invocation inputs)))
        jobs)
    invocations;
  (* 3. store determinism: a warm persistent store reproduces the cold IR *)
  let dir, owned =
    match store_dir with
    | Some d ->
      Binio.mkdir_p d;
      (d, false)
    | None -> (temp_store_dir (), true)
  in
  List.iter
    (fun (label, invocation) ->
      let invocation = { invocation with Invocation.cache_enabled = true } in
      let sub = Filename.concat dir label in
      Binio.mkdir_p sub;
      let prints () =
        ir_prints
          ~cache:(Cache.create ~store:(Store.create ~dir:sub ()) ())
          ~jobs:j0 invocation inputs
      in
      let cold = prints () in
      let warm = prints () in
      List.iter add
        (diff_prints
           ~config:(Printf.sprintf "store %s cold vs warm" label)
           ~sources:inputs cold warm))
    invocations;
  if owned then rm_rf dir;
  (* 4. the scripted-transformation oracle: a random transfo script per
     program must match its hand-pragma'd rendering and preserve the
     reference trace; failing scripts are minimized when the failure
     reproduces from (plain, script) alone *)
  List.iter
    (fun sc ->
      match check_scripted sc with
      | None -> ()
      | Some (config, detail) ->
        let script =
          let still s =
            Option.is_some
              (check_script_semantics ~plain:sc.sc_plain ~script:s)
          in
          if still sc.sc_script then
            Fuzz.minimize ~still_fails:still sc.sc_script
          else sc.sc_script (* IR-identity failures need the full pairing *)
        in
        add
          {
            dm_name = sc.sc_name;
            dm_config = config;
            dm_detail = detail;
            dm_source = sc.sc_plain;
            dm_script = Some script;
          })
    (List.init n (fun i ->
         gen_scripted rng ~name:(Printf.sprintf "script-%d-%d" seed i)));
  { dm_total = n; dm_mismatches = List.rev !mismatches }
