(** Front-end fuzzing harness for the crash-containment invariant: every
    input — random generated C + OpenMP programs, and byte/token mutations
    of real corpus files — must end in ordinary diagnostics, a codegen
    refusal, or a successful compile.  A contained ICE (or, worse, an
    escaped exception) on any input, on any domain count, is a bug; the
    harness minimizes such inputs into small reproducers. *)

module Rng : sig
  type t

  val create : int -> t
  (** Deterministic xorshift64* stream from a seed. *)

  val int : t -> int -> int
  val pick : t -> 'a list -> 'a
end

val gen_program : Rng.t -> string
(** A random well-formed C program with OpenMP loop-transformation and
    worksharing pragmas (canonical loops of assorted comparison/step
    shapes, nesting, unroll/tile/reverse/collapse/parallel-for/simd). *)

val mutate_bytes : Rng.t -> string -> string
(** Span deletion/duplication, structural-byte overwrite, noise insertion. *)

val mutate_tokens : Rng.t -> string -> string
(** Token drop/replace/swap/insert over a crude whitespace/punct split,
    with replacement tokens biased toward pragma syntax. *)

type failure = {
  fz_name : string; (* generated input name (embeds seed and index) *)
  fz_jobs : int; (* domain count the failure was observed under *)
  fz_message : string; (* ICE description *)
  fz_source : string; (* auto-minimized failing source *)
}

type report = { total : int; failures : failure list }

val check_batch : jobs:int -> (string * string) list -> (string * string) list
(** Compiles the units as one batch on [jobs] domains; returns
    [(name, ice_description)] for every unit that died in a contained
    ICE.  Raises only if containment itself is broken. *)

val minimize : ?still_fails:(string -> bool) -> string -> string
(** Greedy line-block then character-span reduction under the predicate
    (default: "a 1-domain compile of this source ICEs").  Deterministic. *)

val run :
  ?corpus:string list -> ?jobs:int list -> n:int -> seed:int -> unit -> report
(** Runs a campaign: [n] inputs from the seed (generator and mutators over
    [corpus]), compiled in batches under every domain count in [jobs]
    (default [[1; 4]]); each failing input is minimized into the report. *)
