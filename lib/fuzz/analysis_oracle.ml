(* The second oracle behind `fuzz -mode analyze`: the dataflow analyses
   of {!Mc_analysis} cross-checked against ground truth the fuzzer can
   establish independently.

   A. Transformation-safety soundness.  The differential generator's
      programs ({!Differential.gen_program}) are trace-preserving under
      every directive *by construction* (order-independent reductions,
      no cross-iteration reads), and a dedicated element-wise array
      generator here is equally order-insensitive — so an [Unsafe]
      verdict from the dependence report on any of them is a lie.
      [Unknown] is always acceptable: the report promises soundness,
      not completeness.

   B. Uninitialized-read ground truth.  Dropping the accumulator's
      initializer and running the same program classic -O0 under two
      allocation fill bytes ('\000' vs '\x55') makes a genuine
      uninitialized read *observable*: the traces diverge.  A program
      whose behaviour provably depends on garbage memory must carry at
      least one [uninit] finding.

   C. Uninitialized-read false positives.  The unmutated program
      initializes everything it reads, so the [uninit] pass must stay
      silent on it. *)

module Driver = Mc_core.Driver
module Interp = Mc_interp.Interp
module Srcmgr = Mc_srcmgr.Source_manager
module Report = Mc_analysis.Report
module Analyzer = Mc_analysis.Analyzer
module Rng = Fuzz.Rng

type violation = {
  av_name : string; (* generated input name (embeds seed and index) *)
  av_oracle : string; (* "transform-safety" | "uninit-missed" | "uninit-spurious" *)
  av_detail : string;
  av_source : string;
}

type report = { av_total : int; av_violations : violation list }

let o0 = { Driver.default_options with Driver.optimize = false }

(* Element-wise array writes plus a reduction checksum: every loop is
   order-insensitive, so any [Unsafe] verdict over this family is
   unsound.  (The differential generator never touches arrays; this one
   exercises the affine-subscript side of the dependence test.) *)
let gen_safe_array rng =
  let b = Buffer.create 256 in
  let n = 8 + Rng.int rng 56 in
  Buffer.add_string b "int main(void) {\n";
  Buffer.add_string b (Printf.sprintf "  long A[%d];\n  long acc = 0;\n" n);
  let nloops = 1 + Rng.int rng 2 in
  for idx = 0 to nloops - 1 do
    let c = 1 + Rng.int rng 9 and k = Rng.int rng 50 in
    Buffer.add_string b
      (Printf.sprintf
         "  for (long i%d = 0; i%d < %d; i%d += 1)\n    A[i%d] = i%d * %d + \
          %d;\n"
         idx idx n idx idx idx c k)
  done;
  Buffer.add_string b
    (Printf.sprintf
       "  for (long j = 0; j < %d; j += 1)\n    acc = acc + A[j];\n" n);
  Buffer.add_string b "  record(acc);\n  return 0;\n}\n";
  Buffer.contents b

(* Compile classic -O0 (allocas intact — the slot model the analyses
   assume) and run the selected passes; [Error] is a generator bug, not
   an oracle violation, and is reported as its own violation so a
   regression in the pipeline cannot silently drain the campaign. *)
let analyze ~passes source =
  let r = Driver.compile ~options:o0 source in
  if Mc_diag.Diagnostics.has_errors r.Driver.diag then
    Error ("does not compile:\n" ^ Mc_diag.Diagnostics.render_all r.Driver.diag)
  else
    match r.Driver.ir with
    | None ->
      Error
        (match r.Driver.codegen_error with
        | Some e -> "codegen: " ^ e
        | None -> "no IR produced")
    | Some m ->
      let describe loc = Srcmgr.describe r.Driver.srcmgr loc in
      Ok (Analyzer.run ~passes ~describe m)

let unsafe_verdicts report =
  List.concat_map
    (fun (lr : Report.loop_report) ->
      List.filter_map
        (fun (dv : Report.directive_verdict) ->
          if dv.Report.dv_verdict = Report.Unsafe then
            Some
              (Printf.sprintf "%s: %s flagged unsafe — %s" lr.Report.lr_loc
                 dv.Report.dv_directive dv.Report.dv_why)
          else None)
        lr.Report.lr_directives)
    (Report.loops report)

let uninit_findings report =
  List.filter
    (fun (f : Report.finding) -> f.Report.f_pass = "uninit")
    (Report.findings report)

(* Observable behaviour under one allocation fill byte; any trap or
   compile failure is folded into the observation so a fill-dependent
   trap also counts as divergence. *)
let observe ~fill_byte source =
  let config = { Interp.default_config with Interp.fill_byte } in
  match Driver.compile_and_run ~options:o0 ~config source with
  | Ok o ->
    `Finished (o.Interp.output, o.Interp.trace, o.Interp.return_value)
  | Error msg -> `Failed msg

(* The mutation behind oracles B and C: drop the accumulator's
   initializer.  Textual on purpose — the generator owns the shape of
   the declaration line. *)
let drop_initializer source =
  let target = " acc = 0;" in
  let tl = String.length target and sl = String.length source in
  let rec find i =
    if i + tl > sl then None
    else if String.equal (String.sub source i tl) target then Some i
    else find (i + 1)
  in
  Option.map
    (fun i ->
      String.sub source 0 i ^ " acc;"
      ^ String.sub source (i + tl) (sl - i - tl))
    (find 0)

let run ~n ~seed () =
  let rng = Rng.create seed in
  let violations = ref [] in
  let add v = violations := v :: !violations in
  for i = 0 to n - 1 do
    let array_flavoured = Rng.int rng 3 = 0 in
    let name = Printf.sprintf "analyze-%d-%d.c" seed i in
    let source =
      if array_flavoured then gen_safe_array rng
      else Differential.strip_pragmas (Differential.gen_program rng)
    in
    (* A: no Unsafe verdict on a provably order-insensitive program. *)
    (match analyze ~passes:[ "deps" ] source with
    | Error e ->
      add
        {
          av_name = name;
          av_oracle = "transform-safety";
          av_detail = "analysis failed: " ^ e;
          av_source = source;
        }
    | Ok report ->
      List.iter
        (fun detail ->
          add
            {
              av_name = name;
              av_oracle = "transform-safety";
              av_detail = detail;
              av_source = source;
            })
        (unsafe_verdicts report));
    (* C: the initialized original carries no uninit finding. *)
    (match analyze ~passes:[ "uninit" ] source with
    | Error _ -> () (* already reported above *)
    | Ok report ->
      List.iter
        (fun (f : Report.finding) ->
          add
            {
              av_name = name;
              av_oracle = "uninit-spurious";
              av_detail =
                Printf.sprintf "%s: %s" f.Report.f_loc f.Report.f_msg;
              av_source = source;
            })
        (uninit_findings report));
    (* B: a divergence across fill bytes proves an uninitialized read
       happened; the pass must have found one. *)
    match drop_initializer source with
    | None -> ()
    | Some mutated ->
      let zero = observe ~fill_byte:'\000' mutated in
      let ones = observe ~fill_byte:'\x55' mutated in
      if zero <> ones then (
        match analyze ~passes:[ "uninit" ] mutated with
        | Error e ->
          add
            {
              av_name = name;
              av_oracle = "uninit-missed";
              av_detail = "analysis failed: " ^ e;
              av_source = mutated;
            }
        | Ok report ->
          if uninit_findings report = [] then
            add
              {
                av_name = name;
                av_oracle = "uninit-missed";
                av_detail =
                  "behaviour depends on the allocation fill byte, but the \
                   uninit pass reported nothing";
                av_source = mutated;
              })
  done;
  { av_total = n; av_violations = List.rev !violations }
