(* Front-end fuzzing: throw seeded random C + OpenMP programs — and byte-
   and token-level mutations of real corpus files — at the full pipeline
   and assert the crash-containment invariant: every input either compiles,
   produces diagnostics, or is refused by codegen; no input may end in an
   internal compiler error, let alone an escaped exception, whether the
   batch runs on 1 domain or N.

   Failing inputs are auto-minimized (greedy line- then span-removal under
   the "still fails" predicate) so a reproducer is small enough to read. *)

module Batch = Mc_core.Batch
module Instance = Mc_core.Instance
module Invocation = Mc_core.Invocation
module Driver = Mc_core.Driver
module Crash_recovery = Mc_support.Crash_recovery

(* A tiny deterministic PRNG (xorshift64 star) so every failure
   reproduces from the campaign seed alone. *)
module Rng = struct
  type t = { mutable state : int64 }

  let create seed =
    { state = Int64.add (Int64.mul (Int64.of_int seed) 2654435761L) 1L }

  let next t =
    let x = t.state in
    let x = Int64.logxor x (Int64.shift_right_logical x 12) in
    let x = Int64.logxor x (Int64.shift_left x 25) in
    let x = Int64.logxor x (Int64.shift_right_logical x 27) in
    t.state <- x;
    Int64.to_int (Int64.shift_right_logical (Int64.mul x 0x2545F4914F6CDD1DL) 33)

  let int t bound = if bound <= 0 then 0 else next t mod bound
  let pick t list = List.nth list (int t (List.length list))
end

(* ---- generator: random C + OpenMP programs ------------------------------- *)

let rec gen_expr rng depth vars =
  if depth = 0 || Rng.int rng 3 = 0 then
    match Rng.int rng 3 with
    | 0 -> string_of_int (Rng.int rng 20 - 5)
    | _ when vars <> [] -> Rng.pick rng vars
    | _ -> string_of_int (Rng.int rng 9 + 1)
  else
    let a = gen_expr rng (depth - 1) vars in
    let b = gen_expr rng (depth - 1) vars in
    match Rng.int rng 6 with
    | 0 -> Printf.sprintf "(%s + %s)" a b
    | 1 -> Printf.sprintf "(%s - %s)" a b
    | 2 -> Printf.sprintf "(%s * %s)" a b
    | 3 -> Printf.sprintf "(%s & %s)" a b
    | 4 -> Printf.sprintf "(%s | %s)" a b
    | _ -> Printf.sprintf "(%s %% 7 + %s)" a b

let gen_loop_header rng var =
  let lb = Rng.int rng 5 in
  let extent = 1 + Rng.int rng 9 in
  let step = 1 + Rng.int rng 3 in
  let ub = lb + (extent * step) in
  match Rng.int rng 4 with
  | 0 -> Printf.sprintf "for (int %s = %d; %s < %d; %s += %d)" var lb var ub var step
  | 1 -> Printf.sprintf "for (int %s = %d; %s <= %d; %s += %d)" var lb var ub var step
  | 2 -> Printf.sprintf "for (int %s = %d; %s > %d; %s -= %d)" var ub var lb var step
  | _ -> Printf.sprintf "for (int %s = %d; %s != %d; %s += %d)" var lb var (lb + (extent * step)) var step

let gen_pragma rng =
  match Rng.int rng 8 with
  | 0 -> Printf.sprintf "#pragma omp unroll partial(%d)\n" (1 + Rng.int rng 5)
  | 1 -> "#pragma omp unroll full\n"
  | 2 -> Printf.sprintf "#pragma omp tile sizes(%d)\n" (1 + Rng.int rng 5)
  | 3 ->
    Printf.sprintf "#pragma omp tile sizes(%d, %d)\n" (1 + Rng.int rng 4)
      (1 + Rng.int rng 4)
  | 4 -> "#pragma omp reverse\n"
  | 5 -> Printf.sprintf "#pragma omp for collapse(%d)\n" (1 + Rng.int rng 3)
  | 6 -> "#pragma omp parallel for\n"
  | _ -> "#pragma omp simd\n"

let gen_program rng =
  let b = Buffer.create 256 in
  Buffer.add_string b "int main(void) {\n";
  Buffer.add_string b "  int acc = 0;\n";
  let nstmts = 1 + Rng.int rng 4 in
  for s = 0 to nstmts - 1 do
    let var = Printf.sprintf "i%d" s in
    let nest = 1 + Rng.int rng 2 in
    if Rng.int rng 2 = 0 then Buffer.add_string b (gen_pragma rng);
    Buffer.add_string b (Printf.sprintf "  %s {\n" (gen_loop_header rng var));
    let inner = Printf.sprintf "j%d" s in
    if nest > 1 then begin
      Buffer.add_string b (Printf.sprintf "    %s {\n" (gen_loop_header rng inner));
      Buffer.add_string b
        (Printf.sprintf "      acc = acc + %s;\n"
           (gen_expr rng 2 [ var; inner; "acc" ]));
      Buffer.add_string b "    }\n"
    end
    else
      Buffer.add_string b
        (Printf.sprintf "    acc = acc + %s;\n" (gen_expr rng 2 [ var; "acc" ]));
    Buffer.add_string b "  }\n"
  done;
  Buffer.add_string b "  record(acc);\n  return 0;\n}\n";
  Buffer.contents b

(* ---- mutators: break real programs --------------------------------------- *)

let mutate_bytes rng src =
  let n = String.length src in
  if n = 0 then src
  else
    match Rng.int rng 4 with
    | 0 ->
      (* delete a span *)
      let at = Rng.int rng n in
      let len = min (n - at) (1 + Rng.int rng 24) in
      String.sub src 0 at ^ String.sub src (at + len) (n - at - len)
    | 1 ->
      (* duplicate a span *)
      let at = Rng.int rng n in
      let len = min (n - at) (1 + Rng.int rng 24) in
      String.sub src 0 (at + len) ^ String.sub src at (n - at)
    | 2 ->
      (* overwrite one byte with a structure character *)
      let at = Rng.int rng n in
      let c = Rng.pick rng [ '('; ')'; '{'; '}'; ';'; ','; '#'; '0'; 'x' ] in
      String.mapi (fun i old -> if i = at then c else old) src
    | _ ->
      (* insert noise *)
      let at = Rng.int rng n in
      let noise =
        Rng.pick rng
          [ "("; "))"; "{"; "}}"; ";"; "#pragma omp "; "sizes("; "0x"; "\\" ]
      in
      String.sub src 0 at ^ noise ^ String.sub src at (n - at)

let token_pool =
  [
    "("; ")"; "{"; "}"; ";"; ","; "int"; "for"; "if"; "return"; "0"; "1";
    "#pragma"; "omp"; "tile"; "unroll"; "sizes"; "partial"; "collapse";
    "parallel"; "reverse"; "interchange"; "permutation"; "fuse"; "simd";
    "schedule"; "static"; "dynamic"; "nonsense_clause"; "9999999999";
  ]

(* A whitespace/punct token split — deliberately cruder than the real lexer,
   so mutations can produce byte sequences the lexer has to reject. *)
let split_tokens src =
  let toks = ref [] and buf = Buffer.create 8 in
  let flush () =
    if Buffer.length buf > 0 then begin
      toks := Buffer.contents buf :: !toks;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' ->
        flush ();
        toks := " " :: !toks
      | '\n' ->
        flush ();
        toks := "\n" :: !toks
      | '(' | ')' | '{' | '}' | ';' | ',' ->
        flush ();
        toks := String.make 1 c :: !toks
      | _ -> Buffer.add_char buf c)
    src;
  flush ();
  List.rev !toks

let mutate_tokens rng src =
  let toks = Array.of_list (split_tokens src) in
  let n = Array.length toks in
  if n = 0 then src
  else begin
    (match Rng.int rng 4 with
    | 0 -> toks.(Rng.int rng n) <- "" (* drop a token *)
    | 1 -> toks.(Rng.int rng n) <- Rng.pick rng token_pool (* replace *)
    | 2 ->
      let i = Rng.int rng n and j = Rng.int rng n in
      let t = toks.(i) in
      toks.(i) <- toks.(j);
      toks.(j) <- t (* swap two tokens *)
    | _ ->
      let i = Rng.int rng n in
      toks.(i) <- toks.(i) ^ " " ^ Rng.pick rng token_pool (* insert *));
    String.concat "" (Array.to_list toks)
  end

(* ---- the invariant -------------------------------------------------------- *)

type failure = {
  fz_name : string;
  fz_jobs : int;
  fz_message : string; (* the ICE description *)
  fz_source : string; (* minimized source *)
}

type report = { total : int; failures : failure list }

(* Reproducer bundles off, verifier on: the fuzzer wants the strictest
   invariant (a verifier failure IS an ICE) without littering the temp
   dir for every injected failure it then minimizes itself. *)
let fuzz_invocation = { Invocation.default with Invocation.gen_reproducer = false }

let unit_failure u =
  match u.Batch.u_result with
  | Ok _ -> None
  | Error f -> Some (Crash_recovery.describe f.Instance.f_ice)

(* Compiles the units as one batch on [jobs] domains; returns the inputs
   that ended in a contained ICE.  [Batch.compile] itself must never
   raise — if it does, the fuzzer's caller reports the escape, which is
   exactly the bug the harness exists to find. *)
let check_batch ~jobs inputs =
  let batch = Batch.compile ~jobs ~invocation:fuzz_invocation inputs in
  List.concat_map
    (fun u ->
      match unit_failure u with
      | None -> []
      | Some msg -> [ (u.Batch.u_name, msg) ])
    batch.Batch.units

let fails source =
  match check_batch ~jobs:1 [ ("min.c", source) ] with
  | [] -> false
  | _ -> true

(* ---- minimization --------------------------------------------------------- *)

(* Greedy delta-debugging-lite: repeatedly drop line blocks (halves down
   to single lines), then character spans, keeping any candidate that
   still fails.  Deterministic and bounded, so CI timing stays stable. *)
let minimize ?(still_fails = fails) source =
  let drop_lines src =
    let n = List.length (String.split_on_char '\n' src) in
    let rec sweep chunk src_best =
      if chunk = 0 then src_best
      else begin
        let best = ref src_best in
        let changed = ref true in
        while !changed do
          changed := false;
          let lines_now =
            Array.of_list (String.split_on_char '\n' !best)
          in
          let n_now = Array.length lines_now in
          let i = ref 0 in
          while !i < n_now do
            let a = !i and b = min n_now (!i + chunk) in
            if n_now > 1 && b > a then begin
              let cand =
                let keep = ref [] in
                Array.iteri
                  (fun j l -> if j < a || j >= b then keep := l :: !keep)
                  lines_now;
                String.concat "\n" (List.rev !keep)
              in
              if cand <> !best && still_fails cand then begin
                best := cand;
                changed := true;
                i := n_now (* restart the sweep on the smaller input *)
              end
              else i := !i + chunk
            end
            else i := !i + chunk
          done
        done;
        sweep (chunk / 2) !best
      end
    in
    sweep (max 1 (n / 2)) src
  in
  let drop_spans src =
    let best = ref src in
    let span = ref (String.length src / 2) in
    while !span > 0 do
      let n = String.length !best in
      let i = ref 0 in
      while !i < n do
        let b = !best in
        let len = min !span (String.length b - !i) in
        if len > 0 && String.length b > len then begin
          let cand =
            String.sub b 0 !i ^ String.sub b (!i + len) (String.length b - !i - len)
          in
          if still_fails cand then best := cand else i := !i + !span
        end
        else i := !i + !span
      done;
      span := !span / 2
    done;
    !best
  in
  if still_fails source then drop_spans (drop_lines source) else source

(* ---- campaign ------------------------------------------------------------- *)

let batch_size = 8

let rec chunks k = function
  | [] -> []
  | l ->
    let rec take n acc = function
      | x :: rest when n > 0 -> take (n - 1) (x :: acc) rest
      | rest -> (List.rev acc, rest)
    in
    let c, rest = take k [] l in
    c :: chunks k rest

let generate_inputs ~seed ~n ~corpus =
  let rng = Rng.create seed in
  List.init n (fun i ->
      let name = Printf.sprintf "fuzz-%d-%d.c" seed i in
      let source =
        match (corpus, Rng.int rng 3) with
        | [], _ | _, 0 -> gen_program rng
        | files, 1 -> mutate_bytes rng (Rng.pick rng files)
        | files, _ -> mutate_tokens rng (Rng.pick rng files)
      in
      (name, source))

let run ?(corpus = []) ?(jobs = [ 1; 4 ]) ~n ~seed () =
  let inputs = generate_inputs ~seed ~n ~corpus in
  let failures = ref [] in
  List.iter
    (fun chunk ->
      List.iter
        (fun j ->
          List.iter
            (fun (name, msg) ->
              let source = List.assoc name chunk in
              let minimized = minimize source in
              failures :=
                {
                  fz_name = name;
                  fz_jobs = j;
                  fz_message = msg;
                  fz_source = minimized;
                }
                :: !failures)
            (check_batch ~jobs:j chunk))
        jobs)
    (chunks batch_size inputs);
  { total = n; failures = List.rev !failures }
