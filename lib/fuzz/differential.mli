(** Differential-semantics oracle for the loop-transformation directives.

    Generated programs accumulate order-independently (one associative,
    commutative operator per nest, update terms never reading the
    accumulator) and [record] only between loop nests, so the six
    transformation directives — [unroll], [tile], [reverse],
    [interchange], [stripe], [fuse] — are all trace-preserving whatever
    iteration order they impose.  The oracle compares each program
    against its pragma-stripped reference across every compile
    configuration, and checks that batch compilation ([-j 1] vs [-j N])
    and a cold vs warm persistent store reproduce byte-identical IR. *)

val gen_program : Fuzz.Rng.t -> string
(** A random well-formed program: 1-4 observable loop nests (depth 1-3,
    all four canonical header shapes, zero-trip extents included), each
    optionally under one of the six transformation directives or a
    worksharing wrapper, with a [record(acc)] after every nest. *)

val strip_pragmas : string -> string
(** Drops every ["#pragma omp"] line — the untransformed reference. *)

val check_source : string -> (string * string) option
(** Runs the source under classic/irbuilder × -O0/-O1 × folding on/off ×
    team sizes 4 and 1, comparing traces against the pragma-stripped
    reference compiled classic -O0.  [Some (config, detail)] names the
    first disagreeing configuration. *)

type scripted = {
  sc_name : string;
  sc_plain : string; (* no pragmas; the script's input *)
  sc_pragma : string; (* the directives hand-written into the source *)
  sc_script : string; (* one step per decorated nest *)
}

val gen_scripted : Fuzz.Rng.t -> name:string -> scripted
(** A random program in three coupled renderings: plain, hand-pragma'd,
    and a transfo script ({!Mc_transfo.Script} syntax) addressing each
    decorated nest by its unique outer induction variable. *)

val check_scripted : scripted -> (string * string) option
(** The scripted-transformation oracle: the checked application of
    [sc_script] to [sc_plain] must reproduce the plain trace, and its
    check-free application must produce byte-identical IR with
    [sc_pragma] under every compile configuration.  [Some (config,
    detail)] names the first disagreement. *)

type mismatch = {
  dm_name : string; (* generated input name (embeds seed and index) *)
  dm_config : string; (* the axis that disagreed *)
  dm_detail : string; (* expected/actual traces, or the compile failure *)
  dm_source : string; (* minimized for semantic mismatches *)
  dm_script : string option; (* minimized transfo script, scripted oracle only *)
}

type report = { dm_total : int; dm_mismatches : mismatch list }

val run :
  ?jobs:int list -> ?store_dir:string -> n:int -> seed:int -> unit -> report
(** A campaign over [n] generated programs: the semantic sweep of
    {!check_source} (mismatching inputs are minimized with
    {!Fuzz.minimize}), batch-compilation determinism across every domain
    count in [jobs] (default [[1; 4]]), cold-vs-warm determinism of a
    persistent store rooted at [store_dir] (a throwaway temp directory by
    default), and the {!check_scripted} oracle over [n] further scripted
    programs — a mismatching script is minimized whenever the failure
    reproduces from the (plain, script) pair alone. *)
