open Mc_ir
open Ir

let zero ty = Const_int (ty, 0L)
let one ty = Const_int (ty, 1L)

let func_of_block b =
  match b.b_parent with
  | Some f -> f
  | None -> invalid_arg "block has no parent function"

(* ---- skeleton ---------------------------------------------------------- *)

let create_loop_skeleton builder ~func ~name ~trip_count =
  let blk suffix = create_block ~name:(name ^ "." ^ suffix) func in
  let preheader = blk "preheader" in
  let header = blk "header" in
  let cond = blk "cond" in
  let body = blk "body" in
  let latch = blk "inc" in
  let exit = blk "exit" in
  let after = blk "after" in
  let ty = value_ty trip_count in
  preheader.b_term <- Br header;
  (* Header: the induction-variable phi.  Built by hand (not through the
     folding builder) because the latch increment does not exist yet. *)
  let iv = mk_inst ~name:"omp.iv" ~ty (Phi { incoming = [ (zero ty, preheader) ] }) in
  append_inst header iv;
  header.b_term <- Br cond;
  let saved = try Some (Builder.insertion_block builder) with Invalid_argument _ -> None in
  Builder.set_insertion_point builder cond;
  let cmp = Builder.icmp builder ~name:"omp.cmp" Iult (Inst_ref iv) trip_count in
  cond.b_term <- Cond_br (cmp, body, exit);
  body.b_term <- Br latch;
  Builder.set_insertion_point builder latch;
  let next = Builder.add builder ~name:"omp.next" (Inst_ref iv) (one ty) in
  Builder.add_phi_incoming (Inst_ref iv) (next, latch);
  latch.b_term <- Br header;
  exit.b_term <- Br after;
  (match saved with
  | Some b -> Builder.set_insertion_point builder b
  | None -> Builder.clear_insertion_point builder);
  {
    Cli.cli_func = func;
    cli_preheader = preheader;
    cli_header = header;
    cli_cond = cond;
    cli_body = body;
    cli_latch = latch;
    cli_exit = exit;
    cli_after = after;
    cli_iv = iv;
    cli_trip_count = trip_count;
    cli_valid = true;
  }

let create_canonical_loop builder ?(name = "omp_loop") ~trip_count ~body_gen () =
  let current = Builder.insertion_block builder in
  let func = func_of_block current in
  let cli = create_loop_skeleton builder ~func ~name ~trip_count in
  Builder.set_insertion_point builder current;
  Builder.br builder cli.Cli.cli_preheader;
  (* Populate the body region. *)
  cli.Cli.cli_body.b_term <- No_term;
  Builder.set_insertion_point builder cli.Cli.cli_body;
  body_gen builder (Inst_ref cli.Cli.cli_iv);
  Builder.br builder cli.Cli.cli_latch;
  Builder.set_insertion_point builder cli.Cli.cli_after;
  cli

(* ---- nest surgery shared by tile and collapse --------------------------- *)

(* Old skeleton blocks that a transformation discards.  The outermost
   preheader (reused for new computations), the outermost after block (the
   continuation), and every body block (they carry the front-end's
   per-iteration code, e.g. the loop-value bindings) survive. *)
let discarded_blocks loops =
  List.concat
    (List.mapi
       (fun i (c : Cli.t) ->
         [ c.cli_header; c.cli_cond; c.cli_latch; c.cli_exit ]
         @ if i > 0 then [ c.cli_preheader; c.cli_after ] else [])
       loops)

(* After the new loops exist, thread the preserved body blocks of the old
   nest into one chain: outer body -> inner body (bypassing the deleted
   skeleton blocks of the inner loops). *)
let splice_old_bodies f loops =
  let rec go = function
    | _ :: ((inner : Cli.t) :: _ as rest) ->
      List.iter
        (fun b ->
          replace_successor b ~from:inner.Cli.cli_preheader
            ~into:inner.Cli.cli_body)
        f.f_blocks;
      go rest
    | [ _ ] | [] -> ()
  in
  go loops

let last list = List.nth list (List.length list - 1)

(* Wires a freshly created chain of skeletons into a perfect nest:
   outer.body branches to inner.preheader, inner.after back to outer.latch.
   The innermost body is left alone. *)
let wire_nest (skeletons : Cli.t list) =
  let rec go = function
    | a :: (b :: _ as rest) ->
      a.Cli.cli_body.b_term <- Br b.Cli.cli_preheader;
      b.Cli.cli_after.b_term <- Br a.Cli.cli_latch;
      go rest
    | [ _ ] | [] -> ()
  in
  go skeletons

let check_nest what (loops : Cli.t list) =
  if loops = [] then invalid_arg (what ^ ": empty loop nest");
  List.iter
    (fun (c : Cli.t) ->
      match Cli.verify c with
      | Ok () -> ()
      | Error e -> invalid_arg (Printf.sprintf "%s: invalid loop: %s" what e))
    loops

let tile_loops builder loops ~sizes =
  check_nest "tile_loops" loops;
  if List.length sizes <> List.length loops then
    invalid_arg "tile_loops: one size per loop required";
  let outer = List.hd loops and inner = last loops in
  let f = outer.Cli.cli_func in
  let ty = value_ty outer.Cli.cli_trip_count in
  (* 1. Floor trip counts, computed in the (reused) outermost preheader:
     ceildiv(tc, size) as  tc == 0 ? 0 : (tc-1)/size + 1  to avoid
     overflow at the top of the unsigned range (paper §3.1). *)
  let ph = outer.Cli.cli_preheader in
  ph.b_term <- No_term;
  Builder.set_insertion_point builder ph;
  let floor_tcs =
    List.map2
      (fun (c : Cli.t) size ->
        let tc = c.Cli.cli_trip_count in
        let tcm1 = Builder.sub builder tc (one ty) in
        let d = Builder.udiv builder tcm1 size in
        let d1 = Builder.add builder d (one ty) in
        let is0 = Builder.icmp builder Ieq tc (zero ty) in
        Builder.select builder ~name:"floor.tc" is0 (zero ty) d1)
      loops sizes
  in
  (* 2. Floor loop nest. *)
  let floors =
    List.mapi
      (fun i ftc ->
        create_loop_skeleton builder ~func:f
          ~name:(Printf.sprintf "floor.%d" i)
          ~trip_count:ftc)
      floor_tcs
  in
  ph.b_term <- Br (List.hd floors).Cli.cli_preheader;
  wire_nest floors;
  (* 3. Tile trip counts in the innermost floor body:
     min(size, tc - floor_iv*size). *)
  let fin = last floors in
  fin.Cli.cli_body.b_term <- No_term;
  Builder.set_insertion_point builder fin.Cli.cli_body;
  let tile_tcs =
    List.map2
      (fun ((c : Cli.t), size) (floor : Cli.t) ->
        let tc = c.Cli.cli_trip_count in
        let base = Builder.mul builder (Inst_ref floor.Cli.cli_iv) size in
        let rem = Builder.sub builder tc base in
        Builder.min_u builder ~name:"tile.tc" size rem)
      (List.combine loops sizes)
      floors
  in
  let tiles =
    List.mapi
      (fun i ttc ->
        create_loop_skeleton builder ~func:f
          ~name:(Printf.sprintf "tile.%d" i)
          ~trip_count:ttc)
      tile_tcs
  in
  fin.Cli.cli_body.b_term <- Br (List.hd tiles).Cli.cli_preheader;
  (List.hd tiles).Cli.cli_after.b_term <- Br fin.Cli.cli_latch;
  wire_nest tiles;
  (* 4. Innermost tile body: reconstruct the original induction variables
     and hand control to the preserved body region. *)
  let tin = last tiles in
  tin.Cli.cli_body.b_term <- No_term;
  Builder.set_insertion_point builder tin.Cli.cli_body;
  List.iteri
    (fun i (c : Cli.t) ->
      let floor = List.nth floors i and tile = List.nth tiles i in
      let size = List.nth sizes i in
      let base = Builder.mul builder (Inst_ref floor.Cli.cli_iv) size in
      let orig =
        Builder.add builder ~name:"orig.iv" base (Inst_ref tile.Cli.cli_iv)
      in
      replace_uses_in_func f ~from:(Inst_ref c.Cli.cli_iv) ~into:orig
        ~where:(fun b -> not (b == tin.Cli.cli_body)))
    loops;
  tin.Cli.cli_body.b_term <- Br outer.Cli.cli_body;
  splice_old_bodies f loops;
  (* 5. Body region's back edges now reach the innermost tile latch. *)
  List.iter
    (fun b -> replace_successor b ~from:inner.Cli.cli_latch ~into:tin.Cli.cli_latch)
    f.f_blocks;
  (* 6. Continuation and cleanup. *)
  (List.hd floors).Cli.cli_after.b_term <- Br outer.Cli.cli_after;
  remove_blocks f (discarded_blocks loops);
  List.iter Cli.invalidate loops;
  (* Emission continues at the surviving continuation block. *)
  Builder.set_insertion_point builder outer.Cli.cli_after;
  floors @ tiles

let collapse_loops builder loops =
  check_nest "collapse_loops" loops;
  let outer = List.hd loops and inner = last loops in
  let f = outer.Cli.cli_func in
  let ph = outer.Cli.cli_preheader in
  ph.b_term <- No_term;
  Builder.set_insertion_point builder ph;
  let total =
    List.fold_left
      (fun acc (c : Cli.t) -> Builder.mul builder acc c.Cli.cli_trip_count)
      (one (value_ty outer.Cli.cli_trip_count))
      loops
  in
  let collapsed =
    create_loop_skeleton builder ~func:f ~name:"collapsed" ~trip_count:total
  in
  ph.b_term <- Br collapsed.Cli.cli_preheader;
  collapsed.Cli.cli_after.b_term <- Br outer.Cli.cli_after;
  (* De-linearise: innermost index varies fastest. *)
  collapsed.Cli.cli_body.b_term <- No_term;
  Builder.set_insertion_point builder collapsed.Cli.cli_body;
  let remaining = ref (Inst_ref collapsed.Cli.cli_iv) in
  List.iter
    (fun (c : Cli.t) ->
      let tc = c.Cli.cli_trip_count in
      let this = Builder.urem builder ~name:"collapse.iv" !remaining tc in
      remaining := Builder.udiv builder !remaining tc;
      replace_uses_in_func f ~from:(Inst_ref c.Cli.cli_iv) ~into:this
        ~where:(fun b -> not (b == collapsed.Cli.cli_body)))
    (List.rev loops);
  collapsed.Cli.cli_body.b_term <- Br outer.Cli.cli_body;
  splice_old_bodies f loops;
  List.iter
    (fun b ->
      replace_successor b ~from:inner.Cli.cli_latch
        ~into:collapsed.Cli.cli_latch)
    f.f_blocks;
  remove_blocks f (discarded_blocks loops);
  List.iter Cli.invalidate loops;
  Builder.set_insertion_point builder outer.Cli.cli_after;
  collapsed

(* ---- unrolling ---------------------------------------------------------- *)

let set_unroll_md (cli : Cli.t) md =
  let latch = cli.Cli.cli_latch in
  latch.b_loop_md <- { latch.b_loop_md with md_unroll = Some md }

let unroll_loop_full _builder cli = set_unroll_md cli Unroll_full
let unroll_loop_heuristic _builder cli = set_unroll_md cli Unroll_enable

let unroll_loop_partial builder cli ~factor =
  if factor < 1 then invalid_arg "unroll_loop_partial: factor must be >= 1";
  let ty = value_ty cli.Cli.cli_trip_count in
  match tile_loops builder [ cli ] ~sizes:[ Const_int (ty, Int64.of_int factor) ] with
  | [ floor_cli; tile_cli ] ->
    set_unroll_md tile_cli (Unroll_count factor);
    floor_cli
  | _ -> assert false

(* ---- worksharing -------------------------------------------------------- *)

let static_init_name ty =
  match ty with
  | I64 -> "__kmpc_for_static_init_8u"
  | _ -> "__kmpc_for_static_init_4u"

let apply_static_workshare builder (cli : Cli.t) ~chunk ~nowait =
  (match Cli.verify cli with
  | Ok () -> ()
  | Error e -> invalid_arg ("apply_static_workshare: " ^ e));
  let saved_ip =
    try Some (Builder.insertion_block builder) with Invalid_argument _ -> None
  in
  let f = cli.Cli.cli_func in
  let ty = value_ty cli.Cli.cli_trip_count in
  let tc = cli.Cli.cli_trip_count in
  let ph = cli.Cli.cli_preheader in
  ph.b_term <- No_term;
  Builder.set_insertion_point builder ph;
  let plastiter = Builder.alloca builder ~name:"p.lastiter" I32 in
  let plower = Builder.alloca builder ~name:"p.lowerbound" ty in
  let pupper = Builder.alloca builder ~name:"p.upperbound" ty in
  let pstride = Builder.alloca builder ~name:"p.stride" ty in
  Builder.store builder (zero ty) ~ptr:plower;
  let last_iter = Builder.sub builder tc (one ty) in
  Builder.store builder last_iter ~ptr:pupper;
  Builder.store builder (one ty) ~ptr:pstride;
  let chunk_v = match chunk with Some c -> c | None -> zero ty in
  ignore
    (Builder.call builder ~ret:Void (Runtime (static_init_name ty))
       [ plastiter; plower; pupper; pstride; one ty; chunk_v ]);
  let lb = Builder.load builder ~name:"omp.lb" ty plower in
  let ub = Builder.load builder ~name:"omp.ub" ty pupper in
  (* Chunk trip count with unsigned wrap-around: an empty chunk arrives as
     ub = lb - 1, so ub - lb + 1 wraps to exactly 0. *)
  let span = Builder.sub builder ub lb in
  let newtc = Builder.add builder ~name:"omp.chunk.tc" span (one ty) in
  ph.b_term <- Br cli.Cli.cli_header;
  (* Swap the trip count the cond block compares against. *)
  List.iter
    (map_inst_operands (fun v -> if value_equal v tc then newtc else v))
    (block_insts cli.Cli.cli_cond);
  cli.Cli.cli_trip_count <- newtc;
  (* The body must see lb + iv.  The shifted value is computed at the top of
     the body entry block; every other body-region use of iv is rewritten. *)
  let shifted =
    mk_inst ~name:"omp.shifted.iv" ~ty (Binop (Add, Inst_ref cli.Cli.cli_iv, lb))
  in
  shifted.i_parent <- Some cli.Cli.cli_body;
  cli.Cli.cli_body.b_insts_rev <- cli.Cli.cli_body.b_insts_rev @ [ shifted ];
  let skeleton b =
    b == cli.Cli.cli_header || b == cli.Cli.cli_cond || b == cli.Cli.cli_latch
    || b == cli.Cli.cli_preheader
  in
  List.iter
    (fun b ->
      if not (skeleton b) then begin
        List.iter
          (fun i ->
            if not (i == shifted) then
              map_inst_operands
                (fun v ->
                  if value_equal v (Inst_ref cli.Cli.cli_iv) then Inst_ref shifted
                  else v)
                i)
          (block_insts b);
        map_terminator_operands
          (fun v ->
            if value_equal v (Inst_ref cli.Cli.cli_iv) then Inst_ref shifted
            else v)
          b
      end)
    f.f_blocks;
  (* Exit: release the schedule, then (unless nowait) join the team. *)
  let exit = cli.Cli.cli_exit in
  append_inst exit (mk_inst ~ty:Void (Call { callee = Runtime "__kmpc_for_static_fini"; args = [] }));
  if not nowait then
    append_inst exit
      (mk_inst ~ty:Void (Call { callee = Runtime "__kmpc_barrier"; args = [] }));
  match saved_ip with
  | Some b -> Builder.set_insertion_point builder b
  | None -> Builder.clear_insertion_point builder

(* Dynamic/guided worksharing (LLVM's applyDynamicWorkshareLoop): wrap the
   canonical loop in a dispatch loop that repeatedly grabs [lb, ub] chunks
   from the runtime queue and runs the skeleton over each chunk. *)
let dispatch_site_counter : int ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref 0)

let apply_dynamic_workshare builder (cli : Cli.t) ~guided ~chunk ~nowait =
  (match Cli.verify cli with
  | Ok () -> ()
  | Error e -> invalid_arg ("apply_dynamic_workshare: " ^ e));
  let saved_ip =
    try Some (Builder.insertion_block builder) with Invalid_argument _ -> None
  in
  let sites = Domain.DLS.get dispatch_site_counter in
  incr sites;
  let site = Const_int (I32, Int64.of_int !sites) in
  let f = cli.Cli.cli_func in
  let ty = value_ty cli.Cli.cli_trip_count in
  let tc = cli.Cli.cli_trip_count in
  let init_name, next_name =
    if ty = I64 then ("__kmpc_dispatch_init_8u", "__kmpc_dispatch_next_8u")
    else ("__kmpc_dispatch_init_4u", "__kmpc_dispatch_next_4u")
  in
  (* Preheader: allocas + dispatch_init, then enter the dispatch loop. *)
  let ph = cli.Cli.cli_preheader in
  ph.b_term <- No_term;
  Builder.set_insertion_point builder ph;
  let plb = Builder.alloca builder ~name:"p.dispatch.lb" ty in
  let pub = Builder.alloca builder ~name:"p.dispatch.ub" ty in
  let chunk_v = match chunk with Some c -> c | None -> one ty in
  let kind = Const_int (I32, if guided then 3L else 2L) in
  ignore
    (Builder.call builder ~ret:Void (Runtime init_name)
       [ site; tc; chunk_v; kind ]);
  let dispatch_cond = create_block ~name:"omp_dispatch.cond" f in
  let dispatch_body = create_block ~name:"omp_dispatch.body" f in
  ph.b_term <- Br dispatch_cond;
  Builder.set_insertion_point builder dispatch_cond;
  let got =
    Builder.call builder ~ret:I32 (Runtime next_name) [ site; plb; pub ]
  in
  let more = Builder.icmp builder Ine got (Const_int (I32, 0L)) in
  dispatch_cond.b_term <- Cond_br (more, dispatch_body, cli.Cli.cli_after);
  Builder.set_insertion_point builder dispatch_body;
  let lb = Builder.load builder ~name:"dispatch.lb" ty plb in
  let ub = Builder.load builder ~name:"dispatch.ub" ty pub in
  let chunk_end = Builder.add builder ~name:"dispatch.end" ub (one ty) in
  dispatch_body.b_term <- Br cli.Cli.cli_header;
  (* The skeleton now iterates [lb, ub]: the header phi starts at lb (its
     preheader edge now comes from dispatch_body) and the cond compares
     against ub + 1. *)
  (match cli.Cli.cli_iv.i_kind with
  | Phi { incoming } ->
    cli.Cli.cli_iv.i_kind <-
      Phi
        {
          incoming =
            List.map
              (fun (v, b) -> if b == ph then (lb, dispatch_body) else (v, b))
              incoming;
        }
  | _ -> ());
  List.iter
    (map_inst_operands (fun v -> if value_equal v tc then chunk_end else v))
    (block_insts cli.Cli.cli_cond);
  cli.Cli.cli_trip_count <- chunk_end;
  (* The skeleton's exit loops back for the next chunk; the dispatch cond's
     false edge is the real exit into the after block. *)
  cli.Cli.cli_exit.b_term <- Br dispatch_cond;
  if not nowait then
    append_inst cli.Cli.cli_after
      (mk_inst ~ty:Void (Call { callee = Runtime "__kmpc_barrier"; args = [] }));
  Cli.invalidate cli;
  match saved_ip with
  | Some b -> Builder.set_insertion_point builder b
  | None -> Builder.clear_insertion_point builder

let apply_simd (cli : Cli.t) ~simdlen =
  let latch = cli.Cli.cli_latch in
  latch.b_loop_md <-
    { latch.b_loop_md with md_vectorize_width = (match simdlen with Some n -> Some n | None -> Some 0) }

(* ---- parallel regions --------------------------------------------------- *)

let outlined_counter : int ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref 0)

(* Both name-generation counters are domain-local (race-free under
   [Mc_core.Batch]) and reset per compilation by the driver so outlined
   function names and dispatch-site ids are deterministic. *)
let reset_gensym () =
  Domain.DLS.get dispatch_site_counter := 0;
  Domain.DLS.get outlined_counter := 0

let create_parallel builder m ~name ~num_threads ~if_cond ~captures ~body_gen =
  List.iter
    (fun c ->
      if value_ty c <> Ptr then
        invalid_arg "create_parallel: captures must be pointers")
    captures;
  let outlined_n = Domain.DLS.get outlined_counter in
  incr outlined_n;
  let fn_name = Printf.sprintf "%s.omp_outlined.%d" name !outlined_n in
  let gtid = mk_arg ~name:".global_tid." ~ty:Ptr in
  let btid = mk_arg ~name:".bound_tid." ~ty:Ptr in
  let ctx_arg = mk_arg ~name:".context." ~ty:Ptr in
  let outlined =
    define_function m ~name:fn_name ~ret:Void ~args:[ gtid; btid; ctx_arg ]
  in
  let entry = create_block ~name:"entry" outlined in
  let parent_block = Builder.insertion_block builder in
  Builder.set_insertion_point builder entry;
  let get_capture i =
    Builder.load builder ~name:(Printf.sprintf "capture.%d" i) Ptr
      (Builder.gep builder ~elt_ty:Ptr (Arg ctx_arg) (i64_const i))
  in
  body_gen builder ~get_capture;
  Builder.ret builder None;
  (* Back in the caller: build the capture context and fork. *)
  Builder.set_insertion_point builder parent_block;
  let ctx =
    Builder.alloca builder ~name:"omp.context"
      ~count:(max 1 (List.length captures))
      Ptr
  in
  List.iteri
    (fun i c ->
      Builder.store builder c
        ~ptr:(Builder.gep builder ~elt_ty:Ptr ctx (i64_const i)))
    captures;
  (match num_threads with
  | Some n ->
    ignore
      (Builder.call builder ~ret:Void (Runtime "__kmpc_push_num_threads") [ n ])
  | None -> ());
  match if_cond with
  | None ->
    ignore
      (Builder.call builder ~ret:Void (Runtime "__kmpc_fork_call")
         [ Fn_addr outlined; ctx ])
  | Some c ->
    (* if(0): run the region sequentially on the encountering thread. *)
    let f = func_of_block parent_block in
    let then_b = create_block ~name:"omp_if.then" f in
    let else_b = create_block ~name:"omp_if.else" f in
    let cont_b = create_block ~name:"omp_if.end" f in
    Builder.cond_br builder c then_b else_b;
    Builder.set_insertion_point builder then_b;
    ignore
      (Builder.call builder ~ret:Void (Runtime "__kmpc_fork_call")
         [ Fn_addr outlined; ctx ]);
    Builder.br builder cont_b;
    Builder.set_insertion_point builder else_b;
    ignore
      (Builder.call builder ~ret:Void (Runtime "__kmpc_serialized_parallel")
         [ Fn_addr outlined; ctx ]);
    Builder.br builder cont_b;
    Builder.set_insertion_point builder cont_b

let create_barrier builder =
  ignore (Builder.call builder ~ret:Void (Runtime "__kmpc_barrier") [])

let guarded_region builder ~cond_gen ~body_gen ~after_gen =
  let current = Builder.insertion_block builder in
  let f = func_of_block current in
  let then_b = create_block ~name:"omp_region.then" f in
  let cont_b = create_block ~name:"omp_region.end" f in
  let c = cond_gen () in
  Builder.cond_br builder c then_b cont_b;
  Builder.set_insertion_point builder then_b;
  body_gen builder;
  Builder.br builder cont_b;
  Builder.set_insertion_point builder cont_b;
  after_gen ()

let create_master builder ~body_gen =
  guarded_region builder
    ~cond_gen:(fun () ->
      let tid =
        Builder.call builder ~ret:I32 (Runtime "omp_get_thread_num") []
      in
      Builder.icmp builder Ieq tid (i32_const 0))
    ~body_gen
    ~after_gen:(fun () -> ())

let create_single builder ~nowait ~body_gen =
  guarded_region builder
    ~cond_gen:(fun () ->
      let got =
        Builder.call builder ~ret:I32 (Runtime "__kmpc_single") []
      in
      Builder.icmp builder Ine got (i32_const 0))
    ~body_gen:(fun b ->
      body_gen b;
      ignore (Builder.call b ~ret:Void (Runtime "__kmpc_end_single") []))
    ~after_gen:(fun () -> if not nowait then create_barrier builder)

(* ---- OpenMP 6.0 preview transformations --------------------------------- *)

(* Reverse: iterations run in the opposite order.  The logical space stays
   0..tc; body-region uses of the induction variable are rewritten to
   (tc - 1) - iv, computed at the top of the body entry block. *)
let reverse_loop _builder (cli : Cli.t) =
  (match Cli.verify cli with
  | Ok () -> ()
  | Error e -> invalid_arg ("reverse_loop: " ^ e));
  let f = cli.Cli.cli_func in
  let ty = value_ty cli.Cli.cli_trip_count in
  let last =
    mk_inst ~name:"rev.last" ~ty
      (Binop (Sub, cli.Cli.cli_trip_count, one ty))
  in
  let reversed =
    mk_inst ~name:"rev.iv" ~ty
      (Binop (Sub, Inst_ref last, Inst_ref cli.Cli.cli_iv))
  in
  (* Prepend to the body entry so the values dominate the body region. *)
  reversed.i_parent <- Some cli.Cli.cli_body;
  last.i_parent <- Some cli.Cli.cli_body;
  cli.Cli.cli_body.b_insts_rev <-
    cli.Cli.cli_body.b_insts_rev @ [ reversed; last ];
  let skeleton b =
    b == cli.Cli.cli_header || b == cli.Cli.cli_cond || b == cli.Cli.cli_latch
    || b == cli.Cli.cli_preheader
  in
  List.iter
    (fun b ->
      if not (skeleton b) then begin
        List.iter
          (fun i ->
            if not (i == reversed || i == last) then
              map_inst_operands
                (fun v ->
                  if value_equal v (Inst_ref cli.Cli.cli_iv) then
                    Inst_ref reversed
                  else v)
                i)
          (block_insts b);
        map_terminator_operands
          (fun v ->
            if value_equal v (Inst_ref cli.Cli.cli_iv) then Inst_ref reversed
            else v)
          b
      end)
    f.f_blocks;
  cli

(* Stripe: strip-mine each loop of a perfectly nested canonical nest
   independently, keeping every grid/stripe pair adjacent (OpenMP 6.0's
   stripe construct).  Unlike tileLoops — which hoists all grid loops above
   all intratile loops — the generated nest preserves the original
   execution order exactly.  Returns the 2n generated loops, outermost
   first (grid.0, stripe.0, grid.1, stripe.1, ...). *)
let stripe_loops builder loops ~sizes =
  check_nest "stripe_loops" loops;
  if List.length sizes <> List.length loops then
    invalid_arg "stripe_loops: one size per loop required";
  let outer = List.hd loops and inner = last loops in
  let f = outer.Cli.cli_func in
  let ty = value_ty outer.Cli.cli_trip_count in
  (* Grid trip counts in the (reused) outermost preheader: overflow-safe
     ceildiv, exactly as in tile_loops. *)
  let ph = outer.Cli.cli_preheader in
  ph.b_term <- No_term;
  Builder.set_insertion_point builder ph;
  let grid_tcs =
    List.map2
      (fun (c : Cli.t) size ->
        let tc = c.Cli.cli_trip_count in
        let tcm1 = Builder.sub builder tc (one ty) in
        let d = Builder.udiv builder tcm1 size in
        let d1 = Builder.add builder d (one ty) in
        let is0 = Builder.icmp builder Ieq tc (zero ty) in
        Builder.select builder ~name:"grid.tc" is0 (zero ty) d1)
      loops sizes
  in
  (* Build the interleaved nest top-down.  [container] is the unterminated
     block that enters the next pair; [parent_latch] receives the pair's
     grid-after edge. *)
  let container = ref ph in
  let parent_latch = ref None in
  let pairs =
    List.mapi
      (fun k (c : Cli.t) ->
        let size = List.nth sizes k in
        let grid =
          create_loop_skeleton builder ~func:f
            ~name:(Printf.sprintf "stripe.grid.%d" k)
            ~trip_count:(List.nth grid_tcs k)
        in
        !container.b_term <- Br grid.Cli.cli_preheader;
        (* Stripe trip count inside the grid body:
           min(size, tc - grid_iv*size). *)
        grid.Cli.cli_body.b_term <- No_term;
        Builder.set_insertion_point builder grid.Cli.cli_body;
        let tc = c.Cli.cli_trip_count in
        let base = Builder.mul builder (Inst_ref grid.Cli.cli_iv) size in
        let rem = Builder.sub builder tc base in
        let stc = Builder.min_u builder ~name:"stripe.tc" size rem in
        let stripe =
          create_loop_skeleton builder ~func:f
            ~name:(Printf.sprintf "stripe.%d" k)
            ~trip_count:stc
        in
        grid.Cli.cli_body.b_term <- Br stripe.Cli.cli_preheader;
        stripe.Cli.cli_after.b_term <- Br grid.Cli.cli_latch;
        (match !parent_latch with
        | None -> grid.Cli.cli_after.b_term <- Br outer.Cli.cli_after
        | Some latch -> grid.Cli.cli_after.b_term <- Br latch);
        parent_latch := Some stripe.Cli.cli_latch;
        container := stripe.Cli.cli_body;
        (grid, stripe))
      loops
  in
  (* Innermost stripe body: reconstruct the original induction variables
     and hand control to the preserved body region. *)
  let _, innermost_stripe = last pairs in
  innermost_stripe.Cli.cli_body.b_term <- No_term;
  Builder.set_insertion_point builder innermost_stripe.Cli.cli_body;
  List.iteri
    (fun k (c : Cli.t) ->
      let grid, stripe = List.nth pairs k in
      let size = List.nth sizes k in
      let base = Builder.mul builder (Inst_ref grid.Cli.cli_iv) size in
      let orig =
        Builder.add builder ~name:"orig.iv" base (Inst_ref stripe.Cli.cli_iv)
      in
      replace_uses_in_func f ~from:(Inst_ref c.Cli.cli_iv) ~into:orig
        ~where:(fun b -> not (b == innermost_stripe.Cli.cli_body)))
    loops;
  innermost_stripe.Cli.cli_body.b_term <- Br outer.Cli.cli_body;
  splice_old_bodies f loops;
  List.iter
    (fun b ->
      replace_successor b ~from:inner.Cli.cli_latch
        ~into:innermost_stripe.Cli.cli_latch)
    f.f_blocks;
  remove_blocks f (discarded_blocks loops);
  List.iter Cli.invalidate loops;
  Builder.set_insertion_point builder outer.Cli.cli_after;
  List.concat_map (fun (g, s) -> [ g; s ]) pairs

(* Fuse: merge a *sequence* of sibling canonical loops (laid out so each
   member's after block enters the next member's preheader) into one loop
   over the maximum trip count; each member's body runs under an
   (iv < tc_k) guard.  All members must share one trip-count type — the
   caller widens first.  Returns the fused loop's handle. *)
let fuse_loops builder loops =
  if List.length loops < 2 then
    invalid_arg "fuse_loops: at least two loops required";
  check_nest "fuse_loops" loops;
  let first = List.hd loops in
  let f = first.Cli.cli_func in
  List.iter
    (fun (c : Cli.t) ->
      if not (c.Cli.cli_func == f) then
        invalid_arg "fuse_loops: members live in different functions")
    loops;
  let ty = value_ty first.Cli.cli_trip_count in
  List.iter
    (fun (c : Cli.t) ->
      if value_ty c.Cli.cli_trip_count <> ty then
        invalid_arg "fuse_loops: members must share one trip-count type")
    loops;
  (* Maximum trip count, computed in the first member's (reused)
     preheader; every member trip count dominates it by construction. *)
  let ph = first.Cli.cli_preheader in
  ph.b_term <- No_term;
  Builder.set_insertion_point builder ph;
  let max_tc =
    List.fold_left
      (fun acc (c : Cli.t) ->
        let cmp = Builder.icmp builder Iult acc c.Cli.cli_trip_count in
        Builder.select builder ~name:"fuse.tc" cmp c.Cli.cli_trip_count acc)
      (zero ty) loops
  in
  let fused =
    create_loop_skeleton builder ~func:f ~name:"fused" ~trip_count:max_tc
  in
  ph.b_term <- Br fused.Cli.cli_preheader;
  (* Fused body: a chain of guarded member bodies. *)
  fused.Cli.cli_body.b_term <- No_term;
  let conts =
    List.mapi
      (fun k _ -> create_block ~name:(Printf.sprintf "fuse.cont.%d" k) f)
      loops
  in
  List.iteri
    (fun k (c : Cli.t) ->
      let guard_blk =
        if k = 0 then fused.Cli.cli_body else List.nth conts (k - 1)
      in
      Builder.set_insertion_point builder guard_blk;
      let g =
        Builder.icmp builder ~name:"fuse.guard" Iult
          (Inst_ref fused.Cli.cli_iv)
          c.Cli.cli_trip_count
      in
      guard_blk.b_term <- Cond_br (g, c.Cli.cli_body, List.nth conts k);
      (* The member body now runs on the fused induction variable, and its
         back edges land on the continuation chain. *)
      replace_uses_in_func f
        ~from:(Inst_ref c.Cli.cli_iv)
        ~into:(Inst_ref fused.Cli.cli_iv);
      List.iter
        (fun b ->
          replace_successor b ~from:c.Cli.cli_latch ~into:(List.nth conts k))
        f.f_blocks)
    loops;
  (last conts).b_term <- Br fused.Cli.cli_latch;
  remove_blocks f (discarded_blocks loops @ [ first.Cli.cli_after ]);
  List.iter Cli.invalidate loops;
  Builder.set_insertion_point builder fused.Cli.cli_after;
  fused

(* Fission: the dual of fuse.  Emits one canonical loop per body generator,
   laid out sequentially (each member's after block is the next member's
   entry), all sharing a single trip-count value — which therefore must
   dominate the insertion point.  Returns the member handles in order. *)
let fission_loops builder ~trip_count ~bodies () =
  if bodies = [] then invalid_arg "fission_loops: at least one body required";
  List.mapi
    (fun k body_gen ->
      create_canonical_loop builder
        ~name:(Printf.sprintf "fission.member.%d" k)
        ~trip_count ~body_gen ())
    bodies

(* Interchange: permute a perfectly nested canonical nest.  [perm] gives,
   for each depth of the NEW nest (outermost first), the index of the
   original loop that runs there.  Same surgery as tileLoops without the
   floor/tile split: fresh skeletons in permuted order, the preserved body
   chain spliced inside the innermost one. *)
let interchange_loops builder loops ~perm =
  check_nest "interchange_loops" loops;
  let n = List.length loops in
  if List.sort compare perm <> List.init n Fun.id then
    invalid_arg "interchange_loops: perm must be a permutation of 0..n-1";
  let outer = List.hd loops and inner = last loops in
  let f = outer.Cli.cli_func in
  let ph = outer.Cli.cli_preheader in
  ph.b_term <- No_term;
  Builder.set_insertion_point builder ph;
  let fresh =
    List.mapi
      (fun j k ->
        let original = List.nth loops k in
        create_loop_skeleton builder ~func:f
          ~name:(Printf.sprintf "interchange.%d" j)
          ~trip_count:original.Cli.cli_trip_count)
      perm
  in
  ph.b_term <- Br (List.hd fresh).Cli.cli_preheader;
  wire_nest fresh;
  (* Replace each original induction variable with the fresh loop that now
     drives it. *)
  List.iteri
    (fun j k ->
      let original = List.nth loops k in
      let replacement = List.nth fresh j in
      replace_uses_in_func f
        ~from:(Inst_ref original.Cli.cli_iv)
        ~into:(Inst_ref replacement.Cli.cli_iv))
    perm;
  let fin = last fresh in
  fin.Cli.cli_body.b_term <- Br outer.Cli.cli_body;
  splice_old_bodies f loops;
  List.iter
    (fun b -> replace_successor b ~from:inner.Cli.cli_latch ~into:fin.Cli.cli_latch)
    f.f_blocks;
  (List.hd fresh).Cli.cli_after.b_term <- Br outer.Cli.cli_after;
  remove_blocks f (discarded_blocks loops);
  List.iter Cli.invalidate loops;
  Builder.set_insertion_point builder outer.Cli.cli_after;
  fresh
