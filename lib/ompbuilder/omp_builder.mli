(** The OpenMPIRBuilder (paper §1.3/§3.2): base-language-independent OpenMP
    lowering shared by any front-end.

    [create_canonical_loop] materialises the Fig. 10 loop skeleton and
    returns a {!Cli.t} handle; the loop-transformation entry points
    ([tile_loops], [unroll_loop_*], [collapse_loops]) and the worksharing /
    parallel-region entry points consume and produce such handles, exactly
    like their LLVM namesakes ([createCanonicalLoop], [tileLoops],
    [unrollLoop*], [collapseLoops], [applyStaticWorkshareLoop],
    [createParallel]).

    Deviations from LLVM, per DESIGN.md: [create_parallel] generates the
    region directly into a fresh outlined function via a callback instead of
    extracting IR post hoc; the observable structure (outlined function +
    [__kmpc_fork_call] with a capture context) is the same. *)

open Mc_ir

val reset_gensym : unit -> unit
(** Resets this domain's outlined-function and dispatch-site name
    counters; the driver calls it at the start of every compilation so
    generated names are deterministic across (parallel) compiles. *)

val create_loop_skeleton :
  Builder.t -> func:Ir.func -> name:string -> trip_count:Ir.value -> Cli.t
(** Low-level: a fresh, internally wired skeleton.  The preheader has no
    predecessor yet and the after block no terminator; callers wire both.
    The body block branches straight to the latch. *)

val create_canonical_loop :
  Builder.t ->
  ?name:string ->
  trip_count:Ir.value ->
  body_gen:(Builder.t -> Ir.value -> unit) ->
  unit ->
  Cli.t
(** Splits emission at the builder's insertion point: the current block
    branches to the new preheader, [body_gen] receives the builder
    positioned in the body block together with the logical induction
    variable, and on return the builder is positioned in the after block. *)

val tile_loops : Builder.t -> Cli.t list -> sizes:Ir.value list -> Cli.t list
(** Tiles a perfectly nested loop nest (outermost first).  Returns the [2n]
    generated loops: [n] floor loops followed by [n] tile loops.  The input
    handles are invalidated.  Requires every trip count and size value to
    dominate the outermost preheader. *)

val collapse_loops : Builder.t -> Cli.t list -> Cli.t
(** Fuses a perfectly nested nest into one loop whose trip count is the
    product; input handles are invalidated. *)

val unroll_loop_full : Builder.t -> Cli.t -> unit
(** Tags the loop with [llvm.loop.unroll.full] metadata for the mid-end
    LoopUnroll pass (paper §2.2: no duplication before the mid-end). *)

val unroll_loop_heuristic : Builder.t -> Cli.t -> unit
(** Tags with [llvm.loop.unroll.enable]; the mid-end chooses the factor. *)

val unroll_loop_partial : Builder.t -> Cli.t -> factor:int -> Cli.t
(** Partial unrolling as tile-then-fully-unroll-inner (paper §1.1): tiles by
    [factor], tags the inner tile loop for unrolling, and returns the floor
    loop as the generated loop that further directives may consume. *)

val apply_static_workshare :
  Builder.t -> Cli.t -> chunk:Ir.value option -> nowait:bool -> unit
(** [createWorkshareLoop]: distributes iterations across the team with the
    static schedule via [__kmpc_for_static_init]; the loop then runs only
    this thread's chunk.  Adds [__kmpc_for_static_fini] and, unless
    [nowait], a barrier on exit. *)

val apply_dynamic_workshare :
  Builder.t -> Cli.t -> guided:bool -> chunk:Ir.value option -> nowait:bool ->
  unit
(** [applyDynamicWorkshareLoop]: wraps the canonical loop in a dispatch
    loop pulling [lb, ub] chunks from the runtime queue
    ([__kmpc_dispatch_init]/[__kmpc_dispatch_next]).  The handle is
    invalidated (the skeleton no longer satisfies its invariants: its exit
    loops back to the dispatcher). *)

val apply_simd : Cli.t -> simdlen:int option -> unit
(** Tags the loop with vectorisation metadata. *)

val create_parallel :
  Builder.t ->
  Ir.modul ->
  name:string ->
  num_threads:Ir.value option ->
  if_cond:Ir.value option ->
  captures:Ir.value list ->
  body_gen:(Builder.t -> get_capture:(int -> Ir.value) -> unit) ->
  unit
(** Emits an outlined function and a [__kmpc_fork_call].  [captures] must be
    pointer-typed; inside the region [get_capture i] yields the i-th one. *)

val create_barrier : Builder.t -> unit

val create_master : Builder.t -> body_gen:(Builder.t -> unit) -> unit
(** Guards the region so only thread 0 of the team executes it. *)

val create_single : Builder.t -> nowait:bool -> body_gen:(Builder.t -> unit) -> unit
(** First thread to arrive executes; others skip; barrier unless [nowait]. *)

(* ---- OpenMP 6.0 preview transformations (the paper's "additional loop
   transformations" outlook) ---------------------------------------------- *)

val reverse_loop : Builder.t -> Cli.t -> Cli.t
(** Runs the iterations in the opposite order; returns the same handle
    (the skeleton is unchanged, only the body's view of the induction
    variable is rewritten). *)

val interchange_loops : Builder.t -> Cli.t list -> perm:int list -> Cli.t list
(** Permutes a perfectly nested nest.  [perm] lists, outermost first, the
    0-based index of the original loop to run at each depth.  Inputs are
    invalidated; the fresh nest is returned outermost first. *)

val stripe_loops : Builder.t -> Cli.t list -> sizes:Ir.value list -> Cli.t list
(** Strip-mines each loop of a perfectly nested nest independently.  Unlike
    [tile_loops], the generated grid/stripe pairs stay adjacent
    (grid_0, stripe_0, grid_1, stripe_1, ...), so the original execution
    order is preserved exactly.  Returns the [2n] generated loops in that
    interleaved order; input handles are invalidated.  Requires every trip
    count and size value to dominate the outermost preheader. *)

val fuse_loops : Builder.t -> Cli.t list -> Cli.t
(** Fuses a sequence of sibling loops (at least two, laid out sequentially:
    each member's after block must reach the next member's preheader) into
    one loop over the maximum trip count; each member's body runs under an
    [iv < tc_k] guard.  All trip counts must share one type and dominate the
    first member's preheader.  Inputs are invalidated. *)

val fission_loops :
  Builder.t ->
  trip_count:Ir.value ->
  bodies:(Builder.t -> Ir.value -> unit) list ->
  unit ->
  Cli.t list
(** The dual of [fuse_loops]: emits one canonical loop per body generator,
    laid out sequentially, all sharing [trip_count] (which must dominate
    the insertion point).  Returns the member handles in order; the builder
    ends up in the last member's after block. *)
