(** The transformation-script surface: one step per line,

    {v <op> [params] @ <selector> <selector> ... v}

    e.g. [tile sizes(4,4) @ fun(matmat) for(i) for(j)].  ['#'] starts a
    comment.  Every op except [memset] expands to exactly one OpenMP 6.0
    transformation pragma ({!pragma_of_op}), which is what makes scripted
    and hand-pragma'd sources produce byte-identical IR. *)

type op =
  | Op_unroll of [ `Full | `Heuristic | `Partial of int ]
  | Op_tile of int list
  | Op_stripe of int list
  | Op_reverse
  | Op_interchange of int list option
      (** permutation, 1-based, pragma syntax *)
  | Op_fuse
  | Op_fission
  | Op_memset  (** idiom rewrite: zeroing loop -> memset call *)

type step = {
  st_op : op;
  st_target : Target.t;
  st_line : int;  (** 1-based line in the script file *)
  st_text : string;  (** the step's source text, for traces *)
}

type parse_error = { pe_line : int; pe_msg : string }

val parse : string -> (step list, parse_error) result

val render_op : op -> string
val render_step : step -> string

val pragma_of_op : op -> string option
(** The pragma a step expands to; [None] for idiom rewrites ([memset]). *)

val canonical : string -> string
(** The cache-key form of a script: comments and whitespace stripped, so
    editing a comment keeps the stage fingerprint (warm hit). *)
