(** The checked application engine.  Each step re-front-ends the current
    source, resolves the target against the fresh AST, rewrites the source
    (pragma insertion above any existing pragma block — so later steps
    consume the loops earlier steps generate, the paper's §2.2 composition
    order — or the memset idiom rewrite), then runs the differential
    semantic check on the program before vs after the step. *)

type config = {
  frontend :
    name:string -> string -> Mc_diag.Diagnostics.t * Mc_ast.Tree.translation_unit;
      (** Parse+sema one source; never raises. *)
  check :
    (name:string -> before:string -> after:string -> (unit, string) result)
    option;
      (** Differential semantic check (interpreter before vs after);
          [None] disables checking. *)
}

type step_trace = {
  tr_step : Script.step;
  tr_action : string;  (** human-readable description of the rewrite *)
  tr_checked : bool;  (** did the semantic oracle run for this step? *)
}

type outcome = { out_source : string; out_trace : step_trace list }

val render_trace : outcome -> string

val run :
  config ->
  name:string ->
  script:string ->
  source:string ->
  (outcome, string) result
(** Applies every step of [script] to [source].  Programs without a
    runnable [main] (pure kernels) skip the differential check but still
    resolve and rewrite.  The error string is fully rendered (diagnostics
    included) and names the failing script line. *)
