(** The transformation-target DSL (OptiTrust-style, per ROADMAP): a chain
    of selectors narrowing the AST to exactly one statement.  Resolution
    refuses ambiguity — zero matches and more than one match are both
    errors; the latter carries one note per candidate and is resolved with
    [occurrence k]. *)

type selector =
  | In_fun of string  (** [fun(NAME)]: scope to the body of a named function *)
  | For_var of string  (** [for(V)]: a for loop iterating variable V *)
  | Loop_seq  (** [seq]: a compound of two or more loops (fuse target) *)
  | With_depth of int  (** [depth(N)]: keep matches at least N loops deep *)
  | Occurrence of int  (** [occurrence(K)]: pick the K-th match, 1-based *)

type t = selector list

val render : t -> string

(** Combinator constructors mirroring the OptiTrust naming. *)

val cFun : string -> t
val cFor : string -> t
val cSeq : t
val nested_in : t -> t -> t
val with_depth : t -> int -> t
val occurrence : t -> int -> t

val unwrap_single : Mc_ast.Tree.stmt -> Mc_ast.Tree.stmt
(** Strips singleton compounds and attributed wrappers. *)

val is_loop_seq : Mc_ast.Tree.stmt -> bool
(** A compound of >= 2 loops — what [fuse] associates with. *)

val loop_var_name : Mc_ast.Tree.stmt -> string option
(** The iteration variable a [for(V)] selector matches against. *)

type error = Resolution_failed

val resolve :
  Mc_diag.Diagnostics.t ->
  Mc_ast.Tree.translation_unit ->
  t ->
  (Mc_ast.Tree.stmt, error) result
(** Resolves a target to the unique statement it denotes, emitting
    "matched no statement" / "matched N statements" diagnostics (the
    latter with a located note per candidate) on failure. *)
