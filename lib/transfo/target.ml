open Mc_ast.Tree
module Visit = Mc_ast.Visit
module Diag = Mc_diag.Diagnostics

(* The target DSL (OptiTrust-style): a chain of selectors that narrows the
   AST down to exactly one statement.  Each structural selector searches
   *inside* the previous matches, so [for "i"; for "j"] means "a j-loop
   nested in an i-loop".  Resolution refuses ambiguity: zero matches and
   more than one match are both hard errors (the latter carries one note
   per candidate and is resolved with [occurrence k]). *)

type selector =
  | In_fun of string (* fun(NAME): scope to the body of a named function *)
  | For_var of string (* for(V): a for loop iterating variable V *)
  | Loop_seq (* seq: a compound of >= 2 loops (fuse target) *)
  | With_depth of int (* depth(N): keep matches at least N loops deep *)
  | Occurrence of int (* occurrence(K): pick the K-th match, 1-based *)

type t = selector list

let render_selector = function
  | In_fun n -> Printf.sprintf "fun(%s)" n
  | For_var v -> Printf.sprintf "for(%s)" v
  | Loop_seq -> "seq"
  | With_depth n -> Printf.sprintf "depth(%d)" n
  | Occurrence n -> Printf.sprintf "occurrence(%d)" n

let render t = String.concat " " (List.map render_selector t)

(* Combinator constructors, mirroring the OptiTrust naming the ROADMAP
   cites: [cFun "matmat"], [cFor "i"], nesting by juxtaposition. *)
let cFun name : t = [ In_fun name ]
let cFor v : t = [ For_var v ]
let cSeq : t = [ Loop_seq ]
let nested_in outer inner : t = outer @ inner
let with_depth t n : t = t @ [ With_depth n ]
let occurrence t k : t = t @ [ Occurrence k ]

(* ---- structural predicates ---------------------------------------------- *)

let rec unwrap_single s =
  match s.s_kind with
  | Compound [ x ] -> unwrap_single x
  | Attributed (_, x) -> unwrap_single x
  | _ -> s

let is_loop s =
  match s.s_kind with For _ | Range_for _ -> true | _ -> false

let loop_var_name s =
  match s.s_kind with
  | For { for_init = Some init; _ } -> (
    match init.s_kind with
    | Decl_stmt [ v ] -> Some v.v_name
    | Expr_stmt { e_kind = Assign (None, { e_kind = Decl_ref v; _ }, _); _ } ->
      Some v.v_name
    | _ -> None)
  | Range_for rf -> Some rf.rf_var.v_name
  | _ -> None

(* Perfect-nest depth: how many loops deep a [depth n] constraint can see. *)
let rec perfect_depth s =
  match (unwrap_single s).s_kind with
  | For { for_body; _ } ->
    let b = unwrap_single for_body in
    if is_loop b then 1 + perfect_depth b else 1
  | Range_for _ -> 1
  | _ -> 0

let is_loop_seq s =
  match s.s_kind with
  | Compound members when List.length members >= 2 ->
    List.for_all (fun m -> is_loop (unwrap_single m)) members
  | _ -> false

let rec subtree s =
  s :: List.concat_map subtree (Visit.stmt_sub_stmts ~shadow:false s)

let strict_subtree s =
  List.concat_map subtree (Visit.stmt_sub_stmts ~shadow:false s)

let dedup_by_id stmts =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun s ->
      if Hashtbl.mem seen s.s_id then false
      else begin
        Hashtbl.add seen s.s_id ();
        true
      end)
    stmts

(* ---- resolution ----------------------------------------------------------- *)

type error = Resolution_failed

let functions tu =
  List.filter_map
    (function
      | Tu_fn f when f.fn_body <> None && not f.fn_builtin -> Some f
      | _ -> None)
    tu.tu_decls

let rec with_notes diag notes f =
  match notes with
  | [] -> f ()
  | (loc, msg) :: rest ->
    Diag.with_context_note diag ~loc msg (fun () -> with_notes diag rest f)

let resolve diag tu (t : t) : (stmt, error) result =
  let error ~loc fmt =
    Printf.ksprintf
      (fun s ->
        Diag.error diag ~loc s;
        Error Resolution_failed)
      fmt
  in
  let rendered = render t in
  (* [cands] are the current matches; while [scoped] they are whole-function
     bodies and structural selectors may match the scope node itself. *)
  let step (cands, scoped, anchor) sel =
    match sel with
    | In_fun name ->
      let fns = List.filter (fun f -> f.fn_name = name) (functions tu) in
      let anchor =
        match fns with f :: _ -> f.fn_loc | [] -> anchor
      in
      (List.filter_map (fun f -> f.fn_body) fns, true, anchor)
    | For_var v ->
      let space c = if scoped then subtree c else strict_subtree c in
      let hits =
        List.concat_map
          (fun c ->
            List.filter
              (fun s -> is_loop s && loop_var_name s = Some v)
              (space c))
          cands
      in
      (dedup_by_id hits, false, anchor)
    | Loop_seq ->
      let space c = if scoped then subtree c else strict_subtree c in
      let hits =
        List.concat_map (fun c -> List.filter is_loop_seq (space c)) cands
      in
      (dedup_by_id hits, false, anchor)
    | With_depth n ->
      (List.filter (fun s -> perfect_depth s >= n) cands, scoped, anchor)
    | Occurrence k ->
      let picked =
        if k >= 1 && k <= List.length cands then [ List.nth cands (k - 1) ]
        else []
      in
      (picked, scoped, anchor)
  in
  let init =
    (List.filter_map (fun f -> f.fn_body) (functions tu), true,
     Mc_srcmgr.Source_location.invalid)
  in
  let cands, scoped, anchor = List.fold_left step init t in
  if scoped then
    (* A bare [fun(...)] (or empty) target never names a statement. *)
    error ~loc:anchor
      "transformation target '%s' does not select a statement (add a \
       structural selector such as for(v) or seq)"
      rendered
  else
    match cands with
    | [ s ] -> Ok s
    | [] ->
      error ~loc:anchor "transformation target '%s' matched no statement"
        rendered
    | many ->
      (* Refuse ambiguity: one note per candidate (innermost-first render
         order matches the diagnostics engine), resolved via occurrence(k). *)
      let notes =
        List.mapi
          (fun i s ->
            (s.s_loc, Printf.sprintf "candidate %d of %d is here" (i + 1)
                        (List.length many)))
          many
      in
      with_notes diag (List.rev notes) (fun () ->
          error ~loc:(List.hd many).s_loc
            "transformation target '%s' matched %d statements; disambiguate \
             with 'occurrence(k)'"
            rendered (List.length many))
