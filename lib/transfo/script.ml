(* The transformation-script surface: one step per line,

     <op> [params] @ <selector> <selector> ...

   e.g.

     # tile then unroll the hot loop
     tile sizes(4,4) @ fun(matmat) for(i) for(j)
     unroll partial(4) @ fun(matmat) for(i) occurrence(2)
     memset @ fun(init) for(i)

   '#' starts a comment.  Everything except [memset] maps 1:1 onto an
   OpenMP 6.0 transformation pragma; the engine applies a step by
   inserting exactly that pragma above the resolved loop, which is what
   guarantees scripted and hand-pragma'd sources produce byte-identical
   IR. *)

type op =
  | Op_unroll of [ `Full | `Heuristic | `Partial of int ]
  | Op_tile of int list
  | Op_stripe of int list
  | Op_reverse
  | Op_interchange of int list option (* permutation, 1-based, pragma syntax *)
  | Op_fuse
  | Op_fission
  | Op_memset (* idiom rewrite: zeroing loop -> memset call *)

type step = {
  st_op : op;
  st_target : Target.t;
  st_line : int; (* 1-based line in the script file *)
  st_text : string; (* the step's source text, for traces *)
}

type parse_error = { pe_line : int; pe_msg : string }

let render_ints ns = String.concat "," (List.map string_of_int ns)

let render_op = function
  | Op_unroll `Heuristic -> "unroll"
  | Op_unroll `Full -> "unroll full"
  | Op_unroll (`Partial n) -> Printf.sprintf "unroll partial(%d)" n
  | Op_tile sizes -> Printf.sprintf "tile sizes(%s)" (render_ints sizes)
  | Op_stripe sizes -> Printf.sprintf "stripe sizes(%s)" (render_ints sizes)
  | Op_reverse -> "reverse"
  | Op_interchange None -> "interchange"
  | Op_interchange (Some p) ->
    Printf.sprintf "interchange permutation(%s)" (render_ints p)
  | Op_fuse -> "fuse"
  | Op_fission -> "fission"
  | Op_memset -> "memset"

let render_step st =
  Printf.sprintf "%s @ %s" (render_op st.st_op) (Target.render st.st_target)

(* The pragma a step expands to; [None] for idiom rewrites that have no
   pragma equivalent. *)
let pragma_of_op = function
  | Op_memset -> None
  | op -> Some ("#pragma omp " ^ render_op op)

(* ---- lexing ------------------------------------------------------------- *)

(* A token is a bare word or [word(a,b,...)]; arguments may be identifiers
   or integers and never nest. *)
type token = { tok_word : string; tok_args : string list option }

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokenize line =
  let n = String.length line in
  let toks = ref [] in
  let err = ref None in
  let i = ref 0 in
  let is_space c = c = ' ' || c = '\t' || c = '\r' in
  let is_word c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '@' || c = '-'
  in
  while !i < n && !err = None do
    if is_space line.[!i] then incr i
    else if is_word line.[!i] then begin
      let start = !i in
      while !i < n && is_word line.[!i] do
        incr i
      done;
      let word = String.sub line start (!i - start) in
      if !i < n && line.[!i] = '(' then begin
        match String.index_from_opt line !i ')' with
        | None -> err := Some (Printf.sprintf "unterminated '(' after '%s'" word)
        | Some close ->
          let inside = String.sub line (!i + 1) (close - !i - 1) in
          let args =
            String.split_on_char ',' inside
            |> List.map String.trim
            |> List.filter (fun s -> s <> "")
          in
          toks := { tok_word = word; tok_args = Some args } :: !toks;
          i := close + 1
      end
      else toks := { tok_word = word; tok_args = None } :: !toks
    end
    else err := Some (Printf.sprintf "unexpected character '%c'" line.[!i])
  done;
  match !err with Some e -> Error e | None -> Ok (List.rev !toks)

(* ---- parsing ------------------------------------------------------------ *)

let int_args ~what args =
  let each s =
    match int_of_string_opt s with
    | Some n when n > 0 -> Ok n
    | _ -> Error (Printf.sprintf "'%s' expects positive integers, got '%s'" what s)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest -> ( match each s with Ok n -> go (n :: acc) rest | Error e -> Error e)
  in
  if args = [] then Error (Printf.sprintf "'%s' expects at least one integer" what)
  else go [] args

let parse_op toks =
  let sized name ctor rest =
    match rest with
    | [ { tok_word = "sizes"; tok_args = Some args } ] -> (
      match int_args ~what:"sizes" args with
      | Ok sizes -> Ok (ctor sizes)
      | Error e -> Error e)
    | [] -> Error (Printf.sprintf "'%s' requires a sizes(...) argument" name)
    | t :: _ -> Error (Printf.sprintf "unexpected '%s' after '%s'" t.tok_word name)
  in
  let no_params name op rest =
    match rest with
    | [] -> Ok op
    | t :: _ -> Error (Printf.sprintf "unexpected '%s' after '%s'" t.tok_word name)
  in
  match toks with
  | [] -> Error "empty step (expected '<op> ... @ <target>')"
  | { tok_word = "unroll"; tok_args = None } :: rest -> (
    match rest with
    | [] -> Ok (Op_unroll `Heuristic)
    | [ { tok_word = "full"; tok_args = None } ] -> Ok (Op_unroll `Full)
    | [ { tok_word = "partial"; tok_args = Some [ n ] } ] -> (
      match int_of_string_opt n with
      | Some n when n > 0 -> Ok (Op_unroll (`Partial n))
      | _ -> Error (Printf.sprintf "'partial' expects a positive integer, got '%s'" n))
    | t :: _ -> Error (Printf.sprintf "unexpected '%s' after 'unroll'" t.tok_word))
  | { tok_word = "tile"; tok_args = None } :: rest ->
    sized "tile" (fun s -> Op_tile s) rest
  | { tok_word = "stripe"; tok_args = None } :: rest ->
    sized "stripe" (fun s -> Op_stripe s) rest
  | { tok_word = "reverse"; tok_args = None } :: rest ->
    no_params "reverse" Op_reverse rest
  | { tok_word = "interchange"; tok_args = None } :: rest -> (
    match rest with
    | [] -> Ok (Op_interchange None)
    | [ { tok_word = "permutation"; tok_args = Some args } ] -> (
      match int_args ~what:"permutation" args with
      | Ok p -> Ok (Op_interchange (Some p))
      | Error e -> Error e)
    | t :: _ -> Error (Printf.sprintf "unexpected '%s' after 'interchange'" t.tok_word))
  | { tok_word = "fuse"; tok_args = None } :: rest -> no_params "fuse" Op_fuse rest
  | { tok_word = "fission"; tok_args = None } :: rest ->
    no_params "fission" Op_fission rest
  | { tok_word = "memset"; tok_args = None } :: rest ->
    no_params "memset" Op_memset rest
  | t :: _ ->
    Error
      (Printf.sprintf
         "unknown transformation '%s' (expected unroll, tile, stripe, reverse, \
          interchange, fuse, fission or memset)"
         t.tok_word)

let parse_target toks =
  let sel tok =
    match (tok.tok_word, tok.tok_args) with
    | "fun", Some [ name ] -> Ok (Target.In_fun name)
    | "for", Some [ v ] -> Ok (Target.For_var v)
    | "seq", None -> Ok Target.Loop_seq
    | ("depth" | "occurrence" | "occ"), Some [ n ] -> (
      match int_of_string_opt n with
      | Some k when k >= 1 ->
        Ok (if tok.tok_word = "depth" then Target.With_depth k else Target.Occurrence k)
      | _ ->
        Error
          (Printf.sprintf "'%s' expects a positive integer, got '%s'" tok.tok_word n))
    | w, _ ->
      Error
        (Printf.sprintf
           "unknown selector '%s' (expected fun(name), for(var), seq, depth(n) \
            or occurrence(k))"
           w)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | t :: rest -> ( match sel t with Ok s -> go (s :: acc) rest | Error e -> Error e)
  in
  match toks with
  | [] -> Error "missing target after '@'"
  | _ -> go [] toks

let split_at_sep toks =
  let rec go acc = function
    | [] -> None
    | { tok_word = "@"; tok_args = None } :: rest -> Some (List.rev acc, rest)
    | t :: rest -> go (t :: acc) rest
  in
  go [] toks

let parse_line ~line_no line : (step option, parse_error) result =
  let text = String.trim (strip_comment line) in
  if text = "" then Ok None
  else
    let fail msg = Error { pe_line = line_no; pe_msg = msg } in
    match tokenize text with
    | Error e -> fail e
    | Ok toks -> (
      match split_at_sep toks with
      | None -> fail "missing '@ <target>' (every step needs a target)"
      | Some (op_toks, target_toks) -> (
        match parse_op op_toks with
        | Error e -> fail e
        | Ok op -> (
          match parse_target target_toks with
          | Error e -> fail e
          | Ok target ->
            Ok (Some { st_op = op; st_target = target; st_line = line_no;
                       st_text = text }))))

let parse source : (step list, parse_error) result =
  let lines = String.split_on_char '\n' source in
  let rec go acc line_no = function
    | [] -> Ok (List.rev acc)
    | l :: rest -> (
      match parse_line ~line_no l with
      | Error e -> Error e
      | Ok None -> go acc (line_no + 1) rest
      | Ok (Some st) -> go (st :: acc) (line_no + 1) rest)
  in
  go [] 1 lines

(* ---- canonical form ------------------------------------------------------ *)

(* The cache key for a script: comments, blank lines and whitespace
   variations don't change meaning, so they must not change the
   fingerprint (editing a comment stays a warm hit). *)
let canonical source =
  String.split_on_char '\n' source
  |> List.map strip_comment
  |> List.filter_map (fun line ->
         let words =
           String.split_on_char ' ' line
           |> List.concat_map (String.split_on_char '\t')
           |> List.map String.trim
           |> List.filter (fun s -> s <> "")
         in
         if words = [] then None else Some (String.concat " " words))
  |> String.concat "\n"
