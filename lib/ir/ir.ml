(** A miniature LLVM-like intermediate representation.

    This is the substrate the paper's CodeGen layer and OpenMPIRBuilder
    target.  It models the parts of LLVM IR the loop-transformation work
    needs: typed instructions in basic blocks with explicit control flow,
    phi nodes for induction variables, calls into a (simulated) OpenMP
    runtime, and [llvm.loop.*] metadata attached to loop latches for the
    mid-end [LoopUnroll] pass.

    The in-memory design mirrors LLVM: instructions know their parent block,
    blocks their parent function; the CFG is mutable so that passes can
    rewrite it. *)

module Int_ops = Mc_support.Int_ops

type ty = I1 | I8 | I16 | I32 | I64 | F32 | F64 | Ptr | Void

let ty_to_string = function
  | I1 -> "i1"
  | I8 -> "i8"
  | I16 -> "i16"
  | I32 -> "i32"
  | I64 -> "i64"
  | F32 -> "float"
  | F64 -> "double"
  | Ptr -> "ptr"
  | Void -> "void"

let ty_size_in_bytes = function
  | I1 | I8 -> 1
  | I16 -> 2
  | I32 -> 4
  | I64 -> 8
  | F32 -> 4
  | F64 -> 8
  | Ptr -> 8
  | Void -> invalid_arg "ty_size_in_bytes: void"

let int_width ~signed = function
  | I1 -> { Int_ops.bits = 1; signed = false }
  | I8 -> { Int_ops.bits = 8; signed }
  | I16 -> { Int_ops.bits = 16; signed }
  | I32 -> { Int_ops.bits = 32; signed }
  | I64 -> { Int_ops.bits = 64; signed }
  | F32 | F64 | Ptr | Void -> invalid_arg "int_width: not an integer type"

type icmp = Ieq | Ine | Islt | Isle | Isgt | Isge | Iult | Iule | Iugt | Iuge

type fcmp = Foeq | Fone | Folt | Fole | Fogt | Foge

type binop =
  | Add
  | Sub
  | Mul
  | Sdiv
  | Udiv
  | Srem
  | Urem
  | Shl
  | Lshr
  | Ashr
  | And
  | Or
  | Xor
  | Fadd
  | Fsub
  | Fmul
  | Fdiv
  | Frem

type cast_op =
  | Trunc
  | Zext
  | Sext
  | Fptosi
  | Fptoui
  | Sitofp
  | Uitofp
  | Fpext
  | Fptrunc

(* [llvm.loop.unroll.*] metadata (paper §2.1/§2.2): attached to a loop's
   latch terminator and consumed by the mid-end LoopUnroll pass. *)
type unroll_md = Unroll_enable | Unroll_full | Unroll_count of int | Unroll_disable

type loop_md = { md_unroll : unroll_md option; md_vectorize_width : int option }

let no_loop_md = { md_unroll = None; md_vectorize_width = None }

type value =
  | Const_int of ty * int64 (* canonical per [Int_ops.truncate] of the width *)
  | Const_float of ty * float
  | Arg of arg
  | Inst_ref of inst
  | Fn_addr of func
  | Undef of ty

and arg = { a_id : int; a_name : string; a_ty : ty }

and inst = {
  i_id : int;
  mutable i_name : string; (* printer hint; may be "" *)
  mutable i_kind : inst_kind;
  i_ty : ty;
  mutable i_parent : block option;
  mutable i_loc : Mc_srcmgr.Source_location.t;
      (* the source statement this instruction lowers; invalid for
         synthetic instructions (runtime glue, pass-created code) *)
}

and inst_kind =
  | Alloca of { elt_ty : ty; count : int } (* count elements of elt_ty *)
  | Load of { ptr : value }
  | Store of { ptr : value; v : value } (* i_ty = Void *)
  | Binop of binop * value * value
  | Icmp of icmp * value * value (* i_ty = I1 *)
  | Fcmp of fcmp * value * value
  | Cast of cast_op * value
  | Gep of { base : value; index : value; elt_ty : ty } (* base + index*size *)
  | Select of value * value * value
  | Call of { callee : callee; args : value list }
  | Phi of { mutable incoming : (value * block) list }

and callee = Direct of func | Runtime of string

and terminator =
  | Ret of value option
  | Br of block
  | Cond_br of value * block * block
  | Unreachable
  | No_term (* block still under construction *)

and block = {
  b_id : int;
  mutable b_name : string;
  mutable b_insts_rev : inst list; (* reverse order; see [block_insts] *)
  mutable b_term : terminator;
  mutable b_parent : func option;
  mutable b_loop_md : loop_md;
}

and func = {
  f_id : int;
  f_name : string;
  f_ret : ty;
  f_args : arg list;
  mutable f_blocks : block list; (* entry first *)
  mutable f_is_decl : bool;
}

type modul = { m_name : string; mutable m_funcs : func list }

(* ---- construction ------------------------------------------------------ *)

(* Ids are domain-local so concurrent compilations neither race nor
   influence each other's numbering; the driver resets them at the start
   of every compilation so the printed IR of a given source is
   byte-identical no matter which domain (or how many) compiled it. *)
let id_counter : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let fresh_id () =
  let r = Domain.DLS.get id_counter in
  incr r;
  !r

(* The source location newly created instructions are stamped with —
   CodeGen sets it to the statement being lowered so analyses can report
   findings at source positions.  Domain-local for the same reason as
   the id counter; invalid outside statement lowering, so pass-created
   instructions stay location-free. *)
let emit_loc : Mc_srcmgr.Source_location.t ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref Mc_srcmgr.Source_location.invalid)

let set_emit_loc loc = Domain.DLS.get emit_loc := loc
let current_emit_loc () = !(Domain.DLS.get emit_loc)
let clear_emit_loc () = set_emit_loc Mc_srcmgr.Source_location.invalid

let reset_ids () =
  Domain.DLS.get id_counter := 0;
  clear_emit_loc ()

(* An unmarshalled module (store hit, daemon reply) carries ids from the
   process that built it, while this domain's counter is wherever the
   current compilation left it — usually 0.  Claim the module's ids so
   anything allocated afterwards (pass-created phis and casts) can never
   collide with an existing id; passes key def-use maps on [i_id], and a
   collision silently cross-wires two instructions. *)
let claim_ids m =
  let r = Domain.DLS.get id_counter in
  let bump id = if id > !r then r := id in
  List.iter
    (fun f ->
      bump f.f_id;
      List.iter (fun a -> bump a.a_id) f.f_args;
      List.iter
        (fun b -> List.iter (fun i -> bump i.i_id) b.b_insts_rev)
        f.f_blocks)
    m.m_funcs

(* Watermark variants of the same discipline for function-granular
   artifacts: a cached per-function module records [current_id] at store
   time and a consumer claims up to that mark before allocating. *)
let current_id () = !(Domain.DLS.get id_counter)

let claim_up_to n =
  let r = Domain.DLS.get id_counter in
  if n > !r then r := n

let create_module name = { m_name = name; m_funcs = [] }

let mk_arg ~name ~ty = { a_id = fresh_id (); a_name = name; a_ty = ty }

let declare_function m ~name ~ret ~args =
  let f =
    { f_id = fresh_id (); f_name = name; f_ret = ret; f_args = args;
      f_blocks = []; f_is_decl = true }
  in
  m.m_funcs <- m.m_funcs @ [ f ];
  f

let define_function m ~name ~ret ~args =
  let f =
    { f_id = fresh_id (); f_name = name; f_ret = ret; f_args = args;
      f_blocks = []; f_is_decl = false }
  in
  m.m_funcs <- m.m_funcs @ [ f ];
  f

let find_function m name = List.find_opt (fun f -> f.f_name = name) m.m_funcs

let create_block ?(name = "") f =
  let b =
    { b_id = fresh_id (); b_name = name; b_insts_rev = []; b_term = No_term;
      b_parent = Some f; b_loop_md = no_loop_md }
  in
  f.f_blocks <- f.f_blocks @ [ b ];
  b

(* Insert [b] in the function's block list right after [after]; layout order
   only affects printing, not semantics. *)
let insert_block_after f ~after b =
  let rec place = function
    | [] -> [ b ]
    | x :: rest when x == after -> x :: b :: rest
    | x :: rest -> x :: place rest
  in
  f.f_blocks <- place (List.filter (fun x -> not (x == b)) f.f_blocks)

let block_insts b = List.rev b.b_insts_rev
let set_block_insts b insts = b.b_insts_rev <- List.rev insts

let append_inst b inst =
  inst.i_parent <- Some b;
  b.b_insts_rev <- inst :: b.b_insts_rev

let mk_inst ?(name = "") ~ty kind =
  { i_id = fresh_id (); i_name = name; i_kind = kind; i_ty = ty;
    i_parent = None; i_loc = current_emit_loc () }

let value_ty = function
  | Const_int (ty, _) -> ty
  | Const_float (ty, _) -> ty
  | Arg a -> a.a_ty
  | Inst_ref i -> i.i_ty
  | Fn_addr _ -> Ptr
  | Undef ty -> ty

let value_equal a b =
  match (a, b) with
  | Const_int (ta, va), Const_int (tb, vb) -> ta = tb && Int64.equal va vb
  | Const_float (ta, va), Const_float (tb, vb) -> ta = tb && Float.equal va vb
  | Arg x, Arg y -> x.a_id = y.a_id
  | Inst_ref x, Inst_ref y -> x.i_id = y.i_id
  | Fn_addr x, Fn_addr y -> x.f_id = y.f_id
  | Undef ta, Undef tb -> ta = tb
  | _ -> false

let bool_const v = Const_int (I1, if v then 1L else 0L)
let i32_const v = Const_int (I32, Int_ops.truncate Int_ops.i32 (Int64.of_int v))
let i64_const v = Const_int (I64, Int64.of_int v)

(* ---- successors / predecessors ------------------------------------------ *)

let successors b =
  match b.b_term with
  | Ret _ | Unreachable | No_term -> []
  | Br target -> [ target ]
  | Cond_br (_, t, f) -> if t == f then [ t ] else [ t; f ]

let predecessors f b =
  List.filter (fun p -> List.exists (fun s -> s == b) (successors p)) f.f_blocks

let inst_operands i =
  match i.i_kind with
  | Alloca _ -> []
  | Load { ptr } -> [ ptr ]
  | Store { ptr; v } -> [ ptr; v ]
  | Binop (_, a, b) | Icmp (_, a, b) | Fcmp (_, a, b) -> [ a; b ]
  | Cast (_, v) -> [ v ]
  | Gep { base; index; _ } -> [ base; index ]
  | Select (c, a, b) -> [ c; a; b ]
  | Call { args; _ } -> args
  | Phi { incoming } -> List.map fst incoming

let terminator_operands = function
  | Ret (Some v) -> [ v ]
  | Ret None | Unreachable | No_term | Br _ -> []
  | Cond_br (c, _, _) -> [ c ]

(* Rewrites every operand of [i] through [f] (used by cloning and passes). *)
let map_inst_operands f i =
  let kind =
    match i.i_kind with
    | Alloca _ as k -> k
    | Load { ptr } -> Load { ptr = f ptr }
    | Store { ptr; v } -> Store { ptr = f ptr; v = f v }
    | Binop (op, a, b) -> Binop (op, f a, f b)
    | Icmp (op, a, b) -> Icmp (op, f a, f b)
    | Fcmp (op, a, b) -> Fcmp (op, f a, f b)
    | Cast (op, v) -> Cast (op, f v)
    | Gep { base; index; elt_ty } -> Gep { base = f base; index = f index; elt_ty }
    | Select (c, a, b) -> Select (f c, f a, f b)
    | Call { callee; args } -> Call { callee; args = List.map f args }
    | Phi { incoming } -> Phi { incoming = List.map (fun (v, b) -> (f v, b)) incoming }
  in
  i.i_kind <- kind

let map_terminator_operands f b =
  match b.b_term with
  | Ret (Some v) -> b.b_term <- Ret (Some (f v))
  | Cond_br (c, t, e) -> b.b_term <- Cond_br (f c, t, e)
  | Ret None | Br _ | Unreachable | No_term -> ()

(* Rewire every function reference in [m] — [Direct] callees and
   [Fn_addr] operands — through [resolve].  Linking a module from
   independently cached per-function modules leaves each call pointing
   at its own mini-module's copy of the callee record; the interpreter
   executes [Direct f] by following that very pointer, so the linker
   must redirect all references to the one canonical record per name. *)
let map_function_refs resolve m =
  let value v = match v with Fn_addr f -> Fn_addr (resolve f) | _ -> v in
  List.iter
    (fun f ->
      List.iter
        (fun b ->
          List.iter
            (fun i ->
              (match i.i_kind with
              | Call { callee = Direct g; args } ->
                let g' = resolve g in
                if g' != g then i.i_kind <- Call { callee = Direct g'; args }
              | _ -> ());
              map_inst_operands value i)
            b.b_insts_rev;
          map_terminator_operands value b)
        f.f_blocks)
    m.m_funcs

(* Redirect control-flow edges: every successor [from] of [b] becomes [into].
   Phi nodes in [from]'s other successors are NOT adjusted here. *)
let replace_successor b ~from ~into =
  match b.b_term with
  | Br t when t == from -> b.b_term <- Br into
  | Cond_br (c, t, e) ->
    let t = if t == from then into else t in
    let e = if e == from then into else e in
    b.b_term <- Cond_br (c, t, e)
  | _ -> ()

let phi_incoming_for_pred incoming pred =
  List.find_opt (fun (_, b) -> b == pred) incoming |> Option.map fst

(* ---- simple queries ------------------------------------------------------ *)

let entry_block f =
  match f.f_blocks with
  | [] -> invalid_arg (Printf.sprintf "entry_block: '%s' has no blocks" f.f_name)
  | b :: _ -> b

let block_phis b =
  List.filter_map
    (fun i -> match i.i_kind with Phi _ -> Some i | _ -> None)
    (block_insts b)

let is_const_int = function Const_int _ -> true | _ -> false

(* Replace every use of [from] with [into] across the function's
   instructions and terminators.  [where] restricts the replacement to
   blocks satisfying the predicate (used by loop transformations to rewrite
   only the body region). *)
let replace_uses_in_func ?(where = fun _ -> true) f ~from ~into =
  List.iter
    (fun b ->
      if where b then begin
        List.iter
          (map_inst_operands (fun v -> if value_equal v from then into else v))
          (block_insts b);
        map_terminator_operands
          (fun v -> if value_equal v from then into else v)
          b
      end)
    f.f_blocks

(* Remove blocks from the function (used after loop transformations discard
   a replaced skeleton).  Only detaches; callers must have rewired CFG. *)
let remove_blocks f blocks =
  f.f_blocks <-
    List.filter (fun b -> not (List.exists (fun d -> d == b) blocks)) f.f_blocks;
  List.iter (fun b -> b.b_parent <- None) blocks

(* Number of instructions in a function, a cheap code-size proxy used by the
   folding ablation and unroll heuristics. *)
let func_inst_count f =
  List.fold_left (fun acc b -> acc + List.length b.b_insts_rev) 0 f.f_blocks

let module_inst_count m =
  List.fold_left
    (fun acc f -> acc + func_inst_count f)
    0
    (List.filter (fun f -> not f.f_is_decl) m.m_funcs)
