(** The Clang-style abstract syntax tree.

    All node families of the paper live here as one set of mutually
    recursive types: the [Stmt] hierarchy (Fig. 3/4), the [OMPClause]
    hierarchy (Fig. 5), declarations, and types.  As in Clang, the tree
    mixes syntactic-only nodes ([Paren]) and semantic-only nodes
    ([Implicit_cast], the [Captured] statement, shadow AST fields) and is
    immutable once Sema finishes — the only mutable fields are the ones Sema
    itself fills in while building a node ([dir_loop_helpers],
    [dir_transformed], [fn_body], [v_used]).

    Shadow AST (paper §1.2): [dir_loop_helpers], [dir_transformed] and
    [dir_preinits] are deliberately *not* part of {!Visit.children} — they
    are the "hidden children" the paper describes, reachable only through
    dedicated accessors and a dump flag. *)

module Loc = Mc_srcmgr.Source_location
module Int_ops = Mc_support.Int_ops

type loc = Loc.t

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

type ctype =
  | Void
  | Bool
  | Int of Int_ops.width (* char/short/int/long with signedness *)
  | Float of int (* 32 = float, 64 = double *)
  | Ptr of ctype
  | Array of ctype * int option
  | Func of func_type

and func_type = { ft_ret : ctype; ft_params : ctype list; ft_variadic : bool }

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

type var = {
  v_id : int;
  v_name : string;
  v_ty : ctype;
  v_loc : loc;
  v_implicit : bool; (* compiler-generated (.omp.iv, ImplicitParamDecl, …) *)
  mutable v_init : expr option;
  mutable v_used : bool;
}

and fn = {
  fn_id : int;
  fn_name : string;
  fn_ty : func_type;
  mutable fn_params : var list; (* updated by the defining declaration *)
  fn_loc : loc;
  fn_builtin : bool; (* declared but externally implemented (printf, body) *)
  mutable fn_body : stmt option;
}

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

and unop =
  | U_plus
  | U_minus
  | U_lnot
  | U_bnot
  | U_preinc
  | U_predec
  | U_postinc
  | U_postdec
  | U_deref
  | U_addrof

and binop =
  | B_add
  | B_sub
  | B_mul
  | B_div
  | B_rem
  | B_shl
  | B_shr
  | B_lt
  | B_gt
  | B_le
  | B_ge
  | B_eq
  | B_ne
  | B_band
  | B_bxor
  | B_bor
  | B_land
  | B_lor
  | B_comma

and cast_kind =
  | CK_lvalue_to_rvalue
  | CK_integral
  | CK_integral_to_floating
  | CK_floating_to_integral
  | CK_floating
  | CK_array_to_pointer
  | CK_int_to_bool
  | CK_float_to_bool
  | CK_pointer

and expr = {
  e_id : int;
  e_kind : expr_kind;
  e_ty : ctype;
  e_loc : loc;
  mutable e_contains_errors : bool; (* RecoveryExpr below, or in a child *)
}

and expr_kind =
  | Int_lit of int64
  | Float_lit of float
  | String_lit of string
  | Decl_ref of var
  | Fn_ref of fn
  | Paren of expr
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Assign of binop option * expr * expr (* [None] is plain '=' *)
  | Conditional of expr * expr * expr
  | Call of expr * expr list
  | Subscript of expr * expr
  | Implicit_cast of cast_kind * expr
  | C_style_cast of ctype * expr
  | Sizeof_type of ctype
  | Recovery_expr of expr list
      (* RecoveryExpr: stands in for an expression that could not be
         analysed, preserving whatever sub-expressions were recovered *)

(* ------------------------------------------------------------------ *)
(* Statements (the Stmt hierarchy of Fig. 3/4)                          *)
(* ------------------------------------------------------------------ *)

and stmt = {
  s_id : int;
  s_kind : stmt_kind;
  s_loc : loc;
  mutable s_contains_errors : bool; (* Error_stmt below, or in a child *)
}

and stmt_kind =
  | Null_stmt
  | Compound of stmt list
  | Expr_stmt of expr
  | Decl_stmt of var list (* initialisers live in [v_init] *)
  | If of expr * stmt * stmt option
  | Switch of expr * stmt (* SwitchStmt; labels are Case/Default below *)
  | Case of case_label (* CaseStmt: labels the sub-statement, falls through *)
  | Default of stmt (* DefaultStmt *)
  | While of expr * stmt
  | Do_while of stmt * expr
  | For of for_parts
  | Range_for of range_for (* models CXXForRangeStmt *)
  | Break
  | Continue
  | Return of expr option
  | Attributed of attr list * stmt (* AttributedStmt, e.g. LoopHintAttr *)
  | Captured of captured (* CapturedStmt *)
  | Omp_canonical_loop of canonical_loop (* the §3 meta node *)
  | Omp_directive of directive (* OMPExecutableDirective family *)
  | Error_stmt of stmt list
      (* stands in for a statement that could not be analysed (e.g. a
         broken directive), preserving whatever was recovered *)

and case_label = {
  case_value : int64; (* evaluated constant *)
  case_expr : expr; (* the spelled expression *)
  case_body : stmt;
}

and for_parts = {
  for_init : stmt option; (* Decl_stmt or Expr_stmt *)
  for_cond : expr option;
  for_inc : expr option;
  for_body : stmt;
}

(* CXXForRangeStmt analogue: iteration over an array.  Like Clang, the node
   also records the de-sugared helper declarations (__range/__begin/__end)
   so analyses need not re-derive them (paper §1.2, Fig. 8). *)
and range_for = {
  rf_var : var; (* the loop *user* variable (paper's terminology) *)
  rf_byref : bool;
  rf_range : expr; (* the container expression *)
  rf_body : stmt;
  rf_range_var : var; (* __range *)
  rf_begin_var : var; (* __begin: the loop *iteration* variable *)
  rf_end_var : var; (* __end *)
  mutable rf_desugared : stmt option; (* Fig. 8c equivalent, built by Sema *)
}

and attr = Loop_hint of loop_hint

and loop_hint = {
  lh_option : loop_hint_option;
  lh_value : int option; (* e.g. the unroll count *)
}

and loop_hint_option =
  | Hint_unroll_enable
  | Hint_unroll_full
  | Hint_unroll_count
  | Hint_unroll_disable

(* CapturedStmt/CapturedDecl pair.  [cap_captures] are the variables the
   region refers to (captured by reference), [cap_byval] those captured by
   value (e.g. __begin in the loop-value function of §3.1), and
   [cap_params] the ImplicitParamDecls of the outlined 'lambda'. *)
and captured = {
  cap_body : stmt;
  cap_captures : var list;
  cap_byval : var list;
  cap_params : var list;
}

(* OMPCanonicalLoop (paper §3.1): wraps a literal loop and carries exactly
   the three pieces of meta information Sema must resolve. *)
and canonical_loop = {
  ocl_loop : stmt; (* For or Range_for *)
  ocl_distance : captured; (* [&](uintN &Result){ Result = trip count; } *)
  ocl_loop_value : captured; (* [&,begin](T &Result, uintN i){ … } *)
  ocl_var_ref : expr; (* DeclRefExpr of the loop user variable *)
  ocl_counter_width : Int_ops.width; (* logical iteration counter type *)
}

(* ------------------------------------------------------------------ *)
(* OpenMP directives and clauses                                       *)
(* ------------------------------------------------------------------ *)

and directive_kind =
  | D_parallel
  | D_for
  | D_parallel_for
  | D_simd
  | D_for_simd
  | D_parallel_for_simd
  | D_unroll
  | D_tile
  (* OpenMP 6.0 preview transformations, the extensions the paper's
     conclusion anticipates ("additional loop transformations ... loop
     fusion and fission"): *)
  | D_reverse
  | D_interchange
  | D_stripe
  | D_fuse
  | D_fission
  | D_barrier
  | D_single
  | D_master
  | D_critical of string option (* optional region name *)

and sched_kind =
  | Sched_static
  | Sched_dynamic
  | Sched_guided
  | Sched_auto
  | Sched_runtime

and reduction_op = Red_add | Red_mul | Red_min | Red_max | Red_band | Red_bor

and clause =
  | C_num_threads of expr
  | C_schedule of sched_kind * expr option (* chunk *)
  | C_collapse of int * expr (* evaluated constant, original expr *)
  | C_full
  | C_partial of (int * expr) option (* factor; None = compiler chooses *)
  | C_sizes of (int * expr) list
  | C_private of var list
  | C_firstprivate of var list
  | C_shared of var list
  | C_reduction of reduction_op * var list
  | C_nowait
  | C_simdlen of int * expr
  | C_if of expr
  | C_permutation of (int * expr) list (* 1-based loop positions (OpenMP 6.0) *)

and directive = {
  dir_id : int;
  dir_kind : directive_kind;
  dir_clauses : clause list;
  dir_assoc : stmt option; (* the associated statement, if any *)
  dir_loc : loc;
  (* --- shadow AST (hidden children, paper §1.2/§2) ----------------- *)
  mutable dir_loop_helpers : loop_helpers option; (* OMPLoopDirective family *)
  mutable dir_transformed : stmt option; (* unroll/tile: getTransformedStmt() *)
  mutable dir_preinits : stmt option; (* decls preceding the transformed stmt *)
}

(* The up-to-30 shadow statements/expressions of OMPLoopDirective (§1.2),
   plus 6 more per associated loop in [lhs_loops].  Option fields are the
   ones Clang only materialises for distribute/combined directives; this
   reproduction leaves them [None] but keeps the slots so that the node
   budget matches the paper's count. *)
and loop_helpers = {
  lhs_iteration_variable : var; (* .omp.iv *)
  lhs_num_iterations : expr; (* total logical iterations *)
  lhs_last_iteration : expr; (* NumIterations - 1 *)
  lhs_calc_last_iteration : expr;
  lhs_precondition : expr; (* 0 < NumIterations *)
  lhs_cond : expr; (* .omp.iv <= .omp.ub *)
  lhs_init : expr; (* .omp.iv = .omp.lb *)
  lhs_inc : expr; (* .omp.iv = .omp.iv + 1 *)
  lhs_is_last_iter_variable : var; (* .omp.is_last *)
  lhs_lower_bound_variable : var; (* .omp.lb *)
  lhs_upper_bound_variable : var; (* .omp.ub *)
  lhs_stride_variable : var; (* .omp.stride *)
  lhs_ensure_upper_bound : expr; (* ub = min(ub, last) *)
  lhs_next_lower_bound : expr; (* lb = lb + stride *)
  lhs_next_upper_bound : expr; (* ub = ub + stride *)
  lhs_capture_exprs : var list; (* '.capture_expr.' temporaries (§2 diag) *)
  (* distribute/combined-only slots: *)
  lhs_prev_lower_bound_variable : var option;
  lhs_prev_upper_bound_variable : var option;
  lhs_dist_inc : expr option;
  lhs_prev_ensure_upper_bound : expr option;
  lhs_combined_lower_bound : expr option;
  lhs_combined_upper_bound : expr option;
  lhs_combined_ensure_upper_bound : expr option;
  lhs_combined_init : expr option;
  lhs_combined_cond : expr option;
  lhs_combined_next_lower_bound : expr option;
  lhs_combined_next_upper_bound : expr option;
  lhs_combined_dist_cond : expr option;
  lhs_combined_parfor_in_dist_cond : expr option;
  lhs_loops : per_loop list; (* 6 helpers for each associated loop *)
}

and per_loop = {
  pl_counter : var; (* the source loop variable *)
  pl_private_counter : var;
  pl_counter_init : expr; (* start value *)
  pl_counter_step : expr; (* increment amount *)
  pl_counter_update : expr; (* counter = init + iv * step *)
  pl_counter_final : expr; (* value after the loop *)
}

type tu_decl = Tu_fn of fn | Tu_var of var

type translation_unit = { tu_decls : tu_decl list }

(* ------------------------------------------------------------------ *)
(* Node identity and constructors                                      *)
(* ------------------------------------------------------------------ *)

(* Domain-local and reset per compilation by the driver, so node ids (and
   anything derived from them, e.g. dump output) are deterministic and
   race-free under parallel batch compilation. *)
let id_counter : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let fresh_id () =
  let r = Domain.DLS.get id_counter in
  incr r;
  !r

let reset_ids () = Domain.DLS.get id_counter := 0

(* Watermark api for function-granular artifact reuse: a cached slice
   records [current_id] at store time, and adopting it into a later
   compilation [claim_up_to] that mark so freshly parsed slices can
   never collide with adopted nodes. *)
let current_id () = !(Domain.DLS.get id_counter)

let claim_up_to n =
  let r = Domain.DLS.get id_counter in
  if n > !r then r := n

let mk_var ?(implicit = false) ?init ~name ~ty ~loc () =
  {
    v_id = fresh_id ();
    v_name = name;
    v_ty = ty;
    v_loc = loc;
    v_implicit = implicit;
    v_init = init;
    v_used = false;
  }

let mk_fn ?(builtin = false) ?body ~name ~ty ~params ~loc () =
  {
    fn_id = fresh_id ();
    fn_name = name;
    fn_ty = ty;
    fn_params = params;
    fn_loc = loc;
    fn_builtin = builtin;
    fn_body = body;
  }

let stat_exprs =
  Mc_support.Stats.counter ~group:"ast" ~name:"exprs-created"
    ~desc:"expression nodes created" ()
let stat_stmts =
  Mc_support.Stats.counter ~group:"ast" ~name:"stmts-created"
    ~desc:"statement nodes created" ()

(* [contains_errors] propagation, Clang's [Expr::containsErrors] /
   [Stmt] dependence bit: computed bottom-up at construction time from
   the node's direct children (Sema builds strictly bottom-up, so the
   children's bits are final by the time the parent is made).  These
   local child walks deliberately stay minimal — the full traversal API
   lives in [Visit], which depends on this module. *)

let expr_contains_errors (e : expr) = e.e_contains_errors
let stmt_contains_errors (s : stmt) = s.s_contains_errors

let var_init_contains_errors (v : var) =
  match v.v_init with Some e -> e.e_contains_errors | None -> false

let clause_contains_errors = function
  | C_num_threads e | C_collapse (_, e) | C_simdlen (_, e) | C_if e ->
    e.e_contains_errors
  | C_schedule (_, chunk) -> (
    match chunk with Some e -> e.e_contains_errors | None -> false)
  | C_partial factor -> (
    match factor with Some (_, e) -> e.e_contains_errors | None -> false)
  | C_sizes l | C_permutation l ->
    List.exists (fun (_, e) -> e.e_contains_errors) l
  | C_full | C_nowait | C_private _ | C_firstprivate _ | C_shared _
  | C_reduction _ -> false

let expr_kind_contains_errors = function
  | Recovery_expr _ -> true
  | Paren e | Unary (_, e) | Implicit_cast (_, e) | C_style_cast (_, e) ->
    e.e_contains_errors
  | Binary (_, a, b) | Assign (_, a, b) | Subscript (a, b) ->
    a.e_contains_errors || b.e_contains_errors
  | Conditional (a, b, c) ->
    a.e_contains_errors || b.e_contains_errors || c.e_contains_errors
  | Call (f, args) ->
    f.e_contains_errors || List.exists (fun a -> a.e_contains_errors) args
  | Int_lit _ | Float_lit _ | String_lit _ | Decl_ref _ | Fn_ref _
  | Sizeof_type _ -> false

let stmt_kind_contains_errors = function
  | Error_stmt _ -> true
  | Compound ss -> List.exists (fun s -> s.s_contains_errors) ss
  | Expr_stmt e -> e.e_contains_errors
  | Decl_stmt vars -> List.exists var_init_contains_errors vars
  | If (c, t, e) ->
    c.e_contains_errors || t.s_contains_errors
    || (match e with Some s -> s.s_contains_errors | None -> false)
  | Switch (e, s) | While (e, s) | Do_while (s, e) ->
    e.e_contains_errors || s.s_contains_errors
  | Case { case_expr; case_body; _ } ->
    case_expr.e_contains_errors || case_body.s_contains_errors
  | Default s | Attributed (_, s) -> s.s_contains_errors
  | For { for_init; for_cond; for_inc; for_body } ->
    (match for_init with Some s -> s.s_contains_errors | None -> false)
    || (match for_cond with Some e -> e.e_contains_errors | None -> false)
    || (match for_inc with Some e -> e.e_contains_errors | None -> false)
    || for_body.s_contains_errors
  | Range_for rf -> rf.rf_range.e_contains_errors || rf.rf_body.s_contains_errors
  | Return e -> (
    match e with Some e -> e.e_contains_errors | None -> false)
  | Captured c -> c.cap_body.s_contains_errors
  | Omp_canonical_loop ocl -> ocl.ocl_loop.s_contains_errors
  | Omp_directive d ->
    List.exists clause_contains_errors d.dir_clauses
    || (match d.dir_assoc with Some s -> s.s_contains_errors | None -> false)
  | Null_stmt | Break | Continue -> false

let mk_expr ~ty ~loc kind =
  Mc_support.Stats.incr stat_exprs;
  {
    e_id = fresh_id ();
    e_kind = kind;
    e_ty = ty;
    e_loc = loc;
    e_contains_errors = expr_kind_contains_errors kind;
  }

let mk_stmt ~loc kind =
  Mc_support.Stats.incr stat_stmts;
  {
    s_id = fresh_id ();
    s_kind = kind;
    s_loc = loc;
    s_contains_errors = stmt_kind_contains_errors kind;
  }

(* For post-hoc marking: Sema discovers some errors only after the node
   exists (e.g. directive-level analysis failures); the parent built
   afterwards still picks the bit up through its constructor. *)
let mark_stmt_errors (s : stmt) = s.s_contains_errors <- true

let fn_contains_errors (fn : fn) =
  match fn.fn_body with Some b -> b.s_contains_errors | None -> false

let tu_contains_errors tu =
  List.exists
    (function
      | Tu_fn fn -> fn_contains_errors fn
      | Tu_var v -> var_init_contains_errors v)
    tu.tu_decls

let mk_directive ?assoc ~kind ~clauses ~loc () =
  {
    dir_id = fresh_id ();
    dir_kind = kind;
    dir_clauses = clauses;
    dir_assoc = assoc;
    dir_loc = loc;
    dir_loop_helpers = None;
    dir_transformed = None;
    dir_preinits = None;
  }
