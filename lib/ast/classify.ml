open Tree

let directive_class_name = function
  | D_parallel -> "OMPParallelDirective"
  | D_for -> "OMPForDirective"
  | D_parallel_for -> "OMPParallelForDirective"
  | D_simd -> "OMPSimdDirective"
  | D_for_simd -> "OMPForSimdDirective"
  | D_parallel_for_simd -> "OMPParallelForSimdDirective"
  | D_unroll -> "OMPUnrollDirective"
  | D_tile -> "OMPTileDirective"
  | D_reverse -> "OMPReverseDirective"
  | D_interchange -> "OMPInterchangeDirective"
  | D_stripe -> "OMPStripeDirective"
  | D_fuse -> "OMPFuseDirective"
  | D_fission -> "OMPFissionDirective"
  | D_barrier -> "OMPBarrierDirective"
  | D_single -> "OMPSingleDirective"
  | D_master -> "OMPMasterDirective"
  | D_critical _ -> "OMPCriticalDirective"

let stmt_class_name s =
  match s.s_kind with
  | Null_stmt -> "NullStmt"
  | Compound _ -> "CompoundStmt"
  | Expr_stmt _ -> "ExprStmt"
  | Decl_stmt _ -> "DeclStmt"
  | If _ -> "IfStmt"
  | Switch _ -> "SwitchStmt"
  | Case _ -> "CaseStmt"
  | Default _ -> "DefaultStmt"
  | While _ -> "WhileStmt"
  | Do_while _ -> "DoStmt"
  | For _ -> "ForStmt"
  | Range_for _ -> "CXXForRangeStmt"
  | Break -> "BreakStmt"
  | Continue -> "ContinueStmt"
  | Return _ -> "ReturnStmt"
  | Attributed _ -> "AttributedStmt"
  | Captured _ -> "CapturedStmt"
  | Omp_canonical_loop _ -> "OMPCanonicalLoop"
  | Omp_directive d -> directive_class_name d.dir_kind
  | Error_stmt _ -> "ErrorStmt"

let expr_class_name e =
  match e.e_kind with
  | Int_lit _ -> "IntegerLiteral"
  | Float_lit _ -> "FloatingLiteral"
  | String_lit _ -> "StringLiteral"
  | Decl_ref _ | Fn_ref _ -> "DeclRefExpr"
  | Paren _ -> "ParenExpr"
  | Unary _ -> "UnaryOperator"
  | Binary _ -> "BinaryOperator"
  | Assign (None, _, _) -> "BinaryOperator"
  | Assign (Some _, _, _) -> "CompoundAssignOperator"
  | Conditional _ -> "ConditionalOperator"
  | Call _ -> "CallExpr"
  | Subscript _ -> "ArraySubscriptExpr"
  | Implicit_cast _ -> "ImplicitCastExpr"
  | C_style_cast _ -> "CStyleCastExpr"
  | Sizeof_type _ -> "UnaryExprOrTypeTraitExpr"
  | Recovery_expr _ -> "RecoveryExpr"

let clause_class_name = function
  | C_num_threads _ -> "OMPNumThreadsClause"
  | C_schedule _ -> "OMPScheduleClause"
  | C_collapse _ -> "OMPCollapseClause"
  | C_full -> "OMPFullClause"
  | C_partial _ -> "OMPPartialClause"
  | C_sizes _ -> "OMPSizesClause"
  | C_private _ -> "OMPPrivateClause"
  | C_firstprivate _ -> "OMPFirstprivateClause"
  | C_shared _ -> "OMPSharedClause"
  | C_reduction _ -> "OMPReductionClause"
  | C_nowait -> "OMPNowaitClause"
  | C_permutation _ -> "OMPPermutationClause"
  | C_simdlen _ -> "OMPSimdlenClause"
  | C_if _ -> "OMPIfClause"

let is_omp_executable_directive (_ : directive_kind) = true

let is_omp_loop_directive = function
  | D_for | D_parallel_for | D_simd | D_for_simd | D_parallel_for_simd -> true
  | D_parallel | D_unroll | D_tile | D_reverse | D_interchange | D_stripe
  | D_fuse | D_fission | D_barrier | D_single | D_master | D_critical _ ->
    false

let is_loop_transformation = function
  | D_unroll | D_tile | D_reverse | D_interchange | D_stripe | D_fuse
  | D_fission ->
    true
  | D_parallel | D_for | D_parallel_for | D_simd | D_for_simd
  | D_parallel_for_simd | D_barrier | D_single | D_master | D_critical _ ->
    false

let is_omp_loop_based_directive k =
  is_omp_loop_directive k || is_loop_transformation k

let stmt_ancestry s =
  match s.s_kind with
  | Omp_directive d ->
    let leaf = directive_class_name d.dir_kind in
    let chain =
      if is_omp_loop_directive d.dir_kind then
        [ leaf; "OMPLoopDirective"; "OMPLoopBasedDirective" ]
      else if is_loop_transformation d.dir_kind then
        [ leaf; "OMPLoopBasedDirective" ]
      else [ leaf ]
    in
    chain @ [ "OMPExecutableDirective"; "Stmt" ]
  | Expr_stmt e -> [ expr_class_name e; "Expr"; "Stmt" ]
  | _ -> [ stmt_class_name s; "Stmt" ]

let clause_ancestry c = [ clause_class_name c; "OMPClause" ]

let loop_association_depth d =
  if not (is_omp_loop_based_directive d.dir_kind) then 0
  else begin
    let rec from_clauses = function
      | [] -> 1
      | C_collapse (n, _) :: _ -> n
      | C_sizes sizes :: _ -> List.length sizes
      | _ :: rest -> from_clauses rest
    in
    from_clauses d.dir_clauses
  end
