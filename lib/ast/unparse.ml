open Tree

(* Precedence levels follow C; higher binds tighter. *)
let binop_prec = function
  | B_mul | B_div | B_rem -> 13
  | B_add | B_sub -> 12
  | B_shl | B_shr -> 11
  | B_lt | B_gt | B_le | B_ge -> 10
  | B_eq | B_ne -> 9
  | B_band -> 8
  | B_bxor -> 7
  | B_bor -> 6
  | B_land -> 5
  | B_lor -> 4
  | B_comma -> 1

let rec expr_prec e =
  match e.e_kind with
  | Int_lit _ | Float_lit _ | String_lit _ | Decl_ref _ | Fn_ref _ | Paren _ ->
    16
  | Call _ | Subscript _ -> 15
  | Unary (op, _) when Op.unop_is_postfix op -> 15
  | Unary _ | C_style_cast _ | Sizeof_type _ -> 14
  | Binary (op, _, _) -> binop_prec op
  | Conditional _ -> 3
  | Assign _ -> 2
  | Implicit_cast (_, inner) -> expr_prec inner
  | Recovery_expr _ -> 16 (* rendered as an atomic placeholder *)

let rec emit e =
  match e.e_kind with
  | Int_lit v -> Op.int_lit_str e.e_ty v
  | Float_lit f ->
    let s = Printf.sprintf "%g" f in
    if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"
  | String_lit s -> Printf.sprintf "\"%s\"" (String.escaped s)
  | Decl_ref v -> v.v_name
  | Fn_ref f -> f.fn_name
  | Paren inner -> Printf.sprintf "(%s)" (emit inner)
  | Unary (op, a) ->
    let spelled = Op.unop_spelling op in
    if Op.unop_is_postfix op then sub a 15 ^ spelled
    else spelled ^ sub a 14
  | Binary (B_comma, a, b) ->
    Printf.sprintf "%s, %s" (sub a 1) (sub b 2)
  | Binary (op, a, b) ->
    let p = binop_prec op in
    Printf.sprintf "%s %s %s" (sub a p) (Op.binop_spelling op) (sub b (p + 1))
  | Assign (None, a, b) -> Printf.sprintf "%s = %s" (sub a 3) (sub b 2)
  | Assign (Some op, a, b) ->
    Printf.sprintf "%s %s= %s" (sub a 3) (Op.binop_spelling op) (sub b 2)
  | Conditional (c, a, b) ->
    Printf.sprintf "%s ? %s : %s" (sub c 4) (emit a) (sub b 3)
  | Call (f, args) ->
    Printf.sprintf "%s(%s)" (sub f 15) (String.concat ", " (List.map emit args))
  | Subscript (a, i) -> Printf.sprintf "%s[%s]" (sub a 15) (emit i)
  | Implicit_cast (_, a) -> emit a (* implicit casts have no spelling *)
  | C_style_cast (ty, a) -> Printf.sprintf "(%s)%s" (Ctype.to_string ty) (sub a 14)
  | Sizeof_type ty -> Printf.sprintf "sizeof(%s)" (Ctype.to_string ty)
  | Recovery_expr [] -> "<recovery-expr>()"
  | Recovery_expr subs ->
    Printf.sprintf "<recovery-expr>(%s)"
      (String.concat ", " (List.map emit subs))

and sub e min_prec =
  let s = emit e in
  if expr_prec e < min_prec then "(" ^ s ^ ")" else s

let expr_to_string = emit

let decl_string v =
  (* Render arrays as C declarators: [int a[10]], not [int[10] a]. *)
  match v.v_ty with
  | Array (elem, n) ->
    let bound = match n with Some n -> string_of_int n | None -> "" in
    Printf.sprintf "%s %s[%s]" (Ctype.to_string elem) v.v_name bound
  | ty -> Printf.sprintf "%s %s" (Ctype.to_string ty) v.v_name

let var_decl_string v =
  match v.v_init with
  | Some init -> Printf.sprintf "%s = %s" (decl_string v) (emit init)
  | None -> decl_string v

let sched_kind_string = function
  | Sched_static -> "static"
  | Sched_dynamic -> "dynamic"
  | Sched_guided -> "guided"
  | Sched_auto -> "auto"
  | Sched_runtime -> "runtime"

let clause_string c =
  let vars vs = String.concat ", " (List.map (fun v -> v.v_name) vs) in
  match c with
  | C_num_threads e -> Printf.sprintf "num_threads(%s)" (emit e)
  | C_schedule (k, None) -> Printf.sprintf "schedule(%s)" (sched_kind_string k)
  | C_schedule (k, Some chunk) ->
    Printf.sprintf "schedule(%s, %s)" (sched_kind_string k) (emit chunk)
  | C_collapse (_, e) -> Printf.sprintf "collapse(%s)" (emit e)
  | C_full -> "full"
  | C_partial None -> "partial"
  | C_partial (Some (_, e)) -> Printf.sprintf "partial(%s)" (emit e)
  | C_sizes sizes ->
    Printf.sprintf "sizes(%s)" (String.concat ", " (List.map (fun (_, e) -> emit e) sizes))
  | C_private vs -> Printf.sprintf "private(%s)" (vars vs)
  | C_firstprivate vs -> Printf.sprintf "firstprivate(%s)" (vars vs)
  | C_shared vs -> Printf.sprintf "shared(%s)" (vars vs)
  | C_reduction (op, vs) ->
    let op_str =
      match op with
      | Red_add -> "+"
      | Red_mul -> "*"
      | Red_min -> "min"
      | Red_max -> "max"
      | Red_band -> "&"
      | Red_bor -> "|"
    in
    Printf.sprintf "reduction(%s: %s)" op_str (vars vs)
  | C_nowait -> "nowait"
  | C_permutation ps ->
    Printf.sprintf "permutation(%s)"
      (String.concat ", " (List.map (fun (_, e) -> emit e) ps))
  | C_simdlen (_, e) -> Printf.sprintf "simdlen(%s)" (emit e)
  | C_if e -> Printf.sprintf "if(%s)" (emit e)

let directive_name = function
  | D_parallel -> "parallel"
  | D_for -> "for"
  | D_parallel_for -> "parallel for"
  | D_simd -> "simd"
  | D_for_simd -> "for simd"
  | D_parallel_for_simd -> "parallel for simd"
  | D_unroll -> "unroll"
  | D_tile -> "tile"
  | D_reverse -> "reverse"
  | D_interchange -> "interchange"
  | D_stripe -> "stripe"
  | D_fuse -> "fuse"
  | D_fission -> "fission"
  | D_barrier -> "barrier"
  | D_single -> "single"
  | D_master -> "master"
  | D_critical None -> "critical"
  | D_critical (Some n) -> Printf.sprintf "critical (%s)" n

let rec stmt_lines indent s =
  let pad = String.make indent ' ' in
  match s.s_kind with
  | Null_stmt -> [ pad ^ ";" ]
  | Compound ss ->
    (pad ^ "{") :: List.concat_map (stmt_lines (indent + 2)) ss @ [ pad ^ "}" ]
  | Expr_stmt e -> [ pad ^ emit e ^ ";" ]
  | Decl_stmt vars ->
    [ pad ^ String.concat ", " (List.map var_decl_string vars) ^ ";" ]
  | If (c, then_s, else_s) -> (
    let head = Printf.sprintf "%sif (%s)" pad (emit c) in
    (head :: stmt_lines (indent + 2) then_s)
    @
    match else_s with
    | None -> []
    | Some e -> (pad ^ "else") :: stmt_lines (indent + 2) e)
  | Switch (c, body) ->
    Printf.sprintf "%sswitch (%s)" pad (emit c) :: stmt_lines (indent + 2) body
  | Case { case_expr; case_body; _ } ->
    Printf.sprintf "%scase %s:" pad (emit case_expr)
    :: stmt_lines (indent + 2) case_body
  | Default body -> (pad ^ "default:") :: stmt_lines (indent + 2) body
  | While (c, body) ->
    Printf.sprintf "%swhile (%s)" pad (emit c) :: stmt_lines (indent + 2) body
  | Do_while (body, c) ->
    ((pad ^ "do") :: stmt_lines (indent + 2) body)
    @ [ Printf.sprintf "%swhile (%s);" pad (emit c) ]
  | For { for_init; for_cond; for_inc; for_body } ->
    let init_str =
      match for_init with
      | Some { s_kind = Decl_stmt vars; _ } ->
        String.concat ", " (List.map var_decl_string vars)
      | Some { s_kind = Expr_stmt e; _ } -> emit e
      | Some _ | None -> ""
    in
    let cond_str = match for_cond with Some e -> emit e | None -> "" in
    let inc_str = match for_inc with Some e -> emit e | None -> "" in
    Printf.sprintf "%sfor (%s; %s; %s)" pad init_str cond_str inc_str
    :: stmt_lines (indent + 2) for_body
  | Range_for rf ->
    Printf.sprintf "%sfor (%s %s%s : %s)" pad
      (Ctype.to_string rf.rf_var.v_ty)
      (if rf.rf_byref then "&" else "")
      rf.rf_var.v_name (emit rf.rf_range)
    :: stmt_lines (indent + 2) rf.rf_body
  | Break -> [ pad ^ "break;" ]
  | Continue -> [ pad ^ "continue;" ]
  | Return None -> [ pad ^ "return;" ]
  | Return (Some e) -> [ pad ^ Printf.sprintf "return %s;" (emit e) ]
  | Attributed (attrs, sub) ->
    List.map
      (fun (Loop_hint h) ->
        let opt =
          match h.lh_option with
          | Hint_unroll_enable -> "unroll(enable)"
          | Hint_unroll_full -> "unroll(full)"
          | Hint_unroll_disable -> "unroll(disable)"
          | Hint_unroll_count ->
            Printf.sprintf "unroll_count(%d)" (Option.value h.lh_value ~default:0)
        in
        Printf.sprintf "%s#pragma clang loop %s" pad opt)
      attrs
    @ stmt_lines indent sub
  | Captured c -> stmt_lines indent c.cap_body
  | Omp_canonical_loop ocl -> stmt_lines indent ocl.ocl_loop
  | Omp_directive d ->
    let clauses =
      String.concat " " (List.map clause_string d.dir_clauses)
    in
    Printf.sprintf "%s#pragma omp %s%s" pad
      (directive_name d.dir_kind)
      (if clauses = "" then "" else " " ^ clauses)
    :: List.concat_map (stmt_lines indent) (Option.to_list d.dir_assoc)
  | Error_stmt [] -> [ pad ^ "<error-stmt>;" ]
  | Error_stmt ss ->
    ((pad ^ "<error-stmt> {") :: List.concat_map (stmt_lines (indent + 2)) ss)
    @ [ pad ^ "}" ]

let stmt_to_string ?(indent = 0) s = String.concat "\n" (stmt_lines indent s) ^ "\n"

let fn_to_string f =
  let params =
    String.concat ", " (List.map (fun v -> decl_string v) f.fn_params)
  in
  let head =
    Printf.sprintf "%s %s(%s)" (Ctype.to_string f.fn_ty.ft_ret) f.fn_name params
  in
  match f.fn_body with
  | None -> head ^ ";\n"
  | Some body -> head ^ "\n" ^ stmt_to_string body

let translation_unit_to_string tu =
  String.concat "\n"
    (List.map
       (function
         | Tu_fn f -> fn_to_string f
         | Tu_var v -> var_decl_string v ^ ";\n")
       tu.tu_decls)
