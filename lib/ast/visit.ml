open Tree

let expr_children e =
  match e.e_kind with
  | Int_lit _ | Float_lit _ | String_lit _ | Decl_ref _ | Fn_ref _
  | Sizeof_type _ ->
    []
  | Paren a | Unary (_, a) | Implicit_cast (_, a) | C_style_cast (_, a) -> [ a ]
  | Binary (_, a, b) | Assign (_, a, b) | Subscript (a, b) -> [ a; b ]
  | Conditional (a, b, c) -> [ a; b; c ]
  | Call (f, args) -> f :: args
  | Recovery_expr subs -> subs

let clause_exprs = function
  | C_num_threads e | C_collapse (_, e) | C_simdlen (_, e) | C_if e -> [ e ]
  | C_schedule (_, chunk) -> Option.to_list chunk
  | C_partial p -> ( match p with Some (_, e) -> [ e ] | None -> [])
  | C_sizes sizes -> List.map snd sizes
  | C_permutation ps -> List.map snd ps
  | C_full | C_nowait -> []
  | C_private _ | C_firstprivate _ | C_shared _ | C_reduction _ -> []

let captured_stmts c = [ c.cap_body ]

let stmt_sub_stmts ~shadow s =
  match s.s_kind with
  | Null_stmt | Expr_stmt _ | Decl_stmt _ | Break | Continue | Return _ -> []
  | Compound ss | Error_stmt ss -> ss
  | If (_, then_s, else_s) -> then_s :: Option.to_list else_s
  | Switch (_, body) -> [ body ]
  | Case { case_body; _ } -> [ case_body ]
  | Default body -> [ body ]
  | While (_, body) -> [ body ]
  | Do_while (body, _) -> [ body ]
  | For { for_init; for_body; _ } -> Option.to_list for_init @ [ for_body ]
  | Range_for rf ->
    (rf.rf_body :: if shadow then Option.to_list rf.rf_desugared else [])
  | Attributed (_, sub) -> [ sub ]
  | Captured c -> captured_stmts c
  | Omp_canonical_loop ocl ->
    [ ocl.ocl_loop; ocl.ocl_distance.cap_body; ocl.ocl_loop_value.cap_body ]
  | Omp_directive d ->
    Option.to_list d.dir_assoc
    @
    if shadow then
      Option.to_list d.dir_preinits @ Option.to_list d.dir_transformed
    else []

let var_exprs v = Option.to_list v.v_init

let stmt_sub_exprs s =
  match s.s_kind with
  | Null_stmt | Compound _ | Error_stmt _ | Break | Continue | Attributed _
  | Captured _ -> []
  | Expr_stmt e -> [ e ]
  | Decl_stmt vars -> List.concat_map var_exprs vars
  | If (c, _, _) | Switch (c, _) | While (c, _) | Do_while (_, c) -> [ c ]
  | Case { case_expr; _ } -> [ case_expr ]
  | Default _ -> []
  | For { for_cond; for_inc; _ } ->
    Option.to_list for_cond @ Option.to_list for_inc
  | Range_for rf -> [ rf.rf_range ]
  | Return e -> Option.to_list e
  | Omp_canonical_loop ocl -> [ ocl.ocl_var_ref ]
  | Omp_directive d -> List.concat_map clause_exprs d.dir_clauses

let stmt_vars s =
  match s.s_kind with
  | Decl_stmt vars -> vars
  | Range_for rf -> [ rf.rf_var; rf.rf_range_var; rf.rf_begin_var; rf.rf_end_var ]
  | Captured c -> c.cap_params
  | _ -> []

let stmt_clauses s =
  match s.s_kind with Omp_directive d -> d.dir_clauses | _ -> []

(* Shadow expressions of a directive's loop helpers, in slot order. *)
let helper_exprs h =
  [
    h.lhs_num_iterations;
    h.lhs_last_iteration;
    h.lhs_calc_last_iteration;
    h.lhs_precondition;
    h.lhs_cond;
    h.lhs_init;
    h.lhs_inc;
    h.lhs_ensure_upper_bound;
    h.lhs_next_lower_bound;
    h.lhs_next_upper_bound;
  ]
  @ List.filter_map Fun.id
      [
        h.lhs_dist_inc;
        h.lhs_prev_ensure_upper_bound;
        h.lhs_combined_lower_bound;
        h.lhs_combined_upper_bound;
        h.lhs_combined_ensure_upper_bound;
        h.lhs_combined_init;
        h.lhs_combined_cond;
        h.lhs_combined_next_lower_bound;
        h.lhs_combined_next_upper_bound;
        h.lhs_combined_dist_cond;
        h.lhs_combined_parfor_in_dist_cond;
      ]
  @ List.concat_map
      (fun pl ->
        [
          pl.pl_counter_init;
          pl.pl_counter_step;
          pl.pl_counter_update;
          pl.pl_counter_final;
        ])
      h.lhs_loops

let helper_vars h =
  [
    h.lhs_iteration_variable;
    h.lhs_is_last_iter_variable;
    h.lhs_lower_bound_variable;
    h.lhs_upper_bound_variable;
    h.lhs_stride_variable;
  ]
  @ h.lhs_capture_exprs
  @ List.filter_map Fun.id
      [ h.lhs_prev_lower_bound_variable; h.lhs_prev_upper_bound_variable ]
  @ List.concat_map
      (fun pl -> [ pl.pl_counter; pl.pl_private_counter ])
      h.lhs_loops

let nop = fun _ -> ()

let iter ?(shadow = true) ?(on_stmt = nop) ?(on_expr = nop) ?(on_var = nop)
    ?(on_clause = nop) root =
  let rec visit_expr e =
    on_expr e;
    List.iter visit_expr (expr_children e)
  in
  let visit_var v =
    on_var v;
    List.iter visit_expr (var_exprs v)
  in
  let rec visit_stmt s =
    on_stmt s;
    List.iter
      (fun c ->
        on_clause c;
        List.iter visit_expr (clause_exprs c))
      (stmt_clauses s);
    List.iter on_var (stmt_vars s);
    List.iter visit_expr (stmt_sub_exprs s);
    List.iter visit_stmt (stmt_sub_stmts ~shadow s);
    if shadow then begin
      match s.s_kind with
      | Omp_directive d -> (
        match d.dir_loop_helpers with
        | None -> ()
        | Some h ->
          List.iter visit_var (helper_vars h);
          List.iter visit_expr (helper_exprs h))
      | _ -> ()
    end
  in
  visit_stmt root

let count_nodes ?(shadow = true) root =
  let n = ref 0 in
  let bump _ = incr n in
  iter ~shadow ~on_stmt:bump ~on_expr:bump ~on_var:bump ~on_clause:bump root;
  !n

(* Fixed slots: 16 always-present fields, 13 combined/distribute slots, and
   the directive's PreInits statement — 30 in total, matching the paper's
   "up to 30 shadow AST statements ... plus 6 for each loop". *)
let fixed_slots = 30

let helper_slot_count h = fixed_slots + (6 * List.length h.lhs_loops)

let helper_occupied_count h =
  let opt o = if Option.is_some o then 1 else 0 in
  16
  + opt h.lhs_prev_lower_bound_variable
  + opt h.lhs_prev_upper_bound_variable
  + opt h.lhs_dist_inc
  + opt h.lhs_prev_ensure_upper_bound
  + opt h.lhs_combined_lower_bound
  + opt h.lhs_combined_upper_bound
  + opt h.lhs_combined_ensure_upper_bound
  + opt h.lhs_combined_init
  + opt h.lhs_combined_cond
  + opt h.lhs_combined_next_lower_bound
  + opt h.lhs_combined_next_upper_bound
  + opt h.lhs_combined_dist_cond
  + opt h.lhs_combined_parfor_in_dist_cond
  + (6 * List.length h.lhs_loops)

let canonical_meta_count (_ : canonical_loop) = 3
