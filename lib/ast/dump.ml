open Tree

type dnode = { label : string; kids : dnode list }

let leaf label = { label; kids = [] }
let node label kids = { label; kids }
let null_node = leaf "<<<NULL>>>"

(* Dump-local declaration ordinals standing in for Clang's pointer values. *)
type state = { ordinals : (int, int) Hashtbl.t; mutable next : int }

let new_state () = { ordinals = Hashtbl.create 16; next = 1 }

let ordinal st v =
  match Hashtbl.find_opt st.ordinals v.v_id with
  | Some n -> (n, false)
  | None ->
    let n = st.next in
    st.next <- n + 1;
    Hashtbl.add st.ordinals v.v_id n;
    (n, true)

let ty_str t = Ctype.to_string t

let cast_kind_name = function
  | CK_lvalue_to_rvalue -> "LValueToRValue"
  | CK_integral -> "IntegralCast"
  | CK_integral_to_floating -> "IntegralToFloating"
  | CK_floating_to_integral -> "FloatingToIntegral"
  | CK_floating -> "FloatingCast"
  | CK_array_to_pointer -> "ArrayToPointerDecay"
  | CK_int_to_bool -> "IntegralToBoolean"
  | CK_float_to_bool -> "FloatingToBoolean"
  | CK_pointer -> "BitCast"

let hint_option_name = function
  | Hint_unroll_enable -> "UnrollEnable"
  | Hint_unroll_full -> "UnrollFull"
  | Hint_unroll_count -> "UnrollCount"
  | Hint_unroll_disable -> "UnrollDisable"

let rec expr_node st e =
  let lbl = Classify.expr_class_name e in
  let ty = ty_str e.e_ty in
  match e.e_kind with
  | Int_lit v -> leaf (Printf.sprintf "%s '%s' %s" lbl ty (Op.int_lit_str e.e_ty v))
  | Float_lit f -> leaf (Printf.sprintf "%s '%s' %g" lbl ty f)
  | String_lit s -> leaf (Printf.sprintf "%s '%s' \"%s\"" lbl ty (String.escaped s))
  | Decl_ref v ->
    leaf
      (Printf.sprintf "%s '%s' lvalue Var '%s' '%s'" lbl ty v.v_name
         (ty_str v.v_ty))
  | Fn_ref f ->
    leaf
      (Printf.sprintf "%s '%s' Function '%s' '%s'" lbl ty f.fn_name
         (ty_str (Func f.fn_ty)))
  | Paren inner -> node (Printf.sprintf "%s '%s'" lbl ty) [ expr_node st inner ]
  | Unary (op, a) ->
    node
      (Printf.sprintf "%s '%s' %s '%s'" lbl ty
         (if Op.unop_is_postfix op then "postfix" else "prefix")
         (Op.unop_spelling op))
      [ expr_node st a ]
  | Binary (op, a, b) ->
    node
      (Printf.sprintf "%s '%s' '%s'" lbl ty (Op.binop_spelling op))
      [ expr_node st a; expr_node st b ]
  | Assign (None, a, b) ->
    node (Printf.sprintf "%s '%s' '='" lbl ty) [ expr_node st a; expr_node st b ]
  | Assign (Some op, a, b) ->
    node
      (Printf.sprintf "%s '%s' '%s='" lbl ty (Op.binop_spelling op))
      [ expr_node st a; expr_node st b ]
  | Conditional (c, a, b) ->
    node
      (Printf.sprintf "%s '%s'" lbl ty)
      [ expr_node st c; expr_node st a; expr_node st b ]
  | Call (f, args) ->
    node (Printf.sprintf "%s '%s'" lbl ty) (List.map (expr_node st) (f :: args))
  | Subscript (a, i) ->
    node (Printf.sprintf "%s '%s' lvalue" lbl ty) [ expr_node st a; expr_node st i ]
  | Implicit_cast (ck, a) ->
    node
      (Printf.sprintf "%s '%s' <%s>" lbl ty (cast_kind_name ck))
      [ expr_node st a ]
  | C_style_cast (_, a) -> node (Printf.sprintf "%s '%s'" lbl ty) [ expr_node st a ]
  | Sizeof_type t ->
    leaf (Printf.sprintf "%s '%s' sizeof '%s'" lbl ty (ty_str t))
  | Recovery_expr subs ->
    (* Clang spells the dependence bit out on RecoveryExpr lines. *)
    node
      (Printf.sprintf "%s '%s' contains-errors" lbl ty)
      (List.map (expr_node st) subs)

and var_node st v =
  let n, first = ordinal st v in
  if not first then leaf (Printf.sprintf "VarDecl %d" n)
  else begin
    let used = if v.v_used then " used" else "" in
    let implicit = if v.v_implicit then " implicit" else "" in
    match v.v_init with
    | Some init ->
      node
        (Printf.sprintf "VarDecl %d%s%s %s '%s' cinit" n implicit used v.v_name
           (ty_str v.v_ty))
        [ expr_node st init ]
    | None ->
      leaf
        (Printf.sprintf "VarDecl %d%s%s %s '%s'" n implicit used v.v_name
           (ty_str v.v_ty))
  end

and implicit_param_node _st v =
  leaf (Printf.sprintf "ImplicitParamDecl implicit %s '%s'" v.v_name (ty_str v.v_ty))

and constant_wrapped st value e =
  node
    (Printf.sprintf "ConstantExpr '%s'" (ty_str e.e_ty))
    [ leaf (Printf.sprintf "value: Int %d" value); expr_node st e ]

and clause_node st c =
  let lbl = Classify.clause_class_name c in
  match c with
  | C_full | C_nowait -> leaf lbl
  | C_num_threads e | C_if e -> node lbl [ expr_node st e ]
  | C_schedule (kind, chunk) ->
    let kind_str =
      match kind with
      | Sched_static -> "static"
      | Sched_dynamic -> "dynamic"
      | Sched_guided -> "guided"
      | Sched_auto -> "auto"
      | Sched_runtime -> "runtime"
    in
    node (lbl ^ " " ^ kind_str) (List.map (expr_node st) (Option.to_list chunk))
  | C_collapse (n, e) | C_simdlen (n, e) -> node lbl [ constant_wrapped st n e ]
  | C_partial None -> leaf lbl
  | C_partial (Some (n, e)) -> node lbl [ constant_wrapped st n e ]
  | C_sizes sizes -> node lbl (List.map (fun (n, e) -> constant_wrapped st n e) sizes)
  | C_permutation ps -> node lbl (List.map (fun (n, e) -> constant_wrapped st n e) ps)
  | C_private vars | C_firstprivate vars | C_shared vars ->
    node lbl
      (List.map
         (fun v ->
           leaf
             (Printf.sprintf "DeclRefExpr '%s' lvalue Var '%s' '%s'"
                (ty_str v.v_ty) v.v_name (ty_str v.v_ty)))
         vars)
  | C_reduction (op, vars) ->
    let op_str =
      match op with
      | Red_add -> "+"
      | Red_mul -> "*"
      | Red_min -> "min"
      | Red_max -> "max"
      | Red_band -> "&"
      | Red_bor -> "|"
    in
    node
      (Printf.sprintf "%s '%s'" lbl op_str)
      (List.map
         (fun v ->
           leaf
             (Printf.sprintf "DeclRefExpr '%s' lvalue Var '%s' '%s'"
                (ty_str v.v_ty) v.v_name (ty_str v.v_ty)))
         vars)

and captured_node st ~shadow c =
  (* Evaluation order matters: the body must claim declaration ordinals
     before the trailing capture list re-mentions them. *)
  let body = stmt_node st ~shadow c.cap_body in
  let params = List.map (implicit_param_node st) c.cap_params in
  let captures = List.map (var_node st) (c.cap_captures @ c.cap_byval) in
  node "CapturedStmt" [ node "CapturedDecl nothrow" ((body :: params) @ captures) ]

and attr_node _st (Loop_hint h) =
  match h.lh_value with
  | Some v ->
    node
      (Printf.sprintf "LoopHintAttr Implicit loop %s Numeric"
         (hint_option_name h.lh_option))
      [ leaf (Printf.sprintf "IntegerLiteral 'int' %d" v) ]
  | None ->
    leaf
      (Printf.sprintf "LoopHintAttr Implicit loop %s" (hint_option_name h.lh_option))

and stmt_node st ~shadow s =
  let lbl = Classify.stmt_class_name s in
  match s.s_kind with
  | Null_stmt -> leaf "NullStmt"
  | Compound ss -> node lbl (List.map (stmt_node st ~shadow) ss)
  | Expr_stmt e -> expr_node st e
  | Decl_stmt vars -> node lbl (List.map (var_node st) vars)
  | If (c, then_s, else_s) ->
    node lbl
      ([ expr_node st c; stmt_node st ~shadow then_s ]
      @ List.map (stmt_node st ~shadow) (Option.to_list else_s))
  | Switch (c, body) -> node lbl [ expr_node st c; stmt_node st ~shadow body ]
  | Case { case_expr; case_body; _ } ->
    node lbl [ expr_node st case_expr; stmt_node st ~shadow case_body ]
  | Default body -> node lbl [ stmt_node st ~shadow body ]
  | While (c, body) -> node lbl [ expr_node st c; stmt_node st ~shadow body ]
  | Do_while (body, c) -> node lbl [ stmt_node st ~shadow body; expr_node st c ]
  | For { for_init; for_cond; for_inc; for_body } ->
    let opt_stmt = function
      | Some sub -> stmt_node st ~shadow sub
      | None -> null_node
    in
    let opt_expr = function Some e -> expr_node st e | None -> null_node in
    node lbl
      [
        opt_stmt for_init;
        null_node (* condition-variable slot, always empty in C *);
        opt_expr for_cond;
        opt_expr for_inc;
        stmt_node st ~shadow for_body;
      ]
  | Range_for rf ->
    node lbl
      ([
         var_node st rf.rf_range_var;
         var_node st rf.rf_begin_var;
         var_node st rf.rf_end_var;
         var_node st rf.rf_var;
         expr_node st rf.rf_range;
         stmt_node st ~shadow rf.rf_body;
       ]
      @
      if shadow then
        match rf.rf_desugared with
        | Some d -> [ node "<desugared>" [ stmt_node st ~shadow d ] ]
        | None -> []
      else [])
  | Break | Continue -> leaf lbl
  | Return e ->
    node lbl (List.map (expr_node st) (Option.to_list e))
  | Attributed (attrs, sub) ->
    node lbl (List.map (attr_node st) attrs @ [ stmt_node st ~shadow sub ])
  | Captured c -> captured_node st ~shadow c
  | Omp_canonical_loop ocl ->
    node lbl
      [
        stmt_node st ~shadow ocl.ocl_loop;
        captured_node st ~shadow ocl.ocl_distance;
        captured_node st ~shadow ocl.ocl_loop_value;
        expr_node st ocl.ocl_var_ref;
      ]
  | Omp_directive d ->
    let clause_nodes = List.map (clause_node st) d.dir_clauses in
    let assoc =
      List.map (stmt_node st ~shadow) (Option.to_list d.dir_assoc)
    in
    let shadow_nodes =
      if not shadow then []
      else
        (match d.dir_preinits with
        | Some p -> [ node "<preinits>" [ stmt_node st ~shadow p ] ]
        | None -> [])
        @ (match d.dir_transformed with
          | Some tr -> [ node "<transformed>" [ stmt_node st ~shadow tr ] ]
          | None -> [])
        @
        match d.dir_loop_helpers with
        | Some h ->
          [
            node "<loop helpers>"
              (List.map (var_node st) (Visit.helper_vars h)
              @ List.map (expr_node st) (Visit.helper_exprs h));
          ]
        | None -> []
    in
    node lbl (clause_nodes @ assoc @ shadow_nodes)
  | Error_stmt ss ->
    node (lbl ^ " contains-errors") (List.map (stmt_node st ~shadow) ss)

(* ---- rendering -------------------------------------------------------- *)

let render root =
  let buf = Buffer.create 256 in
  Buffer.add_string buf root.label;
  Buffer.add_char buf '\n';
  let rec kids prefix = function
    | [] -> ()
    | [ last ] -> child prefix "`-" "  " last
    | k :: rest ->
      child prefix "|-" "| " k;
      kids prefix rest
  and child prefix connector continuation n =
    Buffer.add_string buf (prefix ^ connector ^ n.label ^ "\n");
    kids (prefix ^ continuation) n.kids
  in
  kids "" root.kids;
  Buffer.contents buf

let stmt ?(shadow = false) s = render (stmt_node (new_state ()) ~shadow s)
let expr e = render (expr_node (new_state ()) e)

let fn_node st ~shadow f =
  let param_node v =
    leaf (Printf.sprintf "ParmVarDecl %s '%s'" v.v_name (ty_str v.v_ty))
  in
  node
    (Printf.sprintf "FunctionDecl %s '%s'%s" f.fn_name (ty_str (Func f.fn_ty))
       (if f.fn_builtin then " extern" else ""))
    (List.map param_node f.fn_params
    @ List.map (stmt_node st ~shadow) (Option.to_list f.fn_body))

let translation_unit ?(shadow = false) tu =
  let st = new_state () in
  render
    (node "TranslationUnitDecl"
       (List.map
          (function
            | Tu_fn f -> fn_node st ~shadow f
            | Tu_var v -> var_node st v)
          tu.tu_decls))

let transformed_stmt d =
  Option.map (fun s -> stmt ~shadow:false s) d.dir_transformed
