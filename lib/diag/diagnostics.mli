(** Diagnostics engine, the analogue of [clang::DiagnosticsEngine].

    The paper's §2 discusses how shadow-AST diagnostics can leak internal
    names such as [".capture_expr."] to the user, and suggests note chains
    ("loop transformed here") in the style of template-instantiation notes.
    This engine supports both: every primary diagnostic may carry notes, and
    consumers can observe the raw stream (tests assert on leaked internal
    names this way). *)

type severity = Note | Remark | Warning | Error | Fatal

type diagnostic = {
  severity : severity;
  loc : Mc_srcmgr.Source_location.t;
  message : string;
  notes : diagnostic list; (* attached notes, themselves [Note]-severity *)
}

type t

val create : Mc_srcmgr.Source_manager.t -> t
val source_manager : t -> Mc_srcmgr.Source_manager.t

val note : loc:Mc_srcmgr.Source_location.t -> string -> diagnostic
(** Builds a note to attach to a primary diagnostic. *)

val report :
  t ->
  severity ->
  loc:Mc_srcmgr.Source_location.t ->
  ?notes:diagnostic list ->
  string ->
  unit

val error :
  t -> loc:Mc_srcmgr.Source_location.t -> ?notes:diagnostic list -> string -> unit

val warning :
  t -> loc:Mc_srcmgr.Source_location.t -> ?notes:diagnostic list -> string -> unit

val set_error_limit : t -> int -> unit
(** [-ferror-limit N] (0 = unlimited, the default): once [N] errors have
    been emitted, the next error becomes a single fatal "too many errors
    emitted, stopping now" and every diagnostic after that is dropped —
    the engine never crashes or cascades past the limit. *)

val error_limit_reached : t -> bool
(** Whether the limit fired (further diagnostics are being dropped). *)

val error_count : t -> int
val warning_count : t -> int
val has_errors : t -> bool
val diagnostics : t -> diagnostic list
(** All primary diagnostics in emission order. *)

val set_consumer : t -> (diagnostic -> unit) -> unit
(** Installs an additional callback invoked on every primary diagnostic. *)

val with_context_note :
  t -> loc:Mc_srcmgr.Source_location.t -> string -> (unit -> 'a) -> 'a
(** Runs the thunk with a context note pushed: every primary diagnostic
    emitted inside gets the note appended — the mechanism the paper's §2
    suggests for explaining the history of shadow-AST locations, in the
    style of "in instantiation of template ... required here". *)

val render : t -> diagnostic -> string
(** ["file:line:col: error: message"] followed by a caret snippet and any
    notes, like Clang's default text consumer. *)

val render_all : t -> string
