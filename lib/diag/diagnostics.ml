module Loc = Mc_srcmgr.Source_location
module Srcmgr = Mc_srcmgr.Source_manager

type severity = Note | Remark | Warning | Error | Fatal

type diagnostic = {
  severity : severity;
  loc : Loc.t;
  message : string;
  notes : diagnostic list;
}

type t = {
  srcmgr : Srcmgr.t;
  mutable emitted : diagnostic list; (* reverse order *)
  mutable errors : int;
  mutable warnings : int;
  mutable consumer : (diagnostic -> unit) option;
  mutable context_notes : diagnostic list; (* innermost first *)
  mutable error_limit : int; (* -ferror-limit; 0 = unlimited *)
  mutable suppressed : bool; (* the limit fired; drop further output *)
}

let create srcmgr =
  { srcmgr; emitted = []; errors = 0; warnings = 0; consumer = None;
    context_notes = []; error_limit = 0; suppressed = false }
let source_manager t = t.srcmgr
let note ~loc message = { severity = Note; loc; message; notes = [] }

let set_error_limit t n = t.error_limit <- n
let error_limit_reached t = t.suppressed

let emit t severity ~loc ~notes message =
  (* [context_notes] is already innermost first, matching how Clang orders
     macro-expansion/instantiation notes (most specific context first) —
     appending it un-reversed preserves that invariant. *)
  let d = { severity; loc; message; notes = notes @ t.context_notes } in
  t.emitted <- d :: t.emitted;
  (match severity with
  | Error | Fatal -> t.errors <- t.errors + 1
  | Warning -> t.warnings <- t.warnings + 1
  | Note | Remark -> ());
  match t.consumer with None -> () | Some f -> f d

let report t severity ~loc ?(notes = []) message =
  if not t.suppressed then
    if
      t.error_limit > 0 && t.errors >= t.error_limit
      && match severity with Error | Fatal -> true | _ -> false
    then begin
      (* Clang's -ferror-limit behaviour: one final fatal, then silence —
         so a cascade on a broken input stops at limit + 1 errors. *)
      t.suppressed <- true;
      emit t Fatal ~loc ~notes:[]
        "too many errors emitted, stopping now [-ferror-limit=]"
    end
    else emit t severity ~loc ~notes message

let error t ~loc ?notes message = report t Error ~loc ?notes message
let warning t ~loc ?notes message = report t Warning ~loc ?notes message
let error_count t = t.errors
let warning_count t = t.warnings
let has_errors t = t.errors > 0
let diagnostics t = List.rev t.emitted
let set_consumer t f = t.consumer <- Some f

let with_context_note t ~loc message f =
  let n = note ~loc message in
  t.context_notes <- n :: t.context_notes;
  Fun.protect
    ~finally:(fun () -> t.context_notes <- List.tl t.context_notes)
    f

let severity_name = function
  | Note -> "note"
  | Remark -> "remark"
  | Warning -> "warning"
  | Error -> "error"
  | Fatal -> "fatal error"

let render_one srcmgr buf d =
  let header = Srcmgr.describe srcmgr d.loc in
  Buffer.add_string buf
    (Printf.sprintf "%s: %s: %s\n" header (severity_name d.severity) d.message);
  match (Srcmgr.line_text srcmgr d.loc, Srcmgr.presumed srcmgr d.loc) with
  | Some line, Some p ->
    Buffer.add_string buf line;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (String.make (p.Srcmgr.column - 1) ' ');
    Buffer.add_string buf "^\n"
  | _ -> ()

let rec render_rec srcmgr buf d =
  render_one srcmgr buf d;
  List.iter (render_rec srcmgr buf) d.notes

let render t d =
  let buf = Buffer.create 128 in
  render_rec t.srcmgr buf d;
  Buffer.contents buf

let render_all t =
  String.concat "" (List.map (render t) (diagnostics t))
