open Mc_ir.Ir
module Int_ops = Mc_support.Int_ops
module Stats = Mc_support.Stats
module Schedule = Mc_omprt.Schedule

type trace_entry = T_int of int64 | T_float of float

type wtime_mode = Wtime_virtual of float | Wtime_real

type config = {
  num_threads : int;
  max_steps : int;
  wtime : wtime_mode;
  fill_byte : char;
}

let default_config =
  {
    num_threads = 4;
    max_steps = 200_000_000;
    wtime = Wtime_virtual 1e-9;
    fill_byte = '\000';
  }

let stat_steps =
  Stats.counter ~group:"interp" ~name:"steps-executed"
    ~desc:"IR instructions interpreted" ()
let stat_parallel =
  Stats.counter ~group:"interp" ~name:"parallel-regions"
    ~desc:"simulated parallel regions forked" ()
let stat_chunks_static =
  Stats.counter ~group:"interp" ~name:"chunks-static"
    ~desc:"static worksharing chunks handed out" ()
let stat_chunks_dynamic =
  Stats.counter ~group:"interp" ~name:"chunks-dynamic"
    ~desc:"dynamic-schedule chunks dispatched" ()
let stat_chunks_guided =
  Stats.counter ~group:"interp" ~name:"chunks-guided"
    ~desc:"guided-schedule chunks dispatched" ()

type outcome = {
  return_value : int64 option;
  trace : trace_entry list;
  steps : int;
  output : string;
}

exception Trap of string

let trap fmt = Printf.ksprintf (fun s -> raise (Trap s)) fmt

(* ---- runtime values ------------------------------------------------------ *)

type addr = { slab : int; off : int }

type rvalue =
  | V_int of ty * int64 (* canonical per the type's width *)
  | V_float of ty * float
  | V_ptr of addr
  | V_fn of func
  | V_null

(* Per-(site, instance) dispatch queue for dynamic/guided worksharing.
   Because threads run to completion in order, the Nth time a thread reaches
   dispatch site S it joins region instance (S, N); the queue is shared by
   all team members of that instance and reclaimed once every member has
   drained it. *)
type dispatch_region = {
  queue : Schedule.dynamic_state;
  guided : bool; (* schedule(guided) rather than schedule(dynamic) *)
  mutable drained_by : int; (* members that have seen exhaustion *)
}

type team = {
  team_size : int;
  mutable team_tid : int;
  dispatch_regions : (int * int, dispatch_region) Hashtbl.t;
  dispatch_visits : (int * int, int) Hashtbl.t; (* (tid, site) -> visits *)
}

type state = {
  modul : modul;
  slabs : (int, Bytes.t) Hashtbl.t;
  (* Pointers stored to memory are remembered here because slab ids are not
     forgeable integers; raw bytes also get written so that size/offset
     arithmetic behaves. *)
  ptr_table : (int * int, rvalue) Hashtbl.t;
  mutable next_slab : int;
  mutable trace : trace_entry list; (* reverse order *)
  mutable steps : int;
  out : Buffer.t;
  config : config;
  mutable teams : team list; (* innermost team first *)
  mutable pushed_num_threads : int option;
  mutable orphan_team : team option; (* worksharing outside any parallel *)
  dispatch_cursor : (int * int, int) Hashtbl.t; (* (tid, site) -> instance *)
}

let canon ty v = Int_ops.truncate (int_width ~signed:true ty) v

let alloc state bytes =
  let slab = state.next_slab in
  state.next_slab <- slab + 1;
  Hashtbl.replace state.slabs slab
    (Bytes.make (max bytes 1) state.config.fill_byte);
  { slab; off = 0 }

let free state addr = Hashtbl.remove state.slabs addr.slab

let slab_bytes state addr what =
  match Hashtbl.find_opt state.slabs addr.slab with
  | Some b -> b
  | None -> trap "%s through freed or invalid pointer (slab %d)" what addr.slab

let store_scalar state addr ty v =
  let bytes = slab_bytes state addr "store" in
  let size = ty_size_in_bytes ty in
  if addr.off < 0 || addr.off + size > Bytes.length bytes then
    trap "store out of bounds (offset %d, %d bytes into a %d-byte object)"
      addr.off size (Bytes.length bytes);
  let raw =
    match v with
    | V_int (_, i) -> i
    | V_float (F32, f) -> Int64.of_int32 (Int32.bits_of_float f)
    | V_float (_, f) -> Int64.bits_of_float f
    | V_ptr a -> Int64.of_int ((a.slab * 0x100000) + a.off)
    | V_fn f -> Int64.of_int f.f_id
    | V_null -> 0L
  in
  for i = 0 to size - 1 do
    Bytes.set bytes (addr.off + i)
      (Char.chr
         (Int64.to_int (Int64.logand (Int64.shift_right_logical raw (8 * i)) 0xFFL)))
  done;
  match v with
  | V_ptr _ | V_fn _ -> Hashtbl.replace state.ptr_table (addr.slab, addr.off) v
  | _ -> Hashtbl.remove state.ptr_table (addr.slab, addr.off)

let load_scalar state addr ty =
  let bytes = slab_bytes state addr "load" in
  let size = ty_size_in_bytes ty in
  if addr.off < 0 || addr.off + size > Bytes.length bytes then
    trap "load out of bounds (offset %d, %d bytes from a %d-byte object)"
      addr.off size (Bytes.length bytes);
  if ty = Ptr then
    match Hashtbl.find_opt state.ptr_table (addr.slab, addr.off) with
    | Some v -> v
    | None -> V_null
  else begin
    let raw = ref 0L in
    for i = size - 1 downto 0 do
      raw :=
        Int64.logor (Int64.shift_left !raw 8)
          (Int64.of_int (Char.code (Bytes.get bytes (addr.off + i))))
    done;
    match ty with
    | F32 -> V_float (F32, Int32.float_of_bits (Int64.to_int32 !raw))
    | F64 -> V_float (F64, Int64.float_of_bits !raw)
    | _ -> V_int (ty, canon ty !raw)
  end

(* ---- value helpers ------------------------------------------------------- *)

let as_int what = function
  | V_int (_, v) -> v
  | V_null -> 0L
  | _ -> trap "%s: expected an integer value" what

let as_float what = function
  | V_float (_, f) -> f
  | _ -> trap "%s: expected a floating-point value" what

let as_ptr what = function
  | V_ptr a -> a
  | V_null -> trap "%s: null pointer dereference" what
  | _ -> trap "%s: expected a pointer value" what

let as_fn what = function
  | V_fn f -> f
  | _ -> trap "%s: expected a function value" what

let current_team state = match state.teams with [] -> None | t :: _ -> Some t

let thread_num state =
  match current_team state with Some t -> t.team_tid | None -> 0

let team_size state =
  match current_team state with Some t -> t.team_size | None -> 1

(* ---- instruction evaluation ---------------------------------------------- *)

type frame = {
  env : (int, rvalue) Hashtbl.t; (* inst id -> value *)
  args : (int, rvalue) Hashtbl.t; (* arg id -> value *)
  mutable local_slabs : addr list;
}

let eval_value frame v =
  match v with
  | Const_int (ty, value) -> V_int (ty, value)
  | Const_float (ty, f) -> V_float (ty, f)
  | Arg a -> (
    match Hashtbl.find_opt frame.args a.a_id with
    | Some rv -> rv
    | None -> trap "unbound argument '%s'" a.a_name)
  | Inst_ref i -> (
    match Hashtbl.find_opt frame.env i.i_id with
    | Some rv -> rv
    | None -> trap "use of instruction '%s' (%d) before definition" i.i_name i.i_id)
  | Fn_addr f -> V_fn f
  | Undef ty -> (
    match ty with
    | F32 | F64 -> V_float (ty, 0.0)
    | Ptr -> V_null
    | _ -> V_int (ty, 0L))

let eval_int_binop op ty a b =
  let ws = int_width ~signed:true ty and wu = int_width ~signed:false ty in
  let or_trap what = function Some v -> v | None -> trap "%s" what in
  match op with
  | Add -> Int_ops.add ws a b
  | Sub -> Int_ops.sub ws a b
  | Mul -> Int_ops.mul ws a b
  | Sdiv -> or_trap "signed division by zero or overflow" (Int_ops.div ws a b)
  | Udiv -> or_trap "unsigned division by zero" (Int_ops.div wu a b)
  | Srem -> or_trap "signed remainder by zero or overflow" (Int_ops.rem ws a b)
  | Urem -> or_trap "unsigned remainder by zero" (Int_ops.rem wu a b)
  | Shl -> Int_ops.shl ws a b
  | Lshr -> Int_ops.shr wu a b
  | Ashr -> Int_ops.shr ws a b
  | And -> Int_ops.bit_and ws a b
  | Or -> Int_ops.bit_or ws a b
  | Xor -> Int_ops.bit_xor ws a b
  | Fadd | Fsub | Fmul | Fdiv | Frem -> trap "float binop on integers"

let eval_float_binop op a b =
  match op with
  | Fadd -> a +. b
  | Fsub -> a -. b
  | Fmul -> a *. b
  | Fdiv -> a /. b
  | Frem -> Float.rem a b
  | _ -> trap "integer binop on floats"

let eval_icmp op ty a b =
  let ws = int_width ~signed:true ty in
  let ult x y =
    (* Compare within the type's width, zero-extended. *)
    let wu = int_width ~signed:false ty in
    let x = Int_ops.truncate wu x and y = Int_ops.truncate wu y in
    Int64.unsigned_compare x y < 0
  in
  match op with
  | Ieq -> Int64.equal a b
  | Ine -> not (Int64.equal a b)
  | Islt -> Int_ops.lt ws a b
  | Isle -> Int_ops.le ws a b
  | Isgt -> Int_ops.lt ws b a
  | Isge -> Int_ops.le ws b a
  | Iult -> ult a b
  | Iule -> Int64.equal a b || ult a b
  | Iugt -> ult b a
  | Iuge -> Int64.equal a b || ult b a

let eval_fcmp op a b =
  match op with
  | Foeq -> Float.equal a b
  | Fone -> not (Float.equal a b)
  | Folt -> a < b
  | Fole -> a <= b
  | Fogt -> a > b
  | Foge -> a >= b

let eval_cast op v target =
  match (op, v) with
  | (Trunc | Zext), V_int (ty, value) ->
    let from = int_width ~signed:false ty in
    let into = int_width ~signed:(int_width ~signed:true target).Int_ops.signed target in
    V_int (target, Int_ops.convert ~from ~into value)
  | Sext, V_int (ty, value) ->
    let from = int_width ~signed:true ty in
    let into = int_width ~signed:true target in
    V_int (target, Int_ops.convert ~from ~into value)
  | Sitofp, V_int (_, value) -> V_float (target, Int64.to_float value)
  | Uitofp, V_int (ty, value) ->
    let wu = int_width ~signed:false ty in
    let z = Int_ops.truncate wu value in
    let f =
      if Int64.compare z 0L >= 0 then Int64.to_float z
      else Int64.to_float z +. 18446744073709551616.0
    in
    V_float (target, f)
  | Fptosi, V_float (_, f) ->
    V_int (target, Int_ops.truncate (int_width ~signed:true target) (Int64.of_float f))
  | Fptoui, V_float (_, f) ->
    V_int (target, Int_ops.truncate (int_width ~signed:false target) (Int64.of_float f))
  | (Fpext | Fptrunc), V_float (_, f) ->
    let f = if target = F32 then Int32.float_of_bits (Int32.bits_of_float f) else f in
    V_float (target, f)
  | _ -> trap "invalid cast operand"

(* ---- execution ----------------------------------------------------------- *)

let rec call_function state f args_rv =
  if f.f_is_decl then call_runtime state f.f_name args_rv
  else begin
    if List.length args_rv <> List.length f.f_args then
      trap "call to '%s' with %d arguments (expected %d)" f.f_name
        (List.length args_rv) (List.length f.f_args);
    let frame =
      { env = Hashtbl.create 64; args = Hashtbl.create 8; local_slabs = [] }
    in
    List.iter2
      (fun a v -> Hashtbl.replace frame.args a.a_id v)
      f.f_args args_rv;
    let result = run_from state frame ~prev:None (entry_block f) in
    List.iter (free state) frame.local_slabs;
    result
  end

and run_from state frame ~prev block =
  (* Phi nodes are evaluated simultaneously against the edge we came from. *)
  let insts = block_insts block in
  let phis, rest =
    List.partition (fun i -> match i.i_kind with Phi _ -> true | _ -> false) insts
  in
  (match prev with
  | Some prev_block ->
    let values =
      List.map
        (fun i ->
          match i.i_kind with
          | Phi { incoming } -> (
            match phi_incoming_for_pred incoming prev_block with
            | Some v -> (i, eval_value frame v)
            | None ->
              trap "phi in '%s' has no incoming for predecessor '%s'"
                block.b_name prev_block.b_name)
          | _ -> assert false)
        phis
    in
    List.iter (fun (i, v) -> Hashtbl.replace frame.env i.i_id v) values
  | None ->
    if phis <> [] then trap "phi nodes in entry block '%s'" block.b_name);
  state.steps <- state.steps + List.length phis;
  List.iter (exec_inst state frame) rest;
  state.steps <- state.steps + List.length rest + 1;
  if state.steps > state.config.max_steps then
    trap "execution exceeded the %d-step fuel limit" state.config.max_steps;
  match block.b_term with
  | Ret None -> None
  | Ret (Some v) -> Some (eval_value frame v)
  | Br next -> run_from state frame ~prev:(Some block) next
  | Cond_br (c, t, e) ->
    let taken =
      if Int64.equal (as_int "branch condition" (eval_value frame c)) 0L then e
      else t
    in
    run_from state frame ~prev:(Some block) taken
  | Unreachable -> trap "reached 'unreachable' in '%s'" block.b_name
  | No_term -> trap "unterminated block '%s'" block.b_name

and exec_inst state frame i =
  let ev = eval_value frame in
  let set v = Hashtbl.replace frame.env i.i_id v in
  match i.i_kind with
  | Alloca { elt_ty; count } ->
    let a = alloc state (ty_size_in_bytes elt_ty * count) in
    frame.local_slabs <- a :: frame.local_slabs;
    set (V_ptr a)
  | Load { ptr } -> set (load_scalar state (as_ptr "load" (ev ptr)) i.i_ty)
  | Store { ptr; v } ->
    store_scalar state (as_ptr "store" (ev ptr)) (value_ty v) (ev v)
  | Binop (op, a, b) -> (
    match (ev a, ev b, op) with
    | V_int (ty, x), V_int (_, y), _ -> set (V_int (ty, eval_int_binop op ty x y))
    | V_float (ty, x), V_float (_, y), _ -> set (V_float (ty, eval_float_binop op x y))
    | V_ptr x, V_ptr y, Sub ->
      (* Pointer difference in bytes (same object only). *)
      if x.slab <> y.slab then trap "subtraction of pointers into different objects"
      else set (V_int (I64, Int64.of_int (x.off - y.off)))
    | _ -> trap "binop operand type mismatch")
  | Icmp (op, a, b) -> (
    match (ev a, ev b) with
    | V_int (ty, x), V_int (_, y) ->
      set (V_int (I1, if eval_icmp op ty x y then 1L else 0L))
    | V_ptr x, V_ptr y ->
      let same = x.slab = y.slab && x.off = y.off in
      let r = match op with Ieq -> same | Ine -> not same | _ -> trap "pointer ordering" in
      set (V_int (I1, if r then 1L else 0L))
    | _ -> trap "icmp operand type mismatch")
  | Fcmp (op, a, b) ->
    let x = as_float "fcmp" (ev a) and y = as_float "fcmp" (ev b) in
    set (V_int (I1, if eval_fcmp op x y then 1L else 0L))
  | Cast (op, v) -> set (eval_cast op (ev v) i.i_ty)
  | Gep { base; index; elt_ty } ->
    let a = as_ptr "gep" (ev base) in
    let idx = Int64.to_int (as_int "gep index" (ev index)) in
    set (V_ptr { a with off = a.off + (idx * ty_size_in_bytes elt_ty) })
  | Select (c, a, b) ->
    set (if Int64.equal (as_int "select" (ev c)) 0L then ev b else ev a)
  | Call { callee; args } -> (
    let args_rv = List.map ev args in
    let result =
      match callee with
      | Direct f -> call_function state f args_rv
      | Runtime name -> call_runtime state name args_rv
    in
    match result with
    | Some v -> set v
    | None -> if i.i_ty <> Void then set V_null)
  | Phi _ -> () (* handled on block entry *)

(* ---- the simulated OpenMP runtime --------------------------------------- *)

and call_runtime state name args =
  let int_arg n = as_int name (List.nth args n) in
  let ptr_arg n = as_ptr name (List.nth args n) in
  match name with
  | "__kmpc_fork_call" | "__kmpc_serialized_parallel" ->
    let fn = as_fn name (List.nth args 0) in
    let ctx = List.nth args 1 in
    let size =
      if name = "__kmpc_serialized_parallel" then 1
      else begin
        match state.pushed_num_threads with
        | Some n -> max 1 n
        | None ->
          (* Nested parallel regions default to one thread, as OpenMP's
             default nested-parallelism setting. *)
          if state.teams <> [] then 1 else state.config.num_threads
      end
    in
    state.pushed_num_threads <- None;
    let t =
      { team_size = size; team_tid = 0; dispatch_regions = Hashtbl.create 4;
        dispatch_visits = Hashtbl.create 4 }
    in
    state.teams <- t :: state.teams;
    Stats.incr stat_parallel;
    (* Deterministic simulation: each thread runs to completion in order. *)
    for tid = 0 to size - 1 do
      t.team_tid <- tid;
      let gtid = alloc state 4 in
      store_scalar state gtid I32 (V_int (I32, Int64.of_int tid));
      let btid = alloc state 4 in
      store_scalar state btid I32 (V_int (I32, Int64.of_int tid));
      ignore (call_function state fn [ V_ptr gtid; V_ptr btid; ctx ]);
      free state gtid;
      free state btid
    done;
    state.teams <- List.tl state.teams;
    None
  | "__kmpc_push_num_threads" ->
    state.pushed_num_threads <- Some (Int64.to_int (int_arg 0));
    None
  | "__kmpc_for_static_init_4u" | "__kmpc_for_static_init_8u" ->
    let ty = if name = "__kmpc_for_static_init_8u" then I64 else I32 in
    let plast = ptr_arg 0 and plb = ptr_arg 1 and pub = ptr_arg 2 in
    let pstride = ptr_arg 3 in
    let chunk = int_arg 5 in
    let lb = as_int name (load_scalar state plb ty) in
    let ub = as_int name (load_scalar state pub ty) in
    let trip = Int64.add (Int64.sub ub lb) 1L in
    let tid = thread_num state and nth = team_size state in
    (* The generated loop runs a single contiguous chunk per thread, so a
       chunked static schedule is served with the unchunked (balanced)
       division — every iteration still executes exactly once; only the
       round-robin granularity differs (see DESIGN.md).  [chunk] is ignored
       apart from this note. *)
    ignore chunk;
    Stats.incr stat_chunks_static;
    let slb, sub, stride, is_last =
      let c = Schedule.static_unchunked ~trip_count:trip ~num_threads:nth ~tid in
      (c.Schedule.lb, c.Schedule.ub, trip, Int64.equal c.Schedule.ub (Int64.sub trip 1L))
    in
    store_scalar state plb ty (V_int (ty, canon ty (Int64.add lb slb)));
    store_scalar state pub ty (V_int (ty, canon ty (Int64.add lb sub)));
    store_scalar state pstride ty (V_int (ty, canon ty stride));
    store_scalar state plast I32 (V_int (I32, if is_last then 1L else 0L));
    None
  | "__kmpc_dispatch_init_4u" | "__kmpc_dispatch_init_8u" ->
    (* args: site, trip count, chunk, kind (2 = dynamic, 3 = guided) *)
    let site = Int64.to_int (int_arg 0) in
    let trip = int_arg 1 in
    let chunk = int_arg 2 in
    let kind = Int64.to_int (int_arg 3) in
    let t =
      match current_team state with
      | Some t -> t
      | None ->
        (* Orphaned worksharing outside a parallel region: a singleton
           pseudo-team lives on the state. *)
        (match state.orphan_team with
        | Some t -> t
        | None ->
          let t =
            { team_size = 1; team_tid = 0; dispatch_regions = Hashtbl.create 4;
              dispatch_visits = Hashtbl.create 4 }
          in
          state.orphan_team <- Some t;
          t)
    in
    let tid = t.team_tid in
    let visit =
      Option.value (Hashtbl.find_opt t.dispatch_visits (tid, site)) ~default:0
    in
    Hashtbl.replace t.dispatch_visits (tid, site) (visit + 1);
    if not (Hashtbl.mem t.dispatch_regions (site, visit)) then begin
      let queue =
        if kind = 3 then
          Schedule.guided_create ~trip_count:trip ~chunk_min:chunk
            ~num_threads:t.team_size
        else Schedule.dynamic_create ~trip_count:trip ~chunk_size:(max 1L chunk |> fun c -> c)
      in
      Hashtbl.replace t.dispatch_regions (site, visit)
        { queue; guided = kind = 3; drained_by = 0 }
    end;
    (* Remember which instance this thread is currently in. *)
    Hashtbl.replace state.dispatch_cursor (tid, site) visit;
    None
  | "__kmpc_dispatch_next_4u" | "__kmpc_dispatch_next_8u" ->
    let ty = if name = "__kmpc_dispatch_next_8u" then I64 else I32 in
    let site = Int64.to_int (int_arg 0) in
    let plb = ptr_arg 1 and pub = ptr_arg 2 in
    let t =
      match (current_team state, state.orphan_team) with
      | Some t, _ -> t
      | None, Some t -> t
      | None, None -> trap "dispatch_next without dispatch_init"
    in
    let tid = t.team_tid in
    let visit =
      match Hashtbl.find_opt state.dispatch_cursor (tid, site) with
      | Some v -> v
      | None -> trap "dispatch_next without dispatch_init (site %d)" site
    in
    let region =
      match Hashtbl.find_opt t.dispatch_regions (site, visit) with
      | Some r -> r
      | None -> trap "dispatch region missing (site %d)" site
    in
    (match Schedule.dynamic_next region.queue with
    | Some c ->
      Stats.incr
        (if region.guided then stat_chunks_guided else stat_chunks_dynamic);
      store_scalar state plb ty (V_int (ty, canon ty c.Schedule.lb));
      store_scalar state pub ty (V_int (ty, canon ty c.Schedule.ub));
      Some (V_int (I32, 1L))
    | None ->
      region.drained_by <- region.drained_by + 1;
      if region.drained_by >= t.team_size then
        Hashtbl.remove t.dispatch_regions (site, visit);
      Some (V_int (I32, 0L)))
  | "__kmpc_for_static_fini" | "__kmpc_barrier" | "__kmpc_end_single"
  | "__kmpc_critical" | "__kmpc_end_critical" | "__kmpc_flush" ->
    (* Synchronisation is a no-op under run-to-completion simulation. *)
    None
  | "__kmpc_single" ->
    Some (V_int (I32, if thread_num state = 0 then 1L else 0L))
  | "omp_get_thread_num" -> Some (V_int (I32, Int64.of_int (thread_num state)))
  | "omp_get_num_threads" -> Some (V_int (I32, Int64.of_int (team_size state)))
  | "omp_get_max_threads" ->
    Some (V_int (I32, Int64.of_int state.config.num_threads))
  | "omp_get_wtime" ->
    (* OpenMP specifies elapsed *wall* time; Sys.time () (process CPU time)
       is wrong here.  The virtual mode derives a deterministic clock from
       the step count so differential trace tests stay reproducible; the
       real mode reads the monotonic wall clock. *)
    let t =
      match state.config.wtime with
      | Wtime_virtual seconds_per_step ->
        float_of_int state.steps *. seconds_per_step
      | Wtime_real -> Mc_support.Clock.now ()
    in
    Some (V_float (F64, t))
  | "record" ->
    state.trace <- T_int (int_arg 0) :: state.trace;
    None
  | "recordf" ->
    state.trace <- T_float (as_float name (List.nth args 0)) :: state.trace;
    None
  | "print_int" | "print_long" ->
    Buffer.add_string state.out (Int64.to_string (int_arg 0));
    Buffer.add_char state.out '\n';
    None
  | "print_double" ->
    Buffer.add_string state.out
      (Printf.sprintf "%.6g\n" (as_float name (List.nth args 0)));
    None
  | "abort" -> trap "program called abort()"
  | "memset" ->
    let dst = ptr_arg 0 in
    let c = Char.chr (Int64.to_int (Int64.logand (int_arg 1) 0xFFL)) in
    let n = Int64.to_int (int_arg 2) in
    let bytes = slab_bytes state dst "memset" in
    if n < 0 || dst.off < 0 || dst.off + n > Bytes.length bytes then
      trap "memset out of bounds (offset %d, %d bytes into a %d-byte object)"
        dst.off n (Bytes.length bytes);
    Bytes.fill bytes dst.off n c;
    (* Any pointer shadow entries inside the filled range are now raw
       bytes, not pointers. *)
    for off = dst.off to dst.off + n - 1 do
      Hashtbl.remove state.ptr_table (dst.slab, off)
    done;
    None
  | _ -> trap "call to unknown runtime function '%s'" name

(* ---- entry points --------------------------------------------------------- *)

let fresh_state config m =
  {
    modul = m;
    slabs = Hashtbl.create 64;
    ptr_table = Hashtbl.create 64;
    next_slab = 1;
    trace = [];
    steps = 0;
    out = Buffer.create 256;
    config;
    teams = [];
    pushed_num_threads = None;
    orphan_team = None;
    dispatch_cursor = Hashtbl.create 8;
  }

let finish state result =
  let return_value =
    match result with Some (V_int (_, v)) -> Some v | _ -> None
  in
  Stats.add stat_steps state.steps;
  {
    return_value;
    trace = List.rev state.trace;
    steps = state.steps;
    output = Buffer.contents state.out;
  }

let run_function ?(config = default_config) m ~name ~args =
  match find_function m name with
  | None -> trap "no function named '%s'" name
  | Some f ->
    let state = fresh_state config m in
    let args_rv =
      List.map2
        (fun a v -> V_int (a.a_ty, canon a.a_ty v))
        f.f_args args
    in
    finish state (call_function state f args_rv)

let run_main ?config m = run_function ?config m ~name:"main" ~args:[]

let trace_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun x y ->
         match (x, y) with
         | T_int i, T_int j -> Int64.equal i j
         | T_float i, T_float j -> Float.equal i j
         | T_int _, T_float _ | T_float _, T_int _ -> false)
       a b
