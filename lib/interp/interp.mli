(** IR interpreter with a simulated OpenMP runtime.

    This is the execution substrate that lets transformed programs actually
    run, so that every loop transformation can be checked for semantic
    equivalence (same observable trace) and benchmarked (interpreted steps
    as a machine-independent cost measure).

    Parallelism is simulated deterministically: [__kmpc_fork_call] runs each
    thread of the team to completion in thread-id order.  The paper's
    subject is the compiler-side representation of loop transformations, not
    memory-model behaviour, so determinism preserves everything relevant
    while keeping tests reproducible (see DESIGN.md).

    Programs observe the outside world through the [record]/[recordf]
    builtins, which append to the run's trace — differential tests compare
    traces across compilation paths. *)

type trace_entry = T_int of int64 | T_float of float

type wtime_mode =
  | Wtime_virtual of float
    (* [omp_get_wtime] reads [steps * seconds-per-step]: deterministic,
       monotonic, and reproducible across machines — the default, so
       differential trace tests never depend on real time *)
  | Wtime_real (* …reads the monotonic wall clock (Mc_support.Clock) *)

type config = {
  num_threads : int; (* default team size, as OMP_NUM_THREADS *)
  max_steps : int; (* fuel against non-termination *)
  wtime : wtime_mode; (* what omp_get_wtime observes *)
  fill_byte : char;
    (* what fresh allocations (stack slots and malloc slabs) hold before
       the program writes them: '\000' by default.  The uninitialized-read
       analysis oracle runs the same program under two fills and treats a
       divergence as ground truth for "a read observed uninitialized
       memory" *)
}

val default_config : config

type outcome = {
  return_value : int64 option; (* main's return value, if an integer *)
  trace : trace_entry list;
  steps : int; (* instructions executed, a cost proxy *)
  output : string; (* collected print_* output *)
}

exception Trap of string
(** Raised on runtime errors: division by zero, out-of-bounds access, fuel
    exhaustion, calls to unknown functions, … *)

val run_main : ?config:config -> Mc_ir.Ir.modul -> outcome
(** Executes [main()] (no arguments). *)

val run_function :
  ?config:config -> Mc_ir.Ir.modul -> name:string -> args:int64 list -> outcome
(** Executes an arbitrary integer-typed entry point. *)

val trace_equal : trace_entry list -> trace_entry list -> bool
(** Equality with exact float comparison (traces are produced
    deterministically, so bitwise agreement is expected). *)
