(** Persistent, content-addressed on-disk artifact store: the durability
    layer under {!Cache}, making per-stage memoization survive process
    restarts and be shareable across processes ([mcc --cache-dir DIR],
    the [mccd] daemon, {!Batch} domains).

    One file per (stage tag, fingerprint) key holds that key's full
    candidate list, framed ({!Mc_support.Binio}) with a schema version
    and an integrity digest.  {e Corruption is a miss, never an ICE}:
    truncated, bit-flipped, mis-keyed or version-mismatched entries are
    counted ([store.corrupt] / [store.version-mismatch]), unlinked, and
    reported as [None].  Writes are atomic (tmp + rename), so concurrent
    writers can only publish complete files.  A byte-budget LRU evicts
    least-recently-used entries on save ([store.evictions]).

    All store traffic lands in [store.*] counters of the calling
    domain's current stats registry: hits, misses, stores, corrupt,
    version-mismatch, evictions. *)

type t

val schema_version : int
(** Version of the on-disk entry format.  Entries written under any
    other version are rejected on load (counted, unlinked, missed) — a
    format change invalidates an old cache directory instead of
    misreading it. *)

val default_max_bytes : int
(** The default LRU byte budget (512 MiB). *)

val create : dir:string -> ?max_bytes:int -> unit -> t
(** Opens (creating if needed) the store rooted at
    [dir/v<schema_version>].  Existing entries are adopted with recency
    seeded from file mtimes, so a restarted process continues the same
    LRU order. *)

val dir : t -> string
(** The directory [create] was given. *)

val load : t -> stage:string -> string -> string list option
(** [load t ~stage fp] returns the candidate payload list stored under
    the key, newest first — exactly what {!Cache} keeps in memory per
    key — or [None] on absence or any validation failure.  A hit bumps
    the entry's recency (and its file mtime, for cross-process LRU). *)

val save : ?version:int -> t -> stage:string -> string -> string list -> unit
(** [save t ~stage fp candidates] atomically persists the key's full
    candidate list, then evicts LRU entries while the store exceeds its
    byte budget.  IO failures (full disk, unwritable directory) degrade
    to not persisting.  [?version] overrides the embedded schema version
    and exists only so tests can exercise mismatch rejection. *)

val entry_path : t -> stage:string -> string -> string
(** Where the key's entry file lives — exposed for corruption-injection
    tests. *)

val total_bytes : t -> int
(** Current accounted size of all entries, in bytes. *)

val entry_count : t -> int
