(** ICE reproducer bundles, the [-gen-reproducer] /
    "PLEASE ATTACH THE FOLLOWING FILES" analogue: when a unit dies with an
    internal compiler error, the driver preserves the unit's source, any
    virtual include files, a [repro.sh] re-running the exact invocation
    through [mcc], and the rendered ICE report ([ice.txt]) in a fresh
    directory under the temp dir.  [-fno-crash-diagnostics] disables it. *)

val write :
  invocation:Invocation.t ->
  name:string ->
  source:string ->
  ice:Mc_support.Crash_recovery.ice ->
  (string, string) result
(** [write ~invocation ~name ~source ~ice] creates the bundle and returns
    its directory, or [Error msg] on filesystem failure.  Never raises —
    it runs on the ICE reporting path. *)
