(* The driver is now a thin walk over the stage-graph pipeline: all
   stage execution, timing, caching and stats scoping lives in
   [Pipeline]; this module keeps the historical entry points. *)

module Diag = Mc_diag.Diagnostics

type options = Pipeline.options = {
  use_irbuilder : bool;
  optimize : bool;
  fold : bool;
  verify_ir : bool;
  defines : (string * string) list;
  extra_files : (string * string) list;
  error_limit : int;
  bracket_depth : int;
  loop_nest_limit : int;
  transfo_script : string option;
  transfo_check : bool;
  analyze : string list option;
}

let default_options = Pipeline.default_options

type timings = Pipeline.timings = {
  t_lex : float;
  t_preprocess : float;
  t_parse_sema : float;
  t_codegen : float;
  t_passes : float;
}

type result = Pipeline.result = {
  diag : Diag.t;
  srcmgr : Mc_srcmgr.Source_manager.t;
  tu : Mc_ast.Tree.translation_unit option;
  ir : Mc_ir.Ir.modul option;
  codegen_error : string option;
  timings : timings;
  unroll_stats : Mc_passes.Loop_unroll.stats;
  stats : Mc_support.Stats.snapshot;
  transformed : (string * string) option;
  analysis : Mc_analysis.Report.t option;
}

let compile ?options ?name source =
  (Pipeline.execute ?options ?name source).Pipeline.x_result

let frontend = Pipeline.frontend

let ast_dump ?options ?(shadow = false) source =
  let _, tu = frontend ?options source in
  Mc_ast.Dump.translation_unit ~shadow tu

let run ?config result =
  match result.ir with
  | None ->
    Error
      (match result.codegen_error with
      | Some e -> "codegen: " ^ e
      | None -> "compilation failed:\n" ^ Diag.render_all result.diag)
  | Some m -> (
    match Mc_interp.Interp.run_main ?config m with
    | outcome -> Ok outcome
    | exception Mc_interp.Interp.Trap msg -> Error ("trap: " ^ msg))

let compile_and_run ?options ?config source =
  let result = compile ?options source in
  if Diag.has_errors result.diag then
    Error ("compilation failed:\n" ^ Diag.render_all result.diag)
  else run ?config result
