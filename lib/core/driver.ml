module Diag = Mc_diag.Diagnostics
module Srcmgr = Mc_srcmgr.Source_manager
module Fmgr = Mc_srcmgr.File_manager
module Buf = Mc_srcmgr.Memory_buffer
module Stats = Mc_support.Stats
module Clock = Mc_support.Clock
module Crash_recovery = Mc_support.Crash_recovery
module Loc = Mc_srcmgr.Source_location

type options = {
  use_irbuilder : bool;
  optimize : bool;
  fold : bool;
  verify_ir : bool;
  defines : (string * string) list;
  extra_files : (string * string) list;
  error_limit : int;
  bracket_depth : int;
  loop_nest_limit : int;
}

let default_options =
  {
    use_irbuilder = false;
    optimize = true;
    fold = true;
    verify_ir = true;
    defines = [];
    extra_files = [];
    error_limit = 20;
    bracket_depth = Mc_parser.Parser.default_bracket_depth;
    loop_nest_limit = Mc_sema.Sema.default_loop_nest_limit;
  }

let codegen_errors_counter =
  Stats.counter ~group:"driver" ~name:"codegen-errors"
    ~desc:"compilations refused by CodeGen (unsupported construct / errors)" ()

type timings = {
  t_lex : float;
  t_preprocess : float;
  t_parse_sema : float;
  t_codegen : float;
  t_passes : float;
}

type result = {
  diag : Diag.t;
  srcmgr : Srcmgr.t;
  tu : Mc_ast.Tree.translation_unit option;
  ir : Mc_ir.Ir.modul option;
  codegen_error : string option;
  timings : timings;
  unroll_stats : Mc_passes.Loop_unroll.stats;
  stats : Stats.snapshot;
}

(* Stage timing on the monotonic wall clock (Sys.time — process CPU time —
   stalls under descheduling and is not comparable across machines); every
   interval also lands in the current [Stats] registry for -ftime-report. *)
let time stage f =
  (* The active stage doubles as the crash-recovery phase watermark, so an
     ICE report can say which pipeline stage blew up. *)
  Crash_recovery.set_phase stage;
  let start = Clock.now () in
  let v = f () in
  let dt = Clock.now () -. start in
  Stats.record (Stats.timer ~group:"driver" ~name:stage) dt;
  (v, dt)

(* Every compilation starts from a known state: the current stats registry
   zeroed and every domain-local name/id generator rewound, so the same
   source always produces byte-identical ASTs and IR no matter how many
   compilations preceded it in this process or which domain runs it. *)
let reset_compilation_state () =
  Stats.reset ();
  Mc_ast.Tree.reset_ids ();
  Mc_ir.Ir.reset_ids ();
  Mc_ompbuilder.Omp_builder.reset_gensym ();
  Mc_codegen.Codegen.reset_gensym ()

type preprocessed = {
  pp_options : options;
  pp_name : string;
  pp_diag : Diag.t;
  pp_srcmgr : Srcmgr.t;
  pp_items : Mc_pp.Preprocessor.item list;
  pp_t_lex : float;
  pp_t_preprocess : float;
}

let preprocess ?(options = default_options) ?(name = "input.c") source =
  reset_compilation_state ();
  let srcmgr = Srcmgr.create () in
  let fmgr = Fmgr.create () in
  List.iter
    (fun (path, contents) -> ignore (Fmgr.add_file fmgr ~path ~contents))
    options.extra_files;
  let diag = Diag.create srcmgr in
  Diag.set_error_limit diag options.error_limit;
  (* Let the crash-recovery watermark render "file:line:col" without
     mc_support depending on the source manager. *)
  Crash_recovery.set_position_renderer (fun ~file ~offset ->
      Srcmgr.describe srcmgr (Loc.encode ~file_id:file ~offset));
  let buf = Buf.create ~name ~contents:source in
  (* Stage: raw lexing alone, for the Fig. 1 stage timings. *)
  let _, t_lex =
    time "lex" (fun () ->
        let scratch_srcmgr = Srcmgr.create () in
        let scratch_diag = Diag.create scratch_srcmgr in
        let id = Srcmgr.load_buffer scratch_srcmgr buf in
        Mc_lexer.Lexer.tokenize scratch_diag ~file_id:id buf)
  in
  let pp = Mc_pp.Preprocessor.create diag srcmgr fmgr in
  List.iter
    (fun (n, body) -> Mc_pp.Preprocessor.define_object_macro pp ~name:n ~body)
    options.defines;
  let items, t_preprocess =
    time "preprocess" (fun () -> Mc_pp.Preprocessor.preprocess_main pp buf)
  in
  {
    pp_options = options;
    pp_name = name;
    pp_diag = diag;
    pp_srcmgr = srcmgr;
    pp_items = items;
    pp_t_lex = t_lex;
    pp_t_preprocess = t_preprocess;
  }

let parse_sema pre =
  let options = pre.pp_options in
  let sema_mode =
    if options.use_irbuilder then Mc_sema.Sema.Irbuilder else Mc_sema.Sema.Classic
  in
  let sema =
    Mc_sema.Sema.create ~mode:sema_mode
      ~loop_nest_limit:options.loop_nest_limit pre.pp_diag
  in
  time "parse-sema" (fun () ->
      Mc_parser.Parser.parse_translation_unit
        ~bracket_depth:options.bracket_depth sema pre.pp_items)

let compile_preprocessed pre =
  let options = pre.pp_options in
  let diag = pre.pp_diag in
  let tu, t_parse_sema = parse_sema pre in
  let t_lex = pre.pp_t_lex and t_preprocess = pre.pp_t_preprocess in
  let no_ir codegen_error t_codegen =
    {
      diag;
      srcmgr = pre.pp_srcmgr;
      tu = Some tu;
      ir = None;
      codegen_error;
      timings = { t_lex; t_preprocess; t_parse_sema; t_codegen; t_passes = 0.0 };
      unroll_stats = Mc_passes.Loop_unroll.empty_stats;
      stats = Stats.snapshot ();
    }
  in
  if Diag.has_errors diag then no_ir None 0.0
  else begin
    let mode =
      if options.use_irbuilder then Mc_codegen.Codegen.Irbuilder
      else Mc_codegen.Codegen.Classic
    in
    match
      time "codegen" (fun () ->
          match
            Mc_codegen.Codegen.emit_translation_unit ~fold:options.fold ~mode tu
          with
          | m -> Ok m
          | exception Mc_codegen.Codegen.Unsupported msg -> Error msg)
    with
    (* The time codegen spent before bailing out is still real work; keep it
       so stage timings stay truthful on the error path. *)
    | Error msg, t_codegen ->
      Stats.incr codegen_errors_counter;
      no_ir (Some msg) t_codegen
    | Ok m, t_codegen -> (
      let verify what =
        if options.verify_ir then begin
          match Mc_ir.Verifier.check m with
          | Ok () -> ()
          | Error e ->
            invalid_arg (Printf.sprintf "IR verification failed %s:\n%s" what e)
        end
      in
      verify "after codegen";
      let report, t_passes =
        time "passes" (fun () ->
            Mc_passes.Pass_manager.run
              ~verify_between:options.verify_ir
              ~passes:
                (if options.optimize then Mc_passes.Pass_manager.o1
                 else Mc_passes.Pass_manager.o0)
              m)
      in
      {
        diag;
        srcmgr = pre.pp_srcmgr;
        tu = Some tu;
        ir = Some m;
        codegen_error = None;
        timings = { t_lex; t_preprocess; t_parse_sema; t_codegen; t_passes };
        unroll_stats = report.Mc_passes.Pass_manager.unroll_stats;
        stats = Stats.snapshot ();
      })
  end

let compile ?options ?name source =
  compile_preprocessed (preprocess ?options ?name source)

let frontend ?options ?name source =
  let pre = preprocess ?options ?name source in
  let tu, _ = parse_sema pre in
  (pre.pp_diag, tu)

let ast_dump ?options ?(shadow = false) source =
  let _, tu = frontend ?options source in
  Mc_ast.Dump.translation_unit ~shadow tu

let run ?config result =
  match result.ir with
  | None ->
    Error
      (match result.codegen_error with
      | Some e -> "codegen: " ^ e
      | None -> "compilation failed:\n" ^ Diag.render_all result.diag)
  | Some m -> (
    match Mc_interp.Interp.run_main ?config m with
    | outcome -> Ok outcome
    | exception Mc_interp.Interp.Trap msg -> Error ("trap: " ^ msg))

let compile_and_run ?options ?config source =
  let result = compile ?options source in
  if Diag.has_errors result.diag then
    Error ("compilation failed:\n" ^ Diag.render_all result.diag)
  else run ?config result
