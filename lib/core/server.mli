(** The compile server behind [mccd]: a Unix-domain-socket daemon with a
    warm shared stage cache (optionally persisted via {!Store}), a pool
    of worker domains, and a bounded connection queue with admission
    control — when the queue is full the accept loop sheds the
    connection with a structured [Resp_busy] (queue depth + retry hint)
    instead of letting the kernel backlog fill and clients hang.

    Requests are framed {!Protocol} values; each compile unit goes
    through {!Instance.compile_safe}, so a client-submitted ICE becomes
    an [R_ice] response entry and never takes the daemon down.
    [Req_transform] requests run the transfo pre-stage alone
    ({!Pipeline.transform}) against the same shared cache and return the
    rewritten source.  The loop
    exits on the [stop] flag, after [max_requests] connections, or after
    [idle_timeout] seconds without one — always draining queued
    connections before returning. *)

(** The bounded blocking queue between the accept loop and the worker
    pool.  Exposed for its own tests: the daemon's overload behaviour is
    exactly this queue's edge behaviour. *)
module Bqueue : sig
  type 'a t

  val create : int -> 'a t
  (** Capacity is clamped to at least 1. *)

  val push : 'a t -> 'a -> bool
  (** Blocks while full; [false] means the queue was closed and the
      value was not enqueued. *)

  val try_push : 'a t -> 'a -> [ `Accepted | `Closed | `Full ]
  (** Never blocks — the admission-control edge. *)

  val pop : 'a t -> 'a option
  (** Blocks while empty; [None] only after {!close} {e and} a full
      drain. *)

  val length : 'a t -> int

  val close : 'a t -> unit
  (** Wakes every blocked producer and consumer; closing is a graceful
      drain, not an abort. *)
end

type config = {
  socket_path : string;
  pool_size : int;  (** worker domains (min 1) *)
  queue_capacity : int;
      (** pending connections before the accept loop sheds with
          [Resp_busy] *)
  max_requests : int option;  (** exit after this many connections *)
  idle_timeout : float option;  (** exit after this many idle seconds *)
  request_timeout : float option;
      (** per-request wall-clock deadline, measured from worker pickup
          to reply; a request that blows it gets one complete
          [Resp_rejected] frame with a timeout reason *)
  shed_retry_after : float;  (** the [retry_after] hint in [Resp_busy] *)
  cache_dir : string option;  (** persist the shared cache via {!Store} *)
  max_cache_bytes : int option;  (** store byte cap (default {!Store}'s) *)
  log : (string -> unit) option;  (** progress lines, e.g. [prerr_endline] *)
}

val default_config : config
(** {!Protocol.default_socket}, 2 workers, queue 16, unbounded lifetime,
    no request deadline, 50 ms retry hint, in-memory cache, silent. *)

val run :
  ?stop:bool Atomic.t -> config -> (Mc_support.Stats.snapshot, string) result
(** Runs the daemon to completion on the calling domain.  [stop] makes
    the accept loop finish (checked at least every 0.2 s) and drain —
    mccd's signal handlers set it, and tests/benchmarks run the server
    on a spare domain with it.  [Ok snapshot] is the lifetime counter
    snapshot (including the [server.*] group); [Error] means the socket
    could not be taken — in particular when a live daemon already
    listens on it.  Stale socket files from crashed daemons are
    detected (connect refused) and replaced. *)
