(* The -gen-reproducer analogue: when a compilation dies with an ICE,
   preserve everything needed to replay it — the preprocessed unit's
   source, any virtual include files, the invocation rendered back to an
   mcc command line, and the ICE report itself — in a fresh directory
   under the temp dir, like Clang's "PLEASE ATTACH THE FOLLOWING FILES"
   bundles. *)

module Crash_recovery = Mc_support.Crash_recovery

(* Bundle writing itself runs on the ICE path, so it must never raise;
   any filesystem failure is reported as a value. *)

let sanitize name =
  let base = Filename.basename name in
  let base =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> c
        | _ -> '_')
      base
  in
  if base = "" || base = "." || base = ".." then "input.c" else base

(* Distinguishes bundles from concurrent domains of one process; cross-
   process collisions are handled by the mkdir retry loop below. *)
let bundle_counter = Atomic.make 0

let rec fresh_dir base n =
  let dir = if n = 0 then base else Printf.sprintf "%s-%d" base n in
  match Sys.mkdir dir 0o755 with
  | () -> Ok dir
  | exception Sys_error _ when n < 1000 -> fresh_dir base (n + 1)
  | exception Sys_error msg -> Error msg

let write_file dir name contents =
  Out_channel.with_open_bin (Filename.concat dir name) (fun oc ->
      Out_channel.output_string oc contents)

let script ~invocation ~ice ~source_file =
  let args =
    List.map Filename.quote (Invocation.to_argv invocation @ [ source_file ])
  in
  String.concat ""
    [
      "#!/bin/sh\n";
      Printf.sprintf "# ICE reproducer for %s\n" source_file;
      Printf.sprintf "# phase: %s; exception: %s\n"
        ice.Crash_recovery.ice_phase ice.Crash_recovery.ice_exn;
      "cd \"$(dirname \"$0\")\"\n";
      "exec mcc " ^ String.concat " " args ^ "\n";
    ]

let write ~invocation ~name ~source ~ice =
  match
    let source_file = sanitize name in
    let base =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "mcc-ice-%s-%d" source_file
           (Atomic.fetch_and_add bundle_counter 1))
    in
    match fresh_dir base 0 with
    | Error msg -> Error msg
    | Ok dir ->
      write_file dir source_file source;
      List.iter
        (fun (path, contents) ->
          (* Virtual #include targets: kept for inspection (the CLI has no
             flag to re-attach them); basenamed so a path cannot escape
             the bundle. *)
          write_file dir (sanitize path) contents)
        invocation.Invocation.extra_files;
      write_file dir "ice.txt" (Crash_recovery.describe ice);
      let sh = Filename.concat dir "repro.sh" in
      Out_channel.with_open_bin sh (fun oc ->
          Out_channel.output_string oc (script ~invocation ~ice ~source_file));
      (try Unix.chmod sh 0o755 with Unix.Unix_error _ -> ());
      Ok dir
  with
  | r -> r
  | exception e ->
    Error (Printf.sprintf "cannot write reproducer: %s" (Printexc.to_string e))
