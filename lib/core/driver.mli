(** The driver: the public end-to-end API of the reproduction, composing
    the layer stack of the paper's Fig. 1 (FileManager → SourceManager →
    Lexer → Preprocessor → Parser → Sema → CodeGen) with the mid-end pass
    pipeline and the interpreter.

    Options mirror the Clang flags the paper discusses:
    [use_irbuilder] is [-fopenmp-enable-irbuilder]; [optimize] enables the
    O1 pipeline (mem2reg, constprop, LoopUnroll, cleanups); [fold] toggles
    the IRBuilder's on-the-fly simplification (ablation A4). *)

type options = {
  use_irbuilder : bool; (* -fopenmp-enable-irbuilder *)
  optimize : bool; (* run the O1 pass pipeline *)
  fold : bool; (* IRBuilder on-the-fly folding *)
  verify_ir : bool; (* verify after codegen and passes *)
  defines : (string * string) list; (* -D name=value *)
  extra_files : (string * string) list; (* virtual #include targets *)
  error_limit : int; (* -ferror-limit (0 = unlimited); default 20 *)
  bracket_depth : int; (* -fbracket-depth parser recursion guard *)
  loop_nest_limit : int; (* -floop-nest-limit directive depth cap *)
}

val default_options : options

type timings = {
  t_lex : float; (* tokenizing the main buffer alone *)
  t_preprocess : float;
  t_parse_sema : float;
  t_codegen : float;
  t_passes : float;
}

type result = {
  diag : Mc_diag.Diagnostics.t;
  srcmgr : Mc_srcmgr.Source_manager.t;
  tu : Mc_ast.Tree.translation_unit option; (* None on hard parse failure *)
  ir : Mc_ir.Ir.modul option; (* None when errors or codegen unsupported *)
  codegen_error : string option;
  timings : timings;
  unroll_stats : Mc_passes.Loop_unroll.stats;
  stats : Mc_support.Stats.snapshot; (* pipeline counters for this compile *)
}

val compile : ?options:options -> ?name:string -> string -> result
(** Compiles a source string through the whole pipeline.

    Timings are monotonic wall clock ({!Mc_support.Clock}).  Each call
    resets the calling domain's {e current} {!Mc_support.Stats} registry
    and snapshots it into [result.stats]; counters accrued by a
    subsequent {!run} (interpreter statistics) live in the registry but
    not in the snapshot.

    @deprecated Relying on the shared default registry is deprecated for
    anything beyond single-compilation tools: a bare [compile] charges
    (and resets!) whatever registry the calling domain is scoped to,
    which is the process-global default unless you arranged otherwise.
    Embedders that compile more than once per process — and any
    concurrent compilation — should go through {!Mc_core.Instance}
    (which scopes each compilation to its own registry) or wrap calls in
    {!Mc_support.Stats.with_registry}.  [compile] itself remains fully
    reentrant: all remaining mutable compilation state is domain-local
    and reset per call. *)

type preprocessed = {
  pp_options : options;
  pp_name : string;
  pp_diag : Mc_diag.Diagnostics.t;
  pp_srcmgr : Mc_srcmgr.Source_manager.t;
  pp_items : Mc_pp.Preprocessor.item list; (* parser-ready token/pragma stream *)
  pp_t_lex : float;
  pp_t_preprocess : float;
}
(** The pipeline state after the preprocessor: everything the parser
    needs, plus the post-preprocessing token stream that content-addressed
    caching ({!Mc_core.Cache}) fingerprints. *)

val preprocess : ?options:options -> ?name:string -> string -> preprocessed
(** Runs the front half of {!compile} (reset, lex timing, preprocess) and
    stops before the parser.  Resets the current stats registry like
    {!compile} does. *)

val compile_preprocessed : preprocessed -> result
(** Runs the back half of {!compile} (parse+sema, codegen, passes) on a
    {!preprocessed} state.  Does {e not} reset the stats registry, so
    [compile_preprocessed (preprocess src)] accrues exactly like
    [compile src]. *)

val frontend : ?options:options -> ?name:string -> string ->
  Mc_diag.Diagnostics.t * Mc_ast.Tree.translation_unit
(** Stops after Sema (the [-syntax-only] action); useful for AST dumps. *)

val ast_dump : ?options:options -> ?shadow:bool -> string -> string
(** The [-ast-dump] action on a source string. *)

val run :
  ?config:Mc_interp.Interp.config -> result -> (Mc_interp.Interp.outcome, string) Result.t
(** Executes [main] of a successfully compiled result. *)

val compile_and_run :
  ?options:options ->
  ?config:Mc_interp.Interp.config ->
  string ->
  (Mc_interp.Interp.outcome, string) Result.t
(** Convenience composition; [Error] carries diagnostics or trap output. *)
