(** The driver: the public end-to-end API of the reproduction, composing
    the layer stack of the paper's Fig. 1 (FileManager → SourceManager →
    Lexer → Preprocessor → Parser → Sema → CodeGen) with the mid-end pass
    pipeline and the interpreter.

    Since the stage-graph refactor this module is a thin walk over
    {!Mc_core.Pipeline}, which owns stage execution, per-stage caching
    and stats scoping; the types below are re-exports, so [Driver.result]
    and [Pipeline.result] interconvert freely.

    Options mirror the Clang flags the paper discusses:
    [use_irbuilder] is [-fopenmp-enable-irbuilder]; [optimize] enables the
    O1 pipeline (mem2reg, constprop, LoopUnroll, cleanups); [fold] toggles
    the IRBuilder's on-the-fly simplification (ablation A4). *)

type options = Pipeline.options = {
  use_irbuilder : bool; (* -fopenmp-enable-irbuilder *)
  optimize : bool; (* run the O1 pass pipeline *)
  fold : bool; (* IRBuilder on-the-fly folding *)
  verify_ir : bool; (* verify after codegen and passes *)
  defines : (string * string) list; (* -D name=value *)
  extra_files : (string * string) list; (* virtual #include targets *)
  error_limit : int; (* -ferror-limit (0 = unlimited); default 20 *)
  bracket_depth : int; (* -fbracket-depth parser recursion guard *)
  loop_nest_limit : int; (* -floop-nest-limit directive depth cap *)
  transfo_script : string option; (* --transfo-script contents *)
  transfo_check : bool; (* differential oracle per script step *)
  analyze : string list option; (* --analyze pass selection ([] = all) *)
}

val default_options : options

type timings = Pipeline.timings = {
  t_lex : float; (* tokenizing the main buffer *)
  t_preprocess : float;
  t_parse_sema : float;
  t_codegen : float;
  t_passes : float;
}
(** Wall-clock seconds actually spent executing each stage; a stage
    served from a cache contributes 0. *)

type result = Pipeline.result = {
  diag : Mc_diag.Diagnostics.t;
  srcmgr : Mc_srcmgr.Source_manager.t;
  tu : Mc_ast.Tree.translation_unit option; (* None on hard parse failure *)
  ir : Mc_ir.Ir.modul option; (* None when errors or codegen unsupported *)
  codegen_error : string option;
  timings : timings;
  unroll_stats : Mc_passes.Loop_unroll.stats;
  stats : Mc_support.Stats.snapshot; (* pipeline counters for this compile *)
  transformed : (string * string) option;
      (* (rewritten source, step trace) when a transfo script ran *)
  analysis : Mc_analysis.Report.t option;
      (* dataflow analysis report when --analyze was requested *)
}

val compile : ?options:options -> ?name:string -> string -> result
(** Compiles a source string through the whole pipeline (uncached; give
    {!Pipeline.execute} a {!Cache} — or use {!Mc_core.Instance} — for
    per-stage memoization).

    Timings are monotonic wall clock ({!Mc_support.Clock}).  Each call
    runs in its own scoped stats registry, snapshotted into
    [result.stats] and then {e merged} into the calling domain's current
    registry — the caller's counters accrue but are never reset, so
    embedders' registries survive.  [compile] is fully reentrant: all
    remaining mutable compilation state is domain-local and reset per
    call. *)

val frontend : ?options:options -> ?name:string -> string ->
  Mc_diag.Diagnostics.t * Mc_ast.Tree.translation_unit
(** Stops after Sema (the [-syntax-only] action); useful for AST dumps. *)

val ast_dump : ?options:options -> ?shadow:bool -> string -> string
(** The [-ast-dump] action on a source string. *)

val run :
  ?config:Mc_interp.Interp.config -> result -> (Mc_interp.Interp.outcome, string) Result.t
(** Executes [main] of a successfully compiled result. *)

val compile_and_run :
  ?options:options ->
  ?config:Mc_interp.Interp.config ->
  string ->
  (Mc_interp.Interp.outcome, string) Result.t
(** Convenience composition; [Error] carries diagnostics or trap output. *)
