(** The driver: the public end-to-end API of the reproduction, composing
    the layer stack of the paper's Fig. 1 (FileManager → SourceManager →
    Lexer → Preprocessor → Parser → Sema → CodeGen) with the mid-end pass
    pipeline and the interpreter.

    Options mirror the Clang flags the paper discusses:
    [use_irbuilder] is [-fopenmp-enable-irbuilder]; [optimize] enables the
    O1 pipeline (mem2reg, constprop, LoopUnroll, cleanups); [fold] toggles
    the IRBuilder's on-the-fly simplification (ablation A4). *)

type options = {
  use_irbuilder : bool; (* -fopenmp-enable-irbuilder *)
  optimize : bool; (* run the O1 pass pipeline *)
  fold : bool; (* IRBuilder on-the-fly folding *)
  verify_ir : bool; (* verify after codegen and passes *)
  defines : (string * string) list; (* -D name=value *)
  extra_files : (string * string) list; (* virtual #include targets *)
}

val default_options : options

type timings = {
  t_lex : float; (* tokenizing the main buffer alone *)
  t_preprocess : float;
  t_parse_sema : float;
  t_codegen : float;
  t_passes : float;
}

type result = {
  diag : Mc_diag.Diagnostics.t;
  srcmgr : Mc_srcmgr.Source_manager.t;
  tu : Mc_ast.Tree.translation_unit option; (* None on hard parse failure *)
  ir : Mc_ir.Ir.modul option; (* None when errors or codegen unsupported *)
  codegen_error : string option;
  timings : timings;
  unroll_stats : Mc_passes.Loop_unroll.stats;
  stats : Mc_support.Stats.snapshot; (* pipeline counters for this compile *)
}

val compile : ?options:options -> ?name:string -> string -> result
(** Compiles a source string through the whole pipeline.

    Timings are monotonic wall clock ({!Mc_support.Clock}).  Each call
    resets the global {!Mc_support.Stats} registry and snapshots it into
    [result.stats]; counters accrued by a subsequent {!run} (interpreter
    statistics) live in the registry but not in the snapshot. *)

val frontend : ?options:options -> ?name:string -> string ->
  Mc_diag.Diagnostics.t * Mc_ast.Tree.translation_unit
(** Stops after Sema (the [-syntax-only] action); useful for AST dumps. *)

val ast_dump : ?options:options -> ?shadow:bool -> string -> string
(** The [-ast-dump] action on a source string. *)

val run :
  ?config:Mc_interp.Interp.config -> result -> (Mc_interp.Interp.outcome, string) Result.t
(** Executes [main] of a successfully compiled result. *)

val compile_and_run :
  ?options:options ->
  ?config:Mc_interp.Interp.config ->
  string ->
  (Mc_interp.Interp.outcome, string) Result.t
(** Convenience composition; [Error] carries diagnostics or trap output. *)
