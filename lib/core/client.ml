(* The mcc side of --daemon: connect to a running mccd, ship the
   invocation + sources, get back diagnostics/IR/traces.

   Resilience lives here, behind a [policy] record instead of the old
   single hardcoded receive timeout:

   - connect/send/receive deadlines.  The send deadline matters: without
     SO_SNDTIMEO, a daemon that reads nothing (wedged worker, dead
     domain) leaves the client blocked in write() forever once the
     request outgrows the socket buffers.
   - bounded retries with exponential backoff + deterministic jitter on
     [Resp_busy] — the daemon's load-shedding reply carries a
     [retry_after] hint, which the backoff honours as a floor.
   - an explicit count of absorbed sheds in the [reply], so callers can
     classify the outcome (served / shed-then-served / fell back) and
     -print-stats can show [client.retries] / [client.fallbacks] instead
     of silently falling back.

   Every failure short of a well-formed response — no socket, connect
   refused or timed out, protocol mismatch, short read, retries
   exhausted — is an [Error], and the caller (bin/mcc) treats any
   [Error] as "no usable daemon" and falls back to the in-process
   pipeline, preserving behaviour and exit codes. *)

module Stats = Mc_support.Stats
module Clock = Mc_support.Clock

let stat_retries =
  Stats.counter ~group:"client" ~name:"retries"
    ~desc:"daemon round-trips retried after a Resp_busy shed" ()

let stat_sheds =
  Stats.counter ~group:"client" ~name:"sheds"
    ~desc:"Resp_busy load-shedding replies received from the daemon" ()

let stat_fallbacks =
  Stats.counter ~group:"client" ~name:"fallbacks"
    ~desc:"daemon requests that fell back to the in-process pipeline" ()

let default_socket = Protocol.default_socket

(* ---- the resilience policy ------------------------------------------------ *)

type policy = {
  connect_timeout : float;
  send_timeout : float;
  receive_timeout : float;
  retries : int;
  backoff : float;
  backoff_max : float;
  jitter_seed : int;
}

let default_policy =
  {
    connect_timeout = 5.0;
    (* The server compiles between our write and its reply, so the
       receive deadline bounds server stall, not compile time; keep it
       generous.  The send deadline only has to cover draining the
       request into a healthy server's read loop. *)
    send_timeout = 30.0;
    receive_timeout = 120.0;
    retries = 3;
    backoff = 0.02;
    backoff_max = 1.0;
    jitter_seed = 0;
  }

let policy_with ?timeout ?retries () =
  let p = default_policy in
  let p =
    match timeout with
    | Some t ->
      {
        p with
        connect_timeout = Float.min t p.connect_timeout;
        send_timeout = t;
        receive_timeout = t;
      }
    | None -> p
  in
  match retries with Some r -> { p with retries = max 0 r } | None -> p

type reply = {
  response : Protocol.response;
  busy_retries : int; (* Resp_busy sheds absorbed before this response *)
}

type outcome =
  | Served
  | Shed_then_served of int
  | Fell_back of string

let outcome_of_reply r =
  if r.busy_retries = 0 then Served else Shed_then_served r.busy_retries

let note_fallback reason =
  Stats.incr stat_fallbacks;
  Fell_back reason

let render_outcome = function
  | Served -> "served"
  | Shed_then_served n -> Printf.sprintf "served after %d busy retr%s" n
                            (if n = 1 then "y" else "ies")
  | Fell_back reason -> "fell back: " ^ reason

(* Exponential backoff with deterministic jitter: attempt [k] waits
   [min backoff_max (backoff * 2^k)] plus up to half that again, the
   jitter drawn from a hash of (seed, attempt) so N clients started
   with distinct seeds fan out instead of retrying in lockstep — and a
   given client replays the same schedule every run. *)
let retry_delay ~policy ~attempt ~retry_after =
  let backoff =
    Float.min policy.backoff_max (policy.backoff *. (2.0 ** float_of_int attempt))
  in
  let jitter =
    let h = Hashtbl.hash (policy.jitter_seed, attempt, "client.backoff") in
    float_of_int (h land 0xFFFF) /. 65536.0 *. (backoff *. 0.5)
  in
  Float.max retry_after (backoff +. jitter)

(* ---- the wire ------------------------------------------------------------- *)

(* A dead server must surface as a fallback, not a SIGPIPE death.
   Installed once at first use: per-roundtrip [Sys.set_signal] mutated
   process-wide state on every call (and raced between domains). *)
let sigpipe_ignored =
  lazy (Sys.set_signal Sys.sigpipe Sys.Signal_ignore)

(* Unix-domain connect with a deadline.  A nonblocking connect to a
   local socket either completes immediately, reports EINPROGRESS
   (finish via select + SO_ERROR), or — Linux, backlog full — fails
   EAGAIN, which we retry until the deadline; with admission control on
   the server the backlog should never stay full for long. *)
let connect_with_deadline fd addr ~timeout =
  (try Unix.set_nonblock fd with Unix.Unix_error _ -> ());
  let deadline = Clock.now () +. timeout in
  let finish r =
    (try Unix.clear_nonblock fd with Unix.Unix_error _ -> ());
    r
  in
  let rec go () =
    match Unix.connect fd addr with
    | () -> finish (Ok ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (Unix.EINPROGRESS, _, _) -> (
      let remaining = Float.max 0.01 (deadline -. Clock.now ()) in
      match Unix.select [] [ fd ] [] remaining with
      | _, _ :: _, _ -> (
        match Unix.getsockopt_error fd with
        | None -> finish (Ok ())
        | Some e -> finish (Error e))
      | _ -> finish (Error Unix.ETIMEDOUT)
      | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        finish (Error Unix.ETIMEDOUT))
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      if Clock.now () >= deadline then finish (Error Unix.ETIMEDOUT)
      else begin
        Unix.sleepf 0.01;
        go ()
      end
    | exception Unix.Unix_error (e, _, _) -> finish (Error e)
  in
  go ()

let single_roundtrip ~policy ~socket_path (request : Protocol.request) :
    (Protocol.response, string) result =
  Lazy.force sigpipe_ignored;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    connect_with_deadline fd (Unix.ADDR_UNIX socket_path)
      ~timeout:policy.connect_timeout
  with
  | Error e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error
      (Printf.sprintf "cannot reach daemon at %s: %s" socket_path
         (Unix.error_message e))
  | Ok () ->
    (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO policy.receive_timeout
     with Unix.Unix_error _ -> ());
    (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO policy.send_timeout
     with Unix.Unix_error _ -> ());
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    let write_failed e =
      (* The write can fail because the daemon answered and hung up
         before reading us — it shed this connection with [Resp_busy].
         Prefer the structured reply if one is already buffered. *)
      match Protocol.read_response ic with
      | Ok _ as r -> r
      | Error _ -> Error ("request write failed: " ^ e)
      | exception _ -> Error ("request write failed: " ^ e)
    in
    let result =
      match Protocol.write_request oc request with
      | () -> Protocol.read_response ic
      | exception Sys_error e -> write_failed e
      (* SO_SNDTIMEO expiry: the daemon stopped draining our request
         (wedged, or a buffer-filling request to a stalled reader). *)
      | exception Sys_blocked_io ->
        write_failed
          (Printf.sprintf "send timed out after %gs" policy.send_timeout)
    in
    (try close_out oc with Sys_error _ | Sys_blocked_io -> ());
    (try close_in ic with Sys_error _ | Sys_blocked_io -> ());
    result

let roundtrip ?(policy = default_policy)
    ?(socket_path = Protocol.default_socket ()) (request : Protocol.request) :
    (reply, string) result =
  let rec go attempt =
    match single_roundtrip ~policy ~socket_path request with
    | Ok (Protocol.Resp_busy { queue_depth; retry_after }) ->
      Stats.incr stat_sheds;
      if attempt >= policy.retries then
        Error
          (Printf.sprintf
             "daemon busy (queue depth %d); %d attempt(s) exhausted"
             queue_depth (attempt + 1))
      else begin
        Stats.incr stat_retries;
        Unix.sleepf (retry_delay ~policy ~attempt ~retry_after);
        go (attempt + 1)
      end
    | Ok response -> Ok { response; busy_retries = attempt }
    | Error e -> Error e
  in
  go 0

let compile ?policy ?socket_path invocation units =
  roundtrip ?policy ?socket_path (Protocol.request_of_units invocation units)

let transform ?policy ?socket_path invocation ~name source =
  roundtrip ?policy ?socket_path
    (Protocol.request_of_transform invocation ~name source)

let analyze ?policy ?socket_path invocation ~name source =
  roundtrip ?policy ?socket_path
    (Protocol.request_of_analyze invocation ~name source)

let ping ?policy ?socket_path () =
  match roundtrip ?policy ?socket_path Protocol.Req_ping with
  | Ok { response = Protocol.Resp_pong { pong_queue_depth; pong_capacity }; _ }
    ->
    Ok (pong_queue_depth, pong_capacity)
  | Ok { response = Protocol.Resp_rejected reason; _ } ->
    Error ("ping rejected: " ^ reason)
  | Ok _ -> Error "unexpected response to a ping"
  | Error e -> Error e

(* Folds a server-side stats snapshot into the current registry, so
   -print-stats over a daemon compile shows the real pipeline counters.
   [Stats.counter] is idempotent on (group, name), which is exactly what
   makes re-registering the server's descriptors here safe. *)
let absorb_snapshot (snap : Stats.snapshot) =
  List.iter
    (fun (key, v) ->
      if v <> 0 then
        match String.index_opt key '.' with
        | None -> ()
        | Some i ->
          let group = String.sub key 0 i in
          let name = String.sub key (i + 1) (String.length key - i - 1) in
          Stats.add (Stats.counter ~group ~name ()) v)
    snap

let ir_of_response_unit (u : Protocol.response_unit) : Mc_ir.Ir.modul option =
  match u.Protocol.r_outcome with
  | Protocol.R_ok { ok_ir = Some s; _ } -> (
    (* Same-build Marshal (the frame version already matched), but a
       truncated payload must degrade to "no IR", not an exception. *)
    match (Marshal.from_string s 0 : Mc_ir.Ir.modul) with
    | m -> Some m
    | exception _ -> None)
  | _ -> None
