(* The mcc side of --daemon: connect to a running mccd, ship the
   invocation + sources, get back diagnostics/IR/traces.  Every failure
   before a well-formed response — no socket, connect refused, protocol
   mismatch, short read — is an [Error], and the caller (bin/mcc)
   treats any [Error] as "no usable daemon" and falls back to the
   in-process pipeline, preserving behaviour and exit codes. *)

module Stats = Mc_support.Stats

let default_socket = Protocol.default_socket

let roundtrip ?(socket_path = Protocol.default_socket ())
    (request : Protocol.request) : (Protocol.response, string) result =
  (* A dead server must surface as a fallback, not a SIGPIPE death. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error
      (Printf.sprintf "cannot reach daemon at %s: %s" socket_path
         (Unix.error_message e))
  | () ->
    (* The server compiles between our write and its reply, so the read
       timeout bounds server stall, not compile time; keep it generous. *)
    (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 120.0
     with Unix.Unix_error _ -> ());
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    let result =
      match Protocol.write_request oc request with
      | () -> Protocol.read_response ic
      | exception Sys_error e -> Error ("request write failed: " ^ e)
    in
    (try close_out oc with Sys_error _ -> ());
    (try close_in ic with Sys_error _ -> ());
    result

let compile ?socket_path invocation units =
  roundtrip ?socket_path (Protocol.request_of_units invocation units)

let transform ?socket_path invocation ~name source =
  roundtrip ?socket_path (Protocol.request_of_transform invocation ~name source)

(* Folds a server-side stats snapshot into the current registry, so
   -print-stats over a daemon compile shows the real pipeline counters.
   [Stats.counter] is idempotent on (group, name), which is exactly what
   makes re-registering the server's descriptors here safe. *)
let absorb_snapshot (snap : Stats.snapshot) =
  List.iter
    (fun (key, v) ->
      if v <> 0 then
        match String.index_opt key '.' with
        | None -> ()
        | Some i ->
          let group = String.sub key 0 i in
          let name = String.sub key (i + 1) (String.length key - i - 1) in
          Stats.add (Stats.counter ~group ~name ()) v)
    snap

let ir_of_response_unit (u : Protocol.response_unit) : Mc_ir.Ir.modul option =
  match u.Protocol.r_outcome with
  | Protocol.R_ok { ok_ir = Some s; _ } -> (
    (* Same-build Marshal (the frame version already matched), but a
       truncated payload must degrade to "no IR", not an exception. *)
    match (Marshal.from_string s 0 : Mc_ir.Ir.modul) with
    | m -> Some m
    | exception _ -> None)
  | _ -> None
