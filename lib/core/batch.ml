(* Parallel batch compilation: N translation units over M domains.

   Each unit compiles inside its own Instance (own registry, shared
   cache), so workers share no mutable compilation state; units are
   claimed from an atomic counter, results land in an array slot owned
   by exactly one worker, and Domain.join publishes them — results are
   therefore in input order and, because all per-compilation state is
   domain-local and reset per compile, byte-identical to a sequential
   run regardless of the domain count. *)

module Stats = Mc_support.Stats
module Clock = Mc_support.Clock
module Crash_recovery = Mc_support.Crash_recovery

type unit_result = {
  u_name : string;
  u_result : (Driver.result, Instance.failure) result;
  u_cache_hit : bool;
  u_trace : Pipeline.trace;
  u_fn_trace : (string * Pipeline.outcome) list;
  u_stats : Stats.snapshot;
  u_wall : float;
}

type t = {
  units : unit_result list;
  stats : Stats.snapshot;
  wall : float;
  jobs : int;
}

let default_jobs () = Domain.recommended_domain_count ()

let compile_units ?cache ~jobs ~invocation inputs =
  let inputs = Array.of_list inputs in
  let n = Array.length inputs in
  let jobs = max 1 (min jobs (max n 1)) in
  let slots = Array.make n None in
  let registries = Array.make n None in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let name, source = inputs.(i) in
        let inst = Instance.create ?cache invocation in
        let started = Clock.now () in
        let outcome, hit, trace, fn_trace =
          match Instance.compile_safe inst ~name source with
          | Ok { Instance.c_result; c_cache_hit; c_trace; c_fn_trace } ->
            (Ok c_result, c_cache_hit, c_trace, c_fn_trace)
          | Error failure -> (Error failure, false, [], [])
          | exception e ->
            (* Last-ditch containment: [compile_safe] itself should never
               raise, but a worker must not die and strand its siblings. *)
            ( Error
                {
                  Instance.f_ice = Crash_recovery.ice_of_exn e;
                  f_reproducer = None;
                },
              false,
              [],
              [] )
        in
        let wall = Clock.now () -. started in
        registries.(i) <- Some (Instance.registry inst);
        slots.(i) <-
          Some
            {
              u_name = name;
              u_result = outcome;
              u_cache_hit = hit;
              u_trace = trace;
              u_fn_trace = fn_trace;
              u_stats = Stats.snapshot ~registry:(Instance.registry inst) ();
              u_wall = wall;
            };
        loop ()
      end
    in
    loop ()
  in
  let started = Clock.now () in
  if jobs <= 1 then worker ()
  else begin
    let others = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join others
  end;
  let wall = Clock.now () -. started in
  let units =
    Array.to_list
      (Array.map
         (function
           | Some u -> u
           | None -> assert false (* every index was claimed exactly once *))
         slots)
  in
  let registries =
    Array.to_list
      (Array.map (function Some r -> r | None -> assert false) registries)
  in
  (units, registries, wall, jobs)

let merged_stats units =
  List.fold_left
    (fun acc u -> Stats.merge_snapshots acc u.u_stats)
    [] units

let compile ?jobs ?cache ~invocation inputs =
  let jobs =
    match jobs with Some j -> j | None -> invocation.Invocation.jobs
  in
  let cache =
    match cache with
    | Some _ as c -> c
    | None ->
      if invocation.Invocation.cache_enabled then Some (Cache.create ())
      else None
  in
  let units, _registries, wall, jobs =
    compile_units ?cache ~jobs ~invocation inputs
  in
  { units; stats = merged_stats units; wall; jobs }

let compile_into instance inputs =
  let invocation = Instance.invocation instance in
  let units, registries, wall, jobs =
    compile_units
      ?cache:(Instance.cache instance)
      ~jobs:invocation.Invocation.jobs ~invocation inputs
  in
  (* Merge per-unit registries into the parent instance in input order,
     so the instance's -print-stats / -ftime-report cover the batch. *)
  List.iter
    (fun r -> Stats.Registry.merge ~into:(Instance.registry instance) r)
    registries;
  { units; stats = merged_stats units; wall; jobs }

let hits t = List.length (List.filter (fun u -> u.u_cache_hit) t.units)

let ices t =
  List.length
    (List.filter (fun u -> Result.is_error u.u_result) t.units)

let codegen_errors t =
  List.length
    (List.filter
       (fun u ->
         match u.u_result with
         | Ok r -> r.Driver.codegen_error <> None
         | Error _ -> false)
       t.units)

let errors t =
  List.length
    (List.filter
       (fun u ->
         match u.u_result with
         | Ok r -> Mc_diag.Diagnostics.has_errors r.Driver.diag
         | Error _ -> false)
       t.units)

let all_ok t =
  List.for_all
    (fun u ->
      match u.u_result with
      | Ok r -> not (Mc_diag.Diagnostics.has_errors r.Driver.diag)
      | Error _ -> false)
    t.units
