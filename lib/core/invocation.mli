(** The [clang::CompilerInvocation] analogue: a pure, immutable record of
    everything one driver run was asked to do — inputs, action, and
    options — decoupled from the mutable pipeline state (which
    {!Mc_core.Instance} owns).  Being a plain value, an invocation can be
    parsed once from argv and then shared freely across the domains of a
    {!Mc_core.Batch} compilation.

    {!Driver.options} remains the narrow per-compile option set;
    {!to_driver_options} is the compatibility shim, so existing
    [Driver]-level callers keep working unchanged. *)

type action =
  | Run (* compile and execute on the IR interpreter (the default) *)
  | Ast_dump
  | Ast_dump_shadow
  | Ast_print
  | Print_transformed
  | Emit_ir
  | Emit_transformed (* apply the transfo script, print the rewritten C *)
  | Syntax_only
  | Analyze (* run the dataflow analyses, print the report *)

type input =
  | File of string (* path, or "-" for stdin *)
  | Source of { name : string; contents : string } (* in-memory unit *)

type t = {
  inputs : input list;
  action : action;
  use_irbuilder : bool; (* -fopenmp-enable-irbuilder *)
  opt_level : int; (* -O LEVEL; > 0 runs the O1 pipeline *)
  fold : bool; (* IRBuilder on-the-fly folding *)
  verify_ir : bool; (* verify after codegen and passes *)
  defines : (string * string) list; (* -D name=value *)
  extra_files : (string * string) list; (* virtual #include targets *)
  jobs : int; (* -j N: batch compilation domains *)
  cache_enabled : bool; (* --cache: content-addressed stage cache *)
  cache_dir : string option; (* --cache-dir DIR: persist the stage cache
                                on disk ({!Store}); implies cache *)
  incremental : bool; (* --incremental: recompile after the cold batch,
                         reporting per-stage reuse (implies cache) *)
  daemon : bool; (* --daemon: compile through a running mccd, falling
                    back in-process when none is reachable *)
  daemon_socket : string option; (* --daemon-socket PATH (implies daemon;
                                    default: Client.default_socket) *)
  daemon_timeout : float option; (* --daemon-timeout SECONDS: client
                                    connect/send/receive deadlines
                                    (implies daemon) *)
  daemon_retries : int option; (* --daemon-retries N: max retries after
                                  Resp_busy sheds (implies daemon) *)
  num_threads : int; (* simulated OpenMP team size *)
  stage_timings : bool;
  time_report : bool; (* -ftime-report *)
  print_stats : bool; (* -print-stats *)
  error_limit : int; (* -ferror-limit N (0 = unlimited) *)
  bracket_depth : int; (* -fbracket-depth N parser recursion guard *)
  loop_nest_limit : int; (* -floop-nest-limit N directive depth cap *)
  transfo_script : input option; (* --transfo-script FILE ({!Mc_transfo}
                                    script applied before the lexer) *)
  transfo_check : bool; (* differential oracle per script step; the
                           --no-transfo-check flag disables *)
  analyze : string list option; (* --analyze[=p1,p2] pass selection;
                                   Some [] = every pass *)
  analyze_format : string; (* --analyze-format text|json (presentation
                              only; not part of the fingerprint) *)
  gen_reproducer : bool; (* write ICE reproducer bundles (default on);
                            -fno-crash-diagnostics disables *)
}

val default : t
(** No inputs, [Run] action, [Driver.default_options] settings, 1 job. *)

val to_driver_options : t -> Driver.options
(** The compatibility shim onto the pre-existing driver option record. *)

val of_driver_options : ?inputs:input list -> Driver.options -> t
(** Lifts a legacy option record into an invocation (defaults elsewhere). *)

val input_name : input -> string

val read_input : input -> (string * string, string) result
(** [(name, contents)], reading files ([Error] carries the IO failure). *)

val load_inputs : t -> ((string * string) list, string) result
(** Reads every input in order; fails on the first unreadable one. *)

val load_transfo_script : t -> (t, string) result
(** Resolves a [File] transfo script to an in-memory [Source] (so the
    invocation can travel to a daemon); the identity when there is no
    script or it is already loaded. *)

val fingerprint : t -> string
(** Canonical rendering of the backend-relevant options (whole-invocation
    granularity; the stage cache uses the finer per-stage
    {!Pipeline.option_slice} fingerprints instead).  Inputs, defines and
    extra files are excluded on purpose: they shape the preprocessed
    token stream, which the pipeline content-addresses directly. *)

val of_argv : string array -> (t, string) result
(** Parses a full argv (element 0 is the program name) with the mcc flag
    grammar: single- or double-dash long options ([-emit-ir],
    [--emit-ir]), [-fsyntax-only] and [-syntax-only] as synonyms,
    [-j N]/[-jN], [-O 0]/[-O0]/[-O1], [-D NAME=VALUE]/[-DNAME=VALUE],
    [--cache], [--cache-dir DIR], [--incremental], [--daemon],
    [--daemon-socket PATH], [--daemon-timeout SECONDS],
    [--daemon-retries N], [-num-threads N], [-ftime-report],
    [-print-stats],
    [-stage-timings], the resource limits [-ferror-limit N],
    [-fbracket-depth N], [-floop-nest-limit N], the transfo-script
    options [--transfo-script FILE] and [--no-transfo-check], the
    analysis options [--analyze], [--analyze=pass1,pass2] and
    [--analyze-format text|json] (bare [--analyze] deliberately takes no
    separate argument, so [--analyze foo.c] keeps foo.c an input), the
    reproducer toggles
    [-gen-reproducer]/[-fno-crash-diagnostics], and positional input
    files ([-] for stdin). *)

val to_argv : t -> string list
(** Renders the invocation back to mcc flags — the inverse of {!of_argv}
    minus the inputs, which the caller appends itself.  Only non-default
    settings are emitted; used to write the re-runnable command line of
    an ICE reproducer bundle ({!Reproducer}). *)
