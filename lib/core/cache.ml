(* Per-stage memoization for the stage-graph pipeline.

   The cache is a mutex-guarded map from (stage tag, fingerprint) to the
   marshalled bytes of that stage's artifact.  It is deliberately untyped
   at this layer: [Pipeline] owns the artifact types, computes the
   fingerprints (hash of the input artifact + the stage-relevant slice of
   the invocation) and does the marshalling, so the cache stays a dumb,
   domain-shareable store.  Payload strings are immutable, so handing the
   same bytes to two domains is safe; consumers unmarshal a fresh copy
   per hit (mutable artifacts such as IR modules must never be aliased
   across units).

   Lookups can carry a validation predicate — the PPTokens stage uses it
   to check the recorded #include set (path + content digest) against the
   current file manager, ccache-style: a stale include set counts as an
   invalidation plus a miss, never a wrong hit.

   Every stage's hit/miss/store/invalidation events land in [cache.*]
   counters of the calling domain's current stats registry, so they
   surface in -print-stats and in per-compile snapshots. *)

module Stats = Mc_support.Stats

let stage_names =
  (* Unit-granular stages first, then the per-function artifact families
     of the granular pipeline (one artifact per top-level slice). *)
  [ "transfo"; "lex"; "pp"; "ast"; "ir"; "optir"; "fnast"; "fnir"; "fnoptir";
    "analysis"; "fnanalysis" ]

type stage_counters = {
  sc_hits : Stats.counter;
  sc_misses : Stats.counter;
  sc_stores : Stats.counter;
  sc_invalidations : Stats.counter;
}

let stage_counters =
  List.map
    (fun s ->
      ( s,
        {
          sc_hits =
            Stats.counter ~group:"cache" ~name:(s ^ "-hits")
              ~desc:(Printf.sprintf "%s stage artifacts reused from the cache" s)
              ();
          sc_misses =
            Stats.counter ~group:"cache" ~name:(s ^ "-misses")
              ~desc:(Printf.sprintf "%s stage lookups that found nothing" s)
              ();
          sc_stores =
            Stats.counter ~group:"cache" ~name:(s ^ "-stores")
              ~desc:(Printf.sprintf "%s stage artifacts stored" s)
              ();
          sc_invalidations =
            Stats.counter ~group:"cache" ~name:(s ^ "-invalidations")
              ~desc:
                (Printf.sprintf
                   "cached %s stage artifacts rejected by validation" s)
              ();
        } ))
    stage_names

let counters_for stage =
  match List.assoc_opt stage stage_counters with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Cache: unknown stage %S" stage)

(* Each (stage, fp) key holds a list of candidate payloads, newest
   first.  For most stages the list has one element; the PPTokens stage
   can legitimately accumulate one candidate per #include-set variant
   (the fingerprint cannot see include contents — that is what the
   validation predicate is for), ccache-manifest style, so flipping a
   header back and forth revalidates old candidates instead of thrashing
   one slot. *)
type t = {
  table : (string * string, string list) Hashtbl.t;
  lock : Mutex.t;
  disk : Store.t option;
      (* write-through persistence: misses fall back to disk, stores
         mirror the key's full candidate list to disk *)
}

let create ?store () =
  { table = Hashtbl.create 64; lock = Mutex.create (); disk = store }

let store_of t = t.disk

let length t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold (fun _ ps n -> n + List.length ps) t.table 0)

let stage_length t ~stage =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold
        (fun (s, _) ps n -> if String.equal s stage then n + List.length ps else n)
        t.table 0)

(* The key's candidates: memory first, then — on a memory miss — the
   on-disk store, whose entry (the full candidate list as of its last
   write) is adopted into memory so subsequent lookups stay in-process.
   A concurrent adopter racing on the same key keeps whichever list
   landed first; both are valid reads of the same on-disk entry. *)
let candidates_for t ~stage fp =
  match Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.table (stage, fp)) with
  | Some (_ :: _) as found -> found
  | None | Some [] -> (
    match t.disk with
    | None -> None
    | Some st -> (
      match Store.load st ~stage fp with
      | None -> None
      | Some loaded ->
        Mutex.protect t.lock (fun () ->
            match Hashtbl.find_opt t.table (stage, fp) with
            | Some (_ :: _ as existing) -> Some existing
            | None | Some [] ->
              Hashtbl.replace t.table (stage, fp) loaded;
              Some loaded)))

let find t ~stage ?validate fp =
  let c = counters_for stage in
  match candidates_for t ~stage fp with
  | None | Some [] ->
    Stats.incr c.sc_misses;
    None
  | Some candidates -> (
    match validate with
    | None ->
      Stats.incr c.sc_hits;
      Some (List.hd candidates)
    | Some ok -> (
      match List.find_opt ok candidates with
      | Some payload ->
        Stats.incr c.sc_hits;
        Some payload
      | None ->
        (* Every candidate is stale under the current invocation (e.g.
           an #include's contents changed): the entries stay — an
           invocation matching a recorded state may still revalidate one
           — but this lookup is a miss. *)
        Stats.incr c.sc_invalidations;
        Stats.incr c.sc_misses;
        None))

let store t ~stage fp payload =
  let c = counters_for stage in
  let added =
    Mutex.protect t.lock (fun () ->
        let existing =
          Option.value ~default:[] (Hashtbl.find_opt t.table (stage, fp))
        in
        if List.exists (String.equal payload) existing then None
        else begin
          let updated = payload :: existing in
          Hashtbl.replace t.table (stage, fp) updated;
          Some updated
        end)
  in
  match added with
  | None -> ()
  | Some updated ->
    Stats.incr c.sc_stores;
    (* Write-through: persist the key's full candidate list so a fresh
       process (or the daemon after a restart) revalidates the same
       ccache-style manifest this process would have. *)
    (match t.disk with
    | Some st -> Store.save st ~stage fp updated
    | None -> ())

(* Canonical, location-free rendering of the preprocessed stream.  NUL
   separates tokens (no token spelling contains one) and SOH marks
   pragma boundaries, so distinct streams cannot collide by
   concatenation.  This is what makes the AST stage content-addressed on
   the preprocessor's *output*: comment/whitespace edits — and -D changes
   the expansion never uses — leave the digest unchanged. *)
let canonical_items buf items =
  List.iter
    (fun item ->
      match item with
      | Mc_pp.Preprocessor.Tok tok ->
        Buffer.add_string buf (Mc_lexer.Token.spelling tok);
        Buffer.add_char buf '\x00'
      | Mc_pp.Preprocessor.Prag p ->
        Buffer.add_string buf "\x01#pragma\x00";
        List.iter
          (fun tok ->
            Buffer.add_string buf (Mc_lexer.Token.spelling tok);
            Buffer.add_char buf '\x00')
          p.Mc_pp.Preprocessor.pragma_toks;
        Buffer.add_char buf '\x01')
    items

let canonical_digest items =
  let buf = Buffer.create 4096 in
  canonical_items buf items;
  Digest.to_hex (Digest.string (Buffer.contents buf))
