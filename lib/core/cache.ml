(* Content-addressed compile cache.

   The key digests the *preprocessed* token stream (spellings, not
   locations) plus the backend-relevant invocation fingerprint, so a hit
   means "this exact translation unit under these exact backend options
   was compiled before".  Addressing post-preprocessing makes the cache
   robust in both directions: a -D change that alters expansion misses,
   while comment/whitespace edits (which the token stream does not see)
   still hit.

   The stored value is the marshalled back-end artefact: IR module,
   unroll statistics and the full counter snapshot of the original
   compilation.  IR modules are mutable graphs, so [find] unmarshals a
   fresh copy per hit — two concurrent batch units can never alias one
   cached module.  The table itself is guarded by a mutex and safe to
   share across domains. *)

module Stats = Mc_support.Stats

let stat_hits =
  Stats.counter ~group:"cache" ~name:"hits" ~desc:"compile cache hits" ()

let stat_misses =
  Stats.counter ~group:"cache" ~name:"misses" ~desc:"compile cache misses" ()

let stat_stores =
  Stats.counter ~group:"cache" ~name:"stores"
    ~desc:"compile results stored in the cache" ()

type payload = {
  p_ir : string; (* Marshal of Mc_ir.Ir.modul *)
  p_unroll : Mc_passes.Loop_unroll.stats;
  p_stats : Stats.snapshot;
}

type t = {
  table : (string, payload) Hashtbl.t;
  lock : Mutex.t;
}

let create () = { table = Hashtbl.create 64; lock = Mutex.create () }

let length t = Mutex.protect t.lock (fun () -> Hashtbl.length t.table)

(* Canonical, location-free rendering of the preprocessed stream.  NUL
   separates tokens (no token spelling contains one) and SOH marks
   pragma boundaries, so distinct streams cannot collide by
   concatenation. *)
let canonical_items buf items =
  List.iter
    (fun item ->
      match item with
      | Mc_pp.Preprocessor.Tok tok ->
        Buffer.add_string buf (Mc_lexer.Token.spelling tok);
        Buffer.add_char buf '\x00'
      | Mc_pp.Preprocessor.Prag p ->
        Buffer.add_string buf "\x01#pragma\x00";
        List.iter
          (fun tok ->
            Buffer.add_string buf (Mc_lexer.Token.spelling tok);
            Buffer.add_char buf '\x00')
          p.Mc_pp.Preprocessor.pragma_toks;
        Buffer.add_char buf '\x01')
    items

let key ~fingerprint items =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf fingerprint;
  Buffer.add_char buf '\x02';
  canonical_items buf items;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let find t k =
  match Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.table k) with
  | None ->
    Stats.incr stat_misses;
    None
  | Some payload ->
    Stats.incr stat_hits;
    let ir : Mc_ir.Ir.modul = Marshal.from_string payload.p_ir 0 in
    Some (ir, payload.p_unroll, payload.p_stats)

let store t k ~ir ~unroll_stats ~stats =
  let payload =
    { p_ir = Marshal.to_string ir []; p_unroll = unroll_stats; p_stats = stats }
  in
  Stats.incr stat_stores;
  Mutex.protect t.lock (fun () -> Hashtbl.replace t.table k payload)
