(* The compile server behind mccd: a Unix-domain-socket daemon holding a
   warm, shareable stage cache (optionally persisted via Store) and a
   pool of worker domains, so repeated compile requests from short-lived
   clients get long-lived-process cache locality.

   Life of a request: the accept loop (main domain) takes a connection
   and pushes it onto a bounded queue — when the queue is full the loop
   stops accepting, the kernel listen backlog fills, and clients block
   in connect(): backpressure propagates without any protocol chatter.
   A worker domain pops the connection, reads one framed request,
   re-verifies each unit's content digest, compiles the units through
   [Instance.compile_safe] against the shared cache, and writes one
   framed response.

   Crash containment is per request *and* per unit: an ICE inside a
   unit's compilation becomes an [R_ice] response entry (the
   Crash_recovery machinery, exactly as in-process Batch units), and any
   escaped exception around request handling — protocol garbage, a
   client that hung up mid-write — is swallowed after a best-effort
   rejection, so one client can never take the daemon down.

   Lifetime: the loop exits on (a) the [stop] flag (mccd's SIGTERM/SIGINT
   handlers set it), (b) [max_requests] accepted connections, or (c)
   [idle_timeout] seconds without a new connection.  Shutdown is a
   graceful drain: stop accepting, let workers finish every queued
   connection, join them, unlink the socket. *)

module Stats = Mc_support.Stats
module Clock = Mc_support.Clock
module Diag = Mc_diag.Diagnostics

let stat_requests =
  Stats.counter ~group:"server" ~name:"requests"
    ~desc:"compile requests served by the daemon" ()

let stat_units =
  Stats.counter ~group:"server" ~name:"units"
    ~desc:"translation units compiled for daemon clients" ()

let stat_ices =
  Stats.counter ~group:"server" ~name:"ices"
    ~desc:"client units that ICEd and were contained by the daemon" ()

let stat_rejects =
  Stats.counter ~group:"server" ~name:"rejects"
    ~desc:"requests rejected before compilation (framing, digests)" ()

let stat_transforms =
  Stats.counter ~group:"server" ~name:"transforms"
    ~desc:"transfo-script requests served by the daemon" ()

let stat_analyses =
  Stats.counter ~group:"server" ~name:"analyses"
    ~desc:"dataflow analysis requests served by the daemon" ()

let stat_shed =
  Stats.counter ~group:"server" ~name:"shed"
    ~desc:"connections shed with Resp_busy because the queue was full" ()

let stat_queue_depth_max =
  Stats.counter ~group:"server" ~name:"queue-depth-max"
    ~desc:"high-water mark of the bounded connection queue" ()

let stat_timeouts =
  Stats.counter ~group:"server" ~name:"timeouts"
    ~desc:"requests rejected for exceeding the per-request deadline" ()

let stat_pings =
  Stats.counter ~group:"server" ~name:"pings"
    ~desc:"health-check pings answered" ()

(* Injectable failures inside the worker path: a synthetic per-unit
   crash (contained as R_ice, like any real ICE) and a synthetic stall
   (caught by the per-request deadline when one is configured). *)
let fault_worker = Mc_support.Fault.point "server.worker"
let fault_slow_reply = Mc_support.Fault.point "server.slow_reply"

type config = {
  socket_path : string;
  pool_size : int;
  queue_capacity : int;
  max_requests : int option;
  idle_timeout : float option;
  request_timeout : float option;
  shed_retry_after : float;
  cache_dir : string option;
  max_cache_bytes : int option;
  log : (string -> unit) option;
}

let default_config =
  {
    socket_path = Protocol.default_socket ();
    pool_size = 2;
    queue_capacity = 16;
    max_requests = None;
    idle_timeout = None;
    request_timeout = None;
    shed_retry_after = 0.05;
    cache_dir = None;
    max_cache_bytes = None;
    log = None;
  }

(* ---- bounded blocking queue ---------------------------------------------- *)

module Bqueue = struct
  type 'a t = {
    q : 'a Queue.t;
    cap : int;
    m : Mutex.t;
    not_empty : Condition.t;
    not_full : Condition.t;
    mutable closed : bool;
  }

  let create cap =
    {
      q = Queue.create ();
      cap = max 1 cap;
      m = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      closed = false;
    }

  (* Blocks while full: the old backpressure edge, kept for callers
     that want blocking semantics (and for its edge-case tests). *)
  let push t v =
    Mutex.lock t.m;
    while Queue.length t.q >= t.cap && not t.closed do
      Condition.wait t.not_full t.m
    done;
    let accepted = not t.closed in
    if accepted then begin
      Queue.push v t.q;
      Condition.signal t.not_empty
    end;
    Mutex.unlock t.m;
    accepted

  (* Never blocks: the admission-control edge.  [`Full] is the accept
     loop's cue to shed the connection with [Resp_busy] instead of
     letting the kernel backlog fill and clients hang. *)
  let try_push t v =
    Mutex.lock t.m;
    let outcome =
      if t.closed then `Closed
      else if Queue.length t.q >= t.cap then `Full
      else begin
        Queue.push v t.q;
        Condition.signal t.not_empty;
        `Accepted
      end
    in
    Mutex.unlock t.m;
    outcome

  let length t = Mutex.protect t.m (fun () -> Queue.length t.q)

  (* [None] only after [close] *and* the queue has drained — closing is
     a graceful drain, not an abort. *)
  let pop t =
    Mutex.lock t.m;
    while Queue.is_empty t.q && not t.closed do
      Condition.wait t.not_empty t.m
    done;
    let v = if Queue.is_empty t.q then None else Some (Queue.pop t.q) in
    Condition.signal t.not_full;
    Mutex.unlock t.m;
    v

  let close t =
    Mutex.lock t.m;
    t.closed <- true;
    Condition.broadcast t.not_empty;
    Condition.broadcast t.not_full;
    Mutex.unlock t.m
end

(* ---- request handling ---------------------------------------------------- *)

(* [deadline_exceeded] lets a timed-out request stop burning worker time
   on its remaining units: the whole response is replaced by a
   [Resp_rejected] timeout in [handle_connection] anyway, so skipped
   units are never observable. *)
let compile_request ?(deadline_exceeded = fun () -> false) ~cache
    (req : Protocol.compile_request) =
  let registry = Stats.Registry.create () in
  let started = Clock.now () in
  let units =
    List.map
      (fun (u : Protocol.request_unit) ->
        let inst = Instance.create ?cache (req.Protocol.q_invocation) in
        let u_started = Clock.now () in
        let compile_unit () =
          if Mc_support.Fault.fire fault_worker then
            (* Injected crash in the worker itself, outside
               [compile_safe]'s net — containment must still hold, so
               synthesize the same structured ICE a real escape would
               produce. *)
            Error
              {
                Instance.f_ice =
                  {
                    Mc_support.Crash_recovery.ice_phase = "server.worker";
                    ice_exn = "injected worker fault (MCC_FAULTS)";
                    ice_backtrace = "";
                    ice_location = None;
                  };
                f_reproducer = None;
              }
          else Instance.compile_safe inst ~name:u.Protocol.q_name u.Protocol.q_source
        in
        let outcome, trace, hit =
          if deadline_exceeded () then
            ( Protocol.R_ok
                {
                  ok_diag = "";
                  ok_errors = false;
                  ok_ir = None;
                  ok_codegen_error = None;
                },
              [],
              false )
          else
          match compile_unit () with
          | Ok c ->
            let r = c.Instance.c_result in
            ( Protocol.R_ok
                {
                  ok_diag = Diag.render_all r.Driver.diag;
                  ok_errors = Diag.has_errors r.Driver.diag;
                  ok_ir =
                    Option.map (fun m -> Marshal.to_string m []) r.Driver.ir;
                  ok_codegen_error = r.Driver.codegen_error;
                },
              c.Instance.c_trace,
              c.Instance.c_cache_hit )
          | Error f ->
            let ice = f.Instance.f_ice in
            Stats.with_registry registry (fun () -> Stats.incr stat_ices);
            ( Protocol.R_ice
                {
                  ice_phase = ice.Mc_support.Crash_recovery.ice_phase;
                  ice_exn = ice.Mc_support.Crash_recovery.ice_exn;
                  ice_location = ice.Mc_support.Crash_recovery.ice_location;
                  ice_reproducer = f.Instance.f_reproducer;
                },
              [],
              false )
        in
        Stats.Registry.merge ~into:registry (Instance.registry inst);
        Stats.with_registry registry (fun () -> Stats.incr stat_units);
        {
          Protocol.r_name = u.Protocol.q_name;
          r_outcome = outcome;
          r_trace = trace;
          r_cache_hit = hit;
          r_wall = Clock.now () -. u_started;
        })
      req.Protocol.q_units
  in
  Stats.with_registry registry (fun () -> Stats.incr stat_requests);
  ( Protocol.Resp_units
      {
        p_units = units;
        p_stats = Stats.snapshot ~registry ();
        p_wall = Clock.now () -. started;
      },
    registry )

(* The transfo pre-stage alone: resolve the script out of the shipped
   invocation, run [Pipeline.transform] against the shared cache.  Script
   failures are a payload ([Error] inside [Resp_transformed]), not a
   protocol rejection — the client should render them like any other
   user-facing diagnostic. *)
let transform_request ~cache (req : Protocol.transform_request) =
  let started = Clock.now () in
  let options = Invocation.to_driver_options req.Protocol.t_invocation in
  let result, registry =
    match options.Driver.transfo_script with
    | None -> (Error "transform request carries no script", Stats.Registry.create ())
    | Some script -> (
      let options = { options with Driver.transfo_script = None } in
      match
        Stats.with_scoped_registry (fun () ->
            Pipeline.transform ?cache ~options ~name:req.Protocol.t_name
              ~script req.Protocol.t_source)
      with
      | (Ok (outcome, source, trace), registry) ->
        ( Ok
            {
              Protocol.x_source = source;
              x_trace = trace;
              x_cache_hit = outcome = Pipeline.Cache_hit;
            },
          registry )
      | (Error msg, registry) -> (Error msg, registry)
      | exception e ->
        (Error ("internal error: " ^ Printexc.to_string e),
         Stats.Registry.create ()))
  in
  Stats.with_registry registry (fun () ->
      Stats.incr stat_requests;
      Stats.incr stat_transforms);
  ( Protocol.Resp_transformed
      {
        p_result = result;
        p_stats = Stats.snapshot ~registry ();
        p_wall = Clock.now () -. started;
      },
    registry )

(* A dataflow-analysis query: compile the unit through the shared stage
   cache with the invocation's [analyze] selection live, then ship both
   renderings of the report.  Compilation failures (diagnostics, a
   codegen refusal, an ICE) are a payload [Error], not a rejection — the
   client prints them exactly as a local `mcc --analyze` would. *)
let analyze_request ~cache (req : Protocol.analyze_request) =
  let started = Clock.now () in
  let registry = Stats.Registry.create () in
  let inv =
    (* Force the analysis on, whatever else the invocation says: a
       Req_analyze with [analyze = None] should still analyse. *)
    match req.Protocol.a_invocation.Invocation.analyze with
    | Some _ -> req.Protocol.a_invocation
    | None -> { req.Protocol.a_invocation with Invocation.analyze = Some [] }
  in
  let inst = Instance.create ?cache inv in
  let result =
    match
      Instance.compile_safe inst ~name:req.Protocol.a_name
        req.Protocol.a_source
    with
    | Ok c -> (
      let r = c.Instance.c_result in
      if Diag.has_errors r.Driver.diag then
        Error (Diag.render_all r.Driver.diag)
      else
        match (r.Driver.analysis, r.Driver.codegen_error) with
        | Some report, _ ->
          Ok
            {
              Protocol.an_text = Mc_analysis.Report.render_text report;
              an_json = Mc_analysis.Report.render_json report;
              an_findings = Mc_analysis.Report.finding_count report;
              an_cache_hit = c.Instance.c_cache_hit;
            }
        | None, Some e -> Error ("cannot analyse: " ^ e)
        | None, None -> Error "cannot analyse: no IR was produced")
    | Error f ->
      let ice = f.Instance.f_ice in
      Stats.with_registry registry (fun () -> Stats.incr stat_ices);
      Error
        (Printf.sprintf "internal error in %s: %s"
           ice.Mc_support.Crash_recovery.ice_phase
           ice.Mc_support.Crash_recovery.ice_exn)
  in
  Stats.Registry.merge ~into:registry (Instance.registry inst);
  Stats.with_registry registry (fun () ->
      Stats.incr stat_requests;
      Stats.incr stat_analyses);
  ( Protocol.Resp_analysis
      {
        p_result = result;
        p_stats = Stats.snapshot ~registry ();
        p_wall = Clock.now () -. started;
      },
    registry )

let verify_digests (req : Protocol.request) =
  let ok source digest = String.equal (Protocol.unit_digest source) digest in
  match req with
  | Protocol.Req_compile c ->
    List.for_all
      (fun (u : Protocol.request_unit) ->
        ok u.Protocol.q_source u.Protocol.q_digest)
      c.Protocol.q_units
  | Protocol.Req_transform t -> ok t.Protocol.t_source t.Protocol.t_digest
  | Protocol.Req_analyze a -> ok a.Protocol.a_source a.Protocol.a_digest
  | Protocol.Req_ping -> true

(* One connection, one request; every failure mode ends with a closed
   socket and a still-healthy worker.  [request_timeout] is a wall-clock
   deadline starting when the worker picks the connection up (so it
   covers queue-to-reply, not just compile time): a request that blows
   it gets one complete [Resp_rejected] frame with a structured timeout
   reason — never a half-written response. *)
let handle_connection ~cache ~lifetime ~lifetime_lock ~log ~request_timeout
    ~queue_depth ~queue_capacity fd =
  let started = Clock.now () in
  let deadline_exceeded () =
    match request_timeout with
    | Some t -> Clock.now () -. started > t
    | None -> false
  in
  (* A client that connects and then stalls must not wedge the worker
     longer than the request deadline allows. *)
  let read_timeout =
    match request_timeout with Some t -> Float.max t 0.01 | None -> 30.0
  in
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO read_timeout
   with Unix.Unix_error _ -> ());
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let reject registry msg =
    Stats.with_registry registry (fun () -> Stats.incr stat_rejects);
    try Protocol.write_response oc (Protocol.Resp_rejected msg)
    with Sys_error _ | Sys_blocked_io -> ()
  in
  let registry =
    match Protocol.read_request ic with
    | Error e ->
      let registry = Stats.Registry.create () in
      reject registry ("bad request: " ^ e);
      registry
    | Ok req when not (verify_digests req) ->
      let registry = Stats.Registry.create () in
      reject registry "source digest mismatch";
      registry
    | Ok Protocol.Req_ping ->
      let registry = Stats.Registry.create () in
      Stats.with_registry registry (fun () -> Stats.incr stat_pings);
      (try
         Protocol.write_response oc
           (Protocol.Resp_pong
              {
                pong_queue_depth = queue_depth ();
                pong_capacity = queue_capacity;
              })
       with Sys_error _ | Sys_blocked_io -> ());
      registry
    | Ok req -> (
      (* Injected stall: a worker that reads the request and then goes
         quiet — exactly what the request deadline exists to bound. *)
      if Mc_support.Fault.fire fault_slow_reply then
        Unix.sleepf
          (match request_timeout with
          | Some t -> 1.5 *. t
          | None -> 0.35);
      let response, registry =
        match req with
        | Protocol.Req_compile c ->
          let response, registry =
            compile_request ~deadline_exceeded ~cache c
          in
          log
            (Printf.sprintf "served %d unit(s)"
               (List.length c.Protocol.q_units));
          (response, registry)
        | Protocol.Req_transform t ->
          let response, registry = transform_request ~cache t in
          log (Printf.sprintf "transformed %s" t.Protocol.t_name);
          (response, registry)
        | Protocol.Req_analyze a ->
          let response, registry = analyze_request ~cache a in
          log (Printf.sprintf "analysed %s" a.Protocol.a_name);
          (response, registry)
        | Protocol.Req_ping -> assert false (* handled above *)
      in
      let response =
        if deadline_exceeded () then begin
          Stats.with_registry registry (fun () -> Stats.incr stat_timeouts);
          let t = Option.value request_timeout ~default:0.0 in
          log (Printf.sprintf "request deadline (%.3gs) exceeded" t);
          Protocol.Resp_rejected
            (Printf.sprintf
               "deadline exceeded: request took longer than the %.3gs server \
                request timeout (queue wait + compile); compile locally" t)
        end
        else response
      in
      (try Protocol.write_response oc response
       with Sys_error _ | Sys_blocked_io -> ()
       (* client hung up or stopped reading; its loss, our survival *));
      registry)
  in
  Mutex.protect lifetime_lock (fun () ->
      Stats.Registry.merge ~into:lifetime registry);
  (try close_out oc with Sys_error _ | Sys_blocked_io -> ());
  try close_in ic with Sys_error _ | Sys_blocked_io -> ()

(* ---- the daemon loop ----------------------------------------------------- *)

(* A live listener on [path]?  Used to refuse double-starts while still
   cleaning up sockets a crashed daemon left behind. *)
let socket_alive path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let alive =
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> true
    | exception Unix.Unix_error _ -> false
  in
  (try Unix.close fd with Unix.Unix_error _ -> ());
  alive

let run ?stop config =
  let stop = match stop with Some s -> s | None -> Atomic.make false in
  let log = match config.log with Some f -> f | None -> fun _ -> () in
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  if Sys.file_exists config.socket_path && socket_alive config.socket_path then
    Error (Printf.sprintf "a daemon is already listening on %s" config.socket_path)
  else begin
    (try Sys.remove config.socket_path with Sys_error _ -> ());
    let cache =
      match config.cache_dir with
      | Some dir ->
        Some
          (Cache.create
             ~store:(Store.create ~dir ?max_bytes:config.max_cache_bytes ())
             ())
      | None -> Some (Cache.create ())
    in
    let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match
      Unix.bind listen_fd (Unix.ADDR_UNIX config.socket_path);
      Unix.listen listen_fd 64
    with
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot listen on %s: %s" config.socket_path
           (Unix.error_message e))
    | () ->
      let lifetime = Stats.Registry.create () in
      let lifetime_lock = Mutex.create () in
      let queue = Bqueue.create config.queue_capacity in
      let worker () =
        let rec loop () =
          match Bqueue.pop queue with
          | None -> ()
          | Some fd ->
            (match
               handle_connection ~cache ~lifetime ~lifetime_lock ~log
                 ~request_timeout:config.request_timeout
                 ~queue_depth:(fun () -> Bqueue.length queue)
                 ~queue_capacity:config.queue_capacity fd
             with
            | () -> ()
            | exception _ ->
              (* Last-ditch containment: the worker survives anything a
                 single connection can throw at it. *)
              (try Unix.close fd with Unix.Unix_error _ -> ()));
            loop ()
        in
        loop ()
      in
      let workers =
        Array.init (max 1 config.pool_size) (fun _ -> Domain.spawn worker)
      in
      log
        (Printf.sprintf "listening on %s (%d worker(s), queue %d%s)"
           config.socket_path (max 1 config.pool_size) config.queue_capacity
           (match config.cache_dir with
           | Some d -> ", cache-dir " ^ d
           | None -> ""));
      let accepted = ref 0 in
      let shed_count = ref 0 in
      let depth_max = ref 0 in
      (* Shedding happens on the accept domain: the connection is taken
         off the backlog and answered with one small [Resp_busy] frame —
         structured "retry or compile locally" instead of a silent hang.
         The write is bounded (the frame fits any socket buffer, and a
         pathological client pays at most the SNDTIMEO) so a slow
         client cannot stall accepting. *)
      let shed fd =
        incr shed_count;
        Mutex.protect lifetime_lock (fun () ->
            Stats.with_registry lifetime (fun () -> Stats.incr stat_shed));
        (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 1.0
         with Unix.Unix_error _ -> ());
        let oc = Unix.out_channel_of_descr fd in
        (try
           Protocol.write_response oc
             (Protocol.Resp_busy
                {
                  queue_depth = Bqueue.length queue;
                  retry_after = config.shed_retry_after;
                })
         with Sys_error _ | Sys_blocked_io -> ());
        try close_out oc with Sys_error _ | Sys_blocked_io -> ()
      in
      let last_activity = ref (Clock.now ()) in
      let finished () =
        Atomic.get stop
        || (match config.max_requests with
           | Some m -> !accepted >= m
           | None -> false)
        ||
        match config.idle_timeout with
        | Some t -> Clock.now () -. !last_activity > t
        | None -> false
      in
      while not (finished ()) do
        match Unix.select [ listen_fd ] [] [] 0.2 with
        | [], _, _ -> ()
        | _ :: _, _, _ -> (
          match Unix.accept listen_fd with
          | fd, _ -> (
            incr accepted;
            last_activity := Clock.now ();
            match Bqueue.try_push queue fd with
            | `Accepted -> depth_max := max !depth_max (Bqueue.length queue)
            | `Full -> shed fd
            | `Closed -> Unix.close fd (* closing: refuse, client falls back *))
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done;
      log
        (if Atomic.get stop then "shutdown requested; draining"
         else "lifetime reached; draining");
      (* Graceful drain: no new connections, queued ones all served. *)
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      Bqueue.close queue;
      Array.iter Domain.join workers;
      (try Sys.remove config.socket_path with Sys_error _ -> ());
      (* The high-water mark is a gauge, not an additive counter; it is
         folded into the lifetime registry exactly once, here. *)
      Stats.with_registry lifetime (fun () ->
          Stats.add stat_queue_depth_max !depth_max);
      log
        (Printf.sprintf "served %d connection(s) (%d shed); bye" !accepted
           !shed_count);
      Ok (Stats.snapshot ~registry:lifetime ())
  end
