(* CompilerInstance analogue: one compilation context owning its own
   stats registry (and optionally sharing a stage cache), so any number
   of instances can coexist in one process — sequentially or across
   domains — without touching the process-global registry. *)

module Stats = Mc_support.Stats
module Diag = Mc_diag.Diagnostics
module Crash_recovery = Mc_support.Crash_recovery

type t = {
  invocation : Invocation.t;
  registry : Stats.Registry.t;
  mutable cache : Cache.t option;
  mutable exit_report_taken : bool;
}

let create ?cache invocation =
  let cache =
    match cache with
    | Some _ as c -> c
    | None -> (
      match invocation.Invocation.cache_dir with
      | Some dir ->
        (* --cache-dir: the in-memory stage cache is layered over a
           persistent on-disk store, so this instance starts disk-warm
           and its artifacts outlive the process. *)
        Some (Cache.create ~store:(Store.create ~dir ()) ())
      | None ->
        if
          invocation.Invocation.cache_enabled
          || invocation.Invocation.incremental
        then Some (Cache.create ())
        else None)
  in
  {
    invocation;
    registry = Stats.Registry.create ();
    cache;
    exit_report_taken = false;
  }

let invocation t = t.invocation
let registry t = t.registry
let cache t = t.cache
let in_registry t f = Stats.with_registry t.registry f

type compilation = {
  c_result : Driver.result;
  c_cache_hit : bool;
  c_trace : Pipeline.trace;
  c_fn_trace : (string * Pipeline.outcome) list;
}

(* [Pipeline.execute] already scopes each compilation to its own fresh
   registry and merges it into the enclosing one on the way out, so
   running it with the instance registry current makes the instance
   registry cumulative over everything the instance ever compiled. *)
let compile_inner t ~name source =
  let options = Invocation.to_driver_options t.invocation in
  let x = Pipeline.execute ?cache:t.cache ~options ~name source in
  {
    c_result = x.Pipeline.x_result;
    c_cache_hit = x.Pipeline.x_full_hit;
    c_trace = x.Pipeline.x_trace;
    c_fn_trace = x.Pipeline.x_fn_trace;
  }

let compile t ?(name = "input.c") source =
  in_registry t (fun () -> compile_inner t ~name source)

let recompile t ?name source =
  (* Incremental recompilation = same-instance compile with a stage cache
     guaranteed to exist: the first call is the cold build, every
     subsequent call reuses whatever stages the edit left valid. *)
  (match t.cache with None -> t.cache <- Some (Cache.create ()) | Some _ -> ());
  compile t ?name source

(* ---- fault containment ---------------------------------------------------- *)

type failure = {
  f_ice : Crash_recovery.ice;
  f_reproducer : string option; (* bundle directory, when one was written *)
}

let ices_counter =
  Stats.counter ~group:"driver" ~name:"ices"
    ~desc:"units contained after an internal compiler error" ()

let contain t ~name ~source f =
  (* The CrashRecoveryContext analogue.  Everything — including the
     [Crash_recovery.run] barrier itself — happens with the instance
     registry current, so a unit that ICEs still merges whatever counters
     it accrued (the pipeline's scoped-registry merge runs in its
     [finally]), and the registry scoping is restored by
     [with_registry]'s own protection. *)
  in_registry t (fun () ->
      match Crash_recovery.run f with
      | Ok v -> Ok v
      | Error ice ->
        Stats.incr ices_counter;
        let reproducer =
          if t.invocation.Invocation.gen_reproducer then
            match
              Reproducer.write ~invocation:t.invocation ~name ~source ~ice
            with
            | Ok dir -> Some dir
            | Error _ -> None
          else None
        in
        Error { f_ice = ice; f_reproducer = reproducer })

let compile_safe t ?(name = "input.c") source =
  contain t ~name ~source (fun () -> compile_inner t ~name source)

let frontend_safe t ?(name = "input.c") source =
  contain t ~name ~source (fun () ->
      Driver.frontend
        ~options:(Invocation.to_driver_options t.invocation)
        ~name source)

let frontend t ?name source =
  in_registry t (fun () ->
      Driver.frontend ~options:(Invocation.to_driver_options t.invocation)
        ?name source)

let run t ?config result = in_registry t (fun () -> Driver.run ?config result)

let compile_and_run t ?config ?name source =
  let { c_result; _ } = compile t ?name source in
  if Diag.has_errors c_result.Driver.diag then
    Error ("compilation failed:\n" ^ Diag.render_all c_result.Driver.diag)
  else run t ?config c_result

let stats t = Stats.snapshot ~registry:t.registry ()
let render_stats t = Stats.render_stats ~registry:t.registry ()
let render_time_report t = Stats.render_time_report ~registry:t.registry ()

(* -print-stats / -ftime-report on process exit, the Clang way — but per
   instance: each instance renders its own registry, at most once, and
   only if its invocation asked for a report.  [exit_reports] consumes
   the report, so stacking [report_at_exit] with an explicit earlier
   report cannot double-print (the PR-1 CLI printed the global registry
   from every at_exit hook it had ever registered). *)
let exit_reports t =
  if t.exit_report_taken then ""
  else begin
    t.exit_report_taken <- true;
    let buf = Buffer.create 256 in
    if t.invocation.Invocation.time_report then
      Buffer.add_string buf (render_time_report t);
    if t.invocation.Invocation.print_stats then
      Buffer.add_string buf (render_stats t);
    Buffer.contents buf
  end

let report_at_exit t =
  if t.invocation.Invocation.time_report || t.invocation.Invocation.print_stats
  then at_exit (fun () -> prerr_string (exit_reports t))
