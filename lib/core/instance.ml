(* CompilerInstance analogue: one compilation context owning its own
   stats registry (and optionally sharing a compile cache), so any number
   of instances can coexist in one process — sequentially or across
   domains — without touching the process-global registry. *)

module Stats = Mc_support.Stats
module Diag = Mc_diag.Diagnostics
module Crash_recovery = Mc_support.Crash_recovery

type t = {
  invocation : Invocation.t;
  registry : Stats.Registry.t;
  cache : Cache.t option;
  mutable exit_report_taken : bool;
}

let create ?cache invocation =
  let cache =
    match cache with
    | Some _ as c -> c
    | None -> if invocation.Invocation.cache_enabled then Some (Cache.create ()) else None
  in
  {
    invocation;
    registry = Stats.Registry.create ();
    cache;
    exit_report_taken = false;
  }

let invocation t = t.invocation
let registry t = t.registry
let cache t = t.cache
let in_registry t f = Stats.with_registry t.registry f

(* Each compilation starts by resetting the registry it is scoped to
   (part of [Driver.reset_compilation_state]), so running compiles
   directly in the instance registry would wipe the previous compile's
   counters.  Instead each compile runs in a fresh scratch registry that
   is merged in afterwards, making the instance registry cumulative over
   everything the instance ever compiled. *)
let in_scratch_registry t f =
  let scratch = Stats.Registry.create () in
  let r = Stats.with_registry scratch f in
  Stats.Registry.merge ~into:t.registry scratch;
  r

type compilation = { c_result : Driver.result; c_cache_hit : bool }

(* Only diagnostics-free successes are cached: a hit skips parse and sema
   entirely, so caching a unit that produced warnings would silently drop
   them on recompilation. *)
let cacheable (r : Driver.result) =
  r.Driver.ir <> None && Diag.diagnostics r.Driver.diag = []

(* The compile body, run by [compile] / [compile_safe] inside a scratch
   registry.  Note the ICE-safety property [compile_safe] relies on:
   [Cache.store] is the last thing that happens on the miss path, so a
   unit that dies with an escaped exception can never have been cached. *)
let compile_inner t ~name source =
  let options = Invocation.to_driver_options t.invocation in
      match t.cache with
      | None ->
        { c_result = Driver.compile ~options ~name source; c_cache_hit = false }
      | Some cache -> (
        let pre = Driver.preprocess ~options ~name source in
        let key =
          Cache.key
            ~fingerprint:(Invocation.fingerprint t.invocation)
            pre.Driver.pp_items
        in
        match Cache.find cache key with
        | Some (ir, unroll_stats, stats) ->
          {
            c_result =
              {
                Driver.diag = pre.Driver.pp_diag;
                srcmgr = pre.Driver.pp_srcmgr;
                tu = None; (* parse and sema were skipped *)
                ir = Some ir;
                codegen_error = None;
                timings =
                  {
                    Driver.t_lex = pre.Driver.pp_t_lex;
                    t_preprocess = pre.Driver.pp_t_preprocess;
                    t_parse_sema = 0.0;
                    t_codegen = 0.0;
                    t_passes = 0.0;
                  };
                unroll_stats;
                stats;
              };
            c_cache_hit = true;
          }
        | None ->
          let r = Driver.compile_preprocessed pre in
          (match r.Driver.ir with
          | Some ir when cacheable r ->
            Cache.store cache key ~ir ~unroll_stats:r.Driver.unroll_stats
              ~stats:r.Driver.stats
          | _ -> ());
          { c_result = r; c_cache_hit = false })

let compile t ?(name = "input.c") source =
  in_scratch_registry t (fun () -> compile_inner t ~name source)

(* ---- fault containment ---------------------------------------------------- *)

type failure = {
  f_ice : Crash_recovery.ice;
  f_reproducer : string option; (* bundle directory, when one was written *)
}

let ices_counter =
  Stats.counter ~group:"driver" ~name:"ices"
    ~desc:"units contained after an internal compiler error" ()

let contain t ~name ~source f =
  (* The CrashRecoveryContext analogue.  Everything — including the
     [Crash_recovery.run] barrier itself — happens inside the scratch
     registry, so a unit that ICEs still merges whatever counters it
     accrued into the instance registry, and the registry scoping is
     restored by [with_registry]'s own protection. *)
  in_scratch_registry t (fun () ->
      match Crash_recovery.run f with
      | Ok v -> Ok v
      | Error ice ->
        Stats.incr ices_counter;
        let reproducer =
          if t.invocation.Invocation.gen_reproducer then
            match
              Reproducer.write ~invocation:t.invocation ~name ~source ~ice
            with
            | Ok dir -> Some dir
            | Error _ -> None
          else None
        in
        Error { f_ice = ice; f_reproducer = reproducer })

let compile_safe t ?(name = "input.c") source =
  contain t ~name ~source (fun () -> compile_inner t ~name source)

let frontend_safe t ?(name = "input.c") source =
  contain t ~name ~source (fun () ->
      Driver.frontend
        ~options:(Invocation.to_driver_options t.invocation)
        ~name source)

let frontend t ?name source =
  in_scratch_registry t (fun () ->
      Driver.frontend ~options:(Invocation.to_driver_options t.invocation)
        ?name source)

let run t ?config result = in_registry t (fun () -> Driver.run ?config result)

let compile_and_run t ?config ?name source =
  let { c_result; _ } = compile t ?name source in
  if Diag.has_errors c_result.Driver.diag then
    Error ("compilation failed:\n" ^ Diag.render_all c_result.Driver.diag)
  else run t ?config c_result

let stats t = Stats.snapshot ~registry:t.registry ()
let render_stats t = Stats.render_stats ~registry:t.registry ()
let render_time_report t = Stats.render_time_report ~registry:t.registry ()

(* -print-stats / -ftime-report on process exit, the Clang way — but per
   instance: each instance renders its own registry, at most once, and
   only if its invocation asked for a report.  [exit_reports] consumes
   the report, so stacking [report_at_exit] with an explicit earlier
   report cannot double-print (the PR-1 CLI printed the global registry
   from every at_exit hook it had ever registered). *)
let exit_reports t =
  if t.exit_report_taken then ""
  else begin
    t.exit_report_taken <- true;
    let buf = Buffer.create 256 in
    if t.invocation.Invocation.time_report then
      Buffer.add_string buf (render_time_report t);
    if t.invocation.Invocation.print_stats then
      Buffer.add_string buf (render_stats t);
    Buffer.contents buf
  end

let report_at_exit t =
  if t.invocation.Invocation.time_report || t.invocation.Invocation.print_stats
  then at_exit (fun () -> prerr_string (exit_reports t))
