(** The [mccd] wire protocol: versioned, length-prefixed frames
    ({!Mc_support.Binio}, magic ["MCCD"]) over a Unix-domain socket,
    carrying marshalled request/response values.

    One connection, one request.  The request is the client's
    {!Invocation} plus its units with content digests (re-verified
    server-side); the response carries per-unit outcomes — rendered
    diagnostics, a marshalled IR module the client unmarshals to run or
    print locally, the per-stage cache trace — plus a server-side stats
    snapshot, or a protocol-level rejection.  Cross-version talk is
    rejected by the frame header before any unmarshalling. *)

val magic : string
val version : int

val default_socket : unit -> string
(** [$MCCD_SOCKET] when set, else [<tmpdir>/mccd-<uid>.sock]. *)

type request_unit = {
  q_name : string;
  q_source : string;
  q_digest : string;  (** content digest of [q_source], verified server-side *)
}

type compile_request = {
  q_invocation : Invocation.t;
  q_units : request_unit list;
}

type transform_request = {
  t_invocation : Invocation.t;
      (** must carry a loaded [transfo_script] ([Source], not [File]) *)
  t_name : string;
  t_source : string;
  t_digest : string;
}

type analyze_request = {
  a_invocation : Invocation.t;
      (** carries the analysis pass selection ([analyze]) and format *)
  a_name : string;
  a_source : string;
  a_digest : string;
}

type request =
  | Req_compile of compile_request  (** compile units, return IR (v1 shape) *)
  | Req_transform of transform_request
      (** apply the invocation's transfo script to one unit and return
          the rewritten source — no compilation of the result *)
  | Req_analyze of analyze_request
      (** v4: run the dataflow analyses over one unit against the
          daemon's warm per-function analysis cache *)
  | Req_ping
      (** v3 health check: answered with {!Resp_pong} without touching
          the pipeline *)

val unit_digest : string -> string

val request_of_units : Invocation.t -> (string * string) list -> request
(** Builds a [Req_compile] from [(name, source)] pairs, computing
    digests. *)

val request_of_transform : Invocation.t -> name:string -> string -> request
(** Builds a [Req_transform] for one source, computing its digest. *)

val request_of_analyze : Invocation.t -> name:string -> string -> request
(** Builds a [Req_analyze] for one source, computing its digest. *)

type response_unit = {
  r_name : string;
  r_outcome : outcome;
  r_trace : Pipeline.trace;
  r_cache_hit : bool;  (** whole-pipeline hit against the daemon's cache *)
  r_wall : float;  (** server-side seconds compiling this unit *)
}

and outcome =
  | R_ok of {
      ok_diag : string;
      ok_errors : bool;
      ok_ir : string option;  (** marshalled {!Mc_ir.Ir.modul} *)
      ok_codegen_error : string option;
    }
  | R_ice of {
      ice_phase : string;
      ice_exn : string;
      ice_location : string option;
      ice_reproducer : string option;
    }

type response =
  | Resp_units of {
      p_units : response_unit list;
      p_stats : Mc_support.Stats.snapshot;
      p_wall : float;
    }
  | Resp_transformed of {
      p_result : (transformed, string) result;
          (** [Error]: rendered script-level failure (parse, target
              resolution, semantic check) *)
      p_stats : Mc_support.Stats.snapshot;
      p_wall : float;
    }
  | Resp_analysis of {
      p_result : (analysis, string) result;
          (** [Error]: the unit failed to compile far enough to analyse
              — rendered diagnostics or a codegen refusal *)
      p_stats : Mc_support.Stats.snapshot;
      p_wall : float;
    }  (** v4 answer to {!Req_analyze}. *)
  | Resp_rejected of string
  | Resp_busy of { queue_depth : int; retry_after : float }
      (** v3 load shedding: the daemon's bounded queue was full, so the
          connection was accepted and immediately shed.  [retry_after]
          is a backoff hint in seconds; clients with retries left wait
          and try again, others fall back to the in-process pipeline. *)
  | Resp_pong of { pong_queue_depth : int; pong_capacity : int }
      (** v3 answer to {!Req_ping}: live queue occupancy. *)

and transformed = {
  x_source : string;  (** the rewritten program *)
  x_trace : string;  (** rendered step trace *)
  x_cache_hit : bool;  (** served from the daemon's transfo stage cache *)
}

and analysis = {
  an_text : string;  (** {!Mc_analysis.Report.render_text} *)
  an_json : string;  (** {!Mc_analysis.Report.render_json} *)
  an_findings : int;  (** drives the client's exit code *)
  an_cache_hit : bool;  (** every stage up to the analysis was reused *)
}

val write_request : out_channel -> request -> unit
val read_request : in_channel -> (request, string) result
val write_response : out_channel -> response -> unit
val read_response : in_channel -> (response, string) result
