(** The [mccd] wire protocol: versioned, length-prefixed frames
    ({!Mc_support.Binio}, magic ["MCCD"]) over a Unix-domain socket,
    carrying marshalled request/response values.

    One connection, one request.  The request is the client's
    {!Invocation} plus its units with content digests (re-verified
    server-side); the response carries per-unit outcomes — rendered
    diagnostics, a marshalled IR module the client unmarshals to run or
    print locally, the per-stage cache trace — plus a server-side stats
    snapshot, or a protocol-level rejection.  Cross-version talk is
    rejected by the frame header before any unmarshalling. *)

val magic : string
val version : int

val default_socket : unit -> string
(** [$MCCD_SOCKET] when set, else [<tmpdir>/mccd-<uid>.sock]. *)

type request_unit = {
  q_name : string;
  q_source : string;
  q_digest : string;  (** content digest of [q_source], verified server-side *)
}

type request = { q_invocation : Invocation.t; q_units : request_unit list }

val unit_digest : string -> string

val request_of_units : Invocation.t -> (string * string) list -> request
(** Builds a request from [(name, source)] pairs, computing digests. *)

type response_unit = {
  r_name : string;
  r_outcome : outcome;
  r_trace : Pipeline.trace;
  r_cache_hit : bool;  (** whole-pipeline hit against the daemon's cache *)
  r_wall : float;  (** server-side seconds compiling this unit *)
}

and outcome =
  | R_ok of {
      ok_diag : string;
      ok_errors : bool;
      ok_ir : string option;  (** marshalled {!Mc_ir.Ir.modul} *)
      ok_codegen_error : string option;
    }
  | R_ice of {
      ice_phase : string;
      ice_exn : string;
      ice_location : string option;
      ice_reproducer : string option;
    }

type response =
  | Resp_units of {
      p_units : response_unit list;
      p_stats : Mc_support.Stats.snapshot;
      p_wall : float;
    }
  | Resp_rejected of string

val write_request : out_channel -> request -> unit
val read_request : in_channel -> (request, string) result
val write_response : out_channel -> response -> unit
val read_response : in_channel -> (response, string) result
