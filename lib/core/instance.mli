(** The [clang::CompilerInstance] analogue: one compilation context that
    owns its own {!Mc_support.Stats} registry (and optionally a stage
    cache), making the driver reentrant — any number of instances can
    coexist in one process, sequentially or on separate domains, without
    sharing mutable state.

    Every pipeline entry point here scopes the calling domain to the
    instance's registry for the duration of the call, so stage timers,
    layer counters, interpreter statistics and per-stage cache counters
    all land in (and render from) {e this} instance, never the
    process-global default registry. *)

type t

val create : ?cache:Cache.t -> Invocation.t -> t
(** A fresh instance with a zeroed registry.  When the invocation has
    [cache_enabled] (or [incremental]) and no [?cache] is supplied, a
    private stage cache is created; pass an explicit [?cache] to share
    one across instances (as {!Batch.compile} does across its
    workers). *)

val invocation : t -> Invocation.t
val registry : t -> Mc_support.Stats.Registry.t
val cache : t -> Cache.t option

val in_registry : t -> (unit -> 'a) -> 'a
(** Runs a thunk scoped to the instance registry — for driving pipeline
    pieces not wrapped here (e.g. interpreting a result so that
    [interp.*] counters land in the instance). *)

type compilation = {
  c_result : Driver.result;
  c_cache_hit : bool;
      (** Whole-pipeline hit: every stage from the parser onward was
          served from the stage cache. *)
  c_trace : Pipeline.trace;
      (** Per-stage outcomes, e.g. lex:run pp:run ast:hit ir:hit
          optir:hit for a comment-only edit. *)
  c_fn_trace : (string * Pipeline.outcome) list;
      (** Function-granular slice outcomes (see
          {!Pipeline.exec.x_fn_trace}): which top-level definitions were
          adopted from per-function artifacts versus re-parsed.  Empty
          on the unit-granular path. *)
}

val compile : t -> ?name:string -> string -> compilation
(** {!Pipeline.execute} under the instance registry, consulting the
    stage cache when the instance has one.  Each stage is memoized
    independently: a same-source recompile hits every stage, a
    comment-only edit re-runs lex/pp and reuses AST, IR and OptIR, and
    an option change invalidates exactly the stages whose fingerprint
    slice it touches.  Cached artifacts carry no diagnostics (only
    diagnostic-free stage outputs are stored), and a hit at the AST
    stage still yields [tu = Some _] — a fresh unmarshalled copy.

    The instance registry is cumulative: the pipeline runs each
    compilation in its own scoped registry and merges it into the
    instance registry afterwards, so counters from repeated [compile]
    calls — including the per-stage [cache.*] counters — add up rather
    than overwrite. *)

val recompile : t -> ?name:string -> string -> compilation
(** Incremental recompilation: exactly {!compile}, but guarantees the
    instance has a stage cache (creating a private one on first use even
    when the invocation did not enable caching).  Call once for the cold
    build, then again after each edit; the returned [c_trace] shows
    which stages the edit actually re-ran. *)

val frontend :
  t -> ?name:string -> string ->
  Mc_diag.Diagnostics.t * Mc_ast.Tree.translation_unit
(** {!Driver.frontend} under the instance registry. *)

(** {1 Fault containment}

    The [clang::CrashRecoveryContext] analogue: the [_safe] entry points
    convert {e any} exception escaping the pipeline — including
    [Stack_overflow] and [Out_of_memory] — into a structured {!failure}
    instead of letting it unwind the embedder, so one broken unit cannot
    take down a batch or an interactive session. *)

type failure = {
  f_ice : Mc_support.Crash_recovery.ice;
    (* phase, exception, source watermark, backtrace *)
  f_reproducer : string option;
    (* ICE bundle directory ({!Reproducer}), when one was written *)
}

val compile_safe :
  t -> ?name:string -> string -> (compilation, failure) result
(** {!compile} with fault containment.  On an ICE: the [driver.ices]
    counter is bumped, a reproducer bundle is written (unless the
    invocation has [gen_reproducer = false]), whatever statistics the
    unit accrued before dying still merge into the instance registry —
    and no artifact of the stage that died was stored, since storing is
    the last act of each successfully executed stage. *)

val frontend_safe :
  t -> ?name:string -> string ->
  (Mc_diag.Diagnostics.t * Mc_ast.Tree.translation_unit, failure) result
(** {!frontend} with the same containment. *)

val run :
  t -> ?config:Mc_interp.Interp.config -> Driver.result ->
  (Mc_interp.Interp.outcome, string) Result.t
(** {!Driver.run} under the instance registry, so interpreter counters
    accrue to the instance. *)

val compile_and_run :
  t -> ?config:Mc_interp.Interp.config -> ?name:string -> string ->
  (Mc_interp.Interp.outcome, string) Result.t

val stats : t -> Mc_support.Stats.snapshot
val render_stats : t -> string
val render_time_report : t -> string

val exit_reports : t -> string
(** The reports the invocation requested ([-ftime-report] /
    [-print-stats]) rendered from the instance registry — at most once:
    subsequent calls return [""].  This is the per-instance fix for the
    PR-1 CLI bug where every compile in a process re-registered an
    [at_exit] hook over the global registry and exit double-reported. *)

val report_at_exit : t -> unit
(** Registers an [at_exit] hook printing {!exit_reports} to stderr; a
    no-op for instances that requested no report.  Combined with the
    consuming semantics of {!exit_reports}, reports print exactly once
    per requesting instance however many hooks or explicit calls race
    for them. *)
