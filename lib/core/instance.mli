(** The [clang::CompilerInstance] analogue: one compilation context that
    owns its own {!Mc_support.Stats} registry (and optionally a compile
    cache), making the driver reentrant — any number of instances can
    coexist in one process, sequentially or on separate domains, without
    sharing mutable state.

    Every pipeline entry point here scopes the calling domain to the
    instance's registry for the duration of the call, so stage timers,
    layer counters, interpreter statistics and cache hit/miss counts all
    land in (and render from) {e this} instance, never the process-global
    default registry. *)

type t

val create : ?cache:Cache.t -> Invocation.t -> t
(** A fresh instance with a zeroed registry.  When the invocation has
    [cache_enabled] and no [?cache] is supplied, a private cache is
    created; pass an explicit [?cache] to share one across instances
    (as {!Batch.compile} does across its workers). *)

val invocation : t -> Invocation.t
val registry : t -> Mc_support.Stats.Registry.t
val cache : t -> Cache.t option

val in_registry : t -> (unit -> 'a) -> 'a
(** Runs a thunk scoped to the instance registry — for driving pipeline
    pieces not wrapped here (e.g. interpreting a result so that
    [interp.*] counters land in the instance). *)

type compilation = { c_result : Driver.result; c_cache_hit : bool }

val compile : t -> ?name:string -> string -> compilation
(** {!Driver.compile} under the instance registry, consulting the
    compile cache when the instance has one.  On a hit, parse, sema,
    codegen and passes are skipped: the result carries a fresh copy of
    the cached IR, the cached unroll/counter snapshot, [tu = None], and
    zero back-end stage timings.  Only diagnostics-free successful
    compilations are cached (a hit replays no warnings).

    The instance registry is cumulative: each compilation runs in a
    scratch registry (which {!Driver.compile} resets at the start of
    every unit) and is merged into the instance registry afterwards, so
    counters from repeated [compile] calls — including [cache.hits] /
    [cache.misses] — add up rather than overwrite. *)

val frontend :
  t -> ?name:string -> string ->
  Mc_diag.Diagnostics.t * Mc_ast.Tree.translation_unit
(** {!Driver.frontend} under the instance registry. *)

(** {1 Fault containment}

    The [clang::CrashRecoveryContext] analogue: the [_safe] entry points
    convert {e any} exception escaping the pipeline — including
    [Stack_overflow] and [Out_of_memory] — into a structured {!failure}
    instead of letting it unwind the embedder, so one broken unit cannot
    take down a batch or an interactive session. *)

type failure = {
  f_ice : Mc_support.Crash_recovery.ice;
    (* phase, exception, source watermark, backtrace *)
  f_reproducer : string option;
    (* ICE bundle directory ({!Reproducer}), when one was written *)
}

val compile_safe :
  t -> ?name:string -> string -> (compilation, failure) result
(** {!compile} with fault containment.  On an ICE: the [driver.ices]
    counter is bumped, a reproducer bundle is written (unless the
    invocation has [gen_reproducer = false]), whatever statistics the
    unit accrued before dying still merge into the instance registry —
    and the unit is guaranteed absent from the compile cache, since
    storing is the final step of a successful compile. *)

val frontend_safe :
  t -> ?name:string -> string ->
  (Mc_diag.Diagnostics.t * Mc_ast.Tree.translation_unit, failure) result
(** {!frontend} with the same containment. *)

val run :
  t -> ?config:Mc_interp.Interp.config -> Driver.result ->
  (Mc_interp.Interp.outcome, string) Result.t
(** {!Driver.run} under the instance registry, so interpreter counters
    accrue to the instance. *)

val compile_and_run :
  t -> ?config:Mc_interp.Interp.config -> ?name:string -> string ->
  (Mc_interp.Interp.outcome, string) Result.t

val stats : t -> Mc_support.Stats.snapshot
val render_stats : t -> string
val render_time_report : t -> string

val exit_reports : t -> string
(** The reports the invocation requested ([-ftime-report] /
    [-print-stats]) rendered from the instance registry — at most once:
    subsequent calls return [""].  This is the per-instance fix for the
    PR-1 CLI bug where every compile in a process re-registered an
    [at_exit] hook over the global registry and exit double-reported. *)

val report_at_exit : t -> unit
(** Registers an [at_exit] hook printing {!exit_reports} to stderr; a
    no-op for instances that requested no report.  Combined with the
    consuming semantics of {!exit_reports}, reports print exactly once
    per requesting instance however many hooks or explicit calls race
    for them. *)
