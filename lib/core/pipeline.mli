(** The stage-graph pipeline: the paper's Fig. 1 layer stack made
    explicit.

    Compilation is a linear DAG of typed stages —

    {v Source -> PPTokens -> AST(+Sema) -> IR -> OptIR v}

    — each producing an artifact addressed by a content fingerprint: the
    hash of the stage's input artifact plus the stage-relevant slice of
    the options ({!option_slice}).  Given a stage {!Cache}, each stage
    first consults the cache under its fingerprint and only executes on a
    miss; because the AST stage is content-addressed on the
    {e preprocessed stream}, a comment-only edit re-runs lex/pp but
    reuses everything from the AST onward, while an option change
    invalidates exactly the stages whose slice mentions it.

    Only diagnostic-free stage outputs are ever cached, and storing is
    the last act of an executed stage — a compilation that ICEs can never
    have polluted the cache.  [-ferror-limit] is deliberately in no
    slice for the same reason: a diagnostic-free run is identical under
    any error limit.

    Each execution runs in its own scoped stats registry (merged into
    the caller's on the way out, even on an ICE), so [result.stats] is
    exactly this compilation's events and concurrent domains never
    clobber an embedder's counters.

    {!Driver.compile} is a thin wrapper over {!execute}; {!Instance} and
    {!Batch} add crash containment and parallelism on top. *)

type options = {
  use_irbuilder : bool;  (** IRBuilder sema/codegen mode (paper §5). *)
  optimize : bool;  (** run the -O1 pass pipeline (else -O0). *)
  fold : bool;  (** constant-fold during codegen. *)
  verify_ir : bool;  (** run the IR verifier after codegen and passes. *)
  defines : (string * string) list;  (** -D predefines, in order. *)
  extra_files : (string * string) list;  (** virtual #include files. *)
  error_limit : int;  (** -ferror-limit. *)
  bracket_depth : int;  (** parser nesting limit. *)
  loop_nest_limit : int;  (** sema perfect-nest analysis limit. *)
  transfo_script : string option;
      (** transformation-script contents ({!Mc_transfo.Script}); when
          present, the transfo pre-stage rewrites the source before the
          lexer ever sees it. *)
  transfo_check : bool;
      (** run the differential semantic oracle after every script step
          (on by default). *)
  analyze : string list option;
      (** run the {!Mc_analysis} passes over the pre-pass IR: [Some []]
          selects every pass, [Some ps] a subset (unknown names are
          ignored).  The report lands in [result.analysis] and is cached
          per function on the granular path. *)
}

val default_options : options

type timings = {
  t_lex : float;
  t_preprocess : float;
  t_parse_sema : float;
  t_codegen : float;
  t_passes : float;
}
(** Wall-clock seconds actually spent executing each stage in this
    compilation; a stage served from the cache contributes 0. *)

type result = {
  diag : Mc_diag.Diagnostics.t;
  srcmgr : Mc_srcmgr.Source_manager.t;
  tu : Mc_ast.Tree.translation_unit option;
  ir : Mc_ir.Ir.modul option;
  codegen_error : string option;
  timings : timings;
  unroll_stats : Mc_passes.Loop_unroll.stats;
  stats : Mc_support.Stats.snapshot;
  transformed : (string * string) option;
      (** When a transfo script ran (or hit the cache): the rewritten
          source and the rendered step trace. *)
  analysis : Mc_analysis.Report.t option;
      (** When [options.analyze] was set and IR was produced: the
          dataflow analysis report. *)
}

type stage = Transfo | Lex | Preprocess | Parse_sema | Codegen | Passes

val stages : stage list
(** In pipeline order. *)

val stage_name : stage -> string
(** -ftime-report / crash-phase label ("transfo", "lex", "preprocess",
    "parse-sema", "codegen", "passes") — stable across releases. *)

val stage_tag : stage -> string
(** Artifact tag in the stage cache and its counters ("transfo", "lex",
    "pp", "ast", "ir", "optir"). *)

type outcome = Executed | Cache_hit | Partial
(** [Partial] is the function-granular middle ground: the unit-level
    artifact missed but at least one per-function artifact hit, so the
    stage re-ran only the changed slices and relinked the rest. *)

type trace = (stage * outcome) list
(** What happened to each stage reached by an execution, in pipeline
    order.  Stages after an error stop (or a codegen refusal) are
    absent. *)

val render_trace : trace -> string
(** E.g. ["lex:run pp:run ast:hit ir:hit optir:hit"]; a body edit on a
    warm cache renders ["lex:run pp:run ast:partial ir:partial
    optir:partial"]. *)

val render_fn_trace : (string * outcome) list -> string
(** Render {!exec.x_fn_trace} the same way, one token per top-level
    slice: e.g. ["<decl>:hit f:hit main:run"] after an edit inside
    [main]'s body. *)

type exec = {
  x_result : result;
  x_trace : trace;
  x_full_hit : bool;
      (** Every stage from the parser onward was served from the cache —
          the whole-pipeline notion of a cache hit that [cache.hits]
          counts and {!Batch} reports. *)
  x_fn_trace : (string * outcome) list;
      (** Function-granular slice outcomes in unit order (definition
          name, or ["<decl>"] for non-definition slices): [Cache_hit]
          when the slice's sema'd AST was adopted from a "fnast"
          artifact, [Executed] when it was re-parsed.  Empty whenever
          the unit-granular path ran (uncached execution, ineligible
          unit, or a whole-unit hit that never consulted slices). *)
}

val option_slice : stage -> options -> string
(** The canonical rendering of the slice of [options] that can affect a
    stage's output — the part of the fingerprint that makes, e.g., a
    [loop_nest_limit] change invalidate the AST stage (and therefore
    everything downstream) while leaving lex/pp artifacts reusable. *)

val source_fingerprint : name:string -> string -> string

val stage_fingerprint : stage -> options -> input:string -> string
(** [stage_fingerprint st o ~input] where [input] is the fingerprint (or
    content digest) of the stage's input artifact. *)

val execute :
  ?cache:Cache.t -> ?options:options -> ?name:string -> string -> exec
(** Run the pipeline over a source string, consulting [cache] at every
    stage when given.  Never raises on invalid input (diagnostics land
    in [x_result.diag]); lexer/parser/sema/codegen bugs may raise — see
    {!Instance} for containment. *)

val frontend :
  ?options:options ->
  ?name:string ->
  string ->
  Mc_diag.Diagnostics.t * Mc_ast.Tree.translation_unit
(** Source through the AST stage only (-fsyntax-only / -ast-dump); never
    cached.  When the options carry a [transfo_script], the script is
    applied first and the AST is that of the rewritten program; a failed
    script yields an empty translation unit plus the error diagnostic. *)

val transform :
  ?cache:Cache.t ->
  ?options:options ->
  ?name:string ->
  script:string ->
  string ->
  (outcome * string * string, string) Result.t
(** The transfo pre-stage alone (no compilation of the result): applies
    [script] to the source and returns
    [(cache outcome, rewritten source, rendered step trace)], consulting
    and filling the ["transfo"] stage of [cache] when given.  The error
    string is fully rendered and names the failing script line. *)

val reset_compilation_state : unit -> unit
(** Rewind every domain-local id/gensym generator, making the next
    compilation's ASTs and IR byte-reproducible.  {!execute} calls this
    itself; exposed for tests that drive layers directly. *)
