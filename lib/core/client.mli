(** The [mcc --daemon] client: one-connection-one-request round-trips to
    a running [mccd] over the {!Protocol} framing, governed by a
    resilience {!policy} — connect/send/receive deadlines, and bounded
    retries with exponential backoff + deterministic jitter when the
    daemon sheds load with [Resp_busy].  Any failure short of a
    well-formed response (including exhausted retries) is an [Error]
    string; callers treat that as "no usable daemon" and fall back to
    the in-process pipeline. *)

val default_socket : unit -> string
(** Same resolution as the server: [$MCCD_SOCKET] or
    [<tmpdir>/mccd-<uid>.sock]. *)

type policy = {
  connect_timeout : float;  (** seconds to establish the connection *)
  send_timeout : float;
      (** [SO_SNDTIMEO]: bounds writing the request to a daemon that
          reads nothing — without it a large request blocks forever *)
  receive_timeout : float;
      (** [SO_RCVTIMEO]: bounds server stall, not compile time *)
  retries : int;  (** max retries after [Resp_busy] sheds *)
  backoff : float;  (** base backoff in seconds, doubled per attempt *)
  backoff_max : float;
  jitter_seed : int;
      (** deterministic jitter stream; distinct seeds de-synchronise
          concurrent clients *)
}

val default_policy : policy
(** 5 s connect, 30 s send, 120 s receive, 3 retries, 20 ms base
    backoff capped at 1 s, seed 0. *)

val policy_with : ?timeout:float -> ?retries:int -> unit -> policy
(** {!default_policy} with [mcc --daemon-timeout] (applied to all three
    deadlines, connect clamped down) and [--daemon-retries] applied. *)

type reply = {
  response : Protocol.response;
  busy_retries : int;
      (** [Resp_busy] sheds absorbed by retrying before this response *)
}

type outcome =
  | Served  (** first attempt *)
  | Shed_then_served of int  (** served after this many busy retries *)
  | Fell_back of string  (** no usable daemon; in-process pipeline ran *)

val outcome_of_reply : reply -> outcome
(** [Served] or [Shed_then_served]; [Fell_back] is the caller's to
    construct (via {!note_fallback}) when the round-trip [Error]s. *)

val note_fallback : string -> outcome
(** Bumps the [client.fallbacks] counter and returns
    [Fell_back reason]. *)

val render_outcome : outcome -> string

val roundtrip :
  ?policy:policy ->
  ?socket_path:string ->
  Protocol.request ->
  (reply, string) result
(** Connects, sends, awaits — retrying with backoff on [Resp_busy]
    (honouring its [retry_after] hint as a floor) up to
    [policy.retries] times.  A [reply] never carries [Resp_busy]:
    exhausted retries are an [Error]. *)

val compile :
  ?policy:policy ->
  ?socket_path:string ->
  Invocation.t ->
  (string * string) list ->
  (reply, string) result
(** [compile inv units] builds the request from [(name, source)] pairs
    (digests included) and round-trips it. *)

val transform :
  ?policy:policy ->
  ?socket_path:string ->
  Invocation.t ->
  name:string ->
  string ->
  (reply, string) result
(** [transform inv ~name source] round-trips a [Req_transform]: the
    daemon applies [inv]'s transfo script to [source] and replies with
    [Resp_transformed].  [inv.transfo_script] must already be loaded
    ({!Invocation.load_transfo_script}) so the script travels by
    value. *)

val analyze :
  ?policy:policy ->
  ?socket_path:string ->
  Invocation.t ->
  name:string ->
  string ->
  (reply, string) result
(** [analyze inv ~name source] round-trips a [Req_analyze]: the daemon
    compiles [source] against its warm stage cache, runs [inv]'s
    analysis pass selection, and replies with [Resp_analysis] carrying
    both renderings of the report. *)

val ping :
  ?policy:policy ->
  ?socket_path:string ->
  unit ->
  (int * int, string) result
(** Health check: [Ok (queue_depth, queue_capacity)] from a live
    daemon's [Resp_pong]. *)

val absorb_snapshot : Mc_support.Stats.snapshot -> unit
(** Folds the server's counter snapshot into the {e current} registry so
    [-print-stats] stays transparent in daemon mode. *)

val ir_of_response_unit : Protocol.response_unit -> Mc_ir.Ir.modul option
(** Unmarshals the unit's IR payload, [None] on any decode failure. *)
