(** The [mcc --daemon] client: one-connection-one-request round-trips to
    a running [mccd] over the {!Protocol} framing.  Any failure short of
    a well-formed response is an [Error] string; callers treat that as
    "no usable daemon" and fall back to the in-process pipeline. *)

val default_socket : unit -> string
(** Same resolution as the server: [$MCCD_SOCKET] or
    [<tmpdir>/mccd-<uid>.sock]. *)

val roundtrip :
  ?socket_path:string ->
  Protocol.request ->
  (Protocol.response, string) result

val compile :
  ?socket_path:string ->
  Invocation.t ->
  (string * string) list ->
  (Protocol.response, string) result
(** [compile inv units] builds the request from [(name, source)] pairs
    (digests included) and round-trips it. *)

val transform :
  ?socket_path:string ->
  Invocation.t ->
  name:string ->
  string ->
  (Protocol.response, string) result
(** [transform inv ~name source] round-trips a [Req_transform]: the
    daemon applies [inv]'s transfo script to [source] and replies with
    [Resp_transformed].  [inv.transfo_script] must already be loaded
    ({!Invocation.load_transfo_script}) so the script travels by
    value. *)

val absorb_snapshot : Mc_support.Stats.snapshot -> unit
(** Folds the server's counter snapshot into the {e current} registry so
    [-print-stats] stays transparent in daemon mode. *)

val ir_of_response_unit : Protocol.response_unit -> Mc_ir.Ir.modul option
(** Unmarshals the unit's IR payload, [None] on any decode failure. *)
