(* CompilerInvocation analogue: a pure, immutable description of one
   driver run — what to compile and how — separated from the mutable
   pipeline state that Instance owns.  Parsing from argv lives here so
   the CLI, the tests and embedders all share one flag grammar. *)

type action =
  | Run
  | Ast_dump
  | Ast_dump_shadow
  | Ast_print
  | Print_transformed
  | Emit_ir
  | Emit_transformed
  | Syntax_only
  | Analyze

type input = File of string | Source of { name : string; contents : string }

type t = {
  inputs : input list;
  action : action;
  use_irbuilder : bool;
  opt_level : int;
  fold : bool;
  verify_ir : bool;
  defines : (string * string) list;
  extra_files : (string * string) list;
  jobs : int;
  cache_enabled : bool;
  cache_dir : string option;
  incremental : bool;
  daemon : bool;
  daemon_socket : string option;
  daemon_timeout : float option;
  daemon_retries : int option;
  num_threads : int;
  stage_timings : bool;
  time_report : bool;
  print_stats : bool;
  error_limit : int;
  bracket_depth : int;
  loop_nest_limit : int;
  transfo_script : input option;
  transfo_check : bool;
  analyze : string list option; (* Some [] = every analysis pass *)
  analyze_format : string; (* "text" | "json"; presentation only *)
  gen_reproducer : bool;
}

let default =
  {
    inputs = [];
    action = Run;
    use_irbuilder = false;
    opt_level = 1;
    fold = true;
    verify_ir = true;
    defines = [];
    extra_files = [];
    jobs = 1;
    cache_enabled = false;
    cache_dir = None;
    incremental = false;
    daemon = false;
    daemon_socket = None;
    (* None: the client's default resilience policy applies. *)
    daemon_timeout = None;
    daemon_retries = None;
    num_threads = 4;
    stage_timings = false;
    time_report = false;
    print_stats = false;
    (* Resource limits default to the driver's, so
       [to_driver_options default = Driver.default_options] holds. *)
    error_limit = Driver.default_options.Driver.error_limit;
    bracket_depth = Driver.default_options.Driver.bracket_depth;
    loop_nest_limit = Driver.default_options.Driver.loop_nest_limit;
    transfo_script = None;
    transfo_check = true;
    analyze = None;
    analyze_format = "text";
    gen_reproducer = true;
  }

let input_name = function
  | File path -> path
  | Source { name; _ } -> name

let read_input = function
  | Source { name; contents } -> Ok (name, contents)
  | File "-" -> Ok ("<stdin>", In_channel.input_all In_channel.stdin)
  | File path -> (
    match In_channel.with_open_text path In_channel.input_all with
    | contents -> Ok (path, contents)
    | exception Sys_error msg -> Error msg)

let load_transfo_script inv =
  match inv.transfo_script with
  | None | Some (Source _) -> Ok inv
  | Some (File _ as f) -> (
    match read_input f with
    | Ok (name, contents) ->
      Ok { inv with transfo_script = Some (Source { name; contents }) }
    | Error msg -> Error msg)

let to_driver_options inv =
  {
    Driver.use_irbuilder = inv.use_irbuilder;
    optimize = inv.opt_level > 0;
    fold = inv.fold;
    verify_ir = inv.verify_ir;
    defines = inv.defines;
    extra_files = inv.extra_files;
    error_limit = inv.error_limit;
    bracket_depth = inv.bracket_depth;
    loop_nest_limit = inv.loop_nest_limit;
    transfo_script =
      (match inv.transfo_script with
      | None -> None
      | Some (Source { contents; _ }) -> Some contents
      | Some (File _ as f) -> (
        match read_input f with Ok (_, c) -> Some c | Error _ -> None));
    transfo_check = inv.transfo_check;
    analyze = inv.analyze;
  }

let of_driver_options ?(inputs = []) (o : Driver.options) =
  {
    default with
    inputs;
    use_irbuilder = o.Driver.use_irbuilder;
    opt_level = (if o.Driver.optimize then 1 else 0);
    fold = o.Driver.fold;
    verify_ir = o.Driver.verify_ir;
    defines = o.Driver.defines;
    extra_files = o.Driver.extra_files;
    error_limit = o.Driver.error_limit;
    bracket_depth = o.Driver.bracket_depth;
    loop_nest_limit = o.Driver.loop_nest_limit;
    transfo_script =
      Option.map
        (fun contents -> Source { name = "<script>"; contents })
        o.Driver.transfo_script;
    transfo_check = o.Driver.transfo_check;
    analyze = o.Driver.analyze;
  }

let load_inputs inv =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | input :: rest -> (
      match read_input input with
      | Ok pair -> go (pair :: acc) rest
      | Error msg -> Error msg)
  in
  go [] inv.inputs

(* The backend-relevant configuration, canonically rendered.  Inputs,
   defines and extra files are deliberately absent: those shape the
   preprocessed token stream, which the cache fingerprints directly
   (content addressing), so e.g. an unused macro redefinition still
   hits while a used one misses. *)
let fingerprint inv =
  (* The limits are part of the key: raising -ferror-limit can change the
     diagnostic stream, so a hit must not replay the old one. *)
  let transfo =
    match inv.transfo_script with
    | None -> "-"
    | Some (File path) -> "file:" ^ path
    | Some (Source { contents; _ }) -> Mc_transfo.Script.canonical contents
  in
  let analyze =
    (* format is presentation-only; the pass selection is what keys the
       cached report fragments *)
    match inv.analyze with
    | None -> "-"
    | Some ps -> String.concat "," ps
  in
  Printf.sprintf
    "irbuilder=%b;optimize=%b;fold=%b;verify=%b;elimit=%d;bdepth=%d;nlimit=%d;transfo=%s;tcheck=%b;analyze=%s"
    inv.use_irbuilder (inv.opt_level > 0) inv.fold inv.verify_ir
    inv.error_limit inv.bracket_depth inv.loop_nest_limit transfo
    inv.transfo_check analyze

(* ---- argv parsing ------------------------------------------------------- *)

(* Clang spells long options with a single dash (-ftime-report); accept
   both single- and double-dash spellings uniformly. *)
let strip_dashes arg =
  if String.length arg >= 2 && String.sub arg 0 2 = "--" then
    Some (String.sub arg 2 (String.length arg - 2))
  else if String.length arg >= 1 && arg.[0] = '-' && arg <> "-" then
    Some (String.sub arg 1 (String.length arg - 1))
  else None

let split_define s =
  match String.index_opt s '=' with
  | Some i ->
    (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | None -> (s, "1")

let parse_int what s =
  match int_of_string_opt s with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "invalid %s argument %S" what s)

let parse_float what s =
  match float_of_string_opt s with
  | Some f when f > 0.0 -> Ok f
  | Some _ -> Error (Printf.sprintf "%s must be positive, got %S" what s)
  | None -> Error (Printf.sprintf "invalid %s argument %S" what s)

let of_argv argv =
  let args = Array.to_list argv in
  let args = match args with _prog :: rest -> rest | [] -> [] in
  let rec go inv = function
    | [] ->
      if inv.inputs = [] then Error "no input files"
      else Ok { inv with inputs = List.rev inv.inputs }
    | arg :: rest -> (
      match strip_dashes arg with
      | None -> go { inv with inputs = File arg :: inv.inputs } rest
      | Some flag -> (
        let with_value name k =
          (* Accepts "-flag value", "-flag=value", and — for single-char
             flags — the attached "-j4" / "-DN=3" spellings. *)
          let prefixed p =
            String.length flag > String.length p
            && String.sub flag 0 (String.length p) = p
          in
          if flag = name then
            match rest with
            | v :: rest' -> Some (k v rest')
            | [] -> Some (Error (Printf.sprintf "-%s expects an argument" name))
          else if prefixed (name ^ "=") then
            let v =
              String.sub flag (String.length name + 1)
                (String.length flag - String.length name - 1)
            in
            Some (k v rest)
          else if String.length name = 1 && prefixed name then
            Some (k (String.sub flag 1 (String.length flag - 1)) rest)
          else None
        in
        match flag with
        | "ast-dump" -> go { inv with action = Ast_dump } rest
        | "ast-dump-shadow" -> go { inv with action = Ast_dump_shadow } rest
        | "ast-print" -> go { inv with action = Ast_print } rest
        | "print-transformed" -> go { inv with action = Print_transformed } rest
        | "emit-ir" -> go { inv with action = Emit_ir } rest
        | "emit-transformed" -> go { inv with action = Emit_transformed } rest
        | "syntax-only" | "fsyntax-only" -> go { inv with action = Syntax_only } rest
        (* Bare -analyze runs every pass; -analyze=p1,p2 selects.  Not a
           [with_value] flag: "-analyze foo.c" must keep foo.c an input. *)
        | "analyze" -> go { inv with action = Analyze; analyze = Some [] } rest
        | "fopenmp-enable-irbuilder" -> go { inv with use_irbuilder = true } rest
        | "no-builder-folding" -> go { inv with fold = false } rest
        | "no-verify-ir" -> go { inv with verify_ir = false } rest
        | "cache" -> go { inv with cache_enabled = true } rest
        | "incremental" ->
          (* Incremental recompilation rides on the stage cache. *)
          go { inv with incremental = true; cache_enabled = true } rest
        | "daemon" -> go { inv with daemon = true } rest
        | "no-transfo-check" -> go { inv with transfo_check = false } rest
        | "fno-crash-diagnostics" -> go { inv with gen_reproducer = false } rest
        | "gen-reproducer" -> go { inv with gen_reproducer = true } rest
        | "stage-timings" -> go { inv with stage_timings = true } rest
        | "ftime-report" -> go { inv with time_report = true } rest
        | "print-stats" -> go { inv with print_stats = true } rest
        | "O0" -> go { inv with opt_level = 0 } rest
        | "O1" -> go { inv with opt_level = 1 } rest
        | _ -> (
          let numeric name field =
            with_value name (fun v rest' ->
                match parse_int name v with
                | Ok n -> go (field inv n) rest'
                | Error e -> Error e)
          in
          let first_some l = List.find_map (fun f -> f ()) l in
          match
            first_some
              [
                (fun () -> numeric "j" (fun inv n -> { inv with jobs = n }));
                (fun () -> numeric "O" (fun inv n -> { inv with opt_level = n }));
                (fun () ->
                  numeric "num-threads" (fun inv n ->
                      { inv with num_threads = n }));
                (fun () ->
                  numeric "ferror-limit" (fun inv n ->
                      { inv with error_limit = max 0 n }));
                (fun () ->
                  numeric "fbracket-depth" (fun inv n ->
                      { inv with bracket_depth = max 1 n }));
                (fun () ->
                  numeric "floop-nest-limit" (fun inv n ->
                      { inv with loop_nest_limit = max 1 n }));
                (fun () ->
                  with_value "D" (fun v rest' ->
                      let name, value = split_define v in
                      go
                        { inv with defines = inv.defines @ [ (name, value) ] }
                        rest'));
                (fun () ->
                  with_value "cache-dir" (fun v rest' ->
                      (* A persistent cache directory implies caching. *)
                      go
                        { inv with cache_dir = Some v; cache_enabled = true }
                        rest'));
                (fun () ->
                  with_value "daemon-socket" (fun v rest' ->
                      go
                        { inv with daemon_socket = Some v; daemon = true }
                        rest'));
                (fun () ->
                  with_value "daemon-timeout" (fun v rest' ->
                      match parse_float "daemon-timeout" v with
                      | Ok t ->
                        go
                          { inv with daemon_timeout = Some t; daemon = true }
                          rest'
                      | Error e -> Error e));
                (fun () ->
                  numeric "daemon-retries" (fun inv n ->
                      {
                        inv with
                        daemon_retries = Some (max 0 n);
                        daemon = true;
                      }));
                (fun () ->
                  with_value "transfo-script" (fun v rest' ->
                      go { inv with transfo_script = Some (File v) } rest'));
                (fun () ->
                  let p = "analyze=" in
                  if
                    String.length flag > String.length p
                    && String.sub flag 0 (String.length p) = p
                  then
                    let v =
                      String.sub flag (String.length p)
                        (String.length flag - String.length p)
                    in
                    let passes =
                      List.filter
                        (fun s -> s <> "")
                        (String.split_on_char ',' v)
                    in
                    Some
                      (go
                         { inv with action = Analyze; analyze = Some passes }
                         rest)
                  else None);
                (fun () ->
                  with_value "analyze-format" (fun v rest' ->
                      if v = "text" || v = "json" then
                        go { inv with analyze_format = v } rest'
                      else
                        Error
                          (Printf.sprintf
                             "invalid -analyze-format %S (expected text or json)"
                             v)));
              ]
          with
          | Some r -> r
          | None -> Error (Printf.sprintf "unknown option %S" arg))))
  in
  go { default with inputs = [] } args

(* ---- argv rendering ------------------------------------------------------ *)

(* The inverse of [of_argv] for everything but the inputs: the caller —
   notably the ICE reproducer writer — supplies its own file names.  Only
   non-default settings are emitted so the rendered command stays short;
   the result round-trips through [of_argv]. *)
let to_argv inv =
  let d = default in
  let flag cond f = if cond then [ f ] else [] in
  let action_flags =
    match inv.action with
    | Run -> []
    | Ast_dump -> [ "-ast-dump" ]
    | Ast_dump_shadow -> [ "-ast-dump-shadow" ]
    | Ast_print -> [ "-ast-print" ]
    | Print_transformed -> [ "-print-transformed" ]
    | Emit_ir -> [ "-emit-ir" ]
    | Emit_transformed -> [ "-emit-transformed" ]
    | Syntax_only -> [ "-syntax-only" ]
    | Analyze -> (
      match inv.analyze with
      | Some (_ :: _ as ps) -> [ "-analyze=" ^ String.concat "," ps ]
      | _ -> [ "-analyze" ])
  in
  action_flags
  @ flag inv.use_irbuilder "-fopenmp-enable-irbuilder"
  @ (if inv.opt_level <> d.opt_level then
       [ Printf.sprintf "-O%d" inv.opt_level ]
     else [])
  @ flag (not inv.fold) "-no-builder-folding"
  @ flag (not inv.verify_ir) "-no-verify-ir"
  @ List.map (fun (n, v) -> Printf.sprintf "-D%s=%s" n v) inv.defines
  @ (if inv.jobs <> d.jobs then [ Printf.sprintf "-j%d" inv.jobs ] else [])
  @ flag
      (inv.cache_enabled && not inv.incremental && inv.cache_dir = None)
      "-cache"
  @ (match inv.cache_dir with
    | Some d -> [ Printf.sprintf "-cache-dir=%s" d ]
    | None -> [])
  @ flag inv.incremental "-incremental"
  @ flag
      (inv.daemon && inv.daemon_socket = None && inv.daemon_timeout = None
     && inv.daemon_retries = None)
      "-daemon"
  @ (match inv.daemon_socket with
    | Some s -> [ Printf.sprintf "-daemon-socket=%s" s ]
    | None -> [])
  @ (match inv.daemon_timeout with
    | Some t -> [ Printf.sprintf "-daemon-timeout=%g" t ]
    | None -> [])
  @ (match inv.daemon_retries with
    | Some r -> [ Printf.sprintf "-daemon-retries=%d" r ]
    | None -> [])
  @ (if inv.num_threads <> d.num_threads then
       [ Printf.sprintf "-num-threads=%d" inv.num_threads ]
     else [])
  @ flag inv.stage_timings "-stage-timings"
  @ flag inv.time_report "-ftime-report"
  @ flag inv.print_stats "-print-stats"
  @ (if inv.error_limit <> d.error_limit then
       [ Printf.sprintf "-ferror-limit=%d" inv.error_limit ]
     else [])
  @ (if inv.bracket_depth <> d.bracket_depth then
       [ Printf.sprintf "-fbracket-depth=%d" inv.bracket_depth ]
     else [])
  @ (if inv.loop_nest_limit <> d.loop_nest_limit then
       [ Printf.sprintf "-floop-nest-limit=%d" inv.loop_nest_limit ]
     else [])
  @ (match inv.transfo_script with
    | Some input -> [ Printf.sprintf "-transfo-script=%s" (input_name input) ]
    | None -> [])
  @ flag (not inv.transfo_check) "-no-transfo-check"
  @ (if inv.analyze_format <> d.analyze_format then
       [ "-analyze-format=" ^ inv.analyze_format ]
     else [])
  @ flag (not inv.gen_reproducer) "-fno-crash-diagnostics"
