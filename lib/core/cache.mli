(** Per-stage artifact cache for the stage-graph pipeline.

    Generalizes the PR-2 whole-compile cache: instead of one entry per
    translation unit, each {!Pipeline} stage (lex, pp, ast, ir, optir)
    memoizes its artifact under a content fingerprint — the hash of the
    stage's input artifact plus the stage-relevant slice of the
    invocation.  A comment-only edit therefore re-runs lex/pp but reuses
    everything from the AST stage onward, while an option change
    invalidates exactly the stages whose slice it touches.

    The cache itself is untyped (marshalled bytes); {!Pipeline} owns the
    artifact types, the fingerprints and the marshalling.  A cache is
    safe to share across the domains of a {!Batch} compilation; payload
    strings are immutable, and consumers unmarshal a fresh copy per hit,
    so mutable artifacts (IR modules, source managers) are never aliased
    across units.

    Per-stage hit/miss/store/invalidation events land in the
    [cache.<stage>-*] counters of the calling domain's current stats
    registry, surfacing through [-print-stats] and per-compile
    snapshots; the whole-pipeline [cache.hits]/[cache.misses] aggregates
    are maintained by {!Pipeline}. *)

type t

val stage_names : string list
(** The stage tags, in pipeline order:
    ["transfo"; "lex"; "pp"; "ast"; "ir"; "optir"], followed by the
    per-function artifact families of the function-granular pipeline:
    ["fnast"; "fnir"; "fnoptir"] (one artifact per top-level slice). *)

val create : ?store:Store.t -> unit -> t
(** A fresh in-memory cache.  With [?store], the cache is layered over a
    persistent on-disk {!Store}: memory misses fall back to disk (a
    disk-served artifact counts as that stage's cache hit and is adopted
    into memory), and every store writes through, so the cache survives
    process restarts and is shareable across processes. *)

val store_of : t -> Store.t option
(** The backing on-disk store, when the cache was created with one. *)

val length : t -> int
(** Total number of cached stage artifacts (across all stages). *)

val stage_length : t -> stage:string -> int
(** Number of cached artifacts for one stage tag. *)

val find : t -> stage:string -> ?validate:(string -> bool) -> string -> string option
(** [find t ~stage fp] looks up a stage artifact by fingerprint, counting
    a hit or a miss.  When [validate] is given, the newest-first list of
    candidate payloads under the fingerprint is scanned and the first
    accepted one returned; if every candidate is rejected (e.g. no
    recorded PPTokens #include set matches the current file manager),
    the lookup counts an invalidation plus a miss and returns [None] —
    the entries are kept for later revalidation. *)

val store : t -> stage:string -> string -> string -> unit
(** [store t ~stage fp payload] adds a stage artifact as the newest
    candidate under the fingerprint (deduplicating byte-identical
    payloads). *)

val canonical_items : Buffer.t -> Mc_pp.Preprocessor.item list -> unit
(** Append the canonical, location-free rendering of a preprocessed
    stream (token spellings, NUL-separated, with SOH pragma markers) to
    [buf] — the encoding {!canonical_digest} hashes, exposed so the
    function-granular slicer can address sub-streams the same way. *)

val canonical_digest : Mc_pp.Preprocessor.item list -> string
(** Digest of the canonical, location-free rendering of a preprocessed
    stream (token spellings, NUL-separated, with SOH pragma markers) —
    the content address the AST stage fingerprint builds on. *)
