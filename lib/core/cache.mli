(** Content-addressed compile cache: hash of the preprocessed token
    stream + the backend-relevant {!Invocation.fingerprint} maps to the
    marshalled back-end artefact (IR module, unroll statistics, counter
    snapshot) of a previous compilation.

    Keys digest token {e spellings}, not source locations, so edits the
    preprocessor erases (comments, whitespace, unused macro definitions)
    still hit, while anything that changes the expanded stream — or a
    backend option — misses.

    A cache is safe to share across the domains of a {!Batch}
    compilation; every hit hands out a {e fresh copy} of the cached IR
    module (IR is a mutable graph — aliasing one module across units
    would let a consumer's mutation corrupt later hits).

    Hit/miss/store events land in the [cache.*] counters of the calling
    domain's current stats registry, so they surface through
    [-print-stats] and per-instance snapshots. *)

type t

val create : unit -> t

val length : t -> int
(** Number of cached translation units. *)

val key : fingerprint:string -> Mc_pp.Preprocessor.item list -> string
(** The content address of a preprocessed unit under the given
    invocation fingerprint. *)

val find :
  t ->
  string ->
  (Mc_ir.Ir.modul * Mc_passes.Loop_unroll.stats * Mc_support.Stats.snapshot)
  option
(** Looks up a key, counting a hit or a miss; on a hit, the returned IR
    module is a fresh unmarshalled copy owned by the caller. *)

val store :
  t ->
  string ->
  ir:Mc_ir.Ir.modul ->
  unroll_stats:Mc_passes.Loop_unroll.stats ->
  stats:Mc_support.Stats.snapshot ->
  unit
(** Stores a compilation's back-end artefact under its key. *)
