(** Parallel batch compilation: compiles N independent translation units
    concurrently on OCaml domains, one {!Instance} (hence one stats
    registry) per unit, optionally sharing one content-addressed
    {!Cache} across all workers.

    Results are deterministic: units are reported in input order
    whatever the scheduling, and — because every piece of per-compile
    mutable state (stats, node/instruction ids, generated names) is
    domain-local and reset per compilation — each unit's IR printout and
    counter snapshot are byte-identical whether the batch ran on 1
    domain or N.  (With a shared cache, {e which} duplicate unit
    compiles first is scheduling-dependent; hit/miss attribution may
    vary, results never.) *)

type unit_result = {
  u_name : string;
  u_result : (Driver.result, Instance.failure) result;
      (** [Error] is a contained internal compiler error (phase,
          exception, watermark, optional reproducer bundle); ordinary
          compile errors are an [Ok] result with error diagnostics.
          Workers use {!Instance.compile_safe}, so one unit's ICE —
          including [Stack_overflow] / [Out_of_memory] — never disturbs
          its siblings. *)
  u_cache_hit : bool;
      (** whole-pipeline hit: every stage from the parser onward reused *)
  u_trace : Pipeline.trace;
      (** per-stage outcomes for this unit ([[]] on a contained ICE) *)
  u_fn_trace : (string * Pipeline.outcome) list;
      (** function-granular slice outcomes for this unit (see
          {!Pipeline.exec.x_fn_trace}; [[]] on a contained ICE or on the
          unit-granular path) *)
  u_stats : Mc_support.Stats.snapshot; (** this unit's registry snapshot *)
  u_wall : float; (** wall seconds spent on this unit *)
}

type t = {
  units : unit_result list; (** in input order *)
  stats : Mc_support.Stats.snapshot; (** key-wise sum over all units *)
  wall : float; (** wall seconds for the whole batch *)
  jobs : int; (** domains actually used *)
}

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val compile :
  ?jobs:int ->
  ?cache:Cache.t ->
  invocation:Invocation.t ->
  (string * string) list ->
  t
(** [compile ~invocation units] compiles each [(name, source)] unit.
    [jobs] defaults to the invocation's [jobs] field and is clamped to
    the unit count; [cache] defaults to a fresh private cache when the
    invocation enables caching, none otherwise. *)

val compile_into : Instance.t -> (string * string) list -> t
(** Like {!compile}, but drives the batch on behalf of a parent
    instance: jobs and cache come from the instance, and every unit's
    registry is merged into the instance registry afterwards (in input
    order), so the instance's [-print-stats] / [-ftime-report] cover the
    whole batch. *)

val hits : t -> int
(** Number of units served from the cache. *)

val ices : t -> int
(** Units that died with a contained internal compiler error. *)

val codegen_errors : t -> int
(** Units CodeGen refused ([codegen_error] set, no IR). *)

val errors : t -> int
(** Units that compiled but produced error diagnostics. *)

val all_ok : t -> bool
(** No contained ICEs and no error diagnostics in any unit. *)
