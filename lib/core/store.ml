(* Persistent, content-addressed on-disk artifact store — the layer that
   makes the stage cache survive process restarts.

   Layout: <dir>/v<schema_version>/<stage>/<fingerprint>, one file per
   (stage, fingerprint) key holding that key's full candidate list (the
   PPTokens stage can carry several candidates per fingerprint,
   ccache-manifest style; every other stage has one).

   File format: a Binio frame (magic "MCST", version = schema_version)
   whose payload is a 32-char payload digest followed by the marshalled
   entry record.  Loads validate, in order: frame magic/version/length,
   payload digest, unmarshalling, and that the recorded stage and
   fingerprint match the requested key (a file renamed or cross-linked
   into the wrong slot must not serve).  Every validation failure is a
   miss — a [store.corrupt] or [store.version-mismatch] counter bump and
   [None] — never an exception into the pipeline: a corrupt cache can
   cost time, not correctness.

   Writes are atomic (tmp + rename within the store directory), so
   concurrent writers — Batch domains sharing one store, or an mccd
   daemon and an mcc process sharing a --cache-dir — can only ever
   publish complete files, and last-writer-wins is harmless because
   entries are content-addressed.

   Eviction: a byte-budget LRU.  Recency is a per-process logical clock
   (deterministic for tests), seeded from file mtimes when an existing
   directory is opened, and hits touch the file's mtime so recency
   survives restarts approximately.  Eviction is per save: after a write
   pushes the total over [max_bytes], oldest entries are unlinked until
   it fits. *)

module Stats = Mc_support.Stats
module Binio = Mc_support.Binio
module Fault = Mc_support.Fault

(* Injectable failures: a read fault is an I/O error on lookup (the
   entry stays on disk, unlike corruption), a write fault is a short
   write / ENOSPC mid-publish.  Both must degrade to counted misses —
   a store fault can cost time, never correctness. *)
let fault_read = Fault.point "store.read"
let fault_write = Fault.point "store.write"

(* v2: the "ir" artifact of function-granular units became a list of
   per-function payloads (see Pipeline); bumping makes pre-granular
   stores miss cleanly instead of unmarshalling the wrong shape.
   v3: instructions grew an [i_loc] source location for the analysis
   subsystem, changing the marshalled IR layout. *)
let schema_version = 3
let magic = "MCST"
let default_max_bytes = 512 * 1024 * 1024

let stat_hits =
  Stats.counter ~group:"store" ~name:"hits"
    ~desc:"stage artifacts served from the on-disk store" ()

let stat_misses =
  Stats.counter ~group:"store" ~name:"misses"
    ~desc:"on-disk store lookups that found no entry" ()

let stat_stores =
  Stats.counter ~group:"store" ~name:"stores"
    ~desc:"stage artifacts persisted to the on-disk store" ()

let stat_corrupt =
  Stats.counter ~group:"store" ~name:"corrupt"
    ~desc:"on-disk entries rejected as corrupt (treated as misses)" ()

let stat_version_mismatch =
  Stats.counter ~group:"store" ~name:"version-mismatch"
    ~desc:"on-disk entries rejected for a different schema version" ()

let stat_evictions =
  Stats.counter ~group:"store" ~name:"evictions"
    ~desc:"on-disk entries evicted by the LRU byte budget" ()

type entry = {
  e_stage : string;
  e_fp : string;
  e_candidates : string list;
}

(* Per-key accounting for the LRU: on-disk size and logical last use. *)
type slot = { mutable sl_bytes : int; mutable sl_used : int }

type t = {
  root : string; (* <dir>/v<schema_version> *)
  max_bytes : int;
  slots : (string * string, slot) Hashtbl.t;
  mutable total_bytes : int;
  mutable clock : int;
  lock : Mutex.t;
}

let entry_path_unlocked t ~stage fp = Filename.concat (Filename.concat t.root stage) fp

let tick t =
  t.clock <- t.clock + 1;
  t.clock

(* Opening an existing directory adopts whatever complete entries are on
   disk, ordering their recency by mtime so a restarted process evicts
   the same way a long-running one would have. *)
let scan t =
  let files = ref [] in
  (if Sys.file_exists t.root && Sys.is_directory t.root then
     Array.iter
       (fun stage ->
         let sdir = Filename.concat t.root stage in
         if Sys.is_directory sdir then
           Array.iter
             (fun fp ->
               if String.length fp > 0 && fp.[0] = '.' then ()
               else
               let path = Filename.concat sdir fp in
               match Unix.stat path with
               | { Unix.st_kind = Unix.S_REG; st_size; st_mtime; _ } ->
                 files := ((stage, fp), st_size, st_mtime) :: !files
               | _ | (exception Unix.Unix_error _) -> ())
             (Sys.readdir sdir))
       (Sys.readdir t.root));
  List.iter
    (fun (key, size, _) ->
      Hashtbl.replace t.slots key { sl_bytes = size; sl_used = tick t };
      t.total_bytes <- t.total_bytes + size)
    (List.sort (fun (_, _, a) (_, _, b) -> compare a b) !files)

let create ~dir ?(max_bytes = default_max_bytes) () =
  let root = Filename.concat dir (Printf.sprintf "v%d" schema_version) in
  Binio.mkdir_p root;
  let t =
    {
      root;
      max_bytes;
      slots = Hashtbl.create 64;
      total_bytes = 0;
      clock = 0;
      lock = Mutex.create ();
    }
  in
  (match scan t with () -> () | exception Sys_error _ -> ());
  t

let dir t = Filename.dirname t.root
let entry_path t ~stage fp = entry_path_unlocked t ~stage fp

let total_bytes t = Mutex.protect t.lock (fun () -> t.total_bytes)
let entry_count t = Mutex.protect t.lock (fun () -> Hashtbl.length t.slots)

let forget_unlocked t key =
  match Hashtbl.find_opt t.slots key with
  | Some slot ->
    t.total_bytes <- t.total_bytes - slot.sl_bytes;
    Hashtbl.remove t.slots key
  | None -> ()

let remove_file path = try Sys.remove path with Sys_error _ -> ()

(* ---- load ---------------------------------------------------------------- *)

let decode ~stage ~fp contents =
  match Binio.parse_frame ~magic ~version:schema_version contents with
  | Error (Binio.Version_mismatch _) -> Error `Version
  | Error _ -> Error `Corrupt
  | Ok payload -> (
    if String.length payload < 32 then Error `Corrupt
    else
      let digest = String.sub payload 0 32 in
      let body = String.sub payload 32 (String.length payload - 32) in
      if Digest.to_hex (Digest.string body) <> digest then Error `Corrupt
      else
        match (Marshal.from_string body 0 : entry) with
        | e ->
          if e.e_stage = stage && e.e_fp = fp && e.e_candidates <> [] then
            Ok e.e_candidates
          else Error `Corrupt
        | exception _ -> Error `Corrupt)

let load t ~stage fp =
  if Fault.fire fault_read then begin
    (* Injected I/O failure: a miss, counted like any other, but the
       on-disk entry is intact — the next lookup may serve it. *)
    Stats.incr stat_misses;
    None
  end
  else
  let path = entry_path_unlocked t ~stage fp in
  match Binio.read_file path with
  | None ->
    Stats.incr stat_misses;
    None
  | Some contents -> (
    match decode ~stage ~fp contents with
    | Ok candidates ->
      Stats.incr stat_hits;
      Mutex.protect t.lock (fun () ->
          (match Hashtbl.find_opt t.slots (stage, fp) with
          | Some slot -> slot.sl_used <- tick t
          | None ->
            Hashtbl.replace t.slots (stage, fp)
              { sl_bytes = String.length contents; sl_used = tick t };
            t.total_bytes <- t.total_bytes + String.length contents);
          (* Refresh the file's mtime so cross-process recency tracks use. *)
          try Unix.utimes path 0.0 0.0 with Unix.Unix_error _ -> ());
      Some candidates
    | Error kind ->
      (* A bad entry is unlinked so it cannot be re-read (and re-counted)
         forever; either way this lookup is a miss. *)
      Stats.incr
        (match kind with
        | `Corrupt -> stat_corrupt
        | `Version -> stat_version_mismatch);
      Stats.incr stat_misses;
      Mutex.protect t.lock (fun () ->
          forget_unlocked t (stage, fp);
          remove_file path);
      None)

(* ---- save + eviction ----------------------------------------------------- *)

let evict_until_fits_unlocked t =
  while
    t.total_bytes > t.max_bytes
    && Hashtbl.length t.slots > 1 (* never evict the entry just written *)
  do
    let victim =
      Hashtbl.fold
        (fun key slot acc ->
          match acc with
          | Some (_, best) when best.sl_used <= slot.sl_used -> acc
          | _ -> Some (key, slot))
        t.slots None
    in
    match victim with
    | None -> t.total_bytes <- 0 (* unreachable: slots non-empty *)
    | Some ((stage, fp), _) ->
      remove_file (entry_path_unlocked t ~stage fp);
      forget_unlocked t (stage, fp);
      Stats.incr stat_evictions
  done

let save ?(version = schema_version) t ~stage fp candidates =
  if candidates = [] then ()
  else begin
    let body = Marshal.to_string { e_stage = stage; e_fp = fp; e_candidates = candidates } [] in
    let payload = Digest.to_hex (Digest.string body) ^ body in
    let contents = Binio.frame ~magic ~version payload in
    let path = entry_path_unlocked t ~stage fp in
    Binio.mkdir_p (Filename.dirname path);
    let write () =
      if Fault.fire fault_write then begin
        (* Injected ENOSPC / short write mid-publish: mimic
           [write_file_atomic]'s own failure discipline — the torn tmp
           file is removed, nothing is renamed into place, so readers
           can never observe a partial entry. *)
        let tmp = path ^ ".fault-tmp" in
        (try
           Out_channel.with_open_bin tmp (fun oc ->
               Out_channel.output_string oc
                 (String.sub contents 0 (String.length contents / 2)))
         with Sys_error _ -> ());
        remove_file tmp;
        Error "injected write fault"
      end
      else Binio.write_file_atomic ~path contents
    in
    match write () with
    | Error _ -> () (* a full or unwritable disk degrades to no persistence *)
    | Ok () ->
      Stats.incr stat_stores;
      Mutex.protect t.lock (fun () ->
          forget_unlocked t (stage, fp);
          Hashtbl.replace t.slots (stage, fp)
            { sl_bytes = String.length contents; sl_used = tick t };
          t.total_bytes <- t.total_bytes + String.length contents;
          evict_until_fits_unlocked t)
  end

(* The newest-written entry is exempt from its own eviction pass (see
   [evict_until_fits_unlocked]), so a single artifact larger than the
   whole budget still persists — it just evicts everything else.  That
   beats refusing to cache big units at all. *)
