(* The stage-graph pipeline: Fig. 1's layer stack made explicit.

   Source -> PPTokens -> AST(+Sema/shadow/canonical) -> IR -> OptIR is a
   linear DAG of typed stages.  Each stage produces an artifact whose
   fingerprint is the hash of its input artifact plus the stage-relevant
   slice of the options, so a per-stage cache can answer "has this exact
   stage input been processed under these exact options before?":

     lex    : hash(source)                      — no options reach the lexer
     pp     : hash(source, -D slice)           + #include-set validation
     ast    : hash(canonical PPTokens stream, sema slice)
     ir     : hash(ast fp, codegen slice)
     optir  : hash(ir fp, pass slice)

   Content-addressing the AST stage on the preprocessor's *output* is what
   makes a comment-only edit (lex/pp re-run, same expanded stream) reuse
   everything from the AST stage onward, while a -D that changes expansion
   or a -floop-nest-limit change invalidates exactly the stages whose
   input or slice it touches.  -ferror-limit is deliberately in no slice:
   only diagnostic-free stage outputs are ever cached, and a
   diagnostic-free run is identical under any error limit.

   Caching policy: a stage artifact is stored only when the compilation
   has produced no diagnostics at all by the end of that stage (a hit
   must never swallow a warning replay), and storing is the last act of a
   successfully executed stage — an ICE mid-stage can never have been
   stored.  Mutable artifacts (source managers, ASTs, IR modules) are
   marshalled on store and unmarshalled fresh per hit, so no two
   compilations ever alias one cached structure; the IR artifact is
   snapshotted *before* the pass pipeline mutates the module in place.

   Determinism: every execution starts by rewinding the domain-local
   AST/IR id and gensym counters, so a cached artifact is byte-identical
   to the one a cold compilation would rebuild — cold vs warm and 1 vs N
   domains produce the same IR printout. *)

module Diag = Mc_diag.Diagnostics
module Srcmgr = Mc_srcmgr.Source_manager
module Fmgr = Mc_srcmgr.File_manager
module Buf = Mc_srcmgr.Memory_buffer
module Stats = Mc_support.Stats
module Clock = Mc_support.Clock
module Crash_recovery = Mc_support.Crash_recovery
module Loc = Mc_srcmgr.Source_location

type options = {
  use_irbuilder : bool;
  optimize : bool;
  fold : bool;
  verify_ir : bool;
  defines : (string * string) list;
  extra_files : (string * string) list;
  error_limit : int;
  bracket_depth : int;
  loop_nest_limit : int;
  transfo_script : string option;
  transfo_check : bool;
}

let default_options =
  {
    use_irbuilder = false;
    optimize = true;
    fold = true;
    verify_ir = true;
    defines = [];
    extra_files = [];
    error_limit = 20;
    bracket_depth = Mc_parser.Parser.default_bracket_depth;
    loop_nest_limit = Mc_sema.Sema.default_loop_nest_limit;
    transfo_script = None;
    transfo_check = true;
  }

type timings = {
  t_lex : float;
  t_preprocess : float;
  t_parse_sema : float;
  t_codegen : float;
  t_passes : float;
}

type result = {
  diag : Diag.t;
  srcmgr : Srcmgr.t;
  tu : Mc_ast.Tree.translation_unit option;
  ir : Mc_ir.Ir.modul option;
  codegen_error : string option;
  timings : timings;
  unroll_stats : Mc_passes.Loop_unroll.stats;
  stats : Stats.snapshot;
  transformed : (string * string) option;
}

type stage = Transfo | Lex | Preprocess | Parse_sema | Codegen | Passes

let stages = [ Transfo; Lex; Preprocess; Parse_sema; Codegen; Passes ]

(* -ftime-report / crash-phase labels: stable since PR 1. *)
let stage_name = function
  | Transfo -> "transfo"
  | Lex -> "lex"
  | Preprocess -> "preprocess"
  | Parse_sema -> "parse-sema"
  | Codegen -> "codegen"
  | Passes -> "passes"

(* Artifact tags in the stage cache and its [cache.<tag>-*] counters. *)
let stage_tag = function
  | Transfo -> "transfo"
  | Lex -> "lex"
  | Preprocess -> "pp"
  | Parse_sema -> "ast"
  | Codegen -> "ir"
  | Passes -> "optir"

type outcome = Executed | Cache_hit

type trace = (stage * outcome) list

let render_trace tr =
  String.concat " "
    (List.map
       (fun (s, o) ->
         stage_tag s ^ ":" ^ (match o with Executed -> "run" | Cache_hit -> "hit"))
       tr)

type exec = { x_result : result; x_trace : trace; x_full_hit : bool }

(* ---- fingerprints ------------------------------------------------------- *)

let hash s = Digest.to_hex (Digest.string s)

(* The stage-relevant slice of the options, canonically rendered.  A flag
   change invalidates exactly the stages whose slice mentions it. *)
let option_slice stage o =
  match stage with
  | Transfo ->
    (* Keyed on the *canonical* script (comments and whitespace stripped):
       editing a comment in the script stays a warm hit, editing a step
       invalidates. *)
    (match o.transfo_script with
    | Some script ->
      Printf.sprintf "check=%b;script=%s" o.transfo_check
        (Mc_transfo.Script.canonical script)
    | None -> "")
  | Lex -> "" (* no option reaches the lexer *)
  | Preprocess ->
    String.concat "\x01" (List.map (fun (k, v) -> k ^ "\x02" ^ v) o.defines)
  | Parse_sema ->
    Printf.sprintf "irbuilder=%b;bdepth=%d;nlimit=%d" o.use_irbuilder
      o.bracket_depth o.loop_nest_limit
  | Codegen ->
    Printf.sprintf "irbuilder=%b;fold=%b;verify=%b" o.use_irbuilder o.fold
      o.verify_ir
  | Passes -> Printf.sprintf "optimize=%b;verify=%b" o.optimize o.verify_ir

let source_fingerprint ~name source = hash ("src\x00" ^ name ^ "\x00" ^ source)

let stage_fingerprint stage o ~input =
  hash (stage_tag stage ^ "\x00" ^ input ^ "\x00" ^ option_slice stage o)

(* ---- counters ----------------------------------------------------------- *)

(* Whole-pipeline aggregates over the per-stage counters [Cache] owns: a
   "hit" is a compilation that reused every stage from the parser onward
   (no parse, sema, codegen or pass work ran). *)
let stat_full_hits =
  Stats.counter ~group:"cache" ~name:"hits"
    ~desc:"whole-pipeline cache hits (every stage from parse onward reused)" ()

let stat_full_misses =
  Stats.counter ~group:"cache" ~name:"misses"
    ~desc:"compilations that executed at least one stage from parse onward" ()

let codegen_errors_counter =
  Stats.counter ~group:"driver" ~name:"codegen-errors"
    ~desc:"compilations refused by CodeGen (unsupported construct / errors)" ()

(* ---- execution ---------------------------------------------------------- *)

(* Stage timing on the monotonic wall clock; every interval also lands in
   the current [Stats] registry for -ftime-report, and the active stage
   doubles as the crash-recovery phase watermark so an ICE report can say
   which pipeline stage blew up. *)
let time stage f =
  let label = stage_name stage in
  Crash_recovery.set_phase label;
  let start = Clock.now () in
  let v = f () in
  let dt = Clock.now () -. start in
  Stats.record (Stats.timer ~group:"driver" ~name:label) dt;
  (v, dt)

(* Every execution starts from a known state: every domain-local name/id
   generator rewound, so the same source always produces byte-identical
   ASTs and IR no matter how many compilations preceded it in this
   process or which domain runs it.  (The stats registry needs no reset:
   each execution runs in its own scoped registry.) *)
let reset_compilation_state () =
  Mc_ast.Tree.reset_ids ();
  Mc_ir.Ir.reset_ids ();
  Mc_ompbuilder.Omp_builder.reset_gensym ();
  Mc_codegen.Codegen.reset_gensym ()

let marshal v = Marshal.to_string v []

(* The PPTokens artifact: the parser-ready stream plus the source manager
   that its token locations refer to, plus the #include set (path +
   content digest) the preprocessing actually entered — validated against
   the current file manager before the entry may be reused. *)
type pp_payload = {
  pl_items : Mc_pp.Preprocessor.item list;
  pl_srcmgr : Srcmgr.t;
  pl_includes : (string * string) list;
}

let zero_timings =
  {
    t_lex = 0.0;
    t_preprocess = 0.0;
    t_parse_sema = 0.0;
    t_codegen = 0.0;
    t_passes = 0.0;
  }

(* The transfo pre-stage rewrites the *source*, so downstream stages see
   it as ordinary input: the lex fingerprint hashes the rewritten text and
   everything from there on is content-addressed exactly as before.  The
   whole walk is mutually recursive because the engine needs a frontend
   (target resolution re-parses after every step) and the differential
   check needs full compilations of the before/after programs. *)
let rec walk ?cache ~frontend_only ~options ~name source =
  match options.transfo_script with
  | None -> walk_stages ?cache ~frontend_only ~options ~name ~transfo:None source
  | Some script -> (
    match apply_transfo ?cache ~options ~name ~script source with
    | Error msg ->
      (* A failed script is a compilation error: report it, produce no
         AST/IR, and never fall back to compiling the unrewritten
         program (Run must not execute something the user didn't ask
         for). *)
      let sm = Srcmgr.create () in
      let d = Diag.create sm in
      Diag.error d ~loc:Loc.invalid msg;
      ( {
          diag = d;
          srcmgr = sm;
          tu = None;
          ir = None;
          codegen_error = None;
          timings = zero_timings;
          unroll_stats = Mc_passes.Loop_unroll.empty_stats;
          stats = [];
          transformed = None;
        },
        [ (Transfo, Executed) ],
        false )
    | Ok (outc, source', tr) ->
      let options = { options with transfo_script = None } in
      walk_stages ?cache ~frontend_only ~options ~name
        ~transfo:(Some (outc, source', tr)) source')

(* The transfo stage proper: cache-consult, else run the engine.  The
   fingerprint covers the input source, the canonical script and the
   check flag; the payload is (rewritten source, rendered step trace). *)
and apply_transfo ?cache ~options ~name ~script source =
  let fp =
    stage_fingerprint Transfo
      { options with transfo_script = Some script }
      ~input:(source_fingerprint ~name source)
  in
  let cached =
    match cache with
    | None -> None
    | Some c -> Cache.find c ~stage:(stage_tag Transfo) fp
  in
  match cached with
  | Some payload ->
    let (src', tr) : string * string = Marshal.from_string payload 0 in
    Ok (Cache_hit, src', tr)
  | None -> (
    let fe_options = { options with transfo_script = None } in
    let config =
      {
        Mc_transfo.Engine.frontend =
          (fun ~name source -> frontend ~options:fe_options ~name source);
        check =
          (if options.transfo_check then
             Some (fun ~name ~before ~after ->
                 differential_check ~options ~name ~before ~after)
           else None);
      }
    in
    let outcome, _dt =
      time Transfo (fun () ->
          Mc_transfo.Engine.run config ~name ~script ~source)
    in
    match outcome with
    | Error _ as e -> e
    | Ok o ->
      let src' = o.Mc_transfo.Engine.out_source in
      let tr = Mc_transfo.Engine.render_trace o in
      (match cache with
      | None -> ()
      | Some c ->
        (* Engine success implies the intermediate programs were all
           diagnostic-free, so storing is unconditional here. *)
        Cache.store c ~stage:(stage_tag Transfo) fp (marshal (src', tr)));
      Ok (Executed, src', tr))

(* The semantic oracle: both programs compiled classic -O0 (one fixed,
   deterministic configuration) and run on the IR interpreter; the step
   is accepted only if every observable — stdout, the record trace, the
   return value, or the trap — is identical. *)
and differential_check ~options ~name ~before ~after =
  let check_options =
    { options with transfo_script = None; use_irbuilder = false;
      optimize = false }
  in
  let observe source =
    let x = execute ~options:check_options ~name source in
    let r = x.x_result in
    if Diag.has_errors r.diag then
      Error ("does not compile:\n" ^ Diag.render_all r.diag)
    else
      match r.ir with
      | None ->
        Error
          (match r.codegen_error with
          | Some e -> "codegen: " ^ e
          | None -> "no IR produced")
      | Some m -> (
        match Mc_interp.Interp.run_main m with
        | o ->
          Ok
            (`Finished
               ( o.Mc_interp.Interp.output,
                 o.Mc_interp.Interp.trace,
                 o.Mc_interp.Interp.return_value ))
        | exception Mc_interp.Interp.Trap msg -> Ok (`Trapped msg))
  in
  match observe before with
  | Error e -> Error ("the program before the step " ^ e)
  | Ok obs_before -> (
    match observe after with
    | Error e -> Error ("the program after the step " ^ e)
    | Ok obs_after ->
      if obs_before = obs_after then Ok ()
      else
        let describe = function
          | `Trapped msg -> "trap: " ^ msg
          | `Finished (out, tr, ret) ->
            Printf.sprintf "output %S, %d record(s), exit %s" out
              (List.length tr)
              (match ret with Some v -> Int64.to_string v | None -> "void")
        in
        Error
          (Printf.sprintf "behaviour diverged: before: %s; after: %s"
             (describe obs_before) (describe obs_after)))

and walk_stages ?cache ~frontend_only ~options ~name ~transfo source =
  reset_compilation_state ();
  let trace = ref [] in
  let mark stage outcome = trace := (stage, outcome) :: !trace in
  (match transfo with
  | Some ((outc : outcome), _, _) -> mark Transfo outc
  | None -> ());
  let t_lex = ref 0.0
  and t_preprocess = ref 0.0
  and t_parse_sema = ref 0.0
  and t_codegen = ref 0.0
  and t_passes = ref 0.0 in
  (* The source manager and diagnostics engine are rebound when a cached
     PPTokens artifact (which carries its own source manager) is adopted;
     everything downstream reads through these refs. *)
  let srcmgr = ref (Srcmgr.create ()) in
  let fmgr = Fmgr.create () in
  List.iter
    (fun (path, contents) -> ignore (Fmgr.add_file fmgr ~path ~contents))
    options.extra_files;
  let diag = ref (Diag.create !srcmgr) in
  Diag.set_error_limit !diag options.error_limit;
  (* Let the crash-recovery watermark render "file:line:col" without
     mc_support depending on the source manager. *)
  Crash_recovery.set_position_renderer (fun ~file ~offset ->
      Srcmgr.describe !srcmgr (Loc.encode ~file_id:file ~offset));
  let clean () = Diag.diagnostics !diag = [] in
  let consult ?validate stage fp =
    match cache with
    | None -> None
    | Some c -> Cache.find c ~stage:(stage_tag stage) ?validate fp
  in
  (* Storing is the last act of an executed stage, and only when the
     compilation is still diagnostic-free — so an ICE mid-stage was never
     stored, and a hit never swallows a warning replay. *)
  let save stage fp payload =
    match cache with
    | None -> ()
    | Some c -> if clean () then Cache.store c ~stage:(stage_tag stage) fp (payload ())
  in
  let buf = Buf.create ~name ~contents:source in
  (* The main buffer loads first — file id 1, always — so token locations
     inside cached artifacts stay valid whatever -D buffers or includes a
     particular compilation loads afterwards. *)
  let main_id = Srcmgr.load_main !srcmgr buf in
  let src_fp = source_fingerprint ~name source in

  (* Stage: lex. *)
  let lex_fp = stage_fingerprint Lex options ~input:src_fp in
  (* The token stream is only ever consumed by an *executed* preprocess
     stage, so a cached payload stays un-unmarshalled until (unless) the
     preprocessor actually needs it — on a pp hit the lex hit costs one
     digest lookup, not a deserialization proportional to unit size. *)
  let toks =
    match consult Lex lex_fp with
    | Some payload ->
      mark Lex Cache_hit;
      lazy (Marshal.from_string payload 0 : Mc_lexer.Token.t list)
    | None ->
      let toks, dt =
        time Lex (fun () -> Mc_lexer.Lexer.tokenize !diag ~file_id:main_id buf)
      in
      t_lex := dt;
      mark Lex Executed;
      save Lex lex_fp (fun () -> marshal toks);
      Lazy.from_val toks
  in

  (* Stage: preprocess. *)
  let pp_fp = stage_fingerprint Preprocess options ~input:src_fp in
  let adopted = ref None in
  let validate payload =
    let (p : pp_payload) = Marshal.from_string payload 0 in
    let ok =
      List.for_all
        (fun (path, dg) ->
          match Fmgr.get_file fmgr path with
          | Some b -> String.equal (Buf.digest b) dg
          | None -> false)
        p.pl_includes
    in
    if ok then adopted := Some p;
    ok
  in
  let items =
    match consult ~validate Preprocess pp_fp with
    | Some _ ->
      let p = Option.get !adopted in
      mark Preprocess Cache_hit;
      (* Adopt the cached compilation state wholesale: the marshalled
         source manager already holds the main buffer, -D buffers and
         every include, and the replayed tokens point into it. *)
      srcmgr := p.pl_srcmgr;
      diag := Diag.create p.pl_srcmgr;
      Diag.set_error_limit !diag options.error_limit;
      p.pl_items
    | None ->
      let pp = Mc_pp.Preprocessor.create !diag !srcmgr fmgr in
      List.iter
        (fun (n, body) ->
          Mc_pp.Preprocessor.define_object_macro pp ~name:n ~body)
        options.defines;
      let items, dt =
        time Preprocess (fun () ->
            Mc_pp.Preprocessor.preprocess_tokens pp ~file_id:main_id buf
              (Lazy.force toks))
      in
      t_preprocess := dt;
      mark Preprocess Executed;
      save Preprocess pp_fp (fun () ->
          marshal
            {
              pl_items = items;
              pl_srcmgr = !srcmgr;
              pl_includes = Mc_pp.Preprocessor.include_digests pp;
            });
      items
  in

  (* Stage: parse + sema (the parser drives sema, so they are one stage).
     Content-addressed on the canonical preprocessed stream, not on the
     source: a comment-only edit lands here with an unchanged input. *)
  let ast_fp =
    stage_fingerprint Parse_sema options ~input:(Cache.canonical_digest items)
  in
  let tu =
    match consult Parse_sema ast_fp with
    | Some payload ->
      mark Parse_sema Cache_hit;
      (Marshal.from_string payload 0 : Mc_ast.Tree.translation_unit)
    | None ->
      let sema_mode =
        if options.use_irbuilder then Mc_sema.Sema.Irbuilder
        else Mc_sema.Sema.Classic
      in
      let sema =
        Mc_sema.Sema.create ~mode:sema_mode
          ~loop_nest_limit:options.loop_nest_limit !diag
      in
      let tu, dt =
        time Parse_sema (fun () ->
            Mc_parser.Parser.parse_translation_unit
              ~bracket_depth:options.bracket_depth sema items)
      in
      t_parse_sema := dt;
      mark Parse_sema Executed;
      save Parse_sema ast_fp (fun () -> marshal tu);
      tu
  in

  let timings () =
    {
      t_lex = !t_lex;
      t_preprocess = !t_preprocess;
      t_parse_sema = !t_parse_sema;
      t_codegen = !t_codegen;
      t_passes = !t_passes;
    }
  in
  let transformed = Option.map (fun (_, s, tr) -> (s, tr)) transfo in
  let no_ir codegen_error =
    {
      diag = !diag;
      srcmgr = !srcmgr;
      tu = Some tu;
      ir = None;
      codegen_error;
      timings = timings ();
      unroll_stats = Mc_passes.Loop_unroll.empty_stats;
      stats = [];
      transformed;
    }
  in
  let r =
    if frontend_only || Diag.has_errors !diag then no_ir None
    else begin
      (* Stage: codegen (IR). *)
      let ir_fp = stage_fingerprint Codegen options ~input:ast_fp in
      let pre_pass =
        match consult Codegen ir_fp with
        | Some payload ->
          mark Codegen Cache_hit;
          let m : Mc_ir.Ir.modul = Marshal.from_string payload 0 in
          (* The passes stage may still run on this module (its own
             entry evicted or unreadable); its ids must be claimed or
             pass-created instructions collide with cached ones. *)
          Mc_ir.Ir.claim_ids m;
          Ok m
        | None -> (
          let mode =
            if options.use_irbuilder then Mc_codegen.Codegen.Irbuilder
            else Mc_codegen.Codegen.Classic
          in
          match
            time Codegen (fun () ->
                match
                  Mc_codegen.Codegen.emit_translation_unit ~fold:options.fold
                    ~mode tu
                with
                | m -> Ok m
                | exception Mc_codegen.Codegen.Unsupported msg -> Error msg)
          with
          (* The time codegen spent before bailing out is still real work;
             keep it so stage timings stay truthful on the error path. *)
          | Error msg, dt ->
            t_codegen := dt;
            mark Codegen Executed;
            Stats.incr codegen_errors_counter;
            Error msg
          | Ok m, dt ->
            t_codegen := dt;
            mark Codegen Executed;
            if options.verify_ir then begin
              match Mc_ir.Verifier.check m with
              | Ok () -> ()
              | Error e ->
                invalid_arg
                  (Printf.sprintf "IR verification failed after codegen:\n%s" e)
            end;
            (* Snapshot *before* the pass pipeline mutates m in place. *)
            save Codegen ir_fp (fun () -> marshal m);
            Ok m)
      in
      match pre_pass with
      | Error msg -> no_ir (Some msg)
      | Ok m -> (
        (* Stage: passes (OptIR). *)
        let opt_fp = stage_fingerprint Passes options ~input:ir_fp in
        match consult Passes opt_fp with
        | Some payload ->
          mark Passes Cache_hit;
          let (m', unroll) : Mc_ir.Ir.modul * Mc_passes.Loop_unroll.stats =
            Marshal.from_string payload 0
          in
          {
            diag = !diag;
            srcmgr = !srcmgr;
            tu = Some tu;
            ir = Some m';
            codegen_error = None;
            timings = timings ();
            unroll_stats = unroll;
            stats = [];
            transformed;
          }
        | None ->
          let report, dt =
            time Passes (fun () ->
                Mc_passes.Pass_manager.run ~verify_between:options.verify_ir
                  ~passes:
                    (if options.optimize then Mc_passes.Pass_manager.o1
                     else Mc_passes.Pass_manager.o0)
                  m)
          in
          t_passes := dt;
          mark Passes Executed;
          save Passes opt_fp (fun () ->
              marshal (m, report.Mc_passes.Pass_manager.unroll_stats));
          {
            diag = !diag;
            srcmgr = !srcmgr;
            tu = Some tu;
            ir = Some m;
            codegen_error = None;
            timings = timings ();
            unroll_stats = report.Mc_passes.Pass_manager.unroll_stats;
            stats = [];
            transformed;
          })
    end
  in
  let tr = List.rev !trace in
  let full_hit =
    r.ir <> None
    && List.exists (fun (s, _) -> s = Passes) tr
    && List.for_all
         (fun (s, o) ->
           match s with
           | Lex | Preprocess -> true
           | Transfo | Parse_sema | Codegen | Passes -> o = Cache_hit)
         tr
  in
  if Option.is_some cache && not frontend_only then
    Stats.incr (if full_hit then stat_full_hits else stat_full_misses);
  (r, tr, full_hit)

and execute ?cache ?(options = default_options) ?(name = "input.c") source =
  let (r, tr, full_hit), registry =
    Stats.with_scoped_registry (fun () ->
        walk ?cache ~frontend_only:false ~options ~name source)
  in
  {
    x_result = { r with stats = Stats.snapshot ~registry () };
    x_trace = tr;
    x_full_hit = full_hit;
  }

and frontend ?(options = default_options) ?(name = "input.c") source =
  let (r, _, _), _registry =
    Stats.with_scoped_registry (fun () ->
        walk ~frontend_only:true ~options ~name source)
  in
  ( r.diag,
    (* A failed transfo script yields no AST at all; frontend callers
       still get the diagnostics. *)
    match r.tu with
    | Some tu -> tu
    | None -> { Mc_ast.Tree.tu_decls = [] } )

(* The transfo pre-stage alone, for the daemon's transform requests and
   for embedders that want the rewritten source without compiling it:
   returns (cache outcome, rewritten source, rendered step trace). *)
let transform ?cache ?(options = default_options) ?(name = "input.c") ~script
    source =
  let r, _registry =
    Stats.with_scoped_registry (fun () ->
        apply_transfo ?cache ~options ~name ~script source)
  in
  r
