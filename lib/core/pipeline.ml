(* The stage-graph pipeline: Fig. 1's layer stack made explicit.

   Source -> PPTokens -> AST(+Sema/shadow/canonical) -> IR -> OptIR is a
   linear DAG of typed stages.  Each stage produces an artifact whose
   fingerprint is the hash of its input artifact plus the stage-relevant
   slice of the options, so a per-stage cache can answer "has this exact
   stage input been processed under these exact options before?":

     lex    : hash(source)                      — no options reach the lexer
     pp     : hash(source, -D slice)           + #include-set validation
     ast    : hash(canonical PPTokens stream, sema slice)
     ir     : hash(ast fp, codegen slice)
     optir  : hash(ir fp, pass slice)

   Content-addressing the AST stage on the preprocessor's *output* is what
   makes a comment-only edit (lex/pp re-run, same expanded stream) reuse
   everything from the AST stage onward, while a -D that changes expansion
   or a -floop-nest-limit change invalidates exactly the stages whose
   input or slice it touches.  -ferror-limit is deliberately in no slice:
   only diagnostic-free stage outputs are ever cached, and a
   diagnostic-free run is identical under any error limit.

   Caching policy: a stage artifact is stored only when the compilation
   has produced no diagnostics at all by the end of that stage (a hit
   must never swallow a warning replay), and storing is the last act of a
   successfully executed stage — an ICE mid-stage can never have been
   stored.  Mutable artifacts (source managers, ASTs, IR modules) are
   marshalled on store and unmarshalled fresh per hit, so no two
   compilations ever alias one cached structure; the IR artifact is
   snapshotted *before* the pass pipeline mutates the module in place.

   Determinism: every execution starts by rewinding the domain-local
   AST/IR id and gensym counters, so a cached artifact is byte-identical
   to the one a cold compilation would rebuild — cold vs warm and 1 vs N
   domains produce the same IR printout. *)

module Diag = Mc_diag.Diagnostics
module Srcmgr = Mc_srcmgr.Source_manager
module Fmgr = Mc_srcmgr.File_manager
module Buf = Mc_srcmgr.Memory_buffer
module Stats = Mc_support.Stats
module Clock = Mc_support.Clock
module Crash_recovery = Mc_support.Crash_recovery
module Loc = Mc_srcmgr.Source_location

type options = {
  use_irbuilder : bool;
  optimize : bool;
  fold : bool;
  verify_ir : bool;
  defines : (string * string) list;
  extra_files : (string * string) list;
  error_limit : int;
  bracket_depth : int;
  loop_nest_limit : int;
  transfo_script : string option;
  transfo_check : bool;
  analyze : string list option;
      (* Some [] = every analysis pass; Some ps = that selection; the
         report lands in [result.analysis].  Keyed on pre-pass IR, so it
         caches per function on the granular path. *)
}

let default_options =
  {
    use_irbuilder = false;
    optimize = true;
    fold = true;
    verify_ir = true;
    defines = [];
    extra_files = [];
    error_limit = 20;
    bracket_depth = Mc_parser.Parser.default_bracket_depth;
    loop_nest_limit = Mc_sema.Sema.default_loop_nest_limit;
    transfo_script = None;
    transfo_check = true;
    analyze = None;
  }

type timings = {
  t_lex : float;
  t_preprocess : float;
  t_parse_sema : float;
  t_codegen : float;
  t_passes : float;
}

type result = {
  diag : Diag.t;
  srcmgr : Srcmgr.t;
  tu : Mc_ast.Tree.translation_unit option;
  ir : Mc_ir.Ir.modul option;
  codegen_error : string option;
  timings : timings;
  unroll_stats : Mc_passes.Loop_unroll.stats;
  stats : Stats.snapshot;
  transformed : (string * string) option;
  analysis : Mc_analysis.Report.t option;
}

type stage = Transfo | Lex | Preprocess | Parse_sema | Codegen | Passes

let stages = [ Transfo; Lex; Preprocess; Parse_sema; Codegen; Passes ]

(* -ftime-report / crash-phase labels: stable since PR 1. *)
let stage_name = function
  | Transfo -> "transfo"
  | Lex -> "lex"
  | Preprocess -> "preprocess"
  | Parse_sema -> "parse-sema"
  | Codegen -> "codegen"
  | Passes -> "passes"

(* Artifact tags in the stage cache and its [cache.<tag>-*] counters. *)
let stage_tag = function
  | Transfo -> "transfo"
  | Lex -> "lex"
  | Preprocess -> "pp"
  | Parse_sema -> "ast"
  | Codegen -> "ir"
  | Passes -> "optir"

type outcome = Executed | Cache_hit | Partial

type trace = (stage * outcome) list

let outcome_name = function
  | Executed -> "run"
  | Cache_hit -> "hit"
  | Partial -> "partial"

let render_trace tr =
  String.concat " "
    (List.map (fun (s, o) -> stage_tag s ^ ":" ^ outcome_name o) tr)

let render_fn_trace fns =
  String.concat " " (List.map (fun (n, o) -> n ^ ":" ^ outcome_name o) fns)

type exec = {
  x_result : result;
  x_trace : trace;
  x_full_hit : bool;
  x_fn_trace : (string * outcome) list;
      (** Per-top-level-slice outcomes of a function-granular execution
          (function name, reused or re-run), in unit order; empty when
          the unit-granular path ran. *)
}

(* ---- fingerprints ------------------------------------------------------- *)

let hash s = Digest.to_hex (Digest.string s)

(* The stage-relevant slice of the options, canonically rendered.  A flag
   change invalidates exactly the stages whose slice mentions it. *)
let option_slice stage o =
  match stage with
  | Transfo ->
    (* Keyed on the *canonical* script (comments and whitespace stripped):
       editing a comment in the script stays a warm hit, editing a step
       invalidates. *)
    (match o.transfo_script with
    | Some script ->
      Printf.sprintf "check=%b;script=%s" o.transfo_check
        (Mc_transfo.Script.canonical script)
    | None -> "")
  | Lex -> "" (* no option reaches the lexer *)
  | Preprocess ->
    String.concat "\x01" (List.map (fun (k, v) -> k ^ "\x02" ^ v) o.defines)
  | Parse_sema ->
    Printf.sprintf "irbuilder=%b;bdepth=%d;nlimit=%d" o.use_irbuilder
      o.bracket_depth o.loop_nest_limit
  | Codegen ->
    Printf.sprintf "irbuilder=%b;fold=%b;verify=%b" o.use_irbuilder o.fold
      o.verify_ir
  | Passes -> Printf.sprintf "optimize=%b;verify=%b" o.optimize o.verify_ir

let source_fingerprint ~name source = hash ("src\x00" ^ name ^ "\x00" ^ source)

let stage_fingerprint stage o ~input =
  hash (stage_tag stage ^ "\x00" ^ input ^ "\x00" ^ option_slice stage o)

(* ---- counters ----------------------------------------------------------- *)

(* Whole-pipeline aggregates over the per-stage counters [Cache] owns: a
   "hit" is a compilation that reused every stage from the parser onward
   (no parse, sema, codegen or pass work ran). *)
let stat_full_hits =
  Stats.counter ~group:"cache" ~name:"hits"
    ~desc:"whole-pipeline cache hits (every stage from parse onward reused)" ()

let stat_full_misses =
  Stats.counter ~group:"cache" ~name:"misses"
    ~desc:"compilations that executed at least one stage from parse onward" ()

let codegen_errors_counter =
  Stats.counter ~group:"driver" ~name:"codegen-errors"
    ~desc:"compilations refused by CodeGen (unsupported construct / errors)" ()

(* Function-granular aggregates: one event per top-level slice of an
   eligible unit whenever the granular path runs (a unit-granular hit
   consults no per-function artifact and counts nothing here). *)
let stat_fn_hits =
  Stats.counter ~group:"cache" ~name:"fn-hits"
    ~desc:"top-level slices whose sema'd AST was reused from a fnast artifact"
    ()

let stat_fn_misses =
  Stats.counter ~group:"cache" ~name:"fn-misses"
    ~desc:"top-level slices that had to be re-parsed and re-analysed" ()

let stat_fn_relinks =
  Stats.counter ~group:"cache" ~name:"fn-relinks"
    ~desc:"functions stitched into a unit IR module from per-function modules"
    ()

(* Analysis-stage aggregates, same shape as the fn cache counters: one
   event per per-function pre-pass IR payload whenever --analyze runs on
   a function-granular unit. *)
let stat_an_fn_hits =
  Stats.counter ~group:"analysis" ~name:"fn-hits"
    ~desc:"functions whose analysis report was reused from a fnanalysis artifact"
    ()

let stat_an_fn_misses =
  Stats.counter ~group:"analysis" ~name:"fn-misses"
    ~desc:"functions analysed afresh (no fnanalysis artifact)" ()

(* ---- execution ---------------------------------------------------------- *)

(* Stage timing on the monotonic wall clock; every interval also lands in
   the current [Stats] registry for -ftime-report, and the active stage
   doubles as the crash-recovery phase watermark so an ICE report can say
   which pipeline stage blew up. *)
let time stage f =
  let label = stage_name stage in
  Crash_recovery.set_phase label;
  let start = Clock.now () in
  let v = f () in
  let dt = Clock.now () -. start in
  Stats.record (Stats.timer ~group:"driver" ~name:label) dt;
  (v, dt)

(* Every execution starts from a known state: every domain-local name/id
   generator rewound, so the same source always produces byte-identical
   ASTs and IR no matter how many compilations preceded it in this
   process or which domain runs it.  (The stats registry needs no reset:
   each execution runs in its own scoped registry.) *)
let reset_compilation_state () =
  Mc_ast.Tree.reset_ids ();
  Mc_ir.Ir.reset_ids ();
  Mc_ompbuilder.Omp_builder.reset_gensym ();
  Mc_codegen.Codegen.reset_gensym ()

let marshal v = Marshal.to_string v []

(* The PPTokens artifact: the parser-ready stream plus the source manager
   that its token locations refer to, plus the #include set (path +
   content digest) the preprocessing actually entered — validated against
   the current file manager before the entry may be reused. *)
type pp_payload = {
  pl_items : Mc_pp.Preprocessor.item list;
  pl_srcmgr : Srcmgr.t;
  pl_includes : (string * string) list;
}

(* ---- function-granular slicing ------------------------------------------ *)

(* A top-level declaration's span of the preprocessed stream.  Function
   definitions are the unit of incremental reuse; every other top-level
   declaration ([sl_fn_def = false]) is a slice whose full token content
   participates in the downstream context, so editing it invalidates
   every later slice. *)
type slice = {
  sl_name : string; (* definition name; "" for non-definition slices *)
  sl_fn_def : bool;
  sl_items : Mc_pp.Preprocessor.item list;
}

(* Split the preprocessed stream into top-level slices by bracket
   tracking: a slice ends at a depth-0 [;] (declaration) or at the [}]
   closing a top-level function body.  Returns [None] when the unit is
   not eligible for granular treatment — a file-scope pragma, unbalanced
   brackets, a top-level brace group that is not a function definition,
   duplicate definition names, or fewer than two slices — in which case
   the caller uses the unit-granular path unchanged. *)
let slice_unit items =
  let module Tk = Mc_lexer.Token in
  let module Pp = Mc_pp.Preprocessor in
  let exception Ineligible in
  let slices = ref [] in
  let cur = ref [] in
  let paren = ref 0 and brace = ref 0 and bracket = ref 0 in
  let name = ref None in
  let name_locked = ref false in (* saw the depth-0 '(' that froze it *)
  let fn_like = ref false in (* that '(' was later followed by a top-level '{' *)
  let finish ~fn_def =
    let nm = match !name with Some n -> n | None -> "" in
    if fn_def && nm = "" then raise Ineligible;
    slices :=
      {
        sl_name = (if fn_def then nm else "");
        sl_fn_def = fn_def;
        sl_items = List.rev !cur;
      }
      :: !slices;
    cur := [];
    name := None;
    name_locked := false;
    fn_like := false
  in
  let at_top () = !paren = 0 && !brace = 0 && !bracket = 0 in
  match
    List.iter
      (fun item ->
        match item with
        | Pp.Prag _ ->
          (* File-scope pragmas are a parse error the slicer must not
             reorder around; leave such units to the unit path. *)
          if !brace = 0 && !paren = 0 then raise Ineligible;
          cur := item :: !cur
        | Pp.Tok tok -> (
          match tok.Tk.kind with
          | Tk.Eof -> if !cur <> [] then raise Ineligible
          | kind ->
            cur := item :: !cur;
            (match kind with
            | Tk.Ident id ->
              if at_top () && not !name_locked then name := Some id
            | Tk.Punct Tk.LParen ->
              if at_top () && !name <> None then name_locked := true;
              incr paren
            | Tk.Punct Tk.RParen ->
              decr paren;
              if !paren < 0 then raise Ineligible
            | Tk.Punct Tk.LBracket -> incr bracket
            | Tk.Punct Tk.RBracket ->
              decr bracket;
              if !bracket < 0 then raise Ineligible
            | Tk.Punct Tk.LBrace ->
              if at_top () then
                if !name_locked then fn_like := true else raise Ineligible;
              incr brace
            | Tk.Punct Tk.RBrace ->
              decr brace;
              if !brace < 0 then raise Ineligible;
              if at_top () then begin
                if not !fn_like then raise Ineligible;
                finish ~fn_def:true
              end
            | Tk.Punct Tk.Semi -> if at_top () then finish ~fn_def:false
            | _ -> ())))
      items
  with
  | () ->
    if !cur <> [] || not (at_top ()) then None
    else begin
      let sl = List.rev !slices in
      let rec dup = function
        | [] -> false
        | s :: rest ->
          (s.sl_fn_def
          && List.exists
               (fun s' -> s'.sl_fn_def && String.equal s.sl_name s'.sl_name)
               rest)
          || dup rest
      in
      if List.length sl < 2 || dup sl then None else Some sl
    end
  | exception Ineligible -> None

(* The context a slice's analysis can observe from earlier slices: full
   token content for non-definition slices, and the tokens up to the
   body-opening brace for function definitions — so a body edit changes
   no later slice's context while a signature or global edit changes
   them all. *)
let slice_interface buf sl =
  if not sl.sl_fn_def then Cache.canonical_items buf sl.sl_items
  else begin
    let module Tk = Mc_lexer.Token in
    let module Pp = Mc_pp.Preprocessor in
    (try
       List.iter
         (fun item ->
           match item with
           | Pp.Tok tok ->
             Buffer.add_string buf (Tk.spelling tok);
             Buffer.add_char buf '\x00';
             if tok.Tk.kind = Tk.Punct Tk.LBrace then raise Exit
           | Pp.Prag _ -> raise Exit (* unreachable: pre-brace is pragma-free *))
         sl.sl_items
     with Exit -> ());
    Buffer.add_string buf "\x02{}"
  end

let slice_digest sl =
  let buf = Buffer.create 512 in
  Cache.canonical_items buf sl.sl_items;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* ---- per-function IR linking -------------------------------------------- *)

(* Link per-function mini-modules (one per slice, in unit order) into a
   unit module reproducing exactly the function order a unit-granular
   codegen would have built: the first module to mention a name places
   it, later declaration copies are dropped, and a definition grafts
   over an earlier declaration in place.  Every [Direct] callee and
   [Fn_addr] operand is then rewired to the canonical record per name —
   the interpreter executes calls by following that very pointer. *)
let link_minis ~module_name minis =
  let by_name : (string, Mc_ir.Ir.func) Hashtbl.t = Hashtbl.create 16 in
  let order : Mc_ir.Ir.func ref list ref = ref [] in
  List.iter
    (fun (mini : Mc_ir.Ir.modul) ->
      List.iter
        (fun (f : Mc_ir.Ir.func) ->
          match Hashtbl.find_opt by_name f.Mc_ir.Ir.f_name with
          | None ->
            Hashtbl.replace by_name f.Mc_ir.Ir.f_name f;
            order := ref f :: !order;
            Stats.incr stat_fn_relinks
          | Some existing
            when existing.Mc_ir.Ir.f_is_decl && not f.Mc_ir.Ir.f_is_decl ->
            (* A definition grafts over the declaration's slot. *)
            Hashtbl.replace by_name f.Mc_ir.Ir.f_name f;
            List.iter
              (fun slot -> if !slot == existing then slot := f)
              !order;
            Stats.incr stat_fn_relinks
          | Some _ -> ())
        mini.Mc_ir.Ir.m_funcs)
    minis;
  let m = Mc_ir.Ir.create_module module_name in
  m.Mc_ir.Ir.m_funcs <- List.rev_map (fun slot -> !slot) !order;
  let resolve (f : Mc_ir.Ir.func) =
    match Hashtbl.find_opt by_name f.Mc_ir.Ir.f_name with
    | Some g -> g
    | None -> f
  in
  Mc_ir.Ir.map_function_refs resolve m;
  m

let zero_timings =
  {
    t_lex = 0.0;
    t_preprocess = 0.0;
    t_parse_sema = 0.0;
    t_codegen = 0.0;
    t_passes = 0.0;
  }

(* The transfo pre-stage rewrites the *source*, so downstream stages see
   it as ordinary input: the lex fingerprint hashes the rewritten text and
   everything from there on is content-addressed exactly as before.  The
   whole walk is mutually recursive because the engine needs a frontend
   (target resolution re-parses after every step) and the differential
   check needs full compilations of the before/after programs. *)
let rec walk ?cache ~frontend_only ~options ~name source =
  match options.transfo_script with
  | None -> walk_stages ?cache ~frontend_only ~options ~name ~transfo:None source
  | Some script -> (
    match apply_transfo ?cache ~options ~name ~script source with
    | Error msg ->
      (* A failed script is a compilation error: report it, produce no
         AST/IR, and never fall back to compiling the unrewritten
         program (Run must not execute something the user didn't ask
         for). *)
      let sm = Srcmgr.create () in
      let d = Diag.create sm in
      Diag.error d ~loc:Loc.invalid msg;
      ( {
          diag = d;
          srcmgr = sm;
          tu = None;
          ir = None;
          codegen_error = None;
          timings = zero_timings;
          unroll_stats = Mc_passes.Loop_unroll.empty_stats;
          stats = [];
          transformed = None;
          analysis = None;
        },
        [ (Transfo, Executed) ],
        false,
        [] )
    | Ok (outc, source', tr) ->
      let options = { options with transfo_script = None } in
      walk_stages ?cache ~frontend_only ~options ~name
        ~transfo:(Some (outc, source', tr)) source')

(* The transfo stage proper: cache-consult, else run the engine.  The
   fingerprint covers the input source, the canonical script and the
   check flag; the payload is (rewritten source, rendered step trace). *)
and apply_transfo ?cache ~options ~name ~script source =
  let fp =
    stage_fingerprint Transfo
      { options with transfo_script = Some script }
      ~input:(source_fingerprint ~name source)
  in
  let cached =
    match cache with
    | None -> None
    | Some c -> Cache.find c ~stage:(stage_tag Transfo) fp
  in
  match cached with
  | Some payload ->
    let (src', tr) : string * string = Marshal.from_string payload 0 in
    Ok (Cache_hit, src', tr)
  | None -> (
    let fe_options = { options with transfo_script = None } in
    let config =
      {
        Mc_transfo.Engine.frontend =
          (fun ~name source -> frontend ~options:fe_options ~name source);
        check =
          (if options.transfo_check then
             Some (fun ~name ~before ~after ->
                 differential_check ~options ~name ~before ~after)
           else None);
      }
    in
    let outcome, _dt =
      time Transfo (fun () ->
          Mc_transfo.Engine.run config ~name ~script ~source)
    in
    match outcome with
    | Error _ as e -> e
    | Ok o ->
      let src' = o.Mc_transfo.Engine.out_source in
      let tr = Mc_transfo.Engine.render_trace o in
      (match cache with
      | None -> ()
      | Some c ->
        (* Engine success implies the intermediate programs were all
           diagnostic-free, so storing is unconditional here. *)
        Cache.store c ~stage:(stage_tag Transfo) fp (marshal (src', tr)));
      Ok (Executed, src', tr))

(* The semantic oracle: both programs compiled classic -O0 (one fixed,
   deterministic configuration) and run on the IR interpreter; the step
   is accepted only if every observable — stdout, the record trace, the
   return value, or the trap — is identical. *)
and differential_check ~options ~name ~before ~after =
  let check_options =
    { options with transfo_script = None; use_irbuilder = false;
      optimize = false }
  in
  let observe source =
    let x = execute ~options:check_options ~name source in
    let r = x.x_result in
    if Diag.has_errors r.diag then
      Error ("does not compile:\n" ^ Diag.render_all r.diag)
    else
      match r.ir with
      | None ->
        Error
          (match r.codegen_error with
          | Some e -> "codegen: " ^ e
          | None -> "no IR produced")
      | Some m -> (
        match Mc_interp.Interp.run_main m with
        | o ->
          Ok
            (`Finished
               ( o.Mc_interp.Interp.output,
                 o.Mc_interp.Interp.trace,
                 o.Mc_interp.Interp.return_value ))
        | exception Mc_interp.Interp.Trap msg -> Ok (`Trapped msg))
  in
  match observe before with
  | Error e -> Error ("the program before the step " ^ e)
  | Ok obs_before -> (
    match observe after with
    | Error e -> Error ("the program after the step " ^ e)
    | Ok obs_after ->
      if obs_before = obs_after then Ok ()
      else
        let describe = function
          | `Trapped msg -> "trap: " ^ msg
          | `Finished (out, tr, ret) ->
            Printf.sprintf "output %S, %d record(s), exit %s" out
              (List.length tr)
              (match ret with Some v -> Int64.to_string v | None -> "void")
        in
        (* Locate the likely culprit: the dependence analysis of the
           *original* program names the loop-carried dependences the
           step may have reordered — a located explanation beats a bare
           "the outputs differ".  Refusals are rare, so the extra
           compile (cache-less, -O0) is off the hot path. *)
        let dependence_notes =
          let x = execute ~options:check_options ~name before in
          let r = x.x_result in
          match r.ir with
          | None -> []
          | Some m ->
            let describe loc = Srcmgr.describe r.srcmgr loc in
            let report =
              Mc_analysis.Analyzer.run ~passes:[ "deps" ] ~describe m
            in
            List.concat_map
              (fun (lr : Mc_analysis.Report.loop_report) ->
                List.map
                  (fun (n : Mc_analysis.Report.note) ->
                    Printf.sprintf "%s: note: %s" n.Mc_analysis.Report.n_loc
                      n.Mc_analysis.Report.n_msg)
                  lr.Mc_analysis.Report.lr_notes)
              (Mc_analysis.Report.loops report)
        in
        Error
          (Printf.sprintf "behaviour diverged: before: %s; after: %s%s"
             (describe obs_before) (describe obs_after)
             (match dependence_notes with
             | [] -> ""
             | notes -> "\n" ^ String.concat "\n" notes)))

and walk_stages ?cache ~frontend_only ~options ~name ~transfo source =
  reset_compilation_state ();
  let trace = ref [] in
  let mark stage outcome = trace := (stage, outcome) :: !trace in
  (match transfo with
  | Some ((outc : outcome), _, _) -> mark Transfo outc
  | None -> ());
  let t_lex = ref 0.0
  and t_preprocess = ref 0.0
  and t_parse_sema = ref 0.0
  and t_codegen = ref 0.0
  and t_passes = ref 0.0 in
  (* The source manager and diagnostics engine are rebound when a cached
     PPTokens artifact (which carries its own source manager) is adopted;
     everything downstream reads through these refs. *)
  let srcmgr = ref (Srcmgr.create ()) in
  let fmgr = Fmgr.create () in
  List.iter
    (fun (path, contents) -> ignore (Fmgr.add_file fmgr ~path ~contents))
    options.extra_files;
  let diag = ref (Diag.create !srcmgr) in
  Diag.set_error_limit !diag options.error_limit;
  (* Let the crash-recovery watermark render "file:line:col" without
     mc_support depending on the source manager. *)
  Crash_recovery.set_position_renderer (fun ~file ~offset ->
      Srcmgr.describe !srcmgr (Loc.encode ~file_id:file ~offset));
  let clean () = Diag.diagnostics !diag = [] in
  let consult ?validate stage fp =
    match cache with
    | None -> None
    | Some c -> Cache.find c ~stage:(stage_tag stage) ?validate fp
  in
  (* Storing is the last act of an executed stage, and only when the
     compilation is still diagnostic-free — so an ICE mid-stage was never
     stored, and a hit never swallows a warning replay. *)
  let save stage fp payload =
    match cache with
    | None -> ()
    | Some c -> if clean () then Cache.store c ~stage:(stage_tag stage) fp (payload ())
  in
  let buf = Buf.create ~name ~contents:source in
  (* The main buffer loads first — file id 1, always — so token locations
     inside cached artifacts stay valid whatever -D buffers or includes a
     particular compilation loads afterwards. *)
  let main_id = Srcmgr.load_main !srcmgr buf in
  let src_fp = source_fingerprint ~name source in

  (* Stage: lex. *)
  let lex_fp = stage_fingerprint Lex options ~input:src_fp in
  (* The token stream is only ever consumed by an *executed* preprocess
     stage, so a cached payload stays un-unmarshalled until (unless) the
     preprocessor actually needs it — on a pp hit the lex hit costs one
     digest lookup, not a deserialization proportional to unit size. *)
  let toks =
    match consult Lex lex_fp with
    | Some payload ->
      mark Lex Cache_hit;
      lazy (Marshal.from_string payload 0 : Mc_lexer.Token.t list)
    | None ->
      let toks, dt =
        time Lex (fun () -> Mc_lexer.Lexer.tokenize !diag ~file_id:main_id buf)
      in
      t_lex := dt;
      mark Lex Executed;
      save Lex lex_fp (fun () -> marshal toks);
      Lazy.from_val toks
  in

  (* Stage: preprocess. *)
  let pp_fp = stage_fingerprint Preprocess options ~input:src_fp in
  let adopted = ref None in
  let validate payload =
    let (p : pp_payload) = Marshal.from_string payload 0 in
    let ok =
      List.for_all
        (fun (path, dg) ->
          match Fmgr.get_file fmgr path with
          | Some b -> String.equal (Buf.digest b) dg
          | None -> false)
        p.pl_includes
    in
    if ok then adopted := Some p;
    ok
  in
  let items =
    match consult ~validate Preprocess pp_fp with
    | Some _ ->
      let p = Option.get !adopted in
      mark Preprocess Cache_hit;
      (* Adopt the cached compilation state wholesale: the marshalled
         source manager already holds the main buffer, -D buffers and
         every include, and the replayed tokens point into it. *)
      srcmgr := p.pl_srcmgr;
      diag := Diag.create p.pl_srcmgr;
      Diag.set_error_limit !diag options.error_limit;
      p.pl_items
    | None ->
      let pp = Mc_pp.Preprocessor.create !diag !srcmgr fmgr in
      List.iter
        (fun (n, body) ->
          Mc_pp.Preprocessor.define_object_macro pp ~name:n ~body)
        options.defines;
      let items, dt =
        time Preprocess (fun () ->
            Mc_pp.Preprocessor.preprocess_tokens pp ~file_id:main_id buf
              (Lazy.force toks))
      in
      t_preprocess := dt;
      mark Preprocess Executed;
      save Preprocess pp_fp (fun () ->
          marshal
            {
              pl_items = items;
              pl_srcmgr = !srcmgr;
              pl_includes = Mc_pp.Preprocessor.include_digests pp;
            });
      items
  in

  (* Stage: parse + sema (the parser drives sema, so they are one stage).
     Content-addressed on the canonical preprocessed stream, not on the
     source: a comment-only edit lands here with an unchanged input.

     Cached compilations additionally slice the stream into top-level
     declarations ({!slice_unit}) and consult/fill one "fnast" artifact
     per slice, so a body edit re-parses exactly the edited function and
     adopts every other slice's sema'd decls from the cache. *)
  let slices = if Option.is_some cache then slice_unit items else None in
  let ast_fp =
    stage_fingerprint Parse_sema options ~input:(Cache.canonical_digest items)
  in
  let ir_fp = stage_fingerprint Codegen options ~input:ast_fp in
  let fn_trace = ref [] in
  let mk_sema () =
    let sema_mode =
      if options.use_irbuilder then Mc_sema.Sema.Irbuilder
      else Mc_sema.Sema.Classic
    in
    Mc_sema.Sema.create ~mode:sema_mode
      ~loop_nest_limit:options.loop_nest_limit !diag
  in
  let legacy_parse () =
    let sema = mk_sema () in
    let tu, dt =
      time Parse_sema (fun () ->
          Mc_parser.Parser.parse_translation_unit
            ~bracket_depth:options.bracket_depth sema items)
    in
    t_parse_sema := !t_parse_sema +. dt;
    mark Parse_sema Executed;
    save Parse_sema ast_fp (fun () -> marshal tu);
    tu
  in
  (* Parse slice by slice against one shared sema.  A hit adopts the
     artifact's decls (claiming its id watermark first — PR 8's counter
     discipline at the AST layer); a miss parses just that slice and
     stores its new decls with earlier functions' bodies stripped, so an
     artifact carries exactly one body: its own.  Returns [None] to fall
     back to the unit path: on any error (the unit parser's recovery and
     diagnostics must be reproduced exactly, and nothing would be cached
     anyway), or when a definition mutated an earlier slice's record
     (prototype in one slice, definition in another) — a shape
     per-function artifacts cannot represent. *)
  let granular_parse slices =
    let pslice = option_slice Parse_sema options in
    let sema = mk_sema () in
    let iface = Buffer.create 1024 in
    let seen_fns = ref [] in
    let decl_count = ref 0 in
    let acc = ref [] in
    let slice_label sl = if sl.sl_fn_def then sl.sl_name else "<decl>" in
    let note_fns decls =
      List.iter
        (function
          | Mc_ast.Tree.Tu_fn fn -> seen_fns := fn :: !seen_fns
          | Mc_ast.Tree.Tu_var _ -> ())
        decls
    in
    let rec go = function
      | [] -> Some (List.rev !acc)
      | sl :: rest -> (
        let ctx = Digest.to_hex (Digest.string (Buffer.contents iface)) in
        let fp =
          hash ("fnast\x00" ^ ctx ^ "\x00" ^ slice_digest sl ^ "\x00" ^ pslice)
        in
        let cached =
          match cache with
          | None -> None
          | Some c -> Cache.find c ~stage:"fnast" fp
        in
        match cached with
        | Some payload ->
          Stats.incr stat_fn_hits;
          let ((wm, decls) : int * Mc_ast.Tree.tu_decl list) =
            Marshal.from_string payload 0
          in
          Mc_ast.Tree.claim_up_to wm;
          List.iter (Mc_sema.Sema.adopt_tu_decl sema) decls;
          decl_count := !decl_count + List.length decls;
          note_fns decls;
          fn_trace := (slice_label sl, Cache_hit) :: !fn_trace;
          acc := (sl, fp, decls, true) :: !acc;
          slice_interface iface sl;
          go rest
        | None ->
          Stats.incr stat_fn_misses;
          let (_ : Mc_ast.Tree.translation_unit), dt =
            time Parse_sema (fun () ->
                Mc_parser.Parser.parse_translation_unit
                  ~bracket_depth:options.bracket_depth sema sl.sl_items)
          in
          t_parse_sema := !t_parse_sema +. dt;
          let all = (Mc_sema.Sema.translation_unit sema).Mc_ast.Tree.tu_decls in
          let rec drop n l =
            if n = 0 then l
            else match l with [] -> [] | _ :: t -> drop (n - 1) t
          in
          let fresh = drop !decl_count all in
          decl_count := List.length all;
          if Diag.has_errors !diag then None
          else if
            sl.sl_fn_def
            && not
                 (List.exists
                    (function
                      | Mc_ast.Tree.Tu_fn fn ->
                        String.equal fn.Mc_ast.Tree.fn_name sl.sl_name
                        && fn.Mc_ast.Tree.fn_body <> None
                      | Mc_ast.Tree.Tu_var _ -> false)
                    fresh)
          then None
          else begin
            (match cache with
            | Some c when clean () ->
              let stripped =
                List.filter_map
                  (fun fn ->
                    match fn.Mc_ast.Tree.fn_body with
                    | Some b ->
                      fn.Mc_ast.Tree.fn_body <- None;
                      Some (fn, b)
                    | None -> None)
                  !seen_fns
              in
              Fun.protect
                ~finally:(fun () ->
                  List.iter
                    (fun (fn, b) -> fn.Mc_ast.Tree.fn_body <- Some b)
                    stripped)
                (fun () ->
                  Cache.store c ~stage:"fnast" fp
                    (marshal (Mc_ast.Tree.current_id (), fresh)))
            | _ -> ());
            note_fns fresh;
            fn_trace := (slice_label sl, Executed) :: !fn_trace;
            acc := (sl, fp, fresh, false) :: !acc;
            slice_interface iface sl;
            go rest
          end)
    in
    go slices
  in
  let unit_ast = consult Parse_sema ast_fp in
  (* For eligible units the unit IR artifact is peeked before the parse
     decision: its presence means the backend will never need per-slice
     decls, so a unit-level AST hit can be adopted wholesale. *)
  let unit_ir =
    match slices with
    | Some _ when (not frontend_only) && not (Diag.has_errors !diag) ->
      Some (consult Codegen ir_fp)
    | _ -> None
  in
  let need_decls = match unit_ir with Some None -> true | _ -> false in
  let adopt_unit_ast payload =
    mark Parse_sema Cache_hit;
    (Marshal.from_string payload 0 : Mc_ast.Tree.translation_unit)
  in
  let tu, slice_sems =
    match (unit_ast, slices) with
    | Some payload, _ when not need_decls -> (adopt_unit_ast payload, None)
    | _, Some sl when clean () -> (
      match granular_parse sl with
      | Some sems ->
        let total = List.length sems in
        let reused =
          List.length (List.filter (fun (_, _, _, r) -> r) sems)
        in
        mark Parse_sema
          (if reused = 0 then Executed
           else if reused = total && Option.is_some unit_ast then Cache_hit
           else Partial);
        if Option.is_none unit_ast then
          save Parse_sema ast_fp (fun () ->
              marshal
                {
                  Mc_ast.Tree.tu_decls =
                    List.concat_map (fun (_, _, d, _) -> d) sems;
                });
        ( {
            Mc_ast.Tree.tu_decls =
              List.concat_map (fun (_, _, d, _) -> d) sems;
          },
          Some sems )
      | None ->
        (* Mid-flight ineligibility: restart the unit way on a fresh
           sema, id counter and diagnostics engine (lex/pp allocate no
           ids, and granular parse only runs on a clean diag, so both
           rewinds lose nothing). *)
        fn_trace := [];
        Mc_ast.Tree.reset_ids ();
        diag := Diag.create !srcmgr;
        Diag.set_error_limit !diag options.error_limit;
        (match unit_ast with
        | Some payload -> (adopt_unit_ast payload, None)
        | None -> (legacy_parse (), None)))
    | Some payload, _ -> (adopt_unit_ast payload, None)
    | None, _ -> (legacy_parse (), None)
  in

  let timings () =
    {
      t_lex = !t_lex;
      t_preprocess = !t_preprocess;
      t_parse_sema = !t_parse_sema;
      t_codegen = !t_codegen;
      t_passes = !t_passes;
    }
  in
  let transformed = Option.map (fun (_, s, tr) -> (s, tr)) transfo in
  (* Filled by the analyze stage (if requested) before [finish] runs. *)
  let analysis_ref = ref None in
  let no_ir codegen_error =
    {
      diag = !diag;
      srcmgr = !srcmgr;
      tu = Some tu;
      ir = None;
      codegen_error;
      timings = timings ();
      unroll_stats = Mc_passes.Loop_unroll.empty_stats;
      stats = [];
      transformed;
      analysis = !analysis_ref;
    }
  in
  let finish ir unroll =
    {
      diag = !diag;
      srcmgr = !srcmgr;
      tu = Some tu;
      ir = Some ir;
      codegen_error = None;
      timings = timings ();
      unroll_stats = unroll;
      stats = [];
      transformed;
      analysis = !analysis_ref;
    }
  in
  let verify_or_ice m =
    if options.verify_ir then begin
      match Mc_ir.Verifier.check m with
      | Ok () -> ()
      | Error e ->
        invalid_arg
          (Printf.sprintf "IR verification failed after codegen:\n%s" e)
    end
  in
  let mode =
    if options.use_irbuilder then Mc_codegen.Codegen.Irbuilder
    else Mc_codegen.Codegen.Classic
  in
  let passes_of () =
    if options.optimize then Mc_passes.Pass_manager.o1
    else Mc_passes.Pass_manager.o0
  in
  (* The unit IR artifact may have been peeked before the parse stage
     (eligible units); never consult twice, the counters would lie. *)
  let consult_ir () =
    match unit_ir with Some res -> res | None -> consult Codegen ir_fp
  in
  let r =
    if frontend_only || Diag.has_errors !diag then no_ir None
    else begin
      let opt_fp = stage_fingerprint Passes options ~input:ir_fp in
      let cslice = option_slice Codegen options in
      let oslice = option_slice Passes options in
      (* Legacy whole-unit codegen. *)
      let emit_unit () =
        match
          time Codegen (fun () ->
              match
                Mc_codegen.Codegen.emit_translation_unit ~fold:options.fold
                  ~mode tu
              with
              | m -> Ok m
              | exception Mc_codegen.Codegen.Unsupported msg -> Error msg)
        with
        (* The time codegen spent before bailing out is still real work;
           keep it so stage timings stay truthful on the error path. *)
        | Error msg, dt ->
          t_codegen := dt;
          mark Codegen Executed;
          Stats.incr codegen_errors_counter;
          Error msg
        | Ok m, dt ->
          t_codegen := dt;
          mark Codegen Executed;
          verify_or_ice m;
          (* Snapshot *before* the pass pipeline mutates m in place. *)
          save Codegen ir_fp (fun () -> "U" ^ marshal m);
          Ok (`Whole m)
      in
      (* Function-granular codegen: emit exactly the slices whose "fnir"
         (pre-pass, chained off the slice's fnast fingerprint) artifact
         is missing.  Gensyms reset per fresh slice, which is what makes
         a per-function module context-free: outlined-function and
         dispatch-site numbering restart per function (names stay unique
         — they are prefixed by the parent function's name). *)
      let emit_minis sems =
        let hits = ref 0 in
        let rec go acc = function
          | [] -> Ok (List.rev acc, if !hits > 0 then Partial else Executed)
          | (_, fnast_fp, decls, _) :: rest -> (
            if decls = [] then go acc rest
            else
              let fnir_fp = hash ("fnir\x00" ^ fnast_fp ^ "\x00" ^ cslice) in
              let cached =
                match cache with
                | None -> None
                | Some c -> Cache.find c ~stage:"fnir" fnir_fp
              in
              match cached with
              | Some payload ->
                incr hits;
                go ((fnir_fp, payload, None) :: acc) rest
              | None -> (
                Mc_codegen.Codegen.reset_gensym ();
                Mc_ompbuilder.Omp_builder.reset_gensym ();
                match
                  time Codegen (fun () ->
                      match
                        Mc_codegen.Codegen.emit_translation_unit
                          ~fold:options.fold ~mode
                          { Mc_ast.Tree.tu_decls = decls }
                      with
                      | m -> Ok m
                      | exception Mc_codegen.Codegen.Unsupported msg ->
                        Error msg)
                with
                | Error msg, dt ->
                  t_codegen := !t_codegen +. dt;
                  mark Codegen Executed;
                  Stats.incr codegen_errors_counter;
                  Error msg
                | Ok mini, dt ->
                  t_codegen := !t_codegen +. dt;
                  verify_or_ice mini;
                  (* Snapshot before the pass pipeline mutates it. *)
                  let payload = marshal (mini, Mc_ir.Ir.current_id ()) in
                  (match cache with
                  | Some c when clean () ->
                    Cache.store c ~stage:"fnir" fnir_fp payload
                  | _ -> ());
                  go ((fnir_fp, payload, Some mini) :: acc) rest))
        in
        go [] sems
      in
      (* The unit "ir" artifact carries a shape tag — 'U' for a whole
         module, 'F' for an eligible unit's (fnir fp, payload) list — so
         a reader never has to re-derive the eligibility decision that
         stored it (a unit-level AST hit skips the slicer entirely, yet
         its ir artifact may well be per-function).  The 'F' list stays
         unopened unless the passes stage actually needs the minis: a
         full-warm compile never deserialises pre-pass IR at all. *)
      let pre_pass =
        match consult_ir () with
        | Some payload when payload.[0] = 'U' ->
          mark Codegen Cache_hit;
          let m : Mc_ir.Ir.modul = Marshal.from_string payload 1 in
          (* The passes stage may still run on this module (its own
             entry evicted or unreadable); its ids must be claimed or
             pass-created instructions collide with cached ones. *)
          Mc_ir.Ir.claim_ids m;
          Ok (`Whole m)
        | Some payload ->
          mark Codegen Cache_hit;
          Ok
            (`Pairs
               (lazy
                 (List.map
                    (fun (fp, p) -> (fp, p, None))
                    (Marshal.from_string payload 1 : (string * string) list))))
        | None -> (
          match slice_sems with
          | None -> emit_unit ()
          | Some sems -> (
            match emit_minis sems with
            | Error msg -> Error msg
            | Ok (pairs, outcome) ->
              mark Codegen outcome;
              save Codegen ir_fp (fun () ->
                  "F" ^ marshal (List.map (fun (fp, p, _) -> (fp, p)) pairs));
              Ok (`Pairs (Lazy.from_val pairs))))
      in
      match pre_pass with
      | Error msg -> no_ir (Some msg)
      | Ok pre -> (
        (* Stage: analyze (optional).  Keyed on *pre-pass* IR — the
           analyser wants allocas, not mem2reg'd SSA — and cached per
           function on the granular path: editing one body re-analyses
           exactly that function, every sibling serves its cached report
           fragment.  Report fragments are plain strings (locations are
           rendered at analysis time), so a cached fragment is
           byte-identical to a fresh one. *)
        (match options.analyze with
        | None -> ()
        | Some sel ->
          let apasses = Mc_analysis.Analyzer.normalize_passes (Some sel) in
          let aslice = "analyze=" ^ String.concat "," apasses in
          let describe loc = Srcmgr.describe !srcmgr loc in
          let run_on m =
            Mc_analysis.Analyzer.run ~passes:apasses ~describe m
          in
          let report =
            match pre with
            | `Whole m -> (
              let a_fp = hash ("analysis\x00" ^ ir_fp ^ "\x00" ^ aslice) in
              let cached =
                match cache with
                | None -> None
                | Some c -> Cache.find c ~stage:"analysis" a_fp
              in
              match cached with
              | Some p -> (Marshal.from_string p 0 : Mc_analysis.Report.t)
              | None ->
                let rep = run_on m in
                (match cache with
                | Some c when clean () ->
                  Cache.store c ~stage:"analysis" a_fp (marshal rep)
                | _ -> ());
                rep)
            | `Pairs minis ->
              let frs =
                List.concat_map
                  (fun (fnir_fp, payload, mini) ->
                    let fa_fp =
                      hash ("fnanalysis\x00" ^ fnir_fp ^ "\x00" ^ aslice)
                    in
                    let cached =
                      match cache with
                      | None -> None
                      | Some c -> Cache.find c ~stage:"fnanalysis" fa_fp
                    in
                    match cached with
                    | Some p ->
                      Stats.incr stat_an_fn_hits;
                      (Marshal.from_string p 0
                        : Mc_analysis.Report.func_report list)
                    | None ->
                      Stats.incr stat_an_fn_misses;
                      let m =
                        match mini with
                        | Some m -> m
                        | None ->
                          (* Read-only walk: analysis creates no
                             instructions, so no id claim is needed. *)
                          let ((m, _wm) : Mc_ir.Ir.modul * int) =
                            Marshal.from_string payload 0
                          in
                          m
                      in
                      let frs = (run_on m).Mc_analysis.Report.r_funcs in
                      (match cache with
                      | Some c when clean () ->
                        Cache.store c ~stage:"fnanalysis" fa_fp (marshal frs)
                      | _ -> ());
                      frs)
                  (Lazy.force minis)
              in
              { Mc_analysis.Report.r_passes = apasses; r_funcs = frs }
          in
          analysis_ref := Some report);
        (* Stage: passes (OptIR). *)
        match consult Passes opt_fp with
        | Some payload ->
          mark Passes Cache_hit;
          let (m', unroll) : Mc_ir.Ir.modul * Mc_passes.Loop_unroll.stats =
            Marshal.from_string payload 0
          in
          finish m' unroll
        | None -> (
          match pre with
          | `Whole m ->
            let report, dt =
              time Passes (fun () ->
                  Mc_passes.Pass_manager.run ~verify_between:options.verify_ir
                    ~passes:(passes_of ()) m)
            in
            t_passes := dt;
            mark Passes Executed;
            save Passes opt_fp (fun () ->
                marshal (m, report.Mc_passes.Pass_manager.unroll_stats));
            finish m report.Mc_passes.Pass_manager.unroll_stats
          | `Pairs minis ->
            (* Per slice — one "fnoptir" artifact each — then relink. *)
            let hits = ref 0 in
            let agg = ref Mc_passes.Loop_unroll.empty_stats in
            let add (a : Mc_passes.Loop_unroll.stats)
                (b : Mc_passes.Loop_unroll.stats) =
              {
                Mc_passes.Loop_unroll.fully_unrolled =
                  a.Mc_passes.Loop_unroll.fully_unrolled
                  + b.Mc_passes.Loop_unroll.fully_unrolled;
                partially_unrolled =
                  a.Mc_passes.Loop_unroll.partially_unrolled
                  + b.Mc_passes.Loop_unroll.partially_unrolled;
                skipped =
                  a.Mc_passes.Loop_unroll.skipped
                  + b.Mc_passes.Loop_unroll.skipped;
              }
            in
            let finals =
              List.map
                (fun (fnir_fp, payload, mini) ->
                  let fnopt_fp =
                    hash ("fnoptir\x00" ^ fnir_fp ^ "\x00" ^ oslice)
                  in
                  let cached =
                    match cache with
                    | None -> None
                    | Some c -> Cache.find c ~stage:"fnoptir" fnopt_fp
                  in
                  match cached with
                  | Some p ->
                    incr hits;
                    let ((mf, unroll, wm)
                          : Mc_ir.Ir.modul * Mc_passes.Loop_unroll.stats * int)
                        =
                      Marshal.from_string p 0
                    in
                    Mc_ir.Ir.claim_up_to wm;
                    agg := add !agg unroll;
                    mf
                  | None ->
                    let m =
                      match mini with
                      | Some m -> m (* freshly emitted: ids already live *)
                      | None ->
                        let ((m, wm) : Mc_ir.Ir.modul * int) =
                          Marshal.from_string payload 0
                        in
                        Mc_ir.Ir.claim_up_to wm;
                        m
                    in
                    let report, dt =
                      time Passes (fun () ->
                          Mc_passes.Pass_manager.run
                            ~verify_between:options.verify_ir
                            ~passes:(passes_of ()) m)
                    in
                    t_passes := !t_passes +. dt;
                    agg := add !agg report.Mc_passes.Pass_manager.unroll_stats;
                    (match cache with
                    | Some c when clean () ->
                      Cache.store c ~stage:"fnoptir" fnopt_fp
                        (marshal
                           ( m,
                             report.Mc_passes.Pass_manager.unroll_stats,
                             Mc_ir.Ir.current_id () ))
                    | _ -> ());
                    m)
                (Lazy.force minis)
            in
            mark Passes (if !hits > 0 then Partial else Executed);
            let final = link_minis ~module_name:"a.out" finals in
            verify_or_ice final;
            save Passes opt_fp (fun () -> marshal (final, !agg));
            finish final !agg))
    end
  in
  let tr = List.rev !trace in
  let full_hit =
    r.ir <> None
    && List.exists (fun (s, _) -> s = Passes) tr
    && List.for_all
         (fun (s, o) ->
           match s with
           | Lex | Preprocess -> true
           | Transfo | Parse_sema | Codegen | Passes -> o = Cache_hit)
         tr
  in
  if Option.is_some cache && not frontend_only then
    Stats.incr (if full_hit then stat_full_hits else stat_full_misses);
  (r, tr, full_hit, List.rev !fn_trace)

and execute ?cache ?(options = default_options) ?(name = "input.c") source =
  let (r, tr, full_hit, fn_trace), registry =
    Stats.with_scoped_registry (fun () ->
        walk ?cache ~frontend_only:false ~options ~name source)
  in
  {
    x_result = { r with stats = Stats.snapshot ~registry () };
    x_trace = tr;
    x_full_hit = full_hit;
    x_fn_trace = fn_trace;
  }

and frontend ?(options = default_options) ?(name = "input.c") source =
  let (r, _, _, _), _registry =
    Stats.with_scoped_registry (fun () ->
        walk ~frontend_only:true ~options ~name source)
  in
  ( r.diag,
    (* A failed transfo script yields no AST at all; frontend callers
       still get the diagnostics. *)
    match r.tu with
    | Some tu -> tu
    | None -> { Mc_ast.Tree.tu_decls = [] } )

(* The transfo pre-stage alone, for the daemon's transform requests and
   for embedders that want the rewritten source without compiling it:
   returns (cache outcome, rewritten source, rendered step trace). *)
let transform ?cache ?(options = default_options) ?(name = "input.c") ~script
    source =
  let r, _registry =
    Stats.with_scoped_registry (fun () ->
        apply_transfo ?cache ~options ~name ~script source)
  in
  r
