(* The mccd wire protocol: length-prefixed, versioned frames over a
   Unix-domain socket, carrying marshalled request/response values.

   One connection serves one request.  A request is the client's
   invocation (a pure value — exactly what makes [Invocation] shareable
   across processes too) plus its translation units, each with a content
   digest the server re-verifies before compiling: a mismatch means the
   bytes were mangled in transit and must be rejected, not compiled.

   A response is either a per-unit result list — rendered diagnostics, a
   marshalled IR module (the client runs the interpreter locally, so
   `mcc --daemon` preserves Run/-emit-ir behaviour bit for bit), the
   per-stage cache trace, and a stats snapshot the client folds into its
   own registry so -print-stats works transparently — or a
   protocol-level rejection.

   Marshal is safe here because both ends are built from this same
   source tree; the frame's magic + version reject cross-version talk
   before any unmarshalling happens. *)

module Binio = Mc_support.Binio
module Stats = Mc_support.Stats

let magic = "MCCD"

(* v2: the request became a variant (compile | transform) and the
   response gained [Resp_transformed]; v1 frames are rejected by the
   header check before unmarshalling.

   v3: overload resilience — [Req_ping] health checks, [Resp_busy]
   load-shedding replies carrying the queue depth and a retry hint,
   [Resp_pong] with live queue occupancy.  v2 frames are rejected by
   the header check like any other cross-version talk.

   v4: dataflow analysis — [Req_analyze] runs the {!Mc_analysis} passes
   over one unit against the daemon's warm per-function analysis cache
   and answers with [Resp_analysis] (both renderings plus the finding
   count, so the client needs no analysis code of its own). *)
let version = 4

let default_socket () =
  match Sys.getenv_opt "MCCD_SOCKET" with
  | Some p when p <> "" -> p
  | _ ->
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mccd-%d.sock" (Unix.getuid ()))

type request_unit = { q_name : string; q_source : string; q_digest : string }

type compile_request = {
  q_invocation : Invocation.t;
  q_units : request_unit list;
}

(* A source-to-source request: apply the invocation's transfo script to
   one unit and return the rewritten program — no compilation of the
   result, so script authors can iterate against a warm daemon. *)
type transform_request = {
  t_invocation : Invocation.t; (* carries the script and the check flag *)
  t_name : string;
  t_source : string;
  t_digest : string;
}

(* An analysis request: compile one unit as far as pre-pass IR and run
   the selected analysis passes (the invocation's [analyze] field), so
   an editor or CI gate polls a warm daemon instead of cold-starting the
   pipeline per query. *)
type analyze_request = {
  a_invocation : Invocation.t; (* carries the pass selection and format *)
  a_name : string;
  a_source : string;
  a_digest : string;
}

type request =
  | Req_compile of compile_request
  | Req_transform of transform_request
  | Req_analyze of analyze_request
  | Req_ping
      (* health check: answered from the accept/worker path without
         touching the pipeline — loadgen and clients use it to probe a
         daemon's liveness and queue occupancy cheaply *)

let unit_digest source = Digest.to_hex (Digest.string source)

let request_of_units invocation units =
  Req_compile
    {
      q_invocation = invocation;
      q_units =
        List.map
          (fun (name, source) ->
            { q_name = name; q_source = source; q_digest = unit_digest source })
          units;
    }

let request_of_transform invocation ~name source =
  Req_transform
    {
      t_invocation = invocation;
      t_name = name;
      t_source = source;
      t_digest = unit_digest source;
    }

let request_of_analyze invocation ~name source =
  Req_analyze
    {
      a_invocation = invocation;
      a_name = name;
      a_source = source;
      a_digest = unit_digest source;
    }

type response_unit = {
  r_name : string;
  r_outcome : outcome;
  r_trace : Pipeline.trace;
  r_cache_hit : bool;
  r_wall : float;
}

and outcome =
  | R_ok of {
      ok_diag : string; (* rendered diagnostics, possibly empty *)
      ok_errors : bool;
      ok_ir : string option; (* marshalled Mc_ir.Ir.modul *)
      ok_codegen_error : string option;
    }
  | R_ice of {
      ice_phase : string;
      ice_exn : string;
      ice_location : string option;
      ice_reproducer : string option; (* server-side bundle directory *)
    }

type response =
  | Resp_units of {
      p_units : response_unit list; (* in request order *)
      p_stats : Stats.snapshot; (* the request's counters, server-side *)
      p_wall : float; (* server-side wall time for the request *)
    }
  | Resp_transformed of {
      p_result : (transformed, string) result;
          (* Error: a script-level failure (parse, resolution, check) —
             rendered, line-numbered, user-facing *)
      p_stats : Stats.snapshot;
      p_wall : float;
    }
  | Resp_analysis of {
      p_result : (analysis, string) result;
          (* Error: the unit failed to compile far enough to analyse —
             rendered diagnostics or a codegen refusal, user-facing *)
      p_stats : Stats.snapshot;
      p_wall : float;
    }
  | Resp_rejected of string
  | Resp_busy of {
      queue_depth : int; (* connections queued when the shed happened *)
      retry_after : float;
          (* seconds the client should wait before retrying; a hint,
             not a promise of capacity *)
    }
  | Resp_pong of { pong_queue_depth : int; pong_capacity : int }

and transformed = {
  x_source : string; (* the rewritten program *)
  x_trace : string; (* rendered step trace *)
  x_cache_hit : bool; (* served from the daemon's transfo stage cache *)
}

(* Both renderings travel so the client stays free of analysis code;
   the structured report stays server-side (it is cacheable there). *)
and analysis = {
  an_text : string; (* Report.render_text *)
  an_json : string; (* Report.render_json *)
  an_findings : int; (* drives the client's exit code *)
  an_cache_hit : bool; (* every stage up to the analysis was reused *)
}

(* ---- channel IO ---------------------------------------------------------- *)

(* A torn frame: the connection died mid-write.  The injected version
   flushes a prefix of the real frame and then fails exactly like a
   closed peer would, so both ends exercise their truncated-read /
   failed-write recovery paths. *)
let fault_write_frame = Mc_support.Fault.point "protocol.write_frame"

let send oc v =
  let payload = Marshal.to_string v [] in
  if Mc_support.Fault.fire fault_write_frame then begin
    let framed = Binio.frame ~magic ~version payload in
    (try
       output_string oc (String.sub framed 0 (String.length framed / 2));
       flush oc
     with Sys_error _ -> ());
    raise (Sys_error "injected torn frame")
  end
  else Binio.write_frame ~magic ~version oc payload

let recv : type a. in_channel -> (a, string) result =
 fun ic ->
  match Binio.read_frame ~magic ~version ic with
  | Error e -> Error (Binio.frame_error_to_string e)
  | Ok payload -> (
    match (Marshal.from_string payload 0 : a) with
    | v -> Ok v
    | exception _ -> Error "unmarshalling failed")

let write_request oc (r : request) = send oc r
let read_request ic : (request, string) result = recv ic
let write_response oc (r : response) = send oc r
let read_response ic : (response, string) result = recv ic
