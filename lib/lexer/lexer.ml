module Buf = Mc_srcmgr.Memory_buffer
module Loc = Mc_srcmgr.Source_location
module Diag = Mc_diag.Diagnostics
module Stats = Mc_support.Stats

let stat_tokens =
  Stats.counter ~group:"lexer" ~name:"tokens-lexed"
    ~desc:"tokens produced by the lexer (all buffers, raw-lex prepass included)"
    ()
let stat_buffers =
  Stats.counter ~group:"lexer" ~name:"buffers-lexed"
    ~desc:"source buffers a lexer was created for" ()

type t = {
  diag : Diag.t;
  file_id : int;
  buf : Buf.t;
  len : int;
  mutable pos : int;
  mutable at_line_start : bool;
  mutable has_space : bool;
}

let create diag ~file_id buf =
  Stats.incr stat_buffers;
  {
    diag;
    file_id;
    buf;
    len = Buf.length buf;
    pos = 0;
    at_line_start = true;
    has_space = false;
  }

let loc_at t pos = Loc.encode ~file_id:t.file_id ~offset:pos
let peek t = if t.pos < t.len then Some (Buf.char_at t.buf t.pos) else None

let peek2 t =
  if t.pos + 1 < t.len then Some (Buf.char_at t.buf (t.pos + 1)) else None

let advance t = t.pos <- t.pos + 1

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_ident_cont c = is_ident_start c || is_digit c
let is_hex_digit c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let rec skip_trivia t =
  match peek t with
  | Some (' ' | '\t' | '\r') ->
    t.has_space <- true;
    advance t;
    skip_trivia t
  | Some '\n' ->
    t.at_line_start <- true;
    t.has_space <- true;
    advance t;
    skip_trivia t
  | Some '\\' when peek2 t = Some '\n' ->
    (* Line continuation: splice without starting a new line. *)
    t.has_space <- true;
    advance t;
    advance t;
    skip_trivia t
  | Some '/' when peek2 t = Some '/' ->
    while peek t <> None && peek t <> Some '\n' do
      advance t
    done;
    t.has_space <- true;
    skip_trivia t
  | Some '/' when peek2 t = Some '*' ->
    let start = t.pos in
    advance t;
    advance t;
    let rec find () =
      match peek t with
      | None -> Diag.error t.diag ~loc:(loc_at t start) "unterminated /* comment"
      | Some '*' when peek2 t = Some '/' ->
        advance t;
        advance t
      | Some '\n' ->
        t.at_line_start <- true;
        advance t;
        find ()
      | Some _ ->
        advance t;
        find ()
    in
    find ();
    t.has_space <- true;
    skip_trivia t
  | _ -> ()

let lex_ident t start =
  while match peek t with Some c -> is_ident_cont c | None -> false do
    advance t
  done;
  let text = Buf.sub t.buf ~pos:start ~len:(t.pos - start) in
  match Token.keyword_of_string text with
  | Some kw -> Token.Keyword kw
  | None -> Token.Ident (Mc_support.Intern.share text)

(* Numeric literals: decimal/hex/octal integers with [uUlL] suffixes, and
   decimal floats with optional fraction and exponent. *)
let lex_number t start =
  let is_hex =
    peek t = Some '0' && (peek2 t = Some 'x' || peek2 t = Some 'X')
  in
  if is_hex then begin
    advance t;
    advance t;
    while match peek t with Some c -> is_hex_digit c | None -> false do
      advance t
    done
  end
  else begin
    while match peek t with Some c -> is_digit c | None -> false do
      advance t
    done
  end;
  let is_float = ref false in
  if (not is_hex) && peek t = Some '.' then begin
    is_float := true;
    advance t;
    while match peek t with Some c -> is_digit c | None -> false do
      advance t
    done
  end;
  if (not is_hex) && (peek t = Some 'e' || peek t = Some 'E') then begin
    let save = t.pos in
    advance t;
    (match peek t with Some ('+' | '-') -> advance t | _ -> ());
    if match peek t with Some c -> is_digit c | None -> false then begin
      is_float := true;
      while match peek t with Some c -> is_digit c | None -> false do
        advance t
      done
    end
    else t.pos <- save
  end;
  if !is_float then begin
    (match peek t with Some ('f' | 'F' | 'l' | 'L') -> advance t | _ -> ());
    let text = Buf.sub t.buf ~pos:start ~len:(t.pos - start) in
    let digits =
      match text.[String.length text - 1] with
      | 'f' | 'F' | 'l' | 'L' -> String.sub text 0 (String.length text - 1)
      | _ -> text
    in
    match float_of_string_opt digits with
    | Some value -> Token.Float_lit { value; text }
    | None ->
      Diag.error t.diag ~loc:(loc_at t start)
        (Printf.sprintf "invalid floating-point literal '%s'" text);
      Token.Float_lit { value = 0.0; text }
  end
  else begin
    let suffix_unsigned = ref false and suffix_long = ref false in
    let rec suffixes () =
      match peek t with
      | Some ('u' | 'U') ->
        suffix_unsigned := true;
        advance t;
        suffixes ()
      | Some ('l' | 'L') ->
        suffix_long := true;
        advance t;
        (match peek t with Some ('l' | 'L') -> advance t | _ -> ());
        suffixes ()
      | _ -> ()
    in
    suffixes ();
    let text = Buf.sub t.buf ~pos:start ~len:(t.pos - start) in
    let digits =
      let stop = ref (String.length text) in
      while
        !stop > 0
        && match text.[!stop - 1] with 'u' | 'U' | 'l' | 'L' -> true | _ -> false
      do
        decr stop
      done;
      String.sub text 0 !stop
    in
    let value =
      (* [Int64.of_string] understands the 0x/0o prefixes; C's leading-zero
         octal needs rewriting to OCaml's 0o form. *)
      let normalized =
        if String.length digits > 1 && digits.[0] = '0'
           && digits.[1] <> 'x' && digits.[1] <> 'X'
        then "0o" ^ String.sub digits 1 (String.length digits - 1)
        else digits
      in
      match Int64.of_string_opt normalized with
      | Some v -> v
      | None -> (
        (* Decimal literals above [Int64.max_int] need OCaml's unsigned
           parse ("0u" prefix) to wrap like a C unsigned constant. *)
        match Int64.of_string_opt ("0u" ^ normalized) with
        | Some v -> v
        | None ->
          Diag.error t.diag ~loc:(loc_at t start)
            (Printf.sprintf "invalid integer literal '%s'" text);
          0L)
    in
    Token.Int_lit
      {
        value;
        suffix = { suffix_unsigned = !suffix_unsigned; suffix_long = !suffix_long };
        text;
      }
  end

let escape_char t = function
  | 'n' -> '\n'
  | 't' -> '\t'
  | 'r' -> '\r'
  | '0' -> '\000'
  | '\\' -> '\\'
  | '\'' -> '\''
  | '"' -> '"'
  | c ->
    Diag.warning t.diag ~loc:(loc_at t t.pos)
      (Printf.sprintf "unknown escape sequence '\\%c'" c);
    c

let lex_char_lit t start =
  advance t (* opening quote *);
  let value =
    match peek t with
    | Some '\\' ->
      advance t;
      let c = match peek t with Some c -> c | None -> '\000' in
      advance t;
      Char.code (escape_char t c)
    | Some c ->
      advance t;
      Char.code c
    | None -> 0
  in
  (match peek t with
  | Some '\'' -> advance t
  | _ -> Diag.error t.diag ~loc:(loc_at t start) "unterminated character literal");
  let text = Buf.sub t.buf ~pos:start ~len:(t.pos - start) in
  Token.Char_lit { value; text }

let lex_string_lit t start =
  advance t (* opening quote *);
  let out = Buffer.create 16 in
  let rec go () =
    match peek t with
    | None | Some '\n' ->
      Diag.error t.diag ~loc:(loc_at t start) "unterminated string literal"
    | Some '"' -> advance t
    | Some '\\' ->
      advance t;
      (match peek t with
      | Some c ->
        advance t;
        Buffer.add_char out (escape_char t c)
      | None -> ());
      go ()
    | Some c ->
      advance t;
      Buffer.add_char out c;
      go ()
  in
  go ();
  let text = Buf.sub t.buf ~pos:start ~len:(t.pos - start) in
  Token.String_lit { value = Buffer.contents out; text }

let lex_punct t =
  let open Token in
  let c = match peek t with Some c -> c | None -> assert false in
  let if2 c2 yes no =
    advance t;
    if peek t = Some c2 then begin
      advance t;
      yes
    end
    else no
  in
  match c with
  | '(' -> advance t; Some LParen
  | ')' -> advance t; Some RParen
  | '{' -> advance t; Some LBrace
  | '}' -> advance t; Some RBrace
  | '[' -> advance t; Some LBracket
  | ']' -> advance t; Some RBracket
  | ';' -> advance t; Some Semi
  | ',' -> advance t; Some Comma
  | '?' -> advance t; Some Question
  | ':' -> advance t; Some Colon
  | '~' -> advance t; Some Tilde
  | '!' -> Some (if2 '=' ExclaimEqual Exclaim)
  | '=' -> Some (if2 '=' EqualEqual Equal)
  | '^' -> Some (if2 '=' CaretEqual Caret)
  | '.' ->
    advance t;
    if peek t = Some '.' && peek2 t = Some '.' then begin
      advance t;
      advance t;
      Some Ellipsis
    end
    else Some Period
  | '#' -> Some (if2 '#' HashHash Hash)
  | '+' ->
    advance t;
    (match peek t with
    | Some '+' -> advance t; Some PlusPlus
    | Some '=' -> advance t; Some PlusEqual
    | _ -> Some Plus)
  | '-' ->
    advance t;
    (match peek t with
    | Some '-' -> advance t; Some MinusMinus
    | Some '=' -> advance t; Some MinusEqual
    | Some '>' -> advance t; Some Arrow
    | _ -> Some Minus)
  | '*' -> Some (if2 '=' StarEqual Star)
  | '/' -> Some (if2 '=' SlashEqual Slash)
  | '%' -> Some (if2 '=' PercentEqual Percent)
  | '&' ->
    advance t;
    (match peek t with
    | Some '&' -> advance t; Some AmpAmp
    | Some '=' -> advance t; Some AmpEqual
    | _ -> Some Amp)
  | '|' ->
    advance t;
    (match peek t with
    | Some '|' -> advance t; Some PipePipe
    | Some '=' -> advance t; Some PipeEqual
    | _ -> Some Pipe)
  | '<' ->
    advance t;
    (match peek t with
    | Some '=' -> advance t; Some LessEqual
    | Some '<' ->
      advance t;
      if peek t = Some '=' then begin
        advance t;
        Some LessLessEqual
      end
      else Some LessLess
    | _ -> Some Less)
  | '>' ->
    advance t;
    (match peek t with
    | Some '=' -> advance t; Some GreaterEqual
    | Some '>' ->
      advance t;
      if peek t = Some '=' then begin
        advance t;
        Some GreaterGreaterEqual
      end
      else Some GreaterGreater
    | _ -> Some Greater)
  | _ -> None

let next t =
  skip_trivia t;
  let at_line_start = t.at_line_start in
  let has_space_before = t.has_space in
  t.at_line_start <- false;
  t.has_space <- false;
  let start = t.pos in
  let loc = loc_at t start in
  let kind =
    match peek t with
    | None -> Token.Eof
    | Some c when is_ident_start c -> lex_ident t start
    | Some c when is_digit c -> lex_number t start
    | Some '.' when (match peek2 t with Some d -> is_digit d | None -> false) ->
      lex_number t start
    | Some '\'' -> lex_char_lit t start
    | Some '"' -> lex_string_lit t start
    | Some c -> (
      match lex_punct t with
      | Some p -> Token.Punct p
      | None ->
        Diag.error t.diag ~loc
          (Printf.sprintf "unexpected character '%c' (0x%02x)" c (Char.code c));
        advance t;
        (* Re-lex from the next character rather than emitting a junk token. *)
        Token.Punct Token.Semi)
  in
  if kind <> Token.Eof then Stats.incr stat_tokens;
  { Token.kind; loc; len = t.pos - start; at_line_start; has_space_before }

let tokenize diag ~file_id buf =
  let lexer = create diag ~file_id buf in
  let rec go acc =
    let tok = next lexer in
    if Token.is_eof tok then List.rev acc else go (tok :: acc)
  in
  go []
