(* The annotated control-flow graph an analysis pass walks: one function's
   blocks with precomputed predecessor lists, a reverse-postorder
   numbering, the dominator tree, and the per-statement source locations
   CodeGen stamped onto the instructions ([Ir.inst.i_loc]) — the bridge
   from an IR-level fact back to a "file:line:col" the user can act on.

   The CFG is a read-only *view*: it aliases the function's blocks and
   never mutates them, so building one is cheap and an analysis can run
   on a module that the pass pipeline will later rewrite in place. *)

open Mc_ir
module Dominators = Mc_passes.Dominators
module Loc = Mc_srcmgr.Source_location

type t = {
  func : Ir.func;
  dom : Dominators.t;
  rpo : Ir.block list; (* reachable blocks, entry first *)
  preds : (int, Ir.block list) Hashtbl.t; (* b_id -> predecessors *)
}

let build func =
  let dom = Dominators.compute func in
  let rpo = Dominators.reverse_postorder dom in
  let preds = Hashtbl.create 16 in
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          Hashtbl.replace preds s.Ir.b_id
            (b :: Option.value (Hashtbl.find_opt preds s.Ir.b_id) ~default:[]))
        (Ir.successors b))
    func.Ir.f_blocks;
  { func; dom; rpo; preds }

let predecessors t b =
  List.rev (Option.value (Hashtbl.find_opt t.preds b.Ir.b_id) ~default:[])

let is_reachable t b = Dominators.is_reachable t.dom b

(* The distinct valid source locations of a block's instructions, in
   program order — the annotation layer of the annotated CFG. *)
let block_locs b =
  List.rev
    (List.fold_left
       (fun acc (i : Ir.inst) ->
         if
           Loc.is_valid i.Ir.i_loc
           && not (List.exists (Loc.equal i.Ir.i_loc) acc)
         then i.Ir.i_loc :: acc
         else acc)
       []
       (Ir.block_insts b))

let first_loc b =
  List.find_map
    (fun (i : Ir.inst) ->
      if Loc.is_valid i.Ir.i_loc then Some i.Ir.i_loc else None)
    (Ir.block_insts b)

let last_loc b =
  List.fold_left
    (fun acc (i : Ir.inst) ->
      if Loc.is_valid i.Ir.i_loc then Some i.Ir.i_loc else acc)
    None
    (Ir.block_insts b)
