(* Generic iterative dataflow over an annotated CFG, plus the two
   classic instantiations the analyser passes build on.

   The engine is direction- and lattice-agnostic: a [problem] names the
   direction, the boundary fact (entry of the entry block for a forward
   problem; exit of every Ret/Unreachable block for a backward one), the
   optimistic initial fact, the join (may = union, must = intersection —
   the engine does not care), and a whole-block transfer function.  The
   solver is a FIFO worklist seeded in reverse postorder (postorder for
   backward problems), so acyclic graphs converge in one sweep and loops
   in a handful; [iterations] counts block-transfer applications, which
   the tests use to pin convergence behaviour on diamonds and loops. *)

open Mc_ir
module Int_set = Set.Make (Int)

type direction = Forward | Backward

type 'fact problem = {
  direction : direction;
  boundary : 'fact; (* fact at the graph's entry edge(s) *)
  init : 'fact; (* optimistic starting fact for every other block *)
  join : 'fact -> 'fact -> 'fact;
  equal : 'fact -> 'fact -> bool;
  transfer : Ir.block -> 'fact -> 'fact;
}

type 'fact solution = {
  entry_fact : Ir.block -> 'fact; (* fact holding at block entry *)
  exit_fact : Ir.block -> 'fact; (* fact holding at block exit *)
  iterations : int; (* block transfers applied before the fixpoint *)
}

let solve (cfg : Cfg.t) (p : 'fact problem) : 'fact solution =
  let blocks =
    match p.direction with Forward -> cfg.Cfg.rpo | Backward -> List.rev cfg.Cfg.rpo
  in
  let into b =
    (* edges whose facts flow into [b]'s transfer *)
    match p.direction with
    | Forward -> Cfg.predecessors cfg b
    | Backward -> Ir.successors b
  in
  let out_of b =
    match p.direction with
    | Forward -> Ir.successors b
    | Backward -> Cfg.predecessors cfg b
  in
  let at_boundary b =
    match p.direction with
    | Forward -> (match cfg.Cfg.rpo with e :: _ -> e == b | [] -> false)
    | Backward -> (
      (* every block the function can end in contributes the boundary *)
      match b.Ir.b_term with
      | Ir.Ret _ | Ir.Unreachable | Ir.No_term -> true
      | Ir.Br _ | Ir.Cond_br _ -> false)
  in
  let pre = Hashtbl.create 16 (* fact before transfer, per b_id *)
  and post = Hashtbl.create 16 (* fact after transfer, per b_id *) in
  List.iter (fun b -> Hashtbl.replace post b.Ir.b_id p.init) blocks;
  let queue = Queue.create () in
  let queued = Hashtbl.create 16 in
  let enqueue b =
    if not (Hashtbl.mem queued b.Ir.b_id) then begin
      Hashtbl.replace queued b.Ir.b_id ();
      Queue.add b queue
    end
  in
  List.iter enqueue blocks;
  let iterations = ref 0 in
  while not (Queue.is_empty queue) do
    let b = Queue.pop queue in
    Hashtbl.remove queued b.Ir.b_id;
    incr iterations;
    let incoming =
      List.fold_left
        (fun acc src ->
          match Hashtbl.find_opt post src.Ir.b_id with
          | Some f -> p.join acc f
          | None -> acc (* unreachable feeder: contributes nothing *))
        (if at_boundary b then p.boundary else p.init)
        (into b)
    in
    Hashtbl.replace pre b.Ir.b_id incoming;
    let outgoing = p.transfer b incoming in
    let changed =
      match Hashtbl.find_opt post b.Ir.b_id with
      | Some old -> not (p.equal old outgoing)
      | None -> true
    in
    if changed then begin
      Hashtbl.replace post b.Ir.b_id outgoing;
      List.iter enqueue (out_of b)
    end
  done;
  let fact_in tbl fallback b =
    match Hashtbl.find_opt tbl b.Ir.b_id with Some f -> f | None -> fallback
  in
  let pre_of = fact_in pre p.init and post_of = fact_in post p.init in
  {
    entry_fact =
      (match p.direction with Forward -> pre_of | Backward -> post_of);
    exit_fact =
      (match p.direction with Forward -> post_of | Backward -> pre_of);
    iterations = !iterations;
  }

(* ---- shared helpers ------------------------------------------------------ *)

(* Resolve a pointer operand to the alloca slot it addresses directly
   (through casts, but not through GEPs — a GEP'd access is an element
   access, not a whole-slot access). *)
let rec slot_of_ptr (v : Ir.value) : Ir.inst option =
  match v with
  | Ir.Inst_ref i -> (
    match i.Ir.i_kind with
    | Ir.Alloca _ -> Some i
    | Ir.Cast (_, x) -> slot_of_ptr x
    | _ -> None)
  | _ -> None

(* Resolve a pointer operand to its base alloca through GEP chains and
   casts: the slot whose storage an element access touches. *)
let rec base_slot (v : Ir.value) : Ir.inst option =
  match v with
  | Ir.Inst_ref i -> (
    match i.Ir.i_kind with
    | Ir.Alloca _ -> Some i
    | Ir.Cast (_, x) -> base_slot x
    | Ir.Gep { base; _ } -> base_slot base
    | _ -> None)
  | _ -> None

(* ---- reaching definitions ------------------------------------------------ *)

(* Forward may-analysis over a tracked set of alloca slots.  The
   definition sites are the Store instructions whose pointer is a
   tracked slot, plus one synthetic "uninitialized" definition per slot
   that holds on function entry; a store kills every other definition of
   its slot.  A load observing the synthetic definition may therefore
   read the slot before any store — the uninit pass's core fact. *)

type rd_def = {
  rd_slot : Ir.inst; (* the alloca being defined *)
  rd_store : Ir.inst option; (* None = the synthetic uninitialized def *)
}

type rd = {
  rd_defs : rd_def array; (* def index -> site *)
  rd_entry : Ir.block -> Int_set.t; (* defs reaching block entry *)
  rd_uninit : int -> int option; (* slot i_id -> its uninit def index *)
  rd_step : Ir.inst -> Int_set.t -> Int_set.t; (* per-inst transfer *)
  rd_iterations : int;
}

let reaching_defs (cfg : Cfg.t) ~(tracked : Ir.inst -> bool) : rd =
  let defs = ref [] and n_defs = ref 0 in
  let add_def d =
    let ix = !n_defs in
    defs := d :: !defs;
    incr n_defs;
    ix
  in
  let uninit_ix = Hashtbl.create 8 (* slot i_id -> def index *)
  and store_ix = Hashtbl.create 16 (* store i_id -> def index *)
  and slot_defs = Hashtbl.create 8 (* slot i_id -> Int_set of def indices *) in
  let note_slot_def slot ix =
    let cur =
      Option.value
        (Hashtbl.find_opt slot_defs slot.Ir.i_id)
        ~default:Int_set.empty
    in
    Hashtbl.replace slot_defs slot.Ir.i_id (Int_set.add ix cur)
  in
  let boundary = ref Int_set.empty in
  let consider_slot (i : Ir.inst) =
    match i.Ir.i_kind with
    | Ir.Alloca _ when tracked i && not (Hashtbl.mem uninit_ix i.Ir.i_id) ->
      let ix = add_def { rd_slot = i; rd_store = None } in
      Hashtbl.replace uninit_ix i.Ir.i_id ix;
      note_slot_def i ix;
      boundary := Int_set.add ix !boundary
    | _ -> ()
  in
  List.iter
    (fun b -> List.iter consider_slot (Ir.block_insts b))
    cfg.Cfg.func.Ir.f_blocks;
  List.iter
    (fun b ->
      List.iter
        (fun (i : Ir.inst) ->
          match i.Ir.i_kind with
          | Ir.Store { ptr; _ } -> (
            match slot_of_ptr ptr with
            | Some slot when tracked slot ->
              let ix = add_def { rd_slot = slot; rd_store = Some i } in
              Hashtbl.replace store_ix i.Ir.i_id ix;
              note_slot_def slot ix
            | _ -> ())
          | _ -> ())
        (Ir.block_insts b))
    cfg.Cfg.func.Ir.f_blocks;
  let defs = Array.of_list (List.rev !defs) in
  let step (i : Ir.inst) fact =
    match Hashtbl.find_opt store_ix i.Ir.i_id with
    | None -> fact
    | Some ix ->
      let slot = defs.(ix).rd_slot in
      let killed =
        Option.value
          (Hashtbl.find_opt slot_defs slot.Ir.i_id)
          ~default:Int_set.empty
      in
      Int_set.add ix (Int_set.diff fact killed)
  in
  let transfer b fact = List.fold_left (fun f i -> step i f) fact (Ir.block_insts b) in
  let sol =
    solve cfg
      {
        direction = Forward;
        boundary = !boundary;
        init = Int_set.empty;
        join = Int_set.union;
        equal = Int_set.equal;
        transfer;
      }
  in
  {
    rd_defs = defs;
    rd_entry = sol.entry_fact;
    rd_uninit = (fun slot_id -> Hashtbl.find_opt uninit_ix slot_id);
    rd_step = step;
    rd_iterations = sol.iterations;
  }

(* ---- liveness ------------------------------------------------------------ *)

(* Backward may-analysis: a tracked slot is live at a point if some path
   from it reaches a Load of the slot before any Store to it. *)

type live = {
  lv_entry : Ir.block -> Int_set.t; (* slot ids live at block entry *)
  lv_exit : Ir.block -> Int_set.t;
  lv_iterations : int;
}

let liveness (cfg : Cfg.t) ~(tracked : Ir.inst -> bool) : live =
  let step_back (i : Ir.inst) fact =
    match i.Ir.i_kind with
    | Ir.Store { ptr; _ } -> (
      match slot_of_ptr ptr with
      | Some slot when tracked slot -> Int_set.remove slot.Ir.i_id fact
      | _ -> fact)
    | Ir.Load { ptr } -> (
      match slot_of_ptr ptr with
      | Some slot when tracked slot -> Int_set.add slot.Ir.i_id fact
      | _ -> fact)
    | _ -> fact
  in
  let transfer b fact =
    List.fold_left (fun f i -> step_back i f) fact (List.rev (Ir.block_insts b))
  in
  let sol =
    solve cfg
      {
        direction = Backward;
        boundary = Int_set.empty;
        init = Int_set.empty;
        join = Int_set.union;
        equal = Int_set.equal;
        transfer;
      }
  in
  { lv_entry = sol.entry_fact; lv_exit = sol.exit_fact; lv_iterations = sol.iterations }
