(* The analysis report: what `mcc --analyze` prints, what the daemon
   ships over the wire, and what the pipeline caches per function.

   Everything in here is plain strings and lists — source locations are
   rendered to "file:line:col" at analysis time (while the srcmgr that
   can describe them is in scope), so a report fragment marshals cleanly
   into the stage cache and a cached fragment is byte-identical to a
   freshly computed one. *)

type verdict = Safe | Unsafe | Unknown

let verdict_name = function
  | Safe -> "safe"
  | Unsafe -> "unsafe"
  | Unknown -> "unknown"

(* A located remark attached to a finding or loop report: (loc, text). *)
type note = { n_loc : string; n_msg : string }

type finding = {
  f_pass : string; (* "uninit" | "unreachable" | "leak" *)
  f_func : string;
  f_loc : string; (* rendered "file:line:col", or "<invalid loc>" *)
  f_msg : string;
  f_notes : note list;
}

(* Per-directive safety verdict for one canonical loop. *)
type directive_verdict = {
  dv_directive : string; (* "reverse" | "interchange" | "tile" | ... *)
  dv_verdict : verdict;
  dv_why : string;
}

type loop_report = {
  lr_func : string;
  lr_loc : string; (* loop header's source location *)
  lr_iv : string; (* induction variable name, "?" if unrecognised *)
  lr_depth : int; (* 1 = not nested inside another loop *)
  lr_directives : directive_verdict list;
  lr_notes : note list; (* offending accesses, dependence witnesses *)
}

(* One function's fragment — the unit of caching. *)
type func_report = {
  fr_func : string;
  fr_findings : finding list;
  fr_loops : loop_report list;
}

type t = {
  r_passes : string list; (* passes that ran, in order *)
  r_funcs : func_report list; (* in module order *)
}

let findings t = List.concat_map (fun fr -> fr.fr_findings) t.r_funcs
let loops t = List.concat_map (fun fr -> fr.fr_loops) t.r_funcs
let finding_count t = List.length (findings t)

(* ---- text rendering ------------------------------------------------------ *)

let render_text t =
  let buf = Buffer.create 1024 in
  let note n = Buffer.add_string buf (Printf.sprintf "  %s: note: %s\n" n.n_loc n.n_msg) in
  List.iter
    (fun fr ->
      List.iter
        (fun f ->
          Buffer.add_string buf
            (Printf.sprintf "%s: warning: [%s] %s [function '%s']\n" f.f_loc
               f.f_pass f.f_msg f.f_func);
          List.iter note f.f_notes)
        fr.fr_findings;
      List.iter
        (fun lr ->
          Buffer.add_string buf
            (Printf.sprintf "%s: loop over '%s' (depth %d) in '%s':\n" lr.lr_loc
               lr.lr_iv lr.lr_depth lr.lr_func);
          List.iter
            (fun dv ->
              Buffer.add_string buf
                (Printf.sprintf "    %-12s %s — %s\n" (dv.dv_directive ^ ":")
                   (verdict_name dv.dv_verdict) dv.dv_why))
            lr.lr_directives;
          List.iter note lr.lr_notes)
        fr.fr_loops)
    t.r_funcs;
  let n_funcs = List.length t.r_funcs in
  Buffer.add_string buf
    (Printf.sprintf "analysis: %d finding(s), %d loop(s) in %d function(s) [%s]\n"
       (finding_count t)
       (List.length (loops t))
       n_funcs
       (String.concat "," t.r_passes));
  Buffer.contents buf

(* ---- JSON rendering ------------------------------------------------------ *)

(* Hand-rolled like bench/: report text is ASCII (paths, identifiers,
   our own messages), for which OCaml's %S escaping is valid JSON. *)
let json_str s = Printf.sprintf "%S" s

let json_list f xs = "[" ^ String.concat "," (List.map f xs) ^ "]"

let json_note n =
  Printf.sprintf "{\"loc\":%s,\"msg\":%s}" (json_str n.n_loc) (json_str n.n_msg)

let json_finding f =
  Printf.sprintf "{\"pass\":%s,\"func\":%s,\"loc\":%s,\"msg\":%s,\"notes\":%s}"
    (json_str f.f_pass) (json_str f.f_func) (json_str f.f_loc)
    (json_str f.f_msg)
    (json_list json_note f.f_notes)

let json_directive dv =
  Printf.sprintf "{\"name\":%s,\"verdict\":%s,\"why\":%s}"
    (json_str dv.dv_directive)
    (json_str (verdict_name dv.dv_verdict))
    (json_str dv.dv_why)

let json_loop lr =
  Printf.sprintf
    "{\"func\":%s,\"loc\":%s,\"iv\":%s,\"depth\":%d,\"directives\":%s,\"notes\":%s}"
    (json_str lr.lr_func) (json_str lr.lr_loc) (json_str lr.lr_iv) lr.lr_depth
    (json_list json_directive lr.lr_directives)
    (json_list json_note lr.lr_notes)

let render_json t =
  Printf.sprintf
    "{\"schema\":\"mcc-analysis/1\",\"passes\":%s,\"findings\":%s,\"loops\":%s}\n"
    (json_list json_str t.r_passes)
    (json_list json_finding (findings t))
    (json_list json_loop (loops t))
