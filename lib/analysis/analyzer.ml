(* The analysis passes over the annotated CFG.

   Four passes, all built on the [Dataflow] engine and the [Cfg] view:

   - "uninit":      reaching definitions with a synthetic uninitialized
                    definition per scalar slot; a load that can observe
                    the synthetic def may read the variable before any
                    store.
   - "unreachable": CFG reachability; a source statement whose every
                    lowered instruction lives in dominator-unreachable
                    blocks can never execute.
   - "leak":        forward may-hold tracking of acquire/release pairs
                    (malloc/free, fopen/fclose); a return reached while
                    a resource may still be held is a leak on that path
                    (the hector-style error-path case: `return` before
                    `free` in an error arm).
   - "deps":        per canonical loop, a loop-carried-dependence report
                    stating which loop transformation directives are
                    provably safe, which are provably unsafe, and why —
                    the analysis counterpart of the transformation
                    legality question from the paper (§4: the user
                    asserts semantic legality; this pass checks what the
                    compiler can prove about it).

   Verdict discipline for "deps" (the fuzz oracle depends on it):
   [Unsafe] is only ever emitted with a concrete witness — a pair of
   affine array accesses with a provable nonzero carried distance, or a
   non-reduction write to a loop-invariant address.  Anything the
   analysis cannot classify degrades to [Unknown], never [Unsafe], so a
   semantics-preserving transformation can never be called unsafe. *)

open Mc_ir
module Loc = Mc_srcmgr.Source_location
module Dominators = Mc_passes.Dominators
module Loop_info = Mc_passes.Loop_info
module Int_set = Dataflow.Int_set

let all_passes = [ "uninit"; "unreachable"; "leak"; "deps" ]
let is_known_pass p = List.mem p all_passes

(* Keep the caller's order, drop unknown names and duplicates; an empty
   selection means everything. *)
let normalize_passes = function
  | None | Some [] -> all_passes
  | Some ps ->
    let seen = Hashtbl.create 4 in
    List.filter
      (fun p ->
        is_known_pass p && not (Hashtbl.mem seen p)
        && (Hashtbl.replace seen p (); true))
      ps

(* ---- slot classification ------------------------------------------------- *)

(* How one alloca is used across the whole function.  A *scalar* slot is
   only ever addressed whole (direct loads/stores, possibly through
   casts) and never escapes; those are the slots the flow-sensitive
   passes track.  A GEP'd slot is an aggregate; an escaped slot (address
   stored, passed to a call, returned...) is out of scope entirely. *)
type usage = {
  u_slot : Ir.inst;
  mutable u_loads : Ir.inst list; (* direct Load, program order *)
  mutable u_stores : Ir.inst list; (* direct Store *)
  mutable u_elem_loads : Ir.inst list; (* Load through a GEP on this base *)
  mutable u_elem_stores : Ir.inst list; (* Store through a GEP *)
  mutable u_gep : bool;
  mutable u_escaped : bool;
}

let slot_name (s : Ir.inst) = if s.Ir.i_name = "" then "<anon>" else s.Ir.i_name

let rec strip_casts (v : Ir.value) =
  match v with
  | Ir.Inst_ref { Ir.i_kind = Ir.Cast (_, x); _ } -> strip_casts x
  | v -> v

let classify (f : Ir.func) : usage list =
  let table = Hashtbl.create 16 and order = ref [] in
  let usage (s : Ir.inst) =
    match Hashtbl.find_opt table s.Ir.i_id with
    | Some u -> u
    | None ->
      let u =
        { u_slot = s; u_loads = []; u_stores = []; u_elem_loads = [];
          u_elem_stores = []; u_gep = false; u_escaped = false }
      in
      Hashtbl.replace table s.Ir.i_id u;
      order := u :: !order;
      u
  in
  let escape v =
    match Dataflow.base_slot v with
    | Some s -> (usage s).u_escaped <- true
    | None -> ()
  in
  let walk_inst (i : Ir.inst) =
    match i.Ir.i_kind with
    | Ir.Alloca _ -> ignore (usage i)
    | Ir.Load { ptr } -> (
      match Dataflow.slot_of_ptr ptr with
      | Some s -> (usage s).u_loads <- (usage s).u_loads @ [ i ]
      | None -> (
        match Dataflow.base_slot ptr with
        | Some s -> (usage s).u_elem_loads <- (usage s).u_elem_loads @ [ i ]
        | None -> ()))
    | Ir.Store { ptr; v } -> (
      (match Dataflow.slot_of_ptr ptr with
      | Some s -> (usage s).u_stores <- (usage s).u_stores @ [ i ]
      | None -> (
        match Dataflow.base_slot ptr with
        | Some s -> (usage s).u_elem_stores <- (usage s).u_elem_stores @ [ i ]
        | None -> ()));
      (* storing a slot's *address* is an escape *)
      escape v)
    | Ir.Gep { base; index; _ } ->
      (match Dataflow.base_slot base with
      | Some s -> (usage s).u_gep <- true
      | None -> ());
      escape index
    | Ir.Call { args; _ } -> List.iter escape args
    | Ir.Binop (_, a, b) | Ir.Icmp (_, a, b) | Ir.Fcmp (_, a, b) ->
      escape a; escape b
    | Ir.Select (c, a, b) -> escape c; escape a; escape b
    | Ir.Phi { incoming } -> List.iter (fun (v, _) -> escape v) incoming
    | Ir.Cast _ -> () (* transparent: the cast's own uses decide *)
  in
  List.iter
    (fun b ->
      List.iter walk_inst (Ir.block_insts b);
      match b.Ir.b_term with Ir.Ret (Some v) -> escape v | _ -> ())
    f.Ir.f_blocks;
  List.rev !order

let is_scalar u =
  (not u.u_escaped) && (not u.u_gep) && u.u_elem_loads = [] && u.u_elem_stores = []

(* All uses of instruction [l]'s result across the function (the IR
   keeps no use lists; functions are small enough to scan). *)
let result_uses (f : Ir.func) (l : Ir.inst) : Ir.inst list =
  let is_ref v = match v with Ir.Inst_ref i -> i == l | _ -> false in
  List.concat_map
    (fun b ->
      List.filter (fun i -> List.exists is_ref (Ir.inst_operands i)) (Ir.block_insts b))
    f.Ir.f_blocks

let used_by_terminator (f : Ir.func) (l : Ir.inst) =
  let is_ref v = match strip_casts v with Ir.Inst_ref i -> i == l | _ -> false in
  List.exists
    (fun b ->
      match b.Ir.b_term with
      | Ir.Ret (Some v) -> is_ref v
      | Ir.Cond_br (c, _, _) -> is_ref c
      | _ -> false)
    f.Ir.f_blocks

(* ---- pass: uninit -------------------------------------------------------- *)

let callee_name = function
  | Ir.Direct f -> f.Ir.f_name
  | Ir.Runtime s -> s

let uninit_pass ~describe (f : Ir.func) (cfg : Cfg.t) usages : Report.finding list =
  let scalar_ids = Hashtbl.create 8 in
  List.iter
    (fun u -> if is_scalar u then Hashtbl.replace scalar_ids u.u_slot.Ir.i_id ())
    usages;
  let tracked (s : Ir.inst) = Hashtbl.mem scalar_ids s.Ir.i_id in
  let rd = Dataflow.reaching_defs cfg ~tracked in
  let reported = Hashtbl.create 4 and findings = ref [] in
  let report (slot : Ir.inst) (load : Ir.inst) =
    if not (Hashtbl.mem reported slot.Ir.i_id) then begin
      Hashtbl.replace reported slot.Ir.i_id ();
      let notes =
        if Loc.is_valid slot.Ir.i_loc && not (Loc.equal slot.Ir.i_loc load.Ir.i_loc)
        then [ { Report.n_loc = describe slot.Ir.i_loc; n_msg = "declared here" } ]
        else []
      in
      findings :=
        { Report.f_pass = "uninit"; f_func = f.Ir.f_name;
          f_loc = describe load.Ir.i_loc;
          f_msg =
            Printf.sprintf "variable '%s' may be read before initialization"
              (slot_name slot);
          f_notes = notes }
        :: !findings
    end
  in
  List.iter
    (fun b ->
      let fact = ref (rd.Dataflow.rd_entry b) in
      List.iter
        (fun (i : Ir.inst) ->
          (match i.Ir.i_kind with
          | Ir.Load { ptr } -> (
            match Dataflow.slot_of_ptr ptr with
            | Some slot when tracked slot -> (
              match rd.Dataflow.rd_uninit slot.Ir.i_id with
              | Some ix when Int_set.mem ix !fact -> report slot i
              | _ -> ())
            | _ -> ())
          | _ -> ());
          fact := rd.Dataflow.rd_step i !fact)
        (Ir.block_insts b))
    cfg.Cfg.rpo;
  (* Aggregates are checked flow-insensitively: an array that is read
     through GEPs but never written anywhere is uninitialized on every
     path that reaches a read. *)
  List.iter
    (fun u ->
      if
        (not u.u_escaped) && u.u_elem_loads <> []
        && u.u_elem_stores = [] && u.u_stores = []
      then
        match u.u_elem_loads with
        | load :: _ ->
          findings :=
            { Report.f_pass = "uninit"; f_func = f.Ir.f_name;
              f_loc = describe load.Ir.i_loc;
              f_msg =
                Printf.sprintf "array '%s' is read but never written"
                  (slot_name u.u_slot);
              f_notes = [] }
            :: !findings
        | [] -> ())
    usages;
  List.rev !findings

(* ---- pass: unreachable --------------------------------------------------- *)

let unreachable_pass ~describe (f : Ir.func) (cfg : Cfg.t) : Report.finding list =
  (* A source statement counts as unreachable only if *no* reachable
     block carries its location: a loop condition shares its location
     with reachable control blocks and must not be flagged. *)
  let live_locs = Hashtbl.create 32 in
  List.iter
    (fun b ->
      List.iter (fun l -> Hashtbl.replace live_locs l ())
        (Cfg.block_locs b))
    cfg.Cfg.rpo;
  let dead = ref [] in
  List.iter
    (fun b ->
      if not (Cfg.is_reachable cfg b) then
        List.iter
          (fun l ->
            if not (Hashtbl.mem live_locs l) then begin
              Hashtbl.replace live_locs l (); (* report each location once *)
              dead := l :: !dead
            end)
          (Cfg.block_locs b))
    f.Ir.f_blocks;
  List.map
    (fun l ->
      { Report.f_pass = "unreachable"; f_func = f.Ir.f_name; f_loc = describe l;
        f_msg = "statement can never be executed"; f_notes = [] })
    (List.sort Loc.compare (List.rev !dead))

(* ---- pass: leak ---------------------------------------------------------- *)

let acquire_fns = [ "malloc"; "calloc"; "realloc"; "fopen"; "acquire" ]
let release_fns = [ "free"; "fclose"; "release" ]

let is_call_to names (i : Ir.inst) =
  match i.Ir.i_kind with
  | Ir.Call { callee; _ } -> List.mem (callee_name callee) names
  | _ -> false

let leak_pass ~describe (f : Ir.func) (cfg : Cfg.t) usages : Report.finding list =
  (* Candidate slots: scalar pointer slots that are ever assigned the
     result of an acquire call, and whose loaded value never escapes
     into anything but a release call, a dereference, or a compare. *)
  let acquire_store = Hashtbl.create 4 (* slot i_id -> acquiring Store *) in
  let acquired_value v =
    match strip_casts v with
    | Ir.Inst_ref c when is_call_to acquire_fns c -> true
    | _ -> false
  in
  List.iter
    (fun u ->
      if is_scalar u then
        List.iter
          (fun (st : Ir.inst) ->
            match st.Ir.i_kind with
            | Ir.Store { v; _ } when acquired_value v ->
              if not (Hashtbl.mem acquire_store u.u_slot.Ir.i_id) then
                Hashtbl.replace acquire_store u.u_slot.Ir.i_id st
            | _ -> ())
          u.u_stores)
    usages;
  let release_arg (i : Ir.inst) =
    (* the slot a release call releases, if its argument is a direct load *)
    match i.Ir.i_kind with
    | Ir.Call { callee; args } when List.mem (callee_name callee) release_fns ->
      List.find_map
        (fun a ->
          match strip_casts a with
          | Ir.Inst_ref { Ir.i_kind = Ir.Load { ptr }; _ } ->
            Dataflow.slot_of_ptr ptr
          | _ -> None)
        args
    | _ -> None
  in
  let value_escapes (l : Ir.inst) =
    used_by_terminator f l
    && (match l.Ir.i_kind with Ir.Load _ -> true | _ -> false)
    |> fun ret_escape ->
    ret_escape
    || List.exists
         (fun (use : Ir.inst) ->
           match use.Ir.i_kind with
           | Ir.Icmp _ | Ir.Fcmp _ -> false (* null check *)
           | Ir.Cast _ -> false (* chased below via recursion? kept shallow *)
           | Ir.Load { ptr } -> (
             match ptr with Ir.Inst_ref i -> not (i == l) | _ -> true)
           | Ir.Store { ptr = Ir.Inst_ref i; v = _ } when i == l ->
             false (* store *through* the pointer *)
           | Ir.Gep { base = Ir.Inst_ref i; _ } when i == l ->
             false (* element access through the pointer *)
           | Ir.Call _ -> release_arg use = None
           | _ -> true)
         (result_uses f l)
  in
  let tracked = Hashtbl.create 4 in
  List.iter
    (fun u ->
      if
        Hashtbl.mem acquire_store u.u_slot.Ir.i_id
        && not (List.exists value_escapes u.u_loads)
      then Hashtbl.replace tracked u.u_slot.Ir.i_id u.u_slot)
    usages;
  if Hashtbl.length tracked = 0 then []
  else begin
    let step (i : Ir.inst) fact =
      match i.Ir.i_kind with
      | Ir.Store { ptr; v } -> (
        match Dataflow.slot_of_ptr ptr with
        | Some s when Hashtbl.mem tracked s.Ir.i_id ->
          if acquired_value v then Int_set.add s.Ir.i_id fact
          else Int_set.remove s.Ir.i_id fact
        | _ -> fact)
      | Ir.Call _ -> (
        match release_arg i with
        | Some s -> Int_set.remove s.Ir.i_id fact
        | None -> fact)
      | _ -> fact
    in
    let transfer b fact =
      List.fold_left (fun f i -> step i f) fact (Ir.block_insts b)
    in
    let sol =
      Dataflow.solve cfg
        { Dataflow.direction = Dataflow.Forward; boundary = Int_set.empty;
          init = Int_set.empty; join = Int_set.union; equal = Int_set.equal;
          transfer }
    in
    let findings = ref [] in
    List.iter
      (fun b ->
        match b.Ir.b_term with
        | Ir.Ret _ ->
          let held = transfer b (sol.Dataflow.entry_fact b) in
          Int_set.iter
            (fun slot_id ->
              let slot = Hashtbl.find tracked slot_id in
              let acq = Hashtbl.find acquire_store slot_id in
              let loc =
                match Cfg.last_loc b with
                | Some l -> l
                | None -> acq.Ir.i_loc
              in
              findings :=
                { Report.f_pass = "leak"; f_func = f.Ir.f_name;
                  f_loc = describe loc;
                  f_msg =
                    Printf.sprintf
                      "resource held in '%s' may leak on this return path"
                      (slot_name slot);
                  f_notes =
                    (if Loc.is_valid acq.Ir.i_loc then
                       [ { Report.n_loc = describe acq.Ir.i_loc;
                           n_msg = "acquired here" } ]
                     else []) }
                :: !findings)
            held
        | _ -> ())
      cfg.Cfg.rpo;
    List.rev !findings
  end

(* ---- pass: deps ---------------------------------------------------------- *)

(* Multi-IV linear form of an address or index: sum of [coeff * iv] over
   recognised induction variables (keyed by the IV slot's i_id) plus a
   constant, or unanalysable. *)
type lin = { l_coeffs : (int * int) list (* sorted (iv slot id, coeff) *); l_k : int }

let lin_const k = { l_coeffs = []; l_k = k }

let lin_add a b =
  let rec merge xs ys =
    match (xs, ys) with
    | [], l | l, [] -> l
    | (i, c) :: xt, (j, d) :: yt ->
      if i = j then
        let s = c + d in
        if s = 0 then merge xt yt else (i, s) :: merge xt yt
      else if i < j then (i, c) :: merge xt ((j, d) :: yt)
      else (j, d) :: merge ((i, c) :: xt) yt
  in
  { l_coeffs = merge a.l_coeffs b.l_coeffs; l_k = a.l_k + b.l_k }

let lin_scale s a =
  if s = 0 then lin_const 0
  else
    { l_coeffs = List.map (fun (i, c) -> (i, c * s)) a.l_coeffs; l_k = a.l_k * s }

let lin_neg = lin_scale (-1)
let lin_coeff iv_id a = Option.value (List.assoc_opt iv_id a.l_coeffs) ~default:0
let lin_drop iv_id a =
  { a with l_coeffs = List.filter (fun (i, _) -> i <> iv_id) a.l_coeffs }

(* The base a GEP'd access addresses: a local array, or a pointer loaded
   from a local slot (e.g. a function-scope `double *A`). *)
type base = Base_alloca of Ir.inst | Base_ptr of Ir.inst

let base_id = function Base_alloca s | Base_ptr s -> s.Ir.i_id
let base_name = function Base_alloca s | Base_ptr s -> slot_name s

type access = {
  ac_store : bool;
  ac_inst : Ir.inst; (* the Load/Store itself *)
  ac_lin : lin; (* byte offset from the base *)
}

type iv_info = { iv_slot : Ir.inst; iv_step : int }

let const_int_value = function
  | Ir.Const_int (_, v) -> Some (Int64.to_int v)
  | _ -> None

(* Recognise the canonical induction variable of [loop]: a scalar slot
   updated in the latch by [v = v +/- const] and tested by the header's
   conditional branch. *)
let recognize_iv (loop : Loop_info.loop) scalar_ids : iv_info option =
  match Loop_info.single_latch loop with
  | None -> None
  | Some latch ->
    let header_tests_slot (s : Ir.inst) =
      match loop.Loop_info.header.Ir.b_term with
      | Ir.Cond_br (c, _, _) -> (
        match strip_casts c with
        | Ir.Inst_ref { Ir.i_kind = Ir.Icmp (_, a, b); _ } ->
          let is_load_of v =
            match strip_casts v with
            | Ir.Inst_ref { Ir.i_kind = Ir.Load { ptr }; _ } -> (
              match Dataflow.slot_of_ptr ptr with
              | Some s' -> s' == s
              | None -> false)
            | _ -> false
          in
          is_load_of a || is_load_of b
        | _ -> false)
      | _ -> false
    in
    let candidates =
      List.filter_map
        (fun (i : Ir.inst) ->
          match i.Ir.i_kind with
          | Ir.Store { ptr; v } -> (
            match Dataflow.slot_of_ptr ptr with
            | Some s when Hashtbl.mem scalar_ids s.Ir.i_id -> (
              match strip_casts v with
              | Ir.Inst_ref { Ir.i_kind = Ir.Binop ((Ir.Add | Ir.Sub) as op, a, b); _ } ->
                let load_of v =
                  match strip_casts v with
                  | Ir.Inst_ref { Ir.i_kind = Ir.Load { ptr }; _ } ->
                    Dataflow.slot_of_ptr ptr
                  | _ -> None
                in
                let step =
                  match (load_of a, const_int_value (strip_casts b)) with
                  | Some s', Some k when s' == s ->
                    Some (match op with Ir.Sub -> -k | _ -> k)
                  | _ -> (
                    match (const_int_value (strip_casts a), load_of b) with
                    | Some k, Some s' when s' == s && op = Ir.Add -> Some k
                    | _ -> None)
                in
                (match step with
                | Some k when k <> 0 && header_tests_slot s ->
                  Some { iv_slot = s; iv_step = k }
                | _ -> None)
              | _ -> None)
            | _ -> None)
          | _ -> None)
        (Ir.block_insts latch)
    in
    (match candidates with [ iv ] -> Some iv | _ -> None)

(* What one loop body does to memory, summarised for dependence testing. *)
type effects = {
  mutable e_accesses : (int * string * access list) list; (* base id, name, accesses *)
  mutable e_unknowns : Report.note list; (* reasons the analysis gave up *)
  mutable e_reduction_slots : Ir.inst list; (* scalars updated reductively *)
  mutable e_outside_inner : bool; (* effects outside the sole inner loop *)
}

let assoc_comm_ops = [ Ir.Add; Ir.Mul; Ir.And; Ir.Or; Ir.Xor ]

let collect_effects ~describe (f : Ir.func) (loop : Loop_info.loop)
    ~(iv_ids : (int, unit) Hashtbl.t) (* control slots: every IV in this loop *)
    ~(inner_blocks : (int, unit) Hashtbl.t) usages : effects =
  let eff =
    { e_accesses = []; e_unknowns = []; e_reduction_slots = [];
      e_outside_inner = false }
  in
  let note (i : Ir.inst) msg =
    if List.length eff.e_unknowns < 8 then
      eff.e_unknowns <-
        eff.e_unknowns @ [ { Report.n_loc = describe i.Ir.i_loc; n_msg = msg } ]
  in
  let in_loop (i : Ir.inst) =
    match i.Ir.i_parent with
    | Some b -> Loop_info.loop_contains loop b
    | None -> false
  in
  let usage_of s =
    List.find_opt (fun u -> u.u_slot == s) usages
  in
  let stores_in_loop s =
    match usage_of s with
    | Some u -> List.filter in_loop u.u_stores
    | None -> []
  in
  let loads_in_loop s =
    match usage_of s with
    | Some u -> List.filter in_loop u.u_loads
    | None -> []
  in
  (* [lin_of] over index values; loads of loop-invariant scalars are not
     folded in (they would need symbolic terms) — only IVs and consts. *)
  let rec lin_of (v : Ir.value) : lin option =
    match v with
    | Ir.Const_int (_, k) -> Some (lin_const (Int64.to_int k))
    | Ir.Inst_ref i -> (
      match i.Ir.i_kind with
      | Ir.Cast ((Ir.Sext | Ir.Zext), x) -> lin_of x
      | Ir.Load { ptr } -> (
        match Dataflow.slot_of_ptr ptr with
        | Some s when Hashtbl.mem iv_ids s.Ir.i_id ->
          Some { l_coeffs = [ (s.Ir.i_id, 1) ]; l_k = 0 }
        | _ -> None)
      | Ir.Binop (Ir.Add, a, b) -> (
        match (lin_of a, lin_of b) with
        | Some x, Some y -> Some (lin_add x y)
        | _ -> None)
      | Ir.Binop (Ir.Sub, a, b) -> (
        match (lin_of a, lin_of b) with
        | Some x, Some y -> Some (lin_add x (lin_neg y))
        | _ -> None)
      | Ir.Binop (Ir.Mul, a, b) -> (
        match (lin_of a, const_int_value (strip_casts b)) with
        | Some x, Some k -> Some (lin_scale k x)
        | _ -> (
          match (const_int_value (strip_casts a), lin_of b) with
          | Some k, Some y -> Some (lin_scale k y)
          | _ -> None))
      | Ir.Binop (Ir.Shl, a, b) -> (
        match (lin_of a, const_int_value (strip_casts b)) with
        | Some x, Some k when k >= 0 && k < 31 -> Some (lin_scale (1 lsl k) x)
        | _ -> None)
      | _ -> None)
    | _ -> None
  in
  (* Byte-offset linear form of a GEP'd address, and the base it hangs
     off.  A pointer-slot base only counts if the pointer itself is not
     reassigned inside the loop. *)
  let rec addr_of (v : Ir.value) : (base * lin) option =
    match v with
    | Ir.Inst_ref i -> (
      match i.Ir.i_kind with
      | Ir.Alloca _ -> Some (Base_alloca i, lin_const 0)
      | Ir.Cast (_, x) -> addr_of x
      | Ir.Gep { base; index; elt_ty } -> (
        match (addr_of base, lin_of index) with
        | Some (b, off), Some ix ->
          Some (b, lin_add off (lin_scale (Ir.ty_size_in_bytes elt_ty) ix))
        | _ -> None)
      | Ir.Load { ptr } -> (
        match Dataflow.slot_of_ptr ptr with
        | Some s when stores_in_loop s = [] -> Some (Base_ptr s, lin_const 0)
        | _ -> None)
      | _ -> None)
    | _ -> None
  in
  let add_access b name a =
    let id = base_id b in
    match List.assoc_opt id (List.map (fun (i, n, l) -> (i, (n, l))) eff.e_accesses) with
    | Some _ ->
      eff.e_accesses <-
        List.map
          (fun (i, n, l) -> if i = id then (i, n, l @ [ a ]) else (i, n, l))
          eff.e_accesses
    | None -> eff.e_accesses <- eff.e_accesses @ [ (id, name, [ a ]) ]
  in
  (* Scalar reduction recognition, done per-slot up front so the access
     walk can skip the participating loads and stores. *)
  let reduction_insts = Hashtbl.create 8 (* inst i_id of loads/stores in reductions *) in
  let scalar_store_slots =
    List.sort_uniq compare
      (List.concat_map
         (fun b ->
           if Loop_info.loop_contains loop b then
             List.filter_map
               (fun (i : Ir.inst) ->
                 match i.Ir.i_kind with
                 | Ir.Store { ptr; _ } -> (
                   match Dataflow.slot_of_ptr ptr with
                   | Some s when not (Hashtbl.mem iv_ids s.Ir.i_id) ->
                     Some s.Ir.i_id
                   | _ -> None)
                 | _ -> None)
               (Ir.block_insts b)
           else [])
         f.Ir.f_blocks)
  in
  let slot_by_id id =
    List.find_map
      (fun u -> if u.u_slot.Ir.i_id = id then Some u.u_slot else None)
      usages
  in
  List.iter
    (fun slot_id ->
      match slot_by_id slot_id with
      | None -> ()
      | Some s ->
        let stores = stores_in_loop s and loads = loads_in_loop s in
        let store_op (st : Ir.inst) =
          match st.Ir.i_kind with
          | Ir.Store { v; _ } -> (
            match strip_casts v with
            | Ir.Inst_ref { Ir.i_kind = Ir.Binop (op, a, b); _ }
              when List.mem op assoc_comm_ops ->
              let is_load_of_s v =
                match strip_casts v with
                | Ir.Inst_ref ({ Ir.i_kind = Ir.Load { ptr }; _ } as l) -> (
                  match Dataflow.slot_of_ptr ptr with
                  | Some s' when s' == s -> Some l
                  | _ -> None)
                | _ -> None
              in
              (match (is_load_of_s a, is_load_of_s b) with
              | Some l, None | None, Some l -> Some (op, l)
              | _ -> None)
            | _ -> None)
          | _ -> ()
            |> fun () -> None
        in
        let recognized = List.map store_op stores in
        let ops = List.filter_map (Option.map fst) recognized in
        let red_loads = List.filter_map (Option.map snd) recognized in
        let same_op =
          match ops with
          | [] -> false
          | op :: rest -> List.for_all (( = ) op) rest
        in
        let all_stores_reductive = List.for_all Option.is_some recognized in
        let every_load_consumed =
          List.for_all (fun (l : Ir.inst) -> List.memq l red_loads) loads
        in
        if
          stores <> [] && all_stores_reductive && same_op && every_load_consumed
        then begin
          eff.e_reduction_slots <- eff.e_reduction_slots @ [ s ];
          List.iter
            (fun (i : Ir.inst) -> Hashtbl.replace reduction_insts i.Ir.i_id ())
            (stores @ red_loads)
        end)
    scalar_store_slots;
  (* The walk proper. *)
  List.iter
    (fun b ->
      if Loop_info.loop_contains loop b then
        let inner = Hashtbl.mem inner_blocks b.Ir.b_id in
        let effect_here () = if not inner then eff.e_outside_inner <- true in
        List.iter
          (fun (i : Ir.inst) ->
            match i.Ir.i_kind with
            | Ir.Store { ptr; _ } -> (
              match Dataflow.slot_of_ptr ptr with
              | Some s ->
                if Hashtbl.mem iv_ids s.Ir.i_id then () (* loop control *)
                else begin
                  effect_here ();
                  if Hashtbl.mem reduction_insts i.Ir.i_id then ()
                  else
                    note i
                      (Printf.sprintf
                         "order-sensitive update of scalar '%s'" (slot_name s))
                end
              | None -> (
                effect_here ();
                match addr_of ptr with
                | Some (base, lin) ->
                  add_access base (base_name base)
                    { ac_store = true; ac_inst = i; ac_lin = lin }
                | None -> note i "store through an unanalysable address"))
            | Ir.Load { ptr } -> (
              match Dataflow.slot_of_ptr ptr with
              | Some _ -> () (* scalar reads: invariant or reduction/control *)
              | None -> (
                effect_here ();
                match addr_of ptr with
                | Some (base, lin) ->
                  add_access base (base_name base)
                    { ac_store = false; ac_inst = i; ac_lin = lin }
                | None -> note i "load through an unanalysable address"))
            | Ir.Call { callee; _ } ->
              effect_here ();
              note i
                (Printf.sprintf "call to '%s' in the loop body"
                   (callee_name callee))
            | _ -> ())
          (Ir.block_insts b))
    f.Ir.f_blocks;
  eff

(* Array-reduction pairs: a store whose value is [load(addr) op t] with
   the load at the *same* linear address — safe to reorder when [op] is
   associative-commutative. *)
let reduction_pair (st : access) (ld : access) =
  (not ld.ac_store) && st.ac_store
  && st.ac_lin = ld.ac_lin
  &&
  match st.ac_inst.Ir.i_kind with
  | Ir.Store { v; _ } -> (
    match strip_casts v with
    | Ir.Inst_ref { Ir.i_kind = Ir.Binop (op, a, b); _ }
      when List.mem op assoc_comm_ops ->
      let is_ld v =
        match strip_casts v with Ir.Inst_ref i -> i == ld.ac_inst | _ -> false
      in
      is_ld a || is_ld b
    | _ -> false)
  | _ -> false

(* Loop-carried dependence test along one IV dimension.  Returns
   (unsafe witnesses, unknown notes). *)
let carried_in ~describe iv_id (accesses : (int * string * access list) list) =
  let witnesses = ref [] and unknowns = ref [] in
  let add_w n = if List.length !witnesses < 8 then witnesses := !witnesses @ [ n ] in
  let add_u n = if List.length !unknowns < 8 then unknowns := !unknowns @ [ n ] in
  List.iter
    (fun (_, name, accs) ->
      if List.exists (fun a -> a.ac_store) accs then begin
        let arr = Array.of_list accs in
        let n = Array.length arr in
        for x = 0 to n - 1 do
          for y = x to n - 1 do
            let a = arr.(x) and b = arr.(y) in
            if
              (a.ac_store || b.ac_store)
              && not (reduction_pair a b || reduction_pair b a)
              && not (x = y && not a.ac_store)
            then begin
              let ca = lin_coeff iv_id a.ac_lin
              and cb = lin_coeff iv_id b.ac_lin in
              let rest_a = lin_drop iv_id a.ac_lin
              and rest_b = lin_drop iv_id b.ac_lin in
              if rest_a.l_coeffs <> rest_b.l_coeffs || ca <> cb then
                add_u
                  { Report.n_loc = describe a.ac_inst.Ir.i_loc;
                    n_msg =
                      Printf.sprintf
                        "accesses to '%s' have coupled subscripts; dependence direction unproven"
                        name }
              else begin
                let dk = rest_a.l_k - rest_b.l_k in
                if ca = 0 then begin
                  if dk = 0 && not (x = y && a.ac_store && not b.ac_store) then
                    (* same address touched on every iteration of this IV *)
                    if x = y then
                      add_w
                        { Report.n_loc = describe a.ac_inst.Ir.i_loc;
                          n_msg =
                            Printf.sprintf
                              "'%s' is written at a loop-invariant address every iteration"
                              name }
                    else
                      add_w
                        { Report.n_loc = describe a.ac_inst.Ir.i_loc;
                          n_msg =
                            Printf.sprintf
                              "'%s' is accessed at the same loop-invariant address by two statements"
                              name }
                end
                else if dk mod ca = 0 && dk / ca <> 0 then
                  add_w
                    { Report.n_loc = describe a.ac_inst.Ir.i_loc;
                      n_msg =
                        Printf.sprintf
                          "loop-carried dependence on '%s': %s here conflicts with %s %d iteration(s) away (%s)"
                          name
                          (if a.ac_store then "store" else "load")
                          (if b.ac_store then "a store" else "a load")
                          (abs (dk / ca))
                          (describe b.ac_inst.Ir.i_loc) }
              end
            end
          done
        done
      end)
    accesses;
  (!witnesses, !unknowns)

let deps_pass ~describe (f : Ir.func) (cfg : Cfg.t) usages : Report.loop_report list
    =
  let scalar_ids = Hashtbl.create 8 in
  List.iter
    (fun u -> if is_scalar u then Hashtbl.replace scalar_ids u.u_slot.Ir.i_id ())
    usages;
  let loops = Loop_info.find_loops cfg.Cfg.dom cfg.Cfg.func in
  let ivs = List.map (fun l -> (l, recognize_iv l scalar_ids)) loops in
  let contains outer inner_loop =
    (not (outer == inner_loop))
    && Loop_info.loop_contains outer inner_loop.Loop_info.header
  in
  let depth l =
    1 + List.length (List.filter (fun l' -> contains l' l) loops)
  in
  let header_loc l =
    match Cfg.first_loc l.Loop_info.header with
    | Some loc -> loc
    | None -> Loc.invalid
  in
  let reports =
    List.map
      (fun (loop, iv) ->
        let d = depth loop in
        let loc = describe (header_loc loop) in
        match iv with
        | None ->
          { Report.lr_func = f.Ir.f_name; lr_loc = loc; lr_iv = "?";
            lr_depth = d;
            lr_directives =
              List.map
                (fun dir ->
                  { Report.dv_directive = dir; dv_verdict = Report.Unknown;
                    dv_why = "not a canonical loop (no recognised induction variable)" })
                [ "reverse"; "interchange"; "tile"; "unroll"; "fuse" ];
            lr_notes = [] }
        | Some iv ->
          (* control slots: this loop's IV plus every contained loop's IV *)
          let iv_ids = Hashtbl.create 4 in
          Hashtbl.replace iv_ids iv.iv_slot.Ir.i_id ();
          let inner_immediate =
            List.filter
              (fun (l', _) -> contains loop l' && depth l' = d + 1)
              ivs
          in
          List.iter
            (fun (l', iv') ->
              if contains loop l' then
                match iv' with
                | Some i -> Hashtbl.replace iv_ids i.iv_slot.Ir.i_id ()
                | None -> ())
            ivs;
          let inner_blocks = Hashtbl.create 16 in
          List.iter
            (fun (l', _) ->
              if contains loop l' then
                List.iter
                  (fun b -> Hashtbl.replace inner_blocks b.Ir.b_id ())
                  l'.Loop_info.blocks)
            ivs;
          let inner_unrecognized =
            List.exists
              (fun (l', iv') -> contains loop l' && iv' = None)
              ivs
          in
          let eff =
            collect_effects ~describe f loop ~iv_ids ~inner_blocks usages
          in
          let witnesses, unknowns =
            carried_in ~describe iv.iv_slot.Ir.i_id eff.e_accesses
          in
          let unknowns = eff.e_unknowns @ unknowns in
          let self_verdict =
            if witnesses <> [] then
              (Report.Unsafe, "a loop-carried dependence is witnessed (see notes)")
            else if inner_unrecognized then
              (Report.Unknown, "contains a non-canonical inner loop")
            else if unknowns <> [] then
              (Report.Unknown, (List.hd unknowns).Report.n_msg)
            else (Report.Safe, "no loop-carried dependences")
          in
          let order_preserving why = (Report.Safe, why) in
          let nest_verdict () =
            (* interchange/tile need a recognised perfect 2-deep nest
               whose accesses are dependence-free in *both* dimensions *)
            match inner_immediate with
            | [] -> (Report.Unknown, "loop nest of depth 1")
            | [ (_, None) ] | _ :: _ :: _ ->
              (Report.Unknown, "nest shape not recognised")
            | [ (inner, Some inner_iv) ] ->
              if eff.e_outside_inner then
                (Report.Unknown, "loop nest is not perfect")
              else if inner_unrecognized then
                (Report.Unknown, "contains a non-canonical inner loop")
              else begin
                ignore inner;
                let w2, u2 =
                  carried_in ~describe inner_iv.iv_slot.Ir.i_id eff.e_accesses
                in
                match (fst self_verdict, witnesses, unknowns, w2, u2) with
                | Report.Safe, [], [], [], [] ->
                  (Report.Safe, "perfect nest with no loop-carried dependences")
                | _, (_ :: _), _, _, _ | _, _, _, (_ :: _), _ ->
                  ( Report.Unsafe,
                    "a loop-carried dependence is witnessed (see notes)" )
                | _ -> (Report.Unknown, "dependence direction unproven")
              end
          in
          let fuse_verdict =
            if
              witnesses = [] && unknowns = []
              && List.for_all
                   (fun (_, _, accs) ->
                     List.for_all
                       (fun a ->
                         (not a.ac_store)
                         || List.exists (fun b -> reduction_pair a b) accs)
                       accs)
                   eff.e_accesses
            then
              ( Report.Safe,
                "body is an associative-commutative reduction; tolerant of fusion"
              )
            else if witnesses <> [] then
              (Report.Unsafe, "a loop-carried dependence is witnessed (see notes)")
            else
              (Report.Unknown, "fusion legality depends on the sibling loop body")
          in
          let mk dir (v, why) =
            { Report.dv_directive = dir; dv_verdict = v; dv_why = why }
          in
          let nv = nest_verdict () in
          { Report.lr_func = f.Ir.f_name; lr_loc = loc;
            lr_iv = slot_name iv.iv_slot; lr_depth = d;
            lr_directives =
              [ mk "reverse" self_verdict; mk "interchange" nv; mk "tile" nv;
                mk "unroll"
                  (order_preserving "iteration order is preserved");
                mk "fuse" fuse_verdict ];
            lr_notes = witnesses @ unknowns })
      ivs
  in
  List.sort
    (fun a b -> compare a.Report.lr_loc b.Report.lr_loc)
    reports

(* ---- driver -------------------------------------------------------------- *)

let analyze_func ~passes ~describe (f : Ir.func) : Report.func_report =
  if f.Ir.f_is_decl || f.Ir.f_blocks = [] then
    { Report.fr_func = f.Ir.f_name; fr_findings = []; fr_loops = [] }
  else begin
    let cfg = Cfg.build f in
    let usages = classify f in
    let findings =
      List.concat_map
        (fun p ->
          match p with
          | "uninit" -> uninit_pass ~describe f cfg usages
          | "unreachable" -> unreachable_pass ~describe f cfg
          | "leak" -> leak_pass ~describe f cfg usages
          | _ -> [])
        passes
    in
    let loops =
      if List.mem "deps" passes then deps_pass ~describe f cfg usages else []
    in
    { Report.fr_func = f.Ir.f_name; fr_findings = findings; fr_loops = loops }
  end

let run ?passes ~describe (m : Ir.modul) : Report.t =
  let passes = normalize_passes passes in
  {
    Report.r_passes = passes;
    r_funcs =
      List.filter_map
        (fun f ->
          if f.Ir.f_is_decl then None
          else Some (analyze_func ~passes ~describe f))
        m.Ir.m_funcs;
  }
