(* loadgen — the overload / tail-latency bench for the mccd daemon.

   Spawns an in-process daemon (bounded queue, worker pool) and N
   concurrent client threads issuing a seeded, mixed workload — mostly
   warm full-hit compiles, some cold units, some transfo-script
   requests, a few deliberate ICEs.  The defaults (16 clients against a
   queue of 4) put the daemon at 4x queue overload, so admission
   control must shed with [Resp_busy] and the client policy's
   retry/backoff must absorb the sheds.

   Hard floors enforced in-harness (exit 1, independent of the
   regression gate):
     - every client terminates before the watchdog deadline — load
       shedding may slow a request down, never hang it;
     - zero protocol errors: a torn frame or unexpected response kind
       under overload is a bug, not noise.

   Emits BENCH_load.json: gated keys (request totals, zero
   protocol-error / hung-client counters, p50/p95/p99 and warm-p95
   latency ceilings) plus run-varying observations under the
   "observed." prefix, which the regression gate reports but never
   fails on. *)

module Server = Mc_core.Server
module Client = Mc_core.Client
module Protocol = Mc_core.Protocol
module Invocation = Mc_core.Invocation
module Instance = Mc_core.Instance
module Stats = Mc_support.Stats
module Clock = Mc_support.Clock

(* ---- workload -------------------------------------------------------- *)

let warm_source =
  "void record(long x);\n\
   int main(void) {\n\
   long s = 0;\n\
   for (int i = 0; i < 40; i += 1) s += i;\n\
   record(s);\n\
   return 0; }"

let cold_source client request =
  Printf.sprintf
    "void record(long x);\n\
     int main(void) {\n\
     long s = 0;\n\
     for (int i = 0; i < %d; i += 1) s += i;\n\
     record(s);\n\
     return 0; }"
    (50 + (client * 997) + request)

let ice_source = "int main(void) {\n#pragma clang __debug crash\nreturn 0; }"

let invocation =
  { Invocation.default with Invocation.gen_reproducer = false }

let transfo_invocation =
  {
    invocation with
    Invocation.transfo_script =
      Some
        (Invocation.Source
           { name = "load.transfo"; contents = "unroll partial(2) @ for(i)" });
  }

type kind = Warm | Cold | Transform | Ice

let pick_kind rng =
  let d = Random.State.float rng 1.0 in
  if d < 0.70 then Warm
  else if d < 0.85 then Cold
  else if d < 0.95 then Transform
  else Ice

(* A request's terminal state.  [Served] covers every structured daemon
   reply (units, transform results, rejections): the daemon answered.
   [Fallback] is "no usable daemon" (busy retries exhausted, connect or
   deadline failure) — the client compiled locally, like mcc would.
   [Proto_error] is a malformed or nonsensical reply: always a bug. *)
type verdict =
  | Served of int (* busy retries absorbed *)
  | Fallback of string
  | Proto_error of string

type sample = {
  s_kind : kind;
  s_latency : float;
  s_verdict : verdict;
}

let protocolish e =
  let has sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length e && (String.sub e i n = sub || go (i + 1))
    in
    go 0
  in
  has "truncated frame" || has "bad magic" || has "version mismatch"
  || has "unmarshalling" || has "unexpected response"

(* ---- the client thread ----------------------------------------------- *)

let run_request ~policy ~socket_path ~client ~request rng =
  let kind = pick_kind rng in
  let started = Clock.now () in
  let verdict =
    match kind with
    | Transform -> (
      match
        Client.transform ~policy ~socket_path transfo_invocation
          ~name:"load.c" warm_source
      with
      | Ok { Client.response = Protocol.Resp_transformed _; busy_retries } ->
        Served busy_retries
      | Ok { Client.response = Protocol.Resp_rejected _; busy_retries } ->
        Served busy_retries
      | Ok _ -> Proto_error "unexpected response kind to a transform"
      | Error e -> if protocolish e then Proto_error e else Fallback e)
    | Warm | Cold | Ice -> (
      let name, src =
        match kind with
        | Warm -> ("warm.c", warm_source)
        | Cold ->
          (Printf.sprintf "cold-%d-%d.c" client request,
           cold_source client request)
        | Ice -> ("boom.c", ice_source)
        | Transform -> assert false
      in
      match Client.compile ~policy ~socket_path invocation [ (name, src) ] with
      | Ok { Client.response = Protocol.Resp_units { p_units = [ _ ]; _ };
             busy_retries } ->
        Served busy_retries
      | Ok { Client.response = Protocol.Resp_units _; _ } ->
        Proto_error "wrong unit count in response"
      | Ok { Client.response = Protocol.Resp_rejected _; busy_retries } ->
        Served busy_retries
      | Ok _ -> Proto_error "unexpected response kind to a compile"
      | Error e -> if protocolish e then Proto_error e else Fallback e)
  in
  { s_kind = kind; s_latency = Clock.now () -. started; s_verdict = verdict }

let fallback_lock = Mutex.create ()

(* The in-process fallback mcc would run; serialized so the bench
   measures the daemon's behaviour under load, not N local compilers
   fighting over cores. *)
let compile_locally kind =
  Mutex.protect fallback_lock (fun () ->
      let inst = Instance.create invocation in
      let src = match kind with Ice -> ice_source | _ -> warm_source in
      ignore (Instance.compile_safe inst ~name:"fallback.c" src))

(* ---- percentiles ------------------------------------------------------ *)

let percentile xs q =
  match xs with
  | [] -> 0.0
  | _ ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    let idx = int_of_float (Float.ceil (q *. float_of_int n)) - 1 in
    a.(max 0 (min (n - 1) idx))

(* ---- main ------------------------------------------------------------- *)

let () =
  let clients = ref 16 in
  let requests = ref 4 in
  let pool = ref 2 in
  let queue = ref 4 in
  let request_timeout = ref 0.0 in
  let seed = ref 1 in
  let watchdog = ref 180.0 in
  let out = ref "BENCH_load.json" in
  let quiet = ref false in
  Arg.parse
    [
      ("-clients", Arg.Set_int clients, "N concurrent client threads (16)");
      ("-requests", Arg.Set_int requests, "N requests per client (4)");
      ("-pool", Arg.Set_int pool, "N daemon worker domains (2)");
      ("-queue", Arg.Set_int queue, "N daemon queue capacity (4)");
      ( "-request-timeout",
        Arg.Set_float request_timeout,
        "S per-request server deadline, 0 = none (0)" );
      ("-seed", Arg.Set_int seed, "N workload-mix seed (1)");
      ( "-watchdog",
        Arg.Set_float watchdog,
        "S hang deadline for the whole run (180)" );
      ("-out", Arg.Set_string out, "FILE result JSON (BENCH_load.json)");
      ("-quiet", Arg.Set quiet, " suppress progress output");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument: " ^ a)))
    "loadgen -clients 16 -requests 4 -pool 2 -queue 4";
  let say fmt =
    Printf.ksprintf (fun s -> if not !quiet then print_endline s) fmt
  in
  let socket_path =
    let p = Filename.temp_file "mccd-load" ".sock" in
    Sys.remove p;
    p
  in
  let stop = Atomic.make false in
  let config =
    {
      Server.default_config with
      Server.socket_path;
      pool_size = max 1 !pool;
      queue_capacity = max 1 !queue;
      request_timeout =
        (if !request_timeout > 0.0 then Some !request_timeout else None);
      idle_timeout = Some 600.0;
    }
  in
  let server = Domain.spawn (fun () -> Server.run ~stop config) in
  let rec await tries =
    if tries = 0 then failwith "loadgen: daemon never listened";
    if not (Sys.file_exists socket_path) then begin
      Unix.sleepf 0.02;
      await (tries - 1)
    end
  in
  await 250;
  say "loadgen: %d client(s) x %d request(s), pool %d, queue %d (%.1fx overload)"
    !clients !requests !pool !queue
    (float_of_int !clients /. float_of_int !queue);
  let results =
    Array.init !clients (fun _ -> Array.make !requests None)
  in
  let completed = Atomic.make 0 in
  let started = Clock.now () in
  let client_thread i =
    let rng = Random.State.make [| !seed; i |] in
    let policy =
      {
        Client.connect_timeout = 10.0;
        send_timeout = 30.0;
        receive_timeout = 60.0;
        retries = 100;
        backoff = 0.005;
        backoff_max = 0.05;
        jitter_seed = (!seed * 1000) + i;
      }
    in
    for r = 0 to !requests - 1 do
      let sample =
        try run_request ~policy ~socket_path ~client:i ~request:r rng
        with e ->
          {
            s_kind = Warm;
            s_latency = 0.0;
            s_verdict = Proto_error ("escaped exception: " ^ Printexc.to_string e);
          }
      in
      (match sample.s_verdict with
      | Fallback _ -> compile_locally sample.s_kind
      | Served _ | Proto_error _ -> ());
      results.(i).(r) <- Some sample
    done;
    Atomic.incr completed
  in
  let threads = List.init !clients (fun i -> Thread.create client_thread i) in
  let deadline = Clock.now () +. !watchdog in
  let rec wait () =
    if Atomic.get completed >= !clients then ()
    else if Clock.now () > deadline then begin
      Printf.eprintf
        "loadgen: FAIL: %d of %d client(s) hung past the %gs watchdog — \
         load shedding must never leave a client hanging\n%!"
        (!clients - Atomic.get completed)
        !clients !watchdog;
      exit 1
    end
    else begin
      Thread.delay 0.05;
      wait ()
    end
  in
  wait ();
  List.iter Thread.join threads;
  let wall = Clock.now () -. started in
  Atomic.set stop true;
  let snapshot =
    match Domain.join server with
    | Ok snap -> snap
    | Error e -> failwith ("loadgen: daemon failed: " ^ e)
  in
  (* ---- classify ------------------------------------------------------- *)
  let samples =
    Array.to_list results
    |> List.concat_map (fun row ->
           Array.to_list row
           |> List.map (function
                | Some s -> s
                | None -> failwith "loadgen: request slot never recorded"))
  in
  let total = List.length samples in
  let served =
    List.filter
      (fun s -> match s.s_verdict with Served _ -> true | _ -> false)
      samples
  in
  let fallbacks =
    List.filter
      (fun s -> match s.s_verdict with Fallback _ -> true | _ -> false)
      samples
  in
  let proto_errors =
    List.filter_map
      (fun s -> match s.s_verdict with Proto_error e -> Some e | _ -> None)
      samples
  in
  let sheds =
    List.fold_left
      (fun acc s ->
        match s.s_verdict with Served n -> acc + n | _ -> acc)
      0 samples
  in
  let shed_then_served =
    List.length
      (List.filter
         (fun s -> match s.s_verdict with Served n -> n > 0 | _ -> false)
         samples)
  in
  let latencies = List.map (fun s -> s.s_latency) served in
  let warm_latencies =
    List.filter_map
      (fun s ->
        match (s.s_kind, s.s_verdict) with
        | Warm, Served _ -> Some s.s_latency
        | _ -> None)
      served
  in
  let p50 = percentile latencies 0.50 in
  let p95 = percentile latencies 0.95 in
  let p99 = percentile latencies 0.99 in
  let warm_p95 = percentile warm_latencies 0.95 in
  let server_shed = Stats.find snapshot "server.shed" in
  say
    "loadgen: %d request(s) in %.3fs (%.1f rps): %d served (%d after sheds, \
     %d busy replies), %d fallback(s), %d protocol error(s)"
    total wall
    (float_of_int total /. wall)
    (List.length served) shed_then_served sheds (List.length fallbacks)
    (List.length proto_errors);
  say "loadgen: p50 %.4fs  p95 %.4fs  p99 %.4fs  warm p95 %.4fs" p50 p95 p99
    warm_p95;
  say "loadgen: server counters: shed %d, queue-depth-max %d, timeouts %d"
    server_shed
    (Stats.find snapshot "server.queue-depth-max")
    (Stats.find snapshot "server.timeouts");
  (* ---- hard floors ---------------------------------------------------- *)
  if proto_errors <> [] then begin
    Printf.eprintf "loadgen: FAIL: %d protocol error(s) under load:\n"
      (List.length proto_errors);
    List.iter (fun e -> Printf.eprintf "  - %s\n" e) proto_errors;
    Printf.eprintf "%!";
    exit 1
  end;
  if total <> !clients * !requests then begin
    Printf.eprintf "loadgen: FAIL: %d of %d request(s) unaccounted for\n%!"
      ((!clients * !requests) - total)
      (!clients * !requests);
    exit 1
  end;
  (* ---- JSON ----------------------------------------------------------- *)
  let buf = Buffer.create 1024 in
  let field last name value =
    Buffer.add_string buf
      (Printf.sprintf "  %S: %s%s\n" name value (if last then "" else ","))
  in
  Buffer.add_string buf "{\n";
  field false "schema" "\"mcc-bench-load/1\"";
  field false "workload"
    (Printf.sprintf "\"%d clients x %d requests, pool %d, queue %d\""
       !clients !requests !pool !queue);
  field false "total_requests" (string_of_int total);
  field false "protocol_errors" (string_of_int (List.length proto_errors));
  field false "hung_clients" "0";
  field false "all_terminated" "true";
  field false "p50_seconds" (Printf.sprintf "%.9f" p50);
  field false "p95_seconds" (Printf.sprintf "%.9f" p95);
  field false "p99_seconds" (Printf.sprintf "%.9f" p99);
  field false "warm_p95_seconds" (Printf.sprintf "%.9f" warm_p95);
  Buffer.add_string buf "  \"observed\": {\n";
  let ofield last name value =
    Buffer.add_string buf
      (Printf.sprintf "    %S: %s%s\n" name value (if last then "" else ","))
  in
  ofield false "served" (string_of_int (List.length served));
  ofield false "shed_then_served" (string_of_int shed_then_served);
  ofield false "busy_replies" (string_of_int sheds);
  ofield false "server_shed" (string_of_int server_shed);
  ofield false "fallbacks" (string_of_int (List.length fallbacks));
  ofield false "shed_rate"
    (Printf.sprintf "%.6f" (float_of_int shed_then_served /. float_of_int total));
  ofield false "fallback_rate"
    (Printf.sprintf "%.6f"
       (float_of_int (List.length fallbacks) /. float_of_int total));
  ofield false "requests_per_second"
    (Printf.sprintf "%.3f" (float_of_int total /. wall));
  ofield true "wall_seconds" (Printf.sprintf "%.6f" wall);
  Buffer.add_string buf "  }\n";
  Buffer.add_string buf "}\n";
  Out_channel.with_open_text !out (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf));
  say "loadgen: wrote %s" !out
