(* Benchmark harness: regenerates every figure/listing-derived experiment of
   DESIGN.md's index.

   Part 1 prints the structural reproduction metrics (the paper's
   quantified claims: shadow-node budgets, skeleton structure, unroll
   deferral, execution-step ablations).  Part 2 runs one bechamel timing
   benchmark per experiment id.  EXPERIMENTS.md records the paper-vs-
   measured comparison for each. *)

open Bechamel
open Toolkit
module Driver = Mc_core.Driver
module Interp = Mc_interp.Interp
module Visit = Mc_ast.Visit
open Mc_ast.Tree

let classic = Driver.default_options
let irbuilder = { classic with Driver.use_irbuilder = true }
let o0 o = { o with Driver.optimize = false }

let compile_or_fail ?(options = classic) source =
  let r = Driver.compile ~options source in
  if Mc_diag.Diagnostics.has_errors r.Driver.diag then
    failwith (Mc_diag.Diagnostics.render_all r.Driver.diag);
  r

let steps_of ?(options = classic) ?(num_threads = 4) source =
  let r = compile_or_fail ~options source in
  match Driver.run ~config:{ Interp.default_config with Interp.num_threads } r with
  | Ok outcome -> outcome.Interp.steps
  | Error e -> failwith e

let heading title = Printf.printf "\n===== %s =====\n%!" title

(* --------------------------------------------------------------------- *)
(* Part 1: structural metrics                                             *)
(* --------------------------------------------------------------------- *)

let find_directive tu =
  let found = ref None in
  List.iter
    (function
      | Tu_fn { fn_body = Some body; _ } ->
        Visit.iter ~shadow:false
          ~on_stmt:(fun s ->
            match s.s_kind with
            | Omp_directive d when !found = None -> found := Some d
            | _ -> ())
          body
      | _ -> ())
    tu.tu_decls;
  Option.get !found

let nest_source depth =
  let rec loops d =
    if d = 0 then "record(i0);"
    else
      Printf.sprintf "for (int i%d = 0; i%d < 4; i%d += 1)\n%s"
        (depth - d) (depth - d) (depth - d)
        (loops (d - 1))
  in
  Printf.sprintf
    "void record(long x);\nint main(void) {\n#pragma omp parallel for collapse(%d)\n%s\nreturn 0; }"
    depth (loops depth)

let claim_c1 () =
  heading "C1: shadow-node budget — OMPLoopDirective '30 + 6/loop' vs OMPCanonicalLoop '3'";
  List.iter
    (fun depth ->
      let _, tu = Driver.frontend (nest_source depth) in
      let d = find_directive tu in
      let h = Option.get d.dir_loop_helpers in
      Printf.printf
        "  depth %d: classic helper slots = %d (paper: up to 30 + 6*d = %d), occupied = %d\n"
        depth (Visit.helper_slot_count h)
        (30 + (6 * depth))
        (Visit.helper_occupied_count h))
    [ 1; 2; 3 ];
  let _, tu =
    Driver.frontend ~options:irbuilder
      "void record(long x);\nint main(void) {\n#pragma omp unroll partial(2)\n\
       for (int i = 0; i < 4; i += 1) record(i);\nreturn 0; }"
  in
  let d = find_directive tu in
  (match d.dir_assoc with
  | Some { s_kind = Omp_canonical_loop ocl; _ } ->
    Printf.printf "  OMPCanonicalLoop meta slots = %d (paper: 3)\n"
      (Visit.canonical_meta_count ocl)
  | _ -> ());
  Printf.printf "%!"

let fig10_structure () =
  heading "F10: createCanonicalLoop skeleton (paper Fig. 10)";
  let m = Mc_ir.Ir.create_module "bench" in
  let f = Mc_ir.Ir.define_function m ~name:"main" ~ret:Mc_ir.Ir.Void ~args:[] in
  let entry = Mc_ir.Ir.create_block ~name:"entry" f in
  let b = Mc_ir.Builder.create () in
  Mc_ir.Builder.set_insertion_point b entry;
  let cli =
    Mc_ompbuilder.Omp_builder.create_canonical_loop b
      ~trip_count:(Mc_ir.Ir.i32_const 128)
      ~body_gen:(fun _ _ -> ())
      ()
  in
  Mc_ir.Builder.ret b None;
  Printf.printf "  blocks: %s\n%!"
    (String.concat " -> " (Mc_ompbuilder.Cli.block_names cli))

let claim_c4 () =
  heading "C4: unroll deferral — no duplication before the mid-end (paper §2.2)";
  let src factor =
    Printf.sprintf
      "void record(long x);\nint main(void) {\n#pragma omp unroll partial(%d)\n\
       for (int i = 0; i < 64; i += 1) record(i);\nreturn 0; }"
      factor
  in
  List.iter
    (fun factor ->
      let before = compile_or_fail ~options:(o0 classic) (src factor) in
      let after = compile_or_fail ~options:classic (src factor) in
      let count r = Mc_ir.Ir.module_inst_count (Option.get r.Driver.ir) in
      Printf.printf
        "  partial(%d): %3d instructions at -O0 (metadata only) -> %3d after LoopUnroll\n"
        factor (count before) (count after))
    [ 2; 4; 8 ];
  (* Consumed unroll without a factor defaults to 2. *)
  let _, tu =
    Driver.frontend
      "void record(long x);\nint main(void) {\n#pragma omp for\n\
       #pragma omp unroll partial\nfor (int i = 0; i < 8; i += 1) record(i);\n\
       return 0; }"
  in
  let outer = find_directive tu in
  let inner =
    match outer.dir_assoc with
    | Some { s_kind = Captured c; _ } -> (
      match c.cap_body.s_kind with
      | Omp_directive d -> d
      | _ -> failwith "shape")
    | _ -> failwith "shape"
  in
  let factor =
    List.find_map
      (function C_partial (Some (n, _)) -> Some n | C_partial None -> Some 2 | _ -> None)
      inner.dir_clauses
  in
  Printf.printf "  consumed 'unroll partial' factor default = %d (paper: 2)\n%!"
    (Option.value factor ~default:(-1))

let ablation_a3 () =
  heading "A3/L1: unroll factor sweep (interpreter steps, Listing 1 shape)";
  let src factor =
    Printf.sprintf
      "void record(long x);\nint main(void) {\nlong s = 0;\n\
       #pragma omp unroll partial(%d)\n\
       for (int i = 0; i < 2000; i += 1) s += i;\nrecord(s);\nreturn 0; }"
      factor
  in
  let base = steps_of ~options:(o0 classic) (src 4) in
  Printf.printf "  no unrolling (-O0)            : %7d steps\n" base;
  List.iter
    (fun factor ->
      let steps = steps_of ~options:classic (src factor) in
      Printf.printf "  partial(%2d) after LoopUnroll  : %7d steps (%.2fx)\n" factor
        steps
        (float_of_int base /. float_of_int steps))
    [ 1; 2; 4; 8; 16 ];
  Printf.printf "%!"

let ablation_a2 () =
  heading "A2: tile-size sweep on the 2-D stencil (interpreter steps)";
  let src ti tj =
    Printf.sprintf
      "void recordf(double x);\nint main(void) {\n\
       double g[34][34]; double n[34][34];\n\
       for (int i = 0; i < 34; i += 1) for (int j = 0; j < 34; j += 1)\n\
       { g[i][j] = (i * 31 + j * 17) %% 13; n[i][j] = 0.0; }\n\
       #pragma omp tile sizes(%d, %d)\n\
       for (int i = 1; i < 33; i += 1) for (int j = 1; j < 33; j += 1)\n\
       n[i][j] = 0.25 * (g[i-1][j] + g[i+1][j] + g[i][j-1] + g[i][j+1]);\n\
       double s = 0.0;\n\
       for (int i = 0; i < 34; i += 1) for (int j = 0; j < 34; j += 1) s += n[i][j];\n\
       recordf(s);\nreturn 0; }"
      ti tj
  in
  List.iter
    (fun (ti, tj) ->
      Printf.printf "  sizes(%2d,%2d): classic %6d steps, irbuilder %6d steps\n"
        ti tj
        (steps_of ~options:classic (src ti tj))
        (steps_of ~options:irbuilder (src ti tj)))
    [ (2, 2); (4, 4); (8, 8); (16, 16) ];
  Printf.printf "%!"

let ablation_a4 () =
  heading "A4: IRBuilder on-the-fly folding (paper §1.3) — instruction counts";
  let source =
    "void record(long x);\nint main(void) {\n\
     int x = (3 * 4 + 1) * 0 + 5 * 1;\n\
     int y = x + 0;\n\
     int a[4];\n\
     a[0] = 2 * 0; a[1] = y - y + 1; a[2] = 1 * y; a[3] = (2 + 2) * (3 + 3);\n\
     record(a[0] + a[1] + a[2] + a[3] + x);\nreturn 0; }"
  in
  let count fold =
    let r =
      compile_or_fail ~options:{ (o0 classic) with Driver.fold } source
    in
    Mc_ir.Ir.module_inst_count (Option.get r.Driver.ir)
  in
  Printf.printf "  folding on : %3d instructions\n" (count true);
  Printf.printf "  folding off: %3d instructions\n%!" (count false)

let ablation_a1 () =
  heading "A1: whole-pipeline comparison (interpreter steps, shadow vs irbuilder)";
  let src =
    "void record(long x);\nint main(void) {\nlong s = 0;\n\
     #pragma omp parallel for\n#pragma omp unroll partial(4)\n\
     for (int i = 0; i < 1000; i += 1) s += i;\nrecord(s);\nreturn 0; }"
  in
  Printf.printf "  classic   -O0: %7d   -O1: %7d steps\n"
    (steps_of ~options:(o0 classic) src)
    (steps_of ~options:classic src);
  Printf.printf "  irbuilder -O0: %7d   -O1: %7d steps\n%!"
    (steps_of ~options:(o0 irbuilder) src)
    (steps_of ~options:irbuilder src)

let omp60_preview () =
  heading "X1: OpenMP 6.0 preview transformations (paper's conclusion outlook)";
  let src name =
    match name with
    | "reverse" ->
      "void record(long x);\nint main(void) {\nlong s = 0;\n\
       #pragma omp reverse\nfor (int i = 0; i < 500; i += 1) s += i * 3;\n\
       record(s);\nreturn 0; }"
    | "interchange" ->
      "void record(long x);\nint main(void) {\nlong s = 0;\n\
       #pragma omp interchange\nfor (int i = 0; i < 30; i += 1)\n\
       for (int j = 0; j < 20; j += 1) s += i * j;\nrecord(s);\nreturn 0; }"
    | _ ->
      "void record(long x);\nint main(void) {\nlong s = 0;\n\
       #pragma omp fuse\n{\nfor (int i = 0; i < 300; i += 1) s += i;\n\
       for (int j = 0; j < 200; j += 1) s += 2 * j;\n}\nrecord(s);\nreturn 0; }"
  in
  List.iter
    (fun name ->
      Printf.printf "  %-12s classic %6d steps, irbuilder %6d steps\n" name
        (steps_of ~options:classic (src name))
        (steps_of ~options:irbuilder (src name)))
    [ "reverse"; "interchange"; "fuse" ];
  (* Fused vs unfused loop sequence: in the cache-less interpreter the
     per-iteration guards roughly offset the saved loop control, so the
     step counts come out close — fuse's real-world win is locality, which
     the simulator deliberately does not model (see DESIGN.md). *)
  let seq =
    "int main(void) {\nlong s = 0;\n\
     for (int i = 0; i < 400; i += 1) s += i;\n\
     for (int j = 0; j < 400; j += 1) s += 2 * j;\nreturn (int)s; }"
  in
  let fused =
    "int main(void) {\nlong s = 0;\n#pragma omp fuse\n{\n\
     for (int i = 0; i < 400; i += 1) s += i;\n\
     for (int j = 0; j < 400; j += 1) s += 2 * j;\n}\nreturn (int)s; }"
  in
  Printf.printf "  loop sequence: %d steps unfused -> %d steps fused\n%!"
    (steps_of ~options:classic seq)
    (steps_of ~options:classic fused)

(* --------------------------------------------------------------------- *)
(* Part 2: bechamel timing benchmarks                                     *)
(* --------------------------------------------------------------------- *)

(* A ~1000-line synthetic translation unit for the Fig. 1 stage timings. *)
let big_source =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "void record(long x);\n";
  for fn = 0 to 39 do
    Buffer.add_string buf (Printf.sprintf "long work%d(int n) {\n" fn);
    Buffer.add_string buf "  long acc = 0;\n";
    for i = 0 to 9 do
      Buffer.add_string buf
        (Printf.sprintf
           "  for (int i%d = 0; i%d < n; i%d += 1) acc += i%d * %d + (acc >> 3);\n"
           i i i i (i + fn))
    done;
    Buffer.add_string buf "  return acc;\n}\n"
  done;
  Buffer.add_string buf "int main(void) { record(work0(3)); return 0; }\n";
  Buffer.contents buf

let omp_source =
  "void record(long x);\nint main(void) {\nlong s = 0;\n\
   #pragma omp parallel for\n#pragma omp unroll partial(2)\n\
   for (int i = 0; i < 50; i += 1) s += i;\nrecord(s);\nreturn 0; }"

let fig2_source =
  "void record(long x);\nint main(void) {\n\
   #pragma omp parallel for schedule(static)\n\
   for (int i = 7; i < 17; i += 3) record(i);\nreturn 0; }"

let fig6_source =
  "void record(long x);\nint main(void) {\n\
   #pragma omp unroll full\n#pragma omp unroll partial(2)\n\
   for (int i = 7; i < 17; i += 3) record(i);\nreturn 0; }"

let fig8_source =
  "void recordf(double x);\nint main(void) {\ndouble a[64];\n\
   for (int i = 0; i < 64; i += 1) a[i] = i;\n\
   for (double &v : a) recordf(v);\nreturn 0; }"

let staged_frontend ?(options = classic) source =
  Staged.stage (fun () -> ignore (Driver.frontend ~options source))

(* Precompiled modules for execution benches. *)
let prepared_run ?(options = classic) source =
  let r = compile_or_fail ~options source in
  let m = Option.get r.Driver.ir in
  Staged.stage (fun () -> ignore (Interp.run_main m))

let unrolled_exec_source factor =
  Printf.sprintf
    "int main(void) {\nlong s = 0;\n#pragma omp unroll partial(%d)\n\
     for (int i = 0; i < 500; i += 1) s += i;\nreturn (int)s; }"
    factor

let tests =
  [
    (* F1: per-layer costs on the 1000-line unit. *)
    Test.make ~name:"fig1/lex" (Staged.stage (fun () ->
        let sm = Mc_srcmgr.Source_manager.create () in
        let diag = Mc_diag.Diagnostics.create sm in
        let buf = Mc_srcmgr.Memory_buffer.create ~name:"big.c" ~contents:big_source in
        let id = Mc_srcmgr.Source_manager.load_buffer sm buf in
        ignore (Mc_lexer.Lexer.tokenize diag ~file_id:id buf)));
    Test.make ~name:"fig1/preprocess" (Staged.stage (fun () ->
        let sm = Mc_srcmgr.Source_manager.create () in
        let diag = Mc_diag.Diagnostics.create sm in
        let fm = Mc_srcmgr.File_manager.create () in
        let pp = Mc_pp.Preprocessor.create diag sm fm in
        ignore
          (Mc_pp.Preprocessor.preprocess_main pp
             (Mc_srcmgr.Memory_buffer.create ~name:"big.c" ~contents:big_source))));
    Test.make ~name:"fig1/parse-sema" (staged_frontend big_source);
    Test.make ~name:"fig1/codegen-O0" (Staged.stage (fun () ->
        ignore (Driver.compile ~options:(o0 classic) big_source)));
    Test.make ~name:"fig1/full-O1" (Staged.stage (fun () ->
        ignore (Driver.compile ~options:classic big_source)));
    (* F2/F6/F8/F9: front-end cost of the paper's listings. *)
    Test.make ~name:"fig2/frontend-parallel-for" (staged_frontend fig2_source);
    Test.make ~name:"fig6/frontend-composed-unroll" (staged_frontend fig6_source);
    Test.make ~name:"fig7/shadow-construction" (staged_frontend fig6_source);
    Test.make ~name:"fig8/frontend-range-for" (staged_frontend fig8_source);
    Test.make ~name:"fig9/canonical-construction"
      (staged_frontend ~options:irbuilder fig6_source);
    (* F10: skeleton creation cost at the IR level. *)
    Test.make ~name:"fig10/create-canonical-loop" (Staged.stage (fun () ->
        let m = Mc_ir.Ir.create_module "bench" in
        let f = Mc_ir.Ir.define_function m ~name:"f" ~ret:Mc_ir.Ir.Void ~args:[] in
        let entry = Mc_ir.Ir.create_block ~name:"entry" f in
        let b = Mc_ir.Builder.create () in
        Mc_ir.Builder.set_insertion_point b entry;
        ignore
          (Mc_ompbuilder.Omp_builder.create_canonical_loop b
             ~trip_count:(Mc_ir.Ir.i32_const 128)
             ~body_gen:(fun _ _ -> ())
             ());
        Mc_ir.Builder.ret b None));
    (* L1/A3: execution cost, plain vs unrolled. *)
    Test.make ~name:"lst1/exec-no-unroll"
      (prepared_run ~options:(o0 classic) (unrolled_exec_source 4));
    Test.make ~name:"lst1/exec-unrolled-4"
      (prepared_run ~options:classic (unrolled_exec_source 4));
    Test.make ~name:"lst1/exec-unrolled-8"
      (prepared_run ~options:classic (unrolled_exec_source 8));
    (* A1: end-to-end compile time of the two lowering paths. *)
    Test.make ~name:"ablate/pipeline-shadow" (Staged.stage (fun () ->
        ignore (Driver.compile ~options:classic omp_source)));
    Test.make ~name:"ablate/pipeline-irbuilder" (Staged.stage (fun () ->
        ignore (Driver.compile ~options:irbuilder omp_source)));
    (* A4: codegen with and without on-the-fly folding. *)
    Test.make ~name:"ablate/codegen-fold" (Staged.stage (fun () ->
        ignore (Driver.compile ~options:(o0 classic) big_source)));
    Test.make ~name:"ablate/codegen-no-fold" (Staged.stage (fun () ->
        ignore
          (Driver.compile ~options:{ (o0 classic) with Driver.fold = false }
             big_source)));
    (* X1: front-end cost of the OpenMP 6.0 preview transformations. *)
    Test.make ~name:"omp60/reverse-shadow"
      (staged_frontend
         "void record(long x);\nint main(void) {\n#pragma omp reverse\n\
          for (int i = 0; i < 8; i += 1) record(i);\nreturn 0; }");
    Test.make ~name:"omp60/interchange-shadow"
      (staged_frontend
         "void record(long x);\nint main(void) {\n#pragma omp interchange\n\
          for (int i = 0; i < 4; i += 1)\nfor (int j = 0; j < 4; j += 1) \
          record(i + j);\nreturn 0; }");
    Test.make ~name:"omp60/fuse-shadow"
      (staged_frontend
         "void record(long x);\nint main(void) {\n#pragma omp fuse\n{\n\
          for (int i = 0; i < 4; i += 1) record(i);\n\
          for (int j = 0; j < 4; j += 1) record(j);\n}\nreturn 0; }");
    (* C1 cost angle: sema time of deep collapse nests. *)
    Test.make ~name:"claims/sema-collapse3-classic" (staged_frontend (nest_source 3));
    Test.make ~name:"claims/sema-collapse3-irbuilder"
      (staged_frontend ~options:irbuilder (nest_source 3));
  ]

(* --------------------------------------------------------------------- *)
(* Machine-readable stats: BENCH_stats.json                              *)
(* --------------------------------------------------------------------- *)

(* Emits the same counters as `mcc -print-stats` on the tiling example,
   plus the monotonic stage timings, so recorded runs can be diffed by
   tooling rather than eyeballed (no JSON library in the image — the
   writer is hand-rolled; every key is a [a-z0-9.-] statistic name). *)
let emit_stats_json () =
  heading "BENCH_stats.json (machine-readable counters + stage timings)";
  let tile_source =
    "void recordf(double x);\nint main(void) {\n\
     double g[34][34]; double n[34][34];\n\
     for (int i = 0; i < 34; i += 1) for (int j = 0; j < 34; j += 1)\n\
     { g[i][j] = (i * 31 + j * 17) % 13; n[i][j] = 0.0; }\n\
     #pragma omp tile sizes(4, 4)\n\
     for (int i = 1; i < 33; i += 1) for (int j = 1; j < 33; j += 1)\n\
     n[i][j] = 0.25 * (g[i-1][j] + g[i+1][j] + g[i][j-1] + g[i][j+1]);\n\
     double s = 0.0;\n\
     for (int i = 0; i < 34; i += 1) for (int j = 0; j < 34; j += 1) s += n[i][j];\n\
     recordf(s);\nreturn 0; }"
  in
  let r = compile_or_fail tile_source in
  (match Driver.run r with
  | Ok _ -> ()
  | Error e -> failwith e);
  (* The global registry now also holds the interpreter's counters. *)
  let counters = Mc_support.Stats.snapshot () in
  let t = r.Driver.timings in
  let buf = Buffer.create 1024 in
  let field last name value =
    Buffer.add_string buf (Printf.sprintf "    %S: %s%s\n" name value
      (if last then "" else ","))
  in
  Buffer.add_string buf "{\n  \"schema\": \"mcc-bench-stats/1\",\n";
  Buffer.add_string buf "  \"workload\": \"tile-sizes-4x4-stencil\",\n";
  Buffer.add_string buf "  \"timings_seconds\": {\n";
  field false "lex" (Printf.sprintf "%.9f" t.Driver.t_lex);
  field false "preprocess" (Printf.sprintf "%.9f" t.Driver.t_preprocess);
  field false "parse-sema" (Printf.sprintf "%.9f" t.Driver.t_parse_sema);
  field false "codegen" (Printf.sprintf "%.9f" t.Driver.t_codegen);
  field true "passes" (Printf.sprintf "%.9f" t.Driver.t_passes);
  Buffer.add_string buf "  },\n  \"counters\": {\n";
  let n = List.length counters in
  List.iteri
    (fun i (name, v) -> field (i = n - 1) name (string_of_int v))
    counters;
  Buffer.add_string buf "  }\n}\n";
  let path = "BENCH_stats.json" in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf));
  Printf.printf "  wrote %s (%d counters)\n%!" path n

(* --------------------------------------------------------------------- *)
(* Machine-readable cache metrics: BENCH_cache.json                      *)
(* --------------------------------------------------------------------- *)

(* A moderately compile-heavy synthetic unit, distinct per seed so the
   batch below really is N different translation units. *)
let batch_unit seed =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "void record(long x);\n";
  for fn = 0 to 11 do
    Buffer.add_string buf
      (Printf.sprintf "long u%d_work%d(int n) {\n  long acc = %d;\n" seed fn seed);
    for i = 0 to 5 do
      Buffer.add_string buf
        (Printf.sprintf
           "  for (int i%d = 0; i%d < n; i%d += 1) acc += i%d * %d + (acc >> 2);\n"
           i i i i (i + fn + seed))
    done;
    Buffer.add_string buf "  return acc;\n}\n"
  done;
  Buffer.add_string buf
    (Printf.sprintf "int main(void) { record(u%d_work0(3)); return 0; }\n" seed);
  Buffer.contents buf

(* Cold-vs-warm parallel batch over a shared content-addressed cache:
   the warm pass must be all hits and visibly cheaper.  Emitted as JSON
   so recorded runs can be compared by tooling (hand-rolled writer, as
   for BENCH_stats.json). *)
let emit_cache_json () =
  heading "BENCH_cache.json (cold vs warm parallel batch, shared compile cache)";
  let module Batch = Mc_core.Batch in
  let module Invocation = Mc_core.Invocation in
  let units = List.init 8 (fun i -> (Printf.sprintf "unit%d.c" i, batch_unit i)) in
  let invocation =
    { Invocation.default with Invocation.cache_enabled = true }
  in
  let jobs = min 4 (Batch.default_jobs ()) in
  let cache = Mc_core.Cache.create () in
  let cold = Batch.compile ~jobs ~cache ~invocation units in
  let warm = Batch.compile ~jobs ~cache ~invocation units in
  if not (Batch.all_ok cold && Batch.all_ok warm) then
    failwith "cache bench: batch compilation failed";
  let n = List.length units in
  let hit_rate = float_of_int (Batch.hits warm) /. float_of_int n in
  let stat snap name = Mc_support.Stats.find snap name in
  let buf = Buffer.create 512 in
  let field last name value =
    Buffer.add_string buf
      (Printf.sprintf "  %S: %s%s\n" name value (if last then "" else ","))
  in
  Buffer.add_string buf "{\n";
  field false "schema" "\"mcc-bench-cache/1\"";
  field false "units" (string_of_int n);
  field false "jobs" (string_of_int warm.Batch.jobs);
  field false "cold_wall_seconds" (Printf.sprintf "%.9f" cold.Batch.wall);
  field false "warm_wall_seconds" (Printf.sprintf "%.9f" warm.Batch.wall);
  field false "warm_speedup"
    (Printf.sprintf "%.3f" (cold.Batch.wall /. warm.Batch.wall));
  field false "cold_misses" (string_of_int (stat cold.Batch.stats "cache.misses"));
  field false "cold_stores"
    (string_of_int (stat cold.Batch.stats "cache.optir-stores"));
  field false "warm_hits" (string_of_int (stat warm.Batch.stats "cache.hits"));
  field true "warm_hit_rate" (Printf.sprintf "%.3f" hit_rate);
  Buffer.add_string buf "}\n";
  let path = "BENCH_cache.json" in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf));
  Printf.printf
    "  %d units on %d domains: cold %.6fs -> warm %.6fs (%.1fx), hit rate %.0f%%\n"
    n warm.Batch.jobs cold.Batch.wall warm.Batch.wall
    (cold.Batch.wall /. warm.Batch.wall)
    (100.0 *. hit_rate);
  Printf.printf "  wrote %s\n%!" path

(* --------------------------------------------------------------------- *)
(* Incremental recompilation: BENCH_incremental.json                      *)
(* --------------------------------------------------------------------- *)

(* The editing-loop workload over the stage cache: cold build, warm
   same-source rebuild (every stage hit), comment-only edit (lex/pp
   re-run, AST onward reused), and a body edit inside exactly one of the
   24 functions (every other function's fnast/fnir/fnoptir artifact is
   reused, only the edited one re-runs the front and back end).  Warm
   rebuilds are required to hit every stage and be at least 5x faster
   than cold, and a body edit must reuse all sibling slices — the
   harness fails loudly otherwise, so a regression can't ship a quietly
   cold "incremental" mode or a quietly unit-granular body edit. *)
let emit_incremental_json () =
  heading "BENCH_incremental.json (cold / warm / comment-edit / body-edit)";
  let module CInstance = Mc_core.Instance in
  let module Pipeline = Mc_core.Pipeline in
  let module Clock = Mc_support.Clock in
  (* A compile-heavy unit; [edit] lands only in inc_work7's body, so a
     body edit changes exactly one of the 26 top-level slices (record's
     prototype, 24 workers, main). *)
  let unit_with ~edit =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "void record(long x);\n";
    for fn = 0 to 23 do
      Buffer.add_string buf
        (Printf.sprintf "long inc_work%d(int n) {\n  long acc = %d;\n" fn
           (if fn = 7 then edit else fn));
      for i = 0 to 5 do
        Buffer.add_string buf
          (Printf.sprintf
             "  for (int i%d = 0; i%d < n + %d; i%d += 1) acc += i%d * %d + \
              (acc >> 2);\n"
             i i 10 i i (i + fn))
      done;
      Buffer.add_string buf "  return acc;\n}\n"
    done;
    Buffer.add_string buf "int main(void) { record(inc_work0(3)); return 0; }\n";
    Buffer.contents buf
  in
  let base = unit_with ~edit:7 in
  let inst =
    CInstance.create
      { Mc_core.Invocation.default with Mc_core.Invocation.cache_enabled = true }
  in
  let timed src =
    let started = Clock.now () in
    let c = CInstance.recompile inst ~name:"incr.c" src in
    let wall = Clock.now () -. started in
    if Mc_diag.Diagnostics.has_errors c.CInstance.c_result.Driver.diag then
      failwith "incremental bench: compile failed";
    let stat name =
      try Mc_support.Stats.find c.CInstance.c_result.Driver.stats name
      with Not_found -> 0
    in
    (wall, Pipeline.render_trace c.CInstance.c_trace, stat)
  in
  (* Edits must be fresh each measurement (a repeated comment edit would
     itself become a full hit), so vary the edit text / constant and take
     the fastest of three to damp scheduler noise. *)
  let best f =
    let samples = List.init 3 f in
    List.fold_left
      (fun (bw, bt, bs) (w, t, s) ->
        if w < bw then (w, t, s) else (bw, bt, bs))
      (List.hd samples) (List.tl samples)
  in
  let cold_wall, cold_trace, _ = timed base in
  let warm_wall, warm_trace, _ = best (fun _ -> timed base) in
  let comment_wall, comment_trace, _ =
    best (fun i ->
        timed (Printf.sprintf "/* incremental edit nr. %d */\n%s" i base))
  in
  let body_wall, body_trace, body_stat =
    best (fun i -> timed (unit_with ~edit:(100 + i)))
  in
  let body_fn_hits = body_stat "cache.fn-hits" in
  let body_fn_misses = body_stat "cache.fn-misses" in
  (* Hard floor from the issue: warm same-source recompiles must hit every
     stage and be >= 5x faster than the cold build. *)
  if warm_trace <> "lex:hit pp:hit ast:hit ir:hit optir:hit" then
    failwith ("incremental bench: warm rebuild not fully cached: " ^ warm_trace);
  if comment_trace <> "lex:run pp:run ast:hit ir:hit optir:hit" then
    failwith
      ("incremental bench: comment edit did not reuse AST onward: "
      ^ comment_trace);
  (* Hard floors for function granularity: a one-function body edit must
     re-run exactly that slice and reuse every sibling artifact. *)
  if body_trace <> "lex:run pp:run ast:partial ir:partial optir:partial" then
    failwith
      ("incremental bench: body edit was not function-granular: " ^ body_trace);
  if body_fn_misses <> 1 then
    failwith
      (Printf.sprintf
         "incremental bench: one-function edit re-parsed %d slices"
         body_fn_misses);
  let speedup = cold_wall /. warm_wall in
  if speedup < 5.0 then
    failwith
      (Printf.sprintf "incremental bench: warm speedup %.2fx < 5x" speedup);
  let body_speedup = cold_wall /. body_wall in
  let buf = Buffer.create 512 in
  let field last name value =
    Buffer.add_string buf
      (Printf.sprintf "  %S: %s%s\n" name value (if last then "" else ","))
  in
  Buffer.add_string buf "{\n";
  field false "schema" "\"mcc-bench-incremental/2\"";
  field false "workload" "\"24-function synthetic unit\"";
  field false "cold_seconds" (Printf.sprintf "%.9f" cold_wall);
  field false "cold_trace" (Printf.sprintf "%S" cold_trace);
  field false "warm_seconds" (Printf.sprintf "%.9f" warm_wall);
  field false "warm_trace" (Printf.sprintf "%S" warm_trace);
  field false "warm_speedup" (Printf.sprintf "%.3f" speedup);
  field false "comment_edit_seconds" (Printf.sprintf "%.9f" comment_wall);
  field false "comment_edit_trace" (Printf.sprintf "%S" comment_trace);
  field false "body_edit_seconds" (Printf.sprintf "%.9f" body_wall);
  field false "body_edit_trace" (Printf.sprintf "%S" body_trace);
  field false "body_edit_fn_hits" (string_of_int body_fn_hits);
  field false "body_edit_fn_misses" (string_of_int body_fn_misses);
  field true "body_edit_speedup" (Printf.sprintf "%.3f" body_speedup);
  Buffer.add_string buf "}\n";
  let path = "BENCH_incremental.json" in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf));
  Printf.printf
    "  cold %.6fs -> warm %.6fs (%.1fx); comment edit %.6fs (%s); body edit \
     %.6fs (%.1fx, %d/%d slices reused)\n"
    cold_wall warm_wall speedup comment_wall comment_trace body_wall
    body_speedup body_fn_hits
    (body_fn_hits + body_fn_misses);
  Printf.printf "  wrote %s\n%!" path

(* --------------------------------------------------------------------- *)
(* Persistent warm start: BENCH_server.json                               *)
(* --------------------------------------------------------------------- *)

(* The PR-5 claim: artifacts outlive processes.  Three ways to compile
   the same unit "again": cold (fresh process state, nothing cached),
   disk-warm (fresh instance over a populated --cache-dir store), and
   daemon-warm (round-trip to an mccd whose in-memory cache is hot).
   Also exercises the containment contract end-to-end: a deliberate-ICE
   request must come back as a contained failure and leave the daemon
   serving full hits to the next client.  Hard floors fail the harness
   loudly, and the regression gate diffs the emitted ratios. *)
let emit_server_json () =
  heading "BENCH_server.json (cold vs disk-warm vs daemon-warm, mccd)";
  let module CInstance = Mc_core.Instance in
  let module Invocation = Mc_core.Invocation in
  let module Pipeline = Mc_core.Pipeline in
  let module Server = Mc_core.Server in
  let module Client = Mc_core.Client in
  let module Protocol = Mc_core.Protocol in
  let module Clock = Mc_support.Clock in
  let module Binio = Mc_support.Binio in
  (* Distinct per seed, so "cold through the daemon" can be sampled
     repeatedly without restarting the server between samples. *)
  let unit_seed seed =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "void record(long x);\n";
    for fn = 0 to 63 do
      Buffer.add_string buf
        (Printf.sprintf "long srv%d_work%d(int n) {\n  long acc = %d;\n" seed
           fn fn);
      for i = 0 to 7 do
        Buffer.add_string buf
          (Printf.sprintf
             "  for (int i%d = 0; i%d < n + %d; i%d += 1) acc += i%d * %d + \
              (acc >> 2);\n"
             i i (9 + seed) i i (i + fn))
      done;
      Buffer.add_string buf "  return acc;\n}\n"
    done;
    Buffer.add_string buf
      (Printf.sprintf "int main(void) { record(srv%d_work0(3)); return 0; }\n"
         seed);
    Buffer.contents buf
  in
  let source = unit_seed 0 in
  let invocation =
    { Invocation.default with Invocation.gen_reproducer = false }
  in
  let scratch =
    let seed = Filename.temp_file "mcc-bench-server" "" in
    Sys.remove seed;
    Binio.mkdir_p seed;
    seed
  in
  let store_dir = Filename.concat scratch "store" in
  let socket_path = Filename.concat scratch "mccd.sock" in
  let best f =
    let samples = List.init 3 f in
    List.fold_left min (List.hd samples) (List.tl samples)
  in
  let timed f =
    let started = Clock.now () in
    let v = f () in
    (Clock.now () -. started, v)
  in
  (* Cold: a fresh cache-less instance per sample — every stage runs. *)
  let cold_seconds =
    best (fun _ ->
        let inst = CInstance.create invocation in
        let w, c = timed (fun () -> CInstance.compile inst ~name:"srv.c" source) in
        if Mc_diag.Diagnostics.has_errors c.CInstance.c_result.Driver.diag then
          failwith "server bench: cold compile failed";
        w)
  in
  (* Disk-warm: populate the on-disk store once, then measure fresh
     instances that have only the store to go on. *)
  let populate =
    CInstance.create
      { invocation with Invocation.cache_dir = Some store_dir }
  in
  ignore (CInstance.compile populate ~name:"srv.c" source);
  let disk_warm_seconds, disk_warm_trace =
    let samples =
      List.init 3 (fun _ ->
          let inst =
            CInstance.create
              { invocation with Invocation.cache_dir = Some store_dir }
          in
          let w, c =
            timed (fun () -> CInstance.compile inst ~name:"srv.c" source)
          in
          (w, Pipeline.render_trace c.CInstance.c_trace))
    in
    List.fold_left
      (fun (bw, bt) (w, t) -> if w < bw then (w, t) else (bw, bt))
      (List.hd samples) (List.tl samples)
  in
  (* Daemon-warm: a live server on a spare domain, first request warms
     its in-memory cache, then we measure whole client round-trips. *)
  let stop = Atomic.make false in
  let server =
    Domain.spawn (fun () ->
        Server.run ~stop
          {
            Server.socket_path;
            pool_size = 1;
            queue_capacity = 8;
            max_requests = None;
            idle_timeout = Some 60.0;
            request_timeout = None;
            shed_retry_after = Server.default_config.Server.shed_retry_after;
            cache_dir = None;
            max_cache_bytes = None;
            log = None;
          })
  in
  let rec await_socket tries =
    if Sys.file_exists socket_path then ()
    else if tries = 0 then failwith "server bench: daemon never listened"
    else begin
      Unix.sleepf 0.02;
      await_socket (tries - 1)
    end
  in
  await_socket 250;
  let roundtrip src =
    match Client.compile ~socket_path invocation [ ("srv.c", src) ] with
    | Ok { Client.response = Protocol.Resp_units { p_units = [ u ]; _ }; _ } ->
      u
    | Ok { Client.response = Protocol.Resp_rejected r; _ } ->
      failwith ("server bench: rejected: " ^ r)
    | Ok _ -> failwith "server bench: unexpected response shape"
    | Error e -> failwith ("server bench: " ^ e)
  in
  ignore (roundtrip source) (* warm both processes and the daemon cache *);
  (* Cold through the daemon: each sample is a never-seen unit, so the
     server really runs every stage; warm is the same transport with a
     hot cache — the speedup ratio is apples-to-apples. *)
  let daemon_cold_seconds =
    best (fun i ->
        let w, _ = timed (fun () -> roundtrip (unit_seed (1 + i))) in
        w)
  in
  let daemon_samples =
    List.init 5 (fun _ ->
        let w, u = timed (fun () -> roundtrip source) in
        (w, Pipeline.render_trace u.Protocol.r_trace))
  in
  let daemon_warm_seconds, daemon_warm_trace =
    List.fold_left
      (fun (bw, bt) (w, t) -> if w < bw then (w, t) else (bw, bt))
      (List.hd daemon_samples)
      (List.tl daemon_samples)
  in
  (* Containment: a deliberate ICE is a response, not a daemon death, and
     the very next client still gets a full hit. *)
  let ice_unit =
    roundtrip
      "int main(void){\n#pragma clang __debug crash\n  return 0;\n}\n"
  in
  let ice_contained =
    match ice_unit.Protocol.r_outcome with
    | Protocol.R_ice _ -> true
    | Protocol.R_ok _ -> false
  in
  let post_ice = roundtrip source in
  let post_ice_full_hit = post_ice.Protocol.r_cache_hit in
  Atomic.set stop true;
  (match Domain.join server with
  | Ok _ -> ()
  | Error e -> failwith ("server bench: server failed: " ^ e));
  let disk_warm_speedup = cold_seconds /. disk_warm_seconds in
  let daemon_warm_speedup = daemon_cold_seconds /. daemon_warm_seconds in
  (* Hard floors from the issue: containment must hold, warm paths must
     hit every stage, and daemon-warm must be >= 5x faster than cold. *)
  if not ice_contained then
    failwith "server bench: deliberate ICE was not contained";
  if not post_ice_full_hit then
    failwith "server bench: daemon not serving full hits after an ICE";
  if disk_warm_trace <> "lex:run pp:run ast:hit ir:hit optir:hit"
     && disk_warm_trace <> "lex:hit pp:hit ast:hit ir:hit optir:hit" then
    failwith ("server bench: disk-warm pass not store-backed: " ^ disk_warm_trace);
  if daemon_warm_trace <> "lex:hit pp:hit ast:hit ir:hit optir:hit" then
    failwith ("server bench: daemon-warm pass not fully cached: " ^ daemon_warm_trace);
  if daemon_warm_speedup < 5.0 then
    failwith
      (Printf.sprintf "server bench: daemon-warm speedup %.2fx < 5x"
         daemon_warm_speedup);
  let buf = Buffer.create 512 in
  let field last name value =
    Buffer.add_string buf
      (Printf.sprintf "  %S: %s%s\n" name value (if last then "" else ","))
  in
  Buffer.add_string buf "{\n";
  field false "schema" "\"mcc-bench-server/1\"";
  field false "workload" "\"64-function synthetic unit\"";
  field false "cold_seconds" (Printf.sprintf "%.9f" cold_seconds);
  field false "disk_warm_seconds" (Printf.sprintf "%.9f" disk_warm_seconds);
  field false "disk_warm_speedup" (Printf.sprintf "%.3f" disk_warm_speedup);
  field false "disk_warm_trace" (Printf.sprintf "%S" disk_warm_trace);
  field false "daemon_cold_seconds" (Printf.sprintf "%.9f" daemon_cold_seconds);
  field false "daemon_warm_seconds" (Printf.sprintf "%.9f" daemon_warm_seconds);
  field false "daemon_warm_speedup" (Printf.sprintf "%.3f" daemon_warm_speedup);
  field false "daemon_warm_trace" (Printf.sprintf "%S" daemon_warm_trace);
  field false "ice_contained" (if ice_contained then "true" else "false");
  field true "post_ice_full_hit" (if post_ice_full_hit then "true" else "false");
  Buffer.add_string buf "}\n";
  let path = "BENCH_server.json" in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf));
  Printf.printf
    "  cold %.6fs; disk-warm %.6fs (%.1fx); daemon cold %.6fs -> warm %.6fs \
     (%.1fx)\n"
    cold_seconds disk_warm_seconds disk_warm_speedup daemon_cold_seconds
    daemon_warm_seconds daemon_warm_speedup;
  Printf.printf "  ICE contained: %b; daemon full-hit after ICE: %b\n"
    ice_contained post_ice_full_hit;
  Printf.printf "  wrote %s\n%!" path

(* --------------------------------------------------------------------- *)
(* Scripted transformations: BENCH_transfo.json                           *)
(* --------------------------------------------------------------------- *)

(* The PR-7 claim: a transfo script is a drop-in replacement for editing
   pragmas into the source.  Hard floors: scripted IR must be
   byte-identical to the hand-pragma'd program under both lowerings, and
   the transfo pre-stage must serve a warm repeat from its cache —
   locally and through an mccd Req_transform round-trip. *)
let emit_transfo_json () =
  heading "BENCH_transfo.json (scripted vs pragma'd, transform cold/warm, mccd)";
  let module Pipeline = Mc_core.Pipeline in
  let module Invocation = Mc_core.Invocation in
  let module Server = Mc_core.Server in
  let module Client = Mc_core.Client in
  let module Protocol = Mc_core.Protocol in
  let module Cache = Mc_core.Cache in
  let module Clock = Mc_support.Clock in
  let module Binio = Mc_support.Binio in
  (* examples/matmul.c, inlined so the harness is cwd-independent. *)
  let plain =
    "void record(long x);\n\n\
     void matmat(long *C, long *A, long *B) {\n\
    \  for (int i = 0; i < 8; i += 1)\n\
    \    for (int j = 0; j < 8; j += 1) {\n\
    \      C[i * 8 + j] = 0;\n\
    \      for (int k = 0; k < 8; k += 1)\n\
    \        C[i * 8 + j] = C[i * 8 + j] + A[i * 8 + k] * B[k * 8 + j];\n\
    \    }\n\
     }\n\n\
     int main(void) {\n\
    \  long A[64], B[64], C[64];\n\
    \  for (int v = 0; v < 64; v += 1) {\n\
    \    A[v] = v % 7;\n\
    \    B[v] = v % 5 - 2;\n\
    \  }\n\
    \  matmat(C, A, B);\n\
    \  long s = 0;\n\
    \  for (int w = 0; w < 64; w += 1) s += C[w];\n\
    \  record(s);\n\
    \  return 0;\n\
     }\n"
  in
  let pragma'd =
    "void record(long x);\n\n\
     void matmat(long *C, long *A, long *B) {\n\
    \  #pragma omp tile sizes(4,4)\n\
    \  for (int i = 0; i < 8; i += 1)\n\
    \    for (int j = 0; j < 8; j += 1) {\n\
    \      C[i * 8 + j] = 0;\n\
    \      #pragma omp unroll partial(2)\n\
    \      for (int k = 0; k < 8; k += 1)\n\
    \        C[i * 8 + j] = C[i * 8 + j] + A[i * 8 + k] * B[k * 8 + j];\n\
    \    }\n\
     }\n\n\
     int main(void) {\n\
    \  long A[64], B[64], C[64];\n\
    \  #pragma omp fission\n\
    \  for (int v = 0; v < 64; v += 1) {\n\
    \    A[v] = v % 7;\n\
    \    B[v] = v % 5 - 2;\n\
    \  }\n\
    \  matmat(C, A, B);\n\
    \  long s = 0;\n\
    \  for (int w = 0; w < 64; w += 1) s += C[w];\n\
    \  record(s);\n\
    \  return 0;\n\
     }\n"
  in
  let script =
    "tile sizes(4,4) @ fun(matmat) for(i)\n\
     unroll partial(2) @ fun(matmat) for(k)\n\
     fission @ fun(main) for(v)\n"
  in
  let ir_of options src =
    let r = Driver.compile ~options src in
    if Mc_diag.Diagnostics.has_errors r.Driver.diag then
      failwith
        ("transfo bench: compile failed:\n"
        ^ Mc_diag.Diagnostics.render_all r.Driver.diag);
    match r.Driver.ir with
    | Some m -> Mc_ir.Printer.module_to_string m
    | None -> failwith "transfo bench: no IR"
  in
  let ir_identical =
    List.for_all
      (fun options ->
        ir_of { options with Driver.transfo_script = Some script } plain
        = ir_of options pragma'd)
      [ classic; irbuilder ]
  in
  if not ir_identical then
    failwith "transfo bench: scripted IR diverges from pragma'd IR";
  let timed f =
    let started = Clock.now () in
    let v = f () in
    (Clock.now () -. started, v)
  in
  let best f =
    let samples = List.init 3 f in
    List.fold_left min (List.hd samples) (List.tl samples)
  in
  (* Checked transform (script + differential interpreter run) through
     the transfo pre-stage, cold then cache-warm. *)
  let cache = Cache.create () in
  let transform () =
    match Pipeline.transform ~cache ~name:"matmul.c" ~script plain with
    | Ok (outcome, _, _) -> outcome = Pipeline.Cache_hit
    | Error e -> failwith ("transfo bench: " ^ e)
  in
  let cold_seconds, cold_hit = timed transform in
  if cold_hit then failwith "transfo bench: cold transform claimed a hit";
  let warm_seconds =
    best (fun _ ->
        let w, hit = timed transform in
        if not hit then failwith "transfo bench: warm transform missed";
        w)
  in
  (* The same transform as an mccd Req_transform round-trip. *)
  let scratch =
    let seed = Filename.temp_file "mcc-bench-transfo" "" in
    Sys.remove seed;
    Binio.mkdir_p seed;
    seed
  in
  let socket_path = Filename.concat scratch "mccd.sock" in
  let stop = Atomic.make false in
  let server =
    Domain.spawn (fun () ->
        Server.run ~stop
          {
            Server.socket_path;
            pool_size = 1;
            queue_capacity = 8;
            max_requests = None;
            idle_timeout = Some 60.0;
            request_timeout = None;
            shed_retry_after = Server.default_config.Server.shed_retry_after;
            cache_dir = None;
            max_cache_bytes = None;
            log = None;
          })
  in
  let rec await_socket tries =
    if Sys.file_exists socket_path then ()
    else if tries = 0 then failwith "transfo bench: daemon never listened"
    else begin
      Unix.sleepf 0.02;
      await_socket (tries - 1)
    end
  in
  await_socket 250;
  let invocation =
    {
      Invocation.default with
      Invocation.gen_reproducer = false;
      transfo_script =
        Some (Invocation.Source { name = "matmul.transfo"; contents = script });
    }
  in
  let roundtrip () =
    match Client.transform ~socket_path invocation ~name:"matmul.c" plain with
    | Ok { Client.response = Protocol.Resp_transformed { p_result = Ok t; _ }; _ }
      ->
      t
    | Ok
        {
          Client.response = Protocol.Resp_transformed { p_result = Error e; _ };
          _;
        } ->
      failwith ("transfo bench: script failed on daemon: " ^ e)
    | Ok { Client.response = Protocol.Resp_rejected r; _ } ->
      failwith ("transfo bench: rejected: " ^ r)
    | Ok _ -> failwith "transfo bench: unexpected response shape"
    | Error e -> failwith ("transfo bench: " ^ e)
  in
  let daemon_cold_seconds, first = timed roundtrip in
  if first.Protocol.x_cache_hit then
    failwith "transfo bench: daemon cold transform claimed a hit";
  let daemon_warm_seconds =
    best (fun _ ->
        let w, t = timed roundtrip in
        if not t.Protocol.x_cache_hit then
          failwith "transfo bench: daemon warm transform missed";
        if t.Protocol.x_source <> first.Protocol.x_source then
          failwith "transfo bench: daemon warm output drifted";
        w)
  in
  Atomic.set stop true;
  (match Domain.join server with
  | Ok _ -> ()
  | Error e -> failwith ("transfo bench: server failed: " ^ e));
  let warm_speedup = cold_seconds /. warm_seconds in
  let daemon_warm_speedup = daemon_cold_seconds /. daemon_warm_seconds in
  let buf = Buffer.create 512 in
  let field last name value =
    Buffer.add_string buf
      (Printf.sprintf "  %S: %s%s\n" name value (if last then "" else ","))
  in
  Buffer.add_string buf "{\n";
  field false "schema" "\"mcc-bench-transfo/1\"";
  field false "workload" "\"examples/matmul.c + 3-step script\"";
  field false "ir_identical" (if ir_identical then "true" else "false");
  field false "cold_seconds" (Printf.sprintf "%.9f" cold_seconds);
  field false "warm_seconds" (Printf.sprintf "%.9f" warm_seconds);
  field false "warm_speedup" (Printf.sprintf "%.3f" warm_speedup);
  field false "daemon_cold_seconds" (Printf.sprintf "%.9f" daemon_cold_seconds);
  field false "daemon_warm_seconds" (Printf.sprintf "%.9f" daemon_warm_seconds);
  field true "daemon_warm_speedup" (Printf.sprintf "%.3f" daemon_warm_speedup);
  Buffer.add_string buf "}\n";
  let path = "BENCH_transfo.json" in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf));
  Printf.printf
    "  scripted IR == pragma'd IR (classic + irbuilder): %b\n" ir_identical;
  Printf.printf
    "  transform cold %.6fs -> warm %.6fs (%.1fx); daemon cold %.6fs -> warm \
     %.6fs (%.1fx)\n"
    cold_seconds warm_seconds warm_speedup daemon_cold_seconds
    daemon_warm_seconds daemon_warm_speedup;
  Printf.printf "  wrote %s\n%!" path

(* --------------------------------------------------------------------- *)
(* Dataflow analysis: BENCH_analyze.json                                  *)
(* --------------------------------------------------------------------- *)

(* The analysis-subsystem claim (X6): `--analyze` rides the same
   function-granular cache as compilation.  Cold analysis of a
   24-function unit, a warm same-source repeat (report served from
   cache, byte-identical), a one-function body edit (exactly one
   function re-analysed, 24 sibling fragments adopted), and the p50 of
   warm Req_analyze round-trips through a live mccd.  Hard floors fail
   the harness loudly; the regression gate diffs the emitted numbers. *)
let emit_analyze_json () =
  heading "BENCH_analyze.json (cold / warm / body-edit analysis, mccd p50)";
  let module CInstance = Mc_core.Instance in
  let module Invocation = Mc_core.Invocation in
  let module Server = Mc_core.Server in
  let module Client = Mc_core.Client in
  let module Protocol = Mc_core.Protocol in
  let module Clock = Mc_support.Clock in
  let module Binio = Mc_support.Binio in
  (* Same shape as the incremental workload; [edit] lands only in
     ana_work7's body and stays a single digit so every sibling's source
     span (and so its rendered finding locations) is unmoved. *)
  let unit_with ~edit =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "void record(long x);\n";
    for fn = 0 to 23 do
      Buffer.add_string buf
        (Printf.sprintf "long ana_work%d(int n) {\n  long acc = %d;\n" fn
           (if fn = 7 then edit else fn mod 10));
      for i = 0 to 5 do
        Buffer.add_string buf
          (Printf.sprintf
             "  for (int i%d = 0; i%d < n + %d; i%d += 1) acc += i%d * %d + \
              (acc >> 2);\n"
             i i 10 i i (i + fn))
      done;
      Buffer.add_string buf "  return acc;\n}\n"
    done;
    Buffer.add_string buf "int main(void) { record(ana_work0(3)); return 0; }\n";
    Buffer.contents buf
  in
  let base = unit_with ~edit:3 in
  let invocation =
    {
      Invocation.default with
      Invocation.cache_enabled = true;
      gen_reproducer = false;
      analyze = Some [];
    }
  in
  let inst = CInstance.create invocation in
  let timed src =
    let started = Clock.now () in
    let c = CInstance.recompile inst ~name:"ana.c" src in
    let wall = Clock.now () -. started in
    if Mc_diag.Diagnostics.has_errors c.CInstance.c_result.Driver.diag then
      failwith "analyze bench: compile failed";
    let report =
      match c.CInstance.c_result.Driver.analysis with
      | Some r -> r
      | None -> failwith "analyze bench: no analysis report"
    in
    let stat name =
      try Mc_support.Stats.find c.CInstance.c_result.Driver.stats name
      with Not_found -> 0
    in
    (wall, report, stat)
  in
  let best f =
    let samples = List.init 3 f in
    List.fold_left
      (fun (bw, br, bs) (w, r, s) ->
        if w < bw then (w, r, s) else (bw, br, bs))
      (List.hd samples) (List.tl samples)
  in
  let cold_wall, cold_report, _ = timed base in
  let warm_wall, warm_report, _ = best (fun _ -> timed base) in
  (* Fresh single-digit edit per sample, so each measurement really
     re-analyses the edited function. *)
  let body_wall, body_report, body_stat =
    best (fun i -> timed (unit_with ~edit:(4 + i)))
  in
  let findings = Mc_analysis.Report.finding_count cold_report in
  let body_fn_hits = body_stat "analysis.fn-hits" in
  let body_fn_misses = body_stat "analysis.fn-misses" in
  (* Hard floors: the clean workload stays finding-free, a warm repeat
     serves the byte-identical report, and a one-function edit
     re-analyses exactly that function. *)
  if findings <> 0 then
    failwith
      (Printf.sprintf "analyze bench: clean workload drew %d finding(s)"
         findings);
  if
    Mc_analysis.Report.render_text warm_report
    <> Mc_analysis.Report.render_text cold_report
  then failwith "analyze bench: warm report drifted from cold";
  if body_fn_misses <> 1 then
    failwith
      (Printf.sprintf "analyze bench: one-function edit re-analysed %d slices"
         body_fn_misses);
  if body_fn_hits <> 24 then
    failwith
      (Printf.sprintf
         "analyze bench: body edit adopted %d cached fragments, wanted 24"
         body_fn_hits);
  ignore body_report;
  (* Req_analyze round-trips through a live daemon: one cold request,
     then the p50 of warm repeats against its in-memory cache. *)
  let scratch =
    let seed = Filename.temp_file "mcc-bench-analyze" "" in
    Sys.remove seed;
    Binio.mkdir_p seed;
    seed
  in
  let socket_path = Filename.concat scratch "mccd.sock" in
  let stop = Atomic.make false in
  let server =
    Domain.spawn (fun () ->
        Server.run ~stop
          {
            Server.socket_path;
            pool_size = 1;
            queue_capacity = 8;
            max_requests = None;
            idle_timeout = Some 60.0;
            request_timeout = None;
            shed_retry_after = Server.default_config.Server.shed_retry_after;
            cache_dir = None;
            max_cache_bytes = None;
            log = None;
          })
  in
  let rec await_socket tries =
    if Sys.file_exists socket_path then ()
    else if tries = 0 then failwith "analyze bench: daemon never listened"
    else begin
      Unix.sleepf 0.02;
      await_socket (tries - 1)
    end
  in
  await_socket 250;
  let timed_f f =
    let started = Clock.now () in
    let v = f () in
    (Clock.now () -. started, v)
  in
  let roundtrip () =
    match Client.analyze ~socket_path invocation ~name:"ana.c" base with
    | Ok { Client.response = Protocol.Resp_analysis { p_result = Ok a; _ }; _ }
      ->
      a
    | Ok
        { Client.response = Protocol.Resp_analysis { p_result = Error e; _ }; _ }
      ->
      failwith ("analyze bench: daemon analysis failed: " ^ e)
    | Ok { Client.response = Protocol.Resp_rejected r; _ } ->
      failwith ("analyze bench: rejected: " ^ r)
    | Ok _ -> failwith "analyze bench: unexpected response shape"
    | Error e -> failwith ("analyze bench: " ^ e)
  in
  let daemon_cold_seconds, first = timed_f roundtrip in
  let daemon_samples =
    List.init 9 (fun _ ->
        let w, a = timed_f roundtrip in
        if not a.Protocol.an_cache_hit then
          failwith "analyze bench: warm daemon analysis missed the cache";
        if a.Protocol.an_text <> first.Protocol.an_text then
          failwith "analyze bench: daemon warm report drifted";
        w)
  in
  let daemon_p50_seconds =
    List.nth (List.sort compare daemon_samples) (List.length daemon_samples / 2)
  in
  Atomic.set stop true;
  (match Domain.join server with
  | Ok _ -> ()
  | Error e -> failwith ("analyze bench: server failed: " ^ e));
  if first.Protocol.an_findings <> 0 then
    failwith "analyze bench: daemon drew findings on the clean workload";
  let warm_speedup = cold_wall /. warm_wall in
  let body_speedup = cold_wall /. body_wall in
  let buf = Buffer.create 512 in
  let field last name value =
    Buffer.add_string buf
      (Printf.sprintf "  %S: %s%s\n" name value (if last then "" else ","))
  in
  Buffer.add_string buf "{\n";
  field false "schema" "\"mcc-bench-analyze/1\"";
  field false "workload" "\"24-function synthetic unit\"";
  field false "findings" (string_of_int findings);
  field false "cold_seconds" (Printf.sprintf "%.9f" cold_wall);
  field false "warm_seconds" (Printf.sprintf "%.9f" warm_wall);
  field false "warm_speedup" (Printf.sprintf "%.3f" warm_speedup);
  field false "body_edit_seconds" (Printf.sprintf "%.9f" body_wall);
  field false "body_edit_speedup" (Printf.sprintf "%.3f" body_speedup);
  field false "body_edit_fn_hits" (string_of_int body_fn_hits);
  field false "body_edit_fn_misses" (string_of_int body_fn_misses);
  field false "daemon_cold_seconds" (Printf.sprintf "%.9f" daemon_cold_seconds);
  field true "daemon_p50_seconds" (Printf.sprintf "%.9f" daemon_p50_seconds);
  Buffer.add_string buf "}\n";
  let path = "BENCH_analyze.json" in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf));
  Printf.printf
    "  cold %.6fs -> warm %.6fs (%.1fx); body edit %.6fs (%d/%d fragments \
     reused); daemon cold %.6fs, warm p50 %.6fs\n"
    cold_wall warm_wall warm_speedup body_wall body_fn_hits
    (body_fn_hits + body_fn_misses) daemon_cold_seconds daemon_p50_seconds;
  Printf.printf "  wrote %s\n%!" path

let run_benchmarks () =
  heading "Timing benchmarks (bechamel, monotonic clock)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  Printf.printf "  %-38s %14s %10s\n" "benchmark" "time/run" "r^2";
  Printf.printf "  %s\n" (String.make 66 '-');
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analysis = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let time_ns =
            match Analyze.OLS.estimates ols_result with
            | Some (t :: _) -> t
            | _ -> nan
          in
          let r2 = Option.value (Analyze.OLS.r_square ols_result) ~default:nan in
          let pretty =
            if time_ns > 1e6 then Printf.sprintf "%10.3f ms" (time_ns /. 1e6)
            else if time_ns > 1e3 then Printf.sprintf "%10.3f us" (time_ns /. 1e3)
            else Printf.sprintf "%10.1f ns" time_ns
          in
          Printf.printf "  %-38s %14s %10.4f\n%!" name pretty r2)
        analysis)
    tests

let () =
  print_endline "Loop Transformations using Clang's AST — benchmark harness";
  print_endline "(see DESIGN.md for the experiment index, EXPERIMENTS.md for analysis)";
  claim_c1 ();
  fig10_structure ();
  claim_c4 ();
  ablation_a3 ();
  ablation_a2 ();
  ablation_a4 ();
  ablation_a1 ();
  omp60_preview ();
  emit_stats_json ();
  emit_cache_json ();
  emit_incremental_json ();
  emit_server_json ();
  emit_transfo_json ();
  emit_analyze_json ();
  run_benchmarks ()
