(* check_regression — the CI benchmark-regression gate.

   Compares the freshly generated BENCH_*.json files against the
   committed baselines in bench/baselines/ and fails (exit 1) on:

     - any structural-metric drift: strings, booleans, integer counters
       and stage traces must match the baseline exactly — these are
       machine-independent reproduction claims, not timings;
     - a wall-time regression beyond the noise tolerance: keys ending in
       "_seconds" (and the nested "timings_seconds.*") may not exceed
       baseline * (1 + tolerance) + an absolute slack (default 10 ms) —
       the slack keeps microsecond-scale stage timings, where 25% is
       smaller than timer noise, from tripping the gate, while leaving
       the millisecond-scale end-to-end numbers meaningfully bounded;
     - a ratio floor violation: keys ending in "_speedup" or
       "_hit_rate" are machine-normalized (both numerator and
       denominator move with the host), so they must stay at or above
       baseline * (1 - tolerance).

   The default tolerance is 0.25 — the ">25% regression fails" contract
   — and is adjustable per class for noisier runners.  A full
   per-metric report is written to BENCH_regression.txt so CI can
   upload it as the diff artifact of a failing run.

   No JSON library ships in the image, so the reader is a small
   recursive-descent parser covering exactly what the emitters write:
   objects, strings, numbers, booleans; nested objects flatten into
   dotted keys ("timings_seconds.lex", "counters.cache.hits"). *)

type value = S of string | N of float | B of bool

exception Parse_error of string

(* ---- minimal JSON reader ------------------------------------------------- *)

type cursor = { text : string; mutable pos : int }

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      go ()
    | _ -> ()
  in
  go ()

let expect c ch =
  skip_ws c;
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> raise (Parse_error (Printf.sprintf "expected '%c', got '%c'" ch x))
  | None -> raise (Parse_error (Printf.sprintf "expected '%c', got EOF" ch))

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> raise (Parse_error "unterminated string")
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some ch -> Buffer.add_char buf ch
      | None -> raise (Parse_error "unterminated escape"));
      advance c;
      go ()
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let rec go () =
    match peek c with
    | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') ->
      advance c;
      go ()
    | _ -> ()
  in
  go ();
  let s = String.sub c.text start (c.pos - start) in
  match float_of_string_opt s with
  | Some f -> f
  | None -> raise (Parse_error ("bad number: " ^ s))

let parse_literal c lit v =
  String.iter (fun ch -> expect c ch) lit;
  v

(* Flattens nested objects into dotted keys as it parses. *)
let rec parse_object c prefix acc =
  expect c '{';
  skip_ws c;
  if peek c = Some '}' then begin
    advance c;
    acc
  end
  else begin
    let rec members acc =
      skip_ws c;
      let key = parse_string c in
      let key = if prefix = "" then key else prefix ^ "." ^ key in
      expect c ':';
      skip_ws c;
      let acc =
        match peek c with
        | Some '{' -> parse_object c key acc
        | Some '"' -> (key, S (parse_string c)) :: acc
        | Some 't' -> (key, parse_literal c "true" (B true)) :: acc
        | Some 'f' -> (key, parse_literal c "false" (B false)) :: acc
        | _ -> (key, N (parse_number c)) :: acc
      in
      skip_ws c;
      match peek c with
      | Some ',' ->
        advance c;
        members acc
      | Some '}' ->
        advance c;
        acc
      | _ -> raise (Parse_error "expected ',' or '}'")
    in
    members acc
  end

let load_flat path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  let c = { text; pos = 0 } in
  skip_ws c;
  List.rev (parse_object c "" [])

(* ---- comparison rules ---------------------------------------------------- *)

let ends_with ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

let starts_with ~prefix s =
  let lp = String.length prefix and l = String.length s in
  l >= lp && String.sub s 0 lp = prefix

type rule = Exact | Time | Floor | Skip

let rule_of_key key =
  if starts_with ~prefix:"observed." key then
    (* Run-varying observations (shed/retry/fallback tallies under an
       overload workload): reported for the record, never gated. *)
    Skip
  else if
    ends_with ~suffix:"_seconds" key || starts_with ~prefix:"timings_seconds." key
  then Time
  else if ends_with ~suffix:"_speedup" key || ends_with ~suffix:"_hit_rate" key
  then Floor
  else if key = "jobs" then Skip (* host core count, not a metric *)
  else Exact

let value_to_string = function
  | S s -> Printf.sprintf "%S" s
  | N f -> if Float.is_integer f then Printf.sprintf "%.0f" f else Printf.sprintf "%.6f" f
  | B b -> string_of_bool b

(* [Some line] is a failure, [None] a pass. *)
let compare_metric ~time_tol ~time_slack ~ratio_tol key base fresh =
  match (base, fresh, rule_of_key key) with
  | _, _, Skip -> None
  | N b, N f, Time ->
    if f > (b *. (1.0 +. time_tol)) +. time_slack then
      Some
        (Printf.sprintf
           "%s: wall-time regression: %.6fs -> %.6fs (+%.0f%%, tolerance \
            %.0f%% + %.0fms)"
           key b f
           ((f /. b -. 1.0) *. 100.0)
           (time_tol *. 100.0) (time_slack *. 1000.0))
    else None
  | N b, N f, Floor ->
    if f < b *. (1.0 -. ratio_tol) then
      Some
        (Printf.sprintf
           "%s: ratio floor violated: %.3f -> %.3f (-%.0f%%, tolerance %.0f%%)"
           key b f
           ((1.0 -. (f /. b)) *. 100.0)
           (ratio_tol *. 100.0))
    else None
  | b, f, _ ->
    if b = f then None
    else
      Some
        (Printf.sprintf "%s: structural drift: baseline %s, fresh %s" key
           (value_to_string b) (value_to_string f))

let compare_file ~time_tol ~time_slack ~ratio_tol ~fresh_dir report
    baseline_path =
  let name = Filename.basename baseline_path in
  let fresh_path = Filename.concat fresh_dir name in
  Buffer.add_string report (Printf.sprintf "== %s ==\n" name);
  if not (Sys.file_exists fresh_path) then begin
    Buffer.add_string report
      (Printf.sprintf "FAIL: fresh results missing (%s not generated)\n"
         fresh_path);
    1
  end
  else
    match (load_flat baseline_path, load_flat fresh_path) with
    | exception Parse_error e ->
      Buffer.add_string report (Printf.sprintf "FAIL: unreadable JSON: %s\n" e);
      1
    | base, fresh ->
      let failures = ref 0 in
      List.iter
        (fun (key, bval) ->
          match List.assoc_opt key fresh with
          | None ->
            incr failures;
            Buffer.add_string report
              (Printf.sprintf "FAIL %s: metric missing from fresh run\n" key)
          | Some fval -> (
            match
              compare_metric ~time_tol ~time_slack ~ratio_tol key bval fval
            with
            | Some msg ->
              incr failures;
              Buffer.add_string report ("FAIL " ^ msg ^ "\n")
            | None ->
              Buffer.add_string report
                (Printf.sprintf "  ok %s: %s -> %s\n" key
                   (value_to_string bval) (value_to_string fval))))
        base;
      (* New metrics are fine (a new emitter field is not a regression),
         but worth surfacing so baselines get refreshed. *)
      List.iter
        (fun (key, _) ->
          if List.assoc_opt key base = None then
            Buffer.add_string report
              (Printf.sprintf "  note %s: not in baseline (refresh baselines?)\n"
                 key))
        fresh;
      !failures

let () =
  let baseline_dir = ref "bench/baselines" in
  let fresh_dir = ref "." in
  let report_path = ref "BENCH_regression.txt" in
  let time_tol = ref 0.25 in
  let time_slack = ref 0.010 in
  let ratio_tol = ref 0.25 in
  Arg.parse
    [
      ("--baselines", Arg.Set_string baseline_dir, "DIR committed baseline JSONs");
      ("--fresh", Arg.Set_string fresh_dir, "DIR freshly generated JSONs");
      ("--report", Arg.Set_string report_path, "PATH where to write the report");
      ( "--time-tolerance",
        Arg.Set_float time_tol,
        "F allowed relative wall-time regression (default 0.25)" );
      ( "--time-slack",
        Arg.Set_float time_slack,
        "S absolute wall-time slack in seconds on top of the relative \
         tolerance (default 0.010)" );
      ( "--ratio-tolerance",
        Arg.Set_float ratio_tol,
        "F allowed relative speedup/hit-rate drop (default 0.25)" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument: " ^ a)))
    "check_regression --baselines bench/baselines --fresh .";
  let baselines =
    Sys.readdir !baseline_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort compare
    |> List.map (Filename.concat !baseline_dir)
  in
  if baselines = [] then begin
    Printf.eprintf "check_regression: no baselines in %s\n" !baseline_dir;
    exit 2
  end;
  let report = Buffer.create 4096 in
  let failures =
    List.fold_left
      (fun acc p ->
        acc
        + compare_file ~time_tol:!time_tol ~time_slack:!time_slack
            ~ratio_tol:!ratio_tol ~fresh_dir:!fresh_dir report p)
      0 baselines
  in
  Buffer.add_string report
    (if failures = 0 then "\nRESULT: PASS\n"
     else Printf.sprintf "\nRESULT: FAIL (%d regression(s))\n" failures);
  let oc = open_out !report_path in
  output_string oc (Buffer.contents report);
  close_out oc;
  print_string (Buffer.contents report);
  if failures > 0 then exit 1
