(* The standalone fuzzing driver behind the CI smoke steps:

     fuzz -n 500 -seed 1 -jobs 1,4 -corpus examples -out fuzz-failures
     fuzz -mode diff -n 500 -seed 1 -jobs 1,4 -out diff-mismatches

   The default (crash) mode drives [Mc_fuzz.Fuzz.run] over generated
   programs and mutations of the corpus and asserts crash containment;
   diff mode drives [Mc_fuzz.Differential.run], the differential-
   semantics oracle for the loop-transformation directives — including
   the scripted-transformation oracle, which pairs each program with a
   random transfo script and checks scripted-vs-pragma IR identity plus
   interpreter agreement.  Both print a one-line verdict, write each
   (minimized) failing input — plus its .transfo script for scripted
   mismatches — into the output directory, and exit non-zero iff the
   invariant was violated. *)

let run_crash_mode ~n ~seed ~jobs ~corpus_dir ~out_dir =
  let corpus =
    match Sys.readdir corpus_dir with
    | entries ->
      Array.to_list entries
      |> List.filter (fun f -> Filename.check_suffix f ".c")
      |> List.sort compare
      |> List.map (fun f ->
             In_channel.with_open_text
               (Filename.concat corpus_dir f)
               In_channel.input_all)
    | exception Sys_error _ -> []
  in
  let report = Mc_fuzz.Fuzz.run ~corpus ~jobs ~n ~seed () in
  match report.Mc_fuzz.Fuzz.failures with
  | [] ->
    Printf.printf
      "fuzz: OK: %d inputs (seed %d, %d corpus file(s)) under -j {%s}: no \
       escaped exceptions, no ICEs\n"
      report.Mc_fuzz.Fuzz.total seed (List.length corpus)
      (String.concat "," (List.map string_of_int jobs))
  | failures ->
    (try Sys.mkdir out_dir 0o755 with Sys_error _ -> ());
    List.iteri
      (fun i f ->
        let base = Filename.concat out_dir (Printf.sprintf "fail-%d" i) in
        Out_channel.with_open_text (base ^ ".c") (fun oc ->
            Out_channel.output_string oc f.Mc_fuzz.Fuzz.fz_source);
        Out_channel.with_open_text (base ^ ".txt") (fun oc ->
            Printf.fprintf oc "input: %s\njobs: %d\n%s\n"
              f.Mc_fuzz.Fuzz.fz_name f.Mc_fuzz.Fuzz.fz_jobs
              f.Mc_fuzz.Fuzz.fz_message);
        Printf.eprintf "fuzz: FAIL %s (-j %d): %s\n  minimized: %s.c\n"
          f.Mc_fuzz.Fuzz.fz_name f.Mc_fuzz.Fuzz.fz_jobs
          (match String.index_opt f.Mc_fuzz.Fuzz.fz_message '\n' with
          | Some nl -> String.sub f.Mc_fuzz.Fuzz.fz_message 0 nl
          | None -> f.Mc_fuzz.Fuzz.fz_message)
          base)
      failures;
    Printf.eprintf "fuzz: %d/%d inputs violated crash containment\n"
      (List.length failures) report.Mc_fuzz.Fuzz.total;
    exit 1

let run_diff_mode ~n ~seed ~jobs ~out_dir =
  let report = Mc_fuzz.Differential.run ~jobs ~n ~seed () in
  match report.Mc_fuzz.Differential.dm_mismatches with
  | [] ->
    Printf.printf
      "fuzz: OK: %d differential inputs (seed %d) agree with their \
       pragma-stripped reference under every configuration and -j {%s}\n"
      report.Mc_fuzz.Differential.dm_total seed
      (String.concat "," (List.map string_of_int jobs))
  | mismatches ->
    (try Sys.mkdir out_dir 0o755 with Sys_error _ -> ());
    List.iteri
      (fun i m ->
        let base = Filename.concat out_dir (Printf.sprintf "mismatch-%d" i) in
        Out_channel.with_open_text (base ^ ".c") (fun oc ->
            Out_channel.output_string oc m.Mc_fuzz.Differential.dm_source);
        (match m.Mc_fuzz.Differential.dm_script with
        | Some script ->
          Out_channel.with_open_text (base ^ ".transfo") (fun oc ->
              Out_channel.output_string oc script)
        | None -> ());
        Out_channel.with_open_text (base ^ ".txt") (fun oc ->
            Printf.fprintf oc "input: %s\nconfig: %s\n%s\n"
              m.Mc_fuzz.Differential.dm_name m.Mc_fuzz.Differential.dm_config
              m.Mc_fuzz.Differential.dm_detail;
            match m.Mc_fuzz.Differential.dm_script with
            | Some _ ->
              Printf.fprintf oc
                "reproduce: mcc --transfo-script %s.transfo %s.c\n"
                (Printf.sprintf "mismatch-%d" i)
                (Printf.sprintf "mismatch-%d" i)
            | None -> ());
        Printf.eprintf "fuzz: MISMATCH %s [%s]: %s\n  minimized: %s.c\n"
          m.Mc_fuzz.Differential.dm_name m.Mc_fuzz.Differential.dm_config
          m.Mc_fuzz.Differential.dm_detail base)
      mismatches;
    Printf.eprintf "fuzz: %d/%d inputs diverged from their reference\n"
      (List.length mismatches) report.Mc_fuzz.Differential.dm_total;
    exit 1

let run_analyze_mode ~n ~seed ~out_dir =
  let report = Mc_fuzz.Analysis_oracle.run ~n ~seed () in
  match report.Mc_fuzz.Analysis_oracle.av_violations with
  | [] ->
    Printf.printf
      "fuzz: OK: %d analysis inputs (seed %d): no unsound transformation \
       verdicts, no missed or spurious uninitialized-read findings\n"
      report.Mc_fuzz.Analysis_oracle.av_total seed
  | violations ->
    (try Sys.mkdir out_dir 0o755 with Sys_error _ -> ());
    List.iteri
      (fun i v ->
        let base = Filename.concat out_dir (Printf.sprintf "violation-%d" i) in
        Out_channel.with_open_text (base ^ ".c") (fun oc ->
            Out_channel.output_string oc v.Mc_fuzz.Analysis_oracle.av_source);
        Out_channel.with_open_text (base ^ ".txt") (fun oc ->
            Printf.fprintf oc "input: %s\noracle: %s\n%s\n"
              v.Mc_fuzz.Analysis_oracle.av_name
              v.Mc_fuzz.Analysis_oracle.av_oracle
              v.Mc_fuzz.Analysis_oracle.av_detail);
        Printf.eprintf "fuzz: VIOLATION %s [%s]: %s\n  input: %s.c\n"
          v.Mc_fuzz.Analysis_oracle.av_name
          v.Mc_fuzz.Analysis_oracle.av_oracle
          v.Mc_fuzz.Analysis_oracle.av_detail base)
      violations;
    Printf.eprintf "fuzz: %d/%d inputs violated an analysis oracle\n"
      (List.length violations) report.Mc_fuzz.Analysis_oracle.av_total;
    exit 1

let () =
  let mode = ref "crash" in
  let n = ref 500 in
  let seed = ref 1 in
  let jobs = ref "1,4" in
  let corpus_dir = ref "examples" in
  let out_dir = ref "" in
  let spec =
    [
      ( "-mode",
        Arg.Set_string mode,
        "MODE  'crash' (containment, default), 'diff' (differential \
         semantics) or 'analyze' (dataflow-analysis oracles)" );
      ("-n", Arg.Set_int n, "NUM  number of inputs (default 500)");
      ("-seed", Arg.Set_int seed, "SEED  campaign seed (default 1)");
      ( "-jobs",
        Arg.Set_string jobs,
        "LIST  comma-separated domain counts to test (default 1,4)" );
      ( "-corpus",
        Arg.Set_string corpus_dir,
        "DIR  directory of .c files to mutate (crash mode; default examples)"
      );
      ( "-out",
        Arg.Set_string out_dir,
        "DIR  where failing inputs are written (default fuzz-failures / \
         diff-mismatches)" );
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    "fuzz [-mode crash|diff|analyze] [-n NUM] [-seed SEED] [-jobs LIST] \
     [-corpus DIR] [-out DIR]";
  let jobs =
    String.split_on_char ',' !jobs
    |> List.filter_map int_of_string_opt
    |> function
    | [] -> [ 1; 4 ]
    | l -> l
  in
  match !mode with
  | "crash" ->
    let out_dir = if !out_dir = "" then "fuzz-failures" else !out_dir in
    run_crash_mode ~n:!n ~seed:!seed ~jobs ~corpus_dir:!corpus_dir ~out_dir
  | "diff" ->
    let out_dir = if !out_dir = "" then "diff-mismatches" else !out_dir in
    run_diff_mode ~n:!n ~seed:!seed ~jobs ~out_dir
  | "analyze" ->
    let out_dir = if !out_dir = "" then "analysis-violations" else !out_dir in
    run_analyze_mode ~n:!n ~seed:!seed ~out_dir
  | m ->
    Printf.eprintf
      "fuzz: unknown -mode %S (expected 'crash', 'diff' or 'analyze')\n" m;
    exit 2
