(* The standalone fuzzing driver behind the CI smoke step:

     fuzz -n 500 -seed 1 -jobs 1,4 -corpus examples -out fuzz-failures

   drives [Mc_fuzz.Fuzz.run] over generated programs and mutations of the
   corpus, prints a one-line verdict, writes each (minimized) failing
   input plus its ICE report into the output directory, and exits
   non-zero iff the crash-containment invariant was violated. *)

let () =
  let n = ref 500 in
  let seed = ref 1 in
  let jobs = ref "1,4" in
  let corpus_dir = ref "examples" in
  let out_dir = ref "fuzz-failures" in
  let spec =
    [
      ("-n", Arg.Set_int n, "NUM  number of inputs (default 500)");
      ("-seed", Arg.Set_int seed, "SEED  campaign seed (default 1)");
      ( "-jobs",
        Arg.Set_string jobs,
        "LIST  comma-separated domain counts to test (default 1,4)" );
      ( "-corpus",
        Arg.Set_string corpus_dir,
        "DIR  directory of .c files to mutate (default examples)" );
      ( "-out",
        Arg.Set_string out_dir,
        "DIR  where failing inputs are written (default fuzz-failures)" );
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    "fuzz [-n NUM] [-seed SEED] [-jobs LIST] [-corpus DIR] [-out DIR]";
  let corpus =
    match Sys.readdir !corpus_dir with
    | entries ->
      Array.to_list entries
      |> List.filter (fun f -> Filename.check_suffix f ".c")
      |> List.sort compare
      |> List.map (fun f ->
             In_channel.with_open_text
               (Filename.concat !corpus_dir f)
               In_channel.input_all)
    | exception Sys_error _ -> []
  in
  let jobs =
    String.split_on_char ',' !jobs
    |> List.filter_map int_of_string_opt
    |> function
    | [] -> [ 1; 4 ]
    | l -> l
  in
  let report = Mc_fuzz.Fuzz.run ~corpus ~jobs ~n:!n ~seed:!seed () in
  match report.Mc_fuzz.Fuzz.failures with
  | [] ->
    Printf.printf
      "fuzz: OK: %d inputs (seed %d, %d corpus file(s)) under -j {%s}: no \
       escaped exceptions, no ICEs\n"
      report.Mc_fuzz.Fuzz.total !seed (List.length corpus)
      (String.concat "," (List.map string_of_int jobs))
  | failures ->
    (try Sys.mkdir !out_dir 0o755 with Sys_error _ -> ());
    List.iteri
      (fun i f ->
        let base = Filename.concat !out_dir (Printf.sprintf "fail-%d" i) in
        Out_channel.with_open_text (base ^ ".c") (fun oc ->
            Out_channel.output_string oc f.Mc_fuzz.Fuzz.fz_source);
        Out_channel.with_open_text (base ^ ".txt") (fun oc ->
            Printf.fprintf oc "input: %s\njobs: %d\n%s\n"
              f.Mc_fuzz.Fuzz.fz_name f.Mc_fuzz.Fuzz.fz_jobs
              f.Mc_fuzz.Fuzz.fz_message);
        Printf.eprintf "fuzz: FAIL %s (-j %d): %s\n  minimized: %s.c\n"
          f.Mc_fuzz.Fuzz.fz_name f.Mc_fuzz.Fuzz.fz_jobs
          (match String.index_opt f.Mc_fuzz.Fuzz.fz_message '\n' with
          | Some nl -> String.sub f.Mc_fuzz.Fuzz.fz_message 0 nl
          | None -> f.Mc_fuzz.Fuzz.fz_message)
          base)
      failures;
    Printf.eprintf "fuzz: %d/%d inputs violated crash containment\n"
      (List.length failures) report.Mc_fuzz.Fuzz.total;
    exit 1
