/* Worksharing with a dynamic schedule over the simulated team.  Compile
   and run with:

     mcc -num-threads 4 examples/parallel_for.c
*/
void record(long x);

int main(void) {
  long s = 0;
#pragma omp parallel for schedule(dynamic, 2)
  for (int i = 7; i < 47; i += 3) s += i;
  record(s);
  return 0;
}
