/* Matrix-matrix multiply, deliberately free of pragmas: the target
   program for the transformation script in matmul.transfo (README,
   "Scripting transformations").  Apply, check and run with:

     mcc --transfo-script examples/matmul.transfo examples/matmul.c

   or print the rewritten program without compiling it:

     mcc -emit-transformed --transfo-script examples/matmul.transfo \
         examples/matmul.c
*/
void record(long x);

void matmat(long *C, long *A, long *B) {
  for (int i = 0; i < 8; i += 1)
    for (int j = 0; j < 8; j += 1) {
      C[i * 8 + j] = 0;
      for (int k = 0; k < 8; k += 1)
        C[i * 8 + j] = C[i * 8 + j] + A[i * 8 + k] * B[k * 8 + j];
    }
}

int main(void) {
  long A[64], B[64], C[64];
  for (int v = 0; v < 64; v += 1) {
    A[v] = v % 7;
    B[v] = v % 5 - 2;
  }
  matmat(C, A, B);
  long s = 0;
  for (int w = 0; w < 64; w += 1) s += C[w];
  record(s);
  return 0;
}
