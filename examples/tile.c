/* Tiled 2-D stencil sweep — the running example for -ftime-report and
   -print-stats (see README.md).  Compile and run with:

     mcc -ftime-report -print-stats examples/tile.c
*/
void recordf(double x);

int main(void) {
  double g[34][34];
  double n[34][34];
  for (int i = 0; i < 34; i += 1)
    for (int j = 0; j < 34; j += 1) {
      g[i][j] = (i * 31 + j * 17) % 13;
      n[i][j] = 0.0;
    }
#pragma omp tile sizes(4, 4)
  for (int i = 1; i < 33; i += 1)
    for (int j = 1; j < 33; j += 1)
      n[i][j] = 0.25 * (g[i - 1][j] + g[i + 1][j] + g[i][j - 1] + g[i][j + 1]);
  double s = 0.0;
  for (int i = 0; i < 34; i += 1)
    for (int j = 0; j < 34; j += 1) s += n[i][j];
  recordf(s);
  return 0;
}
