/* Collapsed loop nest combined with a consumed unroll — two
   transformations composing on one nest (paper section 2.3).  Compile
   and run with:

     mcc examples/collapse.c
     mcc -ast-dump-shadow examples/collapse.c   # the generated shadow AST
*/
void record(long x);

int main(void) {
  long s = 0;
#pragma omp parallel for collapse(2)
  for (int i = 0; i < 12; i += 1)
    for (int j = 0; j < 8; j += 1) s += i * j;
  record(s);
  return 0;
}
