/* A deliberately buggy program for the analysis gate: every helper
   below trips a different dataflow pass, and CI asserts that

     mcc --analyze examples/leaky.c

   exits 1 with exactly these findings (while the clean examples stay
   finding-free).  None of the helpers is ever called — main is benign —
   so the interpreter smoke run over examples/ still passes. */

long *malloc(long n);
void free(long *p);

/* [uninit]: 'x' is read before any store on the n <= 0 path. */
long sum_first(long n) {
  long x;
  if (n > 0) x = n;
  return x + 1;
}

/* [leak]: the early error return leaves the malloc'd buffer held. */
long fill(long n) {
  long *p = malloc(8 * n);
  if (n > 64) return -1;
  for (long i = 0; i < n; i += 1) p[i] = i;
  free(p);
  return 0;
}

/* [unreachable]: the trailing statement can never execute. */
long clamp(long v) {
  return v;
  v = 0;
  return v;
}

int main(void) { return 0; }
