/* Partial unroll of a reduction loop — the shape of the paper's
   Listing 1.  Compile and run with:

     mcc examples/unroll.c
     mcc -emit-ir -O0 examples/unroll.c   # metadata only, no duplication
     mcc -emit-ir examples/unroll.c       # after the LoopUnroll pass
*/
void record(long x);

int main(void) {
  long s = 0;
#pragma omp unroll partial(4)
  for (int i = 0; i < 2000; i += 1) s += i;
  record(s);
  return 0;
}
