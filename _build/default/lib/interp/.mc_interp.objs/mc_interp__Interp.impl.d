lib/interp/interp.ml: Buffer Bytes Char Float Hashtbl Int32 Int64 List Mc_ir Mc_omprt Mc_support Option Printf Sys
