lib/interp/interp.mli: Mc_ir
