type t = int

(* Offsets get the low 40 bits, the file id the bits above; file id 0 is
   reserved for the invalid location so that [invalid] is simply 0. *)
let offset_bits = 40
let offset_mask = (1 lsl offset_bits) - 1
let invalid = 0
let is_valid t = t <> 0

let encode ~file_id ~offset =
  assert (file_id >= 1 && offset >= 0 && offset <= offset_mask);
  (file_id lsl offset_bits) lor offset

let file_id t = t lsr offset_bits
let offset t = t land offset_mask
let compare = Int.compare
let equal = Int.equal
let shift t n = if is_valid t then t + n else t

type range = { range_begin : t; range_end : t }

let range range_begin range_end = { range_begin; range_end }
let point loc = { range_begin = loc; range_end = loc }
