lib/srcmgr/source_location.ml: Int
