lib/srcmgr/file_manager.ml: Hashtbl List Memory_buffer
