lib/srcmgr/memory_buffer.ml: String
