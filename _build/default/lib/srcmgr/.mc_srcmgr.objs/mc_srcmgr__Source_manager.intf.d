lib/srcmgr/source_manager.mli: Memory_buffer Source_location
