lib/srcmgr/file_manager.mli: Memory_buffer
