lib/srcmgr/source_manager.ml: Array List Memory_buffer Printf Source_location String
