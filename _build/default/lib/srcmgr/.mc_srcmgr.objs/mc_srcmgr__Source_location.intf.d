lib/srcmgr/source_location.mli:
