lib/srcmgr/memory_buffer.mli:
