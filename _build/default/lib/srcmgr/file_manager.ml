type t = {
  table : (string, Memory_buffer.t) Hashtbl.t;
  mutable order : string list; (* reverse registration order *)
}

let create () = { table = Hashtbl.create 16; order = [] }

let add_file t ~path ~contents =
  let buffer = Memory_buffer.create ~name:path ~contents in
  if not (Hashtbl.mem t.table path) then t.order <- path :: t.order;
  Hashtbl.replace t.table path buffer;
  buffer

let get_file t path = Hashtbl.find_opt t.table path
let file_exists t path = Hashtbl.mem t.table path
let files t = List.rev t.order
