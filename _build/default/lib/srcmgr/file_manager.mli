(** Virtual file system, the analogue of Clang's FileManager.

    The reproduction runs inside a sealed container and compiles sources that
    tests and benchmarks construct programmatically, so the "file system" is
    an in-memory map from path to buffer.  [#include] resolution in the
    preprocessor goes through this interface. *)

type t

val create : unit -> t

val add_file : t -> path:string -> contents:string -> Memory_buffer.t
(** Registers (or replaces) a virtual file and returns its buffer. *)

val get_file : t -> string -> Memory_buffer.t option
val file_exists : t -> string -> bool
val files : t -> string list
(** Registered paths, in registration order. *)
