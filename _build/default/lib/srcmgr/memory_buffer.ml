type t = { name : string; contents : string }

let create ~name ~contents = { name; contents }
let name t = t.name
let contents t = t.contents
let length t = String.length t.contents
let char_at t i = t.contents.[i]
let sub t ~pos ~len = String.sub t.contents pos len
