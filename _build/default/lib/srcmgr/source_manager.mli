(** Owner of all buffers entering the compilation, the analogue of
    [clang::SourceManager].  It assigns file ids, builds line maps lazily,
    and decomposes {!Source_location.t} values into presumed locations for
    diagnostics. *)

type t

type presumed = {
  filename : string;
  line : int; (* 1-based *)
  column : int; (* 1-based, in bytes *)
}

val create : unit -> t

val load_buffer : t -> Memory_buffer.t -> int
(** Registers a buffer and returns its file id (>= 1). *)

val load_main : t -> Memory_buffer.t -> int
(** Like {!load_buffer} but also records the buffer as the main file. *)

val main_file_id : t -> int option
val buffer : t -> int -> Memory_buffer.t
val buffer_of_loc : t -> Source_location.t -> Memory_buffer.t

val location : t -> file_id:int -> offset:int -> Source_location.t

val presumed : t -> Source_location.t -> presumed option
(** [None] for the invalid location. *)

val spelling : t -> Source_location.t -> len:int -> string
(** The source text starting at a location. *)

val line_text : t -> Source_location.t -> string option
(** The full source line containing a location, without its newline; used by
    the diagnostic renderer for caret snippets. *)

val describe : t -> Source_location.t -> string
(** ["file:line:col"] or ["<invalid loc>"]. *)
