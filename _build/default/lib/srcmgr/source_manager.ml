type entry = {
  buf : Memory_buffer.t;
  mutable line_starts : int array option; (* built on first decomposition *)
}

type presumed = { filename : string; line : int; column : int }

type t = {
  mutable entries : entry array; (* index = file_id - 1 *)
  mutable count : int;
  mutable main : int option;
}

let create () = { entries = [||]; count = 0; main = None }

let load_buffer t buf =
  let entry = { buf; line_starts = None } in
  let needed = t.count + 1 in
  if needed > Array.length t.entries then begin
    let grown = Array.make (max 8 (2 * needed)) entry in
    Array.blit t.entries 0 grown 0 t.count;
    t.entries <- grown
  end;
  t.entries.(t.count) <- entry;
  t.count <- needed;
  t.count

let load_main t buf =
  let id = load_buffer t buf in
  t.main <- Some id;
  id

let main_file_id t = t.main

let entry t file_id =
  if file_id < 1 || file_id > t.count then
    invalid_arg (Printf.sprintf "Source_manager: unknown file id %d" file_id);
  t.entries.(file_id - 1)

let buffer t file_id = (entry t file_id).buf
let buffer_of_loc t loc = buffer t (Source_location.file_id loc)

let location _t ~file_id ~offset = Source_location.encode ~file_id ~offset

let line_starts e =
  match e.line_starts with
  | Some starts -> starts
  | None ->
    let contents = Memory_buffer.contents e.buf in
    let acc = ref [ 0 ] in
    String.iteri (fun i c -> if c = '\n' then acc := (i + 1) :: !acc) contents;
    let starts = Array.of_list (List.rev !acc) in
    e.line_starts <- Some starts;
    starts

(* Largest index whose start is <= offset, found by binary search. *)
let line_index starts offset =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi + 1) / 2 in
      if starts.(mid) <= offset then go mid hi else go lo (mid - 1)
  in
  go 0 (Array.length starts - 1)

let presumed t loc =
  if not (Source_location.is_valid loc) then None
  else begin
    let e = entry t (Source_location.file_id loc) in
    let offset = Source_location.offset loc in
    let starts = line_starts e in
    let li = line_index starts offset in
    Some
      {
        filename = Memory_buffer.name e.buf;
        line = li + 1;
        column = offset - starts.(li) + 1;
      }
  end

let spelling t loc ~len =
  let buf = buffer_of_loc t loc in
  let pos = Source_location.offset loc in
  let len = min len (Memory_buffer.length buf - pos) in
  Memory_buffer.sub buf ~pos ~len

let line_text t loc =
  if not (Source_location.is_valid loc) then None
  else begin
    let e = entry t (Source_location.file_id loc) in
    let starts = line_starts e in
    let offset = Source_location.offset loc in
    let li = line_index starts offset in
    let start = starts.(li) in
    let contents = Memory_buffer.contents e.buf in
    let stop =
      match String.index_from_opt contents start '\n' with
      | Some i -> i
      | None -> String.length contents
    in
    Some (String.sub contents start (stop - start))
  end

let describe t loc =
  match presumed t loc with
  | None -> "<invalid loc>"
  | Some p -> Printf.sprintf "%s:%d:%d" p.filename p.line p.column
