(** Compact source locations, the analogue of [clang::SourceLocation].

    A location is an opaque integer that the owning {!Source_manager} can
    decompose into file/line/column.  Keeping it word-sized matters because
    every token and AST node carries one.  The encoding packs a file id into
    the high bits and a byte offset into the low bits. *)

type t

val invalid : t
(** The "no location" value, used by compiler-synthesised nodes (e.g. shadow
    AST statements that have no spelling in the source). *)

val is_valid : t -> bool
val encode : file_id:int -> offset:int -> t
val file_id : t -> int
val offset : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool

val shift : t -> int -> t
(** [shift loc n] moves a valid location [n] bytes forward within the same
    file; useful for pointing at the end of a token. *)

type range = { range_begin : t; range_end : t }

val range : t -> t -> range
val point : t -> range
