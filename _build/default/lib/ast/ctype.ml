open Tree
module Int_ops = Mc_support.Int_ops

let char_t = Int Int_ops.i8
let short_t = Int Int_ops.i16
let int_t = Int Int_ops.i32
let long_t = Int Int_ops.i64
let uchar_t = Int Int_ops.u8
let ushort_t = Int Int_ops.u16
let uint_t = Int Int_ops.u32
let ulong_t = Int Int_ops.u64
let float_t = Float 32
let double_t = Float 64
let bool_t = Bool
let size_t = ulong_t

let rec to_string = function
  | Void -> "void"
  | Bool -> "_Bool"
  | Int { bits; signed } -> (
    match (bits, signed) with
    | 8, true -> "char"
    | 8, false -> "unsigned char"
    | 16, true -> "short"
    | 16, false -> "unsigned short"
    | 32, true -> "int"
    | 32, false -> "unsigned int"
    | 64, true -> "long"
    | 64, false -> "unsigned long"
    | _ -> Printf.sprintf "int%d_t" bits)
  | Float 32 -> "float"
  | Float _ -> "double"
  | Ptr t -> to_string t ^ " *"
  | Array (t, Some n) -> Printf.sprintf "%s[%d]" (to_string t) n
  | Array (t, None) -> Printf.sprintf "%s[]" (to_string t)
  | Func { ft_ret; ft_params; ft_variadic } ->
    let params = List.map to_string ft_params in
    let params = if ft_variadic then params @ [ "..." ] else params in
    Printf.sprintf "%s (%s)" (to_string ft_ret) (String.concat ", " params)

let equal a b = a = b
let int_width = function Int w -> Some w | Bool -> Some Int_ops.i1 | _ -> None

let rec size_in_bytes = function
  | Void -> invalid_arg "size_in_bytes: void"
  | Bool -> 1
  | Int { bits; _ } -> bits / 8
  | Float bits -> bits / 8
  | Ptr _ -> 8
  | Array (t, Some n) -> n * size_in_bytes t
  | Array (_, None) -> invalid_arg "size_in_bytes: array of unknown bound"
  | Func _ -> invalid_arg "size_in_bytes: function type"

let is_integer = function Int _ | Bool -> true | _ -> false
let is_floating = function Float _ -> true | _ -> false
let is_arithmetic t = is_integer t || is_floating t
let is_pointer = function Ptr _ -> true | _ -> false
let is_scalar t = is_arithmetic t || is_pointer t
let is_array = function Array _ -> true | _ -> false

let element_type = function
  | Array (t, _) -> Some t
  | Ptr t -> Some t
  | _ -> None

let promote = function
  | Bool -> int_t
  | Int { bits; _ } when bits < 32 -> int_t
  | t -> t

let common_arithmetic a b =
  if not (is_arithmetic a && is_arithmetic b) then None
  else if a = Float 64 || b = Float 64 then Some double_t
  else if a = Float 32 || b = Float 32 then Some float_t
  else begin
    let a = promote a and b = promote b in
    match (a, b) with
    | Int wa, Int wb ->
      let rank w = w.Int_ops.bits in
      if rank wa = rank wb then
        (* Same rank: unsigned wins. *)
        Some (Int { Int_ops.bits = wa.bits; signed = wa.signed && wb.signed })
      else begin
        let hi, lo = if rank wa > rank wb then (wa, wb) else (wb, wa) in
        (* The higher-rank type can represent all lower-rank values here
           because widths are 32/64 only after promotion. *)
        ignore lo;
        Some (Int hi)
      end
    | _ -> None
  end

let decay = function
  | Array (t, _) -> Ptr t
  | Func _ as f -> Ptr f
  | t -> t
