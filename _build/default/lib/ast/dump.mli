(** Clang-style [-ast-dump] printer.

    Reproduces the tree layout of the paper's AST listings (Figs. 2b, 6b, 9):
    box-drawing prefixes [|-]/[`-], node labels like
    [VarDecl used i 'int' cinit] or [DeclRefExpr 'int' lvalue Var 'i' 'int'],
    and [<<<NULL>>>] placeholders for absent for-loop slots.

    Clang prints pointer addresses to show declaration identity; this dump
    prints a dump-local ordinal instead ([VarDecl 1 used i 'int'] …
    [VarDecl 1]) so golden tests are stable.

    Shadow AST children are hidden by default, exactly as in Clang
    (paper §1.2); [~shadow:true] reveals them under [<transformed>],
    [<preinits>] and [<loop helpers>] marker nodes. *)

open Tree

val stmt : ?shadow:bool -> stmt -> string
val expr : expr -> string
val translation_unit : ?shadow:bool -> translation_unit -> string

val transformed_stmt : directive -> string option
(** Dump of a transformation directive's [getTransformedStmt()], the way the
    paper's Fig. 7 shows the shadow AST of an unroll directive. *)
