(** Spellings shared by the dump printer and the unparser. *)

open Tree

let unop_spelling = function
  | U_plus -> "+"
  | U_minus -> "-"
  | U_lnot -> "!"
  | U_bnot -> "~"
  | U_preinc | U_postinc -> "++"
  | U_predec | U_postdec -> "--"
  | U_deref -> "*"
  | U_addrof -> "&"

let unop_is_postfix = function
  | U_postinc | U_postdec -> true
  | U_plus | U_minus | U_lnot | U_bnot | U_preinc | U_predec | U_deref
  | U_addrof ->
    false

let binop_spelling = function
  | B_add -> "+"
  | B_sub -> "-"
  | B_mul -> "*"
  | B_div -> "/"
  | B_rem -> "%"
  | B_shl -> "<<"
  | B_shr -> ">>"
  | B_lt -> "<"
  | B_gt -> ">"
  | B_le -> "<="
  | B_ge -> ">="
  | B_eq -> "=="
  | B_ne -> "!="
  | B_band -> "&"
  | B_bxor -> "^"
  | B_bor -> "|"
  | B_land -> "&&"
  | B_lor -> "||"
  | B_comma -> ","

let int_lit_str ty v =
  match Ctype.int_width ty with
  | Some w -> Mc_support.Int_ops.to_string w v
  | None -> Int64.to_string v
