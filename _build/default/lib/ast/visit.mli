(** Traversals over the AST.

    Clang keeps separate visitor families per hierarchy (StmtVisitor,
    DeclVisitor, TypeVisitor, OMPClauseVisitor — see paper §1.2); here one
    traversal takes one callback per hierarchy instead.

    [~shadow] controls whether the hidden shadow-AST children (transformed
    statements, pre-init declarations, loop helper expressions, the
    range-for de-sugaring) are visited.  Clang's [children()] never returns
    them; passing [~shadow:false] matches that behaviour. *)

open Tree

val expr_children : expr -> expr list

val stmt_sub_stmts : shadow:bool -> stmt -> stmt list
(** Direct statement children (the [children()] analogue). *)

val stmt_sub_exprs : stmt -> expr list
(** Direct expression children, including variable initialisers. *)

val clause_exprs : clause -> expr list

val helper_vars : loop_helpers -> var list
(** The shadow helper variables, in slot order (dump support). *)

val helper_exprs : loop_helpers -> expr list
(** The shadow helper expressions, in slot order (dump support). *)

val iter :
  ?shadow:bool ->
  ?on_stmt:(stmt -> unit) ->
  ?on_expr:(expr -> unit) ->
  ?on_var:(var -> unit) ->
  ?on_clause:(clause -> unit) ->
  stmt ->
  unit
(** Deep pre-order traversal from a statement. *)

val count_nodes : ?shadow:bool -> stmt -> int
(** Total stmt + expr + decl + clause nodes reachable. *)

val helper_slot_count : loop_helpers -> int
(** Number of shadow slots an [OMPLoopDirective] carries: the fixed fields
    plus 6 per associated loop (paper §1.2: "up to 30 … plus 6 for each
    loop"). *)

val helper_occupied_count : loop_helpers -> int
(** Slots actually materialised for this directive. *)

val canonical_meta_count : canonical_loop -> int
(** Always 3: distance function, loop-value function, user-variable
    reference (paper §3). *)
