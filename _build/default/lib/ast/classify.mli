(** Node classification mirroring the class hierarchies of the paper's
    Fig. 3 (Stmt), Fig. 4 (loop transformations, with the new
    [OMPLoopBasedDirective] layer) and Fig. 5 (clauses).

    OCaml variants have no inheritance, so the hierarchy is exposed as an
    explicit ancestry function: [stmt_ancestry] returns the Clang class
    chain from most-derived to [Stmt].  Tests assert the figures hold. *)

open Tree

val stmt_class_name : stmt -> string
(** Clang's node name, e.g. ["ForStmt"], ["OMPParallelForDirective"]. *)

val expr_class_name : expr -> string
val clause_class_name : clause -> string
val directive_class_name : directive_kind -> string

val stmt_ancestry : stmt -> string list
(** Class chain, most-derived first, ending in ["Stmt"]. *)

val clause_ancestry : clause -> string list
(** Ends in ["OMPClause"]. *)

val is_omp_executable_directive : directive_kind -> bool
(** All directives placeable where a statement can appear (every kind). *)

val is_omp_loop_based_directive : directive_kind -> bool
(** The Fig. 4 layer: loop directives plus the transformations. *)

val is_omp_loop_directive : directive_kind -> bool
(** The worksharing/simd family with full shadow loop helpers. *)

val is_loop_transformation : directive_kind -> bool
(** [unroll] and [tile]. *)

val loop_association_depth : directive -> int
(** How many perfectly nested canonical loops the directive consumes: the
    [collapse]/[sizes] arity, 1 for other loop-based directives, 0 for
    non-loop directives. *)
