(** Source-level pretty-printer (the inverse of parsing, approximately).

    Used to show transformed shadow ASTs as C code the way the paper's
    Listing 1 and Fig. 7 present them, and by examples/tests that compare a
    directive's semantics against manually written loops. *)

open Tree

val expr_to_string : expr -> string
val stmt_to_string : ?indent:int -> stmt -> string
val translation_unit_to_string : translation_unit -> string

val directive_name : directive_kind -> string
(** The pragma spelling, e.g. ["parallel for"]. *)
