lib/ast/dump.ml: Buffer Classify Ctype Hashtbl List Op Option Printf String Tree Visit
