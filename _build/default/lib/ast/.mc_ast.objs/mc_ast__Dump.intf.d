lib/ast/dump.mli: Tree
