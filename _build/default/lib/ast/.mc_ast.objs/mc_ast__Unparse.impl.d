lib/ast/unparse.ml: Ctype List Op Option Printf String Tree
