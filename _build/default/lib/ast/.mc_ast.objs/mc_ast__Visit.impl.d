lib/ast/visit.ml: Fun List Option Tree
