lib/ast/ctype.mli: Mc_support Tree
