lib/ast/tree.ml: Mc_srcmgr Mc_support
