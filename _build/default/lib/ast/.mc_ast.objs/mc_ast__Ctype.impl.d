lib/ast/ctype.ml: List Mc_support Printf String Tree
