lib/ast/classify.mli: Tree
