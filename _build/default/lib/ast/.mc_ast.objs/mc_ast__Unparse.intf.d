lib/ast/unparse.mli: Tree
