lib/ast/visit.mli: Tree
