lib/ast/classify.ml: List Tree
