lib/ast/op.ml: Ctype Int64 Mc_support Tree
