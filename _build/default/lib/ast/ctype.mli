(** Operations on the C subset's types: spellings (as printed by the AST
    dump), sizes, classification, and the usual arithmetic conversions used
    by Sema. *)

open Tree

val to_string : ctype -> string
(** Clang-like spelling, e.g. ["unsigned int"], ["double *"], ["int[10]"]. *)

val equal : ctype -> ctype -> bool

val int_width : ctype -> Mc_support.Int_ops.width option
(** The width of an integer (or bool) type. *)

val size_in_bytes : ctype -> int
(** Storage size; arrays of unknown bound and functions have no size and
    raise [Invalid_argument]. *)

val is_integer : ctype -> bool
val is_floating : ctype -> bool
val is_arithmetic : ctype -> bool
val is_pointer : ctype -> bool
val is_scalar : ctype -> bool
val is_array : ctype -> bool

val element_type : ctype -> ctype option
(** Of an array or pointer. *)

val char_t : ctype
val short_t : ctype
val int_t : ctype
val long_t : ctype
val uchar_t : ctype
val ushort_t : ctype
val uint_t : ctype
val ulong_t : ctype
val float_t : ctype
val double_t : ctype
val bool_t : ctype
val size_t : ctype
(** Modelled as [unsigned long] (64-bit), as on LP64 targets. *)

val promote : ctype -> ctype
(** C integer promotion: types narrower than [int] become [int]. *)

val common_arithmetic : ctype -> ctype -> ctype option
(** The usual arithmetic conversions; [None] when either side is not
    arithmetic. *)

val decay : ctype -> ctype
(** Array-to-pointer (and function-to-pointer) decay. *)
