lib/core/driver.ml: List Mc_ast Mc_codegen Mc_diag Mc_interp Mc_ir Mc_lexer Mc_parser Mc_passes Mc_pp Mc_sema Mc_srcmgr Printf Sys
