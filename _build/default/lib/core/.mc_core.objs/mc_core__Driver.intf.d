lib/core/driver.mli: Mc_ast Mc_diag Mc_interp Mc_ir Mc_passes Mc_srcmgr Result
