lib/pp/preprocessor.mli: Mc_diag Mc_lexer Mc_srcmgr
