lib/pp/preprocessor.ml: Hashtbl Int64 List Mc_diag Mc_lexer Mc_srcmgr Printf String
