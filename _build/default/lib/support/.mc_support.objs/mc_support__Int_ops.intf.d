lib/support/int_ops.mli:
