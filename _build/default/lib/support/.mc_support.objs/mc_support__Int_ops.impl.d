lib/support/int_ops.ml: Int64 Printf
