type width = { bits : int; signed : bool }

let i1 = { bits = 1; signed = false }
let i8 = { bits = 8; signed = true }
let i16 = { bits = 16; signed = true }
let i32 = { bits = 32; signed = true }
let i64 = { bits = 64; signed = true }
let u8 = { bits = 8; signed = false }
let u16 = { bits = 16; signed = false }
let u32 = { bits = 32; signed = false }
let u64 = { bits = 64; signed = false }

let mask w =
  if w.bits >= 64 then -1L else Int64.sub (Int64.shift_left 1L w.bits) 1L

let truncate w v =
  if w.bits >= 64 then v
  else
    let low = Int64.logand v (mask w) in
    if w.signed && Int64.logand low (Int64.shift_left 1L (w.bits - 1)) <> 0L
    then Int64.logor low (Int64.lognot (mask w))
    else low

let min_value w =
  if not w.signed then 0L
  else if w.bits >= 64 then Int64.min_int
  else Int64.neg (Int64.shift_left 1L (w.bits - 1))

let max_value w =
  if w.signed then
    if w.bits >= 64 then Int64.max_int
    else Int64.sub (Int64.shift_left 1L (w.bits - 1)) 1L
  else if w.bits >= 64 then -1L (* canonical u64 max: all bits set *)
  else mask w

let in_range w v = Int64.equal (truncate w v) v
let add w a b = truncate w (Int64.add a b)
let sub w a b = truncate w (Int64.sub a b)
let mul w a b = truncate w (Int64.mul a b)

let div w a b =
  if Int64.equal b 0L then None
  else if w.signed then
    if Int64.equal a (min_value w) && Int64.equal b (-1L) then None
    else Some (truncate w (Int64.div a b))
  else Some (truncate w (Int64.unsigned_div a b))

let rem w a b =
  if Int64.equal b 0L then None
  else if w.signed then
    if Int64.equal a (min_value w) && Int64.equal b (-1L) then None
    else Some (truncate w (Int64.rem a b))
  else Some (truncate w (Int64.unsigned_rem a b))

let neg w a = truncate w (Int64.neg a)
let bit_not w a = truncate w (Int64.lognot a)
let bit_and w a b = truncate w (Int64.logand a b)
let bit_or w a b = truncate w (Int64.logor a b)
let bit_xor w a b = truncate w (Int64.logxor a b)
let shift_amount w b = Int64.to_int (Int64.logand b (Int64.of_int (w.bits - 1)))
let shl w a b = truncate w (Int64.shift_left a (shift_amount w b))

let shr w a b =
  let n = shift_amount w b in
  if w.signed then truncate w (Int64.shift_right (truncate w a) n)
  else
    (* Operate on the zero-extended low bits so the logical shift does not
       drag in the sign-extension bits of the canonical form. *)
    let low = Int64.logand a (mask w) in
    truncate w (Int64.shift_right_logical low n)

let unsigned_lt a b = Int64.unsigned_compare a b < 0

let lt w a b =
  if w.signed then Int64.compare a b < 0
  else Int64.unsigned_compare (Int64.logand a (mask w)) (Int64.logand b (mask w)) < 0

let le w a b = Int64.equal a b || lt w a b
let convert ~from ~into v = truncate into (truncate from v)

let to_string w v =
  if w.signed then Int64.to_string (truncate w v)
  else Printf.sprintf "%Lu" (Int64.logand v (mask w))
