(** Fixed-width two's-complement integer arithmetic.

    The C subset compiled by this project gives its integer types precise
    widths (8/16/32/64 bits, signed or unsigned).  Constant evaluation in
    Sema, on-the-fly folding in the IR builder, and the IR interpreter must
    all agree bit-for-bit, so they share this module.  Values are carried in
    an [int64] whose low [bits] bits are significant; the canonical form is
    sign- or zero-extended to 64 bits according to [signed]. *)

type width = { bits : int; signed : bool }

val i1 : width
val i8 : width
val i16 : width
val i32 : width
val i64 : width
val u8 : width
val u16 : width
val u32 : width
val u64 : width

val truncate : width -> int64 -> int64
(** [truncate w v] reduces [v] to the canonical 64-bit representation of a
    [w]-wide value: the low [w.bits] bits of [v], sign-extended when
    [w.signed] and zero-extended otherwise. *)

val min_value : width -> int64
val max_value : width -> int64

val in_range : width -> int64 -> bool
(** Whether [v] is already canonical for [w]. *)

val add : width -> int64 -> int64 -> int64
val sub : width -> int64 -> int64 -> int64
val mul : width -> int64 -> int64 -> int64

val div : width -> int64 -> int64 -> int64 option
(** C semantics: truncation toward zero; [None] on division by zero or on
    signed overflow (MIN / -1). *)

val rem : width -> int64 -> int64 -> int64 option

val neg : width -> int64 -> int64
val bit_not : width -> int64 -> int64
val bit_and : width -> int64 -> int64 -> int64
val bit_or : width -> int64 -> int64 -> int64
val bit_xor : width -> int64 -> int64 -> int64

val shl : width -> int64 -> int64 -> int64
val shr : width -> int64 -> int64 -> int64
(** Arithmetic shift for signed widths, logical for unsigned; shift amounts
    are taken modulo the width, as on common hardware. *)

val lt : width -> int64 -> int64 -> bool
val le : width -> int64 -> int64 -> bool
(** Signedness-aware comparisons of canonical values. *)

val unsigned_lt : int64 -> int64 -> bool
(** 64-bit unsigned comparison regardless of width. *)

val convert : from:width -> into:width -> int64 -> int64
(** C integer conversion: truncate or extend [v] (canonical for [from]) into
    the canonical representation for [into]. *)

val to_string : width -> int64 -> string
(** Decimal rendering honouring signedness (e.g. [0xFFFFFFFF] at [u32] prints
    ["4294967295"]). *)
