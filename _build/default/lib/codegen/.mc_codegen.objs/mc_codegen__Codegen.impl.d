lib/codegen/codegen.ml: Array Hashtbl Int64 List Mc_ast Mc_ir Mc_ompbuilder Mc_support Option Printf
