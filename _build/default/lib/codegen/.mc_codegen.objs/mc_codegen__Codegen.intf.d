lib/codegen/codegen.mli: Mc_ast Mc_ir
