lib/diag/diagnostics.ml: Buffer Fun List Mc_srcmgr Printf String
