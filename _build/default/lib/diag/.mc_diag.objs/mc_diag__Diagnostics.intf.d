lib/diag/diagnostics.mli: Mc_srcmgr
