(** [CanonicalLoopInfo]: the OpenMPIRBuilder's handle for a literal or
    generated loop (paper §3.2).

    It names the seven skeleton blocks of Fig. 10 and the values that make
    the loop analysable without ScalarEvolution: the induction-variable phi
    and the trip count.  The invariants listed in the paper are enforced by
    {!verify}:

    - explicit basic blocks for preheader, header, cond, body entry, latch,
      exit and after;
    - an identifiable logical induction variable (the header phi, starting
      at 0 and incremented by 1 in the latch);
    - an identifiable trip count (the right operand of the cond's unsigned
      comparison). *)

open Mc_ir

type t = {
  cli_func : Ir.func;
  cli_preheader : Ir.block;
  cli_header : Ir.block;
  cli_cond : Ir.block;
  cli_body : Ir.block; (* body entry; the region may span more blocks *)
  cli_latch : Ir.block;
  cli_exit : Ir.block;
  cli_after : Ir.block;
  cli_iv : Ir.inst; (* the phi in [cli_header] *)
  mutable cli_trip_count : Ir.value;
  mutable cli_valid : bool;
}

val block_names : t -> string list
(** The seven block names in skeleton order, for the Fig. 10 golden test. *)

val verify : t -> (unit, string) result
(** Checks the skeleton invariants above. *)

val invalidate : t -> unit
(** Marks the handle dead after a transformation consumed the loop (LLVM's
    [CanonicalLoopInfo::invalidate]); further [verify] fails. *)

val is_valid : t -> bool
