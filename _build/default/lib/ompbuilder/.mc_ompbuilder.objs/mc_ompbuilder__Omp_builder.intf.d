lib/ompbuilder/omp_builder.mli: Builder Cli Ir Mc_ir
