lib/ompbuilder/cli.ml: Ir List Mc_ir Printf Result
