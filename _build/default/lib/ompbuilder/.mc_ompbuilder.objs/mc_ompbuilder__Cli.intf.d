lib/ompbuilder/cli.mli: Ir Mc_ir
