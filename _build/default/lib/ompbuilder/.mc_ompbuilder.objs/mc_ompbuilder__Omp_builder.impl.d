lib/ompbuilder/omp_builder.ml: Builder Cli Fun Int64 Ir List Mc_ir Printf
