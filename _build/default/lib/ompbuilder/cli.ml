open Mc_ir

type t = {
  cli_func : Ir.func;
  cli_preheader : Ir.block;
  cli_header : Ir.block;
  cli_cond : Ir.block;
  cli_body : Ir.block;
  cli_latch : Ir.block;
  cli_exit : Ir.block;
  cli_after : Ir.block;
  cli_iv : Ir.inst;
  mutable cli_trip_count : Ir.value;
  mutable cli_valid : bool;
}

let block_names t =
  List.map
    (fun b -> b.Ir.b_name)
    [
      t.cli_preheader;
      t.cli_header;
      t.cli_cond;
      t.cli_body;
      t.cli_latch;
      t.cli_exit;
      t.cli_after;
    ]

let is_valid t = t.cli_valid

let invalidate t = t.cli_valid <- false

let verify t =
  let ( let* ) = Result.bind in
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let expect_br b target what =
    match b.Ir.b_term with
    | Ir.Br x when x == target -> Ok ()
    | _ -> fail "%s must branch to %s" what target.Ir.b_name
  in
  if not t.cli_valid then fail "CanonicalLoopInfo has been invalidated"
  else begin
    (* All seven blocks live in the same function. *)
    let blocks =
      [ t.cli_preheader; t.cli_header; t.cli_cond; t.cli_body; t.cli_latch;
        t.cli_exit; t.cli_after ]
    in
    let* () =
      if
        List.for_all
          (fun b ->
            match b.Ir.b_parent with
            | Some f -> f == t.cli_func
            | None -> false)
          blocks
      then Ok ()
      else fail "skeleton block detached from function"
    in
    let* () = expect_br t.cli_preheader t.cli_header "preheader" in
    (* Header: the IV phi, then a branch to cond. *)
    let* () =
      match Ir.block_insts t.cli_header with
      | [ phi ] when phi == t.cli_iv -> Ok ()
      | _ -> fail "header must contain exactly the induction-variable phi"
    in
    let* () =
      match t.cli_iv.Ir.i_kind with
      | Ir.Phi { incoming } -> (
        let from_pre = Ir.phi_incoming_for_pred incoming t.cli_preheader in
        let from_latch = Ir.phi_incoming_for_pred incoming t.cli_latch in
        match (from_pre, from_latch, incoming) with
        | Some (Ir.Const_int (_, 0L)), Some (Ir.Inst_ref inc), [ _; _ ] -> (
          match inc.Ir.i_kind with
          | Ir.Binop (Ir.Add, a, Ir.Const_int (_, 1L))
            when Ir.value_equal a (Ir.Inst_ref t.cli_iv) ->
            Ok ()
          | _ -> fail "latch increment is not iv + 1")
        | _ -> fail "induction variable phi must be {0 from preheader, inc from latch}"
        )
      | _ -> fail "cli_iv is not a phi"
    in
    let* () = expect_br t.cli_header t.cli_cond "header" in
    (* Cond: icmp ult iv, tripcount; conditional branch body/exit. *)
    let* () =
      match Ir.block_insts t.cli_cond with
      | [ cmp ] -> (
        match (cmp.Ir.i_kind, t.cli_cond.Ir.b_term) with
        | Ir.Icmp (Ir.Iult, iv, tc), Ir.Cond_br (c, bt, bf)
          when Ir.value_equal iv (Ir.Inst_ref t.cli_iv)
               && Ir.value_equal tc t.cli_trip_count
               && Ir.value_equal c (Ir.Inst_ref cmp)
               && bt == t.cli_body && bf == t.cli_exit ->
          Ok ()
        | _ -> fail "cond block must compare iv <u tripcount and branch body/exit")
      | _ -> fail "cond block must contain exactly the comparison"
    in
    (* Latch: iv+1 then back edge. *)
    let* () =
      match Ir.block_insts t.cli_latch with
      | [ inc ] -> (
        match inc.Ir.i_kind with
        | Ir.Binop (Ir.Add, a, Ir.Const_int (_, 1L))
          when Ir.value_equal a (Ir.Inst_ref t.cli_iv) ->
          Ok ()
        | _ -> fail "latch must increment the induction variable by 1")
      | _ -> fail "latch must contain exactly the increment"
    in
    let* () = expect_br t.cli_latch t.cli_header "latch" in
    let* () = expect_br t.cli_exit t.cli_after "exit" in
    Ok ()
  end
