(** Structural IR verifier, the analogue of LLVM's module verifier.  Run by
    tests after every CodeGen path and after every mid-end pass to catch
    malformed CFGs early. *)

type issue = { in_function : string; in_block : string; message : string }

val verify_func : Ir.func -> issue list
val verify_module : Ir.modul -> issue list

val check : Ir.modul -> (unit, string) result
(** [Error] renders all issues, one per line. *)
