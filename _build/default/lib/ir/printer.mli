(** Textual rendering of the IR in an LLVM-like syntax, used by [-emit-ir],
    golden tests (the Fig. 10 loop skeleton) and debugging. *)

val value_to_string : Ir.value -> string
val func_to_string : Ir.func -> string
val module_to_string : Ir.modul -> string
