(** The IRBuilder (paper §1.3): convenience functions to create instructions,
    inserting each after the previously inserted one, with on-the-fly
    algebraic simplification so that "instructions that would later be
    optimized away anyway" are never materialised.

    Folding can be disabled ([~fold:false]) — the A4 ablation benchmark
    measures the instruction-count difference. *)

open Ir

type t

val create : ?fold:bool -> unit -> t
val folding : t -> bool
val set_insertion_point : t -> block -> unit
val insertion_block : t -> block
val clear_insertion_point : t -> unit

(* Arithmetic.  [signed] selects the division/remainder/shift flavour and
   how constants fold. *)
val add : t -> ?name:string -> value -> value -> value
val sub : t -> ?name:string -> value -> value -> value
val mul : t -> ?name:string -> value -> value -> value
val sdiv : t -> ?name:string -> value -> value -> value
val udiv : t -> ?name:string -> value -> value -> value
val srem : t -> ?name:string -> value -> value -> value
val urem : t -> ?name:string -> value -> value -> value
val shl : t -> ?name:string -> value -> value -> value
val lshr : t -> ?name:string -> value -> value -> value
val ashr : t -> ?name:string -> value -> value -> value
val and_ : t -> ?name:string -> value -> value -> value
val or_ : t -> ?name:string -> value -> value -> value
val xor : t -> ?name:string -> value -> value -> value
val fadd : t -> ?name:string -> value -> value -> value
val fsub : t -> ?name:string -> value -> value -> value
val fmul : t -> ?name:string -> value -> value -> value
val fdiv : t -> ?name:string -> value -> value -> value
val frem : t -> ?name:string -> value -> value -> value
val binop : t -> ?name:string -> binop -> value -> value -> value

val icmp : t -> ?name:string -> icmp -> value -> value -> value
val fcmp : t -> ?name:string -> fcmp -> value -> value -> value
val cast : t -> ?name:string -> cast_op -> value -> ty -> value
val select : t -> ?name:string -> value -> value -> value -> value

val alloca : t -> ?name:string -> ?count:int -> ty -> value
val load : t -> ?name:string -> ty -> value -> value
val store : t -> value -> ptr:value -> unit
val gep : t -> ?name:string -> elt_ty:ty -> value -> value -> value
val call : t -> ?name:string -> ret:ty -> callee -> value list -> value
val phi : t -> ?name:string -> ty -> (value * block) list -> value
val add_phi_incoming : value -> value * block -> unit
(** The first argument must be an [Inst_ref] of a phi. *)

val ret : t -> value option -> unit
val br : t -> block -> unit
val cond_br : t -> value -> block -> block -> unit
(** Folds to an unconditional branch when the condition is constant (and
    folding is on). *)

val unreachable : t -> unit

val min_u : t -> ?name:string -> value -> value -> value
(** Unsigned minimum via icmp+select; used by worksharing bounds clamping. *)

val min_s : t -> ?name:string -> value -> value -> value

val ptr_diff : t -> ?name:string -> value -> value -> value
(** Pointer difference in bytes: a [sub] of two pointers typed [i64]. *)

(* Constant-folding primitives, shared with the mid-end constant-propagation
   pass so folding semantics cannot diverge between layers. *)

val fold_int_binop_const : binop -> ty -> int64 -> int64 -> int64 option
val fold_float_binop_const : binop -> float -> float -> float option
val eval_icmp_const : icmp -> ty -> int64 -> int64 -> bool
val eval_fcmp_const : fcmp -> float -> float -> bool
val fold_cast_const : cast_op -> value -> ty -> value option
