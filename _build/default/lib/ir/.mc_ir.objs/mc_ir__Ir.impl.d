lib/ir/ir.ml: Float Int64 List Mc_support Option Printf
