lib/ir/builder.ml: Float Int64 Ir Mc_support Option Printf
