lib/ir/printer.ml: Buffer Hashtbl Ir List Mc_support Printf String
