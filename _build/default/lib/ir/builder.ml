open Ir
module Int_ops = Mc_support.Int_ops

type t = { mutable ip : block option; fold : bool }

let create ?(fold = true) () = { ip = None; fold }
let folding t = t.fold
let set_insertion_point t b = t.ip <- Some b
let clear_insertion_point t = t.ip <- None

let insertion_block t =
  match t.ip with
  | Some b -> b
  | None -> invalid_arg "Builder: no insertion point set"

let insert t inst =
  append_inst (insertion_block t) inst;
  Inst_ref inst

(* ---- constant folding --------------------------------------------------- *)

let width_of ~signed ty = int_width ~signed ty

let fold_int_binop op ty a b =
  let ws = width_of ~signed:true ty and wu = width_of ~signed:false ty in
  match op with
  | Add -> Some (Int_ops.add ws a b)
  | Sub -> Some (Int_ops.sub ws a b)
  | Mul -> Some (Int_ops.mul ws a b)
  | Sdiv -> Int_ops.div ws a b
  | Udiv -> Int_ops.div wu a b
  | Srem -> Int_ops.rem ws a b
  | Urem -> Int_ops.rem wu a b
  | Shl -> Some (Int_ops.shl ws a b)
  | Lshr -> Some (Int_ops.shr wu a b)
  | Ashr -> Some (Int_ops.shr ws a b)
  | And -> Some (Int_ops.bit_and ws a b)
  | Or -> Some (Int_ops.bit_or ws a b)
  | Xor -> Some (Int_ops.bit_xor ws a b)
  | Fadd | Fsub | Fmul | Fdiv | Frem -> None

let fold_float_binop op a b =
  match op with
  | Fadd -> Some (a +. b)
  | Fsub -> Some (a -. b)
  | Fmul -> Some (a *. b)
  | Fdiv -> Some (a /. b)
  | Frem -> Some (Float.rem a b)
  | _ -> None

let is_zero = function Const_int (_, 0L) -> true | _ -> false
let is_one = function Const_int (_, 1L) -> true | _ -> false

(* Algebraic identities: only ones valid for all operands. *)
let simplify_binop op a b =
  match op with
  | Add when is_zero a -> Some b
  | Add when is_zero b -> Some a
  | Sub when is_zero b -> Some a
  | Mul when is_one a -> Some b
  | Mul when is_one b -> Some a
  | Mul when is_zero a -> Some a
  | Mul when is_zero b -> Some b
  | Sdiv when is_one b -> Some a
  | Udiv when is_one b -> Some a
  | Shl when is_zero b -> Some a
  | Lshr when is_zero b -> Some a
  | Ashr when is_zero b -> Some a
  | And when is_zero a -> Some a
  | And when is_zero b -> Some b
  | Or when is_zero a -> Some b
  | Or when is_zero b -> Some a
  | Xor when is_zero a -> Some b
  | Xor when is_zero b -> Some a
  | Sub when value_equal a b && (match value_ty a with F32 | F64 -> false | _ -> true)
    -> Some (Const_int (value_ty a, 0L))
  | _ -> None

let binop t ?(name = "") op a b =
  let ty = value_ty a in
  let folded =
    if not t.fold then None
    else
      match (a, b) with
      | Const_int (tya, va), Const_int (_, vb) ->
        Option.map (fun v -> Const_int (tya, v)) (fold_int_binop op tya va vb)
      | Const_float (tya, va), Const_float (_, vb) ->
        Option.map (fun v -> Const_float (tya, v)) (fold_float_binop op va vb)
      | _ -> simplify_binop op a b
  in
  match folded with
  | Some v -> v
  | None -> insert t (mk_inst ~name ~ty (Binop (op, a, b)))

let add t ?name a b = binop t ?name Add a b
let sub t ?name a b = binop t ?name Sub a b
let mul t ?name a b = binop t ?name Mul a b
let sdiv t ?name a b = binop t ?name Sdiv a b
let udiv t ?name a b = binop t ?name Udiv a b
let srem t ?name a b = binop t ?name Srem a b
let urem t ?name a b = binop t ?name Urem a b
let shl t ?name a b = binop t ?name Shl a b
let lshr t ?name a b = binop t ?name Lshr a b
let ashr t ?name a b = binop t ?name Ashr a b
let and_ t ?name a b = binop t ?name And a b
let or_ t ?name a b = binop t ?name Or a b
let xor t ?name a b = binop t ?name Xor a b
let fadd t ?name a b = binop t ?name Fadd a b
let fsub t ?name a b = binop t ?name Fsub a b
let fmul t ?name a b = binop t ?name Fmul a b
let fdiv t ?name a b = binop t ?name Fdiv a b
let frem t ?name a b = binop t ?name Frem a b

let eval_icmp op ty a b =
  let ws = width_of ~signed:true ty in
  let lt_s = Int_ops.lt ws and le_s = Int_ops.le ws in
  let lt_u x y = Int_ops.unsigned_lt x y in
  match op with
  | Ieq -> Int64.equal a b
  | Ine -> not (Int64.equal a b)
  | Islt -> lt_s a b
  | Isle -> le_s a b
  | Isgt -> lt_s b a
  | Isge -> le_s b a
  | Iult -> lt_u a b
  | Iule -> Int64.equal a b || lt_u a b
  | Iugt -> lt_u b a
  | Iuge -> Int64.equal a b || lt_u b a

let icmp t ?(name = "") op a b =
  match (t.fold, a, b) with
  | true, Const_int (ty, va), Const_int (_, vb) -> bool_const (eval_icmp op ty va vb)
  | _ -> insert t (mk_inst ~name ~ty:I1 (Icmp (op, a, b)))

let eval_fcmp op a b =
  match op with
  | Foeq -> Float.equal a b
  | Fone -> not (Float.equal a b)
  | Folt -> a < b
  | Fole -> a <= b
  | Fogt -> a > b
  | Foge -> a >= b

let fcmp t ?(name = "") op a b =
  match (t.fold, a, b) with
  | true, Const_float (_, va), Const_float (_, vb) -> bool_const (eval_fcmp op va vb)
  | _ -> insert t (mk_inst ~name ~ty:I1 (Fcmp (op, a, b)))

let fold_cast op v target =
  match (op, v) with
  | (Trunc | Zext | Sext), Const_int (ty, value) ->
    let signed = op = Sext in
    let from = width_of ~signed ty in
    let into = width_of ~signed target in
    Some (Const_int (target, Int_ops.convert ~from ~into value))
  | Sitofp, Const_int (_, value) -> Some (Const_float (target, Int64.to_float value))
  | Uitofp, Const_int (_, value) ->
    let f =
      if Int64.compare value 0L >= 0 then Int64.to_float value
      else Int64.to_float value +. 18446744073709551616.0
    in
    Some (Const_float (target, f))
  | Fptosi, Const_float (_, f) ->
    let w = width_of ~signed:true target in
    Some (Const_int (target, Int_ops.truncate w (Int64.of_float f)))
  | Fptoui, Const_float (_, f) ->
    let w = width_of ~signed:false target in
    Some (Const_int (target, Int_ops.truncate w (Int64.of_float f)))
  | (Fpext | Fptrunc), Const_float (_, f) -> Some (Const_float (target, f))
  | _ -> None

let cast t ?(name = "") op v target =
  if value_ty v = target && (match op with Trunc | Zext | Sext -> true | _ -> false)
  then v
  else
    match if t.fold then fold_cast op v target else None with
    | Some c -> c
    | None -> insert t (mk_inst ~name ~ty:target (Cast (op, v)))

let select t ?(name = "") c a b =
  match (t.fold, c) with
  | true, Const_int (I1, 1L) -> a
  | true, Const_int (I1, 0L) -> b
  | _ when t.fold && value_equal a b -> a
  | _ -> insert t (mk_inst ~name ~ty:(value_ty a) (Select (c, a, b)))

let alloca t ?(name = "") ?(count = 1) elt_ty =
  insert t (mk_inst ~name ~ty:Ptr (Alloca { elt_ty; count }))

let load t ?(name = "") ty ptr = insert t (mk_inst ~name ~ty (Load { ptr }))

let store t v ~ptr =
  ignore (insert t (mk_inst ~ty:Void (Store { ptr; v })))

let gep t ?(name = "") ~elt_ty base index =
  if t.fold && is_zero index then base
  else insert t (mk_inst ~name ~ty:Ptr (Gep { base; index; elt_ty }))

let call t ?(name = "") ~ret callee args =
  insert t (mk_inst ~name ~ty:ret (Call { callee; args }))

let phi t ?(name = "") ty incoming =
  insert t (mk_inst ~name ~ty (Phi { incoming }))

let add_phi_incoming v entry =
  match v with
  | Inst_ref ({ i_kind = Phi p; _ } as i) ->
    i.i_kind <- Phi { incoming = p.incoming @ [ entry ] }
  | _ -> invalid_arg "add_phi_incoming: not a phi"

let set_term t term =
  let b = insertion_block t in
  (match b.b_term with
  | No_term -> ()
  | _ -> invalid_arg (Printf.sprintf "block '%s' already terminated" b.b_name));
  b.b_term <- term

let ret t v = set_term t (Ret v)
let br t target = set_term t (Br target)

let cond_br t c then_b else_b =
  match (t.fold, c) with
  | true, Const_int (I1, 1L) -> set_term t (Br then_b)
  | true, Const_int (I1, 0L) -> set_term t (Br else_b)
  | _ -> set_term t (Cond_br (c, then_b, else_b))

let unreachable t = set_term t Unreachable

let min_u t ?(name = "") a b =
  let c = icmp t Iult a b in
  select t ~name c a b

let min_s t ?(name = "") a b =
  let c = icmp t Islt a b in
  select t ~name c a b

let ptr_diff t ?(name = "") a b =
  insert t (mk_inst ~name ~ty:I64 (Binop (Sub, a, b)))

let fold_int_binop_const = fold_int_binop
let fold_float_binop_const op a b = fold_float_binop op a b
let eval_icmp_const = eval_icmp
let eval_fcmp_const = eval_fcmp
let fold_cast_const = fold_cast
