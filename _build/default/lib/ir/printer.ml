open Ir

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Sdiv -> "sdiv"
  | Udiv -> "udiv"
  | Srem -> "srem"
  | Urem -> "urem"
  | Shl -> "shl"
  | Lshr -> "lshr"
  | Ashr -> "ashr"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Fadd -> "fadd"
  | Fsub -> "fsub"
  | Fmul -> "fmul"
  | Fdiv -> "fdiv"
  | Frem -> "frem"

let icmp_name = function
  | Ieq -> "eq"
  | Ine -> "ne"
  | Islt -> "slt"
  | Isle -> "sle"
  | Isgt -> "sgt"
  | Isge -> "sge"
  | Iult -> "ult"
  | Iule -> "ule"
  | Iugt -> "ugt"
  | Iuge -> "uge"

let fcmp_name = function
  | Foeq -> "oeq"
  | Fone -> "one"
  | Folt -> "olt"
  | Fole -> "ole"
  | Fogt -> "ogt"
  | Foge -> "oge"

let cast_name = function
  | Trunc -> "trunc"
  | Zext -> "zext"
  | Sext -> "sext"
  | Fptosi -> "fptosi"
  | Fptoui -> "fptoui"
  | Sitofp -> "sitofp"
  | Uitofp -> "uitofp"
  | Fpext -> "fpext"
  | Fptrunc -> "fptrunc"

(* Stable printer names: prefer the hint, fall back to a per-function
   ordinal.  Uniqueness is ensured by suffixing duplicated hints. *)
type names = {
  inst_names : (int, string) Hashtbl.t;
  block_names : (int, string) Hashtbl.t;
  used : (string, int) Hashtbl.t;
}

let assign_names f =
  let names =
    { inst_names = Hashtbl.create 64; block_names = Hashtbl.create 16;
      used = Hashtbl.create 64 }
  in
  let unique base =
    match Hashtbl.find_opt names.used base with
    | None ->
      Hashtbl.add names.used base 0;
      base
    | Some n ->
      Hashtbl.replace names.used base (n + 1);
      Printf.sprintf "%s.%d" base (n + 1)
  in
  let counter = ref 0 in
  let next_ordinal () =
    let n = !counter in
    incr counter;
    string_of_int n
  in
  List.iter
    (fun b ->
      let base = if b.b_name = "" then "bb" ^ next_ordinal () else b.b_name in
      Hashtbl.replace names.block_names b.b_id (unique base);
      List.iter
        (fun i ->
          if i.i_ty <> Void then begin
            let base = if i.i_name = "" then next_ordinal () else i.i_name in
            Hashtbl.replace names.inst_names i.i_id (unique base)
          end)
        (block_insts b))
    f.f_blocks;
  names

let float_str f =
  let s = Printf.sprintf "%.6g" f in
  if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
  then s
  else s ^ ".0"

let value_str names v =
  match v with
  | Const_int (I1, 1L) -> "true"
  | Const_int (I1, 0L) -> "false"
  | Const_int (ty, value) ->
    Mc_support.Int_ops.to_string (int_width ~signed:true ty) value
  | Const_float (_, f) -> float_str f
  | Arg a -> "%" ^ a.a_name
  | Inst_ref i -> (
    match Hashtbl.find_opt names.inst_names i.i_id with
    | Some n -> "%" ^ n
    | None -> Printf.sprintf "%%<unnamed:%d>" i.i_id)
  | Fn_addr f -> "@" ^ f.f_name
  | Undef ty -> Printf.sprintf "undef %s" (ty_to_string ty)

let typed names v =
  Printf.sprintf "%s %s" (ty_to_string (value_ty v)) (value_str names v)

let block_ref names b =
  match Hashtbl.find_opt names.block_names b.b_id with
  | Some n -> "%" ^ n
  | None -> Printf.sprintf "%%<block:%d>" b.b_id

let inst_str names i =
  let v = value_str names in
  let def =
    match Hashtbl.find_opt names.inst_names i.i_id with
    | Some n -> Printf.sprintf "%%%s = " n
    | None -> ""
  in
  let body =
    match i.i_kind with
    | Alloca { elt_ty; count } ->
      if count = 1 then Printf.sprintf "alloca %s" (ty_to_string elt_ty)
      else Printf.sprintf "alloca %s, %d" (ty_to_string elt_ty) count
    | Load { ptr } ->
      Printf.sprintf "load %s, ptr %s" (ty_to_string i.i_ty) (v ptr)
    | Store { ptr; v = sv } ->
      Printf.sprintf "store %s, ptr %s" (typed names sv) (v ptr)
    | Binop (op, a, b) ->
      Printf.sprintf "%s %s %s, %s" (binop_name op)
        (ty_to_string (value_ty a)) (v a) (v b)
    | Icmp (op, a, b) ->
      Printf.sprintf "icmp %s %s %s, %s" (icmp_name op)
        (ty_to_string (value_ty a)) (v a) (v b)
    | Fcmp (op, a, b) ->
      Printf.sprintf "fcmp %s %s %s, %s" (fcmp_name op)
        (ty_to_string (value_ty a)) (v a) (v b)
    | Cast (op, x) ->
      Printf.sprintf "%s %s to %s" (cast_name op) (typed names x)
        (ty_to_string i.i_ty)
    | Gep { base; index; elt_ty } ->
      Printf.sprintf "getelementptr %s, ptr %s, %s" (ty_to_string elt_ty)
        (v base) (typed names index)
    | Select (c, a, b) ->
      Printf.sprintf "select %s, %s, %s" (typed names c) (typed names a)
        (typed names b)
    | Call { callee; args } ->
      let callee_str =
        match callee with Direct f -> "@" ^ f.f_name | Runtime n -> "@" ^ n
      in
      Printf.sprintf "call %s %s(%s)" (ty_to_string i.i_ty) callee_str
        (String.concat ", " (List.map (typed names) args))
    | Phi { incoming } ->
      Printf.sprintf "phi %s %s" (ty_to_string i.i_ty)
        (String.concat ", "
           (List.map
              (fun (value, b) ->
                Printf.sprintf "[ %s, %s ]" (v value) (block_ref names b))
              incoming))
  in
  def ^ body

let unroll_md_str = function
  | Unroll_enable -> "llvm.loop.unroll.enable"
  | Unroll_full -> "llvm.loop.unroll.full"
  | Unroll_count n -> Printf.sprintf "llvm.loop.unroll.count(%d)" n
  | Unroll_disable -> "llvm.loop.unroll.disable"

let term_str names b =
  let md =
    let parts =
      (match b.b_loop_md.md_unroll with
      | Some u -> [ unroll_md_str u ]
      | None -> [])
      @
      match b.b_loop_md.md_vectorize_width with
      | Some w -> [ Printf.sprintf "llvm.loop.vectorize.width(%d)" w ]
      | None -> []
    in
    if parts = [] then ""
    else Printf.sprintf ", !llvm.loop !{%s}" (String.concat ", " parts)
  in
  (match b.b_term with
  | Ret None -> "ret void"
  | Ret (Some value) -> Printf.sprintf "ret %s" (typed names value)
  | Br target -> Printf.sprintf "br label %s" (block_ref names target)
  | Cond_br (c, t, e) ->
    Printf.sprintf "br %s, label %s, label %s" (typed names c)
      (block_ref names t) (block_ref names e)
  | Unreachable -> "unreachable"
  | No_term -> "<no terminator>")
  ^ md

let func_to_string f =
  let names = assign_names f in
  let buf = Buffer.create 512 in
  let args =
    String.concat ", "
      (List.map
         (fun a -> Printf.sprintf "%s %%%s" (ty_to_string a.a_ty) a.a_name)
         f.f_args)
  in
  if f.f_is_decl then
    Printf.sprintf "declare %s @%s(%s)\n" (ty_to_string f.f_ret) f.f_name args
  else begin
    Buffer.add_string buf
      (Printf.sprintf "define %s @%s(%s) {\n" (ty_to_string f.f_ret) f.f_name args);
    List.iteri
      (fun idx b ->
        if idx > 0 then Buffer.add_char buf '\n';
        Buffer.add_string buf
          (Printf.sprintf "%s:\n"
             (String.sub (block_ref names b) 1
                (String.length (block_ref names b) - 1)));
        List.iter
          (fun i -> Buffer.add_string buf ("  " ^ inst_str names i ^ "\n"))
          (block_insts b);
        Buffer.add_string buf ("  " ^ term_str names b ^ "\n"))
      f.f_blocks;
    Buffer.add_string buf "}\n";
    Buffer.contents buf
  end

let module_to_string m =
  String.concat "\n" (List.map func_to_string m.m_funcs)

let value_to_string v =
  match v with
  | Inst_ref i ->
    let name = if i.i_name = "" then Printf.sprintf "inst:%d" i.i_id else i.i_name in
    "%" ^ name
  | _ ->
    let names =
      { inst_names = Hashtbl.create 1; block_names = Hashtbl.create 1;
        used = Hashtbl.create 1 }
    in
    value_str names v
