open Ir

type issue = { in_function : string; in_block : string; message : string }

let verify_func f =
  let issues = ref [] in
  let add b msg =
    issues :=
      { in_function = f.f_name; in_block = b; message = msg } :: !issues
  in
  if f.f_is_decl then []
  else begin
    if f.f_blocks = [] then add "<none>" "defined function has no blocks";
    let in_func = Hashtbl.create 16 in
    List.iter (fun b -> Hashtbl.replace in_func b.b_id ()) f.f_blocks;
    (* Instructions defined anywhere in the function (SSA availability is
       approximated: a full dominance check lives in the passes library). *)
    let defined = Hashtbl.create 64 in
    List.iter
      (fun b ->
        List.iter (fun i -> Hashtbl.replace defined i.i_id ()) (block_insts b))
      f.f_blocks;
    let check_value b v =
      match v with
      | Inst_ref i ->
        if not (Hashtbl.mem defined i.i_id) then
          add b.b_name
            (Printf.sprintf "use of instruction %d not defined in function"
               i.i_id)
      | Arg a ->
        if not (List.exists (fun x -> x.a_id = a.a_id) f.f_args) then
          add b.b_name (Printf.sprintf "use of foreign argument '%s'" a.a_name)
      | Const_int _ | Const_float _ | Fn_addr _ | Undef _ -> ()
    in
    List.iter
      (fun b ->
        let insts = block_insts b in
        (* Phis must lead the block. *)
        let rec check_phi_position seen_non_phi = function
          | [] -> ()
          | i :: rest ->
            (match i.i_kind with
            | Phi _ when seen_non_phi ->
              add b.b_name "phi after non-phi instruction"
            | Phi _ -> ()
            | _ -> ());
            check_phi_position
              (seen_non_phi || match i.i_kind with Phi _ -> false | _ -> true)
              rest
        in
        check_phi_position false insts;
        List.iter
          (fun i ->
            List.iter (check_value b) (inst_operands i);
            (match i.i_parent with
            | Some p when p == b -> ()
            | _ -> add b.b_name (Printf.sprintf "instruction %d has wrong parent" i.i_id));
            match i.i_kind with
            | Binop (op, x, y) ->
              if value_ty x <> value_ty y then
                add b.b_name "binop operand types differ"
              else if
                value_ty x <> i.i_ty
                && not (op = Sub && value_ty x = Ptr && i.i_ty = I64)
              then add b.b_name "binop result type mismatch"
            | Icmp (_, x, y) ->
              if value_ty x <> value_ty y then
                add b.b_name "icmp operand types differ"
            | Store { ptr; _ } | Load { ptr } ->
              if value_ty ptr <> Ptr then
                add b.b_name "memory operand is not a pointer"
            | Gep { base; _ } ->
              if value_ty base <> Ptr then add b.b_name "gep base is not a pointer"
            | Select (c, x, y) ->
              if value_ty c <> I1 then add b.b_name "select condition not i1";
              if value_ty x <> value_ty y then
                add b.b_name "select arm types differ"
            | Phi { incoming } ->
              let preds = predecessors f b in
              if List.length incoming <> List.length preds then
                add b.b_name
                  (Printf.sprintf "phi has %d incoming values for %d predecessors"
                     (List.length incoming) (List.length preds))
              else
                List.iter
                  (fun p ->
                    if not (List.exists (fun (_, ib) -> ib == p) incoming) then
                      add b.b_name
                        (Printf.sprintf "phi missing incoming for predecessor '%s'"
                           p.b_name))
                  preds;
              List.iter
                (fun (v, _) ->
                  if value_ty v <> i.i_ty && (match v with Undef _ -> false | _ -> true)
                  then add b.b_name "phi incoming type mismatch")
                incoming
            | Alloca _ | Cast _ | Call _ | Fcmp _ -> ())
          insts;
        (* Terminators. *)
        List.iter (check_value b) (terminator_operands b.b_term);
        (match b.b_term with
        | No_term -> add b.b_name "block has no terminator"
        | Ret None ->
          if f.f_ret <> Void then add b.b_name "ret void in non-void function"
        | Ret (Some v) ->
          if f.f_ret = Void then add b.b_name "ret value in void function"
          else if value_ty v <> f.f_ret then add b.b_name "ret type mismatch"
        | Cond_br (c, _, _) ->
          if value_ty c <> I1 then add b.b_name "branch condition not i1"
        | Br _ | Unreachable -> ());
        List.iter
          (fun s ->
            if not (Hashtbl.mem in_func s.b_id) then
              add b.b_name
                (Printf.sprintf "successor '%s' not in function" s.b_name))
          (successors b))
      f.f_blocks;
    List.rev !issues
  end

let verify_module m = List.concat_map verify_func m.m_funcs

let check m =
  match verify_module m with
  | [] -> Ok ()
  | issues ->
    Error
      (String.concat "\n"
         (List.map
            (fun i ->
              Printf.sprintf "%s/%s: %s" i.in_function i.in_block i.message)
            issues))
