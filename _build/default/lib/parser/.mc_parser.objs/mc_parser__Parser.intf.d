lib/parser/parser.mli: Mc_ast Mc_pp Mc_sema
