lib/parser/parser.ml: List Mc_ast Mc_diag Mc_lexer Mc_pp Mc_sema Mc_srcmgr Option Printf
