(** The tokenizer (Clang's Lexer layer).

    Pull-based, like Clang: the preprocessor calls {!next} to obtain one
    token at a time.  Comments and whitespace are skipped but recorded in the
    [at_line_start] / [has_space_before] token flags.  Lexical errors are
    reported through the diagnostics engine and a best-effort token is
    produced so that lexing always makes progress. *)

type t

val create :
  Mc_diag.Diagnostics.t -> file_id:int -> Mc_srcmgr.Memory_buffer.t -> t

val next : t -> Token.t
(** Returns the next token; after the end of the buffer, returns [Eof]
    tokens forever. *)

val tokenize :
  Mc_diag.Diagnostics.t ->
  file_id:int ->
  Mc_srcmgr.Memory_buffer.t ->
  Token.t list
(** Convenience: the whole buffer as a list, [Eof] excluded. *)
