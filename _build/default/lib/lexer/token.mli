(** Tokens of the C subset.

    The lexer produces a flat stream of these; the preprocessor consumes the
    [Hash]-introduced directives (including [#pragma omp ...]) and re-emits a
    stream for the parser.  Each token remembers whether it started a line
    and whether whitespace preceded it, which is what directive parsing and
    macro expansion need. *)

type keyword =
  | Kw_int
  | Kw_long
  | Kw_short
  | Kw_char
  | Kw_signed
  | Kw_unsigned
  | Kw_float
  | Kw_double
  | Kw_void
  | Kw_bool
  | Kw_const
  | Kw_auto
  | Kw_if
  | Kw_else
  | Kw_switch
  | Kw_case
  | Kw_default
  | Kw_for
  | Kw_while
  | Kw_do
  | Kw_return
  | Kw_break
  | Kw_continue
  | Kw_sizeof

type punct =
  | LParen
  | RParen
  | LBrace
  | RBrace
  | LBracket
  | RBracket
  | Semi
  | Comma
  | Question
  | Colon
  | Tilde
  | Exclaim
  | ExclaimEqual
  | Equal
  | EqualEqual
  | Plus
  | PlusPlus
  | PlusEqual
  | Minus
  | MinusMinus
  | MinusEqual
  | Arrow
  | Star
  | StarEqual
  | Slash
  | SlashEqual
  | Percent
  | PercentEqual
  | Amp
  | AmpAmp
  | AmpEqual
  | Pipe
  | PipePipe
  | PipeEqual
  | Caret
  | CaretEqual
  | Less
  | LessEqual
  | LessLess
  | LessLessEqual
  | Greater
  | GreaterEqual
  | GreaterGreater
  | GreaterGreaterEqual
  | Period
  | Ellipsis
  | Hash
  | HashHash

type int_suffix = { suffix_unsigned : bool; suffix_long : bool }

type kind =
  | Ident of string
  | Keyword of keyword
  | Int_lit of { value : int64; suffix : int_suffix; text : string }
  | Float_lit of { value : float; text : string }
  | Char_lit of { value : int; text : string }
  | String_lit of { value : string; text : string }
  | Punct of punct
  | Eof

type t = {
  kind : kind;
  loc : Mc_srcmgr.Source_location.t;
  len : int;
  at_line_start : bool;
  has_space_before : bool;
}

val keyword_of_string : string -> keyword option
val keyword_to_string : keyword -> string
val punct_to_string : punct -> string

val spelling : t -> string
(** The token's source spelling, reconstructed from its kind. *)

val describe : kind -> string
(** Short human-readable form for diagnostics, e.g. ["'+='"], ["identifier"]. *)

val is_eof : t -> bool
val is_ident : t -> string -> bool
val is_punct : t -> punct -> bool
val is_keyword : t -> keyword -> bool
