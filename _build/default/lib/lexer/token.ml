type keyword =
  | Kw_int
  | Kw_long
  | Kw_short
  | Kw_char
  | Kw_signed
  | Kw_unsigned
  | Kw_float
  | Kw_double
  | Kw_void
  | Kw_bool
  | Kw_const
  | Kw_auto
  | Kw_if
  | Kw_else
  | Kw_switch
  | Kw_case
  | Kw_default
  | Kw_for
  | Kw_while
  | Kw_do
  | Kw_return
  | Kw_break
  | Kw_continue
  | Kw_sizeof

type punct =
  | LParen
  | RParen
  | LBrace
  | RBrace
  | LBracket
  | RBracket
  | Semi
  | Comma
  | Question
  | Colon
  | Tilde
  | Exclaim
  | ExclaimEqual
  | Equal
  | EqualEqual
  | Plus
  | PlusPlus
  | PlusEqual
  | Minus
  | MinusMinus
  | MinusEqual
  | Arrow
  | Star
  | StarEqual
  | Slash
  | SlashEqual
  | Percent
  | PercentEqual
  | Amp
  | AmpAmp
  | AmpEqual
  | Pipe
  | PipePipe
  | PipeEqual
  | Caret
  | CaretEqual
  | Less
  | LessEqual
  | LessLess
  | LessLessEqual
  | Greater
  | GreaterEqual
  | GreaterGreater
  | GreaterGreaterEqual
  | Period
  | Ellipsis
  | Hash
  | HashHash

type int_suffix = { suffix_unsigned : bool; suffix_long : bool }

type kind =
  | Ident of string
  | Keyword of keyword
  | Int_lit of { value : int64; suffix : int_suffix; text : string }
  | Float_lit of { value : float; text : string }
  | Char_lit of { value : int; text : string }
  | String_lit of { value : string; text : string }
  | Punct of punct
  | Eof

type t = {
  kind : kind;
  loc : Mc_srcmgr.Source_location.t;
  len : int;
  at_line_start : bool;
  has_space_before : bool;
}

let keyword_table =
  [
    ("int", Kw_int);
    ("long", Kw_long);
    ("short", Kw_short);
    ("char", Kw_char);
    ("signed", Kw_signed);
    ("unsigned", Kw_unsigned);
    ("float", Kw_float);
    ("double", Kw_double);
    ("void", Kw_void);
    ("bool", Kw_bool);
    ("_Bool", Kw_bool);
    ("const", Kw_const);
    ("auto", Kw_auto);
    ("if", Kw_if);
    ("else", Kw_else);
    ("switch", Kw_switch);
    ("case", Kw_case);
    ("default", Kw_default);
    ("for", Kw_for);
    ("while", Kw_while);
    ("do", Kw_do);
    ("return", Kw_return);
    ("break", Kw_break);
    ("continue", Kw_continue);
    ("sizeof", Kw_sizeof);
  ]

let keyword_of_string s = List.assoc_opt s keyword_table

let keyword_to_string kw =
  (* The table maps two spellings to [Kw_bool]; the first match is canonical. *)
  match List.find_opt (fun (_, k) -> k = kw) keyword_table with
  | Some (s, _) -> s
  | None -> assert false

let punct_to_string = function
  | LParen -> "("
  | RParen -> ")"
  | LBrace -> "{"
  | RBrace -> "}"
  | LBracket -> "["
  | RBracket -> "]"
  | Semi -> ";"
  | Comma -> ","
  | Question -> "?"
  | Colon -> ":"
  | Tilde -> "~"
  | Exclaim -> "!"
  | ExclaimEqual -> "!="
  | Equal -> "="
  | EqualEqual -> "=="
  | Plus -> "+"
  | PlusPlus -> "++"
  | PlusEqual -> "+="
  | Minus -> "-"
  | MinusMinus -> "--"
  | MinusEqual -> "-="
  | Arrow -> "->"
  | Star -> "*"
  | StarEqual -> "*="
  | Slash -> "/"
  | SlashEqual -> "/="
  | Percent -> "%"
  | PercentEqual -> "%="
  | Amp -> "&"
  | AmpAmp -> "&&"
  | AmpEqual -> "&="
  | Pipe -> "|"
  | PipePipe -> "||"
  | PipeEqual -> "|="
  | Caret -> "^"
  | CaretEqual -> "^="
  | Less -> "<"
  | LessEqual -> "<="
  | LessLess -> "<<"
  | LessLessEqual -> "<<="
  | Greater -> ">"
  | GreaterEqual -> ">="
  | GreaterGreater -> ">>"
  | GreaterGreaterEqual -> ">>="
  | Period -> "."
  | Ellipsis -> "..."
  | Hash -> "#"
  | HashHash -> "##"

let spelling t =
  match t.kind with
  | Ident s -> s
  | Keyword kw -> keyword_to_string kw
  | Int_lit { text; _ } | Float_lit { text; _ } | Char_lit { text; _ }
  | String_lit { text; _ } ->
    text
  | Punct p -> punct_to_string p
  | Eof -> ""

let describe = function
  | Ident s -> Printf.sprintf "identifier '%s'" s
  | Keyword kw -> Printf.sprintf "'%s'" (keyword_to_string kw)
  | Int_lit _ -> "integer literal"
  | Float_lit _ -> "floating-point literal"
  | Char_lit _ -> "character literal"
  | String_lit _ -> "string literal"
  | Punct p -> Printf.sprintf "'%s'" (punct_to_string p)
  | Eof -> "end of file"

let is_eof t = t.kind = Eof
let is_ident t name = match t.kind with Ident s -> String.equal s name | _ -> false
let is_punct t p = match t.kind with Punct q -> p = q | _ -> false
let is_keyword t kw = match t.kind with Keyword k -> k = kw | _ -> false
