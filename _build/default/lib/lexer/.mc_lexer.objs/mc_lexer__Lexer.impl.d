lib/lexer/lexer.ml: Buffer Char Int64 List Mc_diag Mc_srcmgr Printf String Token
