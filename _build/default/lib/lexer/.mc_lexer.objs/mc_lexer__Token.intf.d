lib/lexer/token.mli: Mc_srcmgr
