lib/lexer/lexer.mli: Mc_diag Mc_srcmgr Token
