lib/lexer/token.ml: List Mc_srcmgr Printf String
