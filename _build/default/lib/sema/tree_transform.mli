(** The TreeTransform engine (paper §1.3): creates copies of AST subtrees
    with substitutions applied.  Clang uses it for template instantiation;
    this reproduction uses it to build the transformed shadow ASTs of
    [#pragma omp tile]/[unroll], substituting the original loop variables
    with their reconstructed per-iteration values. *)

open Mc_ast.Tree

type t

val create : unit -> t

val substitute_var : t -> from:var -> into:var -> unit
(** References to [from] in transformed subtrees become references to
    [into]. *)

val substitute_var_expr : t -> from:var -> into:expr -> unit
(** References to [from] become a copy of [into] (which must be a pure
    expression). *)

val transform_expr : t -> expr -> expr
val transform_stmt : t -> stmt -> stmt
(** Deep copies with fresh node ids.  Declarations encountered inside the
    subtree ([Decl_stmt]) are re-created (fresh [var]s) and references to
    them remapped, as TreeTransform does for local declarations. *)
