(** Capture analysis for [CapturedStmt] (paper §1.2): which variables does a
    region reference that are declared outside it?  Those become captures of
    the outlined 'lambda', alongside the implicit thread-id and context
    parameters shown in Fig. 2b. *)

open Mc_ast.Tree

val free_variables : stmt -> var list
(** Variables referenced within the statement but declared outside it, in
    first-use order.  Implicit compiler-generated variables are included
    (they capture like any other). *)

val free_variables_of_expr : expr -> var list

val make_captured_stmt : stmt -> stmt
(** Wraps a statement the way loop-associated directives do: builds the
    [Captured] node with its capture list and the three implicit parameters
    [.global_tid.], [.bound_tid.] and [__context]. *)

val make_lambda : params:var list -> ?byval:var list -> stmt -> captured
(** A bare capture region with explicit parameters — the representation of
    the distance / loop-value functions of [OMPCanonicalLoop] (§3.1). *)
