(** OpenMP canonical-loop-form analysis and the construction of the
    trip-count ("distance") and user-value expressions (paper §3).

    The paper's terminology is followed exactly:
    - the {e loop iteration variable} is what the literal for-loop steps
      ([i], or [__begin] for a range-for);
    - the {e loop user variable} is what the body reads ([i], or the
      dereferenced iterator [Val]);
    - the {e logical iteration counter} is the normalised unsigned counter
      starting at 0 with step 1, whose width is chosen so that even
      [for (int32_t i = INT32_MIN; i < INT32_MAX; ++i)] — 0xfffffffe
      iterations — is representable. *)

open Mc_ast.Tree

type direction = Up | Down

type comparison = Cmp_lt | Cmp_le | Cmp_gt | Cmp_ge | Cmp_ne

type analyzed = {
  cl_stmt : stmt; (* the For or Range_for statement *)
  cl_iter_var : var; (* loop iteration variable *)
  cl_user_var : var; (* loop user variable *)
  cl_init : expr; (* start value (rvalue) *)
  cl_bound : expr; (* comparison bound (rvalue) *)
  cl_cmp : comparison;
  cl_step : expr; (* positive magnitude of the increment *)
  cl_step_const : int64 option;
  cl_dir : direction;
  cl_body : stmt;
  cl_counter_ty : ctype; (* unsigned logical-counter type *)
  cl_is_range_for : bool;
}

val analyze : Sema.t -> stmt -> analyzed option
(** Checks the OpenMP canonical-form rules (init/test/incr shapes, matching
    variable, integer or pointer iteration type); diagnoses and returns
    [None] on violations.  [Attributed] wrappers are looked through. *)

val trip_count_expr : Sema.t -> analyzed -> expr
(** The distance function's body: an expression of [cl_counter_ty]
    evaluating to the number of logical iterations, computed modularly in
    the unsigned domain (so the INT32_MIN..INT32_MAX loop is exact) and
    guarded to 0 for empty loops. *)

val user_value_expr : Sema.t -> analyzed -> logical:expr -> expr
(** The loop user variable's value for a logical iteration number. *)

val user_lvalue : Sema.t -> analyzed -> logical:expr -> expr
(** Where the user variable's value lives for that iteration: for a
    by-reference range-for this is [*(__begin + i)]; otherwise it is the
    computed value itself (callers bind it to a fresh variable). *)

val make_canonical_loop : Sema.t -> analyzed -> stmt
(** Wraps the loop in an [OMPCanonicalLoop] node carrying the distance
    function, the loop-value function and the user-variable reference — the
    exactly-3 pieces of §3's meta information. *)

val desugared_range_for : Sema.t -> range_for -> loc:loc -> stmt
(** The Fig. 8c equivalent of a range-based for-loop; also memoised into
    [rf_desugared]. *)
