(** Constant-expression evaluation on the AST (Clang's [Expr::EvaluateAsInt]
    analogue).  Used for clause arguments ([partial(2)], [sizes(4,4)],
    [collapse(2)]), array bounds, and the loop-step extraction of the
    canonical-loop analysis.  Bit-exact with the IR layers via [Int_ops]. *)

open Mc_ast.Tree

val eval_int : expr -> int64 option
(** The value, canonical for the expression's type; [None] when not an
    integer constant expression (variables, calls, floats, side effects). *)

val eval_int_as : expr -> int option
(** Narrowed to OCaml int. *)
