lib/sema/tree_transform.mli: Mc_ast
