lib/sema/const_eval.mli: Mc_ast
