lib/sema/shadow.ml: Canonical Int64 List Mc_ast Printf Sema Tree_transform
