lib/sema/sema.mli: Mc_ast Mc_diag
