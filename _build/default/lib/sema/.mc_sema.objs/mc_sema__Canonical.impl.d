lib/sema/canonical.ml: Capture Const_eval Mc_ast Mc_diag Mc_srcmgr Mc_support Option Printf Sema Tree_transform
