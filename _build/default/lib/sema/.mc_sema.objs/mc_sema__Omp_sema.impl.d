lib/sema/omp_sema.ml: Canonical Capture Const_eval Fun List Mc_ast Mc_diag Option Printf Sema Shadow
