lib/sema/const_eval.ml: Int64 Mc_ast Mc_support Option
