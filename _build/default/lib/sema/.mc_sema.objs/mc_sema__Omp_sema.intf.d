lib/sema/omp_sema.mli: Mc_ast Sema
