lib/sema/tree_transform.ml: Hashtbl List Mc_ast Option
