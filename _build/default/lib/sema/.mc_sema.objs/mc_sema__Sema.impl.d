lib/sema/sema.ml: Const_eval Hashtbl Int64 List Mc_ast Mc_diag Mc_srcmgr Mc_support Option Printf String
