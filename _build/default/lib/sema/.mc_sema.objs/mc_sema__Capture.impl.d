lib/sema/capture.ml: Hashtbl List Mc_ast Mc_srcmgr
