lib/sema/capture.mli: Mc_ast
