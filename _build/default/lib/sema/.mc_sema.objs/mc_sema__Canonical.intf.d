lib/sema/canonical.mli: Mc_ast Sema
