lib/sema/shadow.mli: Canonical Mc_ast Sema
